#!/usr/bin/env python3
"""Driving every dashboard widget the paper describes (§III-A, Fig. 7).

Creates a small time-varying terrain dataset, opens it in the headless
dashboard, and exercises: dataset/variable dropdowns, time slider,
palettes, manual + dynamic colormap ranges, resolution slider, zoom/pan,
horizontal/vertical slices, the snipping tool (array + script export),
and playback with speed control.

Run:  python examples/dashboard_session.py
"""

import os
import tempfile

import numpy as np

from repro.dashboard import DashboardSession
from repro.idx import IdxDataset
from repro.terrain import composite_terrain, hillshade, slope


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="nsdf-dashboard-")
    idx_path = os.path.join(workdir, "tennessee.idx")

    # A 4-timestep dataset with two variables (think seasonal snapshots).
    dem = composite_terrain((256, 512), seed=3)
    ds = IdxDataset.create(
        idx_path,
        dims=dem.shape,
        fields={"elevation": "float32", "slope": "float32"},
        timesteps=4,
        bits_per_block=12,
    )
    for t in range(4):
        seasonal = dem + 15.0 * np.sin(2 * np.pi * t / 4.0)
        ds.write(seasonal, field="elevation", time=t)
        ds.write(slope(seasonal), field="slope", time=t)
    ds.finalize()

    session = DashboardSession(viewport=(200, 400))
    session.open_file("tennessee", idx_path)
    print("dataset dropdown:", session.dataset_names)
    print("variable dropdown:", session.dataset.fields)

    # Opening frame at automatic resolution.
    frame = session.current_frame(fit_viewport=True)
    print(f"opening frame: {frame.shape}, auto level {session.effective_resolution()}")

    # Time slider + variable switch.
    session.time_slider(2)
    session.select_field("slope")
    print(f"now showing {session.state.field_name!r} at t={session.state.time}")

    # Palette and manual colormap range.
    session.set_palette("terrain")
    session.set_range(0.0, 45.0)
    session.current_frame()
    session.set_range_dynamic()

    # Resolution slider: half -> full.
    for fraction in (0.5, 1.0):
        level = session.resolution_slider(fraction)
        data = session.fetch_data()
        print(f"resolution slider {fraction:.0%} -> level {level}, grid {data.data.shape}")

    # Zoom into the northeast quadrant, pan east, take slices.
    session.set_resolution(None)
    session.zoom(2.0, center=(64, 384))
    session.pan((0, 32))
    profile_h = session.slice_horizontal(10)
    profile_v = session.slice_vertical(20)
    print(f"slices: horizontal {profile_h.shape}, vertical {profile_v.shape}")

    # Snip a region; export both the array and the reproduction script.
    snip = session.snip(((100, 200), (160, 320)))
    npy = snip.save_npy(os.path.join(workdir, "region.npy"))
    script = snip.save_script(os.path.join(workdir, "extract_region.py"))
    print(f"snip {snip.data.shape} -> {npy} + {script}")

    # Playback: 4 timesteps at 2 fps, double speed, looping.
    playback = session.playback(fps=2.0)
    playback.set_speed(2.0)
    playback.set_looping(True)
    playback.play()
    schedule = playback.schedule(duration_s=2.0, frame_interval_s=0.5)
    print("playback schedule (t_wall -> timestep):",
          [(t, ts) for t, ts in schedule])

    print("\noperations performed:", ", ".join(session.state.ops_performed()))
    print("mean op latency:")
    for op, (count, mean_s) in sorted(session.timing_summary().items()):
        print(f"  {op:<8s} x{count:<3d} {mean_s * 1e3:7.2f} ms")


if __name__ == "__main__":
    main()
