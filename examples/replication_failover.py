#!/usr/bin/env python3
"""Geo-replication and link-failure resilience on the NSDF testbed.

Demonstrates the "democratizing data delivery" mechanics: a dataset is
replicated to three Seal regions, every site reads from its nearest
replica, and when a backbone link fails, routing detours and reads keep
succeeding (slower) — monitored by the NSDF-Plugin prober.

Run:  python examples/replication_failover.py
"""

import os
import tempfile

import numpy as np

from repro.idx import IdxDataset, RemoteAccess
from repro.network import NetworkMonitor, SimClock, default_testbed
from repro.storage import ReplicatedSeal
from repro.terrain import composite_terrain


def main() -> None:
    clock = SimClock()
    network = default_testbed()
    storage = ReplicatedSeal(sites=("slc", "chi", "mghpcc"), testbed=network, clock=clock)
    token = storage.issue_token("ops", ("read", "write"))

    # Publish one terrain dataset to all three regions.
    dem = composite_terrain((128, 128), seed=6)
    path = os.path.join(tempfile.mkdtemp(), "terrain.idx")
    ds = IdxDataset.create(path, dims=dem.shape, fields={"elevation": "float32"},
                           bits_per_block=9)
    ds.write(dem, field="elevation")
    ds.finalize()
    with open(path, "rb") as fh:
        sites = storage.put("terrain.idx", fh.read(), token=token, from_site="slc")
    print(f"replicated to: {', '.join(sites)}")

    # Nearest-replica selection per client site.
    print("\nnearest replica and one-way latency per client site:")
    for client, latency in sorted(storage.access_latency_map("terrain.idx").items()):
        nearest = storage.nearest_replica("terrain.idx", client)
        print(f"  {client:<8s} -> {nearest:<8s} {latency * 1e3:6.1f} ms")

    # Stream a region from the worst-placed site.
    t0 = clock.now
    source = storage.byte_source("terrain.idx", token=token, from_site="sdsc")
    remote = IdxDataset.from_access(RemoteAccess(source))
    crop = remote.read(box=((32, 32), (96, 96)), field="elevation")
    print(f"\nsdsc streams a {crop.shape} crop in {clock.now - t0:.3f} virtual s")
    assert np.array_equal(crop, dem[32:96, 32:96])

    # Fail the backbone link Knoxville uses and watch the detour.
    monitor = NetworkMonitor(network, clock)
    before = monitor.probe("knox", "slc", repeats=3)
    network.fail_link("knox", "chi")
    after = monitor.probe("knox", "slc", repeats=3)
    print(f"\nknox->slc before failure: {before.rtt_ms_mean:6.1f} ms over {before.hops} hops")
    print(f"knox->slc after  failure: {after.rtt_ms_mean:6.1f} ms over {after.hops} hops "
          f"(detour via {' -> '.join(network.route('knox', 'slc'))})")

    # Reads still succeed through the degraded path — and the nearest
    # replica for knox may change, absorbing most of the damage.
    t0 = clock.now
    nearest_now = storage.nearest_replica("terrain.idx", "knox")
    blob = storage.get("terrain.idx", token=token, from_site="knox")
    print(f"knox read after failure: {len(blob)} bytes from {nearest_now} "
          f"in {clock.now - t0:.3f} virtual s")

    network.restore_link("knox", "chi")
    print("link restored; route:", " -> ".join(network.route("knox", "slc")))


if __name__ == "__main__":
    main()
