#!/usr/bin/env python3
"""SOMOSPIE-style soil-moisture inference on terrain covariates.

The Earth-science use case that motivates the tutorial (§I): predict
fine-scale soil moisture from terrain parameters.  This example
(1) builds the covariate stack from GEOtiled products, (2) compares the
spatial regressors on a holdout split, and (3) gap-fills a satellite-like
masked grid, reporting accuracy against synthetic truth.

Run:  python examples/somospie_inference.py
"""

import numpy as np

from repro.somospie import (
    CovariateStack,
    IdwRegressor,
    KnnRegressor,
    RidgeRegressor,
    evaluate_regressor,
    gap_fill,
    random_gap_mask,
    synthetic_soil_moisture,
)
from repro.terrain import GeoTiler, composite_terrain


def main() -> None:
    # Terrain + covariates from the GEOtiled pipeline.
    dem = composite_terrain((160, 160), seed=21)
    products = GeoTiler(grid=(2, 2)).compute(
        dem, parameters=("elevation", "slope", "aspect", "hillshade")
    )
    covariates = CovariateStack(products)
    truth = synthetic_soil_moisture(dem, seed=21, noise=0.01)

    # Sparse in-situ observations: 400 random probe locations.
    rng = np.random.default_rng(0)
    ny, nx = dem.shape
    rows = rng.integers(0, ny, 400)
    cols = rng.integers(0, nx, 400)
    X = covariates.features_at(rows, cols)
    y = truth[rows, cols]

    print("method comparison (70/30 holdout on probe data):")
    for name, reg in (
        ("KNN k=8 (SOMOSPIE)", KnnRegressor(k=8)),
        ("KNN k=1", KnnRegressor(k=1)),
        ("IDW k=12 p=2", IdwRegressor(k=12, power=2.0)),
        ("ridge (linear)", RidgeRegressor(alpha=1.0)),
    ):
        m = evaluate_regressor(reg, X, y, seed=1)
        print(f"  {name:<20s} rmse={m.rmse:.4f}  mae={m.mae:.4f}  r2={m.r2:+.3f}")

    # Predict the full grid with the best method.
    knn = KnnRegressor(k=8).fit(X, y)
    grid_pred = knn.predict(covariates.full_grid_features()).reshape(dem.shape)
    err = grid_pred - truth
    print(f"\nfull-grid downscaling: rmse={np.sqrt((err**2).mean()):.4f} m3/m3 "
          f"over {truth.size} cells from {len(y)} probes")

    # Satellite gap-filling: 35% of the grid missing in clumped swaths.
    mask = random_gap_mask(dem.shape, gap_fraction=0.35, seed=7)
    observed = np.where(mask, np.nan, truth)
    filled, report = gap_fill(np.nan_to_num(observed), mask, covariates, truth=truth)
    print(f"\ngap-fill: {report.filled_cells} cells filled "
          f"({report.gap_fraction:.0%} missing), "
          f"rmse={report.rmse_vs_truth:.4f}, r2={report.r2_vs_truth:+.3f}")


if __name__ == "__main__":
    main()
