#!/usr/bin/env python3
"""Exploring a 3-D volume through the dashboard and its JSON protocol.

OpenVisus' home turf is volumetric scientific data; this example builds
a 3-D scalar field (a stack of terrain-like layers — think a geological
model), opens it in the dashboard's volume-slicer mode, steps through
planes on every axis, and then drives the same session remotely through
the JSON command protocol, exactly as a deployed dashboard would be.

Run:  python examples/volume_exploration.py
"""

import json
import os
import tempfile

import numpy as np

from repro.dashboard import DashboardSession
from repro.dashboard.protocol import DashboardProtocol
from repro.idx import IdxDataset
from repro.terrain import spectral_fbm


def build_volume(shape=(24, 128, 128), seed=5) -> np.ndarray:
    """A stratified 3-D field: smooth layers + vertical structure."""
    nz, ny, nx = shape
    layers = [spectral_fbm((ny, nx), beta=2.4, seed=seed + k, amplitude=1.0)
              for k in range(4)]
    depth = np.linspace(0.0, 1.0, nz)[:, None, None]
    vol = (
        (1 - depth) * layers[0][None] + depth * layers[1][None]
        + 0.3 * np.sin(6.28 * depth) * layers[2][None]
        + 0.1 * layers[3][None]
    )
    return vol.astype(np.float32)


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="nsdf-volume-")
    path = os.path.join(workdir, "model.idx")

    vol = build_volume()
    ds = IdxDataset.create(path, dims=vol.shape, fields={"density": "float32"},
                           bits_per_block=11)
    ds.write(vol, field="density")
    ds.finalize()
    print(f"volume {vol.shape} stored at {path}")

    # --- local session: slice through the stack ---------------------------
    session = DashboardSession(viewport=(64, 64))
    session.open_file("model", path)
    print(f"opened on axis {session.state.slice_axis}, "
          f"plane {session.state.slice_index} (the central layer)")

    print("\nstepping down through the stratigraphy:")
    session.set_slice(0, 0)
    for _ in range(4):
        frame = session.current_frame(fit_viewport=True)
        stats = session.fetch_data()
        print(f"  layer {session.state.slice_index:2d}: frame {frame.shape}, "
              f"mean density {float(np.nanmean(stats.data)):+.3f}")
        session.step_slice(+7)

    print("\ncross-sections on the other axes:")
    for axis in (1, 2):
        session.set_slice(axis, vol.shape[axis] // 2)
        frame = session.current_frame()
        print(f"  axis {axis} mid-plane: {frame.shape[:2]}")

    # --- the same exploration, driven over the JSON protocol ---------------
    print("\nremote drive via the JSON protocol:")
    proto = DashboardProtocol(session)
    script = [
        {"op": "describe"},
        {"op": "set_palette", "name": "magma"},
        {"op": "zoom", "factor": 2.0},
        {"op": "render", "fit_viewport": True},
        {"op": "snip", "lo": [10, 32, 32], "hi": [11, 96, 96]},
    ]
    for request in script:
        response = proto.handle(request)
        summary = response["result"]
        if request["op"] == "snip":
            summary = {k: summary[k] for k in ("shape", "level")}
        print(f"  {request['op']:<12s} -> {json.dumps(summary)[:76]}")


if __name__ == "__main__":
    main()
