#!/usr/bin/env python3
"""Quickstart: terrain -> IDX -> multiresolution reads in ~30 lines.

Generates a synthetic DEM, stores it in the HZ-order IDX format, then
shows the two access patterns that make the format worth it:
a cheap coarse overview and a full-resolution crop — each touching only
the blocks that contain its samples.

Run:  python examples/quickstart.py
"""

import os
import tempfile

from repro.idx import IdxDataset
from repro.terrain import composite_terrain
from repro.util import format_bytes


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="nsdf-quickstart-")
    idx_path = os.path.join(workdir, "terrain.idx")

    # 1. Generate a 512 x 512 synthetic DEM (metres above sea level).
    dem = composite_terrain((512, 512), seed=42)
    print(f"DEM: {dem.shape}, {dem.min():.0f}..{dem.max():.0f} m")

    # 2. Write it as an IDX multiresolution dataset.
    ds = IdxDataset.create(idx_path, dims=dem.shape, fields={"elevation": "float32"})
    ds.write(dem, field="elevation")
    ds.finalize()
    print(f"IDX file: {format_bytes(os.path.getsize(idx_path))} at {idx_path}")

    # 3. Coarse overview: 6 levels below full resolution = 1/64 the rows.
    ds = IdxDataset.open(idx_path)
    overview = ds.read(resolution=ds.maxh - 6)
    print(f"overview: {overview.shape} "
          f"(read {ds.access.counters.bytes_read} encoded bytes)")

    # 4. Full-resolution crop of the centre quarter.
    window = ds.read(box=((128, 128), (384, 384)))
    print(f"crop:     {window.shape}, matches source: "
          f"{(window == dem[128:384, 128:384]).all()}")

    # 5. Progressive refinement — what a dashboard does while you wait.
    print("progressive refinement of the crop:")
    for result in ds.progressive(box=((128, 128), (384, 384)), start_resolution=ds.maxh - 4):
        print(f"  level {result.level:2d}: {result.data.shape}")
    ds.close()


if __name__ == "__main__":
    main()
