#!/usr/bin/env python3
"""Streaming a cloud-hosted IDX dataset over the simulated testbed.

Reproduces the tutorial's Option B path (§IV-C/D): the dataset lives in
private Seal Storage at Utah; a trainee at Tennessee streams subregions
over the WAN.  Shows why progressive access + caching make that
interactive: coarse-first reads move a tiny fraction of the bytes, and a
warm cache answers repeat interactions with zero network time.

Run:  python examples/remote_streaming.py
"""

import os
import tempfile

from repro.idx import BlockCache, IdxDataset
from repro.network import SimClock, default_testbed
from repro.storage import SealStorage, open_remote_idx, upload_idx_to_seal
from repro.terrain import composite_terrain
from repro.util import format_bytes


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="nsdf-streaming-")
    idx_path = os.path.join(workdir, "conus.idx")

    dem = composite_terrain((512, 512), seed=11)
    ds = IdxDataset.create(idx_path, dims=dem.shape, fields={"elevation": "float32"},
                           bits_per_block=12)
    ds.write(dem, field="elevation")
    ds.finalize()

    clock = SimClock()
    seal = SealStorage(site="slc", testbed=default_testbed(), clock=clock)
    token = seal.issue_token("trainee", scopes=("read", "write"))
    upload_idx_to_seal(idx_path, seal, "conus.idx", token=token, from_site="knox")
    upload_time = clock.now
    print(f"upload knox->slc: {upload_time:.3f} s (virtual)")

    cache = BlockCache("64 MiB")
    remote = open_remote_idx(seal, "conus.idx", token=token, from_site="knox", cache=cache)

    # Coarse overview first (the dashboard's opening frame).
    t0 = clock.now
    overview = remote.read(resolution=remote.maxh - 6)
    print(f"coarse overview {overview.shape}: {clock.now - t0:.3f} s")

    # Full-resolution crop of a region of interest.
    t0 = clock.now
    crop = remote.read(box=((128, 128), (256, 256)))
    print(f"full-res crop  {crop.shape}: {clock.now - t0:.3f} s")

    # Repeat the same interactions: the cache answers, the WAN is idle.
    t0 = clock.now
    remote.read(resolution=remote.maxh - 6)
    remote.read(box=((128, 128), (256, 256)))
    print(f"repeat (warm cache): {clock.now - t0:.6f} s, "
          f"hit rate {cache.stats.hit_rate:.0%}")

    # What full-download-first would have cost instead:
    blob_size = seal.head("conus.idx", token=token).size
    link = seal.testbed.path_link("knox", "slc")
    print(f"full download would move {format_bytes(blob_size)} "
          f"= {link.transfer_seconds(blob_size):.3f} s before any pixel shows")


if __name__ == "__main__":
    main()
