#!/usr/bin/env python3
"""The full four-step tutorial workflow (paper Fig. 4), end to end.

Step 1  generate DEM + terrain parameters with GEOtiled (tiled, halos)
Step 2  convert each TIFF to IDX (reporting the size reduction, §IV-B)
Step 3  statically validate IDX against the original TIFF (metrics)
Step 4  drive the dashboard: zoom, pan, palette, snip

Run:  python examples/terrain_workflow.py
"""

import tempfile

from repro.core import build_tutorial_workflow


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="nsdf-workflow-")
    workflow = build_tutorial_workflow(
        workdir,
        shape=(256, 384),
        seed=7,
        parameters=("elevation", "aspect", "slope", "hillshade"),
        grid=(2, 3),
        workers=2,
    )
    print("execution order:", " -> ".join(workflow.validate()))

    run = workflow.run()
    assert run.ok, "workflow failed"

    print("\nper-step wall time:")
    for name, seconds in run.step_seconds().items():
        print(f"  {name:<20s} {seconds * 1e3:8.1f} ms")

    print("\nStep 2 — TIFF -> IDX conversion (paper claims ~20% reduction):")
    for name, report in sorted(run.context["conversion_reports"].items()):
        print(f"  {name:<10s} {report.source_bytes:>9d} -> {report.idx_bytes:>9d} bytes "
              f"({report.reduction_percent:+5.1f}%)")

    print("\nStep 3 — validation metrics (lossless => identical):")
    for name, report in sorted(run.context["validation_reports"].items()):
        print(f"  {name:<10s} {report}")

    snip = run.context["snip_result"]
    print(f"\nStep 4 — snipped region {snip.data.shape} at level {snip.level}")
    print("generated extraction script:")
    print("  " + snip.extraction_script().replace("\n", "\n  ").rstrip())

    print("provenance lineage of the snip:")
    for record in run.provenance.lineage("snip_result"):
        print(f"  #{record.sequence} {record.activity}: {record.inputs} -> {record.outputs}")


if __name__ == "__main__":
    main()
