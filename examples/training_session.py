#!/usr/bin/env python3
"""Running a training session: workflow + exercises + gradebook + report.

The paper is about *training* data scientists; this example shows the
instructor's side: three simulated trainees work through the four-step
workflow with different levels of completeness, the gradebook grades
their workspaces against the tutorial's learning outcomes, and the
session wraps up with the evaluation report of §V.

Run:  python examples/training_session.py
"""

import tempfile

from repro.core import Gradebook, build_tutorial_workflow, default_tutorial_plan
from repro.services import build_default_testbed
from repro.survey.report import evaluation_report


def main() -> None:
    plan = default_tutorial_plan()
    print("agenda:")
    for line in plan.agenda():
        print("  " + line)
    print()

    testbed = build_default_testbed(seed=0)
    gradebook = Gradebook()

    # Trainee 1: completes everything including the cloud option (B).
    token = testbed.seal.issue_token("alice", ("read", "write"))
    run_alice = build_tutorial_workflow(
        tempfile.mkdtemp(prefix="alice-"), shape=(64, 64), grid=(2, 2)
    ).run({"seal": testbed.seal, "seal_token": token, "client_site": "knox"})
    gradebook.grade("alice", run_alice.context)

    # Trainee 2: completes the local path only (Option A).
    run_bob = build_tutorial_workflow(
        tempfile.mkdtemp(prefix="bob-"), shape=(64, 64), grid=(2, 2)
    ).run()
    gradebook.grade("bob", run_bob.context)

    # Trainee 3: stopped after Step 1 (generation only).
    partial = {k: run_bob.context[k] for k in ("dem", "products", "tiff_paths")}
    gradebook.grade("carol", partial)

    print("gradebook:")
    for participant, score, out_of in gradebook.summary():
        verdict = "PASSED" if gradebook.passed(participant) else "incomplete"
        print(f"  {participant:<8s} {score:>3d}/{out_of}  {verdict}")

    print("\nper-exercise pass rates (what to reteach):")
    for ex_id, rate in gradebook.exercise_pass_rates().items():
        print(f"  {ex_id:<18s} {rate:>5.0%}")

    print("\n" + evaluation_report())


if __name__ == "__main__":
    main()
