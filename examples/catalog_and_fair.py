#!/usr/bin/env python3
"""Data discovery across providers: Dataverse + Seal -> catalog -> FAIR.

Populates the public Dataverse (with the draft -> publish lifecycle) and
private Seal Storage, harvests both into the NSDF catalog, runs searches
with facets, and mints FAIR digital objects for the published data —
the full discovery story of §III-B and the FAIR integration of §III.

Run:  python examples/catalog_and_fair.py
"""

import os
import tempfile

from repro.catalog import CatalogService, harvest_dataverse, harvest_seal
from repro.formats import DatasetMetadata
from repro.idx import IdxDataset
from repro.services import FairDigitalObject, fair_assessment
from repro.storage import Dataverse, SealStorage, upload_idx_to_seal
from repro.terrain import REGIONS, composite_terrain, slope


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="nsdf-catalog-")

    # --- publish terrain products to the public Dataverse -----------------
    dataverse = Dataverse("nsdf-demo", seed=4)
    dois = {}
    for region in ("tennessee", "conus"):
        meta = DatasetMetadata(
            name=f"{region}-terrain",
            title=f"Terrain parameters for {region.upper()} at 30 m",
            keywords=["terrain", "DEM", "slope", region],
            region=region,
            resolution_m=30.0,
            creator="GEOtiled",
            georef=REGIONS[region].georeference(30.0),
        )
        doi = dataverse.create_dataset(meta, owner="taufer-lab")
        dem = composite_terrain((128, 128), seed=hash(region) % 1000)
        for product, raster in (("elevation", dem), ("slope", slope(dem))):
            path = os.path.join(workdir, f"{region}-{product}.idx")
            ds = IdxDataset.create(path, dims=raster.shape, fields={product: "float32"})
            ds.write(raster, field=product)
            ds.finalize()
            with open(path, "rb") as fh:
                dataverse.upload_file(doi, f"{product}.idx", fh.read(), owner="taufer-lab")
        version = dataverse.publish(doi, owner="taufer-lab")
        dois[region] = doi
        print(f"published {doi} v{version} ({region})")

    # --- stash a private copy in Seal --------------------------------------
    seal = SealStorage(site="slc")
    token = seal.issue_token("taufer-lab", scopes=("read", "write"))
    private_path = os.path.join(workdir, "private-experiment.idx")
    ds = IdxDataset.create(private_path, dims=(64, 64), fields={"moisture": "float32"})
    ds.write(composite_terrain((64, 64), seed=99) / 4000.0, field="moisture")
    ds.finalize()
    upload_idx_to_seal(private_path, seal, "experiments/moisture-v2.idx", token=token)

    # --- harvest everything into the catalog -------------------------------
    catalog = CatalogService()
    n_public = catalog.ingest_many(harvest_dataverse(dataverse))
    n_private = catalog.ingest_many(harvest_seal(seal, token=token))
    print(f"\ncatalog ingested {n_public} public + {n_private} private records")
    print("catalog stats:", catalog.stats())

    # --- discovery ---------------------------------------------------------
    for query in ("tennessee slope", "terr*", "moisture"):
        hits = catalog.search(query)
        names = [f"{h.record.source}:{h.record.name}" for h in hits]
        print(f"search {query!r}: {names}")
    print("facets for 'idx':", catalog.facets_by_source("idx"))

    # --- FAIR assessment of a published dataset -----------------------------
    region = "tennessee"
    info = dataverse.dataset_info(dois[region])
    fdo = FairDigitalObject.mint(
        info.metadata,
        checksum=dataverse.store.head(
            dataverse.bucket, dataverse._key(dois[region], info.version, "slope.idx")
        ).etag,
        access_url=f"dataverse://nsdf-demo/{dois[region]}/slope.idx",
    )
    fdo.add_provenance("geotiled-generate")
    fdo.add_provenance("tiff-to-idx-convert")
    assessment = fair_assessment(fdo)
    print(f"\nFAIR object {fdo.pid}: score {assessment['score']:.2f}, "
          f"pillars {assessment['pillars']}")


if __name__ == "__main__":
    main()
