"""C2 — §III-A claim: hierarchical coarse-to-fine access "allows
efficient access at different resolution levels" / progressive queries
touch only the data they need.

Sweeps the resolution level of one box query and reports samples
returned, blocks touched, and encoded bytes read.  Shape: bytes touched
grow ~2x per level; the coarse prefix costs orders of magnitude less
than the full read.
"""

import pytest
from conftest import print_header

from repro.idx import IdxDataset, LocalAccess


def test_c2_progressive_access_economy(benchmark, terrain_idx):
    ds_probe = IdxDataset.open(terrain_idx)
    maxh = ds_probe.maxh

    rows = []
    for level in range(4, maxh + 1, 2):
        access = LocalAccess(terrain_idx)
        ds = IdxDataset.from_access(access)
        result = ds.read_result(resolution=level)
        rows.append(
            (level, result.data.size, access.counters.blocks_read, access.counters.bytes_read)
        )
        ds.close()

    # Timed kernel: an 8x-coarse overview (the dashboard's first frame).
    def coarse_read():
        ds = IdxDataset.open(terrain_idx)
        out = ds.read(resolution=maxh - 6)
        ds.close()
        return out

    benchmark(coarse_read)

    print_header("C2: progressive box query economy (256x256 terrain)")
    print(f"{'level':>5s} {'samples':>9s} {'blocks':>7s} {'encoded bytes':>14s} {'of full':>8s}")
    full_bytes = rows[-1][3]
    for level, samples, blocks, nbytes in rows:
        print(f"{level:>5d} {samples:>9d} {blocks:>7d} {nbytes:>14d} "
              f"{100.0 * nbytes / full_bytes:>7.2f}%")

    # Monotone growth and a steep coarse/full gap.  The coarse floor is
    # one block (levels 0..bits_per_block share block 0), so the gap is
    # bounded by the block granularity rather than the sample count.
    for (l1, s1, b1, n1), (l2, s2, b2, n2) in zip(rows, rows[1:]):
        assert s1 < s2 and b1 <= b2 and n1 <= n2
    assert rows[0][2] == 1  # exactly one block for the coarse prefix
    assert rows[0][3] < full_bytes / 10
