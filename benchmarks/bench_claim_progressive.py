"""C2 — §III-A claim: hierarchical coarse-to-fine access "allows
efficient access at different resolution levels" / progressive queries
touch only the data they need.

Sweeps the resolution level of one box query and reports samples
returned, blocks touched, and encoded bytes read.  Shape: bytes touched
grow ~2x per level; the coarse prefix costs orders of magnitude less
than the full read.
"""

import time

import pytest
from conftest import print_header

from repro.idx import IdxDataset, LocalAccess
from repro.network import SimClock
from repro.storage import SealStorage, open_remote_idx, upload_idx_to_seal


def test_c2_progressive_access_economy(benchmark, terrain_idx):
    ds_probe = IdxDataset.open(terrain_idx)
    maxh = ds_probe.maxh

    rows = []
    for level in range(4, maxh + 1, 2):
        access = LocalAccess(terrain_idx)
        ds = IdxDataset.from_access(access)
        result = ds.read_result(resolution=level)
        rows.append(
            (level, result.data.size, access.counters.blocks_read, access.counters.bytes_read)
        )
        ds.close()

    # Timed kernel: an 8x-coarse overview (the dashboard's first frame).
    def coarse_read():
        ds = IdxDataset.open(terrain_idx)
        out = ds.read(resolution=maxh - 6)
        ds.close()
        return out

    benchmark(coarse_read)

    print_header("C2: progressive box query economy (256x256 terrain)")
    print(f"{'level':>5s} {'samples':>9s} {'blocks':>7s} {'encoded bytes':>14s} {'of full':>8s}")
    full_bytes = rows[-1][3]
    for level, samples, blocks, nbytes in rows:
        print(f"{level:>5d} {samples:>9d} {blocks:>7d} {nbytes:>14d} "
              f"{100.0 * nbytes / full_bytes:>7.2f}%")

    # Monotone growth and a steep coarse/full gap.  The coarse floor is
    # one block (levels 0..bits_per_block share block 0), so the gap is
    # bounded by the block granularity rather than the sample count.
    for (l1, s1, b1, n1), (l2, s2, b2, n2) in zip(rows, rows[1:]):
        assert s1 < s2 and b1 <= b2 and n1 <= n2
    assert rows[0][2] == 1  # exactly one block for the coarse prefix
    assert rows[0][3] < full_bytes / 10


def _remote_progressive(terrain_idx, workers):
    """One full remote progressive session; returns (frames, sim s, real s, bytes)."""
    clock = SimClock()
    seal = SealStorage(site="slc", clock=clock)
    token = seal.issue_token("bench", ("read", "write"))
    upload_idx_to_seal(terrain_idx, seal, "terrain.idx", token=token, from_site="knox")
    ds = open_remote_idx(seal, "terrain.idx", token=token, from_site="knox", workers=workers)
    t0 = clock.now
    w0 = time.perf_counter()
    frames = [r.data for r in ds.progressive(start_resolution=8)]
    real = time.perf_counter() - w0
    return frames, clock.now - t0, real, ds.access.counters.bytes_read


def test_c2_parallel_remote_progressive(terrain_idx):
    """The parallel block pipeline vs its serial (one-worker) baseline.

    Same per-block ranged-GET code path in both runs; the only variable
    is how many fetch/decode lanes overlap.  Simulated WAN time must
    drop measurably, and the results must match bit-for-bit.
    """
    serial_frames, serial_sim, serial_real, serial_bytes = _remote_progressive(
        terrain_idx, workers=1
    )
    rows = [(1, serial_sim, serial_real)]
    for workers in (2, 4, 8):
        frames, sim_s, real_s, nbytes = _remote_progressive(terrain_idx, workers)
        rows.append((workers, sim_s, real_s))
        # Serial fallback and parallel pipeline agree bit-for-bit, and
        # account identical traffic.
        assert len(frames) == len(serial_frames)
        for a, b in zip(frames, serial_frames):
            assert a.tobytes() == b.tobytes()
        assert nbytes == serial_bytes

    print_header("C2b: remote progressive query, parallel fetch pipeline")
    print(f"{'workers':>7s} {'sim WAN s':>10s} {'speedup':>8s} {'real s':>8s}")
    for workers, sim_s, real_s in rows:
        print(f"{workers:>7d} {sim_s:>10.4f} {serial_sim / sim_s:>7.2f}x {real_s:>8.4f}")

    sims = dict((w, s) for w, s, _ in rows)
    assert sims[4] < serial_sim / 2.5  # measurable overlap win
    assert sims[8] <= sims[2]  # more lanes never slower (simulated)
