"""F3 — Fig. 3: the data conversion process across environments.

Fig. 3 shows one dataset being converted and made "accessible to all
users" via different environments: local disk, the private Seal cloud,
and the public Dataverse.  This bench stages the same TIFF->IDX
conversion through each environment and reports transfer + conversion
costs, verifying all three copies are identical.
"""

import os

import numpy as np
import pytest
from conftest import print_header

from repro.formats.tiff import write_tiff
from repro.formats.metadata import DatasetMetadata
from repro.idx import IdxDataset, tiff_to_idx
from repro.services import build_default_testbed
from repro.storage import open_remote_idx, upload_idx_to_seal


@pytest.fixture(scope="module")
def staged(tmp_path_factory, terrain_256):
    tmp = tmp_path_factory.mktemp("fig3")
    tiff_path = str(tmp / "terrain.tif")
    write_tiff(tiff_path, terrain_256, compression="none")
    return str(tmp), tiff_path


def _convert_everywhere(workdir, tiff_path, terrain):
    testbed = build_default_testbed(seed=3)
    token = testbed.seal.issue_token("user", ("read", "write"))
    results = {}

    # Environment 1: local conversion.
    local_idx = os.path.join(workdir, "local.idx")
    report = tiff_to_idx(tiff_path, local_idx, field_name="elevation")
    results["local"] = (IdxDataset.open(local_idx).read(field="elevation"),
                        report.idx_bytes, 0.0)

    # Environment 2: private cloud (convert locally, stage in Seal, stream back).
    t0 = testbed.clock.now
    upload_idx_to_seal(local_idx, testbed.seal, "terrain.idx", token=token, from_site="knox")
    remote = open_remote_idx(testbed.seal, "terrain.idx", token=token, from_site="knox")
    results["seal"] = (remote.read(field="elevation"), report.idx_bytes,
                       testbed.clock.now - t0)

    # Environment 3: public commons (publish on Dataverse, download, open).
    t0 = testbed.clock.now
    meta = DatasetMetadata(name="terrain", title="Terrain", keywords=["terrain"])
    doi = testbed.dataverse.create_dataset(meta, owner="user")
    with open(local_idx, "rb") as fh:
        testbed.dataverse.upload_file(doi, "terrain.idx", fh.read(), owner="user")
    testbed.dataverse.publish(doi, owner="user")
    blob = testbed.dataverse.get_file(doi, "terrain.idx")
    public_idx = os.path.join(workdir, "public.idx")
    with open(public_idx, "wb") as fh:
        fh.write(blob)
    results["dataverse"] = (IdxDataset.open(public_idx).read(field="elevation"),
                            len(blob), testbed.clock.now - t0)
    return results


def test_fig3_conversion_across_environments(benchmark, staged, terrain_256):
    workdir, tiff_path = staged
    results = benchmark.pedantic(
        _convert_everywhere, args=(workdir, tiff_path, terrain_256), rounds=3, iterations=1
    )

    print_header("Fig. 3: one conversion, three environments")
    print(f"{'environment':<12s} {'bytes':>10s} {'virtual net time':>18s} {'identical':>10s}")
    reference = results["local"][0]
    for env, (data, nbytes, net_s) in results.items():
        same = np.array_equal(data, reference)
        print(f"{env:<12s} {nbytes:>10d} {net_s:>16.3f}s {str(same):>10s}")
        assert same, env
