"""Ablation — hot/cold storage tiering under a skewed access workload.

Scientific access is heavy-tailed: a few datasets absorb most reads.
This ablation replays a Zipf-like workload over 16 archived objects
with and without lifecycle passes and reports the virtual time each
spends — tiering should recover most of the gap to an (infeasible)
all-hot configuration.
"""

import numpy as np
import pytest
from conftest import print_header

from repro.network.clock import SimClock
from repro.storage.lifecycle import TierPolicy, TieredStore


def _workload(rng, n_objects=16, n_reads=400):
    """Zipf-ish key sequence: object 0 dominates."""
    weights = 1.0 / (1.0 + np.arange(n_objects)) ** 1.5
    weights /= weights.sum()
    return rng.choice(n_objects, size=n_reads, p=weights)


def _run(policy_every: int, all_hot: bool = False) -> float:
    rng = np.random.default_rng(0)
    store = TieredStore(
        policy=TierPolicy(promote_after=4, demote_below=1,
                          hot_capacity_bytes=400_000),
        clock=SimClock(),
    )
    for i in range(16):
        store.put(f"obj{i}", bytes(100_000),
                  tier=TieredStore.HOT if all_hot else TieredStore.COLD)
    reads = _workload(rng)
    t0 = store.clock.now
    for i, key_id in enumerate(reads):
        store.get(f"obj{key_id}")
        if policy_every and (i + 1) % policy_every == 0:
            store.run_policy()
    return store.clock.now - t0


def test_ablation_tiering(benchmark):
    no_policy = _run(policy_every=0)
    with_policy = _run(policy_every=40)
    all_hot = _run(policy_every=0, all_hot=True)
    benchmark.pedantic(lambda: _run(policy_every=40), rounds=3, iterations=1)

    print_header("Ablation: lifecycle tiering under a Zipf workload")
    print(f"all cold, no policy : {no_policy:8.2f} virtual s")
    print(f"cold + policy/40 ops: {with_policy:8.2f} virtual s")
    print(f"all hot (infeasible): {all_hot:8.2f} virtual s")
    recovered = (no_policy - with_policy) / (no_policy - all_hot)
    print(f"gap recovered       : {recovered:6.1%}")

    assert with_policy < no_policy / 2          # tiering pays
    assert recovered > 0.5                       # most of the gap closes
    assert all_hot < with_policy                 # but hot-everything still wins
