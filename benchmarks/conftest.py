"""Shared fixtures for the benchmark harness.

Every bench regenerates one paper artifact (table, figure, or embedded
quantitative claim — see DESIGN.md section 4) and prints the rows/series
the paper reports.  Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.idx import IdxDataset
from repro.terrain.dem import composite_terrain


def print_header(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


@pytest.fixture(scope="session")
def terrain_256():
    """A 256x256 terrain raster shared across benches (seeded)."""
    return composite_terrain((256, 256), seed=42)


@pytest.fixture(scope="session")
def terrain_idx(tmp_path_factory, terrain_256):
    """The shared terrain stored as IDX (zlib blocks)."""
    path = str(tmp_path_factory.mktemp("bench") / "terrain.idx")
    ds = IdxDataset.create(
        path, dims=terrain_256.shape, fields={"elevation": "float32"}, bits_per_block=10
    )
    ds.write(terrain_256, field="elevation")
    ds.finalize()
    return path
