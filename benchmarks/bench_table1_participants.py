"""T1 — Table I: participants and professional backgrounds per venue.

Regenerates the paper's participation table from the embedded roster and
checks its published totals (108 overall; 57 in-person / 51 virtual).
"""

from conftest import print_header

from repro.survey import TABLE1_ROWS, by_audience, by_modality, total_participants


def _render_table1() -> list:
    rows = []
    for venue in TABLE1_ROWS:
        rows.append((venue.venue, venue.modality, venue.audience, venue.participants))
    rows.append(("Total Participants", "", "", total_participants()))
    return rows


def test_table1_regeneration(benchmark):
    rows = benchmark(_render_table1)

    print_header("Table I: participants per tutorial presentation")
    print(f"{'Tutorial':<72s} {'Modality':<10s} {'Audience':<38s} {'N':>4s}")
    for venue, modality, audience, n in rows:
        print(f"{venue[:72]:<72s} {modality:<10s} {audience:<38s} {n:>4d}")

    assert rows[-1][3] == 108  # the paper's headline total
    assert by_modality() == {"In-person": 57, "Virtual": 51}
    assert len(by_audience()) == 4
