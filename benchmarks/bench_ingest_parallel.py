"""Ingest engine — parallel block encoding and batched conversion.

Regenerates the write-path numbers behind DESIGN.md section 8 and emits
them as ``BENCH_ingest.json`` next to the working directory:

- Encode-worker ablation: per-block encode times are measured once,
  serially, then packed into ``w`` lanes (greedy least-loaded) to give a
  deterministic simulated wall per worker count — the same lane model the
  read-path bench uses for the WAN clock.  Real ``finalize(workers=w)``
  wall-clock is reported alongside.  Output bytes are asserted identical
  at every worker count.
- Batch conversion throughput: ``convert_many`` over a directory of
  TIFFs at workers 1 vs 4.

Set ``BENCH_TINY=1`` to run a seconds-scale configuration (CI smoke).
"""

import hashlib
import json
import os
import time

import numpy as np
import pytest
from conftest import print_header

from repro.compression import get_codec
from repro.formats.tiff import write_tiff
from repro.idx import IdxDataset, convert_many
from repro.terrain.dem import composite_terrain

TINY = bool(int(os.environ.get("BENCH_TINY", "0")))

SIZE = (96, 96) if TINY else (320, 320)
BITS = 7 if TINY else 10
N_FILES = 3 if TINY else 8
WORKER_SWEEP = [1, 2, 4, 8]
CODEC = "shuffle:level=6"

_RESULTS = {"config": "tiny" if TINY else "full", "codec": CODEC}


def _digest(path):
    with open(path, "rb") as fh:
        return hashlib.sha256(fh.read()).hexdigest()


def _build(path, data, workers):
    ds = IdxDataset.create(
        path, dims=data.shape, fields={"elevation": "float32"},
        codec=CODEC, bits_per_block=BITS,
    )
    ds.write(data, field="elevation")
    ds.finalize(workers=workers)
    return ds


def _lane_pack(times, workers):
    """Greedy least-loaded packing; the makespan is the simulated wall."""
    lanes = [0.0] * workers
    for t in sorted(times, reverse=True):
        lanes[lanes.index(min(lanes))] += t
    return max(lanes)


def test_encode_worker_ablation(benchmark, tmp_path):
    data = composite_terrain(SIZE, seed=7)

    # Per-block encode cost, measured once and serially: time the codec on
    # every non-fill block chunk of the scattered buffer (snapshotted
    # before finalize clears it).
    probe = IdxDataset.create(
        str(tmp_path / "probe.idx"), dims=data.shape,
        fields={"elevation": "float32"}, codec=CODEC, bits_per_block=BITS,
    )
    probe.write(data, field="elevation")
    buf = next(iter(probe._buffers.values())).copy()
    probe.finalize()
    codec = get_codec(CODEC)
    block_size = probe.layout.block_size
    times = []
    for bid in range(probe.layout.num_blocks):
        chunk = buf[bid * block_size:(bid + 1) * block_size]
        t0 = time.perf_counter()
        codec.encode_array(chunk)
        times.append(time.perf_counter() - t0)

    rows = []
    ref = None
    for workers in WORKER_SWEEP:
        path = str(tmp_path / f"w{workers}.idx")
        w0 = time.perf_counter()
        ds = _build(path, data, workers=workers)
        real = time.perf_counter() - w0
        digest = _digest(path)
        if ref is None:
            ref = digest
        assert digest == ref  # byte-identical output at every worker count
        stats = ds.last_encode_stats
        rows.append({
            "workers": workers,
            "simulated_wall_s": _lane_pack(times, workers),
            "real_wall_s": real,
            "encode_wall_s": stats.wall_seconds,
            "blocks_encoded": stats.blocks_encoded,
            "blocks_skipped_fill": stats.blocks_skipped_fill,
        })

    benchmark(lambda: _build(str(tmp_path / "bench.idx"), data, workers=4))

    print_header(f"Ablation: encode workers, {SIZE[0]}x{SIZE[1]} finalize ({CODEC})")
    print(f"{'workers':>7s} {'sim s':>9s} {'speedup':>8s} {'real s':>8s} {'blocks':>7s}")
    base = rows[0]["simulated_wall_s"]
    for row in rows:
        print(f"{row['workers']:>7d} {row['simulated_wall_s']:>9.4f} "
              f"{base / row['simulated_wall_s']:>7.2f}x {row['real_wall_s']:>8.4f} "
              f"{row['blocks_encoded']:>7d}")

    # Simulated wall decreases monotonically as lanes are added (1 -> 4);
    # real wall is reported but not asserted (GIL-bound at small blocks).
    sims = [row["simulated_wall_s"] for row in rows]
    assert sims[1] < sims[0] and sims[2] < sims[1]
    assert sims[3] <= sims[2] * 1.001

    _RESULTS["encode_worker_ablation"] = {
        "shape": list(SIZE), "bits_per_block": BITS,
        "blocks_total": probe.layout.num_blocks, "rows": rows,
    }
    _flush(_RESULTS)


def test_batch_conversion_throughput(tmp_path):
    jobs = []
    rng = np.random.default_rng(11)
    for i in range(N_FILES):
        src = str(tmp_path / f"src{i}.tif")
        write_tiff(src, rng.random(SIZE).astype(np.float32) * (i + 1))
        jobs.append((src, str(tmp_path / f"b-src{i}.idx")))

    rows = []
    sizes = None
    for workers in (1, 4):
        batch_jobs = [(s, d.replace("b-", f"w{workers}-")) for s, d in jobs]
        batch = convert_many(batch_jobs, workers=workers, codec=CODEC)
        assert batch.ok
        got = [r.idx_bytes for r in batch.reports]
        if sizes is None:
            sizes = got
        assert got == sizes  # worker count never changes the output
        rows.append({
            "workers": workers,
            "files": N_FILES,
            "wall_s": batch.wall_seconds,
            "throughput_mb_s": batch.throughput_bytes_per_s / 2**20,
            "reduction_percent": batch.reduction_percent,
        })

    print_header(f"Batch conversion: {N_FILES} TIFFs ({SIZE[0]}x{SIZE[1]}) via convert_many")
    print(f"{'workers':>7s} {'wall s':>9s} {'MB/s':>8s} {'reduction':>10s}")
    for row in rows:
        print(f"{row['workers']:>7d} {row['wall_s']:>9.4f} {row['throughput_mb_s']:>8.2f} "
              f"{row['reduction_percent']:>+9.1f}%")

    _RESULTS["batch_conversion"] = {"rows": rows}
    _flush(_RESULTS)


def _flush(results):
    with open("BENCH_ingest.json", "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
    print("wrote BENCH_ingest.json")
