"""F1 — Fig. 1: the overarching tutorial goals and structure.

Regenerates the goal/session/level breakdown of Fig. 1 and §II and checks
the published constraints: 3 goals, 30/40/30 difficulty split, 30+60+30
minute sessions, 4 audience types.
"""

from conftest import print_header

from repro.core import default_tutorial_plan


def test_fig1_tutorial_structure(benchmark):
    plan = benchmark(default_tutorial_plan)

    print_header("Fig. 1: tutorial goals and structure")
    for i, goal in enumerate(plan.goals, 1):
        print(f"goal {i}: {goal.title}")
    print()
    for line in plan.agenda():
        print(" ", line)
    print()
    print("difficulty split:", {k: f"{v:.0%}" for k, v in plan.level_split.items()})
    print("audiences:", ", ".join(plan.audiences))

    assert len(plan.goals) == 3
    assert [s.minutes for s in plan.sessions] == [30, 60, 30]
    assert plan.level_split == {"beginner": 0.30, "intermediate": 0.40, "advanced": 0.30}
    assert plan.is_half_day
