"""Ablation — block size (``bits_per_block``), the classic IDX knob.

Small blocks give fine-grained access (a coarse query touches few
bytes) but more table overhead and more round trips; large blocks
amortise per-request costs but over-fetch on small queries.  This sweep
quantifies the trade-off the default (2^14 samples) balances.
"""

import os
import time

import pytest
from conftest import print_header

from repro.idx import IdxDataset, LocalAccess


BITS = [6, 8, 10, 12, 14]


def test_ablation_block_size(benchmark, tmp_path, terrain_256):
    rows = []
    for bits in BITS:
        path = str(tmp_path / f"b{bits}.idx")
        ds = IdxDataset.create(path, dims=terrain_256.shape, bits_per_block=bits)
        ds.write(terrain_256)
        ds.finalize()
        file_bytes = os.path.getsize(path)

        access = LocalAccess(path)
        probe = IdxDataset.from_access(access)
        probe.read(resolution=8)  # coarse overview
        coarse_bytes = access.counters.bytes_read
        coarse_blocks = access.counters.blocks_read

        t0 = time.perf_counter()
        full = IdxDataset.open(path)
        full.read()
        full_time = time.perf_counter() - t0
        rows.append((bits, 1 << bits, file_bytes, coarse_blocks, coarse_bytes, full_time))

    benchmark(lambda: IdxDataset.open(str(tmp_path / "b10.idx")).read())

    print_header("Ablation: bits_per_block sweep (256x256 terrain)")
    print(f"{'bits':>5s} {'block':>7s} {'file bytes':>11s} {'coarse blks':>12s} "
          f"{'coarse bytes':>13s} {'full read':>10s}")
    for bits, block, fb, cb, cby, ft in rows:
        print(f"{bits:>5d} {block:>7d} {fb:>11d} {cb:>12d} {cby:>13d} {ft * 1e3:>8.1f}ms")

    # Trade-off shape: small blocks -> cheaper coarse reads ...
    coarse_costs = [r[4] for r in rows]
    assert coarse_costs[0] < coarse_costs[-1]
    # ... at a per-block metadata cost (table entry, codec framing,
    # integrity checksum, and min/max+bbox stats): the 64-sample extreme
    # pays ~70% file overhead while 1 KiB+ blocks converge to data size.
    sizes = [r[2] for r in rows]
    assert max(sizes) < 2.0 * min(sizes)
    assert sizes[2] < 1.06 * sizes[-1]  # >=1 KiB blocks: overhead is noise
