"""F4 — Fig. 4: the four-step modular workflow, end to end.

Runs the assembled Step 1 -> 4 pipeline and reports per-step wall time
plus the artifacts each step hands to the next — the sequence the figure
depicts (generation -> IDX conversion -> static validation -> interactive
visualization & analysis).
"""

import pytest
from conftest import print_header

from repro.core import build_tutorial_workflow


def _run(tmpdir):
    wf = build_tutorial_workflow(tmpdir, shape=(128, 192), seed=4, grid=(2, 2))
    run = wf.run()
    assert run.ok
    return run


def test_fig4_four_step_workflow(benchmark, tmp_path):
    run = benchmark.pedantic(_run, args=(str(tmp_path),), rounds=3, iterations=1)

    print_header("Fig. 4: four-step modular workflow")
    print(f"{'step':<22s} {'wall time':>12s}   outputs")
    for result in run.results:
        outs = ", ".join(result.outputs)
        print(f"{result.name:<22s} {result.seconds * 1e3:>10.1f} ms   {outs}")

    print("\nStep 2 size accounting (paper: ~20% reduction):")
    for name, report in sorted(run.context["conversion_reports"].items()):
        print(f"  {name:<10s} {report.source_bytes:>9d} -> {report.idx_bytes:>9d} B "
              f"({report.reduction_percent:+5.1f}%)")

    print("\nStep 3 validation (lossless => identical):")
    for name, report in sorted(run.context["validation_reports"].items()):
        print(f"  {name:<10s} {report}")

    # Shape assertions: the pipeline is sequential and every gate passes.
    assert [r.name for r in run.results] == [
        "step1-generate", "step2-convert", "step3-validate", "step4-interactive",
    ]
    assert all(r.status == "ok" for r in run.results)
    assert all(rep.identical for rep in run.context["validation_reports"].values())
