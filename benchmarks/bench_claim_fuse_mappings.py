"""C5 — §III-B claim: NSDF-FUSE's "customizable mapping packages" let
users trade object-store behaviour against workload shape.

Runs two canonical workloads (many small files; one large file with
windowed reads) against the three mapping packages and reports object
counts and store operations.  Shapes: archive minimises objects for
small files (at write-amplification cost); chunked minimises bytes moved
for windowed reads; one-to-one is the simple middle ground.
"""

import numpy as np
import pytest
from conftest import print_header

from repro.storage import ArchiveMapping, ChunkedMapping, FuseMount, ObjectStore, OneToOneMapping

MAPPINGS = {
    "one-to-one": lambda: OneToOneMapping(),
    "chunked": lambda: ChunkedMapping("256 KiB"),
    "archive": lambda: ArchiveMapping("4 MiB"),
}


def _small_files_workload(mount):
    rng = np.random.default_rng(0)
    for i in range(64):
        mount.write_file(f"logs/part-{i:03d}.json", bytes(rng.integers(0, 256, 2000, dtype=np.uint8)))
    for i in range(0, 64, 4):
        mount.read_file(f"logs/part-{i:03d}.json")


def _windowed_read_workload(mount):
    data = np.random.default_rng(1).integers(0, 256, 4 * 1024 * 1024, dtype=np.uint8).tobytes()
    mount.write_file("volume.raw", data)
    for offset in range(0, len(data), 512 * 1024):
        mount.read_range("volume.raw", offset, 4096)


@pytest.mark.parametrize("workload_name,workload", [
    ("many-small-files", _small_files_workload),
    ("windowed-reads", _windowed_read_workload),
])
def test_c5_mapping_package_tradeoffs(benchmark, workload_name, workload):
    results = {}
    for name, factory in MAPPINGS.items():
        store = ObjectStore()
        mount = FuseMount(store, "fs", factory())
        before = store.stats.snapshot()
        workload(mount)
        delta = store.stats.delta(before)
        results[name] = (len(store.list("fs")), delta)

    # Timed kernel: the chunked mapping on this workload.
    def timed():
        store = ObjectStore()
        workload(FuseMount(store, "fs", ChunkedMapping("256 KiB")))

    benchmark.pedantic(timed, rounds=3, iterations=1)

    print_header(f"C5: mapping packages under '{workload_name}'")
    print(f"{'mapping':<12s} {'objects':>8s} {'puts':>6s} {'gets':>6s} "
          f"{'bytes in':>12s} {'bytes out':>12s}")
    for name, (objects, delta) in results.items():
        print(f"{name:<12s} {objects:>8d} {delta.puts:>6d} {delta.gets:>6d} "
              f"{delta.bytes_in:>12d} {delta.bytes_out:>12d}")

    if workload_name == "many-small-files":
        # Archive packs 64 files into very few objects but amplifies writes.
        assert results["archive"][0] < results["one-to-one"][0] / 4
        assert results["archive"][1].bytes_in > results["one-to-one"][1].bytes_in
    else:
        # Every mapping's ranged reads beat naive whole-file-per-window
        # access (8 windows x 4 MiB); chunked additionally bounds each
        # window to its covering chunk(s).
        naive = 8 * 4 * 1024 * 1024
        for name, (_, delta) in results.items():
            assert delta.bytes_out < naive / 4, name
        assert results["chunked"][1].bytes_out <= 8 * (256 * 1024 + 4096) * 2
