"""C8 — §III-A claim: "By continuously analyzing how data is accessed,
OpenVisus can dynamically update the data layout to prioritize frequently
accessed data."

Records a hot-region access log, rewrites the IDX file with hot blocks
packed first, and measures page-granular remote fetches for the hot
working set before and after.  Shape: the reorganised layout serves the
hot set from (at most) as many pages, typically fewer — because the hot
blocks become physically contiguous.
"""

import numpy as np
import pytest
from conftest import print_header

from repro.idx import IdxDataset, LocalAccess
from repro.idx.idxfile import FileByteSource, IdxBinaryReader
from repro.idx.layout import PagedByteSource, access_histogram, reorganize
from repro.terrain import composite_terrain


@pytest.fixture(scope="module")
def workload(tmp_path_factory):
    """A 256x256 dataset with small blocks and a hot-corner access log."""
    tmp = tmp_path_factory.mktemp("c8")
    dem = composite_terrain((256, 256), seed=13)
    path = str(tmp / "cold.idx")
    ds = IdxDataset.create(path, dims=dem.shape, bits_per_block=6, codec="zlib:level=6")
    ds.write(dem)
    ds.finalize()
    access = LocalAccess(path)
    hot = IdxDataset.from_access(access)
    for _ in range(8):
        hot.read(box=((192, 192), (256, 256)))  # the analyst's favourite corner
    return str(tmp), path, access.counters.access_log


def _pages_for_hot_set(path, log, page_size=8 * 1024):
    src = PagedByteSource(FileByteSource(path), page_size=page_size)
    reader = IdxBinaryReader(src)
    src.reset_counters()
    for key in sorted(set(log)):
        reader.read_block(*key)
    return src.pages_fetched, src.bytes_fetched


def test_c8_layout_reorganisation(benchmark, workload):
    tmp, cold_path, log = workload
    hot_path = f"{tmp}/hot.idx"
    info = benchmark.pedantic(
        lambda: reorganize(cold_path, hot_path, log), rounds=3, iterations=1
    )

    # Content is untouched by the rewrite.
    assert np.array_equal(IdxDataset.open(hot_path).read(), IdxDataset.open(cold_path).read())

    pages_cold, bytes_cold = _pages_for_hot_set(cold_path, log)
    pages_hot, bytes_hot = _pages_for_hot_set(hot_path, log)
    heat = access_histogram(log)

    print_header("C8: access-driven layout reorganisation")
    print(f"hot blocks               : {info['blocks_hot']} / {info['blocks_total']}")
    print(f"distinct hot accesses    : {len(heat)}")
    print(f"pages for hot set (cold) : {pages_cold}  ({bytes_cold} B)")
    print(f"pages for hot set (hot)  : {pages_hot}  ({bytes_hot} B)")

    assert info["blocks_hot"] > 0
    assert pages_hot <= pages_cold
    assert bytes_hot <= bytes_cold
