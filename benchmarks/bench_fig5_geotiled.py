"""F5 — Fig. 5: GEOtiled terrain-parameter generation.

Sweeps the tile grid for the slope computation and reports, per
configuration: wall time, exactness vs the global (untiled) baseline
with proper halos, and the seam error that appears when halos are
omitted.  The paper's claim: partitioning accelerates computation while
preserving accuracy — so with halos the mosaic must be bit-exact.
"""

import time

import numpy as np
import pytest
from conftest import print_header

from repro.terrain import compute_tiled, slope, seam_report, tiled_accuracy


GRIDS = [(1, 1), (2, 2), (4, 4), (8, 8)]


@pytest.fixture(scope="module")
def baseline(terrain_256):
    return slope(terrain_256, 30.0)


def test_fig5_geotiled_accuracy_and_speed(benchmark, terrain_256, baseline):
    kernel = lambda t: slope(t, 30.0)  # noqa: E731

    rows = []
    for grid in GRIDS:
        t0 = time.perf_counter()
        with_halo = compute_tiled(terrain_256, kernel, grid=grid, halo=1)
        elapsed = time.perf_counter() - t0
        acc = tiled_accuracy(with_halo, baseline)
        no_halo = compute_tiled(terrain_256, kernel, grid=grid, halo=0)
        seams = seam_report(no_halo, baseline, grid)
        rows.append((grid, elapsed, acc, seams))

    # The timed kernel: the tutorial's default 4x4 grid.
    benchmark(lambda: compute_tiled(terrain_256, kernel, grid=(4, 4), halo=1))

    print_header("Fig. 5: GEOtiled slope over 256x256 terrain")
    print(f"{'grid':<8s} {'time':>10s} {'halo=1 max|err|':>16s} "
          f"{'halo=0 seam MAE':>16s} {'halo=0 interior MAE':>20s}")
    for grid, elapsed, acc, seams in rows:
        print(f"{str(grid):<8s} {elapsed * 1e3:>8.1f}ms {acc.max_abs_error:>16.3g} "
              f"{seams['seam_mae']:>16.4f} {seams['interior_mae']:>20.4f}")

    for grid, _, acc, seams in rows:
        assert acc.exact, grid                       # halos preserve accuracy
        if grid != (1, 1):
            assert seams["seam_mae"] > seams["interior_mae"]  # halos matter
            assert seams["interior_mae"] == pytest.approx(0.0, abs=1e-12)
