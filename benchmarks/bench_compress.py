"""Compression benchmark suite — rate/throughput per codec × corpus.

The calibration harness behind ``repro.compression.adaptive`` (ROADMAP
item 3, in the spirit of LUNDIsim's compression benchmarks): sweep every
registered codec over heterogeneous corpora

- ``terrain``  — GEOtiled terrain products (elevation/slope/aspect/
  hillshade tiles, the tutorial's actual ingest payload),
- ``netcdf``   — fields written to and read back from a real NetCDF
  file (smooth temperature, sparse precipitation, noisy wind),
- ``synthetic``— smooth gradient / uniform noise / sparse / quantized
  arrays spanning dtypes,

and emit ``BENCH_compress.json`` with ratio, encode MB/s, and decode
MB/s per (codec, corpus) row.  A second test pits the adaptive selector
against the fixed ``shuffle:level=6`` pipeline on the full ingest
corpus: the headline criteria are >= 20 % size reduction (the paper's
number), strictly beating the fixed codec, staying byte-exact, and
keeping encode throughput within 10 % of fixed.

Set ``BENCH_TINY=1`` for a seconds-scale configuration (CI smoke).
"""

import json
import os
import time

import numpy as np
import pytest
from conftest import print_header

from repro.compression import ZfpCodec, get_codec
from repro.formats.ncdf import NcdfFile, read_ncdf, write_ncdf
from repro.formats.tiff import write_tiff
from repro.idx import IdxDataset, tiff_to_idx
from repro.terrain import GeoTiler
from repro.terrain.dem import composite_terrain

TINY = bool(int(os.environ.get("BENCH_TINY", "0")))

SIZE = (96, 96) if TINY else (256, 256)
BITS = 10 if TINY else 14
REPEATS = 1 if TINY else 3

CODECS = [
    "identity",
    "rle",
    "lz4",
    "zlib:level=6",
    "shuffle:level=6",
    "zfp:precision=16",
    "adaptive:level=6",
]

FIXED = "shuffle:level=6"
ADAPTIVE = "adaptive:level=6"

_RESULTS = {"config": "tiny" if TINY else "full"}


def _terrain_corpus():
    base = composite_terrain(SIZE, seed=42)
    products = GeoTiler(grid=(2, 2)).compute(
        base, parameters=("elevation", "slope", "aspect", "hillshade")
    )
    return {name: np.nan_to_num(r).astype(np.float32) for name, r in products.items()}


def _netcdf_corpus(tmp_dir):
    """Fields that really went through the NetCDF writer/reader."""
    rng = np.random.default_rng(9)
    ny, nx = SIZE
    lat = np.linspace(-30, 30, ny)
    temperature = (
        20 + 10 * np.cos(np.deg2rad(lat))[:, None] * np.ones((1, nx))
        + rng.normal(0, 0.3, SIZE)
    ).astype(np.float32)
    rain = np.where(rng.random(SIZE) < 0.04, rng.gamma(2.0, 3.0, SIZE), 0.0).astype(
        np.float32
    )
    wind = rng.normal(5, 2, SIZE).astype(np.float32)
    nc = NcdfFile()
    nc.add_dim("y", ny)
    nc.add_dim("x", nx)
    for name, arr in (("temperature", temperature), ("rain", rain), ("wind", wind)):
        nc.add_variable(name, ("y", "x"), arr)
    path = os.path.join(tmp_dir, "fields.nc")
    write_ncdf(path, nc)
    loaded = read_ncdf(path)
    return {name: np.asarray(var.data, dtype=np.float32) for name, var in loaded.variables.items()}


def _synthetic_corpus():
    rng = np.random.default_rng(3)
    smooth = np.add.outer(
        np.linspace(0, 500, SIZE[0]), np.linspace(0, 250, SIZE[1])
    ).astype(np.float32)
    noisy = rng.random(SIZE).astype(np.float32)
    sparse = np.where(rng.random(SIZE) < 0.05, rng.random(SIZE), 0.0).astype(np.float32)
    quantized = np.round(rng.normal(0, 20, SIZE)).astype(np.int32)
    bytes_noise = rng.integers(0, 256, SIZE, dtype=np.uint8)
    return {
        "smooth": smooth,
        "noisy": noisy,
        "sparse": sparse,
        "quantized": quantized,
        "bytes_noise": bytes_noise,
    }


@pytest.fixture(scope="module")
def corpora(tmp_path_factory):
    tmp = str(tmp_path_factory.mktemp("compress"))
    return {
        "terrain": _terrain_corpus(),
        "netcdf": _netcdf_corpus(tmp),
        "synthetic": _synthetic_corpus(),
    }


def _sweep_one(codec, arrays):
    """(ratio, encode MB/s, decode MB/s) of one codec over one corpus."""
    raw = sum(a.nbytes for a in arrays)
    enc_s = dec_s = 0.0
    encoded = 0
    for _ in range(REPEATS):
        enc_round = dec_round = 0.0
        encoded = 0
        for a in arrays:
            t0 = time.perf_counter()
            blob = codec.encode_array(a)
            enc_round += time.perf_counter() - t0
            encoded += len(blob)
            t0 = time.perf_counter()
            back = codec.decode_array(blob, a.dtype, a.shape)
            dec_round += time.perf_counter() - t0
            if codec.lossless:
                assert back.tobytes() == np.ascontiguousarray(a).tobytes()
        # best-of: timing noise only ever makes a round slower
        enc_s = enc_round if enc_s == 0 else min(enc_s, enc_round)
        dec_s = dec_round if dec_s == 0 else min(dec_s, dec_round)
    return encoded / raw, raw / enc_s / 2**20, raw / dec_s / 2**20


def test_codec_corpus_sweep(corpora):
    rows = []
    for corpus_name, fields in sorted(corpora.items()):
        arrays = [fields[k] for k in sorted(fields)]
        for spec in CODECS:
            codec = get_codec(spec)
            if not codec.lossless:
                # zfp is float-only; drop the integer/byte arrays.
                use = [a for a in arrays if a.dtype.kind == "f"]
            else:
                use = arrays
            ratio, enc_mb_s, dec_mb_s = _sweep_one(codec, use)
            rows.append(
                {
                    "codec": spec,
                    "corpus": corpus_name,
                    "ratio": round(ratio, 4),
                    "encode_mb_s": round(enc_mb_s, 2),
                    "decode_mb_s": round(dec_mb_s, 2),
                }
            )

    print_header(f"Codec x corpus sweep ({SIZE[0]}x{SIZE[1]}, {REPEATS} repeats)")
    print(f"{'codec':<18s} {'corpus':<10s} {'ratio':>7s} {'enc MB/s':>9s} {'dec MB/s':>9s}")
    for row in rows:
        print(
            f"{row['codec']:<18s} {row['corpus']:<10s} {row['ratio']:>7.3f} "
            f"{row['encode_mb_s']:>9.1f} {row['decode_mb_s']:>9.1f}"
        )

    by = {(r["codec"], r["corpus"]): r for r in rows}
    corpora_names = sorted({r["corpus"] for r in rows})
    assert len(corpora_names) >= 3
    for corpus in corpora_names:
        # The adaptive selector never loses badly to its best candidate:
        # per corpus it is at least as good as the *worst* of its
        # candidates and within a whisker of the best fixed choice.
        best_fixed = min(
            by[(spec, corpus)]["ratio"] for spec in ("zlib:level=6", "shuffle:level=6")
        )
        assert by[(ADAPTIVE, corpus)]["ratio"] <= best_fixed * 1.05 + 0.01, corpus
        # Identity is the never-expand ceiling.
        assert by[(ADAPTIVE, corpus)]["ratio"] <= by[("identity", corpus)]["ratio"] + 0.01

    _RESULTS["sweep"] = rows
    _flush()


def _ingest_corpus(tmp_dir):
    """The heterogeneous ingest payload the motivation describes: smooth
    terrain products, constant nodata regions, sparse and noisy fields."""
    fields = dict(_terrain_corpus())
    rng = np.random.default_rng(21)
    nodata = fields["elevation"].copy()
    nodata[: SIZE[0] // 2, : SIZE[1] // 2] = 0.0  # masked "ocean" quadrant
    fields["masked_elevation"] = nodata
    fields["noise_field"] = rng.random(SIZE).astype(np.float32)
    fields["sparse_field"] = np.where(
        rng.random(SIZE) < 0.03, rng.random(SIZE), 0.0
    ).astype(np.float32)
    paths = {}
    for name, arr in fields.items():
        path = os.path.join(tmp_dir, f"{name}.tif")
        write_tiff(path, arr, compression="none")
        paths[name] = path
    return fields, paths


def _convert_all(paths, tmp_dir, codec, tag):
    reports = {}
    wall = 0.0
    for name, src in paths.items():
        report = tiff_to_idx(
            src, os.path.join(tmp_dir, f"{tag}-{name}.idx"), codec=codec, bits_per_block=BITS
        )
        wall += report.encode_stats.wall_seconds
        reports[name] = report
    return reports, wall


def test_adaptive_vs_fixed_on_ingest_corpus(tmp_path):
    fields, paths = _ingest_corpus(str(tmp_path))
    raw_bytes = sum(os.path.getsize(p) for p in paths.values())

    fixed_wall = adaptive_wall = None
    fixed_reports = adaptive_reports = None
    for _ in range(REPEATS):
        reports, wall = _convert_all(paths, str(tmp_path), FIXED, "fixed")
        fixed_reports = reports
        fixed_wall = wall if fixed_wall is None else min(fixed_wall, wall)
        reports, wall = _convert_all(paths, str(tmp_path), ADAPTIVE, "adaptive")
        adaptive_reports = reports
        adaptive_wall = wall if adaptive_wall is None else min(adaptive_wall, wall)

    def total(reports, attr):
        return sum(getattr(r, attr) for r in reports.values())

    fixed_idx = total(fixed_reports, "idx_bytes")
    adaptive_idx = total(adaptive_reports, "idx_bytes")
    src = total(fixed_reports, "source_bytes")
    fixed_red = 100.0 * (1 - fixed_idx / src)
    adaptive_red = 100.0 * (1 - adaptive_idx / src)
    fixed_mb_s = raw_bytes / fixed_wall / 2**20
    adaptive_mb_s = raw_bytes / adaptive_wall / 2**20

    codec_bytes = {}
    for r in adaptive_reports.values():
        for spec, n in r.codec_bytes.items():
            codec_bytes[spec] = codec_bytes.get(spec, 0) + n

    print_header("Ingest corpus: fixed shuffle+zlib vs adaptive per-block")
    print(f"{'pipeline':<10s} {'idx bytes':>11s} {'reduction':>10s} {'enc MB/s':>9s}")
    print(f"{'fixed':<10s} {fixed_idx:>11d} {fixed_red:>9.1f}% {fixed_mb_s:>9.1f}")
    print(f"{'adaptive':<10s} {adaptive_idx:>11d} {adaptive_red:>9.1f}% {adaptive_mb_s:>9.1f}")
    print("adaptive codec split:")
    for spec in sorted(codec_bytes):
        print(f"  {spec:<26s} {codec_bytes[spec]:>11d} B")

    # Lossless round trip, byte-exact, for every field and both pipelines.
    for name, arr in fields.items():
        for reports in (fixed_reports, adaptive_reports):
            back = IdxDataset.open(reports[name].idx_path).read()
            assert back.tobytes() == arr.tobytes(), name

    # The headline criteria (ISSUE 9): beat the paper's 20 % on the
    # heterogeneous ingest corpus, strictly beat the fixed pipeline, and
    # stay within 10 % of its encode throughput.
    assert adaptive_red > fixed_red, (adaptive_red, fixed_red)
    if not TINY:  # smoke-size fields barely compress and timing is noisy
        assert adaptive_red >= 20.0, f"adaptive reduction {adaptive_red:.1f}% < 20%"
        assert adaptive_mb_s >= 0.9 * fixed_mb_s, (adaptive_mb_s, fixed_mb_s)

    _RESULTS["ingest"] = {
        "source_bytes": src,
        "fixed": {
            "codec": FIXED,
            "idx_bytes": fixed_idx,
            "reduction_percent": round(fixed_red, 2),
            "encode_mb_s": round(fixed_mb_s, 2),
        },
        "adaptive": {
            "codec": ADAPTIVE,
            "idx_bytes": adaptive_idx,
            "reduction_percent": round(adaptive_red, 2),
            "encode_mb_s": round(adaptive_mb_s, 2),
            "codec_bytes": codec_bytes,
        },
    }
    _flush()


def _flush():
    with open("BENCH_compress.json", "w") as fh:
        json.dump(_RESULTS, fh, indent=2, sort_keys=True)
    print("wrote BENCH_compress.json")
