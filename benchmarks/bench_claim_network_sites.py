"""C4 — §III-B claim: the NSDF-Plugin identifies "throughput and latency
constraints across eight diverse locations in the United States".

Probes every pair of the 8-site simulated testbed and prints the
latency/throughput matrix plus the constraint report the plugin's
monitoring produces.  Shape: coast-to-coast pairs dominate latency;
regional-spur pairs bottleneck throughput at 1 Gbit/s while backbone
pairs reach 10 Gbit/s.
"""

import pytest
from conftest import print_header

from repro.network import NetworkMonitor, default_testbed


def test_c4_site_pair_monitoring(benchmark):
    def measure():
        monitor = NetworkMonitor(default_testbed(), seed=4)
        return monitor, monitor.measure_all(repeats=3, probe_bytes="8 MiB")

    monitor, results = benchmark.pedantic(measure, rounds=3, iterations=1)

    print_header("C4: NSDF-Plugin probe matrix (8 sites, 28 pairs)")
    print("fastest and slowest five pairs by RTT:")
    for stats in results[:5]:
        print("  ", stats)
    print("   ...")
    for stats in results[-5:]:
        print("  ", stats)

    report = monitor.constraint_report(results)
    print("\nconstraint report:")
    for key, pair in report.items():
        print(f"  {key:<20s} {pair[0]} <-> {pair[1]}")

    assert len(results) == 28
    # Latency ranking shape: the worst pair spans the continent.
    worst = set(report["highest_latency"])
    assert worst & {"sdsc", "slc"}
    assert worst & {"udel", "jhu", "mghpcc"}
    # Throughput shape: regional spurs (1 Gbit/s) bottleneck below backbone.
    best_tp = max(r.throughput_bps for r in results)
    worst_tp = min(r.throughput_bps for r in results)
    assert best_tp > 4 * worst_tp
