"""Query engine — grouped gather kernel, incremental refinement, plan cache.

Regenerates the read-path numbers behind DESIGN.md section 10 and emits
them as ``BENCH_query.json`` next to the working directory:

- Gather kernel ablation: the grouped sort-based gather
  (``BoxQuery._gather``) against the reference per-block masked rescan
  (``BoxQuery._gather_scan``) on the same fused address array, with all
  blocks pre-decoded so only kernel time is measured.  Outputs are
  asserted byte-identical.
- Progressive sweep cost: one incremental ``progressive()`` sweep
  (O(L) level work, each block read once) against the naive
  re-execute-per-tick slider (O(L²) level work, coarse blocks re-read
  every tick), counted in actual block reads per step.
- Plan cache: lattice-plan hit rates across repeated sweeps of the same
  viewport — the second sweep's planning is served entirely from
  :data:`repro.idx.hzorder.PLAN_CACHE`.

Set ``BENCH_TINY=1`` to run a seconds-scale configuration (CI smoke).
"""

import json
import os
import time

import numpy as np

from repro.idx import BoxQuery, IdxDataset, PLAN_CACHE
from repro.terrain.dem import composite_terrain
from conftest import print_header

TINY = bool(int(os.environ.get("BENCH_TINY", "0")))

SIZE = (96, 96) if TINY else (256, 256)
BITS = 7  # 128-sample blocks: 128 blocks tiny, 512 full
REPEATS = 3 if TINY else 7

_RESULTS = {"config": "tiny" if TINY else "full"}


def _build(tmp_path, name="q.idx"):
    data = composite_terrain(SIZE, seed=42)
    path = str(tmp_path / name)
    ds = IdxDataset.create(
        path, dims=data.shape, fields={"elevation": "float32"}, bits_per_block=BITS
    )
    ds.write(data, field="elevation")
    ds.finalize()
    return path


def _fused_addresses(q):
    """Every level's HZ addresses of ``q``, fused as execute() fuses them."""
    parts = []
    for h in range(q.end_resolution + 1):
        level = q.hz.level_plan(h, q.box, cache=None)
        if level is not None:
            parts.append(level[1])
    return np.concatenate(parts)


def _time_kernel(fn, *args):
    best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        out = fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best, out


def test_gather_kernel_ablation(tmp_path):
    ds = IdxDataset.open(_build(tmp_path))
    q = ds.query()
    dtype = ds.header.field_dtype(q.field_idx)
    all_hz = _fused_addresses(q)
    n_blocks = int(np.unique(q.layout.block_of(all_hz)).size)

    # Pre-decode every block into the memo so both kernels run pure
    # in-memory: the ablation measures gather arithmetic, not codec I/O.
    memo = {}
    q._gather(all_hz, dtype, memo)

    grouped_s, grouped = _time_kernel(q._gather, all_hz, dtype, memo)
    scan_s, scanned = _time_kernel(q._gather_scan, all_hz, dtype, memo)
    assert grouped.tobytes() == scanned.tobytes()
    speedup = scan_s / grouped_s

    print_header(
        f"Ablation: gather kernel, {SIZE[0]}x{SIZE[1]}, "
        f"{all_hz.size} samples over {n_blocks} blocks"
    )
    print(f"{'kernel':>12s} {'best s':>10s} {'speedup':>8s}")
    print(f"{'scan O(N*B)':>12s} {scan_s:>10.5f} {1.0:>7.2f}x")
    print(f"{'grouped':>12s} {grouped_s:>10.5f} {speedup:>7.2f}x")

    assert n_blocks >= 64
    # The acceptance bar: >= 3x over the masked rescan at >= 64 blocks.
    # The tiny CI config keeps a reduced margin against noisy runners.
    assert speedup >= (1.2 if TINY else 3.0)

    _RESULTS["gather_ablation"] = {
        "shape": list(SIZE),
        "bits_per_block": BITS,
        "samples": int(all_hz.size),
        "blocks": n_blocks,
        "scan_s": scan_s,
        "grouped_s": grouped_s,
        "speedup": speedup,
    }
    _flush(_RESULTS)


def test_progressive_sweep_block_reads(tmp_path):
    path = _build(tmp_path)

    # Incremental: one query, one progressive() generator for the sweep.
    inc = IdxDataset.open(path)
    t0 = time.perf_counter()
    inc_steps = [
        len(inc.access.counters.blocks_since(snap))
        for snap in iter_snapshots(inc, inc.query().progressive(0))
    ]
    inc_wall = time.perf_counter() - t0

    # Naive per-tick slider: a fresh execute at every level re-gathers
    # (and re-reads) every coarser level each time.
    naive = IdxDataset.open(path)
    t0 = time.perf_counter()
    naive_steps = []
    for h in range(naive.maxh + 1):
        snap = naive.access.counters.snapshot()
        naive.read(resolution=h)
        naive_steps.append(len(naive.access.counters.blocks_since(snap)))
    naive_wall = time.perf_counter() - t0

    print_header(f"Progressive sweep: {SIZE[0]}x{SIZE[1]}, levels 0..{inc.maxh}")
    print(f"{'level':>5s} {'incremental':>12s} {'naive':>8s}")
    for h, (a, b) in enumerate(zip(inc_steps, naive_steps)):
        print(f"{h:>5d} {a:>12d} {b:>8d}")
    print(
        f"total reads: incremental {sum(inc_steps)}, naive {sum(naive_steps)} "
        f"({sum(naive_steps) / sum(inc_steps):.1f}x); "
        f"wall: {inc_wall:.4f}s vs {naive_wall:.4f}s"
    )

    # O(L): the incremental sweep reads each block exactly once in total.
    log = [b for (_, _, b) in inc.access.counters.access_log]
    assert len(log) == len(set(log))
    assert sum(inc_steps) < sum(naive_steps)
    # The naive slider's final tick alone re-reads every block the whole
    # incremental sweep needed.
    assert naive_steps[-1] == sum(inc_steps)

    _RESULTS["progressive_sweep"] = {
        "levels": inc.maxh + 1,
        "incremental_reads_per_step": inc_steps,
        "naive_reads_per_step": naive_steps,
        "incremental_total": sum(inc_steps),
        "naive_total": sum(naive_steps),
        "incremental_wall_s": inc_wall,
        "naive_wall_s": naive_wall,
    }
    _flush(_RESULTS)


def iter_snapshots(ds, steps):
    """Yield a pre-step counter snapshot for each progressive step."""
    while True:
        snap = ds.access.counters.snapshot()
        if next(steps, None) is None:
            return
        yield snap


def test_plan_cache_hit_rate(tmp_path):
    ds = IdxDataset.open(_build(tmp_path))
    box = ((7, 7), (SIZE[0] - 7, SIZE[1] - 7))

    PLAN_CACHE.clear()
    rows = []
    for sweep in range(3):
        h0, m0 = PLAN_CACHE.stats.hits, PLAN_CACHE.stats.misses
        t0 = time.perf_counter()
        for _ in ds.query(box=box).progressive(0):
            pass
        wall = time.perf_counter() - t0
        hits = PLAN_CACHE.stats.hits - h0
        misses = PLAN_CACHE.stats.misses - m0
        rows.append(
            {
                "sweep": sweep,
                "hits": hits,
                "misses": misses,
                "hit_rate": hits / max(1, hits + misses),
                "wall_s": wall,
            }
        )

    print_header(f"Plan cache: repeated sweeps over one viewport, box {box}")
    print(f"{'sweep':>5s} {'hits':>6s} {'misses':>7s} {'rate':>6s} {'wall s':>9s}")
    for row in rows:
        print(
            f"{row['sweep']:>5d} {row['hits']:>6d} {row['misses']:>7d} "
            f"{row['hit_rate']:>6.2f} {row['wall_s']:>9.4f}"
        )

    # First sweep computes every plan; repeats are served from the cache.
    assert rows[0]["misses"] > 0
    assert rows[1]["misses"] == 0 and rows[2]["misses"] == 0
    assert rows[1]["hit_rate"] == 1.0

    _RESULTS["plan_cache"] = {"rows": rows, "capacity_bytes": PLAN_CACHE.capacity}
    _flush(_RESULTS)


def _flush(results):
    with open("BENCH_query.json", "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
    print("wrote BENCH_query.json")
