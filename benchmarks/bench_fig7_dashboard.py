"""F7 — Fig. 7: interactive dashboard over a large (scaled CONUS) raster.

Drives the canonical interaction sequence of §IV-D — open, zoom into a
subregion, pan, crop, adjust resolution, snip — over a laptop-scaled
CONUS grid, and reports per-operation latency and per-frame sample
counts.  The shape to reproduce: interaction latency stays roughly flat
as the viewport moves because the fetched sample count is bounded by the
viewport, not the dataset.
"""

import numpy as np
import pytest
from conftest import print_header

from repro.dashboard import DashboardSession
from repro.idx import IdxDataset
from repro.terrain import composite_terrain, grid_shape_for_region


@pytest.fixture(scope="module")
def conus_idx(tmp_path_factory):
    shape = grid_shape_for_region("conus", scale_divisor=256)  # ~362 x 671
    dem = composite_terrain(shape, seed=8)
    path = str(tmp_path_factory.mktemp("fig7") / "conus.idx")
    ds = IdxDataset.create(path, dims=dem.shape, fields={"elevation": "float32"},
                           bits_per_block=10)
    ds.write(dem, field="elevation")
    ds.finalize()
    return path, shape


def _interaction_session(path):
    session = DashboardSession(viewport=(128, 128))
    session.open_file("conus", path)
    session.current_frame(fit_viewport=True)     # opening overview
    session.zoom(4.0)                            # Tennessee-ish window
    session.current_frame(fit_viewport=True)
    session.pan((0, 40))
    session.current_frame(fit_viewport=True)
    session.crop(((100, 200), (228, 400)))
    session.current_frame(fit_viewport=True)
    session.resolution_slider(1.0)               # force finest level
    session.current_frame(fit_viewport=True)
    session.snip(((120, 240), (180, 320)))
    return session


def test_fig7_dashboard_interactivity(benchmark, conus_idx):
    path, shape = conus_idx
    session = benchmark.pedantic(_interaction_session, args=(path,), rounds=3, iterations=1)

    print_header(f"Fig. 7: dashboard over scaled CONUS {shape}")
    print("operation log:", ", ".join(session.state.ops_performed()))
    print(f"\n{'operation':<10s} {'count':>6s} {'mean latency':>14s}")
    for op, (count, mean_s) in sorted(session.timing_summary().items()):
        print(f"{op:<10s} {count:>6d} {mean_s * 1e3:>12.2f} ms")

    # Interactivity shape: every fetch stays under a viewport-bounded cost.
    fetches = [s for op, s in session.op_timings if op == "fetch"]
    assert max(fetches) < 1.0  # seconds; generous bound for CI noise
    # Sample economy: the opening overview never pulls the full raster.
    session2 = DashboardSession(viewport=(128, 128))
    session2.open_file("conus", path)
    result = session2.fetch_data()
    assert result.data.size <= 4 * 128 * 128


def test_fig7_viewport_bounds_fetched_samples(conus_idx):
    """Zooming anywhere keeps the fetched grid near the viewport size."""
    path, _ = conus_idx
    session = DashboardSession(viewport=(64, 64))
    session.open_file("conus", path)
    sizes = []
    for center in ((60, 100), (180, 300), (300, 600)):
        session.reset_view()
        session.zoom(6.0, center=center)
        sizes.append(session.fetch_data().data.size)
    print("fetched samples per zoomed viewport:", sizes)
    assert max(sizes) <= 16 * 64 * 64
