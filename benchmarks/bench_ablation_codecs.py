"""Ablation — Step 2 codec choice, including the shuffle filter.

The paper's ~20 % reduction is what *their* deployment achieves; the
achievable number depends on the block codec.  This ablation converts
the same TIFF with each candidate and shows that the byte-shuffle
filter (HDF5's standard trick) is what moves plain zlib from ~15 % into
the paper's ~20-25 % territory at identical fidelity.
"""

import os

import numpy as np
import pytest
from conftest import print_header

from repro.compression import ZfpCodec
from repro.formats.tiff import write_tiff
from repro.idx import IdxDataset, tiff_to_idx


CODECS = [
    ("identity", True),
    ("lz4", True),
    ("zlib:level=6", True),
    ("shuffle:level=6", True),
    ("shuffle:inner=lz4", True),
    ("zfp:precision=16", False),
]


def test_ablation_step2_codecs(benchmark, tmp_path, terrain_256):
    tiff_path = str(tmp_path / "terrain.tif")
    write_tiff(tiff_path, terrain_256, compression="none")
    tiff_bytes = os.path.getsize(tiff_path)

    rows = []
    for spec, lossless in CODECS:
        idx_path = str(tmp_path / f"{spec.replace(':', '_').replace('=', '')}.idx")
        report = tiff_to_idx(tiff_path, idx_path, codec=spec)
        back = IdxDataset.open(idx_path).read()
        if lossless:
            err = 0.0
            assert np.array_equal(back, terrain_256), spec
        else:
            err = float(np.max(np.abs(back.astype(np.float64) - terrain_256)))
            assert err <= ZfpCodec(precision=16).tolerance_for(terrain_256)
        rows.append((spec, report.reduction_percent, err))

    benchmark(lambda: tiff_to_idx(tiff_path, str(tmp_path / "bench.idx"),
                                  codec="shuffle:level=6"))

    print_header(f"Ablation: Step 2 codec choice (TIFF = {tiff_bytes} B)")
    print(f"{'codec':<20s} {'reduction':>10s} {'max err':>10s}")
    by_spec = {}
    for spec, reduction, err in rows:
        by_spec[spec] = reduction
        print(f"{spec:<20s} {reduction:>9.1f}% {err:>10.3g}")

    # Shapes: identity costs (negative reduction = table overhead);
    # shuffle beats plain zlib; zfp beats everything lossless.
    assert by_spec["identity"] < 2.0
    assert by_spec["shuffle:level=6"] > by_spec["zlib:level=6"] + 5.0
    assert by_spec["zfp:precision=16"] > by_spec["shuffle:level=6"]
    # The paper's ~20% claim lands between plain-zlib and shuffle here.
    assert by_spec["zlib:level=6"] < 20.0 < by_spec["shuffle:level=6"] + 10.0
