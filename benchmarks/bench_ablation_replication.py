"""Ablation — replica count vs nationwide access latency.

NSDF's democratization story: data should be fast from *every* entry
point.  This ablation places a dataset on 1..3 Seal regions and maps
the nearest-replica latency from all eight sites — more replicas
flatten the map, shrinking the worst-site penalty.
"""

import numpy as np
import pytest
from conftest import print_header

from repro.network import SimClock
from repro.storage import ReplicatedSeal


CONFIGS = [
    ("slc",),
    ("slc", "mghpcc"),
    ("slc", "chi", "mghpcc"),
]


def test_ablation_replication(benchmark):
    rows = []
    for sites in CONFIGS:
        rs = ReplicatedSeal(sites=sites, clock=SimClock())
        token = rs.issue_token("bench", ("read", "write"))
        rs.put("data.idx", b"x" * 100_000, token=token, from_site=sites[0])
        latency_map = rs.access_latency_map("data.idx")
        rows.append((sites, latency_map))

    def place_and_map():
        rs = ReplicatedSeal(sites=CONFIGS[-1], clock=SimClock())
        token = rs.issue_token("bench", ("read", "write"))
        rs.put("d", b"x", token=token)
        return rs.access_latency_map("d")

    benchmark.pedantic(place_and_map, rounds=3, iterations=1)

    print_header("Ablation: replica count vs per-site access latency (ms)")
    clients = sorted(rows[0][1])
    print(f"{'replicas':<22s}" + "".join(f"{c:>8s}" for c in clients) + f"{'worst':>8s}")
    worsts = []
    for sites, lmap in rows:
        worst = max(lmap.values())
        worsts.append(worst)
        cells = "".join(f"{lmap[c] * 1e3:>8.1f}" for c in clients)
        print(f"{'+'.join(sites):<22s}{cells}{worst * 1e3:>8.1f}")

    # More replicas strictly (weakly) improve the worst site, and the
    # 3-replica layout at least halves the single-region penalty.
    assert worsts[0] >= worsts[1] >= worsts[2]
    assert worsts[2] < worsts[0] / 2
    # Local reads are near-free wherever a replica lives.
    final_map = rows[-1][1]
    for site in CONFIGS[-1]:
        assert final_map[site] * 1e3 < 1.0
