"""F2 — Fig. 2: structure of the NSDF testbed.

Composes the full testbed (8 sites, network links, storage + catalog +
monitor services, one entry point per site) and verifies the Fig. 2
property: every service is reachable from every entry point.
"""

from conftest import print_header

from repro.services import build_default_testbed


def test_fig2_testbed_structure(benchmark):
    testbed = benchmark(build_default_testbed)

    summary = testbed.structure_summary()
    matrix = testbed.reachability_matrix()

    print_header("Fig. 2: NSDF testbed structure")
    print("sites       :", ", ".join(summary["sites"]))
    print("links       :", summary["links"])
    print("entry points:", summary["entry_points"])
    for kind, ident in summary["services"].items():
        print(f"service     : {kind:<16s} -> {ident}")
    print()
    kinds = [k for k in next(iter(matrix.values()))]
    print(f"{'entry point':<10s}" + "".join(f"{k[:14]:>16s}" for k in kinds))
    for site, row in sorted(matrix.items()):
        print(f"{site:<10s}" + "".join(f"{'yes' if row[k] else '-':>16s}" for k in kinds))

    assert summary["entry_points"] == 8
    attached = ("storage-private", "storage-public", "catalog", "network-monitor")
    for site, row in matrix.items():
        for kind in attached:
            assert row[kind], (site, kind)
