"""Sharded catalog benchmark — indexing throughput and query latency.

The NSDF-Catalog indexes 1.59 B records harvested by *re-crawling*
providers on a schedule, so the steady-state indexing workload is
duplicate-heavy: most rows a crawl delivers are already in the catalog
and must be recognised and rejected cheaply.  The headline benchmark
models exactly that — a two-pass re-harvest stream (every record seen
twice) — and compares :class:`~repro.catalog.shards.ShardedCatalog`
at 1/4/16 partitions against the single-index
:class:`~repro.catalog.service.CatalogService` baseline.

The sharded engine wins on algorithmic grounds, not parallelism (CI
boxes may expose a single core): bulk batch insertion
(``InvertedIndex.add_documents``), the sorted-contract freeze fast path
(``freeze(assume_sorted=True)``), and CRC32 identity routing with
exact-tuple dedup instead of per-record canonical-JSON hashing.

A second test times fan-out search: p50/p99 over a few hundred selective
queries per shard count, asserting p99 stays within 1.5x of the
single-shard configuration, with an in-bench spot check that sharded
results stay byte-identical to the oracle.

Emits ``BENCH_catalog.json``.  Set ``BENCH_TINY=1`` for a seconds-scale
configuration (CI smoke; throughput asserts are relaxed — tiny corpora
under-amortise fixed costs and timing is noisy).
"""

import json
import os
import time

import numpy as np
import pytest
from conftest import print_header

from repro.catalog import CatalogRecord, CatalogService, ShardedCatalog

TINY = bool(int(os.environ.get("BENCH_TINY", "0")))

N_RECORDS = 4_000 if TINY else 60_000
N_QUERIES = 60 if TINY else 300
REPEATS = 1 if TINY else 3
SHARD_COUNTS = [1, 4, 16]

#: The paper's corpus (section III-B).
PAPER_RECORDS = 1_590_000_000

_RESULTS = {"config": "tiny" if TINY else "full", "records": N_RECORDS}


@pytest.fixture(scope="module")
def corpus():
    """Synthetic granule records with realistic token structure."""
    return [
        CatalogRecord.build(
            f"granule-{i:06d} tile{i % 997} band{i % 31}",
            source=f"site{i % 13}",
            size=1000 + i,
            checksum=f"sum{i}",
            keywords=(f"kw{i % 211}",),
            attributes={"region": f"region{i % 53}"},
        )
        for i in range(N_RECORDS)
    ]


def _best(fn, repeats=REPEATS):
    """Best-of-N wall time: noise only ever makes a round slower."""
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


def test_indexing_throughput(corpus):
    stream = corpus + corpus  # two crawl passes: 50% duplicate rows

    def base_harvest():
        svc = CatalogService()
        svc.ingest_many(stream)
        svc.warm()

    def base_build():
        svc = CatalogService()
        svc.ingest_many(corpus)
        svc.warm()

    def shard_harvest(k):
        with ShardedCatalog(k) as cat:
            assert cat.ingest_many(stream) == N_RECORDS
            assert cat.duplicates_rejected == N_RECORDS
            cat.warm()

    def shard_build(k):
        with ShardedCatalog(k) as cat:
            cat.ingest_many(corpus)
            cat.warm()

    base_h = _best(base_harvest)
    base_b = _best(base_build)
    rows = []
    for k in SHARD_COUNTS:
        t_h = _best(lambda: shard_harvest(k))
        t_b = _best(lambda: shard_build(k))
        rows.append(
            {
                "shards": k,
                "reharvest_seconds": round(t_h, 4),
                "reharvest_speedup": round(base_h / t_h, 3),
                "reharvest_rec_s": round(len(stream) / t_h),
                "build_seconds": round(t_b, 4),
                "build_speedup": round(base_b / t_b, 3),
                "build_rec_s": round(N_RECORDS / t_b),
            }
        )

    print_header(
        f"Catalog indexing throughput ({N_RECORDS} records, "
        f"re-harvest = 2 passes, best of {REPEATS})"
    )
    print(f"{'engine':<12s} {'re-harvest s':>12s} {'speedup':>8s} {'rec/s':>9s} "
          f"{'build s':>8s} {'speedup':>8s}")
    print(f"{'baseline':<12s} {base_h:>12.3f} {'1.00x':>8s} "
          f"{len(stream) / base_h:>9.0f} {base_b:>8.3f} {'1.00x':>8s}")
    for row in rows:
        print(
            f"{'shards=' + str(row['shards']):<12s} {row['reharvest_seconds']:>12.3f} "
            f"{row['reharvest_speedup']:>7.2f}x {row['reharvest_rec_s']:>9d} "
            f"{row['build_seconds']:>8.3f} {row['build_speedup']:>7.2f}x"
        )
    best = max(rows, key=lambda r: r["reharvest_rec_s"])
    hours = PAPER_RECORDS * 2 / best["reharvest_rec_s"] / 3600
    print(
        f"extrapolation: re-crawling the paper's {PAPER_RECORDS / 1e9:.2f}B records "
        f"at {best['reharvest_rec_s']} rec/s is ~{hours:.0f} core-hours "
        f"(shards={best['shards']}); partitions scale this out linearly."
    )

    if not TINY:
        for row in rows:
            if row["shards"] >= 4:
                # Acceptance criterion: >= 2x indexing throughput at 4+
                # shards against the single-index baseline.
                assert row["reharvest_speedup"] >= 2.0, row
                assert row["build_speedup"] >= 1.5, row

    _RESULTS["indexing"] = {
        "stream_rows": len(stream),
        "duplicate_rows": N_RECORDS,
        "baseline_reharvest_seconds": round(base_h, 4),
        "baseline_build_seconds": round(base_b, 4),
        "sharded": rows,
        "paper_records": PAPER_RECORDS,
    }
    _flush()


def _queries():
    """Selective AND queries plus a sprinkle of prefix queries."""
    qs = []
    for i in range(N_QUERIES):
        if i % 5 == 4:
            qs.append(f"kw{i % 211}*")
        else:
            qs.append(f"tile{(i * 7) % 997} band{i % 31}")
    return qs


def test_query_latency(corpus):
    queries = _queries()
    oracle = CatalogService()
    oracle.ingest_many(corpus)
    oracle.warm()

    catalogs = {}
    try:
        for k in SHARD_COUNTS:
            cat = ShardedCatalog(k)
            cat.ingest_many(corpus)
            cat.warm()
            catalogs[k] = cat

            # Exactness spot check before timing: hits, scores, flags.
            for q in queries[:: max(1, N_QUERIES // 10)]:
                got = cat.search(q, limit=10)
                want = oracle.search(q, limit=10)
                assert [(h.record, h.score) for h in got] == [
                    (h.record, h.score) for h in want
                ], q
                assert got.truncated == want.truncated, q

        # Interleave configurations within each round and keep the
        # per-query best-of-REPEATS: host drift hits every shard count
        # equally, and scheduler noise only ever makes a sample slower,
        # so percentiles compare engines rather than the host's mood.
        lat = {k: [float("inf")] * len(queries) for k in SHARD_COUNTS}
        for _ in range(REPEATS):
            for i, q in enumerate(queries):
                for k, cat in catalogs.items():
                    t0 = time.perf_counter()
                    cat.search(q, limit=10)
                    lat[k][i] = min(lat[k][i], time.perf_counter() - t0)
    finally:
        for cat in catalogs.values():
            cat.close()

    rows = []
    p99_by_k = {}
    for k in SHARD_COUNTS:
        lat_ms = np.asarray(lat[k]) * 1e3
        p50, p99 = np.percentile(lat_ms, [50, 99])
        p99_by_k[k] = float(p99)
        rows.append(
            {
                "shards": k,
                "p50_ms": round(float(p50), 4),
                "p99_ms": round(float(p99), 4),
                "queries": len(queries),
            }
        )

    print_header(f"Catalog fan-out query latency ({N_QUERIES} queries x {REPEATS})")
    print(f"{'shards':>6s} {'p50 ms':>9s} {'p99 ms':>9s} {'vs k=1':>8s}")
    for row in rows:
        rel = row["p99_ms"] / rows[0]["p99_ms"]
        print(f"{row['shards']:>6d} {row['p50_ms']:>9.3f} {row['p99_ms']:>9.3f} {rel:>7.2f}x")

    if not TINY:
        for k in SHARD_COUNTS[1:]:
            # Acceptance criterion: fan-out keeps p99 within 1.5x of the
            # single-shard configuration.
            assert p99_by_k[k] <= 1.5 * p99_by_k[1], (k, p99_by_k)

    _RESULTS["query"] = {"latency": rows}
    _flush()


def _flush():
    with open("BENCH_catalog.json", "w") as fh:
        json.dump(_RESULTS, fh, indent=2, sort_keys=True)
    print("wrote BENCH_catalog.json")
