"""Ablation — parallel block-fetch pipeline: worker count vs streaming cost.

Sweeps the fetch/decode pool size for a remote (simulated Seal WAN)
full-resolution read and for the dashboard's progressive resolution-
slider workload, with and without a shared block cache.  Shape: simulated
WAN seconds fall ~linearly with workers while per-block round trips are
latency-dominated, results stay bit-identical, and the cache composes
with the pipeline (revisits stay free regardless of pool size).
"""

import time

import numpy as np
import pytest
from conftest import print_header

from repro.idx import BlockCache
from repro.network import SimClock
from repro.storage import SealStorage, open_remote_idx, upload_idx_to_seal

WORKER_SWEEP = [1, 2, 4, 8, 16]


@pytest.fixture(scope="module")
def sealed(terrain_idx):
    def make():
        clock = SimClock()
        seal = SealStorage(site="slc", clock=clock)
        token = seal.issue_token("bench", ("read", "write"))
        upload_idx_to_seal(
            terrain_idx, seal, "terrain.idx", token=token, from_site="knox"
        )
        return seal, token, clock

    return make


def test_ablation_workers_full_read(benchmark, sealed):
    rows = []
    baseline = None
    baseline_sim = None
    for workers in WORKER_SWEEP:
        seal, token, clock = sealed()
        ds = open_remote_idx(seal, "terrain.idx", token=token, workers=workers)
        t0 = clock.now
        w0 = time.perf_counter()
        out = ds.read(field="elevation")
        real = time.perf_counter() - w0
        sim = clock.now - t0
        fetcher = ds.access.fetcher
        rows.append((workers, sim, real, fetcher.stats.submitted))
        if baseline is None:
            baseline, baseline_sim = out, sim
        else:
            assert np.array_equal(out, baseline)

    def timed():
        seal, token, _ = sealed()
        ds = open_remote_idx(seal, "terrain.idx", token=token, workers=8)
        return ds.read(field="elevation")

    benchmark(timed)

    print_header("Ablation: fetch/decode pool size, remote full read (256x256)")
    print(f"{'workers':>7s} {'sim WAN s':>10s} {'speedup':>8s} {'real s':>8s} {'blocks':>7s}")
    for workers, sim, real, blocks in rows:
        print(f"{workers:>7d} {sim:>10.4f} {baseline_sim / sim:>7.2f}x {real:>8.4f} {blocks:>7d}")

    # Monotone non-increasing simulated cost as lanes are added.
    sims = [sim for _, sim, _, _ in rows]
    for earlier, later in zip(sims, sims[1:]):
        assert later <= earlier * 1.001
    assert sims[-1] < sims[0] / 4  # 16 lanes >= 4x over serial


def test_ablation_workers_compose_with_cache(sealed):
    """Pipeline + cache: the cold pass parallelises, revisits stay free."""
    rows = []
    for workers in (1, 8):
        seal, token, clock = sealed()
        cache = BlockCache("64 MiB")
        ds = open_remote_idx(seal, "terrain.idx", token=token, cache=cache, workers=workers)
        t0 = clock.now
        ds.read(field="elevation")
        cold = clock.now - t0
        t0 = clock.now
        ds.read(field="elevation")
        warm = clock.now - t0
        rows.append((workers, cold, warm, cache.stats.hit_rate))

    print_header("Ablation: parallel fetch composed with the block cache")
    print(f"{'workers':>7s} {'cold s':>9s} {'warm s':>9s} {'hit rate':>9s}")
    for workers, cold, warm, rate in rows:
        print(f"{workers:>7d} {cold:>9.4f} {warm:>9.4f} {rate:>8.2f}")

    (w1, cold1, warm1, _), (w8, cold8, warm8, _) = rows
    assert cold8 < cold1 / 2.5  # parallel cold pass wins
    assert warm1 < cold1 / 100 and warm8 < cold8 / 100  # revisits ~free
