"""C6 — §III-B claim: the NSDF-Catalog "indexes over 1.59 billion
records, facilitating efficient data discovery".

Scaled to laptop size: sweeps the corpus from 1k to 32k records,
reporting ingest throughput and search latency.  Shape to hold: ingest
throughput stays flat (amortised O(1) per record) and search latency
grows far slower than the corpus (posting-list intersection, not scan).
"""

import time

import numpy as np
import pytest
from conftest import print_header

from repro.catalog import CatalogRecord, CatalogService


def _make_records(n, seed=0):
    rng = np.random.default_rng(seed)
    vocab = [f"kw{i:03d}" for i in range(300)]
    sources = [f"site-{i}" for i in range(8)]
    records = []
    for i in range(n):
        kws = tuple(vocab[j] for j in rng.integers(0, len(vocab), 4))
        records.append(
            CatalogRecord.build(
                f"dataset-{i:07d}.idx",
                sources[int(rng.integers(0, 8))],
                size=int(rng.integers(1_000, 10_000_000)),
                checksum=f"c{i}",
                keywords=kws,
            )
        )
    return records


SIZES = [1_000, 4_000, 16_000, 32_000]


def test_c6_catalog_scaling(benchmark):
    rows = []
    for n in SIZES:
        records = _make_records(n)
        catalog = CatalogService()
        t0 = time.perf_counter()
        catalog.ingest_many(records)
        ingest_s = time.perf_counter() - t0
        catalog.search("kw001")  # freeze postings before timing
        # Selective queries: result size is roughly corpus-independent,
        # so latency growth isolates the index, not the result scoring.
        t0 = time.perf_counter()
        for _ in range(5):
            catalog.search("kw001 kw002")
            catalog.search("kw050 kw051")
        search_s = (time.perf_counter() - t0) / 10
        rows.append((n, ingest_s, n / ingest_s, search_s))

    # Timed kernel: searching the largest corpus.
    big = CatalogService()
    big.ingest_many(_make_records(SIZES[-1]))
    big.search("kw001")
    benchmark(lambda: big.search("kw001 kw002"))

    print_header("C6: catalog ingest/search scaling (1.59B records, scaled)")
    print(f"{'records':>8s} {'ingest':>9s} {'rec/s':>10s} {'search':>10s}")
    for n, ingest_s, rate, search_s in rows:
        print(f"{n:>8d} {ingest_s:>8.3f}s {rate:>10.0f} {search_s * 1e6:>8.0f}us")

    # Ingest rate roughly flat (within 4x across a 32x corpus growth).
    rates = [r for _, _, r, _ in rows]
    assert max(rates) < 4 * min(rates)
    # Search sub-linear: 32x corpus must cost far less than 32x latency.
    assert rows[-1][3] < rows[0][3] * 8 + 1e-3


def test_c6_dedup_and_facets():
    catalog = CatalogService()
    records = _make_records(2_000)
    assert catalog.ingest_many(records) == 2_000
    assert catalog.ingest_many(records) == 0  # full dedup on re-harvest
    facets = catalog.facets_by_source("kw001")
    print("facets for kw001:", facets)
    assert sum(facets.values()) == len(catalog.search("kw001", limit=10_000))
