"""C1 — §IV-B claim: "Converting files from TIFF to IDX reduces file
size by approximately 20% while preserving data accuracy."

Converts the four tutorial terrain products from uncompressed TIFF to
IDX (zlib blocks) and reports per-product and mean reduction.  The shape
to hold: a meaningful reduction (the paper says ~20%) at zero error.
A second test repeats the conversion with the fixed default codec and
with ``adaptive`` per-block selection side by side (the deep sweep lives
in ``bench_compress.py``).
"""

import numpy as np
import pytest
from conftest import print_header

from repro.core import validate_conversion
from repro.formats.tiff import write_tiff
from repro.idx import tiff_to_idx
from repro.terrain import GeoTiler


PARAMETERS = ("elevation", "aspect", "slope", "hillshade")


@pytest.fixture(scope="module")
def tiffs(tmp_path_factory, terrain_256):
    tmp = tmp_path_factory.mktemp("c1")
    products = GeoTiler(grid=(2, 2)).compute(terrain_256, parameters=PARAMETERS)
    paths = {}
    for name, raster in products.items():
        path = str(tmp / f"{name}.tif")
        write_tiff(path, np.nan_to_num(raster), compression="none")
        paths[name] = path
    return tmp, paths


def test_c1_size_reduction(benchmark, tiffs):
    tmp, paths = tiffs

    def convert_all():
        return {
            name: tiff_to_idx(path, str(tmp / f"{name}.idx"), field_name=name)
            for name, path in paths.items()
        }

    reports = benchmark.pedantic(convert_all, rounds=3, iterations=1)

    print_header("C1: TIFF -> IDX size reduction (paper: ~20%)")
    print(f"{'product':<11s} {'tiff bytes':>11s} {'idx bytes':>11s} {'reduction':>10s}")
    reductions = []
    for name, report in sorted(reports.items()):
        reductions.append(report.reduction_percent)
        print(f"{name:<11s} {report.source_bytes:>11d} {report.idx_bytes:>11d} "
              f"{report.reduction_percent:>9.1f}%")
    mean = float(np.mean(reductions))
    print(f"{'mean':<11s} {'':>11s} {'':>11s} {mean:>9.1f}%")

    # Shape: a solid mean reduction in the paper's ballpark, and accuracy
    # is fully preserved (the second half of the claim).
    assert 8.0 < mean < 45.0
    for name, report in reports.items():
        validation = validate_conversion(paths[name], report.idx_path)
        assert validation.identical, name


def test_c1_fixed_vs_adaptive(tiffs):
    """The same claim run with per-block codec selection alongside the
    fixed default: adaptive must preserve accuracy and never lose."""
    tmp, paths = tiffs

    def convert_all(codec, tag):
        return {
            name: tiff_to_idx(
                path, str(tmp / f"{tag}-{name}.idx"), field_name=name, codec=codec
            )
            for name, path in paths.items()
        }

    fixed = convert_all("zlib:level=6", "c1fixed")
    adaptive = convert_all("adaptive:level=6", "c1adaptive")

    print_header("C1 follow-up: fixed zlib vs adaptive per-block selection")
    print(f"{'product':<11s} {'fixed red.':>11s} {'adaptive red.':>14s}")
    means = {"fixed": [], "adaptive": []}
    for name in sorted(paths):
        means["fixed"].append(fixed[name].reduction_percent)
        means["adaptive"].append(adaptive[name].reduction_percent)
        print(f"{name:<11s} {fixed[name].reduction_percent:>10.1f}% "
              f"{adaptive[name].reduction_percent:>13.1f}%")
    fixed_mean = float(np.mean(means["fixed"]))
    adaptive_mean = float(np.mean(means["adaptive"]))
    print(f"{'mean':<11s} {fixed_mean:>10.1f}% {adaptive_mean:>13.1f}%")

    # Small per-file manifest overhead aside, adaptive never loses to the
    # fixed pipeline, and accuracy stays byte-exact.
    assert adaptive_mean >= fixed_mean - 0.5
    for name, report in adaptive.items():
        validation = validate_conversion(paths[name], report.idx_path)
        assert validation.identical, name
