"""F6 — Fig. 6: static visualization of terrain parameters (validation).

Step 3's comparison: render the original TIFF-based raster and the
IDX-derived raster side by side (as the figure does), then compare with
scientific metrics.  Lossless conversion must be pixel-identical; a
zfp-compressed variant must stay within its precision bound and visually
indistinguishable (SSIM ~ 1).
"""

import numpy as np
import pytest
from conftest import print_header

from repro.compression import ZfpCodec
from repro.core import compare_rasters
from repro.dashboard import render_raster
from repro.formats.tiff import read_tiff, write_tiff
from repro.idx import IdxDataset, tiff_to_idx
from repro.terrain import GeoTiler


PARAMETERS = ("elevation", "aspect", "slope", "hillshade")


@pytest.fixture(scope="module")
def products(tmp_path_factory, terrain_256):
    tmp = tmp_path_factory.mktemp("fig6")
    tiler = GeoTiler(grid=(2, 2))
    rasters = tiler.compute(terrain_256, parameters=PARAMETERS)
    out = {}
    for name, raster in rasters.items():
        # aspect contains NaN on flats; zfp can't carry NaN, so keep the
        # lossless path for aspect and fill a copy for the lossy variant.
        tiff_path = str(tmp / f"{name}.tif")
        write_tiff(tiff_path, raster)
        lossless_idx = str(tmp / f"{name}.idx")
        tiff_to_idx(tiff_path, lossless_idx, field_name=name)
        out[name] = (tiff_path, lossless_idx)
    return out


def test_fig6_static_validation(benchmark, products):
    print_header("Fig. 6: TIFF-based vs IDX-based static visualization")
    print(f"{'parameter':<11s} {'rmse':>10s} {'max|err|':>10s} {'psnr':>8s} "
          f"{'ssim':>8s} {'identical':>10s}")

    reports = {}
    for name, (tiff_path, idx_path) in products.items():
        original = read_tiff(tiff_path)
        converted = IdxDataset.open(idx_path).read(field=name)
        report = compare_rasters(np.nan_to_num(original), np.nan_to_num(converted))
        reports[name] = report
        psnr_str = "inf" if report.psnr_db == float("inf") else f"{report.psnr_db:.1f}"
        print(f"{name:<11s} {report.rmse:>10.3g} {report.max_abs_error:>10.3g} "
              f"{psnr_str:>8s} {report.ssim:>8.5f} {str(report.identical):>10s}")
        # The rendered images (what the figure actually shows) match too.
        img_a = render_raster(np.nan_to_num(original), palette="terrain")
        img_b = render_raster(np.nan_to_num(converted), palette="terrain")
        assert np.array_equal(img_a, img_b), name

    assert all(r.identical for r in reports.values())

    # Lossy variant: hillshade through zfp still validates within bound.
    hillshade_tiff = products["hillshade"][0]
    original = read_tiff(hillshade_tiff)

    def lossy_roundtrip():
        codec = ZfpCodec(precision=16)
        back = codec.decode_array(codec.encode_array(original), original.dtype, original.shape)
        return compare_rasters(original, back, tolerance=codec.tolerance_for(original))

    report = benchmark(lossy_roundtrip)
    print(f"\nzfp:precision=16 hillshade: {report}")
    assert report.passed
    assert report.ssim > 0.999
