"""ML loader — batched planning throughput, block dedup, warm-cache reuse.

Regenerates the training-loader numbers behind DESIGN.md section 13 and
emits them as ``BENCH_ml.json`` next to the working directory:

- Windows/sec vs batch size over a simulated Seal WAN: the same epoch of
  sampled windows executed through :class:`repro.ml.BatchPlanner` at
  batch 1/8/32/128.  Time is *simulated* seconds on the
  :class:`~repro.network.clock.SimClock` the remote path charges, so the
  series is deterministic — batch 1 pays one multi-range round trip per
  window and re-reads every shared block; batch 32 pays one round trip
  per batch and reads each unique block once.
- Unique blocks per window at ~50 % overlap: batched reads per window
  against the naive per-window ``BoxQuery.execute`` baseline, counted
  with :class:`~repro.idx.access.AccessCounters`.
- Warm-cache hit rate: a grid epoch re-run through a shared
  :class:`~repro.idx.cache.BlockCache` — the second epoch is served
  from cache.

Set ``BENCH_TINY=1`` to run a seconds-scale configuration (CI smoke).
"""

import json
import os
import time

from repro.idx import IdxDataset
from repro.idx.cache import BlockCache
from repro.ml import BatchPlanner, GridWindowSampler, RandomWindowSampler
from repro.network.clock import SimClock
from repro.storage.object_store import ObjectStore
from repro.storage.seal import SealStorage
from repro.storage.transfer import open_remote_idx
from repro.terrain.dem import composite_terrain
from conftest import print_header

TINY = bool(int(os.environ.get("BENCH_TINY", "0")))

SIZE = (96, 96) if TINY else (256, 256)
BITS = 7  # 128-sample blocks
WINDOW = 24 if TINY else 32
COUNT = 32 if TINY else 128  # windows per epoch
BATCH_SIZES = (1, 8, 32) if TINY else (1, 8, 32, 128)

_RESULTS = {"config": "tiny" if TINY else "full"}

KEY = "scene.idx"


def _build_local(tmp_path):
    data = composite_terrain(SIZE, seed=42)
    path = str(tmp_path / KEY)
    ds = IdxDataset.create(
        path, dims=data.shape, fields={"elevation": "float32"}, bits_per_block=BITS
    )
    ds.write(data, field="elevation")
    ds.finalize()
    return path


def _seal_store(tmp_path):
    """The scene uploaded once into an in-memory object store."""
    path = _build_local(tmp_path)
    with open(path, "rb") as fh:
        blob = fh.read()
    store = ObjectStore("bench-ml")
    store.ensure_bucket("sealed")
    store.put("sealed", KEY, blob)
    return store


def _open_remote(store, cache=None):
    """A fresh Seal front-end (fresh SimClock) over the shared store."""
    seal = SealStorage(store=store, clock=SimClock())
    token = seal.issue_token("trainer", ("read",))
    ds = open_remote_idx(seal, KEY, token=token, cache=cache)
    return ds, seal.clock


def test_windows_per_sec_vs_batch_size(tmp_path):
    """One epoch at each batch size; simulated WAN seconds per config."""
    store = _seal_store(tmp_path)
    sampler = RandomWindowSampler(SIZE, WINDOW, COUNT, seed=7)
    windows = sampler.epoch(0)  # identical windows for every batch size

    rows = []
    for batch_size in BATCH_SIZES:
        ds, clock = _open_remote(store)
        planner = BatchPlanner(ds.access)
        sim0, wall0 = clock.now, time.perf_counter()
        for i in range(0, len(windows), batch_size):
            planner.execute(windows[i : i + batch_size])
        sim_s = clock.now - sim0
        wall_s = time.perf_counter() - wall0
        rows.append(
            {
                "batch_size": batch_size,
                "sim_s": sim_s,
                "wall_s": wall_s,
                "windows_per_sim_s": len(windows) / sim_s,
                "blocks_read": ds.access.counters.blocks_read,
                "bytes_read": ds.access.counters.bytes_read,
            }
        )

    print_header(
        f"ML loader: {COUNT} windows of {WINDOW}x{WINDOW} over "
        f"{SIZE[0]}x{SIZE[1]} via simulated Seal WAN"
    )
    print(f"{'batch':>6s} {'sim s':>9s} {'win/sim s':>10s} {'blocks':>7s} {'MiB':>7s}")
    for row in rows:
        print(
            f"{row['batch_size']:>6d} {row['sim_s']:>9.3f} "
            f"{row['windows_per_sim_s']:>10.1f} {row['blocks_read']:>7d} "
            f"{row['bytes_read'] / 2**20:>7.2f}"
        )

    by_batch = {row["batch_size"]: row for row in rows}
    speedup = (
        by_batch[32]["windows_per_sim_s"] / by_batch[1]["windows_per_sim_s"]
    )
    print(f"batch 32 vs batch 1: {speedup:.1f}x windows/sec (simulated)")

    # The acceptance bar: >= 3x windows/sec at batch 32 over batch 1.
    assert speedup >= 3.0
    # Bigger batches never read more blocks than smaller ones.
    blocks = [row["blocks_read"] for row in rows]
    assert blocks == sorted(blocks, reverse=True)

    _RESULTS["windows_per_sec"] = {
        "shape": list(SIZE),
        "window": WINDOW,
        "count": COUNT,
        "rows": rows,
        "speedup_batch32_vs_1": speedup,
    }
    _flush(_RESULTS)


def test_unique_blocks_per_window_at_overlap(tmp_path):
    """~50 % overlap, batch 32: dedup per batch vs the naive baseline."""
    ds = IdxDataset.open(_build_local(tmp_path))
    # stride = window/2 -> every interior window shares half its area
    # with each neighbour.
    sampler = GridWindowSampler(SIZE, WINDOW, stride=WINDOW // 2)
    windows = sampler.epoch(0)[: 32 if TINY else 64]
    planner = BatchPlanner(ds.access)

    batch_rows = []
    snap = ds.access.counters.snapshot()
    for i in range(0, len(windows), 32):
        chunk = windows[i : i + 32]
        batch = planner.plan(chunk)
        before = ds.access.counters.blocks_read
        planner.execute(batch)
        read = ds.access.counters.blocks_read - before
        assert read == batch.unique_blocks  # each unique block exactly once
        batch_rows.append(
            {
                "windows": len(chunk),
                "unique_blocks": batch.unique_blocks,
                "window_block_touches": batch.window_block_touches,
            }
        )
    batched_reads = ds.access.counters.blocks_read - snap[0]

    snap = ds.access.counters.snapshot()
    for win in windows:
        ds.query(box=win.box).execute()
    naive_reads = ds.access.counters.blocks_read - snap[0]

    batched_per_window = batched_reads / len(windows)
    naive_per_window = naive_reads / len(windows)
    print_header(
        f"Block dedup: {len(windows)} windows of {WINDOW}x{WINDOW}, "
        f"stride {WINDOW // 2} (~50% overlap), batch 32"
    )
    print(f"batched reads/window: {batched_per_window:.2f}")
    print(f"naive reads/window:   {naive_per_window:.2f}")
    print(f"reduction: {naive_reads / batched_reads:.2f}x")

    # The acceptance bar: >= 2x fewer block reads than per-window.
    assert naive_reads >= 2 * batched_reads

    _RESULTS["block_dedup"] = {
        "windows": len(windows),
        "batches": batch_rows,
        "batched_reads": batched_reads,
        "naive_reads": naive_reads,
        "batched_reads_per_window": batched_per_window,
        "naive_reads_per_window": naive_per_window,
        "reduction": naive_reads / batched_reads,
    }
    _flush(_RESULTS)


def test_warm_cache_hit_rate(tmp_path):
    """A second epoch over a shared BlockCache is served from memory."""
    store = _seal_store(tmp_path)
    cache = BlockCache("64 MiB")
    ds, clock = _open_remote(store, cache=cache)
    sampler = GridWindowSampler(SIZE, WINDOW, seed=3)
    planner = BatchPlanner(ds.access)

    epochs = []
    for epoch in range(2):
        h0, m0 = cache.stats.hits, cache.stats.misses
        sim0 = clock.now
        windows = sampler.epoch(epoch)
        for i in range(0, len(windows), 32):
            planner.execute(windows[i : i + 32])
        hits = cache.stats.hits - h0
        misses = cache.stats.misses - m0
        epochs.append(
            {
                "epoch": epoch,
                "hits": hits,
                "misses": misses,
                "hit_rate": hits / max(1, hits + misses),
                "sim_s": clock.now - sim0,
            }
        )

    print_header("Warm cache: grid epochs through one shared BlockCache")
    print(f"{'epoch':>5s} {'hits':>6s} {'misses':>7s} {'rate':>6s} {'sim s':>8s}")
    for row in epochs:
        print(
            f"{row['epoch']:>5d} {row['hits']:>6d} {row['misses']:>7d} "
            f"{row['hit_rate']:>6.2f} {row['sim_s']:>8.3f}"
        )

    # Epoch 0 misses everything once; epoch 1 is all hits (the scene
    # fits the cache) and pays no simulated network time.
    assert epochs[0]["misses"] > 0
    assert epochs[1]["misses"] == 0
    assert epochs[1]["hit_rate"] == 1.0
    assert epochs[1]["sim_s"] < epochs[0]["sim_s"]

    _RESULTS["warm_cache"] = {"epochs": epochs}
    _flush(_RESULTS)


def _flush(results):
    with open("BENCH_ml.json", "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
    print("wrote BENCH_ml.json")
