"""F8 — Fig. 8: the four survey charts (user experience + tech exposure).

Regenerates the Likert distributions behind the figure's four panels
(estimated marginals — see EXPERIMENTS.md), renders them as ASCII bar
charts, and verifies the paper's qualitative claims: responses are
overwhelmingly positive across every panel, and the per-respondent
simulation re-aggregates to the marginals exactly.
"""

from conftest import print_header

from repro.survey import FIG8_QUESTIONS, fig8_distributions, simulate_responses
from repro.survey.simulate import aggregate


def test_fig8_survey_charts(benchmark):
    dists = benchmark(fig8_distributions)

    print_header("Fig. 8: tutorial survey responses (estimated marginals)")
    for q in FIG8_QUESTIONS:
        dist = dists[q.qid]
        print(f"\n({q.qid}) {q.statement}  [{q.category}]")
        print(dist.bar_chart(width=36))
        print(f"    positive: {dist.percent_positive:.1f}%  "
              f"mean score: {dist.mean_score:.2f}/5")

    for qid, dist in dists.items():
        assert dist.total == 108, qid
        assert dist.percent_positive > 85.0, qid
        assert dist.percent_negative < 5.0, qid


def test_fig8_per_venue_breakdown():
    """Respondent-level simulation supports the per-venue drill-down the
    aggregates can't answer."""
    responses = simulate_responses(seed=0)
    dists = fig8_distributions()

    print_header("Fig. 8 drill-down: positivity by modality (simulated)")
    print(f"{'question':<10s} {'overall':>8s} {'in-person':>10s} {'virtual':>8s}")
    for qid in sorted(dists):
        overall = aggregate(responses, qid)
        in_person = aggregate(responses, qid, modality="In-person")
        virtual = aggregate(responses, qid, modality="Virtual")
        print(f"({qid})       {overall.percent_positive:>7.1f}% "
              f"{in_person.percent_positive:>9.1f}% {virtual.percent_positive:>7.1f}%")
        # Exact reaggregation and partition property.
        assert overall.counts == dists[qid].counts
        assert in_person.combine(virtual).counts == overall.counts
