"""C7 — §III-A claim: the data layer supports "industry-standard lossless
and lossy compression algorithms such as ZIP, ZLIB, and ZFP with varying
precision bits".

Sweeps the codec suite over the shared terrain raster: compression
ratio, encode/decode wall time, and (for zfp) the realised error against
the advertised bound, across precision settings.  Shapes: lossless
codecs round-trip exactly with ratios < 1 on terrain; zfp ratio and
error both track precision monotonically.
"""

import time

import numpy as np
import pytest
from conftest import print_header

from repro.compression import ZfpCodec, get_codec

LOSSLESS_SPECS = ["zlib:level=1", "zlib:level=6", "zlib:level=9", "lz4", "rle"]
ZFP_PRECISIONS = [8, 12, 16, 20, 24]


def test_c7_codec_sweep(benchmark, terrain_256):
    data = terrain_256

    print_header("C7: codec sweep on 256x256 terrain (float32, 256 KiB)")
    print(f"{'codec':<16s} {'ratio':>7s} {'encode':>9s} {'decode':>9s} {'max err':>10s}")
    for spec in LOSSLESS_SPECS:
        codec = get_codec(spec)
        t0 = time.perf_counter()
        blob = codec.encode_array(data)
        enc = time.perf_counter() - t0
        t0 = time.perf_counter()
        back = codec.decode_array(blob, data.dtype, data.shape)
        dec = time.perf_counter() - t0
        assert np.array_equal(back, data), spec
        ratio = len(blob) / data.nbytes
        print(f"{spec:<16s} {ratio:>7.3f} {enc * 1e3:>7.1f}ms {dec * 1e3:>7.1f}ms {'0':>10s}")
        if spec == "rle":
            # Float32 terrain has no byte-level runs: RLE expands (the
            # "wrong tool" row of the table — it exists for masked rasters).
            assert ratio > 1.0
        else:
            assert ratio < 1.05, spec

    zfp_rows = []
    for precision in ZFP_PRECISIONS:
        codec = ZfpCodec(precision=precision)
        blob = codec.encode_array(data)
        back = codec.decode_array(blob, data.dtype, data.shape)
        err = float(np.max(np.abs(back.astype(np.float64) - data.astype(np.float64))))
        bound = codec.tolerance_for(data)
        ratio = len(blob) / data.nbytes
        zfp_rows.append((precision, ratio, err, bound))
        print(f"{'zfp:p=' + str(precision):<16s} {ratio:>7.3f} {'':>9s} {'':>9s} {err:>10.3g}")
        assert err <= bound

    # Monotone shape: more precision -> bigger stream, smaller error.
    ratios = [r for _, r, _, _ in zfp_rows]
    errors = [e for _, _, e, _ in zfp_rows]
    assert ratios == sorted(ratios)
    assert errors == sorted(errors, reverse=True)
    # zfp at modest precision beats every lossless ratio.
    best_lossless = min(
        len(get_codec(s).encode_array(data)) / data.nbytes for s in LOSSLESS_SPECS
    )
    assert zfp_rows[1][1] < best_lossless

    benchmark(lambda: get_codec("zlib:level=6").encode_array(data))
