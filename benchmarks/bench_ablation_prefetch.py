"""Ablation — batched block prefetch (the async-fetch pipeline).

RemoteAccess pipelines all of a query's block fetches into one
multi-range request when the source supports it (as OpenVisus' async
block queue does).  This ablation disables the batch path and measures
the round-trip count and virtual seconds per query with and without it
— latency-bound remote reads are where the pipeline pays.
"""

import pytest
from conftest import print_header

from repro.idx import IdxDataset, RemoteAccess
from repro.network import SimClock
from repro.storage import SealStorage, upload_idx_to_seal


class _NoBatchSource:
    """Wraps a SealByteSource hiding its read_many (disables pipelining)."""

    def __init__(self, inner) -> None:
        self._inner = inner

    def read_at(self, offset, length):
        return self._inner.read_at(offset, length)

    def size(self):
        return self._inner.size()


@pytest.fixture(scope="module")
def sealed(terrain_idx):
    clock = SimClock()
    seal = SealStorage(site="slc", clock=clock)
    token = seal.issue_token("bench", ("read", "write"))
    upload_idx_to_seal(terrain_idx, seal, "t.idx", token=token, from_site="knox")
    return seal, token, clock


def _query_cost(seal, token, clock, batched: bool):
    source = seal.byte_source("t.idx", token=token, from_site="knox")
    if not batched:
        source = _NoBatchSource(source)
    ds = IdxDataset.from_access(RemoteAccess(source, uri="bench://t"))
    t0 = clock.now
    ds.read(box=((64, 64), (192, 192)))  # full-res crop: many fine blocks
    return clock.now - t0


def test_ablation_prefetch_pipelining(benchmark, sealed):
    seal, token, clock = sealed
    with_batch = _query_cost(seal, token, clock, batched=True)
    without_batch = _query_cost(seal, token, clock, batched=False)
    benchmark.pedantic(
        lambda: _query_cost(seal, token, clock, batched=True), rounds=3, iterations=1
    )

    print_header("Ablation: batched prefetch vs per-block round trips")
    print(f"pipelined (read_many) : {with_batch:.4f} virtual s")
    print(f"per-block (read_at)   : {without_batch:.4f} virtual s")
    print(f"speedup               : {without_batch / with_batch:.1f}x")

    # The crop touches dozens of blocks; per-block latency dominates.
    assert with_batch < without_batch / 5
