"""Multi-tenant service — shared-cache throughput at cohort scale.

Regenerates the service-layer numbers behind DESIGN.md section 12 and
emits them as ``BENCH_serve.json``:

- One :class:`~repro.services.sessions.SessionManager` serves fleets of
  1 / 16 / 256 / 1024 simulated concurrent dashboard sessions, every
  session running a progressive refinement sweep over the same remote
  dataset.  The remote link pays a *real* (slept) per-range delay, so
  the shared :class:`~repro.idx.cache.BlockCache` shows up as genuine
  wall-clock throughput: the first tenant pays the WAN, the cohort
  rides the cache.
- Reported per fleet: aggregate frames/second, p50/p99/max per-frame
  latency (from the Session Explorer's merged histograms), cache hit
  rate, and actual network range-gets.

The acceptance bar: the 256-session fleet's aggregate frame throughput
is at least 4x a single session's — shared infrastructure must scale
superlinearly in tenants, not serialise them.

Set ``BENCH_TINY=1`` for the seconds-scale CI smoke (fleets 1 / 16, a
relaxed 1.5x bar at 16).
"""

import json
import os
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.idx import IdxDataset
from repro.network.clock import SimClock
from repro.services import SessionManager
from repro.services.explorer import LatencyHistogram
from repro.storage.object_store import ObjectStore
from repro.storage.seal import SealStorage
from conftest import print_header

TINY = bool(int(os.environ.get("BENCH_TINY", "0")))

FLEETS = [1, 16] if TINY else [1, 16, 256, 1024]
#: Real slept seconds per ranged network read (the WAN being amortised).
DELAY_S = 0.001 if TINY else 0.002
WORKERS = 16 if TINY else 32
KEY = "serve.idx"
BUCKET = "sealed"

_RESULTS = {"config": "tiny" if TINY else "full", "delay_s": DELAY_S}


class WanStore:
    """Object store whose ranged reads cost real wall time.

    The simulation's :class:`SimClock` charges make no wall-clock
    difference, so this bench sleeps for real: a cohort whose sessions
    each re-fetched every block would show it directly in frames/sec.
    """

    def __init__(self, inner, delay_s):
        self.inner = inner
        self.delay_s = delay_s
        self.range_gets = 0

    def get_range(self, bucket, key, offset, length):
        time.sleep(self.delay_s)
        self.range_gets += 1
        return self.inner.get_range(bucket, key, offset, length)

    def __getattr__(self, name):
        return getattr(self.inner, name)


def _base_store(tmp_path):
    rng = np.random.default_rng(20260806)
    array = rng.random((48, 48)).astype(np.float32)
    path = str(tmp_path / KEY)
    ds = IdxDataset.create(path, array.shape, bits_per_block=4)
    ds.write(array)
    ds.finalize()
    store = ObjectStore("serve-base")
    store.ensure_bucket(BUCKET)
    with open(path, "rb") as fh:
        store.put(BUCKET, KEY, fh.read())
    return store


def _fresh_manager(base, delay_s):
    wan = WanStore(base, delay_s)
    seal = SealStorage(store=wan, clock=SimClock())
    token = seal.issue_token("serve", ("read",))
    mgr = SessionManager(cache_capacity="64 MiB")
    mgr.open_remote("terrain", seal, KEY, token=token)
    return mgr, wan


def _run_fleet(base, n_sessions):
    """Cold-start ``n_sessions`` tenants through one fresh manager."""
    mgr, wan = _fresh_manager(base, DELAY_S)
    sids = [mgr.create_session(f"t{i}", viewport=(8, 8)) for i in range(n_sessions)]

    def sweep(sid):
        resp = mgr.handle(sid, {"op": "refine"})
        assert resp["ok"], resp
        return resp["result"]["frames"]

    t0 = time.perf_counter()
    with ThreadPoolExecutor(max_workers=min(WORKERS, n_sessions)) as pool:
        per_session = list(pool.map(sweep, sids))
    wall_s = time.perf_counter() - t0

    frames = sum(per_session)
    hist = LatencyHistogram()
    for managed in mgr.sessions():
        hist.merge(managed.frame_histogram)
    assert hist.count == frames
    stats = mgr.cache.stats
    return {
        "sessions": n_sessions,
        "frames": frames,
        "frames_per_session": per_session[0],
        "wall_s": wall_s,
        "frames_per_s": frames / wall_s,
        "p50_frame_ms": hist.quantile(0.50) * 1e3,
        "p99_frame_ms": hist.quantile(0.99) * 1e3,
        "max_frame_ms": hist.max_s * 1e3,
        "cache_hit_rate": stats.hit_rate,
        "cache_coalesced": stats.coalesced,
        "network_range_gets": wan.range_gets,
    }


def test_fleet_scaling(tmp_path):
    base = _base_store(tmp_path)
    fleets = {}
    for n in FLEETS:
        fleets[n] = _run_fleet(base, n)

    print_header(
        f"Service layer: shared-cache fleets over a {DELAY_S * 1e3:.0f} ms/range WAN"
    )
    print(
        f"{'sessions':>9s} {'frames':>7s} {'wall s':>8s} {'frames/s':>10s} "
        f"{'p99 ms':>8s} {'hit rate':>9s} {'net gets':>9s}"
    )
    for n in FLEETS:
        r = fleets[n]
        print(
            f"{n:>9d} {r['frames']:>7d} {r['wall_s']:>8.3f} "
            f"{r['frames_per_s']:>10.0f} {r['p99_frame_ms']:>8.2f} "
            f"{r['cache_hit_rate']:>9.2f} {r['network_range_gets']:>9d}"
        )

    solo = fleets[1]["frames_per_s"]
    if TINY:
        speedup = fleets[16]["frames_per_s"] / solo
        print(f"16-session aggregate speedup: {speedup:.1f}x (bar: 1.5x)")
        assert speedup >= 1.5
    else:
        speedup = fleets[256]["frames_per_s"] / solo
        print(f"256-session aggregate speedup: {speedup:.1f}x (bar: 4x)")
        assert speedup >= 4.0

    # Sharing is why: every fleet after the first session is mostly
    # cache hits, and the cohort's network traffic stays far below
    # sessions x (a private session's traffic).
    biggest = fleets[FLEETS[-1]]
    assert biggest["cache_hit_rate"] > 0.5
    assert (
        biggest["network_range_gets"]
        < FLEETS[-1] * fleets[1]["network_range_gets"] / 4
    )

    _RESULTS["fleets"] = [fleets[n] for n in FLEETS]
    _RESULTS["speedup_vs_single"] = {
        str(n): fleets[n]["frames_per_s"] / solo for n in FLEETS
    }
    with open("BENCH_serve.json", "w") as fh:
        json.dump(_RESULTS, fh, indent=2, sort_keys=True)
    print("wrote BENCH_serve.json")
