"""C3 — §III-A claim: "The caching-enabled framework [...] ensures that
data can be streamed efficiently, minimizing latency and overhead."

Streams an IDX dataset from simulated Seal Storage over the WAN and
measures virtual network time for cold vs warm interactions, plus a
hit-rate sweep as the dashboard revisits regions.  Shape: a warm cache
collapses repeat-interaction cost to ~zero, and the cold/warm gap is the
link round-trip factor.
"""

import pytest
from conftest import print_header

from repro.idx import BlockCache
from repro.network import SimClock
from repro.storage import SealStorage, open_remote_idx, upload_idx_to_seal


@pytest.fixture(scope="module")
def sealed(terrain_idx):
    clock = SimClock()
    seal = SealStorage(site="slc", clock=clock)
    token = seal.issue_token("bench", ("read", "write"))
    upload_idx_to_seal(terrain_idx, seal, "terrain.idx", token=token, from_site="knox")
    return seal, token, clock


INTERACTIONS = [
    ("overview", dict(resolution=8)),
    ("zoom A", dict(box=((0, 0), (128, 128)))),
    ("zoom B", dict(box=((64, 64), (192, 192)))),
    ("revisit A", dict(box=((0, 0), (128, 128)))),
    ("overview again", dict(resolution=8)),
]


def test_c3_caching_minimises_latency(benchmark, sealed):
    seal, token, clock = sealed

    def run_session(cache):
        ds = open_remote_idx(seal, "terrain.idx", token=token, from_site="knox", cache=cache)
        costs = []
        for name, kwargs in INTERACTIONS:
            t0 = clock.now
            ds.read(field="elevation", **kwargs)
            costs.append((name, clock.now - t0))
        return costs

    cached_costs = run_session(BlockCache("64 MiB"))
    uncached_costs = run_session(None)
    benchmark.pedantic(lambda: run_session(BlockCache("64 MiB")), rounds=3, iterations=1)

    print_header("C3: virtual WAN seconds per dashboard interaction")
    print(f"{'interaction':<16s} {'no cache':>10s} {'with cache':>12s}")
    for (name, uc), (_, cc) in zip(uncached_costs, cached_costs):
        print(f"{name:<16s} {uc:>9.4f}s {cc:>11.4f}s")

    # Revisits are (near-)free with the cache, full price without.
    revisit_cached = dict(cached_costs)["revisit A"]
    revisit_uncached = dict(uncached_costs)["revisit A"]
    assert revisit_cached < revisit_uncached / 50
    total_cached = sum(c for _, c in cached_costs)
    total_uncached = sum(c for _, c in uncached_costs)
    print(f"{'total':<16s} {total_uncached:>9.4f}s {total_cached:>11.4f}s")
    assert total_cached < total_uncached


def test_c3_hit_rate_grows_with_revisits(sealed):
    seal, token, clock = sealed
    cache = BlockCache("64 MiB")
    ds = open_remote_idx(seal, "terrain.idx", token=token, from_site="knox", cache=cache)
    rates = []
    for _ in range(4):
        ds.read(resolution=10)
        rates.append(cache.stats.hit_rate)
    print("hit rate after each pass:", [f"{r:.2f}" for r in rates])
    assert rates[-1] > rates[0]
    assert rates[-1] > 0.6
