"""Tests for layout reorganisation and dataset statistics."""

import numpy as np
import pytest

from repro.idx import IdxDataset, LocalAccess
from repro.idx.idxfile import FileByteSource, IdxBinaryReader
from repro.idx.layout import PagedByteSource, access_histogram, reorganize
from repro.idx.stats import compute_stats, histogram


@pytest.fixture
def hot_workload(tmp_path, rng):
    """A dataset plus an access log concentrated on one corner region."""
    a = rng.random((128, 128)).astype(np.float32)
    path = str(tmp_path / "d.idx")
    ds = IdxDataset.create(path, dims=a.shape, bits_per_block=5)
    ds.write(a)
    ds.finalize()
    access = LocalAccess(path)
    hot = IdxDataset.from_access(access)
    for _ in range(10):
        hot.read(box=((96, 96), (128, 128)))  # hot corner at full res
    return path, a, access.counters.access_log


class TestAccessHistogram:
    def test_counts(self):
        log = [(0, 0, 1), (0, 0, 1), (0, 0, 2)]
        hist = access_histogram(log)
        assert hist[(0, 0, 1)] == 2
        assert hist[(0, 0, 2)] == 1


class TestReorganize:
    def test_content_identical_after_reorg(self, hot_workload, tmp_path):
        path, a, log = hot_workload
        dst = str(tmp_path / "hot.idx")
        info = reorganize(path, dst, log)
        assert info["blocks_total"] > 0
        assert 0 < info["blocks_hot"] <= info["blocks_total"]
        assert np.array_equal(IdxDataset.open(dst).read(), a)

    def test_hot_blocks_packed_first(self, hot_workload, tmp_path):
        path, _, log = hot_workload
        dst = str(tmp_path / "hot.idx")
        reorganize(path, dst, log)
        reader = IdxBinaryReader(FileByteSource(dst))
        hist = access_histogram(log)
        # Physical offset order: every hot block must precede every cold one.
        entries = []
        for b in reader.present_blocks(0, 0):
            offset, _ = reader.block_entry(0, 0, int(b))
            entries.append((offset, hist.get((0, 0, int(b)), 0) > 0))
        entries.sort()
        hotness = [h for _, h in entries]
        first_cold = hotness.index(False) if False in hotness else len(hotness)
        assert all(not h for h in hotness[first_cold:])

    def test_fewer_pages_for_hot_workload(self, hot_workload, tmp_path):
        """After reorg, the hot working set spans fewer 16 KiB pages."""
        path, _, log = hot_workload
        dst = str(tmp_path / "hot.idx")
        reorganize(path, dst, log)

        def pages_touched(p):
            src = PagedByteSource(FileByteSource(p), page_size=16 * 1024)
            reader = IdxBinaryReader(src)
            src.reset_counters()
            for key in set(log):
                reader.read_block(*key)
            return src.pages_fetched

        assert pages_touched(dst) <= pages_touched(path)


class TestPagedByteSource:
    def test_reads_correct_bytes(self, tmp_path):
        path = str(tmp_path / "blob.bin")
        blob = bytes(range(256)) * 64
        with open(path, "wb") as fh:
            fh.write(blob)
        src = PagedByteSource(FileByteSource(path), page_size=1024)
        assert src.read_at(100, 50) == blob[100:150]
        assert src.read_at(1000, 200) == blob[1000:1200]  # spans 2 pages

    def test_page_cache_counts(self, tmp_path):
        path = str(tmp_path / "blob.bin")
        with open(path, "wb") as fh:
            fh.write(bytes(8192))
        src = PagedByteSource(FileByteSource(path), page_size=1024)
        src.read_at(0, 10)
        src.read_at(100, 10)  # same page: free
        assert src.pages_fetched == 1
        src.read_at(5000, 10)
        assert src.pages_fetched == 2

    def test_invalid_page_size(self, tmp_path):
        path = str(tmp_path / "b.bin")
        with open(path, "wb") as fh:
            fh.write(b"x")
        with pytest.raises(ValueError):
            PagedByteSource(FileByteSource(path), page_size=0)


class TestStats:
    def test_full_resolution_stats(self, idx_factory):
        a = np.arange(256, dtype=np.float32).reshape(16, 16)
        ds = idx_factory(a)
        stats = compute_stats(ds)
        assert stats.minimum == 0.0
        assert stats.maximum == 255.0
        assert stats.mean == pytest.approx(127.5)
        assert stats.count == 256

    def test_coarse_stats_approximate(self, idx_factory, rng):
        a = rng.normal(100.0, 10.0, (64, 64)).astype(np.float32)
        ds = idx_factory(a)
        coarse = compute_stats(ds, resolution=ds.maxh - 4)
        assert coarse.count < 64 * 64 / 8
        assert abs(coarse.mean - a.mean()) < 5.0

    def test_region_stats(self, idx_factory):
        a = np.zeros((32, 32), dtype=np.float32)
        a[:16, :] = 50.0
        ds = idx_factory(a)
        north = compute_stats(ds, box=((0, 0), (16, 32)))
        assert north.minimum == north.maximum == 50.0

    def test_histogram(self, idx_factory, rng):
        a = rng.random((32, 32)).astype(np.float32)
        ds = idx_factory(a)
        counts, edges = histogram(ds, bins=10, value_range=(0.0, 1.0))
        assert counts.sum() == a.size
        assert len(edges) == 11
