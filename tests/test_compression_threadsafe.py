"""Audit of the ``Codec.thread_safe`` declarations.

Two halves:

1. a hypothesis round-trip sweep over every registered codec × dtype ×
   degenerate block shape (empty, all-constant, single-element, NaN/±inf
   floats, runs longer than the RLE entry limit), asserting byte-exact
   round trips for lossless codecs, and
2. a concurrency stress: each codec that declares ``thread_safe`` is
   driven from many threads at once on one shared instance, and every
   result must equal the serial encode of the same block — run in CI
   under ``REPRO_SANITIZE=1`` (see ``.github/workflows/ci.yml``).
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compression import available_codecs, get_codec
from repro.compression import rle_codec

#: One representative instance per registered codec family (aliases like
#: ``zip``/``raw`` resolve to classes already covered).
CODEC_SPECS = [
    "identity",
    "zlib:level=6",
    "rle",
    "lz4",
    "shuffle:inner=zlib:level=6",
    "shuffle:inner=rle",
    "zfp:precision=16",
    "adaptive:level=6",
]

DTYPES = ["uint8", "uint16", "int32", "float32", "float64"]


def _round_trip(codec, arr):
    blob = codec.encode_array(arr)
    back = codec.decode_array(blob, arr.dtype, arr.shape)
    return back


def _assert_exact(codec, arr):
    back = _round_trip(codec, arr)
    assert back.dtype == arr.dtype
    assert back.tobytes() == np.ascontiguousarray(arr).tobytes()


def _supports(codec, dtype):
    # The lossy zfp codec is float-only by design.
    return codec.lossless or np.dtype(dtype).kind == "f"


class TestRegistryAudit:
    def test_every_registered_codec_is_covered(self):
        families = {get_codec(spec).name for spec in CODEC_SPECS}
        registered = {
            get_codec(name).name
            for name in available_codecs()
            # other test modules register throwaway "*-test" codecs in
            # the process-wide registry; only builtins need coverage
            if not name.endswith("-test")
        }
        assert registered <= families


class TestDegenerateBlocks:
    @pytest.mark.parametrize("spec", CODEC_SPECS)
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_empty_block(self, spec, dtype):
        codec = get_codec(spec)
        if not _supports(codec, dtype):
            pytest.skip("lossy float-only codec")
        if codec.lossless:
            _assert_exact(codec, np.zeros(0, dtype=dtype))
        else:
            assert _round_trip(codec, np.zeros(0, dtype=dtype)).size == 0

    @pytest.mark.parametrize("spec", CODEC_SPECS)
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_single_element(self, spec, dtype):
        codec = get_codec(spec)
        if not _supports(codec, dtype):
            pytest.skip("lossy float-only codec")
        arr = np.array([3], dtype=dtype)
        if codec.lossless:
            _assert_exact(codec, arr)
        else:
            back = _round_trip(codec, arr)
            assert abs(float(back[0]) - 3.0) <= codec.tolerance_for(arr.astype(np.float64))

    @pytest.mark.parametrize("spec", CODEC_SPECS)
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_all_constant(self, spec, dtype):
        codec = get_codec(spec)
        if not _supports(codec, dtype):
            pytest.skip("lossy float-only codec")
        arr = np.full((17, 9), 7, dtype=dtype)
        if codec.lossless:
            _assert_exact(codec, arr)

    @pytest.mark.parametrize(
        "spec", [s for s in CODEC_SPECS if get_codec(s).lossless]
    )
    @pytest.mark.parametrize("dtype", ["float32", "float64"])
    def test_nan_and_inf_floats(self, spec, dtype):
        codec = get_codec(spec)
        arr = np.array([np.nan, np.inf, -np.inf, -0.0, 1e-300, 42.0], dtype=dtype)
        _assert_exact(codec, arr)

    def test_rle_max_run_split(self, monkeypatch):
        monkeypatch.setattr(rle_codec, "MAX_RUN", 5)
        codec = get_codec("rle")
        data = b"\x00" * 23 + b"\x07" + b"\x00" * 11
        assert codec.decode_bytes(codec.encode_bytes(data)) == data

    def test_adaptive_max_run_split(self, monkeypatch):
        # The adaptive selector routes constant byte blocks to rle; the
        # split-entry path must survive underneath it too.
        monkeypatch.setattr(rle_codec, "MAX_RUN", 5)
        codec = get_codec("adaptive")
        arr = np.full(64, 9, dtype=np.uint8)
        _assert_exact(codec, arr)


@given(
    data=st.data(),
    dtype=st.sampled_from(DTYPES),
    spec=st.sampled_from([s for s in CODEC_SPECS if get_codec(s).lossless]),
)
@settings(max_examples=60, deadline=5000)
def test_lossless_round_trip_property(data, dtype, spec):
    codec = get_codec(spec)
    dt = np.dtype(dtype)
    if dt.kind == "f":
        elements = st.floats(allow_nan=True, allow_infinity=True, width=min(dt.itemsize * 8, 64))
    else:
        info = np.iinfo(dt)
        elements = st.integers(info.min, info.max)
    values = data.draw(st.lists(elements, min_size=0, max_size=200))
    arr = np.asarray(values, dtype=dt)
    back = _round_trip(codec, arr)
    assert back.tobytes() == arr.tobytes()


class TestThreadSafety:
    """Drive one shared instance of each thread_safe codec from many
    threads; every concurrent encode must be byte-identical to the serial
    one (what the parallel finalize pool and fetch pipeline rely on)."""

    @pytest.mark.parametrize(
        "spec", [s for s in CODEC_SPECS if get_codec(s).thread_safe]
    )
    def test_concurrent_encode_decode_identical_to_serial(self, spec):
        codec = get_codec(spec)
        rng = np.random.default_rng(17)
        blocks = [
            np.add.outer(np.linspace(0, 50, 40), np.linspace(0, 9, 40)).astype(np.float32),
            np.zeros((40, 40), np.float32),
            rng.normal(0, 3, (40, 40)).astype(np.float32),
            rng.random((40, 40)).astype(np.float32),
        ]
        serial = [codec.encode_array(b) for b in blocks]
        # Lossy codecs still must be deterministic: compare concurrent
        # decodes against the serial decode, not the original samples.
        decoded = [
            codec.decode_array(blob, b.dtype, b.shape).tobytes()
            for blob, b in zip(serial, blocks)
        ]
        start = threading.Barrier(8)

        def worker(worker_id):
            start.wait()
            out = []
            for _ in range(5):
                for block, expected, expected_dec in zip(blocks, serial, decoded):
                    blob = codec.encode_array(block)
                    out.append(blob == expected)
                    back = codec.decode_array(blob, block.dtype, block.shape)
                    out.append(back.tobytes() == expected_dec)
            return all(out)

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(worker, range(8)))
        assert all(results)

    def test_every_builtin_declares_thread_safe(self):
        # The audit's headline: every shipped codec keeps configuration
        # immutable after __init__ and so may declare thread_safe.  A
        # future stateful codec must flip the flag (finalize falls back
        # to the serial path — see IdxDataset.finalize).
        for spec in CODEC_SPECS:
            assert get_codec(spec).thread_safe, spec
