"""Concurrency stress tests for the thread-safe block cache."""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.idx.cache import BlockCache


def block(value: float, n: int = 256) -> np.ndarray:
    return np.full(n, value, dtype=np.float32)  # 1 KiB each


class TestGetOrLoad:
    def test_hit_returns_resident_entry(self):
        cache = BlockCache("4 KiB")
        cache.put(("k",), block(7))
        calls = []
        got = cache.get_or_load(("k",), lambda: calls.append(1) or block(9))
        assert got[0] == 7
        assert calls == []
        assert cache.stats.hits == 1

    def test_miss_loads_once_and_caches(self):
        cache = BlockCache("4 KiB")
        calls = []

        def loader():
            calls.append(1)
            return block(3)

        got = cache.get_or_load(("k",), loader)
        again = cache.get_or_load(("k",), loader)
        assert got[0] == 3 and again[0] == 3
        assert len(calls) == 1
        assert cache.stats.misses == 1 and cache.stats.hits == 1

    def test_loader_error_propagates_and_is_not_cached(self):
        cache = BlockCache("4 KiB")

        def boom():
            raise RuntimeError("fetch failed")

        with pytest.raises(RuntimeError):
            cache.get_or_load(("k",), boom)
        # The failed load left nothing behind; a later load retries.
        got = cache.get_or_load(("k",), lambda: block(5))
        assert got[0] == 5

    def test_concurrent_misses_coalesce_to_one_load(self):
        cache = BlockCache("64 KiB")
        gate = threading.Event()
        load_count = []
        lock = threading.Lock()

        def slow_loader():
            gate.wait(timeout=5)
            with lock:
                load_count.append(1)
            return block(1)

        n_threads = 8
        with ThreadPoolExecutor(max_workers=n_threads) as pool:
            futures = [
                pool.submit(cache.get_or_load, ("hot",), slow_loader)
                for _ in range(n_threads)
            ]
            # Let every thread reach the cache before the load resolves.
            import time

            deadline = time.monotonic() + 5
            while cache.stats.misses + cache.stats.coalesced < n_threads:
                assert time.monotonic() < deadline, "threads never arrived"
                time.sleep(0.001)
            gate.set()
            results = [f.result(timeout=5) for f in futures]

        assert len(load_count) == 1  # exactly one inner fetch
        assert all(r[0] == 1 for r in results)
        assert cache.stats.misses == 1
        assert cache.stats.coalesced == n_threads - 1


class TestStress:
    def test_hammer_overlapping_keys(self):
        """N threads over overlapping keys: no double-loads, budget held,
        counters exact."""
        capacity = 32 * 1024  # fits 32 of the 1 KiB blocks
        cache = BlockCache(capacity)
        n_keys = 16  # all resident: every key must load exactly once
        n_threads = 8
        rounds = 50
        loads = {k: 0 for k in range(n_keys)}
        loads_lock = threading.Lock()

        def loader_for(k):
            def load():
                with loads_lock:
                    loads[k] += 1
                return block(k)

            return load

        def worker(seed):
            rng = np.random.default_rng(seed)
            for _ in range(rounds):
                k = int(rng.integers(n_keys))
                got = cache.get_or_load((k,), loader_for(k))
                assert got[0] == k
                assert cache.used_bytes <= capacity

        with ThreadPoolExecutor(max_workers=n_threads) as pool:
            list(pool.map(worker, range(n_threads)))

        # Every key fits in the budget, so nothing was evicted and each
        # key was loaded exactly once no matter how many threads raced.
        assert all(count == 1 for count in loads.values()), loads
        stats = cache.stats
        assert stats.misses == n_keys
        assert stats.evictions == 0
        # Exact bookkeeping: every request is accounted as exactly one of
        # hit / miss / coalesced.
        assert stats.hits + stats.misses + stats.coalesced == n_threads * rounds
        assert stats.inserted_bytes == n_keys * 1024
        assert cache.used_bytes == n_keys * 1024

    def test_hammer_with_eviction_pressure(self):
        """Working set larger than the budget: the byte bound must hold at
        every moment and accounting must balance at the end."""
        capacity = 8 * 1024  # 8 blocks resident max
        cache = BlockCache(capacity)
        n_keys = 64
        n_threads = 6

        def worker(seed):
            rng = np.random.default_rng(seed)
            for _ in range(100):
                k = int(rng.integers(n_keys))
                got = cache.get_or_load((k,), lambda k=k: block(k))
                assert got[0] == k
                assert cache.used_bytes <= capacity

        with ThreadPoolExecutor(max_workers=n_threads) as pool:
            list(pool.map(worker, range(n_threads)))

        assert cache.used_bytes <= capacity
        assert len(cache) <= capacity // 1024
        # inserted = still resident + evicted (all blocks are 1 KiB).
        stats = cache.stats
        assert stats.inserted_bytes == cache.used_bytes + stats.evictions * 1024

    def test_mixed_get_put_invalidate_threads(self):
        cache = BlockCache("16 KiB")
        stop = threading.Event()
        errors = []

        def churn(seed):
            rng = np.random.default_rng(seed)
            try:
                while not stop.is_set():
                    k = int(rng.integers(8))
                    op = int(rng.integers(4))
                    if op == 0:
                        cache.put((k,), block(k))
                    elif op == 1:
                        got = cache.get((k,))
                        if got is not None:
                            assert got[0] == k
                    elif op == 2:
                        cache.invalidate((k,))
                    else:
                        cache.contains((k,))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=churn, args=(s,)) for s in range(6)]
        for t in threads:
            t.start()
        import time

        time.sleep(0.3)
        stop.set()
        for t in threads:
            t.join(timeout=5)
        assert not errors
        assert cache.used_bytes <= cache.capacity
