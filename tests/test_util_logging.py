"""Tests for the logger facade."""

import logging

from repro.util.logging import get_logger


class TestGetLogger:
    def test_namespaced_under_repro(self):
        logger = get_logger("idx")
        assert logger.name == "repro.idx"

    def test_already_namespaced_passthrough(self):
        logger = get_logger("repro.network")
        assert logger.name == "repro.network"

    def test_root_configured_once(self):
        get_logger("a")
        root = logging.getLogger("repro")
        handlers_before = list(root.handlers)
        get_logger("b")
        assert logging.getLogger("repro").handlers == handlers_before
        assert len(handlers_before) == 1

    def test_no_propagation_to_global_root(self):
        get_logger("x")
        assert logging.getLogger("repro").propagate is False

    def test_same_name_same_instance(self):
        assert get_logger("cache") is get_logger("cache")

    def test_default_level_quiet(self):
        get_logger("y")
        assert logging.getLogger("repro").level == logging.WARNING
