"""Tests for repro.util.hashing."""

import numpy as np
import pytest

from repro.util.hashing import content_digest, etag_for, stable_hash


class TestContentDigest:
    def test_deterministic(self):
        assert content_digest(b"hello") == content_digest(b"hello")

    def test_distinguishes_content(self):
        assert content_digest(b"a") != content_digest(b"b")

    def test_length_parameter(self):
        assert len(content_digest(b"x", length=8)) == 16  # hex chars

    def test_ndarray_includes_dtype_and_shape(self):
        a = np.arange(6, dtype=np.int32)
        b = a.astype(np.int64)
        c = a.reshape(2, 3)
        assert content_digest(a) != content_digest(b)
        assert content_digest(a) != content_digest(c)

    def test_ndarray_noncontiguous_equals_contiguous(self):
        base = np.arange(20).reshape(4, 5)
        view = base[:, ::2]
        assert content_digest(view) == content_digest(np.ascontiguousarray(view))

    def test_memoryview_accepted(self):
        assert content_digest(memoryview(b"abc")) == content_digest(b"abc")


class TestEtag:
    def test_short_and_stable(self):
        tag = etag_for(b"payload")
        assert len(tag) == 16
        assert tag == etag_for(b"payload")


class TestStableHash:
    def test_dict_key_order_invariant(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})

    def test_nested_structures(self):
        h1 = stable_hash({"x": [1, 2, {"y": (3, 4)}]})
        h2 = stable_hash({"x": [1, 2, {"y": [3, 4]}]})  # tuple == list canonically
        assert h1 == h2

    def test_numpy_scalars_coerced(self):
        assert stable_hash({"n": np.int64(5)}) == stable_hash({"n": 5})
        assert stable_hash({"f": np.float64(0.5)}) == stable_hash({"f": 0.5})

    def test_arrays_hashed_by_content(self):
        a = np.arange(4)
        assert stable_hash({"a": a}) == stable_hash({"a": a.copy()})
        assert stable_hash({"a": a}) != stable_hash({"a": a + 1})

    def test_bytes_supported(self):
        assert stable_hash({"b": b"xy"}) == stable_hash({"b": b"xy"})

    def test_different_values_differ(self):
        assert stable_hash([1, 2, 3]) != stable_hash([1, 2, 4])
