"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.formats.tiff import write_tiff
from repro.terrain.dem import composite_terrain


@pytest.fixture
def tiff_file(tmp_path):
    path = str(tmp_path / "t.tif")
    write_tiff(path, composite_terrain((48, 48), seed=1))
    return path


class TestDemo:
    def test_demo_runs(self, tmp_path, capsys):
        rc = main(["demo", "--workdir", str(tmp_path), "--size", "48"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "step1-generate" in out
        assert "reduction" in out


class TestConvert:
    def test_tiff(self, tiff_file, tmp_path, capsys):
        dest = str(tmp_path / "o.idx")
        assert main(["convert", tiff_file, dest]) == 0
        assert "reduction" in capsys.readouterr().out

    def test_raw(self, tmp_path, capsys):
        from repro.formats.rawbin import write_raw

        src = str(tmp_path / "a.raw")
        write_raw(src, composite_terrain((32, 32), seed=2))
        assert main(["convert", src, str(tmp_path / "a.idx")]) == 0

    def test_ncdf(self, tmp_path):
        from repro.formats.ncdf import NcdfFile, write_ncdf

        nc = NcdfFile()
        nc.add_variable("v", ("y", "x"), composite_terrain((16, 16), seed=3))
        src = str(tmp_path / "a.nc")
        write_ncdf(src, nc)
        assert main(["convert", src, str(tmp_path / "a.idx")]) == 0

    def test_unknown_extension(self, tmp_path, capsys):
        src = str(tmp_path / "a.xyz")
        open(src, "w").close()
        assert main(["convert", src, str(tmp_path / "a.idx")]) == 2
        assert "unsupported" in capsys.readouterr().err


class TestInfoAndRead:
    @pytest.fixture
    def idx_file(self, tiff_file, tmp_path):
        dest = str(tmp_path / "d.idx")
        main(["convert", tiff_file, dest])
        return dest

    def test_info(self, idx_file, capsys):
        assert main(["info", idx_file]) == 0
        out = capsys.readouterr().out
        assert "dims        : (48, 48)" in out
        assert "shuffle" in out
        assert "stats[value]" in out

    def test_read_full(self, idx_file, tmp_path, capsys):
        out_npy = str(tmp_path / "full.npy")
        assert main(["read", idx_file, out_npy]) == 0
        assert np.load(out_npy).shape == (48, 48)

    def test_read_box_and_resolution(self, idx_file, tmp_path):
        out_npy = str(tmp_path / "crop.npy")
        assert main(["read", idx_file, out_npy, "--box", "8,8,24,40"]) == 0
        assert np.load(out_npy).shape == (16, 32)
        assert main(["read", idx_file, out_npy, "--resolution", "6"]) == 0
        assert np.load(out_npy).size <= 64

    def test_read_bad_box(self, idx_file, tmp_path, capsys):
        assert main(["read", idx_file, str(tmp_path / "x.npy"), "--box", "1,2,3"]) == 2


class TestOtherCommands:
    def test_network(self, capsys):
        assert main(["network"]) == 0
        out = capsys.readouterr().out
        assert "rtt" in out
        assert "highest_latency" in out

    def test_report(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "EVALUATION REPORT" in out
        assert "108" in out

    def test_grade(self, tmp_path, capsys):
        assert main(["grade", "--workdir", str(tmp_path), "--size", "48",
                     "--participant", "zoe"]) == 0
        out = capsys.readouterr().out
        assert "zoe: 45/50" in out
        assert "PASSED" in out

    def test_no_command_errors(self):
        with pytest.raises(SystemExit):
            main([])


class TestVerify:
    def test_verify_ok(self, tiff_file, tmp_path, capsys):
        dest = str(tmp_path / "v.idx")
        main(["convert", tiff_file, dest])
        capsys.readouterr()
        assert main(["verify", dest]) == 0
        assert "OK" in capsys.readouterr().out

    def test_verify_detects_corruption(self, tiff_file, tmp_path, capsys):
        dest = str(tmp_path / "v.idx")
        main(["convert", tiff_file, dest])
        with open(dest, "rb") as fh:
            data = bytearray(fh.read())
        data[-20] ^= 0xFF  # flip a byte inside the last block payload
        bad = str(tmp_path / "bad.idx")
        with open(bad, "wb") as fh:
            fh.write(bytes(data))
        capsys.readouterr()
        assert main(["verify", bad]) == 1
        captured = capsys.readouterr()
        assert "FAILED" in captured.out
        assert "corrupted block" in captured.err


class TestCatalog:
    @pytest.fixture
    def jsonl_file(self, tmp_path):
        import json

        from repro.catalog import CatalogRecord

        path = tmp_path / "records.jsonl"
        rows = [
            CatalogRecord.build(
                f"granule-{i:03d}.idx", source=f"site{i % 2}", size=100 + i,
                checksum=f"c{i}", keywords=("terrain",),
            ).to_dict()
            for i in range(20)
        ]
        rows.append(rows[0])  # duplicate row
        path.write_text("".join(json.dumps(r) + "\n" for r in rows))
        return str(path)

    def test_ingest_search_stats(self, jsonl_file, tmp_path, capsys):
        cat_dir = str(tmp_path / "cat")
        rc = main(["catalog", "ingest", jsonl_file, "--dir", cat_dir,
                   "--shards", "3", "--checkpoint-every", "8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "records      : 20" in out
        assert "row dups     : 1" in out

        assert main(["catalog", "search", "granule-001.idx", "--dir", cat_dir]) == 0
        out = capsys.readouterr().out
        assert "granule-001.idx" in out

        assert main(["catalog", "search", "terrain", "--dir", cat_dir,
                     "--source", "site1", "--limit", "50"]) == 0
        out = capsys.readouterr().out
        assert "site0" not in out and "site1" in out

        assert main(["catalog", "stats", "--dir", cat_dir]) == 0
        out = capsys.readouterr().out
        assert "records" in out and "shard" in out

    def test_ingest_resume_flag(self, jsonl_file, tmp_path, capsys):
        cat_dir = str(tmp_path / "cat")
        assert main(["catalog", "ingest", jsonl_file, "--dir", cat_dir]) == 0
        capsys.readouterr()
        # Re-running the finished ingest under --resume is a no-op.
        assert main(["catalog", "ingest", jsonl_file, "--dir", cat_dir, "--resume"]) == 0
        assert "records      : 20" in capsys.readouterr().out
