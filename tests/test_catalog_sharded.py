"""Property suite: the sharded catalog is byte-identical to a single index.

The oracle is :class:`CatalogService` holding the whole corpus in one
:class:`InvertedIndex`.  For ANY shard count, :class:`ShardedCatalog`
must return exactly the same search hits (records AND float scores, in
the same order), the same prefix-truncation flag, the same facet counts,
and the same corpus stats.  Hypothesis drives random corpora (including
duplicate records, non-ASCII names, and records missing facet
attributes) through shard counts 1/2/7/16.
"""

import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.catalog import (
    CatalogManifestError,
    CatalogRecord,
    CatalogService,
    ShardedCatalog,
)
from repro.catalog.index import PREFIX_EXPANSION_LIMIT

SHARD_COUNTS = [1, 2, 7, 16]

# Small vocabularies make collisions (shared tokens, duplicate records)
# likely; the prefix-heavy words ("terra", "terrace", "terrain") exercise
# expansion across shard boundaries, the accented ones the v2 tokenizer.
WORDS = [
    "terrain", "terra", "terrace", "slope", "aspect", "hillshade",
    "conus", "tile", "müller", "café", "x1", "x2",
]
SOURCES = ["dataverse:demo", "seal:slc", "store:minio"]
QUERIES = [
    "terrain", "terr*", "t*", "terrain slope", "café", "m*",
    "zzz", "", "x*", "terra* conus", "terrain zzz", "*",
]


def _record(name_words, source, size, checksum, keywords, region):
    attrs = {} if region is None else {"region": region}
    return CatalogRecord.build(
        " ".join(name_words),
        source=source,
        size=size,
        checksum=checksum,
        keywords=tuple(keywords),
        attributes=attrs,
    )


records_st = st.builds(
    _record,
    name_words=st.lists(st.sampled_from(WORDS), min_size=1, max_size=3),
    source=st.sampled_from(SOURCES),
    size=st.integers(0, 10_000),
    checksum=st.sampled_from(["", "c1", "c2"]),
    keywords=st.lists(st.sampled_from(WORDS), max_size=2),
    region=st.sampled_from([None, "east", "west"]),
)
corpus_st = st.lists(records_st, max_size=40)


def _oracle(records):
    service = CatalogService()
    service.ingest_many(records)
    return service


def _assert_equivalent(oracle, sharded, query, limit):
    expected = oracle.search(query, limit=limit)
    got = sharded.search(query, limit=limit)
    assert [(h.record, h.score) for h in got] == [(h.record, h.score) for h in expected]
    assert got.truncated == expected.truncated
    assert sharded.facets_by_source(query) == oracle.facets_by_source(query)
    assert sharded.facets_by_attribute(query, "region") == oracle.facets_by_attribute(
        query, "region"
    )


class TestShardInvariance:
    @given(corpus=corpus_st, query=st.sampled_from(QUERIES),
           shard_count=st.sampled_from(SHARD_COUNTS))
    @settings(max_examples=60, deadline=None)
    def test_search_matches_single_index_oracle(self, corpus, query, shard_count):
        oracle = _oracle(corpus)
        with ShardedCatalog(shard_count, workers=2) as sharded:
            sharded.ingest_many(corpus)
            assert len(sharded) == len(oracle)
            assert sharded.duplicates_rejected == oracle.duplicates_rejected
            _assert_equivalent(oracle, sharded, query, limit=len(corpus) + 1)
            _assert_equivalent(oracle, sharded, query, limit=5)

    @given(corpus=corpus_st, shard_count=st.sampled_from(SHARD_COUNTS))
    @settings(max_examples=30, deadline=None)
    def test_stats_match_oracle(self, corpus, shard_count):
        oracle = _oracle(corpus)
        with ShardedCatalog(shard_count, workers=2) as sharded:
            sharded.ingest_many(corpus)
            oracle_stats = oracle.stats()
            sharded_stats = sharded.stats()
            for key, value in oracle_stats.items():
                assert sharded_stats[key] == value
            assert sharded_stats["shards"] == shard_count
            per_shard = sharded.shard_stats()
            assert len(per_shard) == shard_count
            assert sum(row["records"] for row in per_shard) == len(oracle)

    @pytest.mark.parametrize("shard_count", SHARD_COUNTS)
    def test_prefix_truncation_matches_across_shards(self, shard_count):
        # 3x the expansion limit of tokens under one prefix, spread over
        # every shard: the global cut must land exactly where a single
        # index would cut, and the flag must be raised either way.
        corpus = [
            CatalogRecord.build(f"tok{i:04d}", source="s", checksum=str(i))
            for i in range(3 * PREFIX_EXPANSION_LIMIT)
        ]
        oracle = _oracle(corpus)
        with ShardedCatalog(shard_count, workers=2) as sharded:
            sharded.ingest_many(corpus)
            _assert_equivalent(oracle, sharded, "tok*", limit=len(corpus))
            assert sharded.search("tok*").truncated is True
            narrow = sharded.search("tok000*")
            assert narrow.truncated is False
            assert len(narrow) == 10

    @pytest.mark.parametrize("shard_count", SHARD_COUNTS)
    def test_duplicates_rejected_per_shard(self, shard_count):
        rec = CatalogRecord.build("dup.idx", source="s", checksum="c")
        with ShardedCatalog(shard_count, workers=2) as sharded:
            assert sharded.ingest(rec) is True
            assert sharded.ingest(rec) is False
            assert len(sharded) == 1
            assert sharded.duplicates_rejected == 1

    def test_routing_is_stable_across_instances(self):
        recs = [CatalogRecord.build(f"r{i}", source="s") for i in range(64)]
        with ShardedCatalog(7, workers=2) as a, ShardedCatalog(7, workers=2) as b:
            a.ingest_many(recs)
            b.ingest_many(reversed(recs))
            assert [len(s.records) for s in a.shards] == [len(s.records) for s in b.shards]

    def test_get_and_missing_key(self):
        recs = [CatalogRecord.build(f"r{i}", source="s", checksum=str(i)) for i in range(20)]
        with ShardedCatalog(4, workers=2) as sharded:
            sharded.ingest_many(recs)
            for rec in recs:
                assert sharded.get(rec.record_id) == rec
            with pytest.raises(KeyError):
                sharded.get("no-such-id")

    def test_empty_catalog(self):
        with ShardedCatalog(4, workers=2) as sharded:
            assert len(sharded) == 0
            assert list(sharded.search("anything")) == []
            assert sharded.facets_by_source("x*") == {}

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            ShardedCatalog(0)


class TestPersistence:
    def _corpus(self):
        return [
            CatalogRecord.build(
                f"Terrain-Slope_{i}m CONUS.tif", source=f"src{i % 3}", size=100 + i,
                checksum=f"c{i}", keywords=("terrain", "slope"),
                description=f"tile {i} café", attributes={"region": "west" if i % 2 else "east"},
            )
            for i in range(30)
        ]

    def test_save_load_roundtrip(self, tmp_path):
        corpus = self._corpus()
        oracle = _oracle(corpus)
        with ShardedCatalog(4, workers=2) as sharded:
            sharded.ingest_many(corpus)
            sharded.save(str(tmp_path))
        with ShardedCatalog.load(str(tmp_path), workers=2) as loaded:
            assert loaded.replayed_shards == []
            assert len(loaded) == len(oracle)
            _assert_equivalent(oracle, loaded, "terr*", limit=40)
            _assert_equivalent(oracle, loaded, "café", limit=40)

    def test_save_is_deterministic(self, tmp_path):
        corpus = self._corpus()
        dirs = [str(tmp_path / "a"), str(tmp_path / "b")]
        for d in dirs:
            with ShardedCatalog(4, workers=2) as sharded:
                sharded.ingest_many(corpus)
                sharded.save(d)
        for name in sorted(os.listdir(dirs[0])):
            with open(os.path.join(dirs[0], name), "rb") as fa:
                a = fa.read()
            with open(os.path.join(dirs[1], name), "rb") as fb:
                b = fb.read()
            assert a == b, f"{name} differs between identical runs"

    def test_stale_manifest_replays_shard(self, tmp_path):
        corpus = self._corpus()
        with ShardedCatalog(2, workers=2) as sharded:
            sharded.ingest_many(corpus)
            sharded.save(str(tmp_path))
        # Age one manifest's tokenizer version: the partition's cached
        # token lists are no longer trustworthy and must be replayed.
        path = tmp_path / "shard-0000.manifest.json"
        manifest = json.loads(path.read_text())
        manifest["tokenizer_version"] = manifest["tokenizer_version"] - 1
        path.write_text(json.dumps(manifest))
        oracle = _oracle(corpus)
        with ShardedCatalog.load(str(tmp_path), workers=2) as loaded:
            assert loaded.replayed_shards == [0]
            _assert_equivalent(oracle, loaded, "terrain slope", limit=40)
            _assert_equivalent(oracle, loaded, "café", limit=40)

    def test_corrupt_partition_rejected(self, tmp_path):
        with ShardedCatalog(2, workers=2) as sharded:
            sharded.ingest_many(self._corpus())
            sharded.save(str(tmp_path))
        shard_file = tmp_path / "shard-0001.jsonl"
        shard_file.write_bytes(shard_file.read_bytes() + b'{"corrupt": true}\n')
        with pytest.raises(CatalogManifestError, match="digest mismatch"):
            ShardedCatalog.load(str(tmp_path), workers=2)

    def test_mismatched_manifest_rejected(self, tmp_path):
        with ShardedCatalog(2, workers=2) as sharded:
            sharded.ingest_many(self._corpus())
            sharded.save(str(tmp_path))
        path = tmp_path / "shard-0000.manifest.json"
        manifest = json.loads(path.read_text())
        manifest["shard_id"] = 1
        path.write_text(json.dumps(manifest))
        with pytest.raises(CatalogManifestError, match="describes shard"):
            ShardedCatalog.load(str(tmp_path), workers=2)

    def test_ingest_after_load(self, tmp_path):
        corpus = self._corpus()
        with ShardedCatalog(4, workers=2) as sharded:
            sharded.ingest_many(corpus[:20])
            sharded.save(str(tmp_path))
        extra = corpus[20:]
        oracle = _oracle(corpus)
        with ShardedCatalog.load(str(tmp_path), workers=2) as loaded:
            loaded.ingest_many(extra)
            _assert_equivalent(oracle, loaded, "terr*", limit=40)

    def test_closed_catalog_rejects_fan_out(self):
        sharded = ShardedCatalog(4, workers=2)
        sharded.close()
        sharded.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            sharded.ingest_many(
                [CatalogRecord.build(f"r{i}", source="s", checksum=str(i)) for i in range(8)]
            )
