"""Tests for the zlib, rle, and lz4 byte codecs."""

import numpy as np
import pytest

from repro.compression import CodecError, Lz4Codec, RleCodec, ZlibCodec, get_codec

LOSSLESS = ["zlib", "zlib:level=1", "zlib:level=9", "rle", "lz4", "lz4:accel=4", "identity"]

PAYLOADS = {
    "empty": b"",
    "single": b"x",
    "short": b"abc",
    "zeros": bytes(10_000),
    "runs": b"a" * 300 + b"b" * 5 + b"c" * 1000,
    "text": b"the quick brown fox jumps over the lazy dog. " * 200,
    "binary": np.random.default_rng(0).integers(0, 256, 5000).astype(np.uint8).tobytes(),
}


@pytest.mark.parametrize("spec", LOSSLESS)
@pytest.mark.parametrize("name", sorted(PAYLOADS))
def test_round_trip_bytes(spec, name):
    codec = get_codec(spec)
    data = PAYLOADS[name]
    assert codec.decode_bytes(codec.encode_bytes(data)) == data


@pytest.mark.parametrize("spec", LOSSLESS)
def test_round_trip_arrays(spec):
    codec = get_codec(spec)
    rng = np.random.default_rng(1)
    for dtype in (np.uint8, np.int16, np.float32, np.float64):
        a = (rng.random((17, 23)) * 100).astype(dtype)
        out = codec.decode_array(codec.encode_array(a), a.dtype, a.shape)
        assert np.array_equal(out, a), (spec, dtype)


class TestZlib:
    def test_level_bounds(self):
        with pytest.raises(CodecError):
            ZlibCodec(level=10)
        with pytest.raises(CodecError):
            ZlibCodec(level=-1)

    def test_level9_not_larger_than_level1(self):
        data = PAYLOADS["text"]
        e1 = ZlibCodec(1).encode_bytes(data)
        e9 = ZlibCodec(9).encode_bytes(data)
        assert len(e9) <= len(e1)

    def test_corrupt_stream(self):
        with pytest.raises(CodecError):
            ZlibCodec().decode_bytes(b"not zlib at all")

    def test_spec_round_trip(self):
        assert get_codec(ZlibCodec(7).spec()).level == 7

    def test_compresses_redundant_data(self):
        data = PAYLOADS["runs"]
        assert len(ZlibCodec().encode_bytes(data)) < len(data) // 4


class TestRle:
    def test_compresses_runs_dramatically(self):
        data = PAYLOADS["zeros"]
        encoded = RleCodec().encode_bytes(data)
        assert len(encoded) < 50

    def test_expands_random_data_gracefully(self):
        data = PAYLOADS["binary"]
        codec = RleCodec()
        assert codec.decode_bytes(codec.encode_bytes(data)) == data

    def test_bad_magic(self):
        with pytest.raises(CodecError):
            RleCodec().decode_bytes(b"XXXX" + bytes(8))

    def test_truncated_header(self):
        with pytest.raises(CodecError):
            RleCodec().decode_bytes(b"RR")

    def test_long_run_over_255(self):
        data = b"z" * 100_000
        codec = RleCodec()
        encoded = codec.encode_bytes(data)
        assert len(encoded) < 30  # single run, uint32 length
        assert codec.decode_bytes(encoded) == data

    def test_runs_longer_than_max_are_split(self, monkeypatch):
        # Shrink the entry-size limit so the uint32-overflow split path
        # runs without a 4 GiB payload; the wire format is unchanged
        # (consecutive same-value entries), so the real decoder applies.
        import struct

        from repro.compression import rle_codec

        monkeypatch.setattr(rle_codec, "MAX_RUN", 7)
        codec = RleCodec()
        data = b"a" * 20 + b"b" + b"c" * 7 + b"d" * 8
        encoded = codec.encode_bytes(data)
        body = np.frombuffer(
            encoded, dtype=[("len", "<u4"), ("val", "u1")], offset=struct.calcsize("<4sQ")
        )
        assert int(body["len"].max()) <= 7
        # 20 -> 7+7+6, 1 -> 1, 7 -> 7, 8 -> 7+1.
        assert body["len"].tolist() == [7, 7, 6, 1, 7, 7, 1]
        assert body["val"].tolist() == [ord(c) for c in "aaabcdd"]
        assert codec.decode_bytes(encoded) == data

    def test_split_runs_match_unsplit_decode(self, monkeypatch):
        # An encoder that splits must stay interchangeable with one that
        # doesn't: both streams decode to the same payload.
        from repro.compression import rle_codec

        data = bytes(np.repeat(np.arange(5, dtype=np.uint8), [13, 1, 30, 2, 9]))
        plain = RleCodec().encode_bytes(data)
        monkeypatch.setattr(rle_codec, "MAX_RUN", 4)
        split = RleCodec().encode_bytes(data)
        assert len(split) > len(plain)
        assert RleCodec().decode_bytes(split) == RleCodec().decode_bytes(plain) == data


class TestLz4:
    def test_accel_validation(self):
        with pytest.raises(CodecError):
            Lz4Codec(accel=0)

    def test_compresses_repetitive_text(self):
        data = PAYLOADS["text"]
        encoded = Lz4Codec().encode_bytes(data)
        assert len(encoded) < len(data) // 10

    def test_overlapping_match_rle_trick(self):
        # offset < match length forces the byte-ordered overlap copy path.
        data = b"ab" * 5000
        codec = Lz4Codec()
        assert codec.decode_bytes(codec.encode_bytes(data)) == data

    def test_bad_magic(self):
        with pytest.raises(CodecError):
            Lz4Codec().decode_bytes(b"ZZZZ" + bytes(8))

    def test_truncated_stream(self):
        codec = Lz4Codec()
        encoded = codec.encode_bytes(PAYLOADS["text"])
        with pytest.raises(CodecError):
            codec.decode_bytes(encoded[:-10])

    def test_invalid_offset_rejected(self):
        import struct

        # token: 0 literals + match, offset 7 with empty history.
        payload = struct.pack("<4sQ", b"RLZ4", 100) + bytes([0x00]) + struct.pack("<H", 7)
        with pytest.raises(CodecError):
            Lz4Codec().decode_bytes(payload)

    def test_long_literal_extension(self):
        # > 15 literals with no matches exercises the 255-extension path.
        data = np.random.default_rng(2).integers(0, 256, 5000).astype(np.uint8).tobytes()
        codec = Lz4Codec()
        assert codec.decode_bytes(codec.encode_bytes(data)) == data
