"""Tests for the parallel write path: finalize(workers=N), encode stats,
timestep replication, and the running-mean field statistics."""

import hashlib
import os

import numpy as np
import pytest

from repro.compression.registry import Codec, register_codec
from repro.idx import IdxDataset
from repro.idx.idxfile import IdxError
from repro.util.arrays import block_iter


def _file_digest(path: str) -> str:
    with open(path, "rb") as fh:
        return hashlib.sha256(fh.read()).hexdigest()


def _build(path, array, *, codec="zlib:level=6", timesteps=1, workers=1, bits_per_block=7):
    ds = IdxDataset.create(
        path,
        dims=array.shape,
        fields={"value": str(array.dtype)},
        codec=codec,
        bits_per_block=bits_per_block,
        timesteps=timesteps,
    )
    for t in range(timesteps):
        ds.write(array + t, time=t)
    ds.finalize(workers=workers)
    return ds


class TestParallelFinalizeByteIdentity:
    @pytest.mark.parametrize("codec", ["zlib:level=6", "shuffle:level=6", "lz4", "identity", "rle"])
    def test_workers_byte_identical_across_codecs(self, tmp_path, rng, codec):
        a = rng.random((80, 120)).astype(np.float32)
        digests = set()
        for w in (1, 2, 4, 8):
            path = str(tmp_path / f"{codec.split(':')[0]}-{w}.idx")
            _build(path, a, codec=codec, workers=w)
            digests.add(_file_digest(path))
        assert len(digests) == 1

    def test_multi_time_multi_field_identity(self, tmp_path, rng):
        a = rng.random((48, 48)).astype(np.float32)
        b = (rng.random((48, 48)) * 100).astype(np.float32)
        digests = set()
        for w in (1, 4):
            path = str(tmp_path / f"mtf-{w}.idx")
            ds = IdxDataset.create(
                path, dims=a.shape, fields={"u": "float32", "v": "float32"},
                timesteps=3, bits_per_block=6,
            )
            for t in range(3):
                ds.write(a * (t + 1), field="u", time=t)
                ds.write(b - t, field="v", time=t)
            ds.finalize(workers=w)
            digests.add(_file_digest(path))
        assert len(digests) == 1

    def test_parallel_output_reads_back(self, tmp_path, rng):
        a = rng.random((64, 96)).astype(np.float32)
        path = str(tmp_path / "p.idx")
        _build(path, a, workers=4)
        assert np.array_equal(IdxDataset.open(path).read(), a)

    def test_workers_validated(self, tmp_path):
        ds = IdxDataset.create(str(tmp_path / "w.idx"), dims=(8, 8))
        ds.write(np.zeros((8, 8), dtype=np.float32))
        with pytest.raises(IdxError):
            ds.finalize(workers=0)


class TestEncodeStats:
    def test_counts_and_timing(self, tmp_path, rng):
        a = rng.random((64, 64)).astype(np.float32)
        path = str(tmp_path / "s.idx")
        ds = _build(path, a, workers=2, bits_per_block=6)
        s = ds.last_encode_stats
        assert s is not None and s.workers == 2
        # 64x64 = 4096 samples = 64 blocks of 64; all non-fill.
        assert s.blocks_total == 64
        assert s.blocks_encoded + s.blocks_skipped_fill + s.blocks_shared == s.blocks_total
        assert s.blocks_encoded > 0 and s.encoded_bytes > 0
        assert s.wall_seconds > 0 and s.cpu_seconds >= 0
        assert set(s.to_dict()) >= {"workers", "blocks_encoded", "wall_seconds"}

    def test_fill_blocks_skipped(self, tmp_path):
        path = str(tmp_path / "f.idx")
        ds = IdxDataset.create(path, dims=(64, 64), bits_per_block=6, fill_value=0.0)
        patch = np.ones((4, 4), dtype=np.float32)
        ds.write_region(patch, (0, 0))
        ds.finalize()
        s = ds.last_encode_stats
        assert s.blocks_skipped_fill > 0
        assert s.blocks_encoded < s.blocks_total

    def test_non_thread_safe_codec_falls_back_to_serial(self, tmp_path, rng):
        class StatefulCodec(Codec):
            name = "stateful-test"
            lossless = True
            thread_safe = False

            def encode_bytes(self, data: bytes) -> bytes:
                return bytes(data)

            def decode_bytes(self, data: bytes) -> bytes:
                return bytes(data)

        register_codec("stateful-test", StatefulCodec)
        a = rng.random((32, 32)).astype(np.float32)
        path = str(tmp_path / "nts.idx")
        ds = _build(path, a, codec="stateful-test", workers=8, bits_per_block=6)
        assert ds.last_encode_stats.workers == 1  # fell back
        assert np.array_equal(IdxDataset.open(path).read(), a)


class TestReplicateTimestep:
    def test_replicated_reads_equal(self, tmp_path, rng):
        a = rng.random((32, 32)).astype(np.float32)
        path = str(tmp_path / "r.idx")
        ds = IdxDataset.create(path, dims=a.shape, timesteps=4, bits_per_block=6)
        ds.write(a, time=0)
        ds.replicate_timestep(from_time=0, to_times=[1, 2, 3])
        ds.finalize()
        out = IdxDataset.open(path)
        for t in range(4):
            assert np.array_equal(out.read(time=t), a)

    def test_blocks_encoded_once_and_stored_once(self, tmp_path, rng):
        a = rng.random((32, 32)).astype(np.float32)
        rep = str(tmp_path / "rep.idx")
        ds = IdxDataset.create(rep, dims=a.shape, timesteps=8, bits_per_block=6)
        ds.write(a, time=0)
        ds.replicate_timestep(from_time=0, to_times=range(1, 8))
        ds.finalize()
        s = ds.last_encode_stats
        assert s.blocks_shared == 7 * s.blocks_encoded

        # Every replica re-encoded/stored separately would multiply payload
        # bytes by 8; sharing keeps the file close to the 1-timestep size
        # (the block table still grows with timesteps).
        solo = str(tmp_path / "solo.idx")
        ds1 = IdxDataset.create(solo, dims=a.shape, timesteps=1, bits_per_block=6)
        ds1.write(a)
        ds1.finalize()
        payload = os.path.getsize(solo)
        assert os.path.getsize(rep) < payload + 7 * (payload // 2)

    def test_copy_on_write_after_replicate(self, tmp_path, rng):
        a = rng.random((32, 32)).astype(np.float32)
        b = rng.random((32, 32)).astype(np.float32)
        path = str(tmp_path / "cow.idx")
        ds = IdxDataset.create(path, dims=a.shape, timesteps=3, bits_per_block=6)
        ds.write(a, time=0)
        ds.replicate_timestep(from_time=0, to_times=[1, 2])
        ds.write(b, time=1)  # must not clobber timesteps 0 and 2
        ds.finalize()
        out = IdxDataset.open(path)
        assert np.array_equal(out.read(time=0), a)
        assert np.array_equal(out.read(time=1), b)
        assert np.array_equal(out.read(time=2), a)

    def test_replicate_requires_written_source(self, tmp_path):
        ds = IdxDataset.create(str(tmp_path / "e.idx"), dims=(8, 8), timesteps=2)
        with pytest.raises(IdxError):
            ds.replicate_timestep(from_time=0, to_times=[1])


class TestRunningMeanStats:
    def test_tilewise_ingest_reports_true_mean(self, tmp_path, rng):
        a = rng.random((64, 96)).astype(np.float32) * 100
        path = str(tmp_path / "m.idx")
        ds = IdxDataset.create(path, dims=a.shape, bits_per_block=7)
        for box in block_iter(a.shape, (16, 32)):
            ds.write_region(a[box.to_slices()], box.lo)
        ds.finalize()
        stats = IdxDataset.open(path).field_stats()
        assert stats["mean"] == pytest.approx(float(a.mean()), rel=1e-5)
        assert stats["min"] == pytest.approx(float(a.min()))
        assert stats["max"] == pytest.approx(float(a.max()))

    def test_mean_not_last_tile_mean(self, tmp_path):
        path = str(tmp_path / "m2.idx")
        ds = IdxDataset.create(path, dims=(32, 32), bits_per_block=6)
        ds.write_region(np.zeros((32, 16), dtype=np.float32), (0, 0))
        ds.write_region(np.full((32, 16), 10.0, dtype=np.float32), (0, 16))
        ds.finalize()
        stats = IdxDataset.open(path).field_stats()
        assert stats["mean"] == pytest.approx(5.0)  # not 10.0

    def test_nan_samples_excluded(self, tmp_path):
        a = np.full((16, 16), 4.0, dtype=np.float32)
        a[:8] = np.nan
        path = str(tmp_path / "m3.idx")
        ds = IdxDataset.create(path, dims=a.shape, bits_per_block=6)
        ds.write(a)
        ds.finalize()
        assert IdxDataset.open(path).field_stats()["mean"] == pytest.approx(4.0)
