"""Chaos harness for the multi-tenant service: faults stay per-session.

Two tenants share one :class:`SessionManager` — one block cache, one
:class:`FaultyStore`, one Seal front-end — but view *disjoint* crops of
the same dataset.  A seeded :class:`FaultPlan` blacks out blocks that
only tenant A's crop touches.  The harness then asserts the blast
radius: A's progressive sweeps degrade (flagged, never crashing) while
B's frames stay byte-identical to the fault-free reference, B's retry
stats stay at zero, and the Session Explorer attributes every degraded
frame to A alone.

Seeds are searched deterministically (pure hash arithmetic, no I/O)
for plans whose blackout set is non-empty and contained in A's private
blocks; ``REPRO_CHAOS_SEED_BASE`` shifts the searched population so CI
shards explore disjoint schedules with the same test code.
"""

import base64
import os
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.dashboard import DashboardSession
from repro.faults import CircuitBreaker, FaultPlan, FaultyStore, RetryPolicy
from repro.idx import IdxDataset
from repro.idx.idxfile import BytesByteSource, IdxBinaryReader
from repro.network.clock import SimClock
from repro.services import SessionLimits, SessionManager
from repro.storage.object_store import ObjectStore
from repro.storage.seal import SealStorage

SEED_BASE = int(os.environ.get("REPRO_CHAOS_SEED_BASE", "0"))
KEY = "tenants.idx"
BUCKET = "sealed"

CROP_A = ((0, 0), (32, 16))   # left half — the unlucky tenant
CROP_B = ((0, 16), (32, 32))  # right half — must never notice


class TenantEnv:
    """Ground truth plus the block geometry both tenants' crops imply."""

    def __init__(self, tmp_path):
        rng = np.random.default_rng(20260807)
        self.array = rng.random((32, 32)).astype(np.float32)
        path = str(tmp_path / KEY)
        ds = IdxDataset.create(path, self.array.shape, bits_per_block=4)
        ds.write(self.array)
        ds.finalize()

        local = IdxDataset.open(path)
        self.maxh = local.maxh
        # The tenants render at the resolution the (8, 8) viewport
        # auto-picks; only blocks inside that sweep's footprint matter.
        probe = DashboardSession(viewport=(8, 8))
        probe.register_dataset("shared", local)
        probe.crop(CROP_A)
        self.sweep_end = probe.effective_resolution()
        self.blocks_a = self._blocks_touched(local, CROP_A, self.sweep_end)
        self.blocks_b = self._blocks_touched(local, CROP_B, self.sweep_end)
        self.only_a = self.blocks_a - self.blocks_b
        # The coarsest step of A's sweep must stay fetchable, or there is
        # no previous frame to degrade *to* and the sweep dies outright.
        self.blocks_a_first = self._blocks_touched(local, CROP_A, 0)
        local.close()
        assert self.only_a, "crops must leave tenant A some private blocks"

        with open(path, "rb") as fh:
            blob = fh.read()
        reader = IdxBinaryReader(BytesByteSource(blob))
        self.offsets = {
            int(b): reader.block_entry(0, 0, int(b))[0]
            for b in reader.present_blocks(0, 0)
        }
        self.store = ObjectStore("tenants-base")
        self.store.ensure_bucket(BUCKET)
        self.store.put(BUCKET, KEY, blob)

    @staticmethod
    def _blocks_touched(local, crop, resolution):
        """Block ids a read of ``crop`` at ``resolution`` touches."""
        snap = local.access.counters.snapshot()
        local.read(box=crop, resolution=resolution)
        return {b for _, _, b in local.access.counters.blocks_since(snap)}

    def blackout_seed(self, *, start, tries=800):
        """First seed that blacks out A's footprint but none of B's."""
        for seed in range(start, start + tries):
            plan = self.plan(seed)
            dark = {
                b
                for b, off in self.offsets.items()
                if plan.is_blackout("get_range", BUCKET, KEY, detail=off)
            }
            if (
                dark & self.blocks_a
                and not dark & self.blocks_b
                and not dark & self.blocks_a_first
            ):
                return seed, dark
        raise AssertionError("no suitable blackout seed in the searched range")

    @staticmethod
    def plan(seed):
        # Blackouts only: every injected fault is permanent, so the
        # clean tenant's retry counters must stay at exactly zero — the
        # sharpest possible per-session isolation assertion.  (Mixed
        # transient schedules are chaos-swept in test_faults_chaos.)
        return FaultPlan(seed, blackout_rate=0.10, max_faults_per_key=1)

    def manager(self, seed):
        """Shared service wiring with the seeded faults armed."""
        clock = SimClock()
        faulty = FaultyStore(self.store, clock=clock)
        seal = SealStorage(store=faulty, clock=clock)
        token = seal.issue_token("tenants", ("read",))
        mgr = SessionManager(cache_capacity="16 MiB")
        mgr.open_remote(
            "shared", seal, KEY, token=token,
            retry=RetryPolicy(max_attempts=2, base_delay=0.01, seed=seed),
            breaker=CircuitBreaker(threshold=2, cooldown=1e9, clock=clock),
        )
        faulty.arm(self.plan(seed))
        return mgr

    def reference_pixels(self, crop):
        """Fault-free render of ``crop`` from the local file, as bytes."""
        session = DashboardSession(viewport=(8, 8))
        session.register_dataset("shared", IdxDataset.open(os.path.join(self.dir, KEY)))
        session.crop(crop)
        # The protocol's render op fits the viewport by default.
        return session.current_frame(fit_viewport=True).tobytes()


@pytest.fixture(scope="module")
def env(tmp_path_factory):
    d = tmp_path_factory.mktemp("tenants")
    e = TenantEnv(d)
    e.dir = str(d)
    return e


def open_tenant(mgr, tenant, crop):
    sid = mgr.create_session(tenant, viewport=(8, 8))
    assert mgr.handle(sid, {"op": "crop", "lo": list(crop[0]), "hi": list(crop[1])})["ok"]
    assert mgr.handle(sid, {"op": "set_resolution", "level": None})["ok"]
    return sid


class TestFaultIsolation:
    def test_degraded_frames_stay_per_session(self, env):
        degraded_runs = 0
        for start in (SEED_BASE, SEED_BASE + 1000, SEED_BASE + 2000):
            seed, dark = env.blackout_seed(start=start)
            mgr = env.manager(seed)
            sid_a = open_tenant(mgr, "A", CROP_A)
            sid_b = open_tenant(mgr, "B", CROP_B)

            # B first: its clean sweep warms the shared cache.
            resp_b = mgr.handle(sid_b, {"op": "refine"})
            assert resp_b["ok"], f"seed {seed}: clean tenant failed: {resp_b}"
            assert resp_b["result"]["degraded_levels"] == [], f"seed {seed}"

            stream = mgr.handle(sid_a, {"op": "subscribe", "events": ["degraded"]})
            resp_a = mgr.handle(sid_a, {"op": "refine"})
            # The seed search keeps A's coarsest block clean, so the
            # sweep always completes — degraded, never dead.
            assert resp_a["ok"], f"seed {seed}: {resp_a}"
            assert resp_a["result"]["degraded_levels"], f"seed {seed}: no degradation"
            degraded_runs += 1
            # Degradation surfaced on A's stream and in A's explorer
            # row — and nowhere else.
            events = mgr.handle(
                sid_a, {"op": "poll", "stream": stream["result"]["stream"]}
            )["result"]["events"]
            assert len(events) == len(resp_a["result"]["degraded_levels"])
            assert {e["event"] for e in events} == {"degraded"}
            assert mgr.session(sid_a).degraded_frames == len(events)

            # B's world is untouched whatever happened to A: a repeat
            # render is byte-identical to the fault-free reference and
            # B's scope absorbed none of A's retries.
            resp = mgr.handle(sid_b, {"op": "render", "include_pixels": True})
            assert resp["ok"], f"seed {seed}"
            assert base64.b64decode(resp["result"]["pixels_b64"]) == env.reference_pixels(
                CROP_B
            ), f"seed {seed}: clean tenant's frame changed"
            b = mgr.session(sid_b)
            snap = b.scope.retry_stats.snapshot()
            assert snap["retries"] == 0 and snap["exhausted"] == 0, f"seed {seed}"
            assert b.degraded_frames == 0, f"seed {seed}"
            assert mgr.session(sid_b).errors == 0, f"seed {seed}"

            # A's trouble *is* on A's books.
            snap_a = mgr.session(sid_a).scope.retry_stats.snapshot()
            assert snap_a["exhausted"] > 0, f"seed {seed}"
        assert degraded_runs == 3

    def test_concurrent_tenants_one_faulty_store(self, env):
        """Both tenants sweep at once; the blast radius still holds."""
        seed, _ = env.blackout_seed(start=SEED_BASE + 3000)
        mgr = env.manager(seed)
        sid_a = open_tenant(mgr, "A", CROP_A)
        sid_b = open_tenant(mgr, "B", CROP_B)

        with ThreadPoolExecutor(max_workers=2) as pool:
            fut_a = pool.submit(mgr.handle, sid_a, {"op": "refine"})
            fut_b = pool.submit(mgr.handle, sid_b, {"op": "refine"})
            resp_a, resp_b = fut_a.result(), fut_b.result()

        assert resp_b["ok"]
        assert resp_b["result"]["degraded_levels"] == []
        assert mgr.session(sid_b).scope.retry_stats.snapshot()["exhausted"] == 0
        assert resp_a["ok"], resp_a
        assert resp_a["result"]["frames"] >= 1
        assert resp_a["result"]["degraded_levels"]
        summary = mgr.explorer().summary()
        assert summary["degraded_frames"] == mgr.session(sid_a).degraded_frames

    def test_throttled_faulty_tenant_still_degrades_cleanly(self, env):
        """Fairness limits and faults compose: A is rate-limited *and*
        blacked out; B remains fast, clean, and unthrottled."""
        seed, _ = env.blackout_seed(start=SEED_BASE + 4000)
        clock = SimClock()
        faulty = FaultyStore(env.store, clock=clock)
        seal = SealStorage(store=faulty, clock=clock)
        token = seal.issue_token("tenants", ("read",))
        mgr = SessionManager(cache_capacity="16 MiB", clock=clock)
        mgr.open_remote(
            "shared", seal, KEY, token=token,
            retry=RetryPolicy(max_attempts=2, base_delay=0.01, seed=seed),
            breaker=CircuitBreaker(threshold=2, cooldown=1e9, clock=clock),
        )
        faulty.arm(env.plan(seed))

        # The bucket shares the simulation's clock, so simulated network
        # time refills tokens between admissions; 1 block/s sits far
        # below any refill the per-fetch latency can provide.
        sid_a = mgr.create_session(
            "A", viewport=(8, 8),
            limits=SessionLimits(rate_blocks_per_s=1.0, burst_blocks=1),
        )
        sid_b = mgr.create_session("B", viewport=(8, 8))
        for sid, crop in ((sid_a, CROP_A), (sid_b, CROP_B)):
            mgr.handle(sid, {"op": "crop", "lo": list(crop[0]), "hi": list(crop[1])})
            mgr.handle(sid, {"op": "set_resolution", "level": None})

        mgr.handle(sid_a, {"op": "refine"})
        resp_b = mgr.handle(sid_b, {"op": "render", "include_pixels": True})
        assert resp_b["ok"]
        assert base64.b64decode(resp_b["result"]["pixels_b64"]) == env.reference_pixels(
            CROP_B
        )
        assert mgr.session(sid_a).scope.throttled_s > 0
        assert mgr.session(sid_b).scope.throttled_s == 0.0
