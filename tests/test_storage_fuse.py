"""Tests for NSDF-FUSE mapping packages."""

import numpy as np
import pytest

from repro.storage.fuse import ArchiveMapping, ChunkedMapping, FuseMount, OneToOneMapping
from repro.storage.object_store import ObjectStore, StorageError

MAPPINGS = [
    OneToOneMapping(),
    ChunkedMapping("1 KiB"),
    ChunkedMapping("64 KiB"),
    ArchiveMapping("8 KiB"),
]


@pytest.fixture(params=MAPPINGS, ids=lambda m: f"{m.name}-{id(m) % 100}")
def mount(request):
    return FuseMount(ObjectStore(), "fs", request.param)


FILES = {
    "a.bin": b"",
    "dir/b.bin": b"short",
    "dir/c.bin": bytes(range(256)) * 20,  # 5 KiB
    "dir/sub/d.bin": np.random.default_rng(0).integers(0, 256, 3000).astype("u1").tobytes(),
}


class TestCommonSemantics:
    def test_write_read_round_trip(self, mount):
        for path, data in FILES.items():
            mount.write_file(path, data)
        for path, data in FILES.items():
            assert mount.read_file(path) == data, path

    def test_stat_size(self, mount):
        for path, data in FILES.items():
            mount.write_file(path, data)
            assert mount.stat_size(path) == len(data)

    def test_overwrite(self, mount):
        mount.write_file("f", b"old-longer-content" * 100)
        mount.write_file("f", b"new")
        assert mount.read_file("f") == b"new"
        assert mount.stat_size("f") == 3

    def test_listdir_prefix(self, mount):
        for path, data in FILES.items():
            mount.write_file(path, data)
        assert sorted(mount.listdir("dir/")) == ["dir/b.bin", "dir/c.bin", "dir/sub/d.bin"]
        assert sorted(mount.listdir()) == sorted(FILES)

    def test_read_range(self, mount):
        data = bytes(range(256)) * 10
        mount.write_file("r.bin", data)
        assert mount.read_range("r.bin", 0, 10) == data[:10]
        assert mount.read_range("r.bin", 100, 900) == data[100:1000]
        assert mount.read_range("r.bin", len(data) - 5, 5) == data[-5:]

    def test_read_range_bounds(self, mount):
        mount.write_file("r.bin", b"0123456789")
        with pytest.raises(StorageError):
            mount.read_range("r.bin", 8, 5)

    def test_delete(self, mount):
        mount.write_file("gone", b"x")
        mount.delete("gone")
        assert "gone" not in mount.listdir()
        with pytest.raises(StorageError):
            mount.read_file("gone")

    def test_missing_file(self, mount):
        with pytest.raises(StorageError):
            mount.read_file("never-written")

    def test_invalid_paths(self, mount):
        for bad in ("", "/abs", "a/../b"):
            with pytest.raises(StorageError):
                mount.write_file(bad, b"x")


class TestMappingCharacteristics:
    def test_one_to_one_object_count(self):
        store = ObjectStore()
        m = FuseMount(store, "fs", OneToOneMapping())
        for i in range(10):
            m.write_file(f"f{i}", b"x" * 100)
        assert store.stats.puts == 10

    def test_chunked_splits_large_files(self):
        store = ObjectStore()
        m = FuseMount(store, "fs", ChunkedMapping("1 KiB"))
        m.write_file("big", bytes(5000))
        # 5 chunks + 1 manifest.
        assert store.stats.puts == 6

    def test_chunked_ranged_read_touches_few_chunks(self):
        store = ObjectStore()
        m = FuseMount(store, "fs", ChunkedMapping("1 KiB"))
        m.write_file("big", bytes(range(256)) * 40)  # 10 KiB = 10 chunks
        before = store.stats.snapshot()
        m.read_range("big", 2048, 100)  # inside chunk 2
        delta = store.stats.delta(before)
        assert delta.gets <= 2  # manifest + one chunk

    def test_chunked_shrink_cleans_stale_chunks(self):
        store = ObjectStore()
        m = FuseMount(store, "fs", ChunkedMapping("1 KiB"))
        m.write_file("f", bytes(5000))
        m.write_file("f", bytes(1000))
        # Only chunk 0 + manifest remain.
        assert len(store.list("fs", "c/f/")) == 2

    def test_archive_minimises_objects_for_small_files(self):
        store = ObjectStore()
        m = FuseMount(store, "fs", ArchiveMapping("1 MiB"))
        for i in range(50):
            m.write_file(f"tiny{i}", bytes(50))
        # 50 small files live in a single segment (+index).
        objects = store.list("fs")
        assert len(objects) == 2

    def test_archive_rolls_segments(self):
        store = ObjectStore()
        m = FuseMount(store, "fs", ArchiveMapping("1 KiB"))
        for i in range(5):
            m.write_file(f"f{i}", bytes(400))
        segments = [o for o in store.list("fs") if "seg-" in o.key]
        assert len(segments) >= 2

    def test_archive_write_amplification(self):
        """Appending re-writes the open segment: bytes_in >> payload."""
        store = ObjectStore()
        m = FuseMount(store, "fs", ArchiveMapping("1 MiB"))
        for i in range(20):
            m.write_file(f"f{i}", bytes(1000))
        assert store.stats.bytes_in > 20 * 1000 * 2
