"""Tests for temporal utilities over multi-timestep datasets."""

import numpy as np
import pytest

from repro.idx import (
    BlockCache,
    CachedAccess,
    IdxDataset,
    LocalAccess,
    animate,
    global_range,
    prefetch_timestep,
    temporal_difference,
    temporal_stats,
)


@pytest.fixture
def series(tmp_path, rng):
    """4-step series: base terrain rising 10 units per step."""
    base = rng.random((32, 48)).astype(np.float32) * 100
    path = str(tmp_path / "ts.idx")
    ds = IdxDataset.create(path, dims=base.shape, timesteps=4, bits_per_block=7)
    for t in range(4):
        ds.write(base + 10.0 * t, time=t)
    ds.finalize()
    return IdxDataset.open(path), base


class TestTemporalStats:
    def test_one_entry_per_timestep(self, series):
        ds, _ = series
        stats = temporal_stats(ds)
        assert len(stats) == 4

    def test_means_rise_with_time(self, series):
        ds, _ = series
        stats = temporal_stats(ds)
        means = [s.mean for s in stats]
        assert means == sorted(means)
        assert means[3] - means[0] == pytest.approx(30.0, abs=0.5)

    def test_coarse_stats_cheaper(self, series):
        ds, _ = series
        coarse = temporal_stats(ds, resolution=ds.maxh - 4)
        assert all(s.count < 32 * 48 / 8 for s in coarse)


class TestGlobalRange:
    def test_brackets_all_steps(self, series):
        ds, base = series
        lo, hi = global_range(ds)
        assert lo == pytest.approx(float(base.min()))
        assert hi == pytest.approx(float(base.max()) + 30.0)

    def test_coarse_range_within_exact(self, series):
        ds, _ = series
        lo_c, hi_c = global_range(ds, resolution=ds.maxh - 3)
        lo, hi = global_range(ds)
        assert lo <= lo_c and hi_c <= hi


class TestTemporalDifference:
    def test_constant_shift(self, series):
        ds, _ = series
        diff = temporal_difference(ds, 0, 3)
        assert np.allclose(diff, 30.0)

    def test_reversed_sign(self, series):
        ds, _ = series
        assert np.allclose(temporal_difference(ds, 3, 0), -30.0)

    def test_boxed_difference(self, series):
        ds, _ = series
        diff = temporal_difference(ds, 1, 2, box=((4, 4), (12, 20)))
        assert diff.shape == (8, 16)
        assert np.allclose(diff, 10.0)


class TestPrefetchAndAnimate:
    def test_prefetch_warms_cache(self, series, tmp_path):
        ds, _ = series
        inner = LocalAccess(ds.path)
        cached = IdxDataset.from_access(CachedAccess(inner, BlockCache("8 MiB")))
        touched = prefetch_timestep(cached, 1, resolution=6)
        assert touched > 0
        before = inner.counters.blocks_read
        cached.read(time=1, resolution=6)
        assert inner.counters.blocks_read == before  # pure cache hits

    def test_animate_yields_all_frames(self, series):
        ds, base = series
        frames = list(animate(ds, resolution=ds.maxh))
        assert [f.time for f in frames] == [0, 1, 2, 3]
        assert np.array_equal(frames[0].data, base)

    def test_animate_custom_order_and_lookahead(self, series):
        ds, _ = series
        frames = list(animate(ds, times=[3, 1], look_ahead=0))
        assert [f.time for f in frames] == [3, 1]
        with pytest.raises(ValueError):
            list(animate(ds, look_ahead=-1))

    def test_animate_with_cache_prefetch_hides_fetches(self, series):
        ds, _ = series
        inner = LocalAccess(ds.path)
        cached = IdxDataset.from_access(CachedAccess(inner, BlockCache("8 MiB")))
        reads_at_frame = []
        for _ in animate(cached, resolution=6, look_ahead=1):
            reads_at_frame.append(inner.counters.blocks_read)
        # After the first frame (which prefetches frame 2), the visible
        # read for each subsequent frame adds no inner fetches beyond the
        # look-ahead's own.
        assert reads_at_frame[-1] == reads_at_frame[-2]
