"""CLI surfaces for repro-lint: `repro lint`, `python -m repro.analysis`,
exit-code semantics (0 clean / 1 findings / 2 internal error), and the
self-application guarantee that the shipped tree lints clean."""

from __future__ import annotations

import json
import os
import textwrap

import repro
from repro.analysis.__main__ import main as analysis_main
from repro.cli import main as cli_main

CLEAN_SNIPPET = """
    import threading

    class Counter:
        def __init__(self):
            self._lock = threading.Lock()
            self.total = 0

        def add(self, n):
            with self._lock:
                self.total += n
"""

DIRTY_SNIPPET = CLEAN_SNIPPET + """
        def racy(self):
            return self.total
"""


def write(tmp_path, name, content):
    path = tmp_path / name
    path.write_text(textwrap.dedent(content))
    return str(path)


def test_module_main_clean_exits_zero(tmp_path, capsys):
    target = write(tmp_path, "clean.py", CLEAN_SNIPPET)
    assert analysis_main([target]) == 0
    out = capsys.readouterr().out
    assert "clean" in out


def test_module_main_findings_exit_one(tmp_path, capsys):
    target = write(tmp_path, "dirty.py", DIRTY_SNIPPET)
    assert analysis_main([target]) == 1
    out = capsys.readouterr().out
    assert "lock-discipline" in out


def test_module_main_internal_error_exits_two(tmp_path, capsys):
    assert analysis_main([str(tmp_path / "does-not-exist")]) == 2


def test_module_main_unknown_rule_exits_two(tmp_path):
    target = write(tmp_path, "clean.py", CLEAN_SNIPPET)
    assert analysis_main([target, "--rules", "no-such-rule"]) == 2


def test_module_main_json_report(tmp_path, capsys):
    target = write(tmp_path, "dirty.py", DIRTY_SNIPPET)
    assert analysis_main([target, "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 1
    assert payload["ok"] is False
    assert payload["counts"]["lock-discipline"] == 1
    finding = payload["findings"][0]
    assert finding["rule"] == "lock-discipline"
    assert finding["path"].endswith("dirty.py")
    assert finding["line"] > 0


def test_module_main_rule_selection(tmp_path):
    target = write(tmp_path, "dirty.py", DIRTY_SNIPPET)
    # The violation is lock-discipline; running only codec-purity is clean.
    assert analysis_main([target, "--rules", "codec-purity"]) == 0
    assert analysis_main([target, "--rules", "lock-discipline"]) == 1


def test_module_main_list_rules(capsys):
    assert analysis_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in (
        "lock-discipline",
        "codec-purity",
        "lock-order",
        "swallowed-exception",
        "executor-hygiene",
    ):
        assert rule in out


def test_module_main_parse_error_is_a_finding(tmp_path, capsys):
    target = write(tmp_path, "broken.py", "def broken(:\n")
    assert analysis_main([target]) == 1
    assert "parse-error" in capsys.readouterr().out


def test_repro_cli_lint_subcommand(tmp_path, capsys):
    clean = write(tmp_path, "clean.py", CLEAN_SNIPPET)
    dirty = write(tmp_path, "dirty.py", DIRTY_SNIPPET)
    assert cli_main(["lint", clean]) == 0
    capsys.readouterr()
    assert cli_main(["lint", dirty, "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False


def test_repro_cli_lint_defaults_to_package(capsys):
    # `repro lint` with no paths lints the installed repro package — the
    # self-application acceptance criterion as a permanent regression test.
    assert cli_main(["lint"]) == 0
    out = capsys.readouterr().out
    assert "clean" in out


def test_self_application_whole_tree_is_clean():
    from repro.analysis import run_lint

    pkg = os.path.dirname(os.path.abspath(repro.__file__))
    result = run_lint([pkg])
    assert result.findings == [], "\n".join(f.format() for f in result.findings)
    assert len(result.rules) >= 5
    assert len(result.files) > 50


# -- PR 8 surfaces: SARIF, --output, --changed, --jobs, timings --------------


def test_module_main_sarif_report(tmp_path, capsys):
    target = write(tmp_path, "dirty.py", DIRTY_SNIPPET)
    assert analysis_main([target, "--format", "sarif"]) == 1
    log = json.loads(capsys.readouterr().out)
    assert log["version"] == "2.1.0"
    run = log["runs"][0]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    rule_ids = {r["id"] for r in driver["rules"]}
    assert "lock-discipline" in rule_ids
    (finding,) = [r for r in run["results"] if r["ruleId"] == "lock-discipline"]
    location = finding["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"].endswith("dirty.py")
    assert location["region"]["startLine"] > 0
    assert location["region"]["startColumn"] >= 1  # SARIF columns are 1-based


def test_module_main_sarif_clean_still_lists_rules(tmp_path, capsys):
    target = write(tmp_path, "clean.py", CLEAN_SNIPPET)
    assert analysis_main([target, "--format", "sarif"]) == 0
    log = json.loads(capsys.readouterr().out)
    run = log["runs"][0]
    assert run["results"] == []
    assert len(run["tool"]["driver"]["rules"]) >= 5


def test_module_main_output_file(tmp_path, capsys):
    target = write(tmp_path, "dirty.py", DIRTY_SNIPPET)
    out_path = tmp_path / "report.sarif"
    assert analysis_main([target, "--format", "sarif", "--output", str(out_path)]) == 1
    assert capsys.readouterr().out == ""
    log = json.loads(out_path.read_text())
    assert log["runs"][0]["results"]


def test_module_main_json_includes_timings(tmp_path, capsys):
    target = write(tmp_path, "clean.py", CLEAN_SNIPPET)
    assert analysis_main([target, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    timings = payload["timings_s"]
    assert "lock-discipline" in timings
    assert all(t >= 0 for t in timings.values())
    assert set(timings) <= set(payload["rules"])


def test_module_main_jobs_parity(tmp_path, capsys):
    # Parallel and serial runs must produce identical findings.
    for i in range(6):
        write(tmp_path, f"dirty{i}.py", DIRTY_SNIPPET)
    assert analysis_main([str(tmp_path), "--json", "--jobs", "1"]) == 1
    serial = json.loads(capsys.readouterr().out)
    assert analysis_main([str(tmp_path), "--json", "--jobs", "4"]) == 1
    parallel = json.loads(capsys.readouterr().out)
    assert serial["findings"] == parallel["findings"]
    assert serial["counts"] == parallel["counts"]


def test_changed_mode_reports_only_changed_files(tmp_path, capsys, monkeypatch):
    import subprocess

    def git(*argv):
        subprocess.run(
            ["git", *argv],
            cwd=tmp_path,
            check=True,
            capture_output=True,
            env={
                **os.environ,
                "GIT_AUTHOR_NAME": "t",
                "GIT_AUTHOR_EMAIL": "t@example.com",
                "GIT_COMMITTER_NAME": "t",
                "GIT_COMMITTER_EMAIL": "t@example.com",
            },
        )

    git("init", "-q", "-b", "main")
    committed = write(tmp_path, "old_dirty.py", DIRTY_SNIPPET)
    git("add", ".")
    git("commit", "-q", "-m", "seed")
    fresh = write(tmp_path, "new_dirty.py", DIRTY_SNIPPET)
    monkeypatch.chdir(tmp_path)

    # Full run sees findings in both files; --changed HEAD narrows the
    # report to the uncommitted file only.
    assert analysis_main([str(tmp_path), "--json"]) == 1
    full = json.loads(capsys.readouterr().out)
    assert {os.path.basename(f["path"]) for f in full["findings"]} == {
        "old_dirty.py",
        "new_dirty.py",
    }
    assert analysis_main([str(tmp_path), "--json", "--changed", "HEAD"]) == 1
    narrowed = json.loads(capsys.readouterr().out)
    assert {os.path.basename(f["path"]) for f in narrowed["findings"]} == {
        "new_dirty.py"
    }
    # Unknown ref -> internal error, not a silent full report.
    assert analysis_main([str(tmp_path), "--changed", "no-such-ref"]) == 2


def test_changed_files_helper_lists_modified_and_untracked(tmp_path):
    import subprocess

    from repro.analysis.runner import changed_files

    env = {
        **os.environ,
        "GIT_AUTHOR_NAME": "t",
        "GIT_AUTHOR_EMAIL": "t@example.com",
        "GIT_COMMITTER_NAME": "t",
        "GIT_COMMITTER_EMAIL": "t@example.com",
    }

    def git(*argv):
        subprocess.run(
            ["git", *argv], cwd=tmp_path, check=True, capture_output=True, env=env
        )

    git("init", "-q", "-b", "main")
    tracked = write(tmp_path, "tracked.py", CLEAN_SNIPPET)
    write(tmp_path, "notes.txt", "not python")
    git("add", ".")
    git("commit", "-q", "-m", "seed")
    # Modify the tracked file, add an untracked one.
    with open(tracked, "a") as fh:
        fh.write("\n# touched\n")
    write(tmp_path, "untracked.py", CLEAN_SNIPPET)
    names = {os.path.basename(p) for p in changed_files("HEAD", cwd=str(tmp_path))}
    assert names == {"tracked.py", "untracked.py"}


def test_repro_cli_lint_passes_new_flags_through(tmp_path, capsys):
    dirty = write(tmp_path, "dirty.py", DIRTY_SNIPPET)
    out_path = tmp_path / "report.sarif"
    assert (
        cli_main(
            ["lint", dirty, "--format", "sarif", "--output", str(out_path), "--jobs", "2"]
        )
        == 1
    )
    log = json.loads(out_path.read_text())
    assert log["runs"][0]["tool"]["driver"]["name"] == "repro-lint"
