"""CLI surfaces for repro-lint: `repro lint`, `python -m repro.analysis`,
exit-code semantics (0 clean / 1 findings / 2 internal error), and the
self-application guarantee that the shipped tree lints clean."""

from __future__ import annotations

import json
import os
import textwrap

import repro
from repro.analysis.__main__ import main as analysis_main
from repro.cli import main as cli_main

CLEAN_SNIPPET = """
    import threading

    class Counter:
        def __init__(self):
            self._lock = threading.Lock()
            self.total = 0

        def add(self, n):
            with self._lock:
                self.total += n
"""

DIRTY_SNIPPET = CLEAN_SNIPPET + """
        def racy(self):
            return self.total
"""


def write(tmp_path, name, content):
    path = tmp_path / name
    path.write_text(textwrap.dedent(content))
    return str(path)


def test_module_main_clean_exits_zero(tmp_path, capsys):
    target = write(tmp_path, "clean.py", CLEAN_SNIPPET)
    assert analysis_main([target]) == 0
    out = capsys.readouterr().out
    assert "clean" in out


def test_module_main_findings_exit_one(tmp_path, capsys):
    target = write(tmp_path, "dirty.py", DIRTY_SNIPPET)
    assert analysis_main([target]) == 1
    out = capsys.readouterr().out
    assert "lock-discipline" in out


def test_module_main_internal_error_exits_two(tmp_path, capsys):
    assert analysis_main([str(tmp_path / "does-not-exist")]) == 2


def test_module_main_unknown_rule_exits_two(tmp_path):
    target = write(tmp_path, "clean.py", CLEAN_SNIPPET)
    assert analysis_main([target, "--rules", "no-such-rule"]) == 2


def test_module_main_json_report(tmp_path, capsys):
    target = write(tmp_path, "dirty.py", DIRTY_SNIPPET)
    assert analysis_main([target, "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 1
    assert payload["ok"] is False
    assert payload["counts"]["lock-discipline"] == 1
    finding = payload["findings"][0]
    assert finding["rule"] == "lock-discipline"
    assert finding["path"].endswith("dirty.py")
    assert finding["line"] > 0


def test_module_main_rule_selection(tmp_path):
    target = write(tmp_path, "dirty.py", DIRTY_SNIPPET)
    # The violation is lock-discipline; running only codec-purity is clean.
    assert analysis_main([target, "--rules", "codec-purity"]) == 0
    assert analysis_main([target, "--rules", "lock-discipline"]) == 1


def test_module_main_list_rules(capsys):
    assert analysis_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in (
        "lock-discipline",
        "codec-purity",
        "lock-order",
        "swallowed-exception",
        "executor-hygiene",
    ):
        assert rule in out


def test_module_main_parse_error_is_a_finding(tmp_path, capsys):
    target = write(tmp_path, "broken.py", "def broken(:\n")
    assert analysis_main([target]) == 1
    assert "parse-error" in capsys.readouterr().out


def test_repro_cli_lint_subcommand(tmp_path, capsys):
    clean = write(tmp_path, "clean.py", CLEAN_SNIPPET)
    dirty = write(tmp_path, "dirty.py", DIRTY_SNIPPET)
    assert cli_main(["lint", clean]) == 0
    capsys.readouterr()
    assert cli_main(["lint", dirty, "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False


def test_repro_cli_lint_defaults_to_package(capsys):
    # `repro lint` with no paths lints the installed repro package — the
    # self-application acceptance criterion as a permanent regression test.
    assert cli_main(["lint"]) == 0
    out = capsys.readouterr().out
    assert "clean" in out


def test_self_application_whole_tree_is_clean():
    from repro.analysis import run_lint

    pkg = os.path.dirname(os.path.abspath(repro.__file__))
    result = run_lint([pkg])
    assert result.findings == [], "\n".join(f.format() for f in result.findings)
    assert len(result.rules) >= 5
    assert len(result.files) > 50
