"""Property-based tests (hypothesis) for the codec suite."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.compression import Lz4Codec, RleCodec, ZfpCodec, ZlibCodec

_byte_payloads = st.binary(min_size=0, max_size=4096)

# Payloads with structure (runs + repeats) exercise match paths harder.
_structured = st.lists(
    st.tuples(st.integers(0, 255), st.integers(1, 200)), min_size=0, max_size=40
).map(lambda runs: b"".join(bytes([v]) * n for v, n in runs))


@given(_byte_payloads)
@settings(max_examples=60)
def test_zlib_round_trip(data):
    codec = ZlibCodec()
    assert codec.decode_bytes(codec.encode_bytes(data)) == data


@given(_byte_payloads | _structured)
@settings(max_examples=60)
def test_rle_round_trip(data):
    codec = RleCodec()
    assert codec.decode_bytes(codec.encode_bytes(data)) == data


@given(_byte_payloads | _structured)
@settings(max_examples=60, deadline=2000)
def test_lz4_round_trip(data):
    codec = Lz4Codec()
    assert codec.decode_bytes(codec.encode_bytes(data)) == data


@given(
    st.lists(
        st.floats(
            min_value=-1e6,
            max_value=1e6,
            allow_nan=False,
            allow_infinity=False,
            width=32,
        ),
        min_size=1,
        max_size=300,
    ),
    st.integers(min_value=4, max_value=24),
)
@settings(max_examples=60, deadline=2000)
def test_zfp_error_bound_holds(values, precision):
    data = np.asarray(values, dtype=np.float32)
    codec = ZfpCodec(precision=precision)
    back = codec.decode_array(codec.encode_array(data), data.dtype, data.shape)
    err = np.max(np.abs(data.astype(np.float64) - back.astype(np.float64)))
    assert err <= codec.tolerance_for(data) + 1e-12


@given(st.lists(st.floats(-1e4, 1e4, allow_nan=False, width=32), min_size=1, max_size=200))
@settings(max_examples=40)
def test_zfp_idempotent_on_own_output(values):
    """Re-encoding an already-quantised signal is (near-)lossless."""
    data = np.asarray(values, dtype=np.float32)
    codec = ZfpCodec(precision=20)
    once = codec.decode_array(codec.encode_array(data), data.dtype, data.shape)
    twice = codec.decode_array(codec.encode_array(once), once.dtype, once.shape)
    err = np.max(np.abs(once.astype(np.float64) - twice.astype(np.float64)))
    assert err <= codec.tolerance_for(once) + 1e-12
