"""Tests for storage transfer helpers (upload/download/stream)."""

import os

import numpy as np
import pytest

from repro.idx import BlockCache, IdxDataset
from repro.network.clock import SimClock
from repro.storage import (
    ObjectStore,
    SealStorage,
    download_object,
    open_remote_idx,
    upload_file,
    upload_idx_to_seal,
)


@pytest.fixture
def idx_file(tmp_path, rng):
    a = rng.random((48, 48)).astype(np.float32)
    path = str(tmp_path / "d.idx")
    ds = IdxDataset.create(path, dims=a.shape, bits_per_block=7)
    ds.write(a)
    ds.finalize()
    return path, a


class TestPublicUploadDownload:
    def test_upload_file(self, tmp_path, idx_file):
        path, _ = idx_file
        store = ObjectStore()
        key = upload_file(path, store, "bucket", metadata={"kind": "idx"})
        assert key == os.path.basename(path)
        assert store.head("bucket", key).size == os.path.getsize(path)
        assert store.head("bucket", key).meta_dict()["kind"] == "idx"

    def test_download_round_trip(self, tmp_path, idx_file):
        path, a = idx_file
        store = ObjectStore()
        key = upload_file(path, store, "bucket")
        dest = str(tmp_path / "copy.idx")
        n = download_object(store, "bucket", key, dest)
        assert n == os.path.getsize(path)
        assert np.array_equal(IdxDataset.open(dest).read(), a)

    def test_custom_key(self, idx_file):
        path, _ = idx_file
        store = ObjectStore()
        assert upload_file(path, store, "b", key="terrain/v1.idx") == "terrain/v1.idx"


class TestSealStreaming:
    def test_upload_and_stream(self, idx_file):
        path, a = idx_file
        clock = SimClock()
        seal = SealStorage(site="slc", clock=clock)
        token = seal.issue_token("u", ("read", "write"))
        key = upload_idx_to_seal(path, seal, token=token, from_site="knox")
        remote = open_remote_idx(seal, key, token=token, from_site="knox")
        assert np.array_equal(remote.read(), a)
        assert clock.now > 0

    def test_cache_eliminates_repeat_cost(self, idx_file):
        path, a = idx_file
        clock = SimClock()
        seal = SealStorage(site="slc", clock=clock)
        token = seal.issue_token("u", ("read", "write"))
        key = upload_idx_to_seal(path, seal, token=token)
        cache = BlockCache("16 MiB")
        remote = open_remote_idx(seal, key, token=token, cache=cache)
        remote.read()
        t_after_first = clock.now
        remote.read()
        assert clock.now == t_after_first  # zero network time on repeat

    def test_without_cache_repeats_cost(self, idx_file):
        path, _ = idx_file
        clock = SimClock()
        seal = SealStorage(site="slc", clock=clock)
        token = seal.issue_token("u", ("read", "write"))
        key = upload_idx_to_seal(path, seal, token=token)
        remote = open_remote_idx(seal, key, token=token, cache=None)
        remote.read()
        t1 = clock.now
        remote.read()
        assert clock.now > t1

    def test_coarse_read_cheaper_than_full(self, idx_file):
        path, _ = idx_file
        clock = SimClock()
        seal = SealStorage(site="slc", clock=clock)
        token = seal.issue_token("u", ("read", "write"))
        key = upload_idx_to_seal(path, seal, token=token)
        remote = open_remote_idx(seal, key, token=token)
        t0 = clock.now
        remote.read(resolution=4)
        coarse_cost = clock.now - t0
        t0 = clock.now
        remote.read()
        full_cost = clock.now - t0
        assert coarse_cost < full_cost
