"""Tests for the catalog: records, inverted index, service, harvesters."""

import numpy as np
import pytest

from repro.catalog import (
    CatalogRecord,
    CatalogService,
    InvertedIndex,
    harvest_dataverse,
    harvest_object_store,
    harvest_seal,
    tokenize,
)
from repro.formats.metadata import DatasetMetadata
from repro.storage import Dataverse, ObjectStore, SealStorage


class TestTokenize:
    def test_lowercase_alnum(self):
        assert tokenize("Terrain-Slope_30m CONUS!") == ["terrain", "slope", "30m", "conus"]

    def test_empty(self):
        assert tokenize("") == []
        assert tokenize("---") == []


class TestCatalogRecord:
    def test_identity_stable(self):
        r1 = CatalogRecord.build("a.idx", "seal:slc", checksum="c1")
        r2 = CatalogRecord.build("a.idx", "seal:slc", checksum="c1")
        r3 = CatalogRecord.build("a.idx", "seal:slc", checksum="c2")
        assert r1.record_id == r2.record_id != r3.record_id

    def test_validation(self):
        with pytest.raises(ValueError):
            CatalogRecord.build("", "src")
        with pytest.raises(ValueError):
            CatalogRecord.build("n", "")
        with pytest.raises(ValueError):
            CatalogRecord.build("n", "s", size=-1)

    def test_index_text_covers_fields(self):
        r = CatalogRecord.build(
            "slope.idx",
            "dataverse:demo",
            keywords=("terrain",),
            description="Tennessee slope",
            attributes={"doi": "doi:10.1/X"},
        )
        text = r.index_text()
        for token in ("slope.idx", "terrain", "Tennessee", "doi"):
            assert token in text


class TestInvertedIndex:
    @pytest.fixture
    def index(self):
        idx = InvertedIndex()
        idx.add(0, "terrain slope tennessee")
        idx.add(1, "terrain elevation conus")
        idx.add(2, "soil moisture tennessee")
        return idx

    def test_and_semantics(self, index):
        assert index.search("terrain").tolist() == [0, 1]
        assert index.search("terrain tennessee").tolist() == [0]
        assert index.search("terrain moisture").tolist() == []

    def test_prefix_search(self, index):
        assert index.search("terr*").tolist() == [0, 1]
        assert index.search("t*").tolist() == [0, 1, 2]

    def test_empty_query(self, index):
        assert index.search("").size == 0

    def test_unknown_token(self, index):
        assert index.search("volcano").size == 0

    def test_facet_counts(self, index):
        sources = ["a", "b", "a"]
        ids = index.search("tennessee")
        assert index.facet_counts(ids.tolist(), sources) == {"a": 2}

    def test_duplicate_adds_idempotent_postings(self):
        idx = InvertedIndex()
        idx.add(0, "x x x")
        assert idx.search("x").tolist() == [0]

    def test_vocabulary_and_doc_count(self, index):
        assert index.vocabulary_size == 7
        assert index.document_count == 3

    def test_negative_doc_id(self):
        with pytest.raises(ValueError):
            InvertedIndex().add(-1, "x")


class TestCatalogService:
    def test_dedup_on_ingest(self):
        cat = CatalogService()
        r = CatalogRecord.build("a", "s", checksum="c")
        assert cat.ingest(r)
        assert not cat.ingest(r)
        assert cat.duplicates_rejected == 1
        assert len(cat) == 1

    def test_search_ranking_prefers_dense_matches(self):
        cat = CatalogService()
        cat.ingest(CatalogRecord.build("slope.idx", "s", keywords=("slope",)))
        cat.ingest(
            CatalogRecord.build(
                "misc.idx",
                "s",
                description="contains slope plus many many other unrelated words here",
            )
        )
        hits = cat.search("slope")
        assert hits[0].record.name == "slope.idx"

    def test_filters(self):
        cat = CatalogService()
        cat.ingest(CatalogRecord.build("a", "seal:slc", size=100, keywords=("x",)))
        cat.ingest(CatalogRecord.build("b", "dataverse:d", size=10, keywords=("x",)))
        assert len(cat.search("x")) == 2
        assert len(cat.search("x", source="seal:slc")) == 1
        assert len(cat.search("x", min_size=50)) == 1

    def test_limit(self):
        cat = CatalogService()
        for i in range(30):
            cat.ingest(CatalogRecord.build(f"f{i}", "s", keywords=("common",)))
        assert len(cat.search("common", limit=5)) == 5

    def test_facets_by_source(self):
        cat = CatalogService()
        cat.ingest(CatalogRecord.build("a", "s1", keywords=("k",)))
        cat.ingest(CatalogRecord.build("b", "s1", keywords=("k",)))
        cat.ingest(CatalogRecord.build("c", "s2", keywords=("k",)))
        assert cat.facets_by_source("k") == {"s1": 2, "s2": 1}

    def test_get_by_id(self):
        cat = CatalogService()
        r = CatalogRecord.build("a", "s")
        cat.ingest(r)
        assert cat.get(r.record_id).name == "a"
        with pytest.raises(KeyError):
            cat.get("missing")

    def test_stats(self):
        cat = CatalogService()
        cat.ingest(CatalogRecord.build("a", "s1", size=10))
        cat.ingest(CatalogRecord.build("b", "s2", size=20))
        stats = cat.stats()
        assert stats["records"] == 2
        assert stats["unique_sources"] == 2
        assert stats["total_bytes"] == 30

    def test_search_scales_sublinearly(self):
        """Doubling corpus size must not double search time materially."""
        import time

        def build(n):
            cat = CatalogService()
            rng = np.random.default_rng(0)
            words = [f"w{i}" for i in range(200)]
            for i in range(n):
                kw = tuple(words[j] for j in rng.integers(0, 200, 4))
                cat.ingest(CatalogRecord.build(f"f{i}", "s", keywords=kw))
            return cat

        small, large = build(500), build(4000)
        # warmup freezes postings
        small.search("w5")
        large.search("w5")
        t0 = time.perf_counter()
        for _ in range(20):
            small.search("w5 w6")
        t_small = time.perf_counter() - t0
        t0 = time.perf_counter()
        for _ in range(20):
            large.search("w5 w6")
        t_large = time.perf_counter() - t0
        assert t_large < t_small * 8 + 0.05  # 8x corpus, far less than 8x time


class TestHarvesters:
    def test_object_store(self):
        store = ObjectStore("os")
        store.create_bucket("b")
        store.put("b", "x.tif", b"123", metadata={"region": "conus"})
        store.put("b", "y.idx", b"4567")
        records = harvest_object_store(store, "b")
        assert len(records) == 2
        by_name = {r.name: r for r in records}
        assert by_name["x.tif"].mime == "image/tiff"
        assert by_name["y.idx"].mime == "application/x-idx"
        assert by_name["x.tif"].attr_dict()["region"] == "conus"

    def test_dataverse_published_only(self):
        dv = Dataverse(seed=1)
        meta = DatasetMetadata(name="d", title="T", keywords=["k"])
        doi = dv.create_dataset(meta, owner="o")
        dv.upload_file(doi, "f.idx", b"x", owner="o")
        assert harvest_dataverse(dv) == []  # draft invisible
        dv.publish(doi, owner="o")
        records = harvest_dataverse(dv)
        assert len(records) == 1
        assert records[0].attr_dict()["doi"] == doi
        assert "k" in records[0].keywords

    def test_seal_requires_token(self):
        seal = SealStorage(site="slc")
        token = seal.issue_token("u", ("read", "write"))
        seal.put("private.idx", b"x", token=token)
        records = harvest_seal(seal, token=token)
        assert len(records) == 1
        assert records[0].source == "seal:slc/sealed"

    def test_end_to_end_discovery(self):
        dv = Dataverse(seed=2)
        meta = DatasetMetadata(name="tn", title="Tennessee slope", keywords=["slope"])
        doi = dv.create_dataset(meta, owner="o")
        dv.upload_file(doi, "slope.idx", b"x", owner="o")
        dv.publish(doi, owner="o")
        cat = CatalogService()
        cat.ingest_many(harvest_dataverse(dv))
        hits = cat.search("tennessee slope")
        assert len(hits) == 1
        assert hits[0].record.attr_dict()["doi"] == doi


class TestTokenizeEdgeCases:
    def test_non_ascii_tokens_survive(self):
        # v2 tokenizer: accented letters are word characters, not breaks.
        assert tokenize("Müller Straße café-au-lait") == [
            "müller", "straße", "café", "au", "lait"
        ]

    def test_very_long_token(self):
        token = "x" * 300
        idx = InvertedIndex()
        idx.add(0, f"{token} other")
        assert idx.search(token).tolist() == [0]
        assert idx.search(f"{token[:200]}*").tolist() == [0]

    def test_underscores_and_digits(self):
        assert tokenize("a_b 30m ＣＯＮＵＳ") == ["a", "b", "30m", "ｃｏｎｕｓ"]


class TestRefreezeChurn:
    def test_add_preserves_untouched_posting_identity(self):
        # Regression: `add` used to clear EVERY frozen posting, making
        # interleaved add/search refreeze the whole vocabulary each time
        # (quadratic).  Only touched tokens may be invalidated.
        idx = InvertedIndex()
        idx.add(0, "alpha beta")
        idx.add(1, "alpha gamma")
        frozen_alpha = idx._posting("alpha")
        frozen_beta = idx._posting("beta")
        idx.add(2, "gamma delta")
        assert idx._posting("alpha") is frozen_alpha
        assert idx._posting("beta") is frozen_beta
        assert idx.search("gamma").tolist() == [1, 2]

    def test_touched_posting_is_invalidated(self):
        idx = InvertedIndex()
        idx.add(0, "alpha")
        stale = idx._posting("alpha")
        idx.add(1, "alpha")
        fresh = idx._posting("alpha")
        assert fresh is not stale
        assert fresh.tolist() == [0, 1]

    def test_vocab_cache_survives_known_tokens(self):
        idx = InvertedIndex()
        idx.add(0, "alpha beta")
        assert idx.expand_prefix("a")[0] == ["alpha"]
        vocab_before = idx._vocab_sorted
        idx.add(1, "alpha")  # no new vocabulary
        assert idx._vocab_sorted is vocab_before
        idx.add(2, "aardvark")  # new token drops the cache
        assert idx.expand_prefix("a")[0] == ["aardvark", "alpha"]


class TestPrefixTruncationFlag:
    def test_truncated_flag_surfaces_at_limit(self):
        from repro.catalog.index import PREFIX_EXPANSION_LIMIT

        idx = InvertedIndex()
        for i in range(PREFIX_EXPANSION_LIMIT + 1):
            idx.add(i, f"tok{i:03d}")
        detailed = idx.search_detailed("tok*")
        assert detailed.truncated is True
        # Only the first `limit` tokens (lexicographic) are covered.
        assert detailed.doc_ids.size == PREFIX_EXPANSION_LIMIT
        assert idx.search_detailed("tok00*").truncated is False

    def test_exactly_limit_is_not_truncated(self):
        from repro.catalog.index import PREFIX_EXPANSION_LIMIT

        idx = InvertedIndex()
        for i in range(PREFIX_EXPANSION_LIMIT):
            idx.add(i, f"tok{i:03d}")
        detailed = idx.search_detailed("tok*")
        assert detailed.truncated is False
        assert detailed.doc_ids.size == PREFIX_EXPANSION_LIMIT

    def test_service_search_carries_truncated_flag(self):
        from repro.catalog.index import PREFIX_EXPANSION_LIMIT

        cat = CatalogService()
        cat.ingest_many(
            CatalogRecord.build(f"tok{i:03d}", source="s", checksum=str(i))
            for i in range(PREFIX_EXPANSION_LIMIT + 1)
        )
        assert cat.search("tok*").truncated is True
        assert cat.search("tok00*").truncated is False


class TestFacetAttributeMissing:
    def test_records_without_attribute_are_skipped(self):
        cat = CatalogService()
        cat.ingest(CatalogRecord.build("a", source="s", checksum="1",
                                       attributes={"region": "east"}))
        cat.ingest(CatalogRecord.build("b", source="s", checksum="2",
                                       attributes={"region": "west"}))
        cat.ingest(CatalogRecord.build("c", source="s", checksum="3"))  # no region
        facets = cat.facets_by_attribute("s", "region")
        assert facets == {"east": 1, "west": 1}
        assert cat.facets_by_attribute("s", "no-such-key") == {}
