"""Tests for repro.util.units."""

import pytest
from hypothesis import given, strategies as st

from repro.util.units import format_bytes, format_rate, parse_bytes


class TestFormatBytes:
    @pytest.mark.parametrize(
        "n,expected",
        [
            (0, "0 B"),
            (512, "512 B"),
            (1024, "1.00 KiB"),
            (1536, "1.50 KiB"),
            (1024**2, "1.00 MiB"),
            (5 * 1024**3, "5.00 GiB"),
        ],
    )
    def test_values(self, n, expected):
        assert format_bytes(n) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_bytes(-1)


class TestFormatRate:
    def test_gigabit(self):
        assert format_rate(1.25e9) == "10.00 Gbit/s"

    def test_megabit(self):
        assert format_rate(125_000) == "1.00 Mbit/s"

    def test_tiny(self):
        assert "bit/s" in format_rate(10)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_rate(-5)


class TestParseBytes:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("0", 0),
            ("123", 123),
            ("1 KiB", 1024),
            ("1KB", 1000),
            ("1.5 MiB", int(1.5 * 1024**2)),
            ("2GB", 2 * 10**9),
            ("64 mib", 64 * 1024**2),
        ],
    )
    def test_values(self, text, expected):
        assert parse_bytes(text) == expected

    def test_numeric_passthrough(self):
        assert parse_bytes(4096) == 4096
        assert parse_bytes(1.5) == 1

    def test_negative_number_rejected(self):
        with pytest.raises(ValueError):
            parse_bytes(-1)

    @pytest.mark.parametrize("bad", ["", "abc", "12 XB", "1..5 MB"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_bytes(bad)

    @pytest.mark.parametrize("text", ["-1", "-1 MiB", "-0.5KB", "- 3 GiB"])
    def test_negative_string_rejected_with_clear_message(self, text):
        with pytest.raises(ValueError, match="non-negative|cannot parse"):
            parse_bytes(text)

    def test_negative_string_names_negativity(self):
        # "-1 MiB" parses syntactically; the error must say *negative*,
        # not the generic "cannot parse".
        with pytest.raises(ValueError, match="non-negative"):
            parse_bytes("-1 MiB")

    @pytest.mark.parametrize("text,unit", [("12 XB", "XB"), ("3 kbps", "kbps"), ("1 qib", "qib")])
    def test_unknown_unit_named_in_error(self, text, unit):
        with pytest.raises(ValueError, match=f"unknown unit '{unit}'"):
            parse_bytes(text)

    def test_unknown_unit_error_lists_accepted_units(self):
        with pytest.raises(ValueError, match="KiB/MiB"):
            parse_bytes("7 foo")

    def test_explicit_plus_sign_accepted(self):
        assert parse_bytes("+1.5KiB") == 1536

    def test_negative_float_passthrough_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            parse_bytes(-0.5)

    @given(st.integers(min_value=0, max_value=2**50))
    def test_format_parse_round_trip_binary(self, n):
        # format_bytes rounds to 2 decimals, so round-trip is approximate:
        # within 1% or 1 byte.
        parsed = parse_bytes(format_bytes(n))
        assert abs(parsed - n) <= max(1, int(0.01 * n))
