"""Tests for per-block statistics and metadata-only range queries."""

import numpy as np
import pytest

from repro.idx import IdxDataset, estimate_range, LocalAccess
from repro.idx.bitmask import Bitmask
from repro.idx.blocks import BlockLayout
from repro.idx.blockstats import BLOCKSTATS_KEY, block_spatial_bounds


@pytest.fixture
def gradient_dataset(tmp_path):
    """Values equal to row index: ranges are spatially predictable."""
    a = np.broadcast_to(
        np.arange(64, dtype=np.float32)[:, None], (64, 64)
    ).copy()
    path = str(tmp_path / "g.idx")
    ds = IdxDataset.create(path, dims=a.shape, bits_per_block=6)
    ds.write(a)
    ds.finalize()
    return IdxDataset.open(path), a


class TestBlockSpatialBounds:
    def test_bounds_cover_domain_exactly(self):
        bm = Bitmask.from_dims((16, 16))
        layout = BlockLayout(bm.maxh, 4)
        bounds = block_spatial_bounds(bm, layout)
        assert len(bounds) == layout.num_blocks
        # Union of all block boxes covers the domain; each within it.
        for lo, hi in bounds:
            assert all(0 <= l < h <= 16 for l, h in zip(lo, hi))
        # Block 0 holds the coarse prefix: its lattice starts at the
        # origin and spans most of the domain (coarse samples sit at
        # stride-4 lattice points, so the farthest is coordinate 12).
        assert bounds[0][0] == [0, 0]
        assert bounds[0][1][0] >= 13 and bounds[0][1][1] >= 13

    def test_fine_blocks_are_localised(self):
        bm = Bitmask.from_dims((32, 32))
        layout = BlockLayout(bm.maxh, 4)
        bounds = block_spatial_bounds(bm, layout)
        # The last block (finest level, end of HZ space) is a small patch.
        lo, hi = bounds[-1]
        area = (hi[0] - lo[0]) * (hi[1] - lo[1])
        assert area < 32 * 32 / 4


class TestEstimateRange:
    def test_full_domain_exact(self, gradient_dataset):
        ds, a = gradient_dataset
        lo, hi = estimate_range(ds)
        assert lo == float(a.min())
        assert hi == float(a.max())

    def test_region_brackets_truth(self, gradient_dataset):
        ds, a = gradient_dataset
        box = ((10, 0), (20, 64))
        lo, hi = estimate_range(ds, box=box)
        true_lo, true_hi = float(a[10:20].min()), float(a[10:20].max())
        assert lo <= true_lo
        assert hi >= true_hi
        # Block granularity keeps the bracket reasonably tight.
        assert hi - lo < (a.max() - a.min())

    def test_no_data_reads(self, gradient_dataset):
        ds, _ = gradient_dataset
        access = LocalAccess(ds.path)
        probe = IdxDataset.from_access(access)
        estimate_range(probe, box=((0, 0), (16, 16)))
        assert access.counters.blocks_read == 0  # metadata only

    def test_multi_timestep(self, tmp_path, rng):
        a = rng.random((16, 16)).astype(np.float32)
        path = str(tmp_path / "t.idx")
        ds = IdxDataset.create(path, dims=a.shape, timesteps=2, bits_per_block=5)
        ds.write(a, time=0)
        ds.write(a + 100, time=1)
        ds.finalize()
        out = IdxDataset.open(path)
        lo0, hi0 = estimate_range(out, time=0)
        lo1, hi1 = estimate_range(out, time=1)
        assert lo1 == pytest.approx(lo0 + 100, abs=1e-4)
        assert hi1 == pytest.approx(hi0 + 100, abs=1e-4)

    def test_nan_samples_ignored(self, tmp_path):
        a = np.ones((16, 16), dtype=np.float32)
        a[0, 0] = np.nan
        a[3, 3] = 7.0
        path = str(tmp_path / "n.idx")
        ds = IdxDataset.create(path, dims=a.shape, bits_per_block=5)
        ds.write(a)
        ds.finalize()
        lo, hi = estimate_range(IdxDataset.open(path))
        assert lo == 1.0 and hi == 7.0

    def test_empty_box_rejected(self, gradient_dataset):
        ds, _ = gradient_dataset
        with pytest.raises(ValueError):
            estimate_range(ds, box=((64, 64), (70, 70)))

    def test_missing_stats_rejected(self, gradient_dataset):
        ds, _ = gradient_dataset
        ds.header.metadata.pop(BLOCKSTATS_KEY)
        with pytest.raises(ValueError, match="no block statistics"):
            estimate_range(ds)

    def test_dashboard_range_seeding_use_case(self, gradient_dataset):
        """The intended consumer: a colormap range before any fetch."""
        from repro.dashboard import render_raster

        ds, a = gradient_dataset
        lo, hi = estimate_range(ds, box=((0, 0), (32, 64)))
        frame = render_raster(a[:32], palette="viridis", vmin=lo, vmax=hi)
        assert frame.shape == (32, 64, 3)
