"""Property tests for RetryPolicy and unit tests for CircuitBreaker.

RetryPolicy is exercised in isolation (no store, no dataset): hypothesis
sweeps policy parameters and failure counts asserting the deterministic
jitter, the delay bounds, and — on a SimClock, never wall-clock — that
the deadline budget is a hard ceiling.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import (
    CircuitBreaker,
    CircuitOpenError,
    CorruptPayloadError,
    RetryExhaustedError,
    RetryPolicy,
    RetryStats,
    TransientStoreError,
)
from repro.network.clock import SimClock

policies = st.builds(
    RetryPolicy,
    max_attempts=st.integers(min_value=1, max_value=8),
    base_delay=st.floats(min_value=0.001, max_value=1.0),
    multiplier=st.floats(min_value=1.0, max_value=4.0),
    max_delay=st.floats(min_value=0.5, max_value=10.0),
    jitter=st.floats(min_value=0.0, max_value=0.9),
    seed=st.integers(min_value=0, max_value=2**31),
)


class Flaky:
    """Callable failing the first ``n`` calls with ``exc``."""

    def __init__(self, n, exc=TransientStoreError, value="ok"):
        self.n = n
        self.exc = exc
        self.value = value
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.n:
            raise self.exc(f"boom #{self.calls}")
        return self.value


class TestDelaySchedule:
    @given(policy=policies, token=st.text(max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_jitter_is_deterministic(self, policy, token):
        twin = RetryPolicy(
            max_attempts=policy.max_attempts,
            base_delay=policy.base_delay,
            multiplier=policy.multiplier,
            max_delay=policy.max_delay,
            jitter=policy.jitter,
            seed=policy.seed,
        )
        for attempt in range(1, 7):
            assert policy.backoff_delay(attempt, token) == twin.backoff_delay(attempt, token)

    @given(policy=policies)
    @settings(max_examples=60, deadline=None)
    def test_delays_bounded_by_jitter_band(self, policy):
        for attempt in range(1, 9):
            nominal = policy.nominal_delay(attempt)
            jittered = policy.backoff_delay(attempt, token=("k",))
            assert nominal <= policy.max_delay
            assert nominal * (1.0 - policy.jitter) <= jittered
            assert jittered <= nominal * (1.0 + policy.jitter)

    @given(policy=policies)
    @settings(max_examples=60, deadline=None)
    def test_nominal_schedule_monotone_until_cap(self, policy):
        delays = [policy.nominal_delay(a) for a in range(1, 10)]
        assert all(b >= a for a, b in zip(delays, delays[1:]))
        assert delays[-1] <= policy.max_delay

    def test_seeds_decorrelate_tokens(self):
        policy = RetryPolicy(jitter=0.5, seed=7)
        a = [policy.backoff_delay(i, token=("blk", 1)) for i in range(1, 5)]
        b = [policy.backoff_delay(i, token=("blk", 2)) for i in range(1, 5)]
        assert a != b

    def test_zero_jitter_is_exact_exponential(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.5, jitter=0.0)
        assert [policy.backoff_delay(a) for a in (1, 2, 3, 4, 5)] == [
            0.1,
            0.2,
            0.4,
            0.5,
            0.5,
        ]


class TestRun:
    @given(
        policy=policies,
        failures=st.integers(min_value=0, max_value=10),
    )
    @settings(max_examples=80, deadline=None)
    def test_deadline_budget_never_exceeded(self, policy, failures):
        """Total SimClock backoff is <= deadline, success or give-up."""
        deadline = 0.3
        bounded = RetryPolicy(
            max_attempts=policy.max_attempts,
            base_delay=policy.base_delay,
            multiplier=policy.multiplier,
            max_delay=policy.max_delay,
            jitter=policy.jitter,
            deadline=deadline,
            seed=policy.seed,
        )
        clock = SimClock()
        fn = Flaky(failures)
        try:
            bounded.run(fn, token=("t",), clock=clock)
        except RetryExhaustedError:
            pass
        assert clock.now <= deadline + 1e-12
        assert clock.total_for("retry:backoff") == clock.now

    @given(policy=policies, failures=st.integers(min_value=0, max_value=10))
    @settings(max_examples=80, deadline=None)
    def test_outcome_matches_failure_count(self, policy, failures):
        clock = SimClock()
        stats = RetryStats()
        fn = Flaky(failures)
        if failures < policy.max_attempts:
            assert policy.run(fn, clock=clock, stats=stats) == "ok"
            assert fn.calls == failures + 1
            snap = stats.snapshot()
            assert snap["attempts"] == failures + 1
            assert snap["retries"] == failures
            assert snap["exhausted"] == 0
            expected = sum(policy.backoff_delay(a) for a in range(1, failures + 1))
            assert clock.total_for("retry:backoff") == pytest.approx(expected, abs=1e-12)
        else:
            with pytest.raises(RetryExhaustedError) as err:
                policy.run(fn, clock=clock, stats=stats)
            assert fn.calls == policy.max_attempts
            assert err.value.attempts == policy.max_attempts
            assert isinstance(err.value.__cause__, TransientStoreError)
            assert stats.snapshot()["exhausted"] == 1

    def test_non_retryable_propagates_untouched(self):
        policy = RetryPolicy(max_attempts=5)
        fn = Flaky(3, exc=KeyError)
        with pytest.raises(KeyError):
            policy.run(fn)
        assert fn.calls == 1  # no retry happened

    def test_retry_on_is_configurable(self):
        policy = RetryPolicy(max_attempts=3, retry_on=(ValueError,), base_delay=0.0)
        fn = Flaky(1, exc=ValueError)
        assert policy.run(fn) == "ok"
        with pytest.raises(RetryExhaustedError):
            policy.run(Flaky(9, exc=ValueError))

    def test_corrupt_payload_is_retryable_by_default(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.0)
        assert policy.run(Flaky(2, exc=CorruptPayloadError)) == "ok"

    def test_exhaustion_is_not_retried_by_nested_policy(self):
        """A give-up signal must never be retried by an outer policy."""
        inner = RetryPolicy(max_attempts=2, base_delay=0.0)
        outer = RetryPolicy(max_attempts=4, base_delay=0.0)
        always = Flaky(99)
        calls = {"n": 0}

        def nested():
            calls["n"] += 1
            return inner.run(always)

        with pytest.raises(RetryExhaustedError):
            outer.run(nested)
        assert calls["n"] == 1  # outer saw a terminal error, not a transient one

    def test_no_clock_means_no_sleep_at_all(self):
        """Without a clock the driver must not sleep — it just loops."""
        import time

        policy = RetryPolicy(max_attempts=6, base_delay=5.0, jitter=0.0)
        t0 = time.monotonic()
        with pytest.raises(RetryExhaustedError):
            policy.run(Flaky(99))
        assert time.monotonic() - t0 < 1.0

    def test_stats_accumulate_across_calls(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.0)
        stats = RetryStats()
        policy.run(Flaky(1), stats=stats)
        policy.run(Flaky(0), stats=stats)
        with pytest.raises(RetryExhaustedError):
            policy.run(Flaky(9), stats=stats)
        snap = stats.snapshot()
        assert snap["calls"] == 3
        assert snap["attempts"] == 2 + 1 + 3
        assert snap["retries"] == 1 + 0 + 2
        assert snap["exhausted"] == 1

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(deadline=-0.1)


class TestCircuitBreaker:
    def test_trips_at_threshold_and_fast_fails(self):
        br = CircuitBreaker(threshold=3)
        for _ in range(2):
            br.record_failure("k")
            br.check("k")  # still closed
        br.record_failure("k")
        assert br.state("k") == "open"
        with pytest.raises(CircuitOpenError) as err:
            br.check("k")
        assert err.value.key == "k"
        assert err.value.failures == 3
        assert br.stats.trips == 1
        assert br.stats.fast_fails == 1
        assert br.open_keys() == ["k"]

    def test_success_resets_consecutive_count(self):
        br = CircuitBreaker(threshold=2)
        br.record_failure("k")
        br.record_success("k")
        br.record_failure("k")
        assert br.state("k") == "closed"  # never saw 2 consecutive

    def test_cooldown_probe_success_closes(self):
        clock = SimClock()
        br = CircuitBreaker(threshold=1, cooldown=10.0, clock=clock)
        br.record_failure("k")
        with pytest.raises(CircuitOpenError):
            br.check("k")
        clock.advance(10.0)
        br.check("k")  # the half-open probe is let through
        assert br.state("k") == "half-open"
        br.record_success("k")
        assert br.state("k") == "closed"
        assert br.stats.probes == 1
        assert br.stats.closes == 1

    def test_cooldown_probe_failure_reopens(self):
        clock = SimClock()
        br = CircuitBreaker(threshold=1, cooldown=5.0, clock=clock)
        br.record_failure("k")
        clock.advance(5.0)
        br.check("k")
        br.record_failure("k")  # the probe failed
        assert br.state("k") == "open"
        assert br.stats.trips == 2
        with pytest.raises(CircuitOpenError):
            br.check("k")  # cooldown restarts from the re-open

    def test_without_clock_circuit_stays_open(self):
        br = CircuitBreaker(threshold=1, cooldown=0.0)
        br.record_failure("k")
        with pytest.raises(CircuitOpenError):
            br.check("k")
        with pytest.raises(CircuitOpenError):
            br.check("k")
        br.reset("k")
        br.check("k")
        assert br.state("k") == "closed"

    def test_keys_are_independent(self):
        br = CircuitBreaker(threshold=1)
        br.record_failure("a")
        with pytest.raises(CircuitOpenError):
            br.check("a")
        br.check("b")  # untouched key is closed
        assert br.state("b") == "closed"

    def test_reset_all(self):
        br = CircuitBreaker(threshold=1)
        br.record_failure("a")
        br.record_failure("b")
        br.reset()
        assert br.open_keys() == []
        br.check("a")
        br.check("b")

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown=-1)
