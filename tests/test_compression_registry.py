"""Tests for the codec registry and spec parsing."""

import numpy as np
import pytest

from repro.compression import Codec, CodecError, available_codecs, get_codec
from repro.compression.registry import IdentityCodec, parse_codec_spec, register_codec


class TestSpecParsing:
    def test_bare_name(self):
        assert parse_codec_spec("zlib") == ("zlib", {})

    def test_params(self):
        name, params = parse_codec_spec("zfp:precision=16,block=64")
        assert name == "zfp"
        assert params == {"precision": "16", "block": "64"}

    def test_whitespace_and_case(self):
        assert parse_codec_spec(" ZLIB : level = 9 ")[0] == "zlib"

    def test_malformed_param(self):
        with pytest.raises(CodecError):
            parse_codec_spec("zlib:level9")


class TestRegistry:
    def test_known_codecs_registered(self):
        names = available_codecs()
        for expected in ("identity", "zlib", "zip", "rle", "lz4", "zfp", "raw"):
            assert expected in names

    def test_get_codec_idempotent_on_instances(self):
        codec = get_codec("zlib:level=3")
        assert get_codec(codec) is codec

    def test_unknown_codec(self):
        with pytest.raises(CodecError, match="unknown codec"):
            get_codec("snappy")

    def test_bad_params_reported(self):
        with pytest.raises(CodecError):
            get_codec("zlib:bogus=1")

    def test_register_custom(self):
        class Upper(IdentityCodec):
            name = "custom-test"

        register_codec("custom-test", Upper)
        assert isinstance(get_codec("custom-test"), Upper)


class TestIdentity:
    def test_round_trip_bytes(self):
        c = get_codec("identity")
        assert c.decode_bytes(c.encode_bytes(b"abc")) == b"abc"

    def test_round_trip_array(self):
        c = get_codec("identity")
        a = np.arange(12, dtype=np.int16).reshape(3, 4)
        out = c.decode_array(c.encode_array(a), a.dtype, a.shape)
        assert np.array_equal(out, a)

    def test_decode_shape_mismatch(self):
        c = get_codec("identity")
        blob = c.encode_array(np.zeros(4, dtype=np.float32))
        with pytest.raises(CodecError):
            c.decode_array(blob, np.float32, (5,))

    def test_lossless_flag(self):
        assert get_codec("identity").lossless
        assert get_codec("zlib").lossless
        assert not get_codec("zfp").lossless


class TestSpecHardening:
    """PR-3-style hardening: errors name the offending token and list
    what is accepted (mirrors ``parse_bytes``)."""

    def test_unknown_codec_lists_available(self):
        with pytest.raises(CodecError) as exc:
            get_codec("snappy:level=3")
        msg = str(exc.value)
        assert "'snappy'" in msg
        for name in ("zlib", "rle", "identity", "shuffle"):
            assert name in msg

    def test_empty_codec_name(self):
        with pytest.raises(CodecError, match="empty codec name"):
            parse_codec_spec(":level=6")

    def test_non_string_spec(self):
        with pytest.raises(CodecError, match="must be a string"):
            parse_codec_spec(12)

    def test_malformed_param_names_token(self):
        with pytest.raises(CodecError, match="'level9'"):
            parse_codec_spec("zlib:level9")

    def test_empty_param_name(self):
        with pytest.raises(CodecError, match="empty parameter name"):
            parse_codec_spec("zlib:=6")

    def test_duplicate_param(self):
        with pytest.raises(CodecError, match="duplicate parameter 'level'"):
            parse_codec_spec("zlib:level=6,level=9")

    def test_unknown_param_names_token_and_accepted(self):
        with pytest.raises(CodecError) as exc:
            get_codec("zlib:lvl=6")
        msg = str(exc.value)
        assert "'lvl'" in msg and "level" in msg

    def test_unknown_param_for_shuffle(self):
        with pytest.raises(CodecError) as exc:
            get_codec("shuffle:codec=rle")
        msg = str(exc.value)
        assert "'codec'" in msg and "inner" in msg and "level" in msg

    def test_bad_param_value_wrapped(self):
        with pytest.raises(CodecError, match="bad parameter value"):
            get_codec("zlib:level=high")

    def test_out_of_range_value_keeps_precise_message(self):
        with pytest.raises(CodecError, match=r"zlib level must be in \[0, 9\]"):
            get_codec("zlib:level=42")

    def test_valid_specs_still_parse(self):
        assert get_codec("zfp:precision=12").precision == 12
        assert get_codec("shuffle:inner=rle").spec() == "shuffle:inner=rle"
        assert get_codec("adaptive:level=4").level == 4
