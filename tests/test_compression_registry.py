"""Tests for the codec registry and spec parsing."""

import numpy as np
import pytest

from repro.compression import Codec, CodecError, available_codecs, get_codec
from repro.compression.registry import IdentityCodec, parse_codec_spec, register_codec


class TestSpecParsing:
    def test_bare_name(self):
        assert parse_codec_spec("zlib") == ("zlib", {})

    def test_params(self):
        name, params = parse_codec_spec("zfp:precision=16,block=64")
        assert name == "zfp"
        assert params == {"precision": "16", "block": "64"}

    def test_whitespace_and_case(self):
        assert parse_codec_spec(" ZLIB : level = 9 ")[0] == "zlib"

    def test_malformed_param(self):
        with pytest.raises(CodecError):
            parse_codec_spec("zlib:level9")


class TestRegistry:
    def test_known_codecs_registered(self):
        names = available_codecs()
        for expected in ("identity", "zlib", "zip", "rle", "lz4", "zfp", "raw"):
            assert expected in names

    def test_get_codec_idempotent_on_instances(self):
        codec = get_codec("zlib:level=3")
        assert get_codec(codec) is codec

    def test_unknown_codec(self):
        with pytest.raises(CodecError, match="unknown codec"):
            get_codec("snappy")

    def test_bad_params_reported(self):
        with pytest.raises(CodecError):
            get_codec("zlib:bogus=1")

    def test_register_custom(self):
        class Upper(IdentityCodec):
            name = "custom-test"

        register_codec("custom-test", Upper)
        assert isinstance(get_codec("custom-test"), Upper)


class TestIdentity:
    def test_round_trip_bytes(self):
        c = get_codec("identity")
        assert c.decode_bytes(c.encode_bytes(b"abc")) == b"abc"

    def test_round_trip_array(self):
        c = get_codec("identity")
        a = np.arange(12, dtype=np.int16).reshape(3, 4)
        out = c.decode_array(c.encode_array(a), a.dtype, a.shape)
        assert np.array_equal(out, a)

    def test_decode_shape_mismatch(self):
        c = get_codec("identity")
        blob = c.encode_array(np.zeros(4, dtype=np.float32))
        with pytest.raises(CodecError):
            c.decode_array(blob, np.float32, (5,))

    def test_lossless_flag(self):
        assert get_codec("identity").lossless
        assert get_codec("zlib").lossless
        assert not get_codec("zfp").lossless
