"""Tests for dataset metadata and georeferencing."""

import pytest

from repro.formats.metadata import DatasetMetadata, GeoReference


class TestGeoReference:
    def test_pixel_to_model(self):
        g = GeoReference(origin=(-90.0, 36.0), pixel_size=(0.01, -0.01))
        assert g.pixel_to_model(0, 0) == (-90.0, 36.0)
        x, y = g.pixel_to_model(10, 20)
        assert x == pytest.approx(-89.8)
        assert y == pytest.approx(35.9)

    def test_model_to_pixel_inverse(self):
        g = GeoReference(origin=(-90.0, 36.0), pixel_size=(0.01, -0.01))
        row, col = g.model_to_pixel(*g.pixel_to_model(7.0, 13.0))
        assert row == pytest.approx(7.0)
        assert col == pytest.approx(13.0)

    def test_dict_round_trip(self):
        g = GeoReference(origin=(1.0, 2.0), pixel_size=(0.5, -0.5), crs="EPSG:32616")
        g2 = GeoReference.from_dict(g.to_dict())
        assert g2 == g


class TestDatasetMetadata:
    def test_requires_name(self):
        with pytest.raises(ValueError):
            DatasetMetadata(name="")

    def test_dims_coerced_to_ints(self):
        m = DatasetMetadata(name="x", dims=(3.0, 4.0))
        assert m.dims == (3, 4)

    def test_round_trip(self):
        m = DatasetMetadata(
            name="conus-slope",
            dims=(100, 200),
            fields=["slope"],
            title="CONUS slope",
            keywords=["terrain", "slope"],
            region="CONUS",
            resolution_m=30.0,
            georef=GeoReference((-124.8, 49.4), (0.0003, -0.0003)),
            extra={"pipeline": "geotiled"},
        )
        m2 = DatasetMetadata.from_dict(m.to_dict())
        assert m2.name == m.name
        assert m2.dims == m.dims
        assert m2.georef == m.georef
        assert m2.extra["pipeline"] == "geotiled"

    def test_unknown_keys_preserved(self):
        d = DatasetMetadata(name="x").to_dict()
        d["future_field"] = 42
        m = DatasetMetadata.from_dict(d)
        assert m.extra["future_field"] == 42

    def test_search_text_includes_keywords_and_fields(self):
        m = DatasetMetadata(
            name="tn", title="Tennessee", keywords=["terrain"], fields=["slope"]
        )
        text = m.search_text()
        for token in ("tn", "Tennessee", "terrain", "slope"):
            assert token in text

    def test_defaults(self):
        m = DatasetMetadata(name="x")
        assert m.version == 1
        assert m.license == "CC-BY-4.0"
        assert m.georef is None
