"""Tests for spatial cross-validation."""

import numpy as np
import pytest

from repro.somospie import (
    CovariateStack,
    KnnRegressor,
    RidgeRegressor,
    compare_cv_strategies,
    cross_validate,
    random_folds,
    spatial_block_folds,
    synthetic_soil_moisture,
)
from repro.terrain import composite_terrain
from repro.terrain.parameters import aspect, slope


class TestFoldAssignment:
    def test_random_folds_balanced(self):
        ids = random_folds(100, 5, seed=0)
        counts = np.bincount(ids)
        assert len(counts) == 5
        assert counts.min() == counts.max() == 20

    def test_random_folds_deterministic(self):
        assert np.array_equal(random_folds(50, 5, seed=3), random_folds(50, 5, seed=3))

    def test_random_folds_validation(self):
        with pytest.raises(ValueError):
            random_folds(10, 1)
        with pytest.raises(ValueError):
            random_folds(3, 5)

    def test_spatial_folds_keep_blocks_together(self):
        rng = np.random.default_rng(0)
        rows = rng.integers(0, 128, 500)
        cols = rng.integers(0, 128, 500)
        ids = spatial_block_folds(rows, cols, k=4, block_size=32, seed=0)
        # All samples within one 32x32 block share a fold.
        keys = (rows // 32) * 1000 + (cols // 32)
        for key in np.unique(keys):
            members = ids[keys == key]
            assert len(np.unique(members)) == 1

    def test_spatial_folds_cover_all_folds(self):
        rng = np.random.default_rng(1)
        rows = rng.integers(0, 128, 400)
        cols = rng.integers(0, 128, 400)
        ids = spatial_block_folds(rows, cols, k=4, block_size=16, seed=1)
        assert set(np.unique(ids)) == {0, 1, 2, 3}

    def test_spatial_folds_too_few_blocks(self):
        rows = np.zeros(10, dtype=int)
        cols = np.zeros(10, dtype=int)
        with pytest.raises(ValueError, match="spatial blocks"):
            spatial_block_folds(rows, cols, k=4, block_size=64)


class TestCrossValidate:
    def test_linear_data_scores_high(self):
        rng = np.random.default_rng(2)
        X = rng.random((200, 3))
        y = X @ np.array([1.0, -2.0, 0.5]) + 0.3
        result = cross_validate(lambda: RidgeRegressor(1e-6), X, y, random_folds(200, 5))
        assert result.r2 > 0.99
        assert result.rmse < 0.01
        assert len(result.fold_rmse) == 5

    def test_alignment_checked(self):
        with pytest.raises(ValueError):
            cross_validate(lambda: RidgeRegressor(), np.zeros((5, 2)), np.zeros(5),
                           np.zeros(4))

    def test_fold_stability_reported(self):
        rng = np.random.default_rng(3)
        X = rng.random((100, 2))
        y = rng.random(100)
        result = cross_validate(lambda: KnnRegressor(k=3), X, y, random_folds(100, 4))
        assert result.rmse_std >= 0


class TestOptimismGap:
    @pytest.fixture(scope="class")
    def probes(self):
        dem = composite_terrain((128, 128), seed=17)
        truth = synthetic_soil_moisture(dem, seed=17, noise=0.005)
        stack = CovariateStack(
            {"elevation": dem, "slope": slope(dem), "aspect": aspect(dem)}
        )
        rng = np.random.default_rng(5)
        rows = rng.integers(0, 128, 600)
        cols = rng.integers(0, 128, 600)
        X = stack.features_at(rows, cols)
        y = truth[rows, cols]
        return X, y, rows, cols

    def test_spatial_cv_not_more_optimistic(self, probes):
        """The headline methodological result: spatial-block CV reports
        equal-or-worse error than random CV on autocorrelated data."""
        X, y, rows, cols = probes
        results = compare_cv_strategies(X, y, rows, cols, k=5, block_size=32, seed=0)
        assert results["spatial"].rmse >= results["random"].rmse * 0.95
        # Typically strictly worse; assert the usual strict gap holds here.
        assert results["spatial"].rmse > results["random"].rmse

    def test_both_strategies_beat_mean_predictor(self, probes):
        X, y, rows, cols = probes
        results = compare_cv_strategies(X, y, rows, cols, k=5, block_size=32)
        for result in results.values():
            assert result.rmse < np.std(y)
