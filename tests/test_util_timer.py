"""Tests for repro.util.timer."""

import pytest

from repro.util.timer import Stopwatch, format_seconds


class TestStopwatch:
    def test_start_stop_positive(self):
        sw = Stopwatch().start()
        assert sw.stop() >= 0.0

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_lap_records(self):
        sw = Stopwatch()
        with sw.lap("a"):
            pass
        assert "a" in sw.laps
        assert sw.laps["a"] >= 0.0

    def test_laps_accumulate(self):
        sw = Stopwatch()
        sw.record("x", 1.0)
        sw.record("x", 2.0)
        assert sw.laps["x"] == pytest.approx(3.0)

    def test_total(self):
        sw = Stopwatch()
        sw.record("a", 1.0)
        sw.record("b", 0.5)
        assert sw.total == pytest.approx(1.5)

    def test_report_contains_all_laps(self):
        sw = Stopwatch()
        sw.record("alpha", 0.1)
        sw.record("beta", 0.2)
        report = sw.report()
        assert "alpha" in report and "beta" in report and "total" in report


class TestFormatSeconds:
    @pytest.mark.parametrize(
        "value,unit",
        [(5e-10, "ns"), (5e-7, "ns"), (5e-5, "us"), (5e-2, "ms"), (2.5, "s")],
    )
    def test_units(self, value, unit):
        assert unit in format_seconds(value)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_seconds(-1.0)

    def test_boundary_one_second(self):
        assert format_seconds(1.0) == "1.000 s"
