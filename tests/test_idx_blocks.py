"""Tests for HZ-space block partitioning."""

import numpy as np
import pytest

from repro.idx.blocks import BlockLayout


class TestGeometry:
    def test_basic_counts(self):
        layout = BlockLayout(maxh=10, bits_per_block=4)
        assert layout.block_size == 16
        assert layout.total_samples == 1024
        assert layout.num_blocks == 64

    def test_small_dataset_single_block(self):
        layout = BlockLayout(maxh=3, bits_per_block=10)
        assert layout.bits_per_block == 3  # clamped to maxh
        assert layout.num_blocks == 1

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            BlockLayout(maxh=8, bits_per_block=0)

    def test_block_of_and_offset(self):
        layout = BlockLayout(maxh=8, bits_per_block=4)
        hz = np.array([0, 15, 16, 17, 255], dtype=np.uint64)
        assert layout.block_of(hz).tolist() == [0, 0, 1, 1, 15]
        assert layout.offset_in_block(hz).tolist() == [0, 15, 0, 1, 15]

    def test_hz_range_of_block(self):
        layout = BlockLayout(maxh=8, bits_per_block=4)
        assert layout.hz_range_of_block(0) == (0, 16)
        assert layout.hz_range_of_block(15) == (240, 256)
        with pytest.raises(ValueError):
            layout.hz_range_of_block(16)

    def test_block_ranges_tile_address_space(self):
        layout = BlockLayout(maxh=9, bits_per_block=5)
        covered = []
        for b in range(layout.num_blocks):
            lo, hi = layout.hz_range_of_block(b)
            covered.extend(range(lo, hi))
        assert covered == list(range(layout.total_samples))


class TestLevelMapping:
    def test_block_zero_contains_coarse_prefix(self):
        layout = BlockLayout(maxh=12, bits_per_block=6)
        # Levels 0..6 all fall inside block 0 (hz < 64).
        for h in range(7):
            lo, hi = layout.blocks_for_level(h)
            assert (lo, hi) == (0, 1), h

    def test_fine_levels_span_more_blocks(self):
        layout = BlockLayout(maxh=12, bits_per_block=6)
        lo, hi = layout.blocks_for_level(12)
        assert lo == 32 and hi == 64

    def test_max_block_for_resolution_monotone(self):
        layout = BlockLayout(maxh=10, bits_per_block=3)
        last = -1
        for h in range(layout.maxh + 1):
            m = layout.max_block_for_resolution(h)
            assert m >= last
            last = m
        assert last == layout.num_blocks - 1

    def test_level_out_of_range(self):
        layout = BlockLayout(maxh=6, bits_per_block=3)
        with pytest.raises(ValueError):
            layout.blocks_for_level(7)

    def test_progressive_prefix_property(self):
        """A query at resolution h never touches blocks beyond 2^h/B."""
        layout = BlockLayout(maxh=14, bits_per_block=8)
        for h in range(layout.maxh + 1):
            hi_block = layout.blocks_for_level(h)[1]
            # All addresses of levels <= h live below that block boundary.
            max_addr = (1 << h) - 1 if h else 0
            assert layout.block_of(np.array([max_addr], dtype=np.uint64))[0] < hi_block


class TestGroupByBlock:
    """Degenerate inputs of the grouped-gather segmentation.

    The invariant for every case: ``order`` is a permutation of the
    input, ``block_ids`` is strictly ascending, and
    ``order[bounds[i]:bounds[i+1]]`` indexes exactly the samples whose
    block is ``block_ids[i]``.
    """

    def _check_invariant(self, layout, hz):
        order, block_ids, bounds = layout.group_by_block(hz)
        assert sorted(order.tolist()) == list(range(hz.size))
        assert (np.diff(block_ids) > 0).all()
        assert bounds[0] == 0 and bounds[-1] == hz.size
        for i, bid in enumerate(block_ids.tolist()):
            segment = hz[order[bounds[i] : bounds[i + 1]]]
            assert (layout.block_of(segment) == bid).all()
        return order, block_ids, bounds

    def test_empty_selection(self):
        layout = BlockLayout(maxh=8, bits_per_block=4)
        order, block_ids, bounds = layout.group_by_block(
            np.empty(0, dtype=np.uint64)
        )
        assert order.size == 0
        assert block_ids.size == 0
        assert bounds.tolist() == [0]

    def test_single_sample(self):
        layout = BlockLayout(maxh=8, bits_per_block=4)
        order, block_ids, bounds = self._check_invariant(
            layout, np.array([37], dtype=np.uint64)
        )
        assert block_ids.tolist() == [2]  # 37 // 16
        assert bounds.tolist() == [0, 1]

    def test_all_in_one_block(self):
        layout = BlockLayout(maxh=8, bits_per_block=4)
        hz = np.array([19, 17, 30, 16], dtype=np.uint64)
        order, block_ids, bounds = self._check_invariant(layout, hz)
        assert block_ids.tolist() == [1]
        assert bounds.tolist() == [0, 4]
        # stable sort: one-block input keeps its original order
        assert order.tolist() == [0, 1, 2, 3]

    def test_non_contiguous_block_ids(self):
        layout = BlockLayout(maxh=8, bits_per_block=4)
        hz = np.array([250, 3, 250, 100, 4], dtype=np.uint64)  # blocks 15, 0, 6
        _, block_ids, bounds = self._check_invariant(layout, hz)
        assert block_ids.tolist() == [0, 6, 15]  # gaps preserved, not densified
        assert np.diff(bounds).tolist() == [2, 1, 2]

    def test_duplicate_addresses(self):
        layout = BlockLayout(maxh=8, bits_per_block=4)
        hz = np.array([5, 5, 5], dtype=np.uint64)
        _, block_ids, bounds = self._check_invariant(layout, hz)
        assert block_ids.tolist() == [0]
        assert bounds.tolist() == [0, 3]


class TestMergeBlockIds:
    def test_empty_inputs(self):
        assert BlockLayout.merge_block_ids([]).tolist() == []
        assert BlockLayout.merge_block_ids(
            [np.empty(0, dtype=np.int64)] * 3
        ).tolist() == []

    def test_dedup_and_sort(self):
        merged = BlockLayout.merge_block_ids(
            [
                np.array([7, 2, 9]),
                np.array([2, 2, 0]),
                np.empty(0, dtype=np.int64),
                np.array([9]),
            ]
        )
        assert merged.tolist() == [0, 2, 7, 9]
        assert merged.dtype == np.int64

    def test_matches_group_by_block_union(self):
        layout = BlockLayout(maxh=10, bits_per_block=4)
        rng = np.random.default_rng(3)
        windows = [
            rng.integers(0, layout.total_samples, size=40).astype(np.uint64)
            for _ in range(4)
        ]
        ids = [layout.group_by_block(hz)[1] for hz in windows]
        merged = BlockLayout.merge_block_ids(ids)
        expected = sorted(
            {int(b) for hz in windows for b in layout.block_of(hz)}
        )
        assert merged.tolist() == expected
