"""Tests for the byte-shuffle codec."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compression import CodecError, ShuffleCodec, get_codec
from repro.compression.shuffle_codec import shuffle_bytes, unshuffle_bytes
from repro.terrain.dem import composite_terrain


class TestShuffleTransform:
    @pytest.mark.parametrize("itemsize", [1, 2, 4, 8])
    def test_round_trip(self, itemsize, rng):
        data = rng.integers(0, 256, 333, dtype=np.uint8).tobytes()
        shuffled = shuffle_bytes(data, itemsize)
        assert unshuffle_bytes(shuffled, itemsize, len(data)) == data

    def test_itemsize_one_is_identity(self):
        assert shuffle_bytes(b"abc", 1) == b"abc"

    def test_known_transpose(self):
        # Two 2-byte samples AB CD -> AC BD.
        assert shuffle_bytes(b"ABCD", 2) == b"ACBD"

    def test_trailing_remainder_preserved(self):
        # 5 bytes with itemsize 2: last byte passes through untouched.
        data = b"ABCDE"
        shuffled = shuffle_bytes(data, 2)
        assert shuffled[-1:] == b"E"
        assert unshuffle_bytes(shuffled, 2, 5) == data


class TestShuffleCodec:
    def test_registered(self):
        assert isinstance(get_codec("shuffle"), ShuffleCodec)

    @pytest.mark.parametrize("dtype", [np.float32, np.float64, np.int16, np.uint8])
    def test_array_round_trip(self, dtype, rng):
        a = (rng.random((31, 17)) * 100).astype(dtype)
        codec = get_codec("shuffle")
        out = codec.decode_array(codec.encode_array(a), a.dtype, a.shape)
        assert np.array_equal(out, a)

    def test_beats_plain_zlib_on_terrain(self):
        dem = composite_terrain((128, 128), seed=3)
        plain = len(get_codec("zlib:level=6").encode_array(dem))
        shuffled = len(get_codec("shuffle:level=6").encode_array(dem))
        assert shuffled < plain

    def test_inner_codec_selection(self):
        codec = get_codec("shuffle:inner=lz4")
        assert codec.inner.name == "lz4"
        dem = composite_terrain((32, 32), seed=1)
        out = codec.decode_array(codec.encode_array(dem), dem.dtype, dem.shape)
        assert np.array_equal(out, dem)

    def test_lossy_inner_rejected(self):
        with pytest.raises(CodecError):
            ShuffleCodec(inner="zfp:precision=16")

    def test_dtype_itemsize_checked(self):
        codec = get_codec("shuffle")
        blob = codec.encode_array(np.zeros(8, dtype=np.float32))
        with pytest.raises(CodecError):
            codec.decode_array(blob, np.float64, (8,))

    def test_bad_magic(self):
        with pytest.raises(CodecError):
            get_codec("shuffle").decode_array(b"XXXX" + bytes(16), np.float32, (2,))

    def test_spec_round_trip(self):
        codec = get_codec("shuffle:level=9")
        again = get_codec(codec.spec())
        assert again.inner.spec() == codec.inner.spec()

    def test_decode_is_zero_copy_and_writable(self, rng):
        # The transpose inside unshuffling is the only copy: decode views
        # and reshapes that buffer instead of tacking a .copy() on the end.
        codec = get_codec("shuffle")
        a = rng.random((16, 16)).astype(np.float32)
        out = codec.decode_array(codec.encode_array(a), a.dtype, a.shape)
        assert out.flags.writeable
        assert out.base is not None  # a view over the unshuffle buffer
        assert out.base.flags.owndata and out.base.flags.writeable
        out[0, 0] += 1.0  # mutating the result must not raise
        assert out[0, 0] == a[0, 0] + 1.0

    def test_decode_itemsize_one_still_writable(self, rng):
        codec = get_codec("shuffle")
        a = rng.integers(0, 256, (8, 8)).astype(np.uint8)
        out = codec.decode_array(codec.encode_array(a), a.dtype, a.shape)
        assert np.array_equal(out, a)
        assert out.flags.writeable
        out[0, 0] ^= 0xFF

    def test_decode_single_sample(self):
        # Degenerate transpose: one sample is already contiguous, which
        # exercises the ownership guard in _unshuffle_array.
        codec = get_codec("shuffle")
        a = np.array([3.25], dtype=np.float64)
        out = codec.decode_array(codec.encode_array(a), a.dtype, a.shape)
        assert np.array_equal(out, a)
        assert out.flags.writeable
        out[0] = 7.0

    def test_idx_integration(self, tmp_path, rng):
        from repro.idx import IdxDataset

        a = rng.random((48, 48)).astype(np.float32)
        path = str(tmp_path / "s.idx")
        ds = IdxDataset.create(path, dims=a.shape, codec="shuffle:level=6")
        ds.write(a)
        ds.finalize()
        assert np.array_equal(IdxDataset.open(path).read(), a)


@given(
    st.binary(min_size=0, max_size=2000),
    st.sampled_from([1, 2, 4, 8]),
)
@settings(max_examples=60)
def test_property_shuffle_round_trip(data, itemsize):
    assert unshuffle_bytes(shuffle_bytes(data, itemsize), itemsize, len(data)) == data
