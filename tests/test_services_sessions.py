"""Tests for the multi-tenant dashboard service (DESIGN.md §12).

Covers the session manager's shared-infrastructure contract: one
process-wide :class:`BlockCache` and plan cache serving every tenant,
per-tenant accounting isolated in :class:`AccessScope`\\ s, token-bucket
fairness on the SimClock, the event-stream protocol, and the Session
Explorer.  The concurrency tests are written to run clean under
``REPRO_SANITIZE=1``.
"""

import base64
import json
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.dashboard import DashboardSession
from repro.idx import IdxDataset
from repro.idx.cache import BlockCache
from repro.idx.hzorder import PLAN_CACHE
from repro.network.clock import SimClock
from repro.services import (
    EventStream,
    LatencyHistogram,
    SessionLimits,
    SessionManager,
    StreamingProtocol,
)
from repro.storage.object_store import ObjectStore
from repro.storage.seal import SealStorage

KEY = "cohort.idx"
BUCKET = "sealed"


class RemoteEnv:
    """Fault-free Seal wiring shared by the multi-tenant tests."""

    def __init__(self, tmp_path):
        rng = np.random.default_rng(20260808)
        self.array = rng.random((48, 48)).astype(np.float32)
        path = str(tmp_path / KEY)
        ds = IdxDataset.create(path, self.array.shape, bits_per_block=4)
        ds.write(self.array)
        ds.finalize()
        self.path = path
        with open(path, "rb") as fh:
            blob = fh.read()
        self.store = ObjectStore("cohort-base")
        self.store.ensure_bucket(BUCKET)
        self.store.put(BUCKET, KEY, blob)

    def seal(self):
        """A fresh Seal front-end (fresh SimClock) over the shared store."""
        seal = SealStorage(store=self.store, clock=SimClock())
        return seal, seal.issue_token("cohort", ("read",))


@pytest.fixture(scope="module")
def env(tmp_path_factory):
    return RemoteEnv(tmp_path_factory.mktemp("cohort"))


@pytest.fixture
def manager(env):
    mgr = SessionManager(cache_capacity="32 MiB")
    seal, token = env.seal()
    mgr.open_remote("terrain", seal, KEY, token=token)
    return mgr


def drive(mgr, sid, *, level=None, viewport_fit=False):
    """One attendee interaction: pin a resolution, render, return pixels."""
    if level is not None:
        assert mgr.handle(sid, {"op": "set_resolution", "level": level})["ok"]
    resp = mgr.handle(
        sid, {"op": "render", "include_pixels": True, "fit_viewport": viewport_fit}
    )
    assert resp["ok"], resp
    return resp["result"]["pixels_b64"]


class TestEventStream:
    def test_orders_and_stamps(self):
        s = EventStream("s0")
        for i in range(3):
            assert s.publish({"event": "frame", "level": i})
        events = s.poll()
        assert [e["seq"] for e in events] == [0, 1, 2]
        assert [e["level"] for e in events] == [0, 1, 2]
        assert s.pending == 0

    def test_backlog_drops_oldest(self):
        s = EventStream("s0", backlog=2)
        for i in range(5):
            s.publish({"event": "frame", "level": i})
        assert s.dropped == 3
        kept = s.poll()
        # Freshest-frame semantics: the two *newest* messages survive.
        assert [e["level"] for e in kept] == [3, 4]
        assert [e["seq"] for e in kept] == [3, 4]

    def test_kind_filter(self):
        s = EventStream("s0", kinds=["degraded"])
        assert not s.publish({"event": "frame"})
        assert s.publish({"event": "degraded", "level": 2})
        assert [e["event"] for e in s.poll()] == ["degraded"]

    def test_poll_max(self):
        s = EventStream("s0")
        for i in range(4):
            s.publish({"event": "frame", "level": i})
        assert [e["level"] for e in s.poll(3)] == [0, 1, 2]
        assert s.pending == 1

    def test_rejects_empty_backlog(self):
        with pytest.raises(ValueError):
            EventStream("s0", backlog=0)

    def test_thread_safety_under_contention(self):
        s = EventStream("s0", backlog=64)
        drained = []
        stop = threading.Event()

        def consume():
            while not stop.is_set() or s.pending:
                drained.extend(s.poll())

        t = threading.Thread(target=consume)
        t.start()
        for i in range(500):
            s.publish({"event": "frame", "level": i})
        stop.set()
        t.join()
        # Nothing lost or duplicated: drained + dropped covers every publish.
        assert len(drained) + s.dropped == 500
        seqs = [e["seq"] for e in drained]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)


class TestStreamingProtocol:
    @pytest.fixture
    def proto(self, idx_factory, rng):
        ds = idx_factory(rng.random((32, 32)).astype(np.float32))
        session = DashboardSession(viewport=(16, 16))
        session.register_dataset("d", ds)
        return StreamingProtocol(session)

    def test_refine_pushes_frames_then_sweep(self, proto):
        stream = proto.handle({"op": "subscribe"})["result"]["stream"]
        result = proto.handle({"op": "refine"})["result"]
        events = proto.handle({"op": "poll", "stream": stream})["result"]["events"]
        frames = [e for e in events if e["event"] == "frame"]
        assert len(frames) == result["frames"] > 0
        assert [f["level"] for f in frames] == result["levels"]
        assert events[-1]["event"] == "sweep"
        assert events[-1]["frames"] == result["frames"]
        for f in frames:
            assert f["dtype"] == "uint8" and len(f["shape"]) == 3
            assert f["latency_ms"] >= 0

    def test_refine_messages_are_json_clean(self, proto):
        stream = proto.handle({"op": "subscribe"})["result"]["stream"]
        proto.handle({"op": "refine", "include_pixels": True})
        events = proto.handle({"op": "poll", "stream": stream})["result"]["events"]
        json.dumps(events)
        frame = next(e for e in events if e["event"] == "frame")
        raw = base64.b64decode(frame["pixels_b64"])
        assert len(raw) == int(np.prod(frame["shape"]))

    def test_slow_subscriber_keeps_freshest(self, proto):
        stream = proto.handle({"op": "subscribe", "backlog": 2})["result"]["stream"]
        result = proto.handle({"op": "refine"})["result"]
        assert result["frames"] > 2  # otherwise nothing can drop
        out = proto.handle({"op": "poll", "stream": stream})["result"]
        assert out["dropped"] > 0
        # The final sweep summary and the finest frame are what survive.
        assert out["events"][-1]["event"] == "sweep"
        assert out["events"][-2]["level"] == result["levels"][-1]

    def test_kind_filtered_subscription(self, proto):
        stream = proto.handle({"op": "subscribe", "events": ["sweep"]})["result"]["stream"]
        proto.handle({"op": "refine"})
        events = proto.handle({"op": "poll", "stream": stream})["result"]["events"]
        assert [e["event"] for e in events] == ["sweep"]

    def test_unsubscribe_and_unknown_stream(self, proto):
        stream = proto.handle({"op": "subscribe"})["result"]["stream"]
        assert proto.handle({"op": "unsubscribe", "stream": stream})["ok"]
        resp = proto.handle({"op": "poll", "stream": stream})
        assert not resp["ok"] and "KeyError" in resp["error"]
        resp = proto.handle({"op": "subscribe", "events": "frame"})
        assert not resp["ok"]  # must be a list, not a bare string

    def test_on_frame_hook_sees_every_tick(self, proto):
        seen = []
        proto.on_frame = seen.append
        result = proto.handle({"op": "refine"})["result"]
        assert len(seen) == result["frames"]
        assert all(s >= 0 for s in seen)


class TestSessionManagerBasics:
    def test_dataset_propagates_both_directions(self, idx_factory, rng):
        mgr = SessionManager()
        before = mgr.create_session("early")
        ds = idx_factory(rng.random((16, 16)).astype(np.float32))
        mgr.register_dataset("d", ds)
        after = mgr.create_session("late")
        for sid in (before, after):
            assert mgr.handle(sid, {"op": "list_datasets"})["result"] == ["d"]
        assert mgr.dataset_names == ["d"]

    def test_close_session(self, idx_factory, rng):
        mgr = SessionManager()
        mgr.register_dataset("d", idx_factory(rng.random((16, 16)).astype(np.float32)))
        sid = mgr.create_session("a")
        assert len(mgr) == 1
        closed = mgr.close_session(sid)
        assert closed.tenant == "a" and len(mgr) == 0
        resp = closed.handle({"op": "render"})
        assert not resp["ok"] and "session closed" in resp["error"]
        with pytest.raises(KeyError):
            mgr.handle(sid, {"op": "render"})
        with pytest.raises(KeyError):
            mgr.close_session(sid)

    def test_handle_json_transport(self, idx_factory, rng):
        mgr = SessionManager()
        mgr.register_dataset("d", idx_factory(rng.random((16, 16)).astype(np.float32)))
        sid = mgr.create_session("a")
        out = json.loads(mgr.session(sid).handle_json('{"op": "list_datasets"}'))
        assert out["result"] == ["d"]
        bad = json.loads(mgr.session(sid).handle_json("{broken"))
        assert not bad["ok"]

    def test_limits_validation(self):
        with pytest.raises(ValueError):
            SessionLimits(rate_blocks_per_s=-1.0).make_bucket()


class TestSharedInfrastructure:
    """The tentpole contract: shared caches, isolated per-tenant state."""

    N_SESSIONS = 16

    def test_cohort_shares_cache_with_isolated_accounting(self, env):
        mgr = SessionManager(cache_capacity="32 MiB")
        seal, token = env.seal()
        mgr.open_remote("terrain", seal, KEY, token=token)

        sids = [
            mgr.create_session(f"attendee-{i}", viewport=(16, 16))
            for i in range(self.N_SESSIONS)
        ]
        plan_hits0 = PLAN_CACHE.stats.hits

        with ThreadPoolExecutor(max_workers=self.N_SESSIONS) as pool:
            pixels = list(pool.map(lambda sid: drive(mgr, sid, level=8), sids))

        # Every tenant rendered the identical frame from the shared cache.
        assert len(set(pixels)) == 1

        rows = {r["tenant"]: r for r in mgr.explorer().rows()}
        assert len(rows) == self.N_SESSIONS
        for managed in mgr.sessions():
            scope = managed.scope
            # Per-tenant counters balance: the scope saw exactly the
            # blocks its own requests touched, and the capped log agrees.
            assert scope.counters.blocks_read == len(scope.counters.access_log) > 0
            assert not scope.counters.truncated
            assert managed.errors == 0

        # The cohort shared one block cache: the dataset's blocks were
        # fetched far fewer times than 16 private caches would have, and
        # at least one tenant rode another's fetch entirely.
        stats = mgr.cache.stats
        assert stats.hits + stats.coalesced > 0
        paid = [r["bytes_read"] for r in rows.values()]
        # Somebody paid for the data, and the cohort collectively paid
        # less than 16 fully-private sessions would have.
        assert sum(paid) > 0
        assert sum(paid) < self.N_SESSIONS * max(paid) or stats.hits > 0
        # Shared plan cache engaged across the cohort's identical views.
        assert PLAN_CACHE.stats.hits > plan_hits0

    def test_frames_byte_identical_to_private_cache_session(self, env, manager):
        sid = manager.create_session("shared", viewport=(16, 16))
        shared_pixels = drive(manager, sid, level=8)

        # A lone attendee with fully private infrastructure: own Seal
        # front-end, own BlockCache, own session.
        seal, token = env.seal()
        private = DashboardSession(viewport=(16, 16))
        private.open_remote("terrain", seal, KEY, token=token, cache=BlockCache())
        private.set_resolution(8)
        frame = private.current_frame()
        assert base64.b64decode(shared_pixels) == frame.tobytes()

    def test_warm_cache_makes_second_tenant_free(self, env):
        mgr = SessionManager(cache_capacity="32 MiB")
        seal, token = env.seal()
        mgr.open_remote("terrain", seal, KEY, token=token)
        first = mgr.create_session("first", viewport=(16, 16))
        second = mgr.create_session("second", viewport=(16, 16))

        drive(mgr, first, level=8)
        paid_first = mgr.session(first).scope.counters.bytes_read
        drive(mgr, second, level=8)
        paid_second = mgr.session(second).scope.counters.bytes_read

        assert paid_first > 0
        # Same view, warm shared cache: the second tenant pays nothing.
        assert paid_second == 0
        # ... but its reads are still accounted to *its* scope.
        assert mgr.session(second).scope.counters.blocks_read > 0

    def test_concurrent_refines_stay_isolated(self, env):
        """16 tenants running progressive sweeps at once, one cache."""
        mgr = SessionManager(cache_capacity="32 MiB")
        seal, token = env.seal()
        mgr.open_remote("terrain", seal, KEY, token=token)
        sids = [mgr.create_session(f"t{i}", viewport=(16, 16)) for i in range(16)]

        def sweep(sid):
            resp = mgr.handle(sid, {"op": "refine"})
            assert resp["ok"], resp
            return resp["result"]

        with ThreadPoolExecutor(max_workers=16) as pool:
            results = list(pool.map(sweep, sids))

        frames = {r["frames"] for r in results}
        assert frames == {results[0]["frames"]}  # every sweep completed fully
        assert all(r["degraded_levels"] == [] for r in results)
        for managed in mgr.sessions():
            assert managed.errors == 0
            assert managed.frame_histogram.count == results[0]["frames"]


class TestFairness:
    def test_token_bucket_throttles_on_simclock(self, env):
        clock = SimClock()
        limits = SessionLimits(rate_blocks_per_s=50.0, burst_blocks=1)
        mgr = SessionManager(default_limits=limits, clock=clock)
        seal, token = env.seal()
        mgr.open_remote("terrain", seal, KEY, token=token)
        sid = mgr.create_session("greedy", viewport=(16, 16))

        drive(mgr, sid, level=8)
        scope = mgr.session(sid).scope
        # Every network fetch passed admission, and past the burst the
        # bucket delayed this tenant — on the virtual clock, not a sleep.
        assert 0 < scope.admitted_blocks <= scope.counters.blocks_read
        assert scope.throttled_s > 0
        assert clock.total_for("admission:wait") == pytest.approx(scope.throttled_s)
        assert scope.bucket.waits > 0

    def test_unlimited_session_never_throttled(self, env, manager):
        sid = manager.create_session("free", viewport=(16, 16))
        drive(manager, sid, level=8)
        scope = manager.session(sid).scope
        assert scope.bucket is None
        assert scope.throttled_s == 0.0

    def test_per_session_limits_override_default(self, env):
        clock = SimClock()
        mgr = SessionManager(clock=clock)
        seal, token = env.seal()
        mgr.open_remote("terrain", seal, KEY, token=token)
        slow = mgr.create_session(
            "slow", viewport=(16, 16),
            limits=SessionLimits(rate_blocks_per_s=20.0, burst_blocks=1),
        )
        fast = mgr.create_session("fast", viewport=(16, 16))

        drive(mgr, slow, level=8)
        drive(mgr, fast, level=8)
        assert mgr.session(slow).scope.throttled_s > 0
        assert mgr.session(fast).scope.throttled_s == 0.0

    def test_bucket_waits_out_deficit_exactly(self):
        from repro.idx.access import TokenBucket

        clock = SimClock()
        bucket = TokenBucket(10.0, 2, clock=clock)
        assert bucket.acquire(2) == 0.0  # burst is free
        waited = bucket.acquire(5)  # deficit of 5 at 10/s
        assert waited == pytest.approx(0.5)
        assert clock.now == pytest.approx(0.5)
        # After waiting, the bucket is exactly empty: one more block
        # costs exactly one token's worth of time.
        assert bucket.acquire(1) == pytest.approx(0.1)

    def test_max_inflight_bounds_prefetch_window(self, env):
        mgr = SessionManager(
            default_limits=SessionLimits(max_inflight=2),
        )
        seal, token = env.seal()
        mgr.open_remote("terrain", seal, KEY, token=token, workers=2)
        sid = mgr.create_session("bounded", viewport=(16, 16))
        pixels = drive(mgr, sid, level=8)

        # Correctness is untouched by the clipped window...
        seal2, token2 = env.seal()
        private = DashboardSession(viewport=(16, 16))
        private.open_remote("terrain", seal2, KEY, token=token2)
        private.set_resolution(8)
        assert base64.b64decode(pixels) == private.current_frame().tobytes()
        # ... and nothing leaks in the shared fetcher.
        scope = mgr.session(sid).scope
        assert scope.max_inflight == 2
        assert scope.counters.blocks_read > 0


class TestExplorer:
    def test_histogram_quantiles_are_conservative(self):
        h = LatencyHistogram()
        samples = [0.001] * 98 + [0.5, 2.0]
        for s in samples:
            h.record(s)
        d = h.to_dict()
        assert d["count"] == 100
        assert d["max_ms"] == pytest.approx(2000.0)
        # Upper-bound semantics: reported quantiles never understate.
        assert h.quantile(0.50) >= 0.001
        assert h.quantile(0.99) >= 0.5
        assert h.quantile(1.0) == pytest.approx(2.0)
        assert h.mean_s == pytest.approx(sum(samples) / 100)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_histogram_merge(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        for s in (0.01, 0.02):
            a.record(s)
        b.record(1.0)
        a.merge(b)
        assert a.count == 3
        assert a.max_s == 1.0
        assert a.total_s == pytest.approx(1.03)

    def test_empty_histogram(self):
        h = LatencyHistogram()
        assert h.quantile(0.99) == 0.0 and h.mean_s == 0.0

    def test_op_log_caps_and_counts_drops(self, idx_factory, rng):
        mgr = SessionManager(default_limits=SessionLimits(op_log_limit=4))
        mgr.register_dataset("d", idx_factory(rng.random((16, 16)).astype(np.float32)))
        sid = mgr.create_session("a", viewport=(8, 8))
        for _ in range(6):
            mgr.handle(sid, {"op": "state"})
        log = mgr.explorer().op_log(sid)
        assert len(log["entries"]) == 4
        assert log["dropped"] == 2
        assert mgr.session(sid).ops_handled == 6

    def test_errors_logged_in_band(self, idx_factory, rng):
        mgr = SessionManager()
        mgr.register_dataset("d", idx_factory(rng.random((16, 16)).astype(np.float32)))
        sid = mgr.create_session("a", viewport=(8, 8))
        mgr.handle(sid, {"op": "teleport"})
        managed = mgr.session(sid)
        assert managed.errors == 1
        entry = managed.op_log[-1]
        assert entry.ok is False and "unknown op" in entry.error

    def test_summary_and_json(self, env, manager):
        sid = manager.create_session("a", viewport=(16, 16))
        manager.handle(sid, {"op": "refine"})
        summary = manager.explorer().summary()
        assert summary["sessions"] == 1
        assert summary["frames"] > 0
        assert summary["cache"]["misses"] > 0
        # Eviction accounting is part of the fleet summary: zero so far
        # (nothing has been evicted), but always present and numeric.
        assert summary["cache"]["evictions"] >= 0
        assert summary["cache"]["evicted_bytes"] >= 0
        plan = summary["plan_cache"]
        assert {"hits", "misses", "hit_rate", "used_bytes", "evictions",
                "evicted_bytes"} <= set(plan)
        assert plan["used_bytes"] >= 0
        doc = json.loads(manager.explorer().to_json())
        assert {"summary", "sessions"} <= set(doc)
        json.dumps(doc)  # explorer output is transport-clean

    def test_summary_codec_bytes(self, env, manager):
        # Stored bytes per codec spec across the registered fleet: the
        # remote terrain dataset was written with one fixed codec, so a
        # single entry whose total equals the dataset's stored payload.
        summary = manager.explorer().summary()
        codec_bytes = summary["codec_bytes"]
        assert codec_bytes, "fleet summary should report codec bytes"
        ds = manager.datasets()["terrain"]
        assert set(codec_bytes) == {ds.header.codec}
        assert all(n > 0 for n in codec_bytes.values())
        json.dumps(codec_bytes)


class TestCatalogInExplorer:
    def test_summary_without_catalog_has_no_section(self, env, manager):
        assert "catalog" not in manager.explorer().summary()

    def test_attached_catalog_surfaces_per_shard_stats(self, env, manager):
        from repro.catalog import CatalogRecord, ShardedCatalog

        with ShardedCatalog(3, workers=2) as catalog:
            catalog.ingest_many(
                CatalogRecord.build(f"granule-{i}.idx", source=f"site{i % 2}",
                                    size=10 + i, checksum=str(i))
                for i in range(25)
            )
            manager.attach_catalog(catalog)
            summary = manager.explorer().summary()
            section = summary["catalog"]
            assert section["shards"] == 3
            assert section["records"] == 25
            assert section["duplicates_rejected"] == 0
            per_shard = section["per_shard"]
            assert len(per_shard) == 3
            assert sum(row["records"] for row in per_shard) == 25
            json.dumps(summary)  # stays transport-clean with the catalog attached
            manager.attach_catalog(None)
            assert "catalog" not in manager.explorer().summary()
