"""Tests for box queries, resolution levels, and progressive refinement."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.idx import BoxQuery, IdxDataset
from repro.idx.query import _first_on_lattice
from repro.util.arrays import Box


@pytest.fixture
def dataset(idx_factory, rng):
    return idx_factory(rng.random((64, 96)).astype(np.float32))


class TestFirstOnLattice:
    @pytest.mark.parametrize(
        "lo,phase,step,expected",
        [(0, 0, 4, 0), (1, 0, 4, 4), (4, 0, 4, 4), (5, 2, 4, 6), (7, 2, 4, 10), (2, 2, 4, 2)],
    )
    def test_values(self, lo, phase, step, expected):
        first = _first_on_lattice(lo, phase, step)
        assert first == expected
        assert first >= lo
        assert (first - phase) % step == 0


class TestBoxReads:
    def test_full_box_full_resolution(self, dataset, rng):
        result = dataset.read_result()
        assert result.data.shape == dataset.dims
        assert result.strides == (1, 1)
        assert result.found == 64 * 96

    @pytest.mark.parametrize(
        "box",
        [
            ((0, 0), (1, 1)),
            ((10, 20), (11, 21)),
            ((0, 0), (64, 96)),
            ((13, 17), (51, 83)),
            ((63, 95), (64, 96)),
        ],
    )
    def test_window_matches_numpy_slice(self, dataset, box):
        full = dataset.read()
        window = dataset.read(box=box)
        (ly, lx), (hy, hx) = box
        assert np.array_equal(window, full[ly:hy, lx:hx])

    def test_box_clipped_to_dims(self, dataset):
        window = dataset.read(box=((50, 80), (100, 200)))
        assert window.shape == (14, 16)

    def test_empty_after_clip_raises(self, dataset):
        with pytest.raises(ValueError):
            dataset.read(box=((64, 96), (70, 100)))

    def test_box_object_accepted(self, dataset):
        full = dataset.read()
        window = dataset.read(box=Box((1, 2), (5, 9)))
        assert np.array_equal(window, full[1:5, 2:9])


class TestResolutionLevels:
    def test_each_level_is_strided_subsample(self, dataset):
        full = dataset.read()
        for h in range(dataset.maxh + 1):
            result = dataset.read_result(resolution=h)
            sub = full[np.ix_(result.axis_coords(0), result.axis_coords(1))]
            assert np.array_equal(result.data, sub), h

    def test_level_zero_single_sample(self, dataset):
        result = dataset.read_result(resolution=0)
        assert result.data.shape == (1, 1)
        assert result.data[0, 0] == dataset.read()[0, 0]

    def test_coarse_box_query_consistent(self, dataset):
        full = dataset.read()
        result = dataset.read_result(box=((8, 8), (40, 72)), resolution=dataset.maxh - 3)
        ys = result.axis_coords(0)
        xs = result.axis_coords(1)
        assert (ys >= 8).all() and (ys < 40).all()
        assert np.array_equal(result.data, full[np.ix_(ys, xs)])

    def test_resolution_out_of_range(self, dataset):
        with pytest.raises(ValueError):
            dataset.read(resolution=dataset.maxh + 1)
        with pytest.raises(ValueError):
            dataset.read(resolution=-1)

    def test_resolution_fraction(self, dataset):
        full = dataset.read_result()
        coarse = dataset.read_result(resolution=dataset.maxh - 4)
        assert full.resolution_fraction == 1.0
        assert coarse.resolution_fraction == pytest.approx(1 / 16)

    def test_strides_consistent_with_level(self, dataset):
        for h in (0, 3, dataset.maxh):
            result = dataset.read_result(resolution=h)
            assert result.strides == dataset.bitmask.level_strides(h)


class TestProgressive:
    def test_levels_ascend_and_end_full(self, dataset):
        results = list(dataset.progressive(box=((0, 0), (32, 32))))
        assert [r.level for r in results] == list(range(dataset.maxh + 1))
        full = dataset.read(box=((0, 0), (32, 32)))
        assert np.array_equal(results[-1].data, full)

    def test_each_refinement_consistent(self, dataset):
        """Every coarse sample must persist (same coord, same value)."""
        full = dataset.read()
        for result in dataset.progressive(box=((4, 4), (28, 60)), start_resolution=5):
            sub = full[np.ix_(result.axis_coords(0), result.axis_coords(1))]
            assert np.array_equal(result.data, sub)

    def test_start_resolution_respected(self, dataset):
        levels = [r.level for r in dataset.progressive(start_resolution=7)]
        assert levels[0] == 7

    def test_bad_start_resolution(self, dataset):
        with pytest.raises(ValueError):
            list(dataset.query().progressive(start_resolution=99))


class TestBlockTouchEfficiency:
    def test_coarse_query_touches_fewer_blocks(self, tmp_path, rng):
        a = rng.random((128, 128)).astype(np.float32)
        path = str(tmp_path / "d.idx")
        ds = IdxDataset.create(path, dims=a.shape, bits_per_block=8)
        ds.write(a)
        ds.finalize()

        ds_coarse = IdxDataset.open(path)
        ds_coarse.read(resolution=6)
        coarse_blocks = ds_coarse.access.counters.blocks_read

        ds_full = IdxDataset.open(path)
        ds_full.read()
        full_blocks = ds_full.access.counters.blocks_read
        assert coarse_blocks < full_blocks / 8

    def test_small_box_touches_fewer_blocks_than_full(self, tmp_path, rng):
        a = rng.random((128, 128)).astype(np.float32)
        path = str(tmp_path / "d.idx")
        ds = IdxDataset.create(path, dims=a.shape, bits_per_block=6)
        ds.write(a)
        ds.finalize()

        d1 = IdxDataset.open(path)
        d1.read(box=((0, 0), (16, 16)))
        d2 = IdxDataset.open(path)
        d2.read()
        assert d1.access.counters.blocks_read < d2.access.counters.blocks_read / 2


class TestFieldTimeSelection:
    def test_unknown_field(self, dataset):
        with pytest.raises(Exception):
            dataset.read(field="missing")

    def test_unknown_time(self, dataset):
        with pytest.raises(Exception):
            dataset.read(time=42)

    def test_result_carries_identity(self, idx_factory, rng):
        ds = idx_factory(rng.random((16, 16)).astype(np.float32), field="slope", timesteps=2)
        result = ds.read_result(field="slope", time=1)
        assert result.field == "slope"
        assert result.time == 1


@given(
    st.integers(0, 63),
    st.integers(0, 95),
    st.integers(1, 64),
    st.integers(1, 96),
)
@settings(max_examples=40, deadline=5000)
def test_property_any_box_matches_slice(ly, lx, height, width):
    """Random boxes at full resolution always equal the NumPy slice."""
    rng = np.random.default_rng(99)
    a = rng.random((64, 96)).astype(np.float32)
    ds = _cached_dataset(a)
    hy, hx = min(64, ly + height), min(96, lx + width)
    window = ds.read(box=((ly, lx), (hy, hx)))
    assert np.array_equal(window, a[ly:hy, lx:hx])


_CACHE = {}


def _cached_dataset(a: np.ndarray) -> IdxDataset:
    key = a.shape
    if key not in _CACHE:
        import tempfile

        path = tempfile.mktemp(suffix=".idx")
        ds = IdxDataset.create(path, dims=a.shape, bits_per_block=7)
        ds.write(a)
        ds.finalize()
        _CACHE[key] = IdxDataset.open(path)
    return _CACHE[key]
