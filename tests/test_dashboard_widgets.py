"""Tests for snip, playback, and dashboard state."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dashboard.playback import Playback
from repro.dashboard.snip import SnipTool
from repro.dashboard.state import DashboardState, RangeMode


class TestSnipTool:
    @pytest.fixture
    def dataset(self, idx_factory, rng):
        return idx_factory(rng.random((64, 64)).astype(np.float32))

    def test_snip_matches_read(self, dataset):
        tool = SnipTool(dataset)
        result = tool.snip(((8, 8), (24, 40)))
        assert np.array_equal(result.data, dataset.read(box=((8, 8), (24, 40))))
        assert result.box.lo == (8, 8)

    def test_snip_at_reduced_resolution(self, dataset):
        tool = SnipTool(dataset)
        result = tool.snip(((0, 0), (64, 64)), resolution=dataset.maxh - 4)
        assert result.level == dataset.maxh - 4
        assert result.data.size < 64 * 64 / 8

    def test_save_npy(self, dataset, tmp_path):
        tool = SnipTool(dataset)
        result = tool.snip(((0, 0), (8, 8)))
        path = result.save_npy(str(tmp_path / "region.npy"))
        assert np.array_equal(np.load(path), result.data)

    def test_script_is_executable_and_exact(self, dataset, tmp_path):
        tool = SnipTool(dataset)
        result = tool.snip(((4, 4), (20, 28)))
        script = result.extraction_script()
        namespace = {}
        exec(script, namespace)  # asserts internally on shape
        assert np.array_equal(namespace["region"], result.data)

    def test_save_script(self, dataset, tmp_path):
        tool = SnipTool(dataset)
        path = tool.snip(((0, 0), (4, 4))).save_script(str(tmp_path / "x.py"))
        with open(path) as fh:
            assert "IdxDataset.open" in fh.read()


class TestPlayback:
    def test_requires_timesteps(self):
        with pytest.raises(ValueError):
            Playback([])

    def test_transport(self):
        pb = Playback([0, 1, 2, 3])
        assert not pb.playing
        pb.play()
        assert pb.playing
        pb.pause()
        assert not pb.playing
        pb.seek(2)
        assert pb.current == 2
        pb.stop()
        assert pb.current == 0

    def test_step_clamps(self):
        pb = Playback([10, 20, 30])
        assert pb.step(5) == 30
        assert pb.step(-10) == 10

    def test_step_loops(self):
        pb = Playback([10, 20, 30])
        pb.set_looping(True)
        pb.seek(2)
        assert pb.step(1) == 10

    def test_speed_scales_frame_at(self):
        pb = Playback([0, 1, 2, 3, 4, 5, 6, 7], fps=2.0)
        assert pb.frame_at(1.0) == 2  # 2 fps * 1s
        pb.set_speed(2.0)
        assert pb.frame_at(1.0) == 4  # doubled

    def test_frame_at_clamps_without_loop(self):
        pb = Playback([0, 1, 2], fps=10.0)
        assert pb.frame_at(100.0) == 2

    def test_frame_at_wraps_with_loop(self):
        pb = Playback([0, 1, 2], fps=1.0)
        pb.set_looping(True)
        assert pb.frame_at(4.0) == 1  # 4 frames forward mod 3

    def test_schedule(self):
        pb = Playback([0, 1, 2, 3], fps=1.0)
        sched = pb.schedule(3.0, frame_interval_s=1.0)
        assert sched == [(0.0, 0), (1.0, 1), (2.0, 2), (3.0, 3)]

    def test_schedule_no_float_drift_drops_final_frame(self):
        # Regression: the old `t += frame_interval_s` accumulation drifted
        # past duration_s (0.1+0.1+0.1 > 0.3) and dropped the last frame.
        pb = Playback([0, 1, 2, 3], fps=10.0)
        sched = pb.schedule(0.3, frame_interval_s=0.1)
        assert len(sched) == 4
        assert sched[-1][1] == 3
        assert sched[-1][0] == pytest.approx(0.3)

    @given(
        interval=st.floats(min_value=1e-6, max_value=10.0,
                           allow_nan=False, allow_infinity=False),
        k=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=200, deadline=None)
    def test_schedule_exact_multiple_property(self, interval, k):
        # For any awkward interval, a duration of exactly k intervals must
        # schedule k+1 frames at t = i * interval, the last one landing on
        # (within float noise of) the duration itself.
        pb = Playback(list(range(1000)), fps=1.0)
        pb.pause()
        duration = k * interval
        sched = pb.schedule(duration, frame_interval_s=interval)
        assert len(sched) == k + 1
        times = [t for t, _ in sched]
        assert times == [i * interval for i in range(k + 1)]
        assert times[-1] == pytest.approx(duration, rel=1e-9, abs=1e-12)

    def test_schedule_rejects_negative_duration(self):
        pb = Playback([0, 1])
        with pytest.raises(ValueError):
            pb.schedule(-1.0)

    def test_validation(self):
        pb = Playback([0, 1])
        with pytest.raises(ValueError):
            pb.set_speed(0)
        with pytest.raises(IndexError):
            pb.seek(5)
        with pytest.raises(ValueError):
            pb.frame_at(-1)
        with pytest.raises(ValueError):
            Playback([0], fps=0)


class TestDashboardState:
    def test_defaults(self):
        state = DashboardState()
        assert state.palette == "viridis"
        assert state.range_mode is RangeMode.DYNAMIC
        assert state.resolution is None

    def test_manual_range(self):
        state = DashboardState()
        state.set_manual_range(0.0, 10.0)
        assert state.range_mode is RangeMode.MANUAL
        assert (state.vmin, state.vmax) == (0.0, 10.0)

    def test_manual_range_validation(self):
        with pytest.raises(ValueError):
            DashboardState().set_manual_range(5.0, 5.0)

    def test_dynamic_resets_limits(self):
        state = DashboardState()
        state.set_manual_range(0, 1)
        state.set_dynamic_range()
        assert state.vmin is None and state.vmax is None
        assert state.range_mode is RangeMode.DYNAMIC

    def test_event_log(self):
        state = DashboardState()
        state.record("zoom", factor=2.0)
        state.record("pan", offsets=(1, 1))
        state.record("zoom", factor=0.5)
        assert state.ops_performed() == ["zoom", "pan"]
        assert len(state.events) == 3
