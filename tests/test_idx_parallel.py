"""Tests for the concurrent block fetch/decode pipeline."""

import threading
import time

import numpy as np
import pytest

from repro.idx import BlockCache, CachedAccess, IdxDataset, RemoteAccess
from repro.idx.idxfile import BytesByteSource
from repro.idx.parallel import ParallelFetcher
from repro.network import SimClock
from repro.storage import SealStorage, open_remote_idx, upload_idx_to_seal


@pytest.fixture
def idx_blob(tmp_path, rng):
    a = rng.random((64, 64)).astype(np.float32)
    path = str(tmp_path / "d.idx")
    ds = IdxDataset.create(path, dims=a.shape, bits_per_block=6)
    ds.write(a)
    ds.finalize()
    with open(path, "rb") as fh:
        return fh.read(), a, path


class TestParallelFetcher:
    def test_loader_called_once_per_key(self):
        calls = []
        lock = threading.Lock()

        def loader(key):
            with lock:
                calls.append(key)
            return np.full(4, key[0], dtype=np.float32)

        with ParallelFetcher(loader, workers=4) as fetcher:
            fetcher.prefetch([(i,) for i in range(8)])
            fetcher.prefetch([(i,) for i in range(8)])  # coalesced, no re-issue
            for i in range(8):
                got = fetcher.get((i,))
                assert got is not None and got[0] == i
        assert sorted(calls) == [(i,) for i in range(8)]
        assert fetcher.stats.submitted == 8
        assert fetcher.stats.coalesced == 8

    def test_get_unknown_key_returns_none(self):
        with ParallelFetcher(lambda key: np.zeros(1), workers=1) as fetcher:
            assert fetcher.get(("nope",)) is None

    def test_release_drops_stage(self):
        loads = []

        def loader(key):
            loads.append(key)
            return np.zeros(1)

        with ParallelFetcher(loader, workers=2) as fetcher:
            fetcher.prefetch([("a",)])
            assert fetcher.get(("a",)) is not None
            fetcher.release()
            assert fetcher.get(("a",)) is None  # stage gone
            fetcher.prefetch([("a",)])  # re-issues after release
            assert fetcher.get(("a",)) is not None
        assert loads == [("a",), ("a",)]

    def test_loader_error_propagates_on_get(self):
        def loader(key):
            raise IOError("link down")

        with ParallelFetcher(loader, workers=2) as fetcher:
            fetcher.prefetch([("x",)])
            with pytest.raises(IOError):
                fetcher.get(("x",))
            # The failed key was dropped so a caller can retry directly.
            assert fetcher.get(("x",)) is None

    def test_clock_charges_overlap(self):
        clock = SimClock()

        def loader(key):
            clock.advance(1.0, "fetch")
            return np.zeros(1)

        with ParallelFetcher(loader, workers=4, clock=clock) as fetcher:
            fetcher.prefetch([(i,) for i in range(8)])
            for i in range(8):
                fetcher.get((i,))
        # 8 one-second fetches over 4 lanes: 2 virtual seconds of wall
        # time, not 8.
        assert clock.now == pytest.approx(2.0)
        assert clock.total_for("fetch") == pytest.approx(8.0)

    def test_serial_pool_charges_sum(self):
        clock = SimClock()

        def loader(key):
            clock.advance(1.0, "fetch")
            return np.zeros(1)

        with ParallelFetcher(loader, workers=1, clock=clock) as fetcher:
            fetcher.prefetch([(i,) for i in range(5)])
            for i in range(5):
                fetcher.get((i,))
        assert clock.now == pytest.approx(5.0)

    def test_workers_validated(self):
        with pytest.raises(ValueError):
            ParallelFetcher(lambda k: np.zeros(1), workers=0)


class TestParallelRemoteAccess:
    def test_parallel_read_bit_identical_to_serial(self, idx_blob):
        blob, a, _ = idx_blob
        serial = RemoteAccess(BytesByteSource(blob), workers=1)
        parallel = RemoteAccess(BytesByteSource(blob), workers=4)
        out_s = IdxDataset.from_access(serial).read()
        out_p = IdxDataset.from_access(parallel).read()
        assert np.array_equal(out_s, a)
        assert out_s.tobytes() == out_p.tobytes()  # bit-for-bit
        assert serial.counters.bytes_read == parallel.counters.bytes_read
        serial.close()
        parallel.close()

    def test_read_block_joins_inflight_fetch(self, idx_blob):
        blob, a, _ = idx_blob
        access = RemoteAccess(BytesByteSource(blob), workers=2)
        ds = IdxDataset.from_access(access)
        out = ds.read()
        assert np.array_equal(out, a)
        fetcher = access.fetcher
        assert fetcher is not None
        assert fetcher.stats.submitted > 0
        # Everything flowed through the pipeline: each prefetched block
        # was loaded exactly once.
        assert fetcher.stats.completed == fetcher.stats.submitted
        access.close()

    def test_parallel_behind_cache(self, idx_blob):
        blob, a, _ = idx_blob
        inner = RemoteAccess(BytesByteSource(blob), workers=4)
        access = CachedAccess(inner, BlockCache("8 MiB"))
        ds = IdxDataset.from_access(access)
        out1 = ds.read()
        n_loads = inner.counters.blocks_read
        out2 = ds.read()
        assert inner.counters.blocks_read == n_loads  # all cache hits
        assert np.array_equal(out1, a) and np.array_equal(out2, a)
        access.close()

    def test_release_happens_at_query_end(self, idx_blob):
        blob, a, _ = idx_blob
        access = RemoteAccess(BytesByteSource(blob), workers=2)
        IdxDataset.from_access(access).read()
        # The query released its prefetch scope: nothing staged, no
        # futures retained.
        assert access._staged == {}
        assert access.fetcher._inflight == {}
        access.close()


class TestSimulatedWanOverlap:
    def _sealed(self, path):
        clock = SimClock()
        seal = SealStorage(site="slc", clock=clock)
        token = seal.issue_token("t", ("read", "write"))
        upload_idx_to_seal(path, seal, "d.idx", token=token, from_site="knox")
        return seal, token, clock

    def test_parallel_wan_fetch_overlaps_latency(self, idx_blob):
        _, a, path = idx_blob

        def run(workers):
            seal, token, clock = self._sealed(path)
            ds = open_remote_idx(seal, "d.idx", token=token, workers=workers)
            t0 = clock.now
            out = ds.read()
            return out, clock.now - t0, ds.access.counters.bytes_read

        out_s, sim_serial, bytes_serial = run(1)
        out_p, sim_parallel, bytes_parallel = run(4)
        assert out_s.tobytes() == out_p.tobytes()
        assert bytes_serial == bytes_parallel
        # Four lanes overlap four round trips; allow slack for the
        # uneven last batch.
        assert sim_parallel < sim_serial / 2.5

    def test_progressive_slider_uses_pipeline(self, idx_blob):
        """The dashboard resolution-slider workload end-to-end."""
        _, a, path = idx_blob
        seal, token, clock = self._sealed(path)
        cache = BlockCache("8 MiB")
        ds = open_remote_idx(seal, "d.idx", token=token, cache=cache, workers=4)
        results = list(ds.progressive(start_resolution=4))
        assert results[-1].data.shape == a.shape
        assert np.array_equal(results[-1].data, a)
        # Incremental refinement never re-requests a block within one
        # sweep — every request the cache saw was a distinct block's
        # single miss...
        assert cache.stats.hits == 0
        first_sweep_misses = cache.stats.misses
        # ...and a second identical sweep (a user scrubbing the slider
        # again) is served entirely from the cache.
        again = list(ds.progressive(start_resolution=4))
        assert np.array_equal(again[-1].data, a)
        assert cache.stats.misses == first_sweep_misses
        assert cache.stats.hits + cache.stats.coalesced > 0
