"""Unit tests for FaultPlan schedules and the FaultyStore wrapper."""

import pytest

from repro.faults import (
    CORRUPT,
    ERROR,
    LATENCY,
    PARTIAL,
    FaultPlan,
    FaultyStore,
    TransientStoreError,
)
from repro.network.clock import SimClock
from repro.storage.object_store import ObjectStore, StorageError

RATES = dict(error_rate=0.3, corrupt_rate=0.15, partial_rate=0.1, latency_rate=0.2)


class TestFaultPlan:
    def test_same_seed_same_schedule(self):
        a = FaultPlan(42, **RATES)
        b = FaultPlan(42, **RATES)
        for attempt in range(1, 6):
            for detail in (None, 0, 4096):
                assert a.fault_for("get_range", "bkt", "k", attempt, detail) == b.fault_for(
                    "get_range", "bkt", "k", attempt, detail
                )

    def test_different_seeds_differ(self):
        probes = [
            FaultPlan(seed, **RATES).fault_for("get_range", "b", "k", a, d)
            for seed in range(30)
            for a in (1, 2)
            for d in (0, 512)
        ]
        assert len({repr(p) for p in probes}) > 1

    def test_schedule_is_order_independent(self):
        """The fault of (scope, attempt) ignores every other scope's history."""
        plan = FaultPlan(7, **RATES)
        first = plan.fault_for("get_range", "b", "k1", 1, detail=0)
        # Interrogating many other scopes must not perturb k1's schedule.
        for d in range(50):
            plan.fault_for("get_range", "b", "k2", 1, detail=d)
        assert plan.fault_for("get_range", "b", "k1", 1, detail=0) == first

    def test_max_faults_per_key_guarantees_success(self):
        plan = FaultPlan(3, error_rate=1.0, max_faults_per_key=2)
        assert plan.fault_for("get_range", "b", "k", 1).kind == ERROR
        assert plan.fault_for("get_range", "b", "k", 2).kind == ERROR
        assert plan.fault_for("get_range", "b", "k", 3) is None
        assert plan.failures_before_success("get_range", "b", "k") == 2

    def test_blackout_never_succeeds(self):
        plan = FaultPlan(5, blackout_rate=1.0)
        for attempt in (1, 2, 50):
            assert plan.fault_for("get_range", "b", "k", attempt).kind == ERROR
        assert plan.failures_before_success("get_range", "b", "k") is None
        assert plan.is_blackout("get_range", "b", "k")

    def test_ops_filter(self):
        plan = FaultPlan(1, error_rate=1.0, ops=("get_range",))
        assert plan.fault_for("get_range", "b", "k", 1) is not None
        assert plan.fault_for("put", "b", "k", 1) is None
        assert plan.fault_for("head", "b", "k", 1) is None

    def test_kind_precedence_covers_all_kinds(self):
        plan = FaultPlan(
            11,
            error_rate=0.25,
            corrupt_rate=0.25,
            partial_rate=0.25,
            latency_rate=0.25,
            max_faults_per_key=1,
        )
        kinds = {
            plan.fault_for("get_range", "b", "k", 1, detail=d).kind
            for d in range(300)
            if plan.fault_for("get_range", "b", "k", 1, detail=d) is not None
        }
        assert kinds == {ERROR, CORRUPT, PARTIAL, LATENCY}

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(0, error_rate=0.8, corrupt_rate=0.5)
        with pytest.raises(ValueError):
            FaultPlan(0, error_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(0, max_faults_per_key=-1)


@pytest.fixture
def base_store():
    store = ObjectStore("inner")
    store.ensure_bucket("data")
    store.put("data", "obj", bytes(range(200)))
    return store


class TestFaultyStore:
    def test_disarmed_is_passthrough(self, base_store):
        faulty = FaultyStore(base_store)
        assert faulty.get_range("data", "obj", 10, 5) == bytes(range(10, 15))
        assert faulty.injected_faults() == []

    def test_error_fault_raises_before_inner(self, base_store):
        faulty = FaultyStore(base_store, FaultPlan(0, error_rate=1.0, max_faults_per_key=1))
        gets_before = base_store.stats.gets
        with pytest.raises(TransientStoreError):
            faulty.get_range("data", "obj", 0, 10)
        assert base_store.stats.gets == gets_before  # request never arrived
        # Attempt 2 is past max_faults_per_key -> succeeds.
        assert faulty.get_range("data", "obj", 0, 10) == bytes(range(10))
        kinds = [f.kind for f in faulty.injected_faults()]
        assert kinds == [ERROR]

    def test_corrupt_fault_flips_one_byte(self, base_store):
        faulty = FaultyStore(base_store, FaultPlan(0, corrupt_rate=1.0, max_faults_per_key=1))
        good = bytes(range(40, 60))
        bad = faulty.get_range("data", "obj", 40, 20)
        assert bad != good
        assert len(bad) == len(good)
        assert sum(x != y for x, y in zip(bad, good)) == 1
        # Second attempt of the same scope is clean.
        assert faulty.get_range("data", "obj", 40, 20) == good

    def test_partial_fault_truncates(self, base_store):
        faulty = FaultyStore(base_store, FaultPlan(0, partial_rate=1.0, max_faults_per_key=1))
        out = faulty.get_range("data", "obj", 0, 20)
        assert out == bytes(range(10))

    def test_latency_fault_charges_clock(self, base_store):
        clock = SimClock()
        faulty = FaultyStore(
            base_store,
            FaultPlan(0, latency_rate=1.0, latency_s=0.5, max_faults_per_key=1),
            clock=clock,
        )
        assert faulty.get_range("data", "obj", 0, 4) == bytes(range(4))
        assert 0.5 <= clock.now <= 1.0  # latency_s * (1 + u), u in [0, 1)
        assert clock.total_for("fault:latency") == clock.now

    def test_attempts_tracked_per_offset(self, base_store):
        plan = FaultPlan(9, error_rate=1.0, max_faults_per_key=1)
        faulty = FaultyStore(base_store, plan)
        with pytest.raises(TransientStoreError):
            faulty.get_range("data", "obj", 0, 4)
        # A different offset is a fresh scope: its attempt 1 also faults.
        with pytest.raises(TransientStoreError):
            faulty.get_range("data", "obj", 64, 4)
        # Both scopes now succeed independently.
        assert faulty.get_range("data", "obj", 0, 4) == bytes(range(4))
        assert faulty.get_range("data", "obj", 64, 4) == bytes(range(64, 68))

    def test_injection_record_matches_plan(self, base_store):
        plan = FaultPlan(21, **RATES)
        faulty = FaultyStore(base_store, plan)
        for offset in range(0, 80, 8):
            try:
                faulty.get_range("data", "obj", offset, 4)
            except TransientStoreError:
                continue
        for rec in faulty.injected_faults():
            predicted = plan.fault_for(rec.op, rec.bucket, rec.key, rec.attempt, rec.detail)
            assert predicted is not None
            assert predicted.kind == rec.kind

    def test_arm_disarm(self, base_store):
        faulty = FaultyStore(base_store)
        faulty.arm(FaultPlan(0, error_rate=1.0, max_faults_per_key=99))
        with pytest.raises(TransientStoreError):
            faulty.get_range("data", "obj", 0, 1)
        faulty.disarm()
        assert faulty.get_range("data", "obj", 0, 1) == b"\x00"

    def test_delegation_surface(self, base_store):
        faulty = FaultyStore(base_store)
        faulty.ensure_bucket("other")
        faulty.put("other", "k", b"xyz")
        assert faulty.exists("other", "k")
        assert faulty.head("other", "k").size == 3
        assert [o.key for o in faulty.list("other")] == ["k"]
        assert faulty.get("other", "k") == b"xyz"
        faulty.delete("other", "k")
        assert not faulty.exists("other", "k")
        assert "other" in faulty.buckets()
        faulty.delete_bucket("other")
        # Unwrapped attributes fall through to the inner store.
        assert faulty.stats is base_store.stats
        assert faulty.name == "inner"

    def test_inner_errors_pass_through(self, base_store):
        faulty = FaultyStore(base_store, FaultPlan(0))
        with pytest.raises(StorageError):
            faulty.get_range("data", "obj", -1, 4)
        with pytest.raises(StorageError):
            faulty.get_range("data", "missing", 0, 4)


def test_object_store_get_range_bounds():
    """Regression: negative and past-EOF ranges fail loudly, never slice."""
    store = ObjectStore()
    store.ensure_bucket("b")
    store.put("b", "k", b"0123456789")
    with pytest.raises(StorageError, match="negative range"):
        store.get_range("b", "k", -1, 2)
    with pytest.raises(StorageError, match="negative range"):
        store.get_range("b", "k", 0, -3)
    with pytest.raises(StorageError, match="past EOF"):
        store.get_range("b", "k", 8, 3)
    with pytest.raises(StorageError, match="past EOF"):
        store.get_range("b", "k", 11, 0)
    # Boundary cases that are legal.
    assert store.get_range("b", "k", 10, 0) == b""
    assert store.get_range("b", "k", 0, 10) == b"0123456789"
