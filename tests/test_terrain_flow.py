"""Tests for D8 flow direction, accumulation, and watersheds."""

import numpy as np
import pytest

from repro.terrain.dem import composite_terrain
from repro.terrain.flow import D8_OFFSETS, SINK, flow_accumulation, flow_direction, watersheds
from repro.terrain.geotiled import GeoTiler


def plane_east(ny=6, nx=8):
    """Elevation strictly decreasing eastward."""
    _, x = np.mgrid[0:ny, 0:nx]
    return (nx - 1 - x).astype(np.float64) * 10.0


class TestFlowDirection:
    def test_plane_drains_east(self):
        d = flow_direction(plane_east(), 1.0)
        assert (d[:, :-1] == 0).all()  # code 0 = east

    def test_east_edge_is_sink(self):
        d = flow_direction(plane_east(), 1.0)
        assert (d[:, -1] == SINK).all()

    def test_flat_is_all_sinks(self):
        d = flow_direction(np.full((5, 5), 3.0), 1.0)
        assert (d == SINK).all()

    def test_pit_is_sink(self):
        dem = np.full((5, 5), 10.0)
        dem[2, 2] = 1.0
        d = flow_direction(dem, 1.0)
        assert d[2, 2] == SINK
        # Every neighbour of the pit drains into it.
        for code, (dy, dx) in enumerate(D8_OFFSETS):
            r, c = 2 - dy, 2 - dx
            assert d[r, c] == code, (r, c)

    def test_diagonal_distance_matters(self):
        # A cell with a slightly lower diagonal neighbour but a much
        # lower cardinal one must pick the cardinal (steeper per metre).
        dem = np.array([[10.0, 9.9], [7.0, 9.8]])
        d = flow_direction(dem, 1.0)
        assert d[0, 0] == 2  # south (drop 3/1) beats southeast (0.2/sqrt2)

    def test_validation(self):
        with pytest.raises(ValueError):
            flow_direction(np.zeros(5))
        with pytest.raises(ValueError):
            flow_direction(np.zeros((4, 4)), cellsize=0)


class TestFlowAccumulation:
    def test_plane_accumulates_linearly(self):
        acc = flow_accumulation(plane_east(), 1.0)
        _, x = np.mgrid[0:6, 0:8]
        assert (acc == x + 1).all()

    def test_minimum_is_one(self, small_dem):
        acc = flow_accumulation(small_dem)
        assert acc.min() == 1

    def test_conservation_invariant(self):
        """acc(cell) == 1 + sum of acc over cells draining into it."""
        dem = composite_terrain((48, 48), seed=9).astype(np.float64)
        d = flow_direction(dem)
        acc = flow_accumulation(dem)
        ny, nx = dem.shape
        check = np.ones_like(acc)
        for code, (dy, dx) in enumerate(D8_OFFSETS):
            rs, cs = np.nonzero(d == code)
            r2, c2 = rs + dy, cs + dx
            ok = (r2 >= 0) & (r2 < ny) & (c2 >= 0) & (c2 < nx)
            np.add.at(check, (r2[ok], c2[ok]), acc[rs[ok], cs[ok]])
        assert np.array_equal(check, acc)

    def test_valley_concentrates_flow(self):
        _, x = np.mgrid[0:16, 0:17]
        y, _ = np.mgrid[0:16, 0:17]
        dem = np.abs(x - 8).astype(np.float64) * 5 + 0.001 * y
        acc = flow_accumulation(dem, 1.0)
        assert acc[:, 8].max() > 5 * acc[:, 0].max()

    def test_accumulation_bounded_by_domain(self, small_dem):
        acc = flow_accumulation(small_dem)
        assert acc.max() <= small_dem.size


class TestWatersheds:
    def test_plane_one_basin_per_row(self):
        w = watersheds(plane_east(6, 8), 1.0)
        assert len(np.unique(w)) == 6
        for r in range(6):
            assert len(np.unique(w[r])) == 1

    def test_labels_contiguous_from_zero(self, small_dem):
        w = watersheds(small_dem)
        labels = np.unique(w)
        assert labels[0] == 0
        assert np.array_equal(labels, np.arange(len(labels)))

    def test_two_pits_two_basins(self):
        dem = np.full((7, 7), 10.0)
        dem[1, 1] = 0.0
        dem[5, 5] = 0.0
        # Break the flat ambiguity with a saddle ridge down the middle.
        dem += np.abs(np.arange(7)[:, None] + np.arange(7)[None, :] - 6) * 0.1
        w = watersheds(dem, 1.0)
        assert w[1, 1] != w[5, 5]

    def test_basin_ids_consistent_with_flow(self, small_dem):
        """A cell and the cell it drains into share a basin."""
        d = flow_direction(small_dem)
        w = watersheds(small_dem)
        ny, nx = small_dem.shape
        for code, (dy, dx) in enumerate(D8_OFFSETS):
            rs, cs = np.nonzero(d == code)
            r2, c2 = rs + dy, cs + dx
            ok = (r2 >= 0) & (r2 < ny) & (c2 >= 0) & (c2 < nx)
            assert (w[rs[ok], cs[ok]] == w[r2[ok], c2[ok]]).all()


class TestGeotiledIntegration:
    def test_flow_accumulation_computed_globally(self, small_dem):
        """GEOtiled must not tile unbounded-footprint parameters."""
        from repro.terrain.flow import flow_accumulation as direct

        tiler = GeoTiler(grid=(4, 4))
        products = tiler.compute(small_dem, parameters=("flow_accumulation",))
        assert np.array_equal(
            products["flow_accumulation"], direct(small_dem, 30.0).astype(np.float32)
        )

    def test_naive_tiling_would_be_wrong(self, small_dem):
        """Demonstrate WHY: tiled flow accumulation with any fixed halo
        disagrees with the global computation."""
        from repro.terrain.flow import flow_accumulation as direct
        from repro.terrain.geotiled import compute_tiled

        global_acc = direct(small_dem, 30.0)
        tiled = compute_tiled(
            small_dem, lambda t: direct(t, 30.0).astype(np.float64), grid=(3, 3), halo=4
        )
        assert not np.array_equal(tiled, global_acc)
