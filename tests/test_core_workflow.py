"""Tests for the modular workflow engine and provenance."""

import pytest

from repro.core.provenance import ProvenanceLog
from repro.core.workflow import Workflow, WorkflowError, WorkflowStep


def step(name, inputs=(), outputs=(), fn=None):
    def default(ctx):
        return {out: f"{name}:{out}" for out in outputs}

    return WorkflowStep(name=name, func=fn or default, inputs=inputs, outputs=outputs)


class TestComposition:
    def test_duplicate_step_names(self):
        wf = Workflow()
        wf.add_step(step("a"))
        with pytest.raises(WorkflowError):
            wf.add_step(step("a"))

    def test_duplicate_producers(self):
        wf = Workflow()
        wf.add_step(step("a", outputs=("x",)))
        wf.add_step(step("b", outputs=("x",)))
        with pytest.raises(WorkflowError, match="produced by both"):
            wf.validate()

    def test_unsatisfied_input(self):
        wf = Workflow()
        wf.add_step(step("a", inputs=("missing",)))
        with pytest.raises(WorkflowError, match="nothing produces"):
            wf.validate()

    def test_initial_context_satisfies(self):
        wf = Workflow()
        wf.add_step(step("a", inputs=("given",), outputs=("x",)))
        assert wf.validate(initial_keys=["given"]) == ["a"]

    def test_topological_order(self):
        wf = Workflow()
        wf.add_step(step("c", inputs=("x2",), outputs=("x3",)))
        wf.add_step(step("a", outputs=("x1",)))
        wf.add_step(step("b", inputs=("x1",), outputs=("x2",)))
        assert wf.validate() == ["a", "b", "c"]

    def test_cycle_detected(self):
        wf = Workflow()
        wf.add_step(step("a", inputs=("y",), outputs=("x",)))
        wf.add_step(step("b", inputs=("x",), outputs=("y",)))
        with pytest.raises(WorkflowError, match="cycle"):
            wf.validate()

    def test_decorator_form(self):
        wf = Workflow()

        @wf.step("gen", outputs=("data",))
        def gen(ctx):
            return {"data": [1, 2, 3]}

        @wf.step("sum", inputs=("data",), outputs=("total",))
        def total(ctx):
            return {"total": sum(ctx["data"])}

        run = wf.run()
        assert run.context["total"] == 6

    def test_empty_step_name(self):
        with pytest.raises(WorkflowError):
            WorkflowStep(name="", func=lambda ctx: {})


class TestExecution:
    def test_context_flows(self):
        wf = Workflow()
        wf.add_step(step("a", outputs=("x",), fn=lambda ctx: {"x": 5}))
        wf.add_step(step("b", inputs=("x",), outputs=("y",), fn=lambda ctx: {"y": ctx["x"] * 2}))
        run = wf.run()
        assert run.ok
        assert run.context["y"] == 10

    def test_missing_declared_output(self):
        wf = Workflow()
        wf.add_step(step("a", outputs=("x",), fn=lambda ctx: {}))
        with pytest.raises(WorkflowError, match="did not produce"):
            wf.run()

    def test_failure_skips_downstream(self):
        def boom(ctx):
            raise RuntimeError("kaput")

        wf = Workflow()
        wf.add_step(step("a", outputs=("x",), fn=boom))
        wf.add_step(step("b", inputs=("x",), outputs=("y",)))
        run = wf.run()
        assert not run.ok
        statuses = {r.name: r.status for r in run.results}
        assert statuses == {"a": "failed", "b": "skipped"}
        assert "kaput" in run.results[0].error

    def test_failure_reraises_when_requested(self):
        def boom(ctx):
            raise ValueError("no")

        wf = Workflow()
        wf.add_step(step("a", outputs=("x",), fn=boom))
        with pytest.raises(ValueError):
            wf.run(stop_on_error=False)

    def test_timings_recorded(self):
        wf = Workflow()
        wf.add_step(step("a", outputs=("x",)))
        run = wf.run()
        assert run.total_seconds >= 0
        assert "a" in run.step_seconds()

    def test_provenance_recorded(self):
        wf = Workflow()
        wf.add_step(step("gen", outputs=("x",)))
        wf.add_step(step("use", inputs=("x",), outputs=("y",)))
        run = wf.run()
        assert len(run.provenance) == 2
        producer = run.provenance.producer_of("y")
        assert producer.activity == "use"
        lineage = run.provenance.lineage("y")
        assert [r.activity for r in lineage] == ["gen", "use"]

    def test_initial_context_not_mutated(self):
        wf = Workflow()
        wf.add_step(step("a", outputs=("x",)))
        initial = {"seed": 1}
        wf.run(initial)
        assert initial == {"seed": 1}


class TestProvenanceLog:
    def test_record_ids_unique(self):
        log = ProvenanceLog()
        r1 = log.record("a", outputs=["x"])
        r2 = log.record("a", outputs=["x"])
        assert r1.record_id != r2.record_id  # sequence disambiguates

    def test_producer_of_latest_wins(self):
        log = ProvenanceLog()
        log.record("old", outputs=["x"])
        newer = log.record("new", outputs=["x"])
        assert log.producer_of("x") is newer

    def test_lineage_transitive(self):
        log = ProvenanceLog()
        log.record("s1", outputs=["a"])
        log.record("s2", inputs=["a"], outputs=["b"])
        log.record("s3", inputs=["b"], outputs=["c"])
        assert [r.activity for r in log.lineage("c")] == ["s1", "s2", "s3"]

    def test_lineage_unknown_output(self):
        assert ProvenanceLog().lineage("ghost") == []

    def test_json_export(self):
        import json

        log = ProvenanceLog()
        log.record("a", outputs=["x"], params={"k": 1})
        data = json.loads(log.to_json())
        assert data[0]["activity"] == "a"
        assert data[0]["params"]["k"] == "1"
