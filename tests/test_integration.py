"""Cross-module integration tests: the scenarios the tutorial teaches."""

import os

import numpy as np
import pytest

from repro.catalog import CatalogService, harvest_dataverse, harvest_seal
from repro.core import build_tutorial_workflow, validate_conversion
from repro.dashboard import DashboardSession
from repro.formats.metadata import DatasetMetadata
from repro.formats.tiff import write_tiff
from repro.idx import BlockCache, IdxDataset, tiff_to_idx
from repro.services import FairDigitalObject, build_default_testbed, fair_assessment
from repro.somospie import CovariateStack, KnnRegressor, synthetic_soil_moisture
from repro.storage import Dataverse, open_remote_idx, upload_idx_to_seal
from repro.terrain import GeoTiler, composite_terrain


class TestEndToEndTutorial:
    """The complete Fig. 4 pipeline plus discovery and FAIR publication."""

    def test_full_pipeline_with_services(self, tmp_path):
        testbed = build_default_testbed(seed=0)
        token = testbed.seal.issue_token("trainee", ("read", "write"))

        # Steps 1-4 against the shared testbed (Option B everywhere).
        wf = build_tutorial_workflow(str(tmp_path), shape=(64, 64), grid=(2, 2))
        run = wf.run({"seal": testbed.seal, "seal_token": token, "client_site": "knox"})
        assert run.ok

        # Publish the converted data to Dataverse.
        meta = DatasetMetadata(
            name="workshop-terrain",
            title="Workshop terrain parameters",
            keywords=["terrain", "workshop"],
        )
        doi = testbed.dataverse.create_dataset(meta, owner="trainee")
        for name, idx_path in run.context["idx_paths"].items():
            with open(idx_path, "rb") as fh:
                testbed.dataverse.upload_file(doi, f"{name}.idx", fh.read(), owner="trainee")
        testbed.dataverse.publish(doi, owner="trainee")

        # Harvest everything into the catalog and discover it.
        testbed.catalog.ingest_many(harvest_dataverse(testbed.dataverse))
        testbed.catalog.ingest_many(harvest_seal(testbed.seal, token=token))
        hits = testbed.catalog.search("terrain workshop")
        assert hits
        facets = testbed.catalog.facets_by_source("idx")
        assert len(facets) == 2  # both providers contribute

        # Mint a FAIR object for the published slope product.
        info = testbed.dataverse.dataset_info(doi)
        etag = testbed.dataverse.store.head(
            testbed.dataverse.bucket, testbed.dataverse._key(doi, info.version, "slope.idx")
        ).etag
        fdo = FairDigitalObject.mint(
            meta, checksum=etag, access_url=f"dataverse://x/{doi}/slope.idx"
        )
        fdo.add_provenance("nsdf-tutorial-workflow")
        assert fair_assessment(fdo)["fair"]

    def test_dashboard_over_remote_seal_data(self, tmp_path):
        """Step 4 Option B: the dashboard streams from Seal with a cache."""
        testbed = build_default_testbed(seed=1)
        token = testbed.seal.issue_token("t", ("read", "write"))

        dem = composite_terrain((128, 128), seed=5)
        path = str(tmp_path / "dem.idx")
        ds = IdxDataset.create(path, dims=dem.shape, fields={"elevation": "float32"},
                               bits_per_block=8)
        ds.write(dem, field="elevation")
        ds.finalize()
        upload_idx_to_seal(path, testbed.seal, "dem.idx", token=token, from_site="knox")

        cache = BlockCache("32 MiB")
        remote = open_remote_idx(testbed.seal, "dem.idx", token=token,
                                 from_site="knox", cache=cache)
        session = DashboardSession(viewport=(64, 64))
        session.register_dataset("remote-dem", remote)

        frame1 = session.current_frame()
        t_cold = testbed.clock.now
        session.zoom(2.0)
        session.current_frame()
        session.zoom(0.5)  # back out: coarse blocks already cached
        frame2 = session.current_frame()
        assert frame2.shape == frame1.shape
        # The zoom-out refresh must be cheaper than the initial load.
        assert testbed.clock.now - t_cold < t_cold * 2
        assert cache.stats.hits > 0

    def test_somospie_consumes_idx_products(self, tmp_path):
        """SOMOSPIE reads its covariates out of IDX datasets (streamed)."""
        dem = composite_terrain((64, 64), seed=9)
        products = GeoTiler(grid=(2, 2)).compute(
            dem, parameters=("elevation", "slope", "aspect")
        )
        # Store products as a multi-field IDX dataset and read them back.
        path = str(tmp_path / "cov.idx")
        ds = IdxDataset.create(
            path, dims=dem.shape, fields={k: "float32" for k in products}
        )
        for name, raster in products.items():
            ds.write(raster, field=name)
        ds.finalize()
        loaded = IdxDataset.open(path)
        stack = CovariateStack({name: loaded.read(field=name) for name in loaded.fields})

        truth = synthetic_soil_moisture(dem, seed=9, noise=0.0)
        rng = np.random.default_rng(0)
        rows, cols = rng.integers(0, 64, 200), rng.integers(0, 64, 200)
        knn = KnnRegressor(k=8).fit(stack.features_at(rows, cols), truth[rows, cols])
        pred = knn.predict(stack.full_grid_features()).reshape(dem.shape)
        rmse = float(np.sqrt(np.mean((pred - truth) ** 2)))
        assert rmse < 0.05  # m3/m3

    def test_conversion_validation_over_three_formats(self, tmp_path, small_dem):
        """TIFF, raw, and NetCDF all convert to bit-identical IDX."""
        from repro.formats.ncdf import NcdfFile, write_ncdf
        from repro.formats.rawbin import write_raw
        from repro.idx import ncdf_to_idx, raw_to_idx

        tiff = str(tmp_path / "a.tif")
        write_tiff(tiff, small_dem)
        r1 = tiff_to_idx(tiff, str(tmp_path / "a.idx"))

        raw = str(tmp_path / "b.raw")
        write_raw(raw, small_dem)
        r2 = raw_to_idx(raw, str(tmp_path / "b.idx"))

        nc = NcdfFile()
        nc.add_variable("value", ("y", "x"), small_dem)
        ncp = str(tmp_path / "c.nc")
        write_ncdf(ncp, nc)
        r3 = ncdf_to_idx(ncp, str(tmp_path / "c.idx"))

        for rep in (r1, r2, r3):
            ds = IdxDataset.open(rep.idx_path)
            assert np.array_equal(ds.read(field=rep.fields[0]), small_dem)

        report = validate_conversion(tiff, r1.idx_path)
        assert report.identical

    def test_multi_user_isolation_via_tokens(self):
        """Two trainees cannot touch each other's sealed data without scopes."""
        testbed = build_default_testbed(seed=2)
        alice_rw = testbed.seal.issue_token("alice", ("read", "write"))
        bob_r = testbed.seal.issue_token("bob", ("read",))

        testbed.seal.put("alice/data.idx", b"alice-bytes", token=alice_rw)
        # Bob can read (shared read scope on the bucket model)...
        assert testbed.seal.get("alice/data.idx", token=bob_r) == b"alice-bytes"
        # ...but cannot write or delete.
        from repro.storage.seal import AuthError

        with pytest.raises(AuthError):
            testbed.seal.put("alice/data.idx", b"overwrite", token=bob_r)
        with pytest.raises(AuthError):
            testbed.seal.delete("alice/data.idx", token=bob_r)


class TestCrossRegionWorkloads:
    def test_tennessee_and_conus_shapes(self, tmp_path):
        """The two tutorial regions at laptop scale keep their aspect ratios."""
        from repro.terrain import REGIONS, grid_shape_for_region

        tn = grid_shape_for_region("tennessee", scale_divisor=32)
        conus = grid_shape_for_region("conus", scale_divisor=512)
        assert tn[1] / tn[0] == pytest.approx(
            REGIONS["tennessee"].grid_shape()[1] / REGIONS["tennessee"].grid_shape()[0],
            rel=0.2,
        )
        # Build a small dataset per region and view both in one dashboard.
        session = DashboardSession(viewport=(32, 32))
        for region, shape in (("tennessee", tn), ("conus", conus)):
            dem = composite_terrain(shape, seed=hash(region) % 100)
            path = str(tmp_path / f"{region}.idx")
            ds = IdxDataset.create(path, dims=dem.shape, fields={"elevation": "float32"})
            ds.write(dem, field="elevation")
            ds.finalize()
            session.open_file(region, path)
        assert session.dataset_names == ["conus", "tennessee"]
        session.select_dataset("tennessee")
        assert session.current_frame().shape[2] == 3
        session.select_dataset("conus")
        assert session.current_frame().shape[2] == 3
