"""Tests for TIFF/NetCDF/raw <-> IDX conversion (Step 2)."""

import os

import numpy as np
import pytest

from repro.formats.ncdf import NcdfFile, write_ncdf
from repro.formats.rawbin import write_raw
from repro.formats.tiff import read_tiff, write_tiff
from repro.idx import IdxDataset, idx_to_tiff, ncdf_to_idx, raw_to_idx, tiff_to_idx
from repro.idx.idxfile import IdxError
from repro.terrain.dem import composite_terrain


class TestTiffToIdx:
    def test_content_preserved(self, tmp_path, small_dem):
        tiff = str(tmp_path / "a.tif")
        idx = str(tmp_path / "a.idx")
        write_tiff(tiff, small_dem)
        tiff_to_idx(tiff, idx, field_name="elevation")
        assert np.array_equal(IdxDataset.open(idx).read(field="elevation"), small_dem)

    def test_report_accounting(self, tmp_path, small_dem):
        tiff = str(tmp_path / "a.tif")
        idx = str(tmp_path / "a.idx")
        write_tiff(tiff, small_dem)
        report = tiff_to_idx(tiff, idx)
        assert report.source_bytes == os.path.getsize(tiff)
        assert report.idx_bytes == os.path.getsize(idx)
        assert report.ratio == pytest.approx(report.idx_bytes / report.source_bytes)
        assert report.reduction_percent == pytest.approx(100 * (1 - report.ratio))

    def test_terrain_reduction_near_paper_claim(self, tmp_path):
        """Smooth terrain: IDX (zlib blocks) beats uncompressed TIFF by ~10-45%."""
        dem = composite_terrain((256, 256), seed=0)
        tiff = str(tmp_path / "t.tif")
        idx = str(tmp_path / "t.idx")
        write_tiff(tiff, dem, compression="none")
        report = tiff_to_idx(tiff, idx)
        assert 5.0 < report.reduction_percent < 60.0

    def test_metadata_flows_through(self, tmp_path, small_dem):
        tiff = str(tmp_path / "a.tif")
        idx = str(tmp_path / "a.idx")
        write_tiff(
            tiff,
            small_dem,
            description="slope",
            pixel_scale=(30, 30, 0),
            tiepoint=(0, 0, 0, -90.0, 36.0, 0),
        )
        tiff_to_idx(tiff, idx)
        meta = IdxDataset.open(idx).header.metadata
        assert meta["description"] == "slope"
        assert meta["pixel_scale"] == [30.0, 30.0, 0.0]

    def test_rejects_rgb(self, tmp_path, rng):
        tiff = str(tmp_path / "rgb.tif")
        write_tiff(tiff, (rng.random((8, 8, 3)) * 255).astype(np.uint8))
        with pytest.raises(IdxError):
            tiff_to_idx(tiff, str(tmp_path / "x.idx"))


class TestIdxToTiff:
    def test_round_trip(self, tmp_path, small_dem):
        t1 = str(tmp_path / "a.tif")
        idx = str(tmp_path / "a.idx")
        t2 = str(tmp_path / "back.tif")
        write_tiff(t1, small_dem, description="elev")
        tiff_to_idx(t1, idx)
        idx_to_tiff(idx, t2, compression="none")
        assert np.array_equal(read_tiff(t2), small_dem)

    def test_reduced_resolution_export(self, tmp_path, small_dem):
        t1 = str(tmp_path / "a.tif")
        idx = str(tmp_path / "a.idx")
        t2 = str(tmp_path / "coarse.tif")
        write_tiff(t1, small_dem)
        tiff_to_idx(t1, idx)
        ds = IdxDataset.open(idx)
        idx_to_tiff(idx, t2, resolution=ds.maxh - 4)
        coarse = read_tiff(t2)
        assert coarse.size < small_dem.size / 8


class TestRawToIdx:
    def test_round_trip(self, tmp_path, rng):
        raw = str(tmp_path / "a.raw")
        idx = str(tmp_path / "a.idx")
        a = rng.random((32, 48)).astype(np.float64)
        write_raw(raw, a, attrs={"units": "m"})
        report = raw_to_idx(raw, idx)
        assert np.array_equal(IdxDataset.open(idx).read(), a)
        assert report.dims == (32, 48)

    def test_attrs_preserved(self, tmp_path, rng):
        raw = str(tmp_path / "a.raw")
        idx = str(tmp_path / "a.idx")
        write_raw(raw, rng.random((8, 8)).astype(np.float32), attrs={"var": "sm"})
        raw_to_idx(raw, idx)
        assert IdxDataset.open(idx).header.metadata["attrs"]["var"] == "sm"


class TestNcdfToIdx:
    def test_multi_variable(self, tmp_path, rng):
        nc_path = str(tmp_path / "a.nc")
        idx = str(tmp_path / "a.idx")
        nc = NcdfFile(attrs={"title": "t"})
        a = rng.random((16, 24)).astype(np.float32)
        b = rng.random((16, 24)).astype(np.float64)
        nc.add_variable("u", ("y", "x"), a)
        nc.add_variable("w", ("y", "x"), b)
        write_ncdf(nc_path, nc)
        report = ncdf_to_idx(nc_path, idx)
        ds = IdxDataset.open(idx)
        assert set(ds.fields) == {"u", "w"}
        assert np.array_equal(ds.read(field="u"), a)
        assert np.allclose(ds.read(field="w"), b)
        assert set(report.fields) == {"u", "w"}

    def test_variable_subset(self, tmp_path, rng):
        nc_path = str(tmp_path / "a.nc")
        idx = str(tmp_path / "a.idx")
        nc = NcdfFile()
        nc.add_variable("u", ("y", "x"), rng.random((8, 8)).astype(np.float32))
        nc.add_variable("w", ("y", "x"), rng.random((8, 8)).astype(np.float32))
        write_ncdf(nc_path, nc)
        ncdf_to_idx(nc_path, idx, variables=["u"])
        assert IdxDataset.open(idx).fields == ("u",)

    def test_mixed_grids_rejected(self, tmp_path, rng):
        nc_path = str(tmp_path / "a.nc")
        nc = NcdfFile()
        nc.add_variable("u", ("y", "x"), rng.random((8, 8)).astype(np.float32))
        nc.add_variable("w", ("t",), rng.random(5).astype(np.float32))
        write_ncdf(nc_path, nc)
        with pytest.raises(IdxError):
            ncdf_to_idx(nc_path, str(tmp_path / "x.idx"))

    def test_empty_file_rejected(self, tmp_path):
        nc_path = str(tmp_path / "e.nc")
        write_ncdf(nc_path, NcdfFile())
        with pytest.raises(IdxError):
            ncdf_to_idx(nc_path, str(tmp_path / "x.idx"))
