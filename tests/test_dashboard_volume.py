"""Tests for 3-D volume slicing in the dashboard session."""

import numpy as np
import pytest

from repro.dashboard import DashboardSession
from repro.idx import IdxDataset


@pytest.fixture
def volume_session(tmp_path, rng):
    v = rng.random((16, 32, 48)).astype(np.float32)
    path = str(tmp_path / "v.idx")
    ds = IdxDataset.create(path, dims=v.shape, fields={"density": "float32"},
                           bits_per_block=9)
    ds.write(v, field="density")
    ds.finalize()
    session = DashboardSession(viewport=(16, 16))
    session.open_file("volume", path)
    return session, v


class TestVolumeDefaults:
    def test_opens_on_central_plane(self, volume_session):
        session, v = volume_session
        assert session.state.slice_axis == 0
        assert session.state.slice_index == 8

    def test_2d_dataset_has_no_slice(self, tmp_path, rng):
        a = rng.random((16, 16)).astype(np.float32)
        path = str(tmp_path / "d.idx")
        ds = IdxDataset.create(path, dims=a.shape)
        ds.write(a)
        ds.finalize()
        session = DashboardSession()
        session.open_file("flat", path)
        assert session.state.slice_axis is None


class TestSliceSelection:
    def test_frame_is_the_selected_plane(self, volume_session):
        session, v = volume_session
        session.set_slice(0, 3)
        session.set_resolution(session.dataset.maxh)  # exact plane
        data = session.fetch_data().data
        assert np.array_equal(np.squeeze(data, axis=0), v[3])

    def test_all_axes(self, volume_session):
        session, v = volume_session
        session.set_resolution(session.dataset.maxh)
        session.set_slice(1, 10)
        assert np.array_equal(
            np.squeeze(session.fetch_data().data, axis=1), v[:, 10, :]
        )
        session.set_slice(2, 20)
        assert np.array_equal(
            np.squeeze(session.fetch_data().data, axis=2), v[:, :, 20]
        )

    def test_current_frame_renders_2d(self, volume_session):
        session, v = volume_session
        frame = session.current_frame()
        assert frame.ndim == 3 and frame.shape[2] == 3
        # Auto resolution: plane dims cover the viewport, bounded above
        # by the full plane (32, 48).
        assert 16 <= frame.shape[0] <= 32
        assert 16 <= frame.shape[1] <= 48
        session.set_resolution(session.dataset.maxh)
        full = session.current_frame()
        assert full.shape[:2] == (32, 48)

    def test_odd_slice_index_snaps_at_coarse_level(self, volume_session):
        session, v = volume_session
        session.set_slice(0, 9)  # odd index
        session.set_resolution(session.dataset.maxh - 3)  # strided lattice
        frame = session.current_frame()  # must not crash on an empty plane
        assert frame.size > 0

    def test_frame_changes_with_slice(self, volume_session):
        session, _ = volume_session
        session.set_resolution(session.dataset.maxh)
        f1 = session.current_frame()
        session.step_slice(+4)
        f2 = session.current_frame()
        assert not np.array_equal(f1, f2)

    def test_step_slice_clamps(self, volume_session):
        session, _ = volume_session
        session.set_slice(0, 15)
        assert session.step_slice(+10) == 15
        session.set_slice(0, 0)
        assert session.step_slice(-5) == 0

    def test_validation(self, volume_session):
        session, _ = volume_session
        with pytest.raises(ValueError):
            session.set_slice(3, 0)
        with pytest.raises(IndexError):
            session.set_slice(0, 99)

    def test_set_slice_on_2d_rejected(self, tmp_path, rng):
        a = rng.random((8, 8)).astype(np.float32)
        path = str(tmp_path / "d.idx")
        ds = IdxDataset.create(path, dims=a.shape)
        ds.write(a)
        ds.finalize()
        session = DashboardSession()
        session.open_file("flat", path)
        with pytest.raises(ValueError):
            session.set_slice(0, 0)


class TestVolumeResolution:
    def test_auto_resolution_uses_plane_axes(self, volume_session):
        session, _ = volume_session
        # Viewport 16x16; the plane is 32x48, so a sub-maxh level suffices.
        level = session.effective_resolution()
        assert level < session.dataset.maxh

    def test_auto_resolution_fetches_bounded_samples(self, volume_session):
        session, _ = volume_session
        data = session.fetch_data().data
        assert data.size <= 8 * 16 * 16

    def test_zoom_works_on_volume(self, volume_session):
        session, _ = volume_session
        session.zoom(2.0)
        frame = session.current_frame()
        assert frame.ndim == 3
