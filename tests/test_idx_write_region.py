"""Tests for partial (region) writes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.idx import IdxDataset, IdxError
from repro.util.arrays import block_iter


class TestWriteRegion:
    def test_tiles_reassemble_exactly(self, tmp_path, rng):
        a = rng.random((64, 96)).astype(np.float32)
        path = str(tmp_path / "d.idx")
        ds = IdxDataset.create(path, dims=a.shape, bits_per_block=7)
        for box in block_iter(a.shape, (16, 32)):
            ds.write_region(a[box.to_slices()], box.lo)
        ds.finalize()
        assert np.array_equal(IdxDataset.open(path).read(), a)

    def test_out_of_order_tiles(self, tmp_path, rng):
        a = rng.random((32, 32)).astype(np.float32)
        path = str(tmp_path / "d.idx")
        ds = IdxDataset.create(path, dims=a.shape, bits_per_block=6)
        boxes = list(block_iter(a.shape, (8, 8)))
        rng.shuffle(boxes)
        for box in boxes:
            ds.write_region(a[box.to_slices()], box.lo)
        ds.finalize()
        assert np.array_equal(IdxDataset.open(path).read(), a)

    def test_overlapping_writes_last_wins(self, tmp_path):
        path = str(tmp_path / "d.idx")
        ds = IdxDataset.create(path, dims=(16, 16), bits_per_block=5)
        ds.write_region(np.full((16, 16), 1.0, dtype=np.float32), (0, 0))
        ds.write_region(np.full((8, 8), 2.0, dtype=np.float32), (4, 4))
        ds.finalize()
        out = IdxDataset.open(path).read()
        assert (out[4:12, 4:12] == 2.0).all()
        assert out[0, 0] == 1.0

    def test_unwritten_region_holds_fill(self, tmp_path):
        path = str(tmp_path / "d.idx")
        ds = IdxDataset.create(path, dims=(16, 16), fill_value=-1.0, bits_per_block=5)
        ds.write_region(np.zeros((4, 4), dtype=np.float32), (0, 0))
        ds.finalize()
        out = IdxDataset.open(path).read()
        assert (out[:4, :4] == 0.0).all()
        assert (out[8:, 8:] == -1.0).all()

    def test_region_at_non_pow2_edge(self, tmp_path, rng):
        a = rng.random((50, 70)).astype(np.float32)
        path = str(tmp_path / "d.idx")
        ds = IdxDataset.create(path, dims=a.shape, bits_per_block=6)
        ds.write_region(a[:25], (0, 0))
        ds.write_region(a[25:], (25, 0))
        ds.finalize()
        assert np.array_equal(IdxDataset.open(path).read(), a)

    def test_3d_regions(self, tmp_path, rng):
        v = rng.random((8, 16, 16)).astype(np.float32)
        path = str(tmp_path / "v.idx")
        ds = IdxDataset.create(path, dims=v.shape, bits_per_block=7)
        ds.write_region(v[:4], (0, 0, 0))
        ds.write_region(v[4:], (4, 0, 0))
        ds.finalize()
        assert np.array_equal(IdxDataset.open(path).read(), v)

    def test_mixed_full_and_region_writes(self, tmp_path, rng):
        a = rng.random((16, 16)).astype(np.float32)
        patch = np.full((4, 4), 99.0, dtype=np.float32)
        path = str(tmp_path / "d.idx")
        ds = IdxDataset.create(path, dims=a.shape, bits_per_block=5)
        ds.write(a)
        ds.write_region(patch, (6, 6))
        ds.finalize()
        out = IdxDataset.open(path).read()
        expected = a.copy()
        expected[6:10, 6:10] = 99.0
        assert np.array_equal(out, expected)

    def test_empty_region_noop(self, tmp_path):
        ds = IdxDataset.create(str(tmp_path / "d.idx"), dims=(8, 8))
        ds.write_region(np.zeros((0, 4), dtype=np.float32), (0, 0))  # no crash

    def test_bounds_checked(self, tmp_path):
        ds = IdxDataset.create(str(tmp_path / "d.idx"), dims=(8, 8))
        with pytest.raises(IdxError):
            ds.write_region(np.zeros((4, 4), dtype=np.float32), (6, 6))
        with pytest.raises(IdxError):
            ds.write_region(np.zeros((4,), dtype=np.float32), (0,))

    def test_not_writable_after_finalize(self, tmp_path):
        ds = IdxDataset.create(str(tmp_path / "d.idx"), dims=(8, 8))
        ds.write(np.zeros((8, 8), dtype=np.float32))
        ds.finalize()
        with pytest.raises(IdxError):
            ds.write_region(np.zeros((2, 2), dtype=np.float32), (0, 0))


@given(
    st.integers(0, 40), st.integers(0, 40), st.integers(1, 24), st.integers(1, 24)
)
@settings(max_examples=30, deadline=5000)
def test_property_single_region_write(oy, ox, h, w):
    """Writing any single region leaves exactly that box non-fill."""
    import tempfile

    dims = (48, 48)
    hy, hx = min(dims[0], oy + h), min(dims[1], ox + w)
    if hy <= oy or hx <= ox:
        return
    patch = np.full((hy - oy, hx - ox), 5.0, dtype=np.float32)
    path = tempfile.mktemp(suffix=".idx")
    ds = IdxDataset.create(path, dims=dims, fill_value=0.0, bits_per_block=6)
    ds.write_region(patch, (oy, ox))
    ds.finalize()
    out = IdxDataset.open(path).read()
    assert (out[oy:hy, ox:hx] == 5.0).all()
    mask = np.zeros(dims, dtype=bool)
    mask[oy:hy, ox:hx] = True
    assert (out[~mask] == 0.0).all()
