"""Structural tests for the intraprocedural CFG builder."""

from __future__ import annotations

import ast
import textwrap

from repro.analysis.cfg import (
    ENTRY,
    EXCEPT,
    EXIT,
    STMT,
    WITH_ENTER,
    WITH_EXIT,
    build_cfg,
    iter_functions,
)


def cfg_of(source: str, name: str = "f"):
    tree = ast.parse(textwrap.dedent(source).lstrip("\n"))
    for qualname, func, _cls in iter_functions(tree):
        if qualname == name:
            return build_cfg(func)
    raise AssertionError(f"no function {name!r} in snippet")


def stmt_node(cfg, line: int):
    """The first non-clone node whose statement starts at ``line``."""
    for node in cfg.iter_nodes():
        if node.kind == STMT and node.lineno == line:
            return node
    raise AssertionError(f"no stmt node at line {line}")


def kinds(cfg):
    return sorted(n.kind for n in cfg.iter_nodes())


def reachable(cfg, start=None):
    seen, stack = set(), [cfg.entry if start is None else start]
    while stack:
        nid = stack.pop()
        if nid in seen:
            continue
        seen.add(nid)
        stack.extend(cfg.succs[nid])
    return seen


# -- straight line & branches ------------------------------------------------


def test_linear_body_chains_entry_to_exit():
    cfg = cfg_of(
        """
        def f():
            a = 1
            b = 2
            return a + b
        """
    )
    assert cfg.entry in cfg.nodes and cfg.exit in cfg.nodes
    assert kinds(cfg).count(ENTRY) == 1
    assert kinds(cfg).count(EXIT) == 1
    # Every node reaches forward from entry, and exit is among them.
    assert cfg.exit in reachable(cfg)
    # The return routes straight to exit.
    ret = stmt_node(cfg, 4)
    assert cfg.exit in cfg.succs[ret.nid]


def test_if_branches_join():
    cfg = cfg_of(
        """
        def f(c):
            if c:
                x = 1
            else:
                x = 2
            return x
        """
    )
    head = stmt_node(cfg, 2)
    then_arm = stmt_node(cfg, 3)
    else_arm = stmt_node(cfg, 5)
    join = stmt_node(cfg, 6)
    assert then_arm.nid in cfg.succs[head.nid]
    assert else_arm.nid in cfg.succs[head.nid]
    assert join.nid in cfg.succs[then_arm.nid]
    assert join.nid in cfg.succs[else_arm.nid]


def test_if_without_else_falls_through():
    cfg = cfg_of(
        """
        def f(c):
            if c:
                x = 1
            return 0
        """
    )
    head = stmt_node(cfg, 2)
    ret = stmt_node(cfg, 4)
    # Both the taken arm and the head itself (condition false) reach return.
    assert ret.nid in cfg.succs[stmt_node(cfg, 3).nid]
    assert ret.nid in cfg.succs[head.nid]


# -- loops -------------------------------------------------------------------


def test_while_loop_has_back_edge_and_exit_edge():
    cfg = cfg_of(
        """
        def f(n):
            while n:
                n -= 1
            return n
        """
    )
    head = stmt_node(cfg, 2)
    body = stmt_node(cfg, 3)
    after = stmt_node(cfg, 4)
    assert body.nid in cfg.succs[head.nid]
    assert head.nid in cfg.succs[body.nid]  # back edge
    assert after.nid in cfg.succs[head.nid]  # loop-not-taken edge


def test_break_and_continue_route_to_loop_boundaries():
    cfg = cfg_of(
        """
        def f(xs):
            for x in xs:
                if x < 0:
                    continue
                if x > 9:
                    break
            return 1
        """
    )
    head = stmt_node(cfg, 2)
    cont = stmt_node(cfg, 4)
    brk = stmt_node(cfg, 6)
    after = stmt_node(cfg, 7)
    assert head.nid in cfg.succs[cont.nid]  # continue -> loop head
    assert after.nid in cfg.succs[brk.nid]  # break -> after the loop
    # Neither jump falls through into the next body statement.
    assert stmt_node(cfg, 5).nid not in cfg.succs[cont.nid]


# -- with --------------------------------------------------------------------


def test_with_brackets_body_with_enter_exit_markers():
    cfg = cfg_of(
        """
        def f(lock):
            with lock:
                x = 1
            return x
        """
    )
    enters = [n for n in cfg.iter_nodes() if n.kind == WITH_ENTER]
    exits = [n for n in cfg.iter_nodes() if n.kind == WITH_EXIT]
    assert len(enters) == 1 and len(exits) == 1
    body = stmt_node(cfg, 3)
    assert body.nid in cfg.succs[enters[0].nid]
    assert exits[0].nid in cfg.succs[body.nid]


def test_multi_item_with_nests_markers():
    cfg = cfg_of(
        """
        def f(a, b):
            with a, b:
                pass
        """
    )
    enters = [n for n in cfg.iter_nodes() if n.kind == WITH_ENTER]
    exits = [n for n in cfg.iter_nodes() if n.kind == WITH_EXIT]
    assert len(enters) == 2 and len(exits) == 2
    # Exits unwind in reverse order: b's exit precedes a's exit.
    assert exits[0].item is enters[1].item
    assert exits[1].item is enters[0].item


# -- try/except/finally ------------------------------------------------------


def test_try_body_statements_edge_to_handler():
    cfg = cfg_of(
        """
        def f():
            try:
                risky()
            except ValueError:
                fallback()
            return 1
        """
    )
    risky = stmt_node(cfg, 3)
    handlers = [n for n in cfg.iter_nodes() if n.kind == EXCEPT]
    assert len(handlers) == 1
    assert handlers[0].nid in cfg.succs[risky.nid]
    # Both normal completion and handler completion reach the return.
    ret = stmt_node(cfg, 6)
    assert ret.nid in cfg.succs[risky.nid]
    assert ret.nid in cfg.succs[stmt_node(cfg, 5).nid]


def test_finally_is_cloned_for_early_return():
    cfg = cfg_of(
        """
        def f(c):
            try:
                if c:
                    return 1
                work()
            finally:
                cleanup()
            return 0
        """
    )
    tree_stmt = None
    for node in cfg.iter_nodes():
        if node.kind == STMT and node.lineno == 7:
            tree_stmt = node.stmt
            break
    assert tree_stmt is not None
    clones = cfg.nodes_for_stmt(tree_stmt)
    # cleanup() appears at least twice: on the return path, on the normal
    # path, and on the exceptional-propagation path.
    assert len(clones) >= 2
    # The early return runs a finally clone *before* reaching exit.
    ret = stmt_node(cfg, 4)
    assert cfg.exit not in cfg.succs[ret.nid]
    on_return_path = reachable(cfg, ret.nid)
    assert any(n.nid in on_return_path for n in clones)
    assert cfg.exit in on_return_path


def test_finally_runs_on_exceptional_propagation():
    cfg = cfg_of(
        """
        def f():
            try:
                risky()
            finally:
                cleanup()
        """
    )
    risky = stmt_node(cfg, 3)
    # The raising statement has a path to exit that passes a finally clone
    # (no handler catches, so the exception escapes through the finally).
    fin_stmt = stmt_node(cfg, 5).stmt
    clones = cfg.nodes_for_stmt(fin_stmt)
    assert len(clones) >= 2  # normal-completion clone + propagation clone
    succs_of_risky = set(cfg.succs[risky.nid])
    assert succs_of_risky & {n.nid for n in clones}


def test_iter_functions_yields_qualnames_and_enclosing_class():
    tree = ast.parse(
        textwrap.dedent(
            """
            def top():
                def inner():
                    pass

            class C:
                def method(self):
                    pass
            """
        )
    )
    found = {q: cls for q, _f, cls in iter_functions(tree)}
    assert set(found) == {"top", "top.inner", "C.method"}
    assert found["top"] is None
    assert found["top.inner"] is None
    assert found["C.method"] is not None and found["C.method"].name == "C"
