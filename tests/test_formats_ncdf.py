"""Tests for the NetCDF classic (CDF-1) subset."""

import struct

import numpy as np
import pytest

from repro.formats.ncdf import NcdfError, NcdfFile, read_ncdf, write_ncdf


@pytest.fixture
def sample(rng):
    nc = NcdfFile(attrs={"title": "terrain test", "resolution": 30.0, "count": 4})
    nc.add_variable(
        "elevation",
        ("y", "x"),
        rng.random((12, 18)).astype(np.float32),
        attrs={"units": "m", "valid_max": 9000.0},
    )
    nc.add_variable("slope", ("y", "x"), rng.random((12, 18)).astype(np.float64))
    nc.add_variable("profile", ("x",), np.arange(18, dtype=np.int32))
    return nc


class TestRoundTrip:
    def test_dims(self, tmp_path, sample):
        path = str(tmp_path / "t.nc")
        write_ncdf(path, sample)
        back = read_ncdf(path)
        assert back.dims == {"y": 12, "x": 18}

    def test_variables(self, tmp_path, sample):
        path = str(tmp_path / "t.nc")
        write_ncdf(path, sample)
        back = read_ncdf(path)
        for name in sample.variables:
            assert np.allclose(back.variables[name], sample.variables[name]), name
            assert back.var_dims[name] == sample.var_dims[name]

    def test_exact_dtypes(self, tmp_path, sample):
        path = str(tmp_path / "t.nc")
        write_ncdf(path, sample)
        back = read_ncdf(path)
        assert back.variables["elevation"].dtype == np.float32
        assert back.variables["slope"].dtype == np.float64
        assert back.variables["profile"].dtype == np.int32

    def test_global_attrs(self, tmp_path, sample):
        path = str(tmp_path / "t.nc")
        write_ncdf(path, sample)
        back = read_ncdf(path)
        assert back.attrs["title"] == "terrain test"
        assert back.attrs["resolution"] == pytest.approx(30.0)
        assert back.attrs["count"] == 4

    def test_var_attrs(self, tmp_path, sample):
        path = str(tmp_path / "t.nc")
        write_ncdf(path, sample)
        back = read_ncdf(path)
        assert back.var_attrs["elevation"]["units"] == "m"
        assert back.var_attrs["elevation"]["valid_max"] == pytest.approx(9000.0)

    def test_empty_file(self, tmp_path):
        path = str(tmp_path / "e.nc")
        write_ncdf(path, NcdfFile())
        back = read_ncdf(path)
        assert back.dims == {} and back.variables == {}

    def test_int16_variable(self, tmp_path):
        nc = NcdfFile()
        nc.add_variable("v", ("n",), np.arange(7, dtype=np.int16))
        path = str(tmp_path / "i.nc")
        write_ncdf(path, nc)
        assert np.array_equal(read_ncdf(path).variables["v"], np.arange(7, dtype=np.int16))


class TestFormatCompliance:
    def test_magic_bytes(self, tmp_path, sample):
        path = str(tmp_path / "t.nc")
        write_ncdf(path, sample)
        with open(path, "rb") as fh:
            assert fh.read(4) == b"CDF\x01"

    def test_big_endian_data(self, tmp_path):
        nc = NcdfFile()
        nc.add_variable("v", ("n",), np.array([1], dtype=np.int32))
        path = str(tmp_path / "t.nc")
        write_ncdf(path, nc)
        with open(path, "rb") as fh:
            data = fh.read()
        # The int32 value 1 must appear big-endian in the data section.
        assert data.endswith(struct.pack(">i", 1))


class TestValidation:
    def test_dim_conflict(self):
        nc = NcdfFile()
        nc.add_variable("a", ("y", "x"), np.zeros((3, 4), dtype=np.float32))
        with pytest.raises(NcdfError):
            nc.add_variable("b", ("y", "x"), np.zeros((5, 4), dtype=np.float32))

    def test_dims_ndim_mismatch(self):
        nc = NcdfFile()
        with pytest.raises(NcdfError):
            nc.add_variable("a", ("y",), np.zeros((3, 4), dtype=np.float32))

    def test_unsupported_dtype(self):
        nc = NcdfFile()
        with pytest.raises(NcdfError):
            nc.add_variable("a", ("n",), np.zeros(4, dtype=np.uint64))

    def test_not_cdf(self, tmp_path):
        path = str(tmp_path / "x.nc")
        with open(path, "wb") as fh:
            fh.write(b"HDF5 file maybe?")
        with pytest.raises(NcdfError):
            read_ncdf(path)

    def test_truncated(self, tmp_path, sample):
        path = str(tmp_path / "t.nc")
        write_ncdf(path, sample)
        with open(path, "rb") as fh:
            blob = fh.read()
        bad = str(tmp_path / "bad.nc")
        with open(bad, "wb") as fh:
            fh.write(blob[:40])
        with pytest.raises(NcdfError):
            read_ncdf(bad)
