"""Tests for Seal Storage: auth, WAN cost accounting, streaming source."""

import numpy as np
import pytest

from repro.network.clock import SimClock
from repro.storage.seal import AuthError, SealStorage


@pytest.fixture
def seal():
    return SealStorage(site="slc", clock=SimClock())


@pytest.fixture
def rw_token(seal):
    return seal.issue_token("owner", scopes=("read", "write"))


class TestAuth:
    def test_no_token_rejected(self, seal):
        with pytest.raises(AuthError):
            seal.get("k", token=None)

    def test_invalid_token_rejected(self, seal):
        with pytest.raises(AuthError):
            seal.get("k", token="forged")

    def test_scope_enforced(self, seal, rw_token):
        seal.put("k", b"secret", token=rw_token)
        read_only = seal.issue_token("reader", scopes=("read",))
        assert seal.get("k", token=read_only) == b"secret"
        with pytest.raises(AuthError):
            seal.put("k2", b"x", token=read_only)

    def test_admin_scope_covers_all(self, seal):
        admin = seal.issue_token("root", scopes=("admin",))
        seal.put("k", b"x", token=admin)
        assert seal.get("k", token=admin) == b"x"

    def test_revocation(self, seal, rw_token):
        seal.put("k", b"x", token=rw_token)
        assert seal.revoke_token(rw_token)
        with pytest.raises(AuthError):
            seal.get("k", token=rw_token)
        assert not seal.revoke_token(rw_token)  # already gone

    def test_unknown_scope_rejected(self, seal):
        with pytest.raises(ValueError):
            seal.issue_token("x", scopes=("sudo",))


class TestWanAccounting:
    def test_put_charges_clock(self, seal, rw_token):
        t0 = seal.clock.now
        seal.put("big", bytes(10_000_000), token=rw_token, from_site="knox")
        assert seal.clock.now > t0

    def test_far_site_costs_more(self, seal, rw_token):
        seal.put("k", bytes(1000), token=rw_token, from_site="slc")
        near_clock = SimClock()
        far_clock = SimClock()
        near = SealStorage(site="slc", clock=near_clock)
        far = SealStorage(site="slc", clock=far_clock)
        tn = near.issue_token("a", ("read", "write"))
        tf = far.issue_token("a", ("read", "write"))
        near.put("k", bytes(1000), token=tn, from_site="sdsc")   # 1 hop west
        far.put("k", bytes(1000), token=tf, from_site="udel")    # cross country
        assert far_clock.now > near_clock.now

    def test_same_site_nearly_free(self, seal, rw_token):
        seal.put("k", bytes(1000), token=rw_token, from_site="slc")
        assert seal.clock.now < 0.001

    def test_clock_labels(self, seal, rw_token):
        seal.put("k", b"x", token=rw_token, from_site="knox")
        seal.get("k", token=rw_token, from_site="knox")
        assert seal.clock.total_for("seal:put") > 0
        assert seal.clock.total_for("seal:get") > 0


class TestObjectOps(object):
    def test_round_trip(self, seal, rw_token):
        seal.put("a/b.idx", b"payload", token=rw_token, metadata={"kind": "idx"})
        assert seal.get("a/b.idx", token=rw_token) == b"payload"
        assert seal.head("a/b.idx", token=rw_token).meta_dict()["kind"] == "idx"

    def test_list_and_delete(self, seal, rw_token):
        seal.put("x/1", b"a", token=rw_token)
        seal.put("x/2", b"b", token=rw_token)
        assert [o.key for o in seal.list("x/", token=rw_token)] == ["x/1", "x/2"]
        seal.delete("x/1", token=rw_token)
        assert [o.key for o in seal.list("x/", token=rw_token)] == ["x/2"]

    def test_get_range(self, seal, rw_token):
        seal.put("k", bytes(range(64)), token=rw_token)
        assert seal.get_range("k", 8, 4, token=rw_token) == bytes(range(8, 12))


class TestByteSource:
    def test_read_at(self, seal, rw_token):
        seal.put("k", bytes(range(100)), token=rw_token)
        src = seal.byte_source("k", token=rw_token, from_site="knox")
        assert src.size() == 100
        assert src.read_at(10, 5) == bytes(range(10, 15))
        assert src.requests == 1
        assert src.bytes_transferred == 5

    def test_read_many_single_round_trip(self, seal, rw_token):
        seal.put("k", bytes(1000), token=rw_token)
        src = seal.byte_source("k", token=rw_token, from_site="knox")
        t0 = seal.clock.now
        chunks = src.read_many([(0, 100), (500, 100), (900, 100)])
        batched = seal.clock.now - t0
        assert [len(c) for c in chunks] == [100, 100, 100]
        # Three separate reads would pay ~3x the latency.
        t0 = seal.clock.now
        for off in (0, 500, 900):
            src.read_at(off, 100)
        separate = seal.clock.now - t0
        assert batched < separate / 2

    def test_requires_read_scope(self, seal, rw_token):
        seal.put("k", b"x", token=rw_token)
        write_only = seal.issue_token("w", scopes=("write",))
        with pytest.raises(AuthError):
            seal.byte_source("k", token=write_only)
