"""Tests for the adaptive per-block codec selector."""

import numpy as np
import pytest

from repro.compression import AdaptiveCodec, CodecError, get_codec, profile_block
from repro.compression.adaptive import _ENTROPY_CEIL


@pytest.fixture(scope="module")
def codec():
    return AdaptiveCodec()


def _smooth(n=64):
    return np.add.outer(np.linspace(0, 50, n), np.linspace(0, 25, n)).astype(np.float32)


def _noise_u8(n=64, seed=0):
    return np.random.default_rng(seed).integers(0, 256, (n, n), dtype=np.uint8)


class TestProfile:
    def test_empty(self):
        prof = profile_block(np.zeros(0, np.float32))
        assert prof.n_bytes == 0 and prof.constant

    def test_constant_multibyte(self):
        prof = profile_block(np.full(256, 3.25, np.float32))
        assert prof.constant and prof.itemsize == 4

    def test_constant_float_bytes_vary(self):
        # 1.0f is 00 00 80 3f — byte stream is not constant, elements are.
        prof = profile_block(np.full(64, 1.0, np.float32))
        assert prof.constant

    def test_noise_entropy_high(self):
        prof = profile_block(_noise_u8())
        assert prof.entropy >= _ENTROPY_CEIL
        assert not prof.constant

    def test_run_fraction(self):
        a = np.zeros(1000, np.uint8)
        a[500] = 7
        prof = profile_block(a)
        assert prof.run_fraction > 0.99


class TestSelection:
    def test_constant_multibyte_uses_shuffled_rle(self, codec):
        assert codec.select_spec(np.full(256, 1.0, np.float32)) == "shuffle:inner=rle"

    def test_constant_bytes_use_rle(self, codec):
        assert codec.select_spec(np.full(4096, 9, np.uint8)) == "rle"

    def test_incompressible_u8_uses_identity(self, codec):
        assert codec.select_spec(_noise_u8()) == "identity"

    def test_compressible_goes_through_probe(self, codec):
        spec = codec.select_spec(_smooth())
        assert spec in ("zlib:level=6", "shuffle:inner=zlib:level=6")

    def test_selection_is_deterministic(self, codec):
        rng = np.random.default_rng(5)
        for _ in range(5):
            block = rng.normal(0, 3, 512).astype(np.float32)
            specs = {codec.select_spec(block) for _ in range(4)}
            assert len(specs) == 1

    def test_level_flows_to_candidates(self):
        c = AdaptiveCodec(level=1)
        assert c.select_spec(_smooth()) in ("zlib:level=1", "shuffle:inner=zlib:level=1")

    def test_bad_level_rejected(self):
        with pytest.raises(CodecError, match="adaptive level"):
            AdaptiveCodec(level=12)
        with pytest.raises(CodecError):
            get_codec("adaptive:level=-1")


class TestEncodeWithSpec:
    def test_payload_matches_chosen_codec(self, codec):
        a = _smooth()
        spec, payload = codec.encode_with_spec(a)
        back = get_codec(spec).decode_array(payload, a.dtype, a.shape)
        assert back.tobytes() == a.tobytes()

    def test_never_expands(self, codec):
        rng = np.random.default_rng(11)
        # float noise sails through the probe but may not beat raw size.
        for block in (
            rng.random(64).astype(np.float64),
            rng.integers(0, 2**16, 128).astype(np.uint16),
            np.frombuffer(rng.bytes(1000), dtype=np.uint8),
        ):
            _, payload = codec.encode_with_spec(block)
            assert len(payload) <= max(block.nbytes, len(payload))
            spec, payload = codec.encode_with_spec(block)
            if spec != "identity":
                assert len(payload) < block.nbytes

    def test_empty_block(self, codec):
        spec, payload = codec.encode_with_spec(np.zeros(0, np.float32))
        assert spec == "identity" and payload == b""


class TestFraming:
    """Standalone (registry-contract) round trip via the RADP frame."""

    @pytest.mark.parametrize("dtype", ["uint8", "int32", "float32", "float64"])
    def test_round_trip(self, codec, dtype):
        rng = np.random.default_rng(3)
        a = (rng.normal(0, 100, (32, 32))).astype(dtype)
        blob = codec.encode_array(a)
        back = codec.decode_array(blob, a.dtype, a.shape)
        assert back.tobytes() == np.ascontiguousarray(a).tobytes()

    def test_round_trip_special_floats(self, codec):
        a = np.array([np.nan, np.inf, -np.inf, 0.0, -0.0], dtype=np.float32)
        back = codec.decode_array(codec.encode_array(a), a.dtype, a.shape)
        assert back.tobytes() == a.tobytes()

    def test_bad_magic_mentions_manifest(self, codec):
        with pytest.raises(CodecError, match="manifest"):
            codec.decode_array(b"XXXX\x00bogus", np.float32, (1,))

    def test_truncated_frame(self, codec):
        with pytest.raises(CodecError, match="truncated"):
            codec.decode_array(b"RA", np.float32, (1,))
        with pytest.raises(CodecError, match="truncated"):
            codec.decode_array(b"RADP\x20abc", np.float32, (1,))

    def test_registry_round_trip_through_spec(self, codec):
        again = get_codec(codec.spec())
        assert isinstance(again, AdaptiveCodec)
        assert again.level == codec.level

    def test_thread_safe_and_lossless_flags(self, codec):
        assert codec.thread_safe and codec.lossless
