"""Chaos harness: seeded fault schedules against the remote IDX read path.

Sweeps hundreds of deterministic :class:`FaultPlan` seeds through the
production wiring (``FaultyStore`` → ``SealStorage`` → ``SealByteSource``
→ ``RemoteAccess`` [→ ``ParallelFetcher`` / ``BlockCache``]) and asserts:

- **byte identity** — every query that completes returns exactly the
  fault-free bytes, whatever mix of transient errors, corruptions,
  partial reads, and latency spikes the schedule threw at it;
- **exact accounting** — in the serial path, retry counts and backoff
  sleeps (on the SimClock; nothing ever really sleeps) match the plan's
  prediction *to the float*;
- **no leaks** — fetcher in-flight tables drain, cache and access-counter
  invariants hold, circuit breakers trip and recover as specified;
- **graceful degradation** — blacked-out blocks degrade progressive
  refinement instead of crashing it, and degraded frames are flagged.

``REPRO_CHAOS_SEED_BASE`` offsets every sweep so CI shards explore
disjoint schedule populations with the same test code.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import (
    CircuitBreaker,
    FaultError,
    FaultPlan,
    FaultyStore,
    LATENCY,
    RetryPolicy,
)
from repro.idx.cache import BlockCache
from repro.idx.dataset import IdxDataset
from repro.idx.idxfile import BytesByteSource, IdxBinaryReader
from repro.network.clock import SimClock
from repro.storage.object_store import ObjectStore
from repro.storage.seal import SealStorage
from repro.storage.transfer import open_remote_idx

SEED_BASE = int(os.environ.get("REPRO_CHAOS_SEED_BASE", "0"))
KEY = "chaos.idx"
BUCKET = "sealed"


class ChaosEnv:
    """Shared fault-free ground truth + the base store under the wrappers."""

    def __init__(self, tmp_path):
        rng = np.random.default_rng(20240811)
        self.array = rng.random((21, 13)).astype(np.float32)
        path = str(tmp_path / KEY)
        ds = IdxDataset.create(path, self.array.shape, bits_per_block=4)
        ds.write(self.array)
        ds.finalize()

        local = IdxDataset.open(path)
        self.reference = local.read()
        self.ref_frames = {r.level: r.data.copy() for r in local.progressive()}
        self.maxh = local.maxh
        local.close()
        assert np.array_equal(self.reference, self.array)

        with open(path, "rb") as fh:
            blob = fh.read()
        reader = IdxBinaryReader(BytesByteSource(blob))
        self.num_blocks = reader.layout.num_blocks
        self.present = [int(b) for b in reader.present_blocks(0, 0)]
        self.offsets = {b: reader.block_entry(0, 0, b)[0] for b in self.present}
        assert 0 < len(self.present) < self.num_blocks  # padded domain: both kinds

        self.base_store = ObjectStore("chaos-base")
        self.base_store.ensure_bucket(BUCKET)
        self.base_store.put(BUCKET, KEY, blob)

    def open(self, *, policy, breaker=None, workers=0, cache=None):
        """Open the remote dataset per production wiring, then arm faults.

        The FaultyStore starts disarmed so the one-time header/table reads
        stay clean; the returned store must be armed by the caller.
        """
        clock = SimClock()
        faulty = FaultyStore(self.base_store, clock=clock)
        seal = SealStorage(store=faulty, clock=clock)
        token = seal.issue_token("chaos", ("read",))
        ds = open_remote_idx(
            seal, KEY, token=token, retry=policy, breaker=breaker,
            workers=workers, cache=cache,
        )
        return ds, clock, faulty

    def predicted_failures(self, plan):
        """Per present block: consecutive failing attempts before success."""
        return {
            b: plan.failures_before_success("get_range", BUCKET, KEY, detail=off)
            for b, off in self.offsets.items()
        }


@pytest.fixture(scope="module")
def env(tmp_path_factory):
    return ChaosEnv(tmp_path_factory.mktemp("chaos"))


def recoverable_plan(seed):
    """A schedule a 4-attempt policy always survives (max 2 faults/key)."""
    return FaultPlan(
        seed,
        error_rate=0.20,
        corrupt_rate=0.15,
        partial_rate=0.10,
        latency_rate=0.15,
        latency_s=0.05,
        max_faults_per_key=2,
    )


def policy_for(seed, **overrides):
    kwargs = dict(max_attempts=4, base_delay=0.05, multiplier=2.0,
                  max_delay=5.0, jitter=0.25, seed=seed)
    kwargs.update(overrides)
    return RetryPolicy(**kwargs)


def remote_of(ds):
    """The RemoteAccess under an optional CachedAccess wrapper."""
    access = ds.access
    return access.inner if hasattr(access, "inner") else access


def assert_no_leaks(remote, cache=None):
    c = remote.counters
    assert not c.truncated
    assert c.blocks_read == len(c.access_log)
    fetcher = remote.fetcher
    if fetcher is not None:
        assert fetcher.stats.in_flight == 0
        assert fetcher.stats.submitted == fetcher.stats.completed
    if cache is not None:
        assert cache.used_bytes <= cache.capacity
        assert len(cache) <= cache.stats.misses


class TestSerialExactAccounting:
    """Serial path: completion is byte-identical and timing is predicted."""

    def test_seed_sweep(self, env):
        for seed in range(SEED_BASE, SEED_BASE + 120):
            plan = recoverable_plan(seed)
            policy = policy_for(seed)
            ds, clock, faulty = env.open(policy=policy)
            faulty.arm(plan)

            data = ds.read()
            assert np.array_equal(data, env.reference), f"seed {seed}: bytes differ"

            failures = env.predicted_failures(plan)
            expected_retries = sum(failures.values())
            expected_backoff = sum(
                policy.backoff_delay(a, token=(0, 0, b))
                for b, k in failures.items()
                for a in range(1, k + 1)
            )
            remote = remote_of(ds)
            snap = remote.retry_stats.snapshot()
            assert snap["retries"] == expected_retries, f"seed {seed}"
            assert snap["attempts"] == snap["calls"] + expected_retries, f"seed {seed}"
            assert snap["exhausted"] == 0, f"seed {seed}"
            assert clock.total_for("retry:backoff") == pytest.approx(
                expected_backoff, abs=1e-12
            ), f"seed {seed}"

            # The latency faults that were delivered are all on the clock.
            injected_latency = sum(
                f.latency_s for f in faulty.injected_faults() if f.kind == LATENCY
            )
            assert clock.total_for("fault:latency") == pytest.approx(
                injected_latency, abs=1e-12
            ), f"seed {seed}"

            # Every present block was read exactly once; counters balance.
            assert remote.counters.blocks_read == snap["calls"], f"seed {seed}"
            assert_no_leaks(remote)
            ds.close()

    def test_faults_were_actually_injected(self, env):
        """The sweep above is vacuous unless schedules really fire."""
        total = 0
        for seed in range(SEED_BASE, SEED_BASE + 20):
            plan = recoverable_plan(seed)
            total += sum(env.predicted_failures(plan).values())
        assert total > 0

    def test_rerun_same_seed_is_identical(self, env):
        """Same seed, fresh wiring: the whole run replays to the float."""
        seed = SEED_BASE + 7
        totals = []
        for _ in range(2):
            ds, clock, faulty = env.open(policy=policy_for(seed))
            faulty.arm(recoverable_plan(seed))
            assert np.array_equal(ds.read(), env.reference)
            totals.append(
                (
                    clock.now,
                    remote_of(ds).retry_stats.snapshot(),
                    [f.kind for f in faulty.injected_faults()],
                )
            )
            ds.close()
        assert totals[0] == totals[1]


class TestParallelPipeline:
    """Concurrent fetch path: identity + invariant checks, no deadlocks."""

    def test_seed_sweep(self, env):
        for seed in range(SEED_BASE + 200, SEED_BASE + 250):
            plan = recoverable_plan(seed)
            cache = BlockCache("1 MiB")
            ds, clock, faulty = env.open(
                policy=policy_for(seed), workers=3, cache=cache
            )
            faulty.arm(plan)

            # Progressive sweep exercises prefetch + incremental refine...
            frames = {r.level: r.data for r in ds.progressive()}
            for level, frame in frames.items():
                assert np.array_equal(frame, env.ref_frames[level]), (
                    f"seed {seed}: level {level} differs"
                )
            # ...then a full re-read rides the warm cache.
            assert np.array_equal(ds.read(), env.reference), f"seed {seed}"

            remote = remote_of(ds)
            assert remote.retry_stats.snapshot()["exhausted"] == 0, f"seed {seed}"
            ds.close()
            assert_no_leaks(remote, cache)
            assert remote.fetcher.stats.resubmitted == 0, f"seed {seed}"

    def test_failed_future_is_resubmitted(self, env):
        """A dead prefetch future must not poison the in-flight table.

        Every attempt of the first retry cycle faults (2 faults per key,
        2-attempt policy), so the prefetched future dies.  Re-prefetching
        the same key inside the same scope must replace the corpse with a
        fresh fetch — which then succeeds, because the store's per-scope
        attempt counter has climbed past the plan's fault cap.
        """
        seed = SEED_BASE + 300
        plan = FaultPlan(seed, error_rate=1.0, max_faults_per_key=2)
        ds, clock, faulty = env.open(
            policy=policy_for(seed, max_attempts=2, base_delay=0.001),
            workers=2,
        )
        faulty.arm(plan)
        remote = remote_of(ds)
        block = env.present[0]

        remote.prefetch(0, 0, [block])
        # Let the future die *unconsumed* (get() would pop it; prefetch
        # must handle the corpse it finds in the table).
        fut = remote.fetcher._inflight[(0, 0, block)]
        assert isinstance(fut.exception(timeout=30), FaultError)

        remote.prefetch(0, 0, [block])  # attempts 3+: past the fault cap
        assert remote.fetcher.stats.resubmitted == 1
        fresh = remote.read_block(0, 0, block)

        local = IdxBinaryReader(
            BytesByteSource(env.base_store.get(BUCKET, KEY))
        ).read_block(0, 0, block)
        assert np.array_equal(fresh, local)
        remote.release_prefetched()
        assert_no_leaks(remote)
        ds.close()


class TestDegradation:
    """Blackouts: progressive refinement degrades instead of crashing."""

    def blackout_plan(self, seed):
        return FaultPlan(
            seed,
            error_rate=0.15,
            blackout_rate=0.12,
            max_faults_per_key=1,
        )

    def test_seed_sweep(self, env):
        degraded_total = 0
        trips_total = 0
        fast_fails_total = 0
        for seed in range(SEED_BASE + 500, SEED_BASE + 540):
            plan = self.blackout_plan(seed)
            breaker = CircuitBreaker(threshold=2, cooldown=1e9)
            ds, clock, faulty = env.open(
                policy=policy_for(seed, max_attempts=2, base_delay=0.01),
                breaker=breaker,
            )
            faulty.arm(plan)

            try:
                frames = list(ds.progressive())
            except FaultError:
                # The very first step failed — nothing to degrade to yet.
                ds.close()
                continue

            assert len(frames) == env.maxh + 1, f"seed {seed}: refinement stalled"
            last_good = None
            for r in frames:
                if r.degraded:
                    degraded_total += 1
                    assert last_good is not None, f"seed {seed}"
                    # A degraded step re-yields the last good frame, flagged.
                    assert r.level == last_good.level, f"seed {seed}"
                    assert np.array_equal(r.data, last_good.data), f"seed {seed}"
                else:
                    assert np.array_equal(
                        r.data, env.ref_frames[r.level]
                    ), f"seed {seed}: clean level {r.level} differs"
                    last_good = r
            # A sweep that ends on a clean step has fully re-converged.
            if not frames[-1].degraded:
                assert np.array_equal(frames[-1].data, env.reference), f"seed {seed}"
            trips_total += breaker.stats.trips
            fast_fails_total += breaker.stats.fast_fails
            assert_no_leaks(remote_of(ds))
            ds.close()
        # Across the sweep the blackout machinery demonstrably engaged.
        assert degraded_total > 0
        assert trips_total > 0
        assert fast_fails_total > 0

    def test_blackout_fails_one_shot_queries(self, env):
        """execute() has no previous frame to fall back on: it raises."""
        for seed in range(SEED_BASE + 500, SEED_BASE + 600):
            plan = self.blackout_plan(seed)
            if not any(
                plan.is_blackout("get_range", BUCKET, KEY, detail=off)
                for off in env.offsets.values()
            ):
                continue
            ds, clock, faulty = env.open(
                policy=policy_for(seed, max_attempts=2, base_delay=0.01)
            )
            faulty.arm(plan)
            with pytest.raises(FaultError):
                ds.read()
            ds.close()
            return
        pytest.fail("no seed in the window blacked out a present block")


class TestHypothesisSchedules:
    """Random schedule parameters, not just random seeds."""

    @given(
        seed=st.integers(min_value=0, max_value=2**32),
        error=st.floats(min_value=0.0, max_value=0.3),
        corrupt=st.floats(min_value=0.0, max_value=0.2),
        partial=st.floats(min_value=0.0, max_value=0.2),
        max_faults=st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=30, deadline=None)
    def test_recoverable_schedules_complete_identically(
        self, env, seed, error, corrupt, partial, max_faults
    ):
        plan = FaultPlan(
            seed,
            error_rate=error,
            corrupt_rate=corrupt,
            partial_rate=partial,
            max_faults_per_key=max_faults,
        )
        policy = policy_for(seed, max_attempts=max_faults + 2, base_delay=0.01)
        ds, clock, faulty = env.open(policy=policy)
        faulty.arm(plan)
        assert np.array_equal(ds.read(), env.reference)
        remote = remote_of(ds)
        snap = remote.retry_stats.snapshot()
        assert snap["exhausted"] == 0
        assert snap["retries"] == sum(env.predicted_failures(plan).values())
        assert_no_leaks(remote)
        ds.close()
