"""Runtime lock-order sanitizer: provoked inversions, long holds,
reentrancy, and the threading.Lock/RLock install hooks."""

from __future__ import annotations

import threading
import time

from repro.analysis.sanitizer import LockOrderSanitizer, TrackedLock


def run_thread(fn):
    t = threading.Thread(target=fn)
    t.start()
    t.join(timeout=10)
    assert not t.is_alive()


def test_deliberate_inversion_is_detected():
    san = LockOrderSanitizer()
    a = san.lock("a")
    b = san.lock("b")

    def t1():
        with a:
            with b:
                pass

    def t2():
        with b:
            with a:
                pass

    # Run the two orders sequentially on separate threads: no actual
    # deadlock occurs, but the order graph gains a -> b and b -> a.
    run_thread(t1)
    run_thread(t2)

    report = san.report()
    assert not report.ok
    assert len(report.inversions) == 1
    inv = report.inversions[0]
    assert set(inv.cycle) == {"a", "b"}
    assert "inversion" in str(inv)


def test_consistent_order_is_clean():
    san = LockOrderSanitizer()
    a = san.lock("a")
    b = san.lock("b")

    def worker():
        for _ in range(10):
            with a:
                with b:
                    pass

    run_thread(worker)
    run_thread(worker)
    report = san.report()
    assert report.ok
    assert report.edges_observed == 1  # a -> b only


def test_three_lock_cycle_is_detected():
    san = LockOrderSanitizer()
    a, b, c = san.lock("a"), san.lock("b"), san.lock("c")
    with a:
        with b:
            pass
    with b:
        with c:
            pass
    with c:
        with a:
            pass
    report = san.report()
    assert len(report.inversions) == 1
    assert set(report.inversions[0].cycle) == {"a", "b", "c"}


def test_rlock_reentry_is_not_an_inversion():
    san = LockOrderSanitizer()
    r = san.rlock("r")
    other = san.lock("other")
    with r:
        with r:  # reentrant: no self-edge
            with other:
                pass
    with r:  # same order again
        with other:
            pass
    report = san.report()
    assert report.ok
    assert report.edges_observed == 1


def test_long_hold_is_recorded():
    san = LockOrderSanitizer(hold_threshold=0.01)
    slow = san.lock("slow")
    with slow:
        time.sleep(0.03)
    report = san.report()
    assert report.ok
    assert len(report.long_holds) == 1
    hold = report.long_holds[0]
    assert hold.name == "slow"
    assert hold.seconds >= 0.01


def test_install_patches_and_uninstall_restores():
    san = LockOrderSanitizer()
    before_lock, before_rlock = threading.Lock, threading.RLock
    san.install()
    try:
        made = threading.Lock()
        assert isinstance(made, TrackedLock)
        rmade = threading.RLock()
        assert isinstance(rmade, TrackedLock)
        with made:
            with rmade:
                pass
    finally:
        san.uninstall()
    assert threading.Lock is before_lock
    assert threading.RLock is before_rlock
    assert san.report().locks_created >= 2


def test_installed_sanitizer_sees_inversion_in_patched_locks():
    san = LockOrderSanitizer()
    with san:  # context manager form of install/uninstall
        a = threading.Lock()
        b = threading.Lock()
        with a:
            with b:
                pass
        with b:
            with a:
                pass
    assert not san.report().ok


def test_tracked_locks_work_with_condition_and_event():
    # threading.Event/Condition built on tracked locks must still function:
    # the sanitizer is exercised by the whole suite under REPRO_SANITIZE=1.
    san = LockOrderSanitizer()
    with san:
        event = threading.Event()
        results = []

        def waiter():
            results.append(event.wait(timeout=5))

        t = threading.Thread(target=waiter)
        t.start()
        event.set()
        t.join(timeout=5)
    assert results == [True]
    assert san.report().ok


def test_non_blocking_acquire_paths():
    san = LockOrderSanitizer()
    lock = san.lock("probe")
    assert lock.acquire(False) is True
    assert lock.locked()
    lock.release()
    assert not lock.locked()

    grabbed = []

    def contender():
        grabbed.append(lock.acquire(False))

    with lock:
        run_thread(contender)
    assert grabbed == [False]
    assert san.report().ok


def test_reset_clears_diagnostics():
    san = LockOrderSanitizer()
    a, b = san.lock("a"), san.lock("b")
    with a:
        with b:
            pass
    with b:
        with a:
            pass
    assert not san.report().ok
    san.reset()
    report = san.report()
    assert report.ok and report.edges_observed == 0
