"""Equivalence and accounting tests for the vectorized query engine.

The grouped gather kernel, the fused per-query gather, and incremental
``progressive()`` must be byte-identical to the reference per-level
masked-scan engine (kept as ``BoxQuery._gather_scan``) for every (box,
resolution) pair — and each incremental refinement may read only the
blocks new at its level.
"""

from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.idx import BoxQuery, IdxDataset
from repro.idx.hzorder import PLAN_CACHE, PlanCache

SHAPE = (32, 48)


def _reference_execute(ds: IdxDataset, box, h_end: int):
    """The pre-vectorization engine: per-level masked-scan gather+scatter.

    Mirrors the old ``BoxQuery.execute`` exactly (one ``_gather_scan``
    per level, shared block memo, uncached plans) so the new engine can
    be compared byte-for-byte against it.
    """
    q = ds.query(box=box, resolution=h_end)
    dtype = q.header.field_dtype(q.field_idx)
    offsets, strides, shape = q._output_grid(h_end)
    data = np.full(shape, q.header.fill_value, dtype=dtype)
    found = 0
    if not any(s == 0 for s in shape):
        memo = {}
        for h in range(h_end + 1):
            level = q.hz.level_plan(h, q.box, cache=None)
            if level is None:
                continue
            coords, hz_addr = level
            values = q._gather_scan(hz_addr, dtype, memo)
            found += values.size
            index = tuple(
                (coords[a] - offsets[a]) // strides[a] for a in range(q.bitmask.ndim)
            )
            data[np.ix_(*index)] = values.reshape(tuple(len(c) for c in coords))
    return SimpleNamespace(data=data, found=found, offsets=offsets, strides=strides)


_DATASETS = {}


def _dataset(dtype: str, bits: int):
    """Finalized dataset + source array, cached per (dtype, block size)."""
    key = (dtype, bits)
    if key not in _DATASETS:
        import tempfile

        rng = np.random.default_rng(hash(key) % (2**32))
        if dtype == "float32":
            arr = rng.random(SHAPE, dtype=np.float64).astype(np.float32)
        else:
            arr = rng.integers(1, 200, SHAPE).astype(dtype)
        path = tempfile.mktemp(suffix=".idx")
        ds = IdxDataset.create(
            path, dims=SHAPE, fields={"v": dtype}, bits_per_block=bits
        )
        ds.write(arr)
        ds.finalize()
        _DATASETS[key] = (IdxDataset.open(path), arr)
    return _DATASETS[key]


@given(
    ly=st.integers(0, SHAPE[0] - 1),
    lx=st.integers(0, SHAPE[1] - 1),
    height=st.integers(1, SHAPE[0]),
    width=st.integers(1, SHAPE[1]),
    bits=st.sampled_from([4, 6, 9]),
    dtype=st.sampled_from(["float32", "int32", "uint8"]),
    end_frac=st.floats(0.0, 1.0),
    start_frac=st.floats(0.0, 1.0),
)
@settings(max_examples=40, deadline=None)
def test_property_engine_matches_reference(
    ly, lx, height, width, bits, dtype, end_frac, start_frac
):
    """execute() and every progressive() step are byte-identical to the
    reference brute-force engine across boxes, dtypes, block sizes, and
    start/end resolutions — and to the NumPy ground truth."""
    ds, arr = _dataset(dtype, bits)
    box = ((ly, lx), (min(SHAPE[0], ly + height), min(SHAPE[1], lx + width)))
    end = round(end_frac * ds.maxh)
    start = round(start_frac * end)

    q = ds.query(box=box, resolution=end)
    steps = list(q.progressive(start_resolution=start))
    assert [r.level for r in steps] == list(range(start, end + 1))
    for result in steps:
        ref = _reference_execute(ds, box, result.level)
        assert result.data.tobytes() == ref.data.tobytes()
        assert result.data.dtype == ref.data.dtype
        assert result.data.shape == ref.data.shape
        assert result.found == ref.found
        assert result.offsets == ref.offsets
        assert result.strides == ref.strides
        # Ground truth: the lattice is exactly the strided NumPy subsample.
        if result.data.size:
            sub = arr[np.ix_(result.axis_coords(0), result.axis_coords(1))]
            assert np.array_equal(result.data, sub)

    # A direct execute at the end resolution matches the last step.
    direct = ds.query(box=box, resolution=end).execute()
    assert direct.data.tobytes() == steps[-1].data.tobytes()
    assert direct.found == steps[-1].found


class TestGroupedGatherKernel:
    def test_kernels_agree_on_full_query(self, idx_factory, rng):
        ds = idx_factory(rng.random((64, 64)).astype(np.float32), bits_per_block=6)
        q = ds.query()
        dtype = q.header.field_dtype(q.field_idx)
        parts = []
        for h in range(ds.maxh + 1):
            level = q.hz.level_plan(h, q.box, cache=None)
            if level is not None:
                parts.append(level[1])
        all_hz = np.concatenate(parts)
        grouped = q._gather(all_hz, dtype)
        scanned = q._gather_scan(all_hz, dtype)
        assert grouped.tobytes() == scanned.tobytes()

    def test_memo_prevents_rereads(self, idx_factory, rng):
        ds = idx_factory(rng.random((32, 32)).astype(np.float32), bits_per_block=4)
        q = ds.query()
        hz = np.arange(64, dtype=np.uint64)
        memo = {}
        q._gather(hz, np.dtype(np.float32), memo)
        before = ds.access.counters.blocks_read
        q._gather(hz, np.dtype(np.float32), memo)
        assert ds.access.counters.blocks_read == before

    def test_group_by_block_segments(self, idx_factory, rng):
        ds = idx_factory(rng.random((32, 32)).astype(np.float32), bits_per_block=4)
        hz = rng.integers(0, ds.layout.total_samples, 500).astype(np.uint64)
        order, block_ids, bounds = ds.layout.group_by_block(hz)
        assert bounds[0] == 0 and bounds[-1] == hz.size
        covered = np.zeros(hz.size, dtype=bool)
        for i, bid in enumerate(block_ids.tolist()):
            seg = order[bounds[i] : bounds[i + 1]]
            assert (ds.layout.block_of(hz[seg]) == bid).all()
            covered[seg] = True
        assert covered.all()


class TestIncrementalBlockReads:
    def _build(self, tmp_path, rng, bits=6):
        a = rng.random((64, 64)).astype(np.float32)
        path = str(tmp_path / "inc.idx")
        ds = IdxDataset.create(path, dims=a.shape, bits_per_block=bits)
        ds.write(a)
        ds.finalize()
        return IdxDataset.open(path)

    @pytest.mark.parametrize("start", [0, 3])
    def test_each_step_reads_only_new_blocks(self, tmp_path, rng, start):
        ds = self._build(tmp_path, rng)
        q = ds.query()
        counters = ds.access.counters
        seen = set()
        snap = counters.snapshot()
        for result in q.progressive(start_resolution=start):
            h = result.level
            reads = {b for (_, _, b) in counters.blocks_since(snap)}
            snap = counters.snapshot()
            lo = start if h == start else h  # first step covers levels 0..start
            expected = set()
            for level in range(0 if h == lo == start else h, h + 1):
                plan = q.hz.level_plan(level, q.box, cache=None)
                if plan is not None:
                    expected |= set(np.unique(q.layout.block_of(plan[1])).tolist())
            assert reads == expected - seen
            seen |= expected

    def test_sweep_total_reads_are_distinct_blocks(self, tmp_path, rng):
        ds = self._build(tmp_path, rng)
        list(ds.query().progressive(0))
        counters = ds.access.counters
        log = [b for (_, _, b) in counters.access_log]
        # O(L) sweep: no block is ever read twice across the whole sweep.
        assert len(log) == len(set(log))
        # The naive per-tick engine re-reads every coarser level's blocks.
        naive = IdxDataset.open(ds.path)
        for h in range(naive.maxh + 1):
            naive.read(resolution=h)
        assert naive.access.counters.blocks_read > counters.blocks_read


class TestResolutionCap:
    def test_execute_rejects_finer_than_constructed(self, idx_factory, rng):
        ds = idx_factory(rng.random((32, 32)).astype(np.float32))
        q = ds.query(resolution=ds.maxh - 3)
        with pytest.raises(ValueError):
            q.execute(resolution=ds.maxh)
        with pytest.raises(ValueError):
            q.execute(resolution=ds.maxh - 2)

    def test_rejection_names_cap_request_and_box(self, idx_factory, rng):
        """The cap error must carry everything needed to debug it."""
        ds = idx_factory(rng.random((32, 32)).astype(np.float32))
        q = ds.query(box=((3, 5), (17, 29)), resolution=ds.maxh - 3)
        with pytest.raises(ValueError) as err:
            q.execute(resolution=ds.maxh - 1)
        message = str(err.value)
        assert f"end_resolution={ds.maxh - 3}" in message  # the cap
        assert f"resolution {ds.maxh - 1}" in message  # what was asked
        assert str(q.box) in message  # which query
        assert "build a new query" in message  # the remedy

    def test_execute_allows_coarser_override(self, idx_factory, rng):
        ds = idx_factory(rng.random((32, 32)).astype(np.float32))
        q = ds.query(resolution=ds.maxh - 3)
        result = q.execute(resolution=ds.maxh - 5)
        assert result.level == ds.maxh - 5
        assert result.data.tobytes() == ds.read_result(resolution=ds.maxh - 5).data.tobytes()


class TestPlanCache:
    def test_hit_returns_identical_plan(self, idx_factory, rng):
        ds = idx_factory(rng.random((32, 32)).astype(np.float32))
        cache = PlanCache("1 MiB")
        from repro.util.arrays import Box

        box = Box((3, 5), (29, 30))
        first = ds.hzorder.level_plan(4, box, cache=cache)
        again = ds.hzorder.level_plan(4, box, cache=cache)
        assert cache.stats.misses == 1 and cache.stats.hits == 1
        assert again is first  # the cached object itself
        fresh = ds.hzorder.level_plan(4, box, cache=None)
        assert np.array_equal(again[1], fresh[1])
        for cached_c, fresh_c in zip(again[0], fresh[0]):
            assert np.array_equal(cached_c, fresh_c)

    def test_cached_arrays_are_read_only(self, idx_factory, rng):
        ds = idx_factory(rng.random((32, 32)).astype(np.float32))
        cache = PlanCache("1 MiB")
        from repro.util.arrays import Box

        coords, hz = ds.hzorder.level_plan(5, Box((0, 0), (32, 32)), cache=cache)
        assert not hz.flags.writeable
        assert all(not c.flags.writeable for c in coords)

    def test_none_plans_are_cached(self, idx_factory, rng):
        ds = idx_factory(rng.random((32, 32)).astype(np.float32))
        cache = PlanCache("1 MiB")
        from repro.util.arrays import Box

        # A 1x1 box at an odd coordinate has no level-1 delta samples.
        box = Box((1, 1), (2, 2))
        assert ds.hzorder.level_plan(1, box, cache=cache) is None
        assert ds.hzorder.level_plan(1, box, cache=cache) is None
        assert cache.stats.misses == 1 and cache.stats.hits == 1

    def test_eviction_under_pressure(self, idx_factory, rng):
        ds = idx_factory(rng.random((32, 32)).astype(np.float32))
        cache = PlanCache(2048)
        from repro.util.arrays import Box

        for h in range(ds.maxh + 1):
            ds.hzorder.level_plan(h, Box((0, 0), (32, 32)), cache=cache)
        assert cache.stats.evictions > 0
        assert cache.used_bytes <= 2048
        # Eviction accounting: bytes leave the budget as entries do, and
        # admitted volume is conserved between residents and evictees.
        assert cache.stats.evicted_bytes > 0
        assert (
            cache.stats.inserted_bytes
            == cache.used_bytes + cache.stats.evicted_bytes
        )

    def test_process_cache_serves_repeated_queries(self, idx_factory, rng):
        ds = idx_factory(rng.random((32, 32)).astype(np.float32))
        box = ((2, 2), (30, 30))
        ds.read(box=box)
        hits0 = PLAN_CACHE.stats.hits
        out1 = ds.read(box=box)
        assert PLAN_CACHE.stats.hits > hits0  # second query reuses every plan
        out2 = ds.read(box=box)
        assert np.array_equal(out1, out2)


class TestDashboardRefineFrames:
    def test_sweep_matches_per_tick_frames(self, idx_factory, rng):
        from repro.dashboard.session import DashboardSession

        ds = idx_factory(rng.random((64, 64)).astype(np.float32), bits_per_block=6)
        session = DashboardSession(viewport=(32, 32))
        session.register_dataset("d", ds)
        session.set_range(0.0, 1.0)
        frames = list(session.refine_frames(start_resolution=2))
        assert [lvl for lvl, _ in frames] == list(
            range(2, session.effective_resolution() + 1)
        )
        # Each frame is byte-identical to the per-tick slider path.
        for lvl, frame in frames:
            session.set_resolution(lvl)
            assert np.array_equal(frame, session.current_frame())
        session.set_resolution(None)

    def test_sweep_never_rereads_blocks(self, idx_factory, rng):
        from repro.dashboard.session import DashboardSession

        ds = idx_factory(rng.random((64, 64)).astype(np.float32), bits_per_block=6)
        session = DashboardSession(viewport=(16, 16))
        session.register_dataset("d", ds)
        session.set_range(0.0, 1.0)
        before = ds.access.counters.snapshot()
        list(session.refine_frames())
        log = [b for (_, _, b) in ds.access.counters.blocks_since(before)]
        assert len(log) == len(set(log))
