"""Window samplers and the double-buffered loader.

Epoch orderings must be restart-stable pure functions of
``(seed, epoch)``; the grid sampler must cover the scene exactly; and
the loader must yield identical batches with prefetch on or off — the
worker thread changes wall time, never bytes.
"""

import tempfile

import numpy as np
import pytest

from repro.idx import IdxDataset
from repro.idx.access import AccessScope, use_scope
from repro.ml import (
    Batch,
    GridWindowSampler,
    RandomWindowSampler,
    Window,
    WindowLoader,
)
from repro.util.arrays import Box

SHAPE = (32, 48)

_DS = {}


def _dataset():
    if "ds" not in _DS:
        rng = np.random.default_rng(7)
        arr = rng.random(SHAPE, dtype=np.float64).astype(np.float32)
        path = tempfile.mktemp(suffix=".idx")
        ds = IdxDataset.create(
            path, dims=SHAPE, fields={"v": "float32"}, bits_per_block=6
        )
        ds.write(arr)
        ds.finalize()
        _DS["ds"] = (IdxDataset.open(path), arr)
    return _DS["ds"]


class TestRandomWindowSampler:
    def test_same_seed_same_epoch_identical(self):
        a = RandomWindowSampler(SHAPE, 8, 64, seed=11).epoch(3)
        b = RandomWindowSampler(SHAPE, 8, 64, seed=11).epoch(3)
        assert a == b  # Window is a frozen dataclass: == is structural

    def test_different_seed_differs(self):
        a = RandomWindowSampler(SHAPE, 8, 64, seed=11).epoch(0)
        b = RandomWindowSampler(SHAPE, 8, 64, seed=12).epoch(0)
        assert a != b

    def test_different_epoch_differs(self):
        s = RandomWindowSampler(SHAPE, 8, 64, seed=11)
        assert s.epoch(0) != s.epoch(1)

    def test_windows_full_size_and_in_bounds(self):
        for win in RandomWindowSampler(SHAPE, (8, 12), 100, seed=3).epoch(0):
            lo, hi = win.box.lo, win.box.hi
            assert tuple(h - l for l, h in zip(lo, hi)) == (8, 12)
            assert all(l >= 0 for l in lo)
            assert all(h <= d for h, d in zip(hi, SHAPE))

    def test_resolution_modes(self):
        none = RandomWindowSampler(SHAPE, 8, 10, seed=1).epoch(0)
        assert all(w.resolution is None for w in none)
        pinned = RandomWindowSampler(SHAPE, 8, 10, seed=1, resolutions=5).epoch(0)
        assert all(w.resolution == 5 for w in pinned)
        mixed = RandomWindowSampler(
            SHAPE, 8, 50, seed=1, resolutions=(4, 6, 8)
        ).epoch(0)
        assert {w.resolution for w in mixed} <= {4, 6, 8}
        assert len({w.resolution for w in mixed}) > 1
        # the per-window draw replays with the epoch
        again = RandomWindowSampler(
            SHAPE, 8, 50, seed=1, resolutions=(4, 6, 8)
        ).epoch(0)
        assert mixed == again

    def test_validation(self):
        with pytest.raises(ValueError, match="exceeds scene dims"):
            RandomWindowSampler(SHAPE, 64, 4, seed=0)
        with pytest.raises(ValueError, match="count"):
            RandomWindowSampler(SHAPE, 8, 0, seed=0)
        with pytest.raises(ValueError, match="rank"):
            RandomWindowSampler(SHAPE, (8, 8, 8), 4, seed=0)
        with pytest.raises(ValueError, match="must not be empty"):
            RandomWindowSampler(SHAPE, 8, 4, seed=0, resolutions=())

    def test_len_and_iter(self):
        s = RandomWindowSampler(SHAPE, 8, 17, seed=2)
        assert len(s) == 17
        assert list(s) == s.epoch(0)


class TestGridWindowSampler:
    def test_exact_coverage(self):
        """Tiles (default stride) cover every cell of the scene."""
        covered = np.zeros(SHAPE, dtype=bool)
        for win in GridWindowSampler(SHAPE, (10, 9)):
            (ly, lx), (hy, hx) = win.box.lo, win.box.hi
            covered[ly:hy, lx:hx] = True
            assert hy - ly == 10 and hx - lx == 9
        assert covered.all()

    def test_flush_final_tile(self):
        origins = GridWindowSampler._axis_origins(48, 10, 10)
        assert origins[-1] == 38  # pinned at dim - window
        assert GridWindowSampler._axis_origins(40, 10, 10)[-1] == 30  # no dup

    def test_overlapping_stride(self):
        s = GridWindowSampler(SHAPE, 16, stride=8)
        boxes = [w.box for w in s]
        assert len(boxes) == len(set(boxes))  # flush tile not duplicated
        covered = np.zeros(SHAPE, dtype=int)
        for b in boxes:
            covered[b.lo[0] : b.hi[0], b.lo[1] : b.hi[1]] += 1
        assert (covered >= 1).all()
        assert covered.max() > 1  # real overlap

    def test_unseeded_order_stable(self):
        s = GridWindowSampler(SHAPE, 16)
        assert s.epoch(0) == s.epoch(1) == list(s)

    def test_seeded_shuffle_restart_stable(self):
        a = GridWindowSampler(SHAPE, 16, seed=5)
        b = GridWindowSampler(SHAPE, 16, seed=5)
        assert a.epoch(2) == b.epoch(2)
        assert a.epoch(0) != a.epoch(1)  # epochs get distinct shuffles
        assert sorted(a.epoch(0), key=lambda w: w.box.lo) == sorted(
            a.epoch(1), key=lambda w: w.box.lo
        )  # same tiles, different order

    def test_resolution_applied(self):
        assert all(
            w.resolution == 4 for w in GridWindowSampler(SHAPE, 16, resolution=4)
        )


class TestWindowLoader:
    def test_prefetch_parity_and_correctness(self):
        """Prefetch on/off yield identical batches, both matching BoxQuery."""
        ds, arr = _dataset()
        sampler = RandomWindowSampler(SHAPE, 12, 20, seed=9)
        with WindowLoader(ds, sampler, batch_size=6) as on:
            batches_on = list(on.batches(0))
        with WindowLoader(ds, sampler, batch_size=6, prefetch=False) as off:
            batches_off = list(off.batches(0))
        assert len(batches_on) == len(batches_off) == 4  # ceil(20 / 6)
        for bon, boff in zip(batches_on, batches_off):
            assert bon.windows == boff.windows
            for won, ron, roff in zip(bon.windows, bon.arrays, boff.arrays):
                np.testing.assert_array_equal(ron, roff)
                (ly, lx), (hy, hx) = won.box.lo, won.box.hi
                np.testing.assert_array_equal(ron, arr[ly:hy, lx:hx])

    def test_stack_and_stats(self):
        ds, _ = _dataset()
        sampler = GridWindowSampler(SHAPE, 16)
        with WindowLoader(ds, sampler, batch_size=3) as loader:
            for batch in loader.batches(0):
                stacked = batch.stack()
                assert stacked.shape == (len(batch), 16, 16)
            assert loader.stats.batches == 2
            assert loader.stats.windows == len(sampler)
            assert loader.stats.execute_s > 0

    def test_stack_mixed_shapes_raises(self):
        ds, _ = _dataset()
        maxh = ds.header.bitmask_obj().maxh
        windows = [
            Window(Box((0, 0), (16, 16)), maxh),
            Window(Box((0, 0), (16, 16)), maxh - 2),
        ]

        class OneBatch:
            def epoch(self, n):
                return windows

        with WindowLoader(ds, OneBatch(), batch_size=2) as loader:
            (batch,) = list(loader.batches(0))
            with pytest.raises(ValueError, match="mixed-shape"):
                batch.stack()
            assert len(batch.arrays) == 2

    def test_scope_attribution_through_worker(self):
        """I/O executed on the prefetch thread lands on the given scope."""
        ds, _ = _dataset()
        scope = AccessScope("trainer")
        sampler = RandomWindowSampler(SHAPE, 12, 8, seed=1)
        with WindowLoader(ds, sampler, batch_size=4, scope=scope) as loader:
            list(loader.batches(0))
        assert scope.counters.blocks_read > 0

    def test_epochs_differ_and_replay(self):
        ds, _ = _dataset()
        sampler = RandomWindowSampler(SHAPE, 12, 8, seed=1)
        with WindowLoader(ds, sampler, batch_size=4) as loader:
            e0 = [w for b in loader.batches(0) for w in b.windows]
            e1 = [w for b in loader.batches(1) for w in b.windows]
            e0_again = [w for b in loader.batches(0) for w in b.windows]
        assert e0 != e1
        assert e0 == e0_again

    def test_close_idempotent_and_guards(self):
        ds, _ = _dataset()
        sampler = GridWindowSampler(SHAPE, 16)
        loader = WindowLoader(ds, sampler, batch_size=4)
        loader.close()
        loader.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            list(loader.batches(0))

    def test_validation(self):
        ds, _ = _dataset()
        sampler = GridWindowSampler(SHAPE, 16)
        with pytest.raises(ValueError, match="batch_size"):
            WindowLoader(ds, sampler, batch_size=0)
        with pytest.raises(TypeError, match="Access layer"):
            WindowLoader(object(), sampler, batch_size=4)

    def test_accepts_raw_access(self):
        ds, arr = _dataset()
        sampler = GridWindowSampler(SHAPE, (32, 48))
        with WindowLoader(ds.access, sampler, batch_size=1) as loader:
            (batch,) = list(loader.batches(0))
        assert isinstance(batch, Batch)
        np.testing.assert_array_equal(batch.arrays[0], arr)
