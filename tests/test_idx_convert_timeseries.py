"""Tests for NetCDF time-series -> multi-timestep IDX conversion."""

import numpy as np
import pytest

from repro.formats.ncdf import NcdfFile, write_ncdf
from repro.idx import IdxDataset, ncdf_to_idx
from repro.idx.idxfile import IdxError


@pytest.fixture
def temporal_nc(tmp_path, rng):
    """(time, y, x) soil moisture plus a static elevation grid."""
    sm = rng.random((5, 16, 24)).astype(np.float32)
    elev = rng.random((16, 24)).astype(np.float32) * 1000
    nc = NcdfFile(attrs={"title": "temporal test"})
    nc.add_variable("soil_moisture", ("time", "y", "x"), sm)
    nc.add_variable("elevation", ("y", "x"), elev)
    path = str(tmp_path / "ts.nc")
    write_ncdf(path, nc)
    return path, sm, elev


class TestTemporalConversion:
    def test_timesteps_created(self, temporal_nc, tmp_path):
        path, sm, _ = temporal_nc
        idx = str(tmp_path / "ts.idx")
        ncdf_to_idx(path, idx)
        ds = IdxDataset.open(idx)
        assert ds.timesteps == (0, 1, 2, 3, 4)
        assert ds.dims == (16, 24)

    def test_per_step_content(self, temporal_nc, tmp_path):
        path, sm, _ = temporal_nc
        idx = str(tmp_path / "ts.idx")
        ncdf_to_idx(path, idx)
        ds = IdxDataset.open(idx)
        for t in range(5):
            assert np.array_equal(ds.read(field="soil_moisture", time=t), sm[t]), t

    def test_static_variable_repeats(self, temporal_nc, tmp_path):
        path, _, elev = temporal_nc
        idx = str(tmp_path / "ts.idx")
        ncdf_to_idx(path, idx)
        ds = IdxDataset.open(idx)
        for t in (0, 4):
            assert np.array_equal(ds.read(field="elevation", time=t), elev)

    def test_custom_time_dimension_name(self, tmp_path, rng):
        data = rng.random((3, 8, 8)).astype(np.float32)
        nc = NcdfFile()
        nc.add_variable("v", ("month", "y", "x"), data)
        src = str(tmp_path / "m.nc")
        write_ncdf(src, nc)
        idx = str(tmp_path / "m.idx")
        ncdf_to_idx(src, idx, time_dimension="month")
        ds = IdxDataset.open(idx)
        assert len(ds.timesteps) == 3
        assert np.array_equal(ds.read(field="v", time=2), data[2])

    def test_unnamed_first_dim_is_spatial(self, tmp_path, rng):
        """A 3-D variable whose first dim is NOT the time name stays 3-D."""
        data = rng.random((4, 8, 8)).astype(np.float32)
        nc = NcdfFile()
        nc.add_variable("v", ("z", "y", "x"), data)
        src = str(tmp_path / "v.nc")
        write_ncdf(src, nc)
        idx = str(tmp_path / "v.idx")
        ncdf_to_idx(src, idx)
        ds = IdxDataset.open(idx)
        assert ds.dims == (4, 8, 8)
        assert ds.timesteps == (0,)
        assert np.array_equal(ds.read(field="v"), data)

    def test_time_length_conflict_rejected(self, tmp_path, rng):
        # A well-formed netCDF cannot express two lengths for one dim
        # name (NcdfFile rejects it at build time)...
        nc = NcdfFile()
        nc.add_variable("a", ("time", "y", "x"), rng.random((3, 8, 8)).astype(np.float32))
        from repro.formats.ncdf import NcdfError

        with pytest.raises(NcdfError):
            nc.add_variable("b", ("time", "y", "x"), rng.random((5, 8, 8)).astype(np.float32))
        # ...so the converter's defensive check is driven by hand-building
        # a structurally inconsistent file model (corrupt-input hardening).
        bad = NcdfFile()
        bad.variables = {
            "a": rng.random((3, 8, 8)).astype(np.float32),
            "b": rng.random((5, 8, 8)).astype(np.float32),
        }
        bad.var_dims = {"a": ("time", "y", "x"), "b": ("time", "y", "x")}
        bad.dims = {"time": 3, "y": 8, "x": 8}

        import repro.idx.convert as convert_mod

        original = convert_mod.read_ncdf
        convert_mod.read_ncdf = lambda _path: bad
        try:
            with pytest.raises(IdxError, match="time length"):
                ncdf_to_idx("ignored.nc", str(tmp_path / "bad.idx"))
        finally:
            convert_mod.read_ncdf = original

    def test_spatial_conflict_rejected(self, tmp_path, rng):
        nc = NcdfFile()
        nc.add_variable("a", ("time", "y", "x"), rng.random((3, 8, 8)).astype(np.float32))
        nc.add_variable("b", ("q", "p"), rng.random((4, 4)).astype(np.float32))
        src = str(tmp_path / "bad.nc")
        write_ncdf(src, nc)
        with pytest.raises(IdxError, match="multiple grids"):
            ncdf_to_idx(src, str(tmp_path / "bad.idx"))

    def test_temporal_dashboard_round_trip(self, temporal_nc, tmp_path):
        """The converted series drives the dashboard time slider."""
        from repro.dashboard import DashboardSession

        path, sm, _ = temporal_nc
        idx = str(tmp_path / "ts.idx")
        ncdf_to_idx(path, idx)
        session = DashboardSession(viewport=(16, 16))
        session.open_file("series", idx)
        session.select_field("soil_moisture")
        session.time_slider(3)
        frame_data = session.fetch_data().data
        assert np.array_equal(frame_data, sm[3])
