"""Worklist-engine tests: may/must joins, loop convergence, divergence."""

from __future__ import annotations

import ast
import textwrap

import pytest

from repro.analysis.cfg import STMT, build_cfg, iter_functions
from repro.analysis.dataflow import (
    DataflowDivergence,
    ForwardAnalysis,
    gen_kill_transfer,
)


def cfg_of(source: str, name: str = "f"):
    tree = ast.parse(textwrap.dedent(source).lstrip("\n"))
    for qualname, func, _cls in iter_functions(tree):
        if qualname == name:
            return build_cfg(func)
    raise AssertionError(f"no function {name!r} in snippet")


def nid_at(cfg, line: int) -> int:
    for node in cfg.iter_nodes():
        if node.kind == STMT and node.lineno == line:
            return node.nid
    raise AssertionError(f"no stmt node at line {line}")


DIAMOND = """
    def f(c):
        if c:
            x = 1
        else:
            y = 2
        return 0
"""


def assign_transfer(node, facts):
    """Gen the assigned name at single-target Assign statements."""
    stmt = node.stmt
    if isinstance(stmt, ast.Assign) and isinstance(stmt.targets[0], ast.Name):
        return facts | {stmt.targets[0].id}
    return facts


def test_may_join_unions_across_diamond():
    cfg = cfg_of(DIAMOND)
    result = ForwardAnalysis(cfg, transfer=assign_transfer, join="may").run()
    at_join = result.in_of(nid_at(cfg, 6))
    assert at_join == {"x", "y"}


def test_must_join_intersects_across_diamond():
    cfg = cfg_of(DIAMOND)
    result = ForwardAnalysis(cfg, transfer=assign_transfer, join="must").run()
    at_join = result.in_of(nid_at(cfg, 6))
    # Neither x nor y is assigned on *every* path (the else arm lacks x,
    # and the if head itself is a third joining path for the no-else shape).
    assert at_join == frozenset()


def test_must_join_keeps_facts_common_to_all_paths():
    cfg = cfg_of(
        """
        def f(c):
            common = 0
            if c:
                x = 1
            else:
                y = 2
            return common
        """
    )
    result = ForwardAnalysis(cfg, transfer=assign_transfer, join="must").run()
    assert result.in_of(nid_at(cfg, 7)) == {"common"}


def test_loop_converges_and_back_edge_does_not_erase_facts():
    cfg = cfg_of(
        """
        def f(n):
            total = 0
            while n:
                n = n - 1
            return total
        """
    )
    result = ForwardAnalysis(cfg, transfer=assign_transfer, join="must").run()
    # `total` is assigned before the loop on every path, so it must-hold
    # at the return even though the back edge re-joins the loop head.
    assert "total" in result.in_of(nid_at(cfg, 5))
    assert "n" not in result.in_of(nid_at(cfg, 3))  # head: first visit lacks it


def test_gen_kill_transfer_applies_kill_before_gen():
    cfg = cfg_of(
        """
        def f():
            a = 1
            a = 2
            return a
        """
    )
    first, second = nid_at(cfg, 2), nid_at(cfg, 3)
    transfer = gen_kill_transfer(
        gen={first: frozenset({"a@2"}), second: frozenset({"a@3"})},
        kill={second: frozenset({"a@2"})},
    )
    result = ForwardAnalysis(cfg, transfer=transfer, join="may").run()
    assert result.in_of(nid_at(cfg, 4)) == {"a@3"}


def test_init_facts_flow_from_entry():
    cfg = cfg_of(
        """
        def f():
            return 0
        """
    )
    result = ForwardAnalysis(
        cfg, transfer=lambda node, facts: facts, init=frozenset({"seed"})
    ).run()
    assert result.in_of(nid_at(cfg, 2)) == {"seed"}
    assert result.reached(cfg.exit)


def test_unreachable_nodes_report_empty_and_unreached():
    cfg = cfg_of(
        """
        def f():
            return 0
            dead = 1
        """
    )
    result = ForwardAnalysis(cfg, transfer=assign_transfer).run()
    dead = nid_at(cfg, 3)
    assert not result.reached(dead)
    assert result.in_of(dead) == frozenset()


def test_non_monotone_transfer_raises_divergence():
    cfg = cfg_of(
        """
        def f(n):
            while n:
                n = n - 1
            return n
        """
    )

    def oscillating(node, facts):
        # The loop body flips a fact on and off while every other node
        # passes through: the head's join keeps feeding the flipped value
        # back around the cycle, so no fixed point exists.
        if node.kind == STMT and node.lineno == 3:
            return frozenset() if "tick" in facts else frozenset({"tick"})
        return facts

    with pytest.raises(DataflowDivergence):
        ForwardAnalysis(cfg, transfer=oscillating, max_passes=200).run()


def test_bad_join_rejected():
    cfg = cfg_of(
        """
        def f():
            return 0
        """
    )
    with pytest.raises(ValueError):
        ForwardAnalysis(cfg, transfer=lambda n, f: f, join="sometimes")
