"""Tests for palettes, rendering, and slicing."""

import numpy as np
import pytest

from repro.dashboard.palettes import PALETTES, Palette, get_palette
from repro.dashboard.render import pick_resolution_for_viewport, render_raster, render_to_size
from repro.dashboard.slicing import slice_horizontal, slice_plane, slice_vertical
from repro.idx.bitmask import Bitmask


class TestPalette:
    def test_known_palettes_exist(self):
        for name in ("viridis", "terrain", "gray", "magma", "coolwarm", "aspect"):
            assert name in PALETTES

    def test_get_palette_error_lists_options(self):
        with pytest.raises(KeyError, match="viridis"):
            get_palette("jet")

    def test_lut_shape_and_dtype(self):
        lut = PALETTES["viridis"].lut()
        assert lut.shape == (256, 3)
        assert lut.dtype == np.uint8

    def test_lut_endpoints_match_anchors(self):
        gray = PALETTES["gray"].lut()
        assert gray[0].tolist() == [0, 0, 0]
        assert gray[-1].tolist() == [255, 255, 255]

    def test_apply_shape(self):
        out = PALETTES["viridis"].apply(np.zeros((5, 7)))
        assert out.shape == (5, 7, 3)
        assert out.dtype == np.uint8

    def test_apply_range_mapping(self):
        gray = PALETTES["gray"]
        data = np.array([[0.0, 50.0, 100.0]])
        out = gray.apply(data, vmin=0, vmax=100)
        assert out[0, 0].tolist() == [0, 0, 0]
        assert out[0, 2].tolist() == [255, 255, 255]
        assert 120 < out[0, 1, 0] < 135

    def test_apply_clamps_out_of_range(self):
        gray = PALETTES["gray"]
        out = gray.apply(np.array([[-10.0, 10.0]]), vmin=0, vmax=1)
        assert out[0, 0, 0] == 0
        assert out[0, 1, 0] == 255

    def test_nan_gets_bad_color(self):
        out = PALETTES["viridis"].apply(np.array([[np.nan, 1.0]]))
        assert out[0, 0].tolist() == list(PALETTES["viridis"].bad_color)

    def test_dynamic_range_defaults(self):
        gray = PALETTES["gray"]
        out = gray.apply(np.array([[5.0, 15.0]]))
        assert out[0, 0, 0] == 0 and out[0, 1, 0] == 255

    def test_constant_data_no_crash(self):
        out = PALETTES["gray"].apply(np.full((3, 3), 7.0))
        assert out.shape == (3, 3, 3)

    def test_needs_two_anchors(self):
        with pytest.raises(ValueError):
            Palette("bad", (((0.0, 0.0, 0.0)),))


class TestRender:
    def test_render_raster_2d_only(self):
        with pytest.raises(ValueError):
            render_raster(np.zeros(5))

    def test_render_by_name(self):
        out = render_raster(np.zeros((4, 4)), palette="terrain")
        assert out.shape == (4, 4, 3)

    def test_render_to_size_upsample(self):
        data = np.array([[0.0, 1.0], [2.0, 3.0]])
        out = render_to_size(data, (8, 8), palette="gray", vmin=0, vmax=3)
        assert out.shape == (8, 8, 3)
        # Top-left quadrant repeats sample (0,0).
        assert (out[:4, :4] == out[0, 0]).all()

    def test_render_to_size_downsample(self):
        data = np.arange(100, dtype=float).reshape(10, 10)
        out = render_to_size(data, (5, 5))
        assert out.shape == (5, 5, 3)

    def test_bad_target(self):
        with pytest.raises(ValueError):
            render_to_size(np.zeros((4, 4)), (0, 5))


class TestPickResolution:
    def test_picks_break_even_level(self):
        bm = Bitmask.from_dims((1024, 1024))
        level = pick_resolution_for_viewport(
            (1024, 1024), (64, 64), bm.maxh, bm.level_strides
        )
        # 64x64 viewport needs 2^12 samples = level 12 of 20.
        assert level == 12

    def test_small_viewport_coarse_level(self):
        bm = Bitmask.from_dims((1024, 1024))
        l_small = pick_resolution_for_viewport((1024, 1024), (16, 16), bm.maxh, bm.level_strides)
        l_big = pick_resolution_for_viewport((1024, 1024), (512, 512), bm.maxh, bm.level_strides)
        assert l_small < l_big

    def test_never_exceeds_maxh(self):
        bm = Bitmask.from_dims((16, 16))
        level = pick_resolution_for_viewport((16, 16), (4096, 4096), bm.maxh, bm.level_strides)
        assert level == bm.maxh


class TestSlicing:
    def test_horizontal(self):
        data = np.arange(12).reshape(3, 4)
        assert slice_horizontal(data, 1).tolist() == [4, 5, 6, 7]

    def test_vertical(self):
        data = np.arange(12).reshape(3, 4)
        assert slice_vertical(data, 2).tolist() == [2, 6, 10]

    def test_bounds(self):
        data = np.zeros((3, 4))
        with pytest.raises(IndexError):
            slice_horizontal(data, 3)
        with pytest.raises(IndexError):
            slice_vertical(data, 4)

    def test_slices_are_copies(self):
        data = np.zeros((3, 4))
        row = slice_horizontal(data, 0)
        row[0] = 99
        assert data[0, 0] == 0

    def test_plane(self):
        vol = np.arange(24).reshape(2, 3, 4)
        assert slice_plane(vol, 0, 1).shape == (3, 4)
        assert slice_plane(vol, 2, 0).shape == (2, 3)
        with pytest.raises(IndexError):
            slice_plane(vol, 1, 5)
        with pytest.raises(ValueError):
            slice_plane(np.zeros((2, 2)), 0, 0)
