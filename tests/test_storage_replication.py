"""Tests for geo-replicated Seal storage."""

import numpy as np
import pytest

from repro.idx import IdxDataset, RemoteAccess
from repro.network import SimClock, default_testbed
from repro.storage import ReplicatedSeal
from repro.storage.object_store import StorageError
from repro.storage.seal import AuthError


@pytest.fixture
def rseal():
    return ReplicatedSeal(sites=("slc", "chi", "mghpcc"), clock=SimClock())


@pytest.fixture
def token(rseal):
    return rseal.issue_token("user", ("read", "write"))


class TestPlacement:
    def test_put_replicates_to_nearest_sites(self, rseal, token):
        sites = rseal.put("k", b"data", token=token, from_site="knox", replicas=2)
        assert len(sites) == 2
        # knox's two nearest of {slc, chi, mghpcc} are chi then mghpcc/slc.
        assert "chi" in sites

    def test_default_replicates_everywhere(self, rseal, token):
        sites = rseal.put("k", b"data", token=token)
        assert sorted(sites) == ["chi", "mghpcc", "slc"]

    def test_replica_count_validated(self, rseal, token):
        with pytest.raises(ValueError):
            rseal.put("k", b"x", token=token, replicas=0)
        with pytest.raises(ValueError):
            rseal.put("k", b"x", token=token, replicas=9)

    def test_missing_key(self, rseal, token):
        with pytest.raises(StorageError):
            rseal.replica_sites("ghost")
        with pytest.raises(StorageError):
            rseal.get("ghost", token=token)

    def test_delete_removes_all_replicas(self, rseal, token):
        rseal.put("k", b"x", token=token)
        rseal.delete("k", token=token)
        with pytest.raises(StorageError):
            rseal.replica_sites("k")
        for region in rseal.regions.values():
            assert not region.store.exists(region.bucket, "k")


class TestNearestReplicaReads:
    def test_nearest_selection(self, rseal, token):
        rseal.put("k", b"x", token=token, replicas=3)
        # A client in Utah should read from the Utah replica.
        assert rseal.nearest_replica("k", "slc") == "slc"
        # An east-coast client should pick an eastern replica.
        assert rseal.nearest_replica("k", "udel") == "mghpcc"

    def test_get_returns_content(self, rseal, token):
        rseal.put("k", b"payload", token=token)
        for client in ("slc", "udel", "sdsc"):
            assert rseal.get("k", token=token, from_site=client) == b"payload"

    def test_more_replicas_flatten_latency_map(self, token):
        one = ReplicatedSeal(sites=("slc",), clock=SimClock())
        three = ReplicatedSeal(sites=("slc", "chi", "mghpcc"), clock=SimClock())
        t1 = one.issue_token("u", ("read", "write"))
        t3 = three.issue_token("u", ("read", "write"))
        one.put("k", b"x", token=t1)
        three.put("k", b"x", token=t3)
        worst_one = max(one.access_latency_map("k").values())
        worst_three = max(three.access_latency_map("k").values())
        assert worst_three < worst_one

    def test_auth_shared_across_regions(self, rseal, token):
        rseal.put("k", b"x", token=token)
        read_only = rseal.issue_token("reader", ("read",))
        assert rseal.get("k", token=read_only) == b"x"
        with pytest.raises(AuthError):
            rseal.put("k2", b"y", token=read_only)
        rseal.revoke_token(read_only)
        with pytest.raises(AuthError):
            rseal.get("k", token=read_only)


class TestReplicatedStreaming:
    def test_idx_streaming_from_nearest(self, rseal, token, tmp_path, rng):
        a = rng.random((32, 32)).astype(np.float32)
        path = str(tmp_path / "d.idx")
        ds = IdxDataset.create(path, dims=a.shape, bits_per_block=6)
        ds.write(a)
        ds.finalize()
        with open(path, "rb") as fh:
            rseal.put("d.idx", fh.read(), token=token, from_site="knox")

        source = rseal.byte_source("d.idx", token=token, from_site="udel")
        remote = IdxDataset.from_access(RemoteAccess(source))
        assert np.array_equal(remote.read(), a)

    def test_streaming_cheaper_from_near_replica(self, token, tmp_path, rng):
        a = rng.random((64, 64)).astype(np.float32)
        path = str(tmp_path / "d.idx")
        ds = IdxDataset.create(path, dims=a.shape, bits_per_block=8)
        ds.write(a)
        ds.finalize()
        blob = open(path, "rb").read()

        def stream_cost(sites, client):
            clock = SimClock()
            rs = ReplicatedSeal(sites=sites, clock=clock)
            tok = rs.issue_token("u", ("read", "write"))
            rs.put("d.idx", blob, token=tok, from_site=client)
            t0 = clock.now
            src = rs.byte_source("d.idx", token=tok, from_site=client)
            IdxDataset.from_access(RemoteAccess(src)).read()
            return clock.now - t0

        far = stream_cost(("slc",), "udel")
        near = stream_cost(("slc", "mghpcc"), "udel")
        assert near < far
