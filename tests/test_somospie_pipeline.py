"""Tests for the SOMOSPIE modular workflow."""

import numpy as np
import pytest

from repro.somospie import build_somospie_workflow


class TestSomospieWorkflow:
    def test_step_order(self):
        wf = build_somospie_workflow()
        assert wf.validate() == [
            "somospie-terrain",
            "somospie-covariates",
            "somospie-observe",
            "somospie-predict",
            "somospie-evaluate",
        ]

    def test_runs_and_scores_well(self):
        run = build_somospie_workflow(shape=(48, 48), seed=3, n_probes=250).run()
        assert run.ok
        metrics = run.context["inference_metrics"]
        assert metrics["method"] == "knn"
        assert metrics["r2"] > 0.3
        assert metrics["rmse"] < 0.06
        assert metrics["cells_scored"] + 0 < 48 * 48  # probes excluded

    def test_prediction_grid_shape(self):
        run = build_somospie_workflow(shape=(32, 40), n_probes=150).run()
        assert run.context["prediction"].shape == (32, 40)
        assert run.context["prediction"].dtype == np.float32

    @pytest.mark.parametrize("method", ["knn", "idw", "ridge"])
    def test_all_methods(self, method):
        run = build_somospie_workflow(
            shape=(32, 32), seed=1, n_probes=150, method=method
        ).run()
        assert run.ok
        assert run.context["inference_metrics"]["method"] == method
        assert run.context["inference_metrics"]["r2"] > 0.0

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            build_somospie_workflow(method="deep-learning")

    def test_deterministic(self):
        m1 = build_somospie_workflow(shape=(32, 32), seed=5).run().context["inference_metrics"]
        m2 = build_somospie_workflow(shape=(32, 32), seed=5).run().context["inference_metrics"]
        assert m1 == m2

    def test_more_probes_help(self):
        few = build_somospie_workflow(shape=(48, 48), seed=2, n_probes=60).run()
        many = build_somospie_workflow(shape=(48, 48), seed=2, n_probes=600).run()
        assert (
            many.context["inference_metrics"]["rmse"]
            < few.context["inference_metrics"]["rmse"]
        )

    def test_provenance_chain(self):
        run = build_somospie_workflow(shape=(32, 32)).run()
        chain = [r.activity for r in run.provenance.lineage("inference_metrics")]
        assert chain[0] == "somospie-terrain"
        assert chain[-1] == "somospie-evaluate"
