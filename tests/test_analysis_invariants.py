"""Runtime invariant checkers: ScopeSanitizer provocations and the
cache byte-conservation checker.

Provocation tests install a *local* sanitizer: `set_scope_observer`
replaces the active observer, so a session-wide sanitizer (REPRO_SANITIZE=1)
never sees the deliberately-bad traffic, and uninstall restores it.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.analysis.invariants import (
    CacheConservationChecker,
    ScopeSanitizer,
)
from repro.idx.access import Access, AccessScope, use_scope
from repro.idx.cache import BlockCache
from repro.idx.hzorder import PlanCache


class _DummyAccess(Access):
    def read_block(self, time_idx, field_idx, block_id):  # pragma: no cover
        raise NotImplementedError


def block(n=64):
    return np.zeros(n, dtype=np.float32)


# -- ScopeSanitizer ----------------------------------------------------------


def test_scope_sanitizer_clean_same_thread_traffic():
    scope = AccessScope("alice")
    with ScopeSanitizer() as sanitizer:
        with use_scope(scope):
            scope.admit(2)
            scope.admit(1)
    report = sanitizer.report()
    assert report.ok, report.summary()
    assert report.binds == 1
    assert report.charges == 2


def test_scope_sanitizer_flags_cross_thread_charge():
    scope = AccessScope("alice")
    with ScopeSanitizer() as sanitizer:
        with use_scope(scope):
            worker = threading.Thread(target=scope.admit, args=(1,))
            worker.start()
            worker.join()
    report = sanitizer.report()
    assert not report.ok
    assert [v.kind for v in report.violations] == ["cross-thread-charge"]
    assert report.violations[0].tenant == "alice"


def test_scope_sanitizer_charge_on_unbound_scope_is_not_cross_thread():
    # A scope nobody holds can be charged from anywhere (e.g. warm-up
    # accounting before the session starts serving).
    scope = AccessScope("alice")
    with ScopeSanitizer() as sanitizer:
        worker = threading.Thread(target=scope.admit, args=(1,))
        worker.start()
        worker.join()
    assert sanitizer.report().ok


def test_scope_sanitizer_flags_concurrent_bind():
    scope = AccessScope("bob")
    entered = threading.Event()
    release = threading.Event()

    def hold():
        with use_scope(scope):
            entered.set()
            release.wait(timeout=5)

    with ScopeSanitizer() as sanitizer:
        worker = threading.Thread(target=hold)
        worker.start()
        assert entered.wait(timeout=5)
        with use_scope(scope):  # second driver while the worker still holds
            pass
        release.set()
        worker.join()
    report = sanitizer.report()
    assert "concurrent-bind" in [v.kind for v in report.violations]


def test_scope_sanitizer_same_thread_nesting_is_fine():
    scope = AccessScope("carol")
    with ScopeSanitizer() as sanitizer:
        with use_scope(scope):
            with use_scope(scope):
                scope.admit(1)
    assert sanitizer.report().ok


def test_scope_sanitizer_flags_foreign_unbind():
    scope = AccessScope("dave")
    with ScopeSanitizer() as sanitizer:
        worker = threading.Thread(target=sanitizer.on_bind, args=(scope,))
        worker.start()
        worker.join()
        sanitizer.on_unbind(scope)  # this thread never entered the binding
    report = sanitizer.report()
    assert "foreign-unbind" in [v.kind for v in report.violations]


def test_scope_sanitizer_default_fallback_allowed_by_default():
    access = _DummyAccess()
    with ScopeSanitizer() as sanitizer:
        assert access._scope() is access._default_scope
    report = sanitizer.report()
    assert report.ok
    assert report.defaults == 1


def test_scope_sanitizer_strict_mode_flags_unbound_charge():
    access = _DummyAccess()
    with ScopeSanitizer(require_scoped=True) as sanitizer:
        access._scope()
    report = sanitizer.report()
    assert [v.kind for v in report.violations] == ["unbound-charge"]


def test_scope_sanitizer_nests_and_restores_previous_observer():
    from repro.idx.access import set_scope_observer

    outer = ScopeSanitizer().install()
    try:
        inner = ScopeSanitizer().install()
        scope = AccessScope("eve")
        with use_scope(scope):
            scope.admit(1)
        inner.uninstall()
        # The inner sanitizer saw the traffic; the outer one did not.
        assert inner.report().charges == 1
        assert outer.report().charges == 0
        # And the outer observer is active again after inner uninstall.
        with use_scope(scope):
            scope.admit(1)
        assert outer.report().charges == 1
    finally:
        outer.uninstall()
    # Whatever was active before (e.g. the session-wide sanitizer) is back.
    active = set_scope_observer(None)
    set_scope_observer(active)
    assert active is not outer


def test_scope_sanitizer_report_is_a_snapshot():
    scope = AccessScope("fred")
    with ScopeSanitizer() as sanitizer:
        with use_scope(scope):
            scope.admit(1)
        first = sanitizer.report()
        with use_scope(scope):
            scope.admit(1)
    assert first.charges == 1
    assert sanitizer.report().charges == 2


# -- CacheConservationChecker ------------------------------------------------


def test_conservation_clean_through_insert_evict_invalidate_clear():
    with CacheConservationChecker() as checker:
        cache = BlockCache(capacity=4 * block().nbytes)
        for i in range(8):  # forces capacity evictions
            cache.put(("k", i), block())
        cache.put(("k", 0), block(32))  # replacement (shrinking)
        cache.invalidate(("k", 7))
        cache.get_or_load(("k", 100), lambda: block())
        cache.clear()
        plans = PlanCache(capacity="1 MiB")
        plans.put(("p", 1), None)
        plans.clear()
    assert checker.ok, checker.summary()


def test_conservation_detects_forgotten_counter():
    checker = CacheConservationChecker()
    cache = BlockCache(capacity="1 MiB")
    cache.put(("k", 1), block())
    # Simulate a code path that dropped an entry without accounting it.
    with cache._lock:
        cache._entries.clear()
        cache._bytes = 0
    checker._check("BlockCache", "put", cache)
    assert not checker.ok
    (violation,) = checker.violations
    assert violation.cache == "BlockCache"
    assert violation.delta == block().nbytes
    assert "inserted_bytes" in str(violation)


def test_conservation_install_wraps_and_uninstall_restores():
    before_put = BlockCache.put
    before_clear = PlanCache.clear
    checker = CacheConservationChecker().install()
    try:
        assert BlockCache.put is not before_put
        assert BlockCache.put.__wrapped__ is before_put
        cache = BlockCache(capacity="1 MiB")
        cache.put(("k", 1), block())
        assert checker.ok
    finally:
        checker.uninstall()
    assert BlockCache.put is before_put
    assert PlanCache.clear is before_clear


def test_conservation_checker_nests():
    outer = CacheConservationChecker().install()
    try:
        inner = CacheConservationChecker().install()
        try:
            cache = BlockCache(capacity="1 MiB")
            cache.put(("k", 1), block())
        finally:
            inner.uninstall()
        cache.put(("k", 2), block())
        assert outer.ok and inner.ok
    finally:
        outer.uninstall()


def test_conservation_holds_under_concurrent_loads():
    with CacheConservationChecker() as checker:
        cache = BlockCache(capacity=16 * block().nbytes)
        stop = threading.Event()

        def hammer(tid):
            i = 0
            while not stop.is_set() and i < 200:
                cache.get_or_load(("k", tid, i % 24), lambda: block())
                if i % 17 == 0:
                    cache.invalidate(("k", tid, (i - 1) % 24))
                i += 1

        threads = [threading.Thread(target=hammer, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stop.set()
    assert checker.ok, checker.summary()
