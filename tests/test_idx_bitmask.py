"""Tests for the V-bitmask and its lattice geometry."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.idx.bitmask import Bitmask


class TestConstruction:
    def test_parse_pattern(self):
        bm = Bitmask("V0101")
        assert bm.maxh == 4
        assert bm.ndim == 2
        assert bm.pow2dims == (4, 4)

    def test_requires_v_prefix(self):
        with pytest.raises(ValueError):
            Bitmask("0101")

    def test_requires_body(self):
        with pytest.raises(ValueError):
            Bitmask("V")

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            Bitmask("V01a1")

    def test_rejects_unused_axis(self):
        # Axis 1 appears, axis 0 never does -> ndim 2 but axis 0 unsplit.
        with pytest.raises(ValueError):
            Bitmask("V11").__class__("V1")  # "V1": ndim=2, axis 0 never split
        with pytest.raises(ValueError):
            Bitmask("V1")

    def test_from_dims_square(self):
        bm = Bitmask.from_dims((8, 8))
        assert bm.pow2dims == (8, 8)
        assert bm.maxh == 6

    def test_from_dims_pads_to_pow2(self):
        bm = Bitmask.from_dims((5, 9))
        assert bm.pow2dims == (8, 16)

    def test_from_dims_anisotropic_splits_largest_first(self):
        bm = Bitmask.from_dims((4, 64))
        # The first splits must all be along axis 1 until extents equalise.
        lead = bm.splits[: 4]
        assert all(a == 1 for a in lead)

    def test_from_dims_3d(self):
        bm = Bitmask.from_dims((4, 4, 4))
        assert bm.ndim == 3
        assert bm.maxh == 6

    def test_equality_and_hash(self):
        assert Bitmask("V0101") == Bitmask("V0101")
        assert hash(Bitmask("V0101")) == hash(Bitmask("V0101"))
        assert Bitmask("V0101") != Bitmask("V0110")


class TestLatticeGeometry:
    def test_level_strides_monotone(self):
        bm = Bitmask.from_dims((16, 16))
        prev = None
        for h in range(bm.maxh + 1):
            strides = bm.level_strides(h)
            if prev is not None:
                assert all(s <= p for s, p in zip(strides, prev))
            prev = strides
        assert bm.level_strides(bm.maxh) == (1, 1)

    def test_level_dims_double_per_level(self):
        bm = Bitmask.from_dims((8, 8))
        sizes = [int(np.prod(bm.level_dims(h))) for h in range(bm.maxh + 1)]
        assert sizes == [1, 2, 4, 8, 16, 32, 64]

    def test_level_zero_single_sample(self):
        bm = Bitmask.from_dims((32, 8))
        phase, step = bm.delta_lattice(0)
        assert phase == (0, 0)
        assert step == bm.pow2dims

    def test_delta_lattices_partition_domain(self):
        for dims in [(8, 8), (4, 16), (8, 2), (4, 4, 4), (2, 4, 8)]:
            bm = Bitmask.from_dims(dims)
            seen = np.zeros(bm.pow2dims, dtype=int)
            for h in range(bm.maxh + 1):
                phase, step = bm.delta_lattice(h)
                slices = tuple(slice(p, None, s) for p, s in zip(phase, step))
                seen[slices] += 1
            assert (seen == 1).all(), dims

    def test_delta_count_matches_level_size(self):
        bm = Bitmask.from_dims((16, 16))
        for h in range(1, bm.maxh + 1):
            phase, step = bm.delta_lattice(h)
            count = 1
            for p, s, d in zip(phase, step, bm.pow2dims):
                count *= len(range(p, d, s))
            assert count == 1 << (h - 1), h

    def test_axis_bit_positions_complete(self):
        bm = Bitmask.from_dims((8, 32))
        all_z_shifts = []
        for a in range(bm.ndim):
            table = bm.axis_bit_positions(a)
            coord_bits = [cb for cb, _ in table]
            assert coord_bits == list(range(bm.bits_per_axis[a]))
            all_z_shifts.extend(zs for _, zs in table)
        assert sorted(all_z_shifts) == list(range(bm.maxh))

    def test_axis_bit_positions_bad_axis(self):
        with pytest.raises(ValueError):
            Bitmask("V01").axis_bit_positions(2)

    def test_level_out_of_range(self):
        bm = Bitmask("V01")
        with pytest.raises(ValueError):
            bm.level_strides(3)
        with pytest.raises(ValueError):
            bm.delta_lattice(-1)

    def test_covers(self):
        bm = Bitmask.from_dims((5, 9))
        assert bm.covers((5, 9))
        assert bm.covers((8, 16))
        assert not bm.covers((9, 16))
        assert not bm.covers((8,))


@given(
    st.lists(st.integers(min_value=2, max_value=64), min_size=1, max_size=3)
)
def test_property_from_dims_covers_and_partitions(dims):
    bm = Bitmask.from_dims(dims)
    assert bm.covers(dims)
    total = 0
    for h in range(bm.maxh + 1):
        phase, step = bm.delta_lattice(h)
        n = 1
        for p, s, d in zip(phase, step, bm.pow2dims):
            n *= len(range(p, d, s))
        total += n
    expected = 1
    for d in bm.pow2dims:
        expected *= d
    assert total == expected
