"""Tests for the SOMOSPIE spatial-inference engine."""

import numpy as np
import pytest

from repro.somospie import (
    CovariateStack,
    IdwRegressor,
    KnnRegressor,
    RidgeRegressor,
    evaluate_regressor,
    gap_fill,
    random_gap_mask,
    synthetic_soil_moisture,
)
from repro.terrain.dem import composite_terrain
from repro.terrain.parameters import aspect, slope


@pytest.fixture(scope="module")
def terrain():
    dem = composite_terrain((64, 64), seed=11)
    return {
        "elevation": dem,
        "slope": slope(dem),
        "aspect": aspect(dem),
    }


@pytest.fixture(scope="module")
def stack(terrain):
    return CovariateStack(dict(terrain))


class TestCovariateStack:
    def test_aspect_decomposed(self, stack):
        assert "aspect_sin" in stack.names
        assert "aspect_cos" in stack.names
        assert "aspect" not in stack.names

    def test_shape_consistency_enforced(self, terrain):
        bad = dict(terrain)
        bad["extra"] = np.zeros((10, 10))
        with pytest.raises(ValueError):
            CovariateStack(bad)

    def test_requires_rasters(self):
        with pytest.raises(ValueError):
            CovariateStack({})
        with pytest.raises(ValueError):
            CovariateStack({"v": np.zeros(5)})

    def test_features_at_shape(self, stack):
        rows = np.array([0, 5, 10])
        cols = np.array([1, 6, 11])
        feats = stack.features_at(rows, cols)
        # 2 coord features + elevation + slope + aspect_sin + aspect_cos.
        assert feats.shape == (3, 6)

    def test_normalisation_zero_mean_unit_std(self, stack):
        feats = stack.full_grid_features(with_coords=False)
        assert np.allclose(feats.mean(axis=0), 0.0, atol=0.2)
        assert np.allclose(feats.std(axis=0), 1.0, atol=0.3)

    def test_without_coords(self, stack):
        feats = stack.features_at(np.array([0]), np.array([0]), with_coords=False)
        assert feats.shape == (1, 4)


class TestSyntheticSoilMoisture:
    def test_physical_range(self, terrain):
        sm = synthetic_soil_moisture(terrain["elevation"], seed=0)
        assert sm.min() >= 0.02
        assert sm.max() <= 0.55

    def test_deterministic(self, terrain):
        dem = terrain["elevation"]
        assert np.array_equal(
            synthetic_soil_moisture(dem, seed=1), synthetic_soil_moisture(dem, seed=1)
        )

    def test_elevation_effect(self):
        """Higher cells are drier on average."""
        dem = composite_terrain((64, 64), seed=2)
        sm = synthetic_soil_moisture(dem, seed=2, noise=0.0)
        high = sm[dem > np.quantile(dem, 0.8)].mean()
        low = sm[dem < np.quantile(dem, 0.2)].mean()
        assert high < low


class TestRegressors:
    @pytest.fixture(scope="class")
    def samples(self, stack, terrain):
        truth = synthetic_soil_moisture(terrain["elevation"], seed=3, noise=0.005)
        rng = np.random.default_rng(4)
        rows = rng.integers(0, 64, 300)
        cols = rng.integers(0, 64, 300)
        return stack.features_at(rows, cols), truth[rows, cols]

    @pytest.mark.parametrize(
        "regressor",
        [KnnRegressor(k=8), KnnRegressor(k=1), IdwRegressor(k=10), RidgeRegressor(1.0)],
        ids=["knn8", "knn1", "idw", "ridge"],
    )
    def test_beats_mean_predictor(self, regressor, samples):
        X, y = samples
        metrics = evaluate_regressor(regressor, X, y, seed=0)
        assert metrics.r2 > 0.3, type(regressor).__name__
        assert metrics.rmse < y.std()

    def test_knn_exact_at_training_points(self, samples):
        X, y = samples
        knn = KnnRegressor(k=5, weights="distance").fit(X, y)
        pred = knn.predict(X[:20])
        assert np.allclose(pred, y[:20])

    def test_knn_k_larger_than_data(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([0.0, 1.0])
        knn = KnnRegressor(k=50).fit(X, y)
        assert knn.predict(np.array([[0.5]])).shape == (1,)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            KnnRegressor().predict(np.zeros((1, 2)))
        with pytest.raises(RuntimeError):
            RidgeRegressor().predict(np.zeros((1, 2)))

    def test_validation(self):
        with pytest.raises(ValueError):
            KnnRegressor(k=0)
        with pytest.raises(ValueError):
            KnnRegressor(weights="cosine")
        with pytest.raises(ValueError):
            IdwRegressor(power=0)
        with pytest.raises(ValueError):
            RidgeRegressor(alpha=-1)
        with pytest.raises(ValueError):
            KnnRegressor().fit(np.zeros((3, 2)), np.zeros(4))

    def test_ridge_recovers_linear_function(self):
        rng = np.random.default_rng(5)
        X = rng.random((200, 3))
        y = 2.0 * X[:, 0] - 1.0 * X[:, 1] + 0.5 + rng.normal(0, 0.001, 200)
        metrics = evaluate_regressor(RidgeRegressor(alpha=1e-6), X, y, seed=1)
        assert metrics.r2 > 0.99

    def test_evaluate_validation(self, samples):
        X, y = samples
        with pytest.raises(ValueError):
            evaluate_regressor(KnnRegressor(), X, y, train_fraction=1.5)
        with pytest.raises(ValueError):
            evaluate_regressor(KnnRegressor(), X[:2], y[:2])


class TestGapFill:
    def test_mask_properties(self):
        mask = random_gap_mask((64, 64), gap_fraction=0.3, seed=0)
        assert mask.shape == (64, 64)
        assert 0.25 < mask.mean() < 0.35

    def test_mask_is_clumped(self):
        """Gap cells neighbour other gap cells far more than random."""
        mask = random_gap_mask((64, 64), gap_fraction=0.3, seed=1)
        inside = mask[1:-1, 1:-1]
        neighbour_same = (mask[:-2, 1:-1] == inside).mean()
        assert neighbour_same > 0.9

    def test_mask_validation(self):
        with pytest.raises(ValueError):
            random_gap_mask((8, 8), gap_fraction=0.0)

    def test_fill_accuracy(self, stack, terrain):
        truth = synthetic_soil_moisture(terrain["elevation"], seed=6, noise=0.0)
        mask = random_gap_mask((64, 64), gap_fraction=0.3, seed=7)
        observed = np.where(mask, 0.0, truth)
        filled, report = gap_fill(observed, mask, stack, truth=truth)
        assert report.filled_cells == int(mask.sum())
        assert report.r2_vs_truth > 0.5
        # Observed cells are untouched.
        assert np.array_equal(filled[~mask], truth[~mask].astype(np.float32))

    def test_custom_regressor(self, stack, terrain):
        truth = synthetic_soil_moisture(terrain["elevation"], seed=8, noise=0.0)
        mask = random_gap_mask((64, 64), gap_fraction=0.2, seed=9)
        filled, report = gap_fill(
            np.where(mask, 0, truth), mask, stack, regressor=RidgeRegressor(0.1), truth=truth
        )
        assert report.rmse_vs_truth is not None

    def test_fully_masked_rejected(self, stack):
        with pytest.raises(ValueError):
            gap_fill(np.zeros((64, 64)), np.ones((64, 64), dtype=bool), stack)

    def test_shape_mismatch_rejected(self, stack):
        with pytest.raises(ValueError):
            gap_fill(np.zeros((10, 10)), np.zeros((10, 10), dtype=bool), stack)
