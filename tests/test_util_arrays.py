"""Tests for repro.util.arrays (Box algebra and helpers)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.arrays import (
    Box,
    as_float_raster,
    assert_shape,
    block_iter,
    ceil_div,
    is_power_of_two,
    next_power_of_two,
    normalize_box,
)


class TestBoxBasics:
    def test_shape_and_size(self):
        box = Box((1, 2), (4, 7))
        assert box.shape == (3, 5)
        assert box.size == 15
        assert not box.is_empty

    def test_empty_box(self):
        assert Box((3, 3), (3, 5)).is_empty
        assert Box((4, 0), (2, 5)).is_empty
        assert Box((4, 0), (2, 5)).size == 0

    def test_rank_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Box((0,), (1, 2))

    def test_from_shape(self):
        assert Box.from_shape((5, 6)) == Box((0, 0), (5, 6))

    def test_from_slices(self):
        box = Box.from_slices((slice(1, 4), slice(None)), (10, 8))
        assert box == Box((1, 0), (4, 8))

    def test_from_slices_rejects_step(self):
        with pytest.raises(ValueError):
            Box.from_slices((slice(0, 4, 2),), (8,))

    def test_contains_point(self):
        box = Box((0, 0), (4, 4))
        assert box.contains_point((0, 0))
        assert box.contains_point((3, 3))
        assert not box.contains_point((4, 0))

    def test_contains_box(self):
        outer = Box((0, 0), (10, 10))
        assert outer.contains_box(Box((2, 2), (5, 5)))
        assert not outer.contains_box(Box((5, 5), (11, 6)))
        assert outer.contains_box(Box((5, 5), (5, 5)))  # empty always fits


class TestBoxAlgebra:
    def test_intersect(self):
        a = Box((0, 0), (5, 5))
        b = Box((3, 2), (8, 4))
        assert a.intersect(b) == Box((3, 2), (5, 4))

    def test_intersect_disjoint_is_empty(self):
        a = Box((0, 0), (2, 2))
        b = Box((3, 3), (4, 4))
        assert a.intersect(b).is_empty

    def test_union(self):
        a = Box((0, 0), (2, 2))
        b = Box((3, 3), (4, 4))
        assert a.union(b) == Box((0, 0), (4, 4))

    def test_union_with_empty_is_identity(self):
        a = Box((1, 1), (3, 3))
        empty = Box((0, 0), (0, 0))
        assert a.union(empty) == a
        assert empty.union(a) == a

    def test_translate(self):
        assert Box((1, 1), (2, 3)).translate((10, -1)) == Box((11, 0), (12, 2))

    def test_dilate_scalar_and_per_axis(self):
        box = Box((5, 5), (10, 10))
        assert box.dilate(2) == Box((3, 3), (12, 12))
        assert box.dilate((1, 0)) == Box((4, 5), (11, 10))

    def test_to_slices_round_trip(self):
        box = Box((1, 2), (4, 6))
        arr = np.arange(48).reshape(6, 8)
        assert arr[box.to_slices()].shape == box.shape

    def test_coords(self):
        ys, xs = Box((2, 5), (4, 8)).coords()
        assert ys.tolist() == [2, 3]
        assert xs.tolist() == [5, 6, 7]


class TestNormalizeBox:
    def test_passthrough(self):
        box = Box((0,), (3,))
        assert normalize_box(box, 1) is box

    def test_from_pair(self):
        assert normalize_box(((1, 2), (3, 4)), 2) == Box((1, 2), (3, 4))

    def test_rank_check(self):
        with pytest.raises(ValueError):
            normalize_box(((0,), (1,)), 2)


class TestScalarHelpers:
    @pytest.mark.parametrize(
        "a,b,expected", [(0, 4, 0), (1, 4, 1), (4, 4, 1), (5, 4, 2), (8, 4, 2)]
    )
    def test_ceil_div(self, a, b, expected):
        assert ceil_div(a, b) == expected

    def test_ceil_div_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ceil_div(3, 0)

    def test_is_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(1024)
        assert not is_power_of_two(0)
        assert not is_power_of_two(12)

    @pytest.mark.parametrize("n,expected", [(1, 1), (2, 2), (3, 4), (1000, 1024)])
    def test_next_power_of_two(self, n, expected):
        assert next_power_of_two(n) == expected

    def test_next_power_of_two_rejects_zero(self):
        with pytest.raises(ValueError):
            next_power_of_two(0)

    @given(st.integers(min_value=1, max_value=10**9))
    def test_next_power_of_two_properties(self, n):
        p = next_power_of_two(n)
        assert p >= n
        assert is_power_of_two(p)
        assert p // 2 < n  # minimality


class TestArrayHelpers:
    def test_assert_shape_ok(self):
        assert_shape(np.zeros((2, 3)), (2, 3))

    def test_assert_shape_raises(self):
        with pytest.raises(ValueError, match="expected shape"):
            assert_shape(np.zeros((2, 3)), (3, 2), name="thing")

    def test_as_float_raster(self):
        out = as_float_raster(np.arange(6).reshape(2, 3))
        assert out.dtype == np.float32
        assert out.flags.c_contiguous

    def test_as_float_raster_rejects_1d(self):
        with pytest.raises(ValueError):
            as_float_raster(np.arange(5))


class TestBlockIter:
    def test_exact_tiling(self):
        boxes = list(block_iter((4, 6), (2, 3)))
        assert len(boxes) == 4
        assert sum(b.size for b in boxes) == 24

    def test_edge_clipping(self):
        boxes = list(block_iter((5, 5), (2, 2)))
        assert sum(b.size for b in boxes) == 25
        assert boxes[-1] == Box((4, 4), (5, 5))

    def test_disjoint_cover(self):
        seen = np.zeros((7, 9), dtype=int)
        for b in block_iter((7, 9), (3, 4)):
            seen[b.to_slices()] += 1
        assert (seen == 1).all()

    def test_rank_and_validity_checks(self):
        with pytest.raises(ValueError):
            list(block_iter((4,), (2, 2)))
        with pytest.raises(ValueError):
            list(block_iter((4, 4), (0, 2)))

    @given(
        st.tuples(st.integers(1, 30), st.integers(1, 30)),
        st.tuples(st.integers(1, 10), st.integers(1, 10)),
    )
    def test_property_cover_is_partition(self, shape, block):
        seen = np.zeros(shape, dtype=int)
        for b in block_iter(shape, block):
            seen[b.to_slices()] += 1
        assert (seen == 1).all()
