"""Tests for entry points, testbed composition, and FAIR objects."""

import numpy as np
import pytest

from repro.formats.metadata import DatasetMetadata
from repro.idx import IdxDataset
from repro.services import (
    EntryPoint,
    FairDigitalObject,
    NsdfTestbed,
    ServiceKind,
    build_default_testbed,
    fair_assessment,
)


@pytest.fixture
def testbed():
    return build_default_testbed(seed=0)


class TestEntryPoint:
    def test_attach_and_resolve(self, testbed):
        ep = testbed.entry_point("knox")
        assert ep.has(ServiceKind.STORAGE_PRIVATE)
        assert ep.service(ServiceKind.CATALOG) is testbed.catalog

    def test_missing_service(self):
        ep = EntryPoint("knox")
        with pytest.raises(KeyError):
            ep.service(ServiceKind.DASHBOARD)

    def test_unknown_entry_point(self, testbed):
        with pytest.raises(KeyError):
            testbed.entry_point("mars")

    def test_site_aware_upload_and_stream(self, testbed, tmp_path, rng):
        a = rng.random((32, 32)).astype(np.float32)
        path = str(tmp_path / "d.idx")
        ds = IdxDataset.create(path, dims=a.shape, bits_per_block=6)
        ds.write(a)
        ds.finalize()

        token = testbed.seal.issue_token("u", ("read", "write"))
        ep = testbed.entry_point("knox")
        key = ep.upload_idx(path, "d.idx", token=token)
        remote = ep.stream_idx(key, token=token)
        assert np.array_equal(remote.read(), a)
        assert testbed.clock.now > 0

    def test_entry_point_cache_shared_across_streams(self, testbed, tmp_path, rng):
        a = rng.random((32, 32)).astype(np.float32)
        path = str(tmp_path / "d.idx")
        ds = IdxDataset.create(path, dims=a.shape, bits_per_block=6)
        ds.write(a)
        ds.finalize()
        token = testbed.seal.issue_token("u", ("read", "write"))
        ep = testbed.entry_point("knox")
        key = ep.upload_idx(path, "d.idx", token=token)
        t0 = testbed.clock.now
        ep.stream_idx(key, token=token).read()
        first_cost = testbed.clock.now - t0
        # A second stream handle re-parses the remote header (small cost)
        # but every block read hits the entry point's shared cache.
        t0 = testbed.clock.now
        ep.stream_idx(key, token=token).read()
        second_cost = testbed.clock.now - t0
        assert second_cost < first_cost

    def test_entry_point_location_matters(self, testbed, tmp_path, rng):
        a = rng.random((64, 64)).astype(np.float32)
        path = str(tmp_path / "d.idx")
        ds = IdxDataset.create(path, dims=a.shape, bits_per_block=6)
        ds.write(a)
        ds.finalize()
        token = testbed.seal.issue_token("u", ("read", "write"))

        t0 = testbed.clock.now
        testbed.entry_point("slc").upload_idx(path, "near.idx", token=token)
        near_cost = testbed.clock.now - t0
        t0 = testbed.clock.now
        testbed.entry_point("udel").upload_idx(path, "far.idx", token=token)
        far_cost = testbed.clock.now - t0
        assert far_cost > near_cost


class TestNsdfTestbed:
    def test_eight_entry_points(self, testbed):
        assert len(testbed.entry_points) == 8

    def test_reachability_matrix_all_true_for_attached(self, testbed):
        matrix = testbed.reachability_matrix()
        for site, row in matrix.items():
            assert row["storage-private"], site
            assert row["storage-public"], site
            assert row["catalog"], site
            assert row["network-monitor"], site
            assert not row["dashboard"]  # not attached by default

    def test_structure_summary(self, testbed):
        summary = testbed.structure_summary()
        assert len(summary["sites"]) == 8
        assert summary["entry_points"] == 8
        assert summary["services"]["storage_private"] == "seal@slc"

    def test_shared_clock(self, testbed):
        token = testbed.seal.issue_token("u", ("read", "write"))
        testbed.seal.put("k", b"x" * 1000, token=token, from_site="knox")
        assert testbed.clock.now > 0
        testbed.monitor.probe("knox", "slc")
        # Monitor and seal charge the same clock.
        assert testbed.clock.total_for("probe:") > 0
        assert testbed.clock.total_for("seal:") > 0


class TestFair:
    @pytest.fixture
    def good_object(self):
        meta = DatasetMetadata(
            name="tn-slope", title="Tennessee slope", keywords=["slope"], license="CC-BY-4.0"
        )
        obj = FairDigitalObject.mint(
            meta, checksum="abc123", access_url="seal://slc/sealed/tn.idx"
        )
        obj.add_provenance("geotiled")
        return obj

    def test_mint_pid_format(self, good_object):
        assert good_object.pid.startswith("hdl:20.500.12345/")

    def test_mint_deterministic(self):
        meta = DatasetMetadata(name="x", title="X", keywords=["k"])
        a = FairDigitalObject.mint(meta, checksum="c", access_url="file://x")
        b = FairDigitalObject.mint(meta, checksum="c", access_url="file://x")
        assert a.pid == b.pid

    def test_fully_fair(self, good_object):
        result = fair_assessment(good_object)
        assert result["fair"]
        assert result["score"] == 1.0
        assert result["reasons"] == {}

    def test_missing_title_breaks_findable(self, good_object):
        good_object.metadata.title = ""
        result = fair_assessment(good_object)
        assert not result["pillars"]["findable"]
        assert "missing title" in result["reasons"]["findable"]

    def test_bad_scheme_breaks_accessible(self, good_object):
        good_object.access_url = "gopher://ancient/path"
        result = fair_assessment(good_object)
        assert not result["pillars"]["accessible"]

    def test_closed_format_breaks_interoperable(self, good_object):
        good_object.mime = "application/x-proprietary"
        result = fair_assessment(good_object)
        assert not result["pillars"]["interoperable"]

    def test_no_provenance_breaks_reusable(self):
        meta = DatasetMetadata(name="x", title="X", keywords=["k"])
        obj = FairDigitalObject.mint(meta, checksum="c", access_url="file://x")
        result = fair_assessment(obj)
        assert not result["pillars"]["reusable"]
        assert result["score"] == 0.75
