"""Fixture triples (flag / clean / suppressed) for the CFG data-flow rules:
resource-lifecycle, scope-discipline, clock-discipline, blocking-under-lock."""

from __future__ import annotations

import textwrap

import repro.analysis  # noqa: F401  (registers the built-in rules)
from repro.analysis.core import ModuleInfo, filter_suppressed, get_rule


def lint_snippet(source: str, rule_name: str, path: str = "<snippet>.py"):
    module = ModuleInfo.parse(path, textwrap.dedent(source))
    rule = get_rule(rule_name)
    if rule.scope == "project":
        findings = list(rule.check_project([module]))
    else:
        findings = list(rule.check(module))
    return filter_suppressed(findings, {module.path: module})


# -- resource-lifecycle ------------------------------------------------------


LEAKY_FETCHER = """
    from repro.storage.transfer import ParallelFetcher

    def fetch_all(reader, keys):
        fetcher = ParallelFetcher(reader, workers=4)
        if not keys:
            return []          # leaks: no close on this path
        blocks = fetcher.fetch(keys)
        fetcher.close()
        return blocks
"""

CLOSED_FETCHER = """
    from repro.storage.transfer import ParallelFetcher

    def fetch_all(reader, keys):
        fetcher = ParallelFetcher(reader, workers=4)
        try:
            if not keys:
                return []
            return fetcher.fetch(keys)
        finally:
            fetcher.close()
"""

WITH_MANAGED_FETCHER = """
    from repro.storage.transfer import ParallelFetcher

    def fetch_all(reader, keys):
        fetcher = ParallelFetcher(reader, workers=4)
        with fetcher:
            return fetcher.fetch(keys)
"""

ESCAPING_FETCHER = """
    from repro.storage.transfer import ParallelFetcher

    def make_fetcher(reader):
        fetcher = ParallelFetcher(reader, workers=4)
        return fetcher     # ownership transfers to the caller
"""


def test_resource_lifecycle_flags_leak_on_early_return():
    findings = lint_snippet(LEAKY_FETCHER, "resource-lifecycle")
    assert len(findings) == 1
    assert "ParallelFetcher" in findings[0].message


def test_resource_lifecycle_clean_try_finally():
    assert lint_snippet(CLOSED_FETCHER, "resource-lifecycle") == []


def test_resource_lifecycle_clean_with_block():
    assert lint_snippet(WITH_MANAGED_FETCHER, "resource-lifecycle") == []


def test_resource_lifecycle_return_transfers_ownership():
    assert lint_snippet(ESCAPING_FETCHER, "resource-lifecycle") == []


def test_resource_lifecycle_suppression_comment():
    suppressed = LEAKY_FETCHER.replace(
        "fetcher = ParallelFetcher(reader, workers=4)",
        "fetcher = ParallelFetcher(reader, workers=4)"
        "  # repro-lint: disable=resource-lifecycle",
    )
    assert lint_snippet(suppressed, "resource-lifecycle") == []


def test_resource_lifecycle_flags_unclosed_class_attr():
    src = """
        from repro.services.events import EventStream

        class Holder:
            def __init__(self):
                self.stream = EventStream("s")
    """
    findings = lint_snippet(src, "resource-lifecycle")
    assert len(findings) == 1
    assert "EventStream" in findings[0].message


def test_resource_lifecycle_clean_class_attr_with_close():
    src = """
        from repro.services.events import EventStream

        class Holder:
            def __init__(self):
                self.stream = EventStream("s")

            def close(self):
                self.stream.close()
    """
    assert lint_snippet(src, "resource-lifecycle") == []


# -- scope-discipline --------------------------------------------------------

SCOPE_PATH = "src/repro/services/widget.py"

UNSCOPED_CHARGE = """
    def render(access, key):
        return access.read_block(key)
"""

DOMINATED_CHARGE = """
    from repro.idx.access import use_scope

    def render(access, key, scope):
        with use_scope(scope):
            return access.read_block(key)
"""

PARTIALLY_DOMINATED_CHARGE = """
    from repro.idx.access import use_scope

    def render(access, key, tenant_ctx, warm):
        if warm:
            with use_scope(tenant_ctx):
                return access.read_block(key)
        return access.read_block(key)
"""


def test_scope_discipline_flags_undominated_charge():
    findings = lint_snippet(UNSCOPED_CHARGE, "scope-discipline", path=SCOPE_PATH)
    assert len(findings) == 1
    assert "read_block" in findings[0].message


def test_scope_discipline_clean_when_dominated():
    assert lint_snippet(DOMINATED_CHARGE, "scope-discipline", path=SCOPE_PATH) == []


def test_scope_discipline_flags_only_the_unscoped_branch():
    findings = lint_snippet(
        PARTIALLY_DOMINATED_CHARGE, "scope-discipline", path=SCOPE_PATH
    )
    assert len(findings) == 1
    assert findings[0].line == 8


def test_scope_discipline_not_applied_outside_service_packages():
    assert lint_snippet(UNSCOPED_CHARGE, "scope-discipline", path="src/repro/util/x.py") == []


def test_scope_discipline_suppression_comment():
    suppressed = UNSCOPED_CHARGE.replace(
        "return access.read_block(key)",
        "return access.read_block(key)  # repro-lint: disable=scope-discipline",
    )
    assert lint_snippet(suppressed, "scope-discipline", path=SCOPE_PATH) == []


def test_scope_discipline_flags_thread_hop_without_rebind():
    src = """
        def fan_out(pool, access, keys):
            def work(key):
                return access.read_block(key)
            return [pool.submit(work, k) for k in keys]
    """
    findings = lint_snippet(src, "scope-discipline", path=SCOPE_PATH)
    assert len(findings) == 1
    assert "thread" in findings[0].message.lower() or "scope" in findings[0].message.lower()


def test_scope_discipline_clean_thread_hop_with_rebind():
    src = """
        from repro.idx.access import use_scope

        def fan_out(pool, access, keys, scope):
            def work(key):
                with use_scope(scope):
                    return access.read_block(key)
            return [pool.submit(work, k) for k in keys]
    """
    assert lint_snippet(src, "scope-discipline", path=SCOPE_PATH) == []


# -- clock-discipline --------------------------------------------------------

CLOCK_PATH = "src/repro/network/widget.py"

WALL_CLOCK_SLEEP = """
    import time

    def poll(probe):
        time.sleep(0.1)
        return probe()
"""

SIM_CLOCK_OK = """
    def poll(probe, clock):
        clock.sleep(0.1)
        return probe()
"""

MONOTONIC_TELEMETRY_OK = """
    import time

    def timed(fn):
        t0 = time.perf_counter()
        fn()
        return time.perf_counter() - t0
"""


def test_clock_discipline_flags_wall_clock_in_simulated_module():
    findings = lint_snippet(WALL_CLOCK_SLEEP, "clock-discipline", path=CLOCK_PATH)
    assert len(findings) == 1
    assert "sleep" in findings[0].message


def test_clock_discipline_clean_sim_clock():
    assert lint_snippet(SIM_CLOCK_OK, "clock-discipline", path=CLOCK_PATH) == []


def test_clock_discipline_allows_perf_counter_telemetry():
    assert lint_snippet(MONOTONIC_TELEMETRY_OK, "clock-discipline", path=CLOCK_PATH) == []


def test_clock_discipline_not_applied_outside_simulated_modules():
    assert (
        lint_snippet(WALL_CLOCK_SLEEP, "clock-discipline", path="src/repro/util/x.py")
        == []
    )


def test_clock_discipline_exemptions_come_from_config_not_comments():
    from repro.analysis.config import CLOCK_ALLOWLIST, clock_allowlisted

    # The one shipped exemption: TokenBucket's real-sleep admission mode.
    assert clock_allowlisted("src/repro/idx/access.py", "TokenBucket.acquire")
    assert not clock_allowlisted("src/repro/idx/access.py", "TokenBucket.try_acquire")
    for (suffix, qualname), reason in CLOCK_ALLOWLIST.items():
        assert reason, f"allowlist entry {suffix}:{qualname} must give a reason"


def test_clock_discipline_flags_datetime_now():
    src = """
        from datetime import datetime

        def stamp():
            return datetime.now()
    """
    findings = lint_snippet(src, "clock-discipline", path=CLOCK_PATH)
    assert len(findings) == 1


def test_clock_discipline_suppression_comment():
    suppressed = WALL_CLOCK_SLEEP.replace(
        "time.sleep(0.1)",
        "time.sleep(0.1)  # repro-lint: disable=clock-discipline",
    )
    assert lint_snippet(suppressed, "clock-discipline", path=CLOCK_PATH) == []


# -- blocking-under-lock -----------------------------------------------------


BLOCKING_SLEEP_UNDER_LOCK = """
    import threading
    import time

    class Poller:
        def __init__(self):
            self._lock = threading.Lock()
            self.state = 0

        def tick(self):
            with self._lock:
                time.sleep(0.5)
                self.state += 1
"""

SLEEP_OUTSIDE_LOCK = """
    import threading
    import time

    class Poller:
        def __init__(self):
            self._lock = threading.Lock()
            self.state = 0

        def tick(self):
            time.sleep(0.5)
            with self._lock:
                self.state += 1
"""

CONDITION_WAIT_OK = """
    import threading

    class Queue:
        def __init__(self):
            self._lock = threading.Lock()
            self._cond = threading.Condition(self._lock)
            self.items = []

        def pop(self):
            with self._lock:
                while not self.items:
                    self._cond.wait()
                return self.items.pop()
"""


def test_blocking_under_lock_flags_sleep_while_held():
    findings = lint_snippet(BLOCKING_SLEEP_UNDER_LOCK, "blocking-under-lock")
    assert len(findings) == 1
    assert "sleep" in findings[0].message


def test_blocking_under_lock_clean_outside_critical_section():
    assert lint_snippet(SLEEP_OUTSIDE_LOCK, "blocking-under-lock") == []


def test_blocking_under_lock_condition_wait_is_exempt():
    assert lint_snippet(CONDITION_WAIT_OK, "blocking-under-lock") == []


def test_blocking_under_lock_flags_future_result_under_lock():
    src = """
        import threading

        class Gather:
            def __init__(self):
                self._lock = threading.Lock()
                self.out = []

            def drain(self, futures):
                with self._lock:
                    for f in futures:
                        self.out.append(f.result())
    """
    findings = lint_snippet(src, "blocking-under-lock")
    assert len(findings) == 1
    assert "result" in findings[0].message


def test_blocking_under_lock_done_guarded_result_is_exempt():
    src = """
        import threading

        class Gather:
            def __init__(self):
                self._lock = threading.Lock()
                self.out = []

            def drain(self, futures):
                with self._lock:
                    for f in futures:
                        if f.done() and f.result():
                            self.out.append(f)
    """
    assert lint_snippet(src, "blocking-under-lock") == []


def test_blocking_under_lock_suppression_comment():
    suppressed = BLOCKING_SLEEP_UNDER_LOCK.replace(
        "time.sleep(0.5)",
        "time.sleep(0.5)  # repro-lint: disable=blocking-under-lock",
    )
    assert lint_snippet(suppressed, "blocking-under-lock") == []
