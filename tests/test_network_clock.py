"""Tests for the concurrency-aware simulated clock."""

import threading

import pytest

from repro.network import SimClock


class TestSerialClock:
    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(1.5, "a")
        clock.advance(0.5, "b")
        assert clock.now == pytest.approx(2.0)
        assert clock.total_for("a") == pytest.approx(1.5)

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1)

    def test_reset(self):
        clock = SimClock()
        clock.advance(3, "x")
        clock.reset()
        assert clock.now == 0.0
        assert clock.events == []


class TestConcurrentRegion:
    def test_overlapped_charges_take_max(self):
        """Parallel charges advance the clock by the slowest lane, not the sum."""
        clock = SimClock()
        # The barrier keeps all three threads alive at once: a thread id
        # reused after an earlier worker exits would (correctly) be
        # charged as serial work on the same lane.
        barrier = threading.Barrier(3)

        def worker(seconds):
            barrier.wait(timeout=5)
            clock.advance(seconds, "fetch")
            barrier.wait(timeout=5)

        with clock.concurrent("batch"):
            threads = [
                threading.Thread(target=worker, args=(s,)) for s in (1.0, 2.0, 3.0)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert clock.now == pytest.approx(3.0)  # max, not 6.0
        # The per-charge trace still sums the work performed.
        assert clock.total_for("fetch") == pytest.approx(6.0)

    def test_same_thread_charges_add_within_region(self):
        """One thread's serial work inside a region still sums."""
        clock = SimClock()
        with clock.concurrent():
            clock.advance(1.0)
            clock.advance(2.0)
        assert clock.now == pytest.approx(3.0)

    def test_lanes_make_overlap_deterministic(self):
        """Charges bound to distinct lanes overlap even from one thread."""
        clock = SimClock()
        with clock.concurrent():
            with clock.lane(0):
                clock.advance(2.0)
            with clock.lane(1):
                clock.advance(2.0)
            with clock.lane(0):
                clock.advance(1.0)
        # lane 0 totals 3.0, lane 1 totals 2.0 -> wall time is 3.0.
        assert clock.now == pytest.approx(3.0)

    def test_nested_regions_flatten(self):
        clock = SimClock()
        clock.begin_concurrent()
        clock.begin_concurrent()
        clock.advance(2.0)
        clock.end_concurrent()
        assert clock.now == 0.0  # still open: charges not landed yet
        clock.end_concurrent()
        assert clock.now == pytest.approx(2.0)

    def test_unbalanced_end_raises(self):
        with pytest.raises(RuntimeError):
            SimClock().end_concurrent()

    def test_empty_region_is_free(self):
        clock = SimClock()
        with clock.concurrent():
            pass
        assert clock.now == 0.0

    def test_now_inside_region_is_region_start(self):
        clock = SimClock()
        clock.advance(5.0)
        with clock.concurrent():
            clock.advance(1.0)
            assert clock.now == pytest.approx(5.0)
            assert clock.in_concurrent_region
        assert clock.now == pytest.approx(6.0)
        assert not clock.in_concurrent_region

    def test_reset_inside_region_rejected(self):
        clock = SimClock()
        clock.begin_concurrent()
        with pytest.raises(RuntimeError):
            clock.reset()
        clock.end_concurrent()

    def test_region_label_records_wall_duration(self):
        clock = SimClock()
        with clock.concurrent("batch"):
            with clock.lane(0):
                clock.advance(1.0)
            with clock.lane(1):
                clock.advance(4.0)
        batch_events = [e for e in clock.events if e[1] == "batch"]
        assert len(batch_events) == 1
        assert batch_events[0][2] == pytest.approx(4.0)
