"""Tests for the dashboard JSON command protocol."""

import base64
import json

import numpy as np
import pytest

from repro.dashboard import DashboardSession
from repro.dashboard.protocol import DashboardProtocol
from repro.idx import IdxDataset


@pytest.fixture
def protocol(tmp_path, rng):
    a = rng.random((64, 64)).astype(np.float32)
    path = str(tmp_path / "d.idx")
    ds = IdxDataset.create(path, dims=a.shape, fields={"elev": "float32"}, timesteps=2)
    ds.write(a, field="elev", time=0)
    ds.write(a + 5, field="elev", time=1)
    ds.finalize()
    session = DashboardSession(viewport=(32, 32))
    session.open_file("terrain", path)
    return DashboardProtocol(session), a


class TestDispatch:
    def test_unknown_op(self, protocol):
        proto, _ = protocol
        resp = proto.handle({"op": "teleport"})
        assert not resp["ok"]
        assert "unknown op" in resp["error"]

    def test_missing_op(self, protocol):
        proto, _ = protocol
        resp = proto.handle({})
        assert not resp["ok"]

    def test_errors_in_band_not_raised(self, protocol):
        proto, _ = protocol
        resp = proto.handle({"op": "select_dataset", "name": "nope"})
        assert not resp["ok"]
        assert "KeyError" in resp["error"]

    def test_every_response_is_json_serialisable(self, protocol):
        proto, _ = protocol
        requests = [
            {"op": "list_datasets"},
            {"op": "describe"},
            {"op": "render"},
            {"op": "fetch_stats"},
            {"op": "state"},
            {"op": "timings"},
            {"op": "zoom", "factor": 2.0},
            {"op": "slice", "axis": "horizontal", "index": 3},
        ]
        for req in requests:
            json.dumps(proto.handle(req))  # raises if not serialisable

    def test_string_transport(self, protocol):
        proto, _ = protocol
        out = proto.handle_json('{"op": "list_datasets"}')
        assert json.loads(out)["result"] == ["terrain"]
        bad = proto.handle_json("{not json")
        assert not json.loads(bad)["ok"]

    @pytest.mark.parametrize(
        "payload",
        [np.int64(3), b"raw-bytes", {"shape": np.int64(7)}, [np.float32(1.5)]],
        ids=["np.int64", "bytes", "nested-np", "np-in-list"],
    )
    def test_non_serialisable_handler_result_stays_in_band(self, protocol, payload):
        # Regression: the serialisability guard used to run outside the
        # try, so a handler returning np.int64/bytes raised out of a
        # method documented "never raises".
        proto, _ = protocol
        proto._ops["bad"] = lambda req: payload
        resp = proto.handle({"op": "bad"})
        assert resp["ok"] is False
        assert "TypeError" in resp["error"]
        json.dumps(resp)  # the error response itself is JSON-clean
        # ... and the string transport stays alive too.
        out = json.loads(proto.handle_json('{"op": "bad"}'))
        assert out["ok"] is False

    def test_timings_surface_drop_counts(self, protocol):
        proto, _ = protocol
        proto.session.timing_limit = 4
        for _ in range(6):
            proto.handle({"op": "render"})
        result = proto.handle({"op": "timings"})["result"]
        assert result["truncated"] is True
        assert result["dropped"] > 0
        # Aggregates stay exact despite the capped raw log.
        total = sum(v["count"] for v in result["ops"].values())
        assert total == result["dropped"] + len(proto.session.op_timings)


class TestWidgets:
    def test_describe(self, protocol):
        proto, _ = protocol
        result = proto.handle({"op": "describe"})["result"]
        assert result["dims"] == [64, 64]
        assert result["fields"] == ["elev"]
        assert result["timesteps"] == [0, 1]

    def test_time_and_palette(self, protocol):
        proto, _ = protocol
        assert proto.handle({"op": "set_time", "time": 1})["ok"]
        assert proto.handle({"op": "set_palette", "name": "terrain"})["ok"]
        state = proto.handle({"op": "state"})["result"]
        assert state["time"] == 1
        assert state["palette"] == "terrain"

    def test_range_modes(self, protocol):
        proto, _ = protocol
        proto.handle({"op": "set_range", "vmin": 0, "vmax": 1})
        assert proto.handle({"op": "state"})["result"]["range_mode"] == "manual"
        proto.handle({"op": "set_range_dynamic"})
        assert proto.handle({"op": "state"})["result"]["range_mode"] == "dynamic"

    def test_viewport_ops(self, protocol):
        proto, _ = protocol
        view = proto.handle({"op": "zoom", "factor": 2.0})["result"]
        assert view["hi"][0] - view["lo"][0] == 32
        view = proto.handle({"op": "pan", "offsets": [4, -2]})["result"]
        assert view["lo"][0] == 16 + 4
        view = proto.handle({"op": "crop", "lo": [0, 0], "hi": [16, 16]})["result"]
        assert view == {"lo": [0, 0], "hi": [16, 16]}
        view = proto.handle({"op": "reset_view"})["result"]
        assert view == {"lo": [0, 0], "hi": [64, 64]}

    def test_resolution(self, protocol):
        proto, _ = protocol
        result = proto.handle({"op": "set_resolution", "level": 4})["result"]
        assert result["effective"] == 4
        result = proto.handle({"op": "set_resolution", "level": None})["result"]
        assert result["effective"] != 4 or result["level"] is None


class TestDataOps:
    def test_render_metadata(self, protocol):
        proto, _ = protocol
        result = proto.handle({"op": "render"})["result"]
        assert result["shape"] == [32, 32, 3]
        assert result["dtype"] == "uint8"
        assert all(0 <= m <= 255 for m in result["mean_rgb"])
        assert "pixels_b64" not in result

    def test_render_with_pixels(self, protocol):
        proto, _ = protocol
        result = proto.handle({"op": "render", "include_pixels": True})["result"]
        raw = base64.b64decode(result["pixels_b64"])
        frame = np.frombuffer(raw, dtype=np.uint8).reshape(result["shape"])
        assert frame.shape == (32, 32, 3)

    def test_fetch_stats(self, protocol):
        proto, a = protocol
        proto.handle({"op": "set_resolution", "level": None})
        result = proto.handle({"op": "fetch_stats"})["result"]
        assert result["min"] >= float(a.min()) - 1e-6
        assert result["max"] <= float(a.max()) + 1e-6

    def test_slice(self, protocol):
        proto, _ = protocol
        result = proto.handle({"op": "slice", "axis": "vertical", "index": 2})["result"]
        assert result["axis"] == "vertical"
        assert len(result["values"]) > 0
        bad = proto.handle({"op": "slice", "axis": "diagonal", "index": 0})
        assert not bad["ok"]

    def test_snip_round_trip(self, protocol):
        proto, a = protocol
        result = proto.handle({"op": "snip", "lo": [8, 8], "hi": [24, 40]})["result"]
        data = np.frombuffer(
            base64.b64decode(result["data_b64"]), dtype=result["dtype"]
        ).reshape(result["shape"])
        assert np.array_equal(data, a[8:24, 8:40])
        assert "IdxDataset.open" in result["script"]

    def test_session_scripting_sequence(self, protocol):
        """A full remote-driving script: every step via the protocol."""
        proto, _ = protocol
        script = [
            {"op": "select_dataset", "name": "terrain"},
            {"op": "set_palette", "name": "magma"},
            {"op": "zoom", "factor": 4.0, "center": [32, 32]},
            {"op": "set_resolution", "level": None},
            {"op": "render", "fit_viewport": True},
            {"op": "snip", "lo": [24, 24], "hi": [40, 40]},
            {"op": "timings"},
        ]
        responses = [proto.handle(req) for req in script]
        assert all(r["ok"] for r in responses)
        assert responses[-1]["result"]["ops"]["fetch"]["count"] >= 1
        assert responses[-1]["result"]["dropped"] == 0
