"""Tests for hot/cold tiering and lifecycle policies."""

import pytest

from repro.network.clock import SimClock
from repro.storage.lifecycle import TierPolicy, TieredStore
from repro.storage.object_store import StorageError


@pytest.fixture
def store():
    return TieredStore(
        policy=TierPolicy(promote_after=3, demote_below=1, hot_capacity_bytes=10_000),
        clock=SimClock(),
    )


class TestBasics:
    def test_put_get_round_trip(self, store):
        store.put("k", b"payload")
        assert store.get("k") == b"payload"
        assert store.tier_of("k") == TieredStore.COLD

    def test_put_to_hot(self, store):
        store.put("k", b"x", tier=TieredStore.HOT)
        assert store.tier_of("k") == TieredStore.HOT

    def test_unknown_key(self, store):
        with pytest.raises(StorageError):
            store.get("ghost")
        with pytest.raises(StorageError):
            store.tier_of("ghost")
        with pytest.raises(StorageError):
            store.delete("ghost")

    def test_bad_tier(self, store):
        with pytest.raises(StorageError):
            store.put("k", b"x", tier="lukewarm")

    def test_overwrite_across_tiers(self, store):
        store.put("k", b"old", tier=TieredStore.HOT)
        store.put("k", b"new", tier=TieredStore.COLD)
        assert store.tier_of("k") == TieredStore.COLD
        assert store.get("k") == b"new"

    def test_delete(self, store):
        store.put("k", b"x")
        store.delete("k")
        with pytest.raises(StorageError):
            store.get("k")

    def test_access_counting(self, store):
        store.put("k", b"x")
        assert store.access_count("k") == 0
        store.get("k")
        store.get("k")
        assert store.access_count("k") == 2

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            TierPolicy(promote_after=0)
        with pytest.raises(ValueError):
            TierPolicy(hot_capacity_bytes=0)


class TestCosts:
    def test_cold_reads_slower(self):
        store = TieredStore(clock=SimClock())
        store.put("cold", b"x" * 10_000, tier=TieredStore.COLD)
        store.put("hot", b"x" * 10_000, tier=TieredStore.HOT)
        t0 = store.clock.now
        store.get("cold")
        cold_cost = store.clock.now - t0
        t0 = store.clock.now
        store.get("hot")
        hot_cost = store.clock.now - t0
        assert cold_cost > 20 * hot_cost


class TestPolicy:
    def test_hot_object_promoted(self, store):
        store.put("popular", b"x" * 100)
        for _ in range(3):
            store.get("popular")
        moved = store.run_policy()
        assert moved["promoted"] == ["popular"]
        assert store.tier_of("popular") == TieredStore.HOT
        assert store.promotions == 1

    def test_cold_object_stays(self, store):
        store.put("ignored", b"x")
        store.get("ignored")  # below the threshold of 3
        moved = store.run_policy()
        assert moved["promoted"] == []
        assert store.tier_of("ignored") == TieredStore.COLD

    def test_idle_hot_object_demoted(self, store):
        store.put("was-hot", b"x", tier=TieredStore.HOT)
        moved = store.run_policy()  # zero accesses < demote_below=1
        assert moved["demoted"] == ["was-hot"]
        assert store.tier_of("was-hot") == TieredStore.COLD

    def test_capacity_enforced(self, store):
        # Hot capacity 10 kB; two 6 kB objects cannot both be hot.
        store.put("a", b"x" * 6_000)
        store.put("b", b"y" * 6_000)
        for _ in range(3):
            store.get("a")
        for _ in range(4):
            store.get("b")
        store.run_policy()
        hot = [k for k in ("a", "b") if store.tier_of(k) == TieredStore.HOT]
        assert hot == ["b"]  # the hotter one wins the capacity
        assert store.tier_bytes(TieredStore.HOT) <= 10_000

    def test_eviction_prefers_colder_victims(self, store):
        store.put("old-hot", b"x" * 6_000, tier=TieredStore.HOT)
        store.put("rising", b"y" * 6_000)
        store.get("old-hot")  # 1 access: stays above demote_below
        for _ in range(5):
            store.get("rising")
        store.run_policy()
        assert store.tier_of("rising") == TieredStore.HOT
        assert store.tier_of("old-hot") == TieredStore.COLD

    def test_counters_reset_per_window(self, store):
        store.put("k", b"x" * 100)
        for _ in range(3):
            store.get("k")
        store.run_policy()
        assert store.access_count("k") == 0
        # With no fresh accesses, the next pass demotes it again.
        store.run_policy()
        assert store.tier_of("k") == TieredStore.COLD

    def test_workload_speedup(self):
        """Tiering pays: a skewed workload runs faster after one policy pass."""
        def run(with_policy: bool) -> float:
            store = TieredStore(
                policy=TierPolicy(promote_after=2, demote_below=1,
                                  hot_capacity_bytes=1_000_000),
                clock=SimClock(),
            )
            for i in range(8):
                store.put(f"obj{i}", bytes(50_000))
            # Warmup window: object 0 is hot.
            for _ in range(3):
                store.get("obj0")
            if with_policy:
                store.run_policy()
            t0 = store.clock.now
            for _ in range(10):
                store.get("obj0")
            return store.clock.now - t0

        assert run(True) < run(False) / 10
