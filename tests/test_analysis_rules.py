"""Fixture-driven tests for every repro-lint rule: snippets that must
flag, snippets that must not, and suppression-comment behaviour."""

from __future__ import annotations

import textwrap

import repro.analysis  # noqa: F401  (registers the built-in rules)
from repro.analysis.core import ModuleInfo, filter_suppressed, get_rule


def lint_snippet(source: str, rule_name: str, path: str = "<snippet>.py"):
    """Run one rule over a dedented source string, suppressions applied."""
    module = ModuleInfo.parse(path, textwrap.dedent(source))
    rule = get_rule(rule_name)
    if rule.scope == "project":
        findings = list(rule.check_project([module]))
    else:
        findings = list(rule.check(module))
    return filter_suppressed(findings, {module.path: module})


# -- lock-discipline ---------------------------------------------------------


LOCKED_COUNTER_OK = """
    import threading

    class Counter:
        def __init__(self):
            self._lock = threading.Lock()
            self.total = 0

        def add(self, n):
            with self._lock:
                self.total += n

        def snapshot(self):
            with self._lock:
                return self.total
"""

LOCKED_COUNTER_BAD_READ = """
    import threading

    class Counter:
        def __init__(self):
            self._lock = threading.Lock()
            self.total = 0

        def add(self, n):
            with self._lock:
                self.total += n

        def snapshot(self):
            return self.total
"""


def test_lock_discipline_clean_class_passes():
    assert lint_snippet(LOCKED_COUNTER_OK, "lock-discipline") == []


def test_lock_discipline_flags_unlocked_read():
    findings = lint_snippet(LOCKED_COUNTER_BAD_READ, "lock-discipline")
    assert len(findings) == 1
    assert "self.total" in findings[0].message
    assert findings[0].line == 14


def test_lock_discipline_flags_unlocked_write_and_mutator():
    src = """
        import threading

        class Registry:
            def __init__(self):
                self._lock = threading.RLock()
                self._items = {}

            def put(self, k, v):
                with self._lock:
                    self._items[k] = v

            def drop(self, k):
                self._items.pop(k, None)
    """
    findings = lint_snippet(src, "lock-discipline")
    assert len(findings) == 1
    assert "_items" in findings[0].message


def test_lock_discipline_flags_locked_helper_called_without_lock():
    src = """
        import threading

        class Cache:
            def __init__(self):
                self._lock = threading.Lock()
                self._data = {}

            def _put_locked(self, k, v):
                self._data[k] = v

            def put(self, k, v):
                self._put_locked(k, v)
    """
    findings = lint_snippet(src, "lock-discipline")
    assert len(findings) == 1
    assert "_put_locked" in findings[0].message


def test_lock_discipline_locked_helper_under_lock_is_clean():
    src = """
        import threading

        class Cache:
            def __init__(self):
                self._lock = threading.Lock()
                self._data = {}

            def _put_locked(self, k, v):
                self._data[k] = v

            def put(self, k, v):
                with self._lock:
                    self._put_locked(k, v)
    """
    assert lint_snippet(src, "lock-discipline") == []


def test_lock_discipline_init_is_exempt():
    src = """
        import threading

        class Box:
            def __init__(self):
                self._lock = threading.Lock()
                self.value = 0
                self.value += 1

            def bump(self):
                with self._lock:
                    self.value += 1
    """
    assert lint_snippet(src, "lock-discipline") == []


def test_lock_discipline_closure_under_lock_is_not_locked():
    # A lambda/def created under the lock runs later on another thread:
    # its unlocked access must still be flagged.
    src = """
        import threading

        class Sched:
            def __init__(self):
                self._lock = threading.Lock()
                self._jobs = []

            def add(self, j):
                with self._lock:
                    self._jobs.append(j)

            def task(self):
                with self._lock:
                    return lambda: self._jobs.pop()
    """
    findings = lint_snippet(src, "lock-discipline")
    assert len(findings) == 1
    assert "_jobs" in findings[0].message


def test_lock_discipline_suppression_trailing_comment():
    src = LOCKED_COUNTER_BAD_READ.replace(
        "return self.total",
        "return self.total  # repro-lint: disable=lock-discipline",
    )
    assert lint_snippet(src, "lock-discipline") == []


def test_lock_discipline_suppression_line_above():
    src = LOCKED_COUNTER_BAD_READ.replace(
        "            return self.total",
        "            # repro-lint: disable=lock-discipline\n"
        "            return self.total",
    )
    assert lint_snippet(src, "lock-discipline") == []


def test_lock_discipline_suppression_for_other_rule_does_not_apply():
    src = LOCKED_COUNTER_BAD_READ.replace(
        "return self.total",
        "return self.total  # repro-lint: disable=codec-purity",
    )
    assert len(lint_snippet(src, "lock-discipline")) == 1


def test_lock_discipline_class_without_lock_is_ignored():
    src = """
        class Plain:
            def __init__(self):
                self.total = 0

            def add(self, n):
                self.total += n
    """
    assert lint_snippet(src, "lock-discipline") == []


# -- codec-purity ------------------------------------------------------------


def test_codec_purity_flags_self_write_in_encode():
    src = """
        class StatsCodec(Codec):
            name = "stats"

            def encode_bytes(self, data):
                self.last_size = len(data)
                return data
    """
    findings = lint_snippet(src, "codec-purity")
    assert len(findings) == 1
    assert "last_size" in findings[0].message


def test_codec_purity_flags_mutator_call_in_decode():
    src = """
        class HistoryCodec(Codec):
            name = "history"

            def __init__(self):
                self.seen = []

            def decode_bytes(self, data):
                self.seen.append(len(data))
                return data
    """
    findings = lint_snippet(src, "codec-purity")
    assert len(findings) == 1
    assert "seen" in findings[0].message


def test_codec_purity_thread_unsafe_optout_is_exempt():
    src = """
        class StatefulCodec(Codec):
            name = "stateful"
            thread_safe = False

            def encode_bytes(self, data):
                self.last = data
                return data
    """
    assert lint_snippet(src, "codec-purity") == []


def test_codec_purity_explicit_thread_safe_true_without_codec_base():
    src = """
        class Transform:
            thread_safe = True

            def encode(self, data):
                self.cache = data
                return data
    """
    assert len(lint_snippet(src, "codec-purity")) == 1


def test_codec_purity_pure_codec_passes():
    src = """
        class CleanCodec(Codec):
            name = "clean"

            def encode_bytes(self, data):
                buf = bytes(data)
                return buf

            def decode_bytes(self, data):
                return bytes(data)
    """
    assert lint_snippet(src, "codec-purity") == []


def test_codec_purity_non_codec_class_untouched():
    src = """
        class Writer:
            def encode_header(self, data):
                self.header = data
    """
    assert lint_snippet(src, "codec-purity") == []


# -- swallowed-exception -----------------------------------------------------


def test_swallowed_exception_flags_pass_body():
    src = """
        def load(path):
            try:
                return open(path).read()
            except OSError:
                pass
    """
    findings = lint_snippet(src, "swallowed-exception")
    assert len(findings) == 1
    assert "OSError" in findings[0].message


def test_swallowed_exception_flags_bare_except():
    src = """
        def load(path):
            try:
                return open(path).read()
            except:
                return None
    """
    findings = lint_snippet(src, "swallowed-exception")
    assert len(findings) == 1
    assert "bare" in findings[0].message


def test_swallowed_exception_handled_is_clean():
    src = """
        def load(path):
            try:
                return open(path).read()
            except OSError as exc:
                raise RuntimeError(str(exc)) from exc
    """
    assert lint_snippet(src, "swallowed-exception") == []


def test_swallowed_exception_suppression():
    src = """
        def cleanup(path):
            try:
                remove(path)
            # repro-lint: disable=swallowed-exception (best-effort cleanup)
            except OSError:
                pass
    """
    assert lint_snippet(src, "swallowed-exception") == []


# -- executor-hygiene --------------------------------------------------------


def test_executor_hygiene_with_block_is_clean():
    src = """
        from concurrent.futures import ThreadPoolExecutor

        def run(jobs):
            with ThreadPoolExecutor(max_workers=4) as pool:
                return list(pool.map(str, jobs))
    """
    assert lint_snippet(src, "executor-hygiene") == []


def test_executor_hygiene_flags_unshutdown_local():
    src = """
        from concurrent.futures import ThreadPoolExecutor

        def run(jobs):
            pool = ThreadPoolExecutor(max_workers=4)
            return [pool.submit(str, j).result() for j in jobs]
    """
    findings = lint_snippet(src, "executor-hygiene")
    assert len(findings) == 1
    assert "shut down" in findings[0].message


def test_executor_hygiene_local_with_shutdown_is_clean():
    src = """
        from concurrent.futures import ThreadPoolExecutor

        def run(jobs):
            pool = ThreadPoolExecutor(max_workers=4)
            try:
                return [f.result() for f in [pool.submit(str, j) for j in jobs]]
            finally:
                pool.shutdown(wait=True)
    """
    assert lint_snippet(src, "executor-hygiene") == []


def test_executor_hygiene_attr_with_class_shutdown_is_clean():
    src = """
        from concurrent.futures import ThreadPoolExecutor

        class Engine:
            def __init__(self):
                self._pool = ThreadPoolExecutor(max_workers=2)

            def close(self):
                self._pool.shutdown(wait=True)
    """
    assert lint_snippet(src, "executor-hygiene") == []


def test_executor_hygiene_flags_attr_without_shutdown():
    src = """
        from concurrent.futures import ThreadPoolExecutor

        class Engine:
            def __init__(self):
                self._pool = ThreadPoolExecutor(max_workers=2)
    """
    findings = lint_snippet(src, "executor-hygiene")
    assert len(findings) == 1
    assert "self._pool" in findings[0].message


def test_executor_hygiene_flags_discarded_future():
    src = """
        def fire_and_forget(pool, job):
            pool.submit(job)
    """
    findings = lint_snippet(src, "executor-hygiene")
    assert len(findings) == 1
    assert "discarded" in findings[0].message


def test_executor_hygiene_flags_discarded_lazy_map():
    src = """
        def run(pool, jobs):
            pool.map(str, jobs)
    """
    findings = lint_snippet(src, "executor-hygiene")
    assert len(findings) == 1
    assert "map" in findings[0].message


def test_executor_hygiene_consumed_submit_is_clean():
    src = """
        def run(pool, jobs):
            futs = [pool.submit(str, j) for j in jobs]
            return [f.result() for f in futs]
    """
    assert lint_snippet(src, "executor-hygiene") == []


def test_executor_hygiene_suppression():
    src = """
        def fire_and_forget(pool, job):
            pool.submit(job)  # repro-lint: disable=executor-hygiene
    """
    assert lint_snippet(src, "executor-hygiene") == []


# -- suppression edge cases --------------------------------------------------


def test_disable_all_suppresses_every_rule():
    src = LOCKED_COUNTER_BAD_READ.replace(
        "return self.total",
        "return self.total  # repro-lint: disable=all",
    )
    assert lint_snippet(src, "lock-discipline") == []
