"""Tests for synthetic DEM generators."""

import numpy as np
import pytest

from repro.terrain.dem import composite_terrain, diamond_square, gaussian_hills, spectral_fbm


class TestSpectralFbm:
    def test_shape_and_dtype(self):
        out = spectral_fbm((40, 60), seed=1)
        assert out.shape == (40, 60)
        assert out.dtype == np.float32

    def test_deterministic_in_seed(self):
        assert np.array_equal(spectral_fbm((32, 32), seed=5), spectral_fbm((32, 32), seed=5))
        assert not np.array_equal(spectral_fbm((32, 32), seed=5), spectral_fbm((32, 32), seed=6))

    def test_amplitude_controls_std(self):
        out = spectral_fbm((128, 128), seed=2, amplitude=3.0)
        assert out.std() == pytest.approx(3.0, rel=0.01)

    def test_higher_beta_smoother(self):
        """Smoothness measured by mean squared first difference."""
        rough = spectral_fbm((128, 128), seed=3, beta=1.0)
        smooth = spectral_fbm((128, 128), seed=3, beta=3.0)
        d_rough = np.mean(np.diff(rough, axis=0) ** 2) / rough.var()
        d_smooth = np.mean(np.diff(smooth, axis=0) ** 2) / smooth.var()
        assert d_smooth < d_rough

    def test_zero_mean(self):
        out = spectral_fbm((64, 64), seed=4)
        assert abs(out.mean()) < 0.2

    def test_validation(self):
        with pytest.raises(ValueError):
            spectral_fbm((1, 10))
        with pytest.raises(ValueError):
            spectral_fbm((10, 10), beta=-1)


class TestDiamondSquare:
    def test_grid_size(self):
        for n in (3, 5, 7):
            assert diamond_square(n, seed=0).shape == ((1 << n) + 1,) * 2

    def test_deterministic(self):
        assert np.array_equal(diamond_square(5, seed=9), diamond_square(5, seed=9))

    def test_no_unset_cells(self):
        """Every lattice point must be touched (no zeros from init)."""
        out = diamond_square(6, seed=1)
        # A zero could legitimately occur, but a big block of exact zeros
        # means the fill missed cells; count exact zeros instead.
        assert np.count_nonzero(out == 0.0) < 5

    def test_rougher_parameter(self):
        smooth = diamond_square(6, seed=2, roughness=0.3)
        rough = diamond_square(6, seed=2, roughness=0.8)
        d_s = np.mean(np.diff(smooth, axis=0) ** 2) / smooth.var()
        d_r = np.mean(np.diff(rough, axis=0) ** 2) / rough.var()
        assert d_s < d_r

    def test_validation(self):
        with pytest.raises(ValueError):
            diamond_square(0)
        with pytest.raises(ValueError):
            diamond_square(5, roughness=1.5)


class TestGaussianHills:
    def test_shape(self):
        assert gaussian_hills((30, 50), seed=0).shape == (30, 50)

    def test_peak_amplitude(self):
        out = gaussian_hills((64, 64), seed=1, amplitude=5.0)
        assert np.abs(out).max() == pytest.approx(5.0, rel=1e-5)

    def test_smoothness(self):
        out = gaussian_hills((64, 64), seed=2)
        grad = np.abs(np.diff(out, axis=0)).max()
        assert grad < 0.2  # no cliffs

    def test_validation(self):
        with pytest.raises(ValueError):
            gaussian_hills((10, 10), n_hills=0)


class TestCompositeTerrain:
    def test_elevation_range(self):
        dem = composite_terrain((100, 100), seed=0, relief_m=1500.0, base_elevation_m=100.0)
        assert dem.min() == pytest.approx(100.0, abs=1.0)
        assert dem.max() == pytest.approx(1600.0, abs=1.0)

    def test_sea_level_clamp(self):
        dem = composite_terrain((100, 100), seed=0, base_elevation_m=-200.0, sea_level_m=0.0)
        assert dem.min() >= 0.0
        assert (dem == 0.0).sum() > 0  # some water exists

    def test_deterministic(self):
        assert np.array_equal(
            composite_terrain((50, 50), seed=3), composite_terrain((50, 50), seed=3)
        )

    def test_float32(self):
        assert composite_terrain((16, 16), seed=0).dtype == np.float32

    def test_compressibility(self):
        """Terrain must compress notably better than white noise (the
        property behind the paper's ~20% size-reduction claim)."""
        import zlib

        dem = composite_terrain((128, 128), seed=5)
        noise = np.random.default_rng(0).random((128, 128)).astype(np.float32)
        r_dem = len(zlib.compress(dem.tobytes(), 6)) / dem.nbytes
        r_noise = len(zlib.compress(noise.tobytes(), 6)) / noise.nbytes
        # float32 mantissas keep raw ratios close; terrain must still win.
        assert r_dem < r_noise
