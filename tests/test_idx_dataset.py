"""Tests for IdxDataset create/write/read round trips."""

import numpy as np
import pytest

from repro.idx import IdxDataset, IdxError


class TestRoundTrip:
    @pytest.mark.parametrize("shape", [(8, 8), (64, 64), (50, 70), (33, 129), (17, 3)])
    def test_full_read_matches(self, tmp_path, rng, shape):
        a = rng.random(shape).astype(np.float32)
        path = str(tmp_path / "d.idx")
        ds = IdxDataset.create(path, dims=shape, bits_per_block=6)
        ds.write(a)
        ds.finalize()
        assert np.array_equal(IdxDataset.open(path).read(), a)

    @pytest.mark.parametrize("dtype", [np.float32, np.float64, np.int32, np.uint16, np.uint8])
    def test_dtypes(self, tmp_path, rng, dtype):
        a = (rng.random((32, 32)) * 100).astype(dtype)
        path = str(tmp_path / "d.idx")
        ds = IdxDataset.create(path, dims=a.shape, fields={"v": str(np.dtype(dtype))})
        ds.write(a, field="v")
        ds.finalize()
        out = IdxDataset.open(path).read(field="v")
        assert out.dtype == dtype
        assert np.array_equal(out, a)

    @pytest.mark.parametrize("codec", ["identity", "zlib", "rle", "lz4"])
    def test_lossless_codecs(self, tmp_path, rng, codec):
        a = (rng.random((40, 40)) * 50).astype(np.float32)
        path = str(tmp_path / "d.idx")
        ds = IdxDataset.create(path, dims=a.shape, codec=codec, bits_per_block=7)
        ds.write(a)
        ds.finalize()
        assert np.array_equal(IdxDataset.open(path).read(), a)

    def test_zfp_codec_bounded_error(self, tmp_path, rng):
        from repro.compression import ZfpCodec

        a = (rng.random((64, 64)) * 1000).astype(np.float32)
        path = str(tmp_path / "d.idx")
        ds = IdxDataset.create(path, dims=a.shape, codec="zfp:precision=16")
        ds.write(a)
        ds.finalize()
        out = IdxDataset.open(path).read()
        tol = ZfpCodec(precision=16).tolerance_for(a)
        assert np.max(np.abs(out.astype(np.float64) - a.astype(np.float64))) <= tol

    def test_3d(self, tmp_path, rng):
        v = rng.random((8, 16, 12)).astype(np.float32)
        path = str(tmp_path / "v.idx")
        ds = IdxDataset.create(path, dims=v.shape, bits_per_block=8)
        ds.write(v)
        ds.finalize()
        assert np.array_equal(IdxDataset.open(path).read(), v)

    def test_multi_field_multi_time(self, tmp_path, rng):
        a = rng.random((16, 16)).astype(np.float32)
        b = (a * 7).astype(np.float64)
        path = str(tmp_path / "m.idx")
        ds = IdxDataset.create(
            path, dims=a.shape, fields={"u": "float32", "w": "float64"}, timesteps=[0, 5]
        )
        ds.write(a, field="u", time=0)
        ds.write(a + 1, field="u", time=5)
        ds.write(b, field="w", time=0)
        ds.write(b - 1, field="w", time=5)
        ds.finalize()
        out = IdxDataset.open(path)
        assert np.array_equal(out.read(field="u", time=0), a)
        assert np.array_equal(out.read(field="u", time=5), a + 1)
        assert np.array_equal(out.read(field="w", time=5), b - 1)

    def test_custom_fill_value(self, tmp_path):
        path = str(tmp_path / "f.idx")
        # Non-pow2 dims: padded region uses the fill value internally, and
        # coarse queries over small boxes surface it when no sample lands.
        a = np.ones((5, 5), dtype=np.float32)
        ds = IdxDataset.create(path, dims=a.shape, fill_value=-9999.0)
        ds.write(a)
        ds.finalize()
        assert np.array_equal(IdxDataset.open(path).read(), a)


class TestMetadataAndStats:
    def test_metadata_persisted(self, tmp_path):
        path = str(tmp_path / "d.idx")
        ds = IdxDataset.create(
            path, dims=(8, 8), metadata={"region": "tennessee", "resolution_m": 30}
        )
        ds.write(np.zeros((8, 8), dtype=np.float32))
        ds.finalize()
        out = IdxDataset.open(path)
        assert out.header.metadata["region"] == "tennessee"

    def test_field_stats(self, tmp_path):
        path = str(tmp_path / "d.idx")
        a = np.arange(64, dtype=np.float32).reshape(8, 8)
        ds = IdxDataset.create(path, dims=a.shape)
        ds.write(a)
        ds.finalize()
        stats = IdxDataset.open(path).field_stats()
        assert stats["min"] == 0.0
        assert stats["max"] == 63.0
        assert stats["mean"] == pytest.approx(31.5)

    def test_stored_bytes_positive(self, tmp_path, rng):
        path = str(tmp_path / "d.idx")
        ds = IdxDataset.create(path, dims=(32, 32))
        ds.write(rng.random((32, 32)).astype(np.float32))
        ds.finalize()
        out = IdxDataset.open(path)
        assert 0 < out.stored_bytes() <= 32 * 32 * 4 * 1.5

    def test_all_fill_blocks_cost_nothing(self, tmp_path):
        path = str(tmp_path / "z.idx")
        ds = IdxDataset.create(path, dims=(64, 64), codec="identity", bits_per_block=6)
        ds.write(np.zeros((64, 64), dtype=np.float32))
        ds.finalize()
        assert IdxDataset.open(path).stored_bytes() == 0

    def test_properties(self, tmp_path):
        path = str(tmp_path / "d.idx")
        ds = IdxDataset.create(path, dims=(10, 20), fields=["a", "b"], timesteps=3)
        assert ds.dims == (10, 20)
        assert ds.fields == ("a", "b")
        assert ds.timesteps == (0, 1, 2)
        assert ds.maxh == 9  # 16 x 32 pow2 domain


class TestErrors:
    def test_write_wrong_shape(self, tmp_path):
        ds = IdxDataset.create(str(tmp_path / "d.idx"), dims=(8, 8))
        with pytest.raises(IdxError):
            ds.write(np.zeros((8, 9), dtype=np.float32))

    def test_write_unknown_field(self, tmp_path):
        ds = IdxDataset.create(str(tmp_path / "d.idx"), dims=(8, 8))
        with pytest.raises(IdxError):
            ds.write(np.zeros((8, 8), dtype=np.float32), field="nope")

    def test_write_unknown_time(self, tmp_path):
        ds = IdxDataset.create(str(tmp_path / "d.idx"), dims=(8, 8))
        with pytest.raises(IdxError):
            ds.write(np.zeros((8, 8), dtype=np.float32), time=9)

    def test_write_after_finalize(self, tmp_path):
        ds = IdxDataset.create(str(tmp_path / "d.idx"), dims=(8, 8))
        ds.write(np.zeros((8, 8), dtype=np.float32))
        ds.finalize()
        with pytest.raises(IdxError):
            ds.write(np.zeros((8, 8), dtype=np.float32))

    def test_double_finalize(self, tmp_path):
        ds = IdxDataset.create(str(tmp_path / "d.idx"), dims=(8, 8))
        ds.write(np.zeros((8, 8), dtype=np.float32))
        ds.finalize()
        with pytest.raises(IdxError):
            ds.finalize()

    def test_read_requires_access(self, tmp_path):
        ds = IdxDataset.create(str(tmp_path / "d.idx"), dims=(8, 8))
        with pytest.raises(IdxError):
            ds.read()

    def test_duplicate_field_names(self, tmp_path):
        with pytest.raises(IdxError):
            IdxDataset.create(str(tmp_path / "d.idx"), dims=(8, 8), fields=["a", "a"])

    def test_read_after_finalize_without_reopen(self, tmp_path):
        """finalize() attaches local access, so reads work immediately."""
        a = np.ones((8, 8), dtype=np.float32)
        ds = IdxDataset.create(str(tmp_path / "d.idx"), dims=(8, 8))
        ds.write(a)
        ds.finalize()
        assert np.array_equal(ds.read(), a)
