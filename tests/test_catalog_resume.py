"""Chaos suite: resumable ingestion is exactly-once under injected failure.

A seeded flaky source fails its fetches on schedule.  The driver must
fail-stop cleanly (checkpointing everything done so far), and a
``resume=True`` pass from a FRESH ``ResumableIngest`` — simulating a new
process after a crash — must ingest every record exactly once, with the
final partition files BYTE-EQUAL to an uninterrupted run over the same
stream.  Crash windows between the digest-log append and the checkpoint
write are exercised directly: the stray digest tail must be truncated on
resume.
"""

import json
import os

import pytest

from repro.catalog import CatalogRecord, ListRecordSource, ResumableIngest, ShardedCatalog
from repro.faults.errors import TransientStoreError
from repro.faults.retry import RetryPolicy
from repro.network.clock import SimClock


def _records(n):
    return [
        CatalogRecord.build(
            f"granule-{i:04d}.idx", source=f"site{i % 4}", size=1000 + i,
            checksum=f"sum{i}", keywords=("terrain", f"band{i % 5}"),
            description=f"synthetic granule {i}",
        )
        for i in range(n)
    ]


class FlakySource:
    """A record source that fails fetches on a scripted schedule.

    ``failures`` maps a stream position to how many consecutive fetches
    at that position raise :class:`TransientStoreError` before the
    position heals — the state survives across driver restarts, like a
    real provider outage would.
    """

    def __init__(self, records, failures):
        self._inner = ListRecordSource(records)
        self.failures = dict(failures)
        self.fetches = 0

    def fetch_batch(self, start, limit):
        self.fetches += 1
        left = self.failures.get(start, 0)
        if left > 0:
            self.failures[start] = left - 1
            raise TransientStoreError(f"injected outage at position {start}")
        return self._inner.fetch_batch(start, limit)


def _fast_retry(attempts=2):
    return RetryPolicy(max_attempts=attempts, base_delay=0.01, jitter=0.0)


def _catalog_files(directory):
    """The files that define the catalog (checkpoint bookkeeping excluded)."""
    names = sorted(
        n for n in os.listdir(directory)
        if n.startswith("shard-") or n in ("catalog.json", "digests.log")
    )
    assert names, f"no catalog files in {directory}"
    out = {}
    for name in names:
        with open(os.path.join(directory, name), "rb") as fh:
            out[name] = fh.read()
    return out


class TestFailStopResume:
    def test_exactly_once_across_three_crashes(self, tmp_path):
        stream = _records(100) + _records(100)[10:15]  # 5 duplicate rows
        clean_dir, chaos_dir = str(tmp_path / "clean"), str(tmp_path / "chaos")

        clean = ResumableIngest(clean_dir, shard_count=4, checkpoint_every=10,
                                retry=_fast_retry(), clock=SimClock())
        report = clean.run(ListRecordSource(stream))
        assert report.ok and report.records == 100 and report.row_duplicates == 5

        # Three outages, each outlasting the 2-attempt retry budget: the
        # driver fail-stops three times and is resumed by a FRESH object
        # each time (a restarted process knows only what is on disk).
        source = FlakySource(stream, failures={30: 2, 60: 2, 80: 2})
        reports = []
        report = ResumableIngest(chaos_dir, shard_count=4, checkpoint_every=10,
                                 retry=_fast_retry(), clock=SimClock()).run(source)
        reports.append(report)
        while not report.ok:
            report = ResumableIngest(chaos_dir, shard_count=4, checkpoint_every=10,
                                     retry=_fast_retry(), clock=SimClock()).run(
                source, resume=True)
            reports.append(report)

        assert len(reports) == 4  # 3 fail-stops + 1 completion
        assert [r.ok for r in reports] == [False, False, False, True]
        assert [r.cursor for r in reports[:3]] == [30, 60, 80]
        final = reports[-1]
        assert final.records == 100  # every record exactly once
        assert final.row_duplicates == 5
        assert final.identity_duplicates == 0

        # The interrupted-and-resumed catalog is byte-identical to the
        # uninterrupted one: partitions, manifests, catalog manifest, and
        # the digest log all converge.
        assert _catalog_files(chaos_dir) == _catalog_files(clean_dir)

        with ShardedCatalog.load(chaos_dir, workers=2) as catalog:
            assert len(catalog) == 100
            assert len(catalog.search("granule*", limit=200)) == 100

    def test_error_payloads_recorded_in_checkpoint(self, tmp_path):
        source = FlakySource(_records(40), failures={20: 5})
        report = ResumableIngest(str(tmp_path), shard_count=2, checkpoint_every=10,
                                 retry=_fast_retry(), clock=SimClock()).run(source)
        assert not report.ok
        assert report.cursor == 20  # everything before the outage is safe
        (error,) = report.errors
        assert error["position"] == 20
        assert error["attempts"] == 2
        assert error["skipped"] is False
        with open(tmp_path / "checkpoint.json") as fh:
            state = json.load(fh)
        assert state["errors"] == report.errors
        assert state["cursor"] == 20

    def test_transient_failure_is_retried_invisibly(self, tmp_path):
        clock = SimClock()
        source = FlakySource(_records(30), failures={10: 1})  # heals within budget
        report = ResumableIngest(str(tmp_path), shard_count=2, checkpoint_every=10,
                                 retry=_fast_retry(attempts=3), clock=clock).run(source)
        assert report.ok and report.records == 30 and report.errors == []
        assert clock.total_for("retry:backoff") > 0.0  # the retry really happened

    def test_skip_mode_records_and_continues(self, tmp_path):
        source = FlakySource(_records(50), failures={20: 10_000})  # never heals
        report = ResumableIngest(str(tmp_path), shard_count=2, checkpoint_every=10,
                                 retry=_fast_retry(), clock=SimClock(),
                                 on_error="skip").run(source)
        assert report.ok
        assert report.records == 40  # the 10-record window is lost, not fatal
        (error,) = report.errors
        assert error["position"] == 20 and error["skipped"] is True

    def test_crash_between_digest_append_and_checkpoint(self, tmp_path, monkeypatch):
        stream = _records(60)
        clean_dir, chaos_dir = str(tmp_path / "clean"), str(tmp_path / "chaos")
        ResumableIngest(clean_dir, shard_count=3, checkpoint_every=10,
                        retry=_fast_retry(), clock=SimClock()).run(ListRecordSource(stream))

        # Crash on the 3rd checkpoint AFTER partitions and digests hit
        # disk but BEFORE checkpoint.json commits — the worst-case
        # window: the digest log now over-reports what the checkpoint
        # covers.
        ingest = ResumableIngest(chaos_dir, shard_count=3, checkpoint_every=10,
                                 retry=_fast_retry(), clock=SimClock())
        real_write = ResumableIngest._write_checkpoint
        calls = {"n": 0}

        def crashing_write(self, state):
            calls["n"] += 1
            if calls["n"] == 3:
                raise OSError("simulated power loss")
            real_write(self, state)

        monkeypatch.setattr(ResumableIngest, "_write_checkpoint", crashing_write)
        with pytest.raises(OSError, match="power loss"):
            ingest.run(ListRecordSource(stream))
        monkeypatch.setattr(ResumableIngest, "_write_checkpoint", real_write)

        with open(os.path.join(chaos_dir, "digests.log")) as fh:
            assert len(fh.readlines()) == 30  # 3rd append landed...
        with open(os.path.join(chaos_dir, "checkpoint.json")) as fh:
            assert json.load(fh)["digest_count"] == 20  # ...but was never committed

        report = ResumableIngest(chaos_dir, shard_count=3, checkpoint_every=10,
                                 retry=_fast_retry(), clock=SimClock()).run(
            ListRecordSource(stream), resume=True)
        assert report.ok and report.records == 60
        assert _catalog_files(chaos_dir) == _catalog_files(clean_dir)

    def test_resume_requires_checkpoint(self, tmp_path):
        ingest = ResumableIngest(str(tmp_path), shard_count=2)
        with pytest.raises(ValueError, match="nothing to resume"):
            ingest.run(ListRecordSource(_records(5)), resume=True)

    def test_fresh_run_refuses_existing_checkpoint(self, tmp_path):
        ResumableIngest(str(tmp_path), shard_count=2, checkpoint_every=5,
                        clock=SimClock()).run(ListRecordSource(_records(10)))
        with pytest.raises(ValueError, match="already holds a checkpoint"):
            ResumableIngest(str(tmp_path), shard_count=2).run(ListRecordSource(_records(5)))

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            ResumableIngest(str(tmp_path), checkpoint_every=0)
        with pytest.raises(ValueError):
            ResumableIngest(str(tmp_path), on_error="explode")
