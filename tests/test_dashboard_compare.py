"""Tests for the comparison views."""

import numpy as np
import pytest

from repro.dashboard import blink, compare_frames, difference_view, side_by_side


@pytest.fixture
def pair(rng):
    a = rng.random((24, 36)) * 100
    b = a + rng.normal(0, 1.0, a.shape)
    return a, b


class TestCompareFrames:
    def test_shared_range(self, rng):
        # Left spans [0, 1], right spans [10, 11]: with a shared range the
        # left render must be darker overall (gray palette).
        left = rng.random((16, 16))
        right = left + 10.0
        img_l, img_r = compare_frames(left, right, palette="gray")
        assert img_l.mean() < img_r.mean()
        # Identical values map to identical pixels across the two frames.
        il2, ir2 = compare_frames(left, left.copy(), palette="gray")
        assert np.array_equal(il2, ir2)

    def test_explicit_range(self, pair):
        a, b = pair
        img_l, img_r = compare_frames(a, b, vmin=0.0, vmax=100.0)
        assert img_l.shape == a.shape + (3,)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            compare_frames(np.zeros((2, 2)), np.zeros((3, 3)))

    def test_all_nan_rejected(self):
        nan = np.full((4, 4), np.nan)
        with pytest.raises(ValueError):
            compare_frames(nan, nan)


class TestDifferenceView:
    def test_zero_difference_is_midpoint(self, rng):
        a = rng.random((8, 8))
        img, peak = difference_view(a, a.copy())
        assert peak == 0.0
        # coolwarm midpoint is a light gray: channels roughly equal.
        assert np.allclose(img[..., 0], img[..., 2], atol=2)

    def test_peak_reported(self):
        a = np.zeros((4, 4))
        b = a.copy()
        b[1, 1] = 5.0
        b[2, 2] = -3.0
        _, peak = difference_view(a, b)
        assert peak == 5.0

    def test_symmetric_centering(self):
        a = np.zeros((4, 4))
        b = a.copy()
        b[0, 0] = 4.0  # positive-only difference
        img_sym, _ = difference_view(a, b, symmetric=True)
        # Unchanged cells stay at the neutral midpoint under symmetric mode.
        assert abs(int(img_sym[3, 3, 0]) - int(img_sym[3, 3, 2])) < 10

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            difference_view(np.zeros((2, 2)), np.zeros((4, 4)))


class TestMontageAndBlink:
    def test_side_by_side_geometry(self, pair):
        a, b = pair
        img_l, img_r = compare_frames(a, b)
        montage = side_by_side(img_l, img_r, separator_px=6)
        assert montage.shape == (24, 36 * 2 + 6, 3)
        assert (montage[:, 36:42] == 255).all()  # white bar

    def test_zero_separator(self, pair):
        a, b = pair
        img_l, img_r = compare_frames(a, b)
        montage = side_by_side(img_l, img_r, separator_px=0)
        assert montage.shape == (24, 72, 3)

    def test_height_mismatch(self):
        with pytest.raises(ValueError):
            side_by_side(np.zeros((4, 4, 3), np.uint8), np.zeros((5, 4, 3), np.uint8))

    def test_blink_alternates(self, pair):
        a, b = pair
        img_l, img_r = compare_frames(a, b)
        frames = list(blink(img_l, img_r, cycles=3))
        assert len(frames) == 6
        assert np.array_equal(frames[0], img_l)
        assert np.array_equal(frames[1], img_r)
        assert np.array_equal(frames[4], img_l)

    def test_blink_validation(self, pair):
        a, b = pair
        img_l, img_r = compare_frames(a, b)
        with pytest.raises(ValueError):
            list(blink(img_l, img_r, cycles=0))
        with pytest.raises(ValueError):
            list(blink(img_l, img_r[:-1], cycles=1))


class TestStep3Integration:
    def test_lossless_conversion_blink_is_static(self, tmp_path, small_dem):
        """Blinking original vs lossless IDX round trip shows no change."""
        from repro.formats.tiff import write_tiff
        from repro.idx import IdxDataset, tiff_to_idx

        tiff = str(tmp_path / "a.tif")
        idx = str(tmp_path / "a.idx")
        write_tiff(tiff, small_dem)
        tiff_to_idx(tiff, idx)
        converted = IdxDataset.open(idx).read()
        img_l, img_r = compare_frames(small_dem, converted, palette="terrain")
        assert np.array_equal(img_l, img_r)
        _, peak = difference_view(small_dem, converted)
        assert peak == 0.0
