"""Tests for vectorized Z/HZ address arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.idx.bitmask import Bitmask
from repro.idx.hzorder import HzOrder


def full_grid(dims):
    grids = np.meshgrid(*[np.arange(d) for d in dims], indexing="ij")
    return tuple(g.ravel() for g in grids)


@pytest.fixture(params=[(8, 8), (4, 16), (16, 2), (4, 4, 4), (2, 8, 4)])
def hz(request):
    return HzOrder(Bitmask.from_dims(request.param))


class TestBijections:
    def test_interleave_bijective(self, hz):
        coords = full_grid(hz.bitmask.pow2dims)
        z = hz.interleave(coords)
        assert sorted(z.tolist()) == list(range(hz.total_samples))

    def test_deinterleave_inverse(self, hz):
        coords = full_grid(hz.bitmask.pow2dims)
        back = hz.deinterleave(hz.interleave(coords))
        for a, b in zip(coords, back):
            assert np.array_equal(a, b)

    def test_hz_bijective(self, hz):
        z = np.arange(hz.total_samples, dtype=np.uint64)
        h = hz.hz_from_z(z)
        assert sorted(h.tolist()) == list(range(hz.total_samples))

    def test_z_from_hz_inverse(self, hz):
        z = np.arange(hz.total_samples, dtype=np.uint64)
        assert np.array_equal(hz.z_from_hz(hz.hz_from_z(z)), z)

    def test_point_round_trip(self, hz):
        coords = full_grid(hz.bitmask.pow2dims)
        back = hz.hz_to_point(hz.point_to_hz(coords))
        for a, b in zip(coords, back):
            assert np.array_equal(a, b)


class TestLevelStructure:
    def test_level_ranges_partition_address_space(self, hz):
        covered = []
        for h in range(hz.maxh + 1):
            lo, hi = hz.level_range(h)
            covered.extend(range(lo, hi))
        assert sorted(covered) == list(range(hz.total_samples))

    def test_level_of_hz_matches_ranges(self, hz):
        addr = np.arange(hz.total_samples, dtype=np.uint64)
        levels = hz.level_of_hz(addr)
        for h in range(hz.maxh + 1):
            lo, hi = hz.level_range(h)
            assert (levels[lo:hi] == h).all()

    def test_delta_samples_fill_their_level_range(self, hz):
        bm = hz.bitmask
        for h in range(bm.maxh + 1):
            phase, step = bm.delta_lattice(h)
            axes = [np.arange(p, d, s) for p, s, d in zip(phase, step, bm.pow2dims)]
            grids = np.meshgrid(*axes, indexing="ij")
            z = hz.interleave(tuple(g.ravel() for g in grids))
            addr = hz.hz_for_level(h, z)
            lo, hi = hz.level_range(h)
            assert sorted(addr.tolist()) == list(range(lo, hi)), h

    def test_hz_for_level_matches_general_transform(self, hz):
        bm = hz.bitmask
        for h in range(bm.maxh + 1):
            phase, step = bm.delta_lattice(h)
            axes = [np.arange(p, d, s) for p, s, d in zip(phase, step, bm.pow2dims)]
            grids = np.meshgrid(*axes, indexing="ij")
            z = hz.interleave(tuple(g.ravel() for g in grids))
            assert np.array_equal(hz.hz_for_level(h, z), hz.hz_from_z(z)), h

    def test_z_for_level_inverse(self, hz):
        for h in range(hz.maxh + 1):
            lo, hi = hz.level_range(h)
            addr = np.arange(lo, hi, dtype=np.uint64)
            z = hz.z_for_level(h, addr)
            assert np.array_equal(hz.hz_for_level(h, z), addr)

    def test_level_range_bounds(self, hz):
        with pytest.raises(ValueError):
            hz.level_range(hz.maxh + 1)
        with pytest.raises(ValueError):
            hz.level_range(-1)

    def test_z_from_hz_range_check(self, hz):
        with pytest.raises(ValueError):
            hz.z_from_hz(np.array([hz.total_samples], dtype=np.uint64))


class TestSpatialLocality:
    def test_coarse_prefix_is_coarse_grid(self):
        """The first 2^h HZ addresses decode to exactly the level-h lattice."""
        bm = Bitmask.from_dims((16, 16))
        hz = HzOrder(bm)
        for h in range(bm.maxh + 1):
            addr = np.arange(1 << h, dtype=np.uint64)
            coords = hz.hz_to_point(addr)
            strides = bm.level_strides(h)
            for c, s in zip(coords, strides):
                assert (c % s == 0).all(), h

    def test_axis_z_component_composes(self):
        bm = Bitmask.from_dims((8, 8))
        hz = HzOrder(bm)
        ys = np.arange(8)
        xs = np.arange(8)
        zy = hz.axis_z_component(0, ys)
        zx = hz.axis_z_component(1, xs)
        combined = zy[:, None] | zx[None, :]
        grids = np.meshgrid(ys, xs, indexing="ij")
        direct = hz.interleave(tuple(g.ravel() for g in grids)).reshape(8, 8)
        assert np.array_equal(combined, direct)

    def test_interleave_wrong_arity(self):
        hz = HzOrder(Bitmask.from_dims((4, 4)))
        with pytest.raises(ValueError):
            hz.interleave((np.arange(4),))


class TestScalability:
    def test_large_bitmask(self):
        """26-level (8192x8192) addressing stays exact in uint64."""
        bm = Bitmask.from_dims((8192, 8192))
        hz = HzOrder(bm)
        rng = np.random.default_rng(0)
        ys = rng.integers(0, 8192, 1000)
        xs = rng.integers(0, 8192, 1000)
        addr = hz.point_to_hz((ys, xs))
        by, bx = hz.hz_to_point(addr)
        assert np.array_equal(by, ys)
        assert np.array_equal(bx, xs)

    def test_maxh_limit(self):
        with pytest.raises(ValueError):
            HzOrder(Bitmask("V" + "01" * 32))  # maxh = 64 > 62


@given(st.integers(2, 6), st.integers(2, 6), st.integers(0, 10_000))
@settings(max_examples=50)
def test_property_hz_round_trip(by, bx, seed):
    bm = Bitmask.from_dims((1 << by, 1 << bx))
    hz = HzOrder(bm)
    rng = np.random.default_rng(seed)
    ys = rng.integers(0, 1 << by, 64)
    xs = rng.integers(0, 1 << bx, 64)
    ry, rx = hz.hz_to_point(hz.point_to_hz((ys, xs)))
    assert np.array_equal(ry, ys)
    assert np.array_equal(rx, xs)
