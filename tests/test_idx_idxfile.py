"""Tests for the on-disk IDX container format."""

import numpy as np
import pytest

from repro.idx.idxfile import (
    BytesByteSource,
    FileByteSource,
    IdxBinaryReader,
    IdxError,
    IdxHeader,
    write_idx_file,
)


@pytest.fixture
def header():
    return IdxHeader(
        dims=(16, 16),
        bitmask="V01010101",
        bits_per_block=4,
        fields=[{"name": "v", "dtype": "float32"}],
        timesteps=[0],
        codec="zlib:level=6",
    )


class TestHeader:
    def test_json_round_trip(self, header):
        back = IdxHeader.from_json(header.to_json())
        assert back.dims == header.dims
        assert back.bitmask == header.bitmask
        assert back.fields == header.fields
        assert back.codec == header.codec

    def test_bitmask_must_cover_dims(self):
        with pytest.raises(IdxError):
            IdxHeader(
                dims=(32, 32),
                bitmask="V01",  # 2x2 only
                bits_per_block=4,
                fields=[{"name": "v", "dtype": "float32"}],
                timesteps=[0],
            )

    def test_requires_fields_and_timesteps(self):
        with pytest.raises(IdxError):
            IdxHeader(dims=(4, 4), bitmask="V0101", bits_per_block=2, fields=[], timesteps=[0])
        with pytest.raises(IdxError):
            IdxHeader(
                dims=(4, 4),
                bitmask="V0101",
                bits_per_block=2,
                fields=[{"name": "v", "dtype": "float32"}],
                timesteps=[],
            )

    def test_duplicate_fields_rejected(self):
        with pytest.raises(IdxError):
            IdxHeader(
                dims=(4, 4),
                bitmask="V0101",
                bits_per_block=2,
                fields=[{"name": "v", "dtype": "float32"}] * 2,
                timesteps=[0],
            )

    def test_field_and_time_index(self, header):
        assert header.field_index(None) == 0
        assert header.field_index("v") == 0
        with pytest.raises(IdxError):
            header.field_index("nope")
        assert header.time_index(0) == 0
        with pytest.raises(IdxError):
            header.time_index(3)


class TestContainer:
    def test_write_and_read_blocks(self, tmp_path, header):
        codec = header.codec_obj()
        rng = np.random.default_rng(0)
        blocks = {}
        expected = {}
        for bid in range(header.layout().num_blocks):
            data = rng.random(header.layout().block_size).astype(np.float32)
            blocks[(0, 0, bid)] = codec.encode_array(data)
            expected[bid] = data
        path = str(tmp_path / "c.idx")
        total = write_idx_file(path, header, blocks)
        assert total > 0

        reader = IdxBinaryReader(FileByteSource(path))
        for bid, data in expected.items():
            assert np.array_equal(reader.read_block(0, 0, bid), data)

    def test_absent_block_returns_fill(self, tmp_path, header):
        path = str(tmp_path / "c.idx")
        write_idx_file(path, header, {})
        reader = IdxBinaryReader(FileByteSource(path))
        block = reader.read_block(0, 0, 0)
        assert (block == header.fill_value).all()
        assert reader.stored_bytes() == 0

    def test_present_blocks_listing(self, tmp_path, header):
        codec = header.codec_obj()
        data = np.ones(header.layout().block_size, dtype=np.float32)
        blocks = {(0, 0, 3): codec.encode_array(data), (0, 0, 7): codec.encode_array(data)}
        path = str(tmp_path / "c.idx")
        write_idx_file(path, header, blocks)
        reader = IdxBinaryReader(FileByteSource(path))
        assert reader.present_blocks(0, 0).tolist() == [3, 7]

    def test_block_key_out_of_range(self, tmp_path, header):
        with pytest.raises(IdxError):
            write_idx_file(str(tmp_path / "c.idx"), header, {(0, 0, 9999): b"x"})

    def test_bad_magic(self, tmp_path):
        path = str(tmp_path / "bad.idx")
        with open(path, "wb") as fh:
            fh.write(b"NOPE" + bytes(100))
        with pytest.raises(IdxError):
            IdxBinaryReader(FileByteSource(path))

    def test_bytes_source_equivalent_to_file(self, tmp_path, header):
        codec = header.codec_obj()
        data = np.arange(header.layout().block_size, dtype=np.float32)
        blocks = {(0, 0, 0): codec.encode_array(data)}
        path = str(tmp_path / "c.idx")
        write_idx_file(path, header, blocks)
        with open(path, "rb") as fh:
            blob = fh.read()
        r1 = IdxBinaryReader(FileByteSource(path))
        r2 = IdxBinaryReader(BytesByteSource(blob))
        assert np.array_equal(r1.read_block(0, 0, 0), r2.read_block(0, 0, 0))

    def test_short_read_detected(self, tmp_path, header):
        path = str(tmp_path / "c.idx")
        write_idx_file(path, header, {})
        src = FileByteSource(path)
        with pytest.raises(IdxError):
            src.read_at(src.size() - 4, 100)

    def test_multi_time_field_table(self, tmp_path):
        header = IdxHeader(
            dims=(8, 8),
            bitmask="V010101",
            bits_per_block=3,
            fields=[{"name": "a", "dtype": "float32"}, {"name": "b", "dtype": "int16"}],
            timesteps=[0, 1, 2],
        )
        codec = header.codec_obj()
        size = header.layout().block_size
        blocks = {
            (2, 1, 5): codec.encode_array(np.full(size, 3, dtype=np.int16)),
        }
        path = str(tmp_path / "m.idx")
        write_idx_file(path, header, blocks)
        reader = IdxBinaryReader(FileByteSource(path))
        out = reader.read_block(2, 1, 5)
        assert out.dtype == np.int16
        assert (out == 3).all()
        # Untouched slots come back as fill.
        assert (reader.read_block(0, 0, 5) == 0).all()


class TestBytesByteSourceBounds:
    """Regression: in-memory sources reject every out-of-bounds range."""

    def test_negative_offset_rejected(self):
        src = BytesByteSource(b"0123456789")
        # Python slicing would silently read from the tail here.
        with pytest.raises(IdxError, match="out of bounds"):
            src.read_at(-2, 2)

    def test_negative_length_rejected(self):
        src = BytesByteSource(b"0123456789")
        with pytest.raises(IdxError, match="out of bounds"):
            src.read_at(0, -1)

    def test_past_eof_rejected(self):
        src = BytesByteSource(b"0123456789")
        with pytest.raises(IdxError, match="out of bounds"):
            src.read_at(8, 3)
        with pytest.raises(IdxError, match="out of bounds"):
            src.read_at(11, 0)

    def test_legal_boundaries(self):
        src = BytesByteSource(b"0123456789")
        assert src.read_at(0, 10) == b"0123456789"
        assert src.read_at(10, 0) == b""
        assert src.size() == 10
