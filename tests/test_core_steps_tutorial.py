"""Tests for the four canonical steps and the tutorial plan."""

import numpy as np
import pytest

from repro.core.steps import build_tutorial_workflow, make_step1_generate
from repro.core.tutorial import Session, TutorialPlan, default_tutorial_plan
from repro.core.workflow import Workflow
from repro.network.clock import SimClock
from repro.storage.seal import SealStorage


@pytest.fixture(scope="module")
def run(tmp_path_factory):
    """One shared local-mode workflow run (Option A)."""
    out = str(tmp_path_factory.mktemp("wf"))
    wf = build_tutorial_workflow(out, shape=(64, 96), seed=1, grid=(2, 2))
    return wf.run()


class TestWorkflowAssembly:
    def test_execution_order(self, tmp_path):
        wf = build_tutorial_workflow(str(tmp_path))
        assert wf.validate() == [
            "step1-generate",
            "step2-convert",
            "step3-validate",
            "step4-interactive",
        ]

    def test_run_ok(self, run):
        assert run.ok, [r.error for r in run.results if r.error]

    def test_step1_products(self, run):
        assert set(run.context["products"]) == {"elevation", "aspect", "slope", "hillshade"}
        assert run.context["dem"].shape == (64, 96)
        for path in run.context["tiff_paths"].values():
            import os

            assert os.path.exists(path)

    def test_step2_conversion(self, run):
        reports = run.context["conversion_reports"]
        assert set(reports) == set(run.context["idx_paths"])
        for report in reports.values():
            assert report.idx_bytes > 0

    def test_step3_validation_lossless(self, run):
        for name, report in run.context["validation_reports"].items():
            assert report.identical, name
            assert report.passed, name
        for name, (img_tiff, img_idx) in run.context["static_images"].items():
            assert np.array_equal(img_tiff, img_idx), name

    def test_step4_interactions(self, run):
        session = run.context["dashboard_session"]
        ops = session.state.ops_performed()
        for op in ("select_dataset", "zoom", "pan", "set_palette", "snip"):
            assert op in ops
        snip = run.context["snip_result"]
        assert snip.data.size > 0
        frames = run.context["frames"]
        assert frames["overview"].shape == (256, 256, 3)

    def test_provenance_chain(self, run):
        chain = [r.activity for r in run.provenance.lineage("validation_reports")]
        assert chain == ["step1-generate", "step2-convert", "step3-validate"]

    def test_geotiff_tags_written(self, run):
        from repro.formats.tiff import tiff_info

        info = tiff_info(run.context["tiff_paths"]["elevation"])
        assert info.pixel_scale is not None
        assert info.tiepoint is not None
        assert "tennessee" in (info.description or "")


class TestSealOptionB:
    def test_upload_and_stream_via_seal(self, tmp_path):
        clock = SimClock()
        seal = SealStorage(site="slc", clock=clock)
        token = seal.issue_token("trainee", ("read", "write"))
        wf = build_tutorial_workflow(str(tmp_path), shape=(32, 32), grid=(1, 1))
        run = wf.run({"seal": seal, "seal_token": token, "client_site": "knox"})
        assert run.ok
        assert set(run.context["seal_keys"]) == set(run.context["idx_paths"])
        assert clock.now > 0  # WAN paid for upload + interactive streaming
        # Sealed objects really exist.
        listed = {o.key for o in seal.list(token=token)}
        assert "elevation.idx" in listed


class TestStep1Standalone:
    def test_custom_parameters(self, tmp_path):
        wf = Workflow()
        wf.add_step(
            make_step1_generate(
                str(tmp_path), shape=(32, 32), parameters=("slope", "tpi"), grid=(1, 1)
            )
        )
        run = wf.run()
        assert set(run.context["products"]) == {"slope", "tpi"}


class TestTutorialPlan:
    def test_default_plan_valid(self):
        plan = default_tutorial_plan()
        plan.validate()

    def test_paper_structure(self):
        plan = default_tutorial_plan()
        assert len(plan.goals) == 3
        assert plan.total_minutes == 120
        assert plan.is_half_day
        assert [s.minutes for s in plan.sessions] == [30, 60, 30]
        assert plan.level_split == {"beginner": 0.30, "intermediate": 0.40, "advanced": 0.30}
        assert set(plan.audiences) == {"researchers", "students", "developers", "scientists"}

    def test_agenda_rendering(self):
        agenda = default_tutorial_plan().agenda()
        assert len(agenda) == 3
        assert "30 min" in agenda[0]

    def test_summary(self):
        summary = default_tutorial_plan().summary()
        assert summary["total_minutes"] == 120
        assert len(summary["goals"]) == 3

    def test_invalid_split_rejected(self):
        plan = default_tutorial_plan()
        plan.level_split = {"beginner": 0.5, "advanced": 0.6}
        with pytest.raises(ValueError):
            plan.validate()

    def test_session_validation(self):
        with pytest.raises(ValueError):
            Session("bad", 0, ())

    def test_empty_goals_rejected(self):
        plan = default_tutorial_plan()
        plan.goals = []
        with pytest.raises(ValueError):
            plan.validate()
