"""Corruption-fuzz tests: malformed inputs must raise typed errors,
never crash with arbitrary exceptions or return silently-wrong data.

The stack moves bytes across (simulated) networks, caches, and format
conversions; every parser boundary is fuzzed here with truncations and
random byte flips.
"""

import json
import struct

import numpy as np
import pytest

from repro.compression import CodecError, get_codec
from repro.formats.ncdf import NcdfError, NcdfFile, read_ncdf, write_ncdf
from repro.formats.tiff import TiffError, read_tiff, write_tiff
from repro.idx import IdxDataset, verify_dataset
from repro.idx.idxfile import BytesByteSource, IdxBinaryReader, IdxError

ACCEPTABLE_IDX = (IdxError, CodecError, ValueError, KeyError, json.JSONDecodeError)


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    """One valid instance of each on-disk artifact."""
    tmp = tmp_path_factory.mktemp("fuzz")
    rng = np.random.default_rng(0)
    raster = rng.random((24, 24)).astype(np.float32)

    tiff_path = str(tmp / "a.tif")
    write_tiff(tiff_path, raster, compression="deflate")

    nc = NcdfFile(attrs={"t": "x"})
    nc.add_variable("v", ("y", "x"), raster)
    nc_path = str(tmp / "a.nc")
    write_ncdf(nc_path, nc)

    idx_path = str(tmp / "a.idx")
    ds = IdxDataset.create(idx_path, dims=raster.shape, bits_per_block=6)
    ds.write(raster)
    ds.finalize()

    blobs = {}
    for name, path in (("tiff", tiff_path), ("ncdf", nc_path), ("idx", idx_path)):
        with open(path, "rb") as fh:
            blobs[name] = fh.read()
    return tmp, blobs


def _write(tmp, name, data):
    path = str(tmp / f"fuzz-{name}-{len(data)}.bin")
    with open(path, "wb") as fh:
        fh.write(data)
    return path


class TestTruncation:
    @pytest.mark.parametrize("fraction", [0.0, 0.1, 0.5, 0.9, 0.99])
    def test_tiff_truncation(self, artifacts, fraction):
        tmp, blobs = artifacts
        data = blobs["tiff"][: int(len(blobs["tiff"]) * fraction)]
        path = _write(tmp, "tif", data)
        with pytest.raises((TiffError, ValueError)):
            read_tiff(path)

    @pytest.mark.parametrize("fraction", [0.0, 0.1, 0.5, 0.9])
    def test_ncdf_truncation(self, artifacts, fraction):
        tmp, blobs = artifacts
        data = blobs["ncdf"][: int(len(blobs["ncdf"]) * fraction)]
        path = _write(tmp, "nc", data)
        with pytest.raises((NcdfError, ValueError)):
            read_ncdf(path)

    @pytest.mark.parametrize("fraction", [0.0, 0.05, 0.3, 0.8])
    def test_idx_truncation(self, artifacts, fraction):
        _, blobs = artifacts
        data = blobs["idx"][: int(len(blobs["idx"]) * fraction)]
        source = BytesByteSource(data)
        try:
            reader = IdxBinaryReader(source)
            # Header may have survived; block reads must then fail cleanly.
            for b in reader.present_blocks(0, 0):
                reader.read_block(0, 0, int(b))
        except ACCEPTABLE_IDX:
            return
        # Extremely high truncation fractions can leave the file intact
        # enough to read fully — that's fine too, but only if content
        # verification also passes.
        report = verify_dataset(BytesByteSource(data))
        assert report.ok


class TestBitFlips:
    @pytest.mark.parametrize("seed", range(8))
    def test_idx_random_flips_detected_or_clean_error(self, artifacts, seed):
        """Any single-byte flip either (a) raises a typed error, (b) is
        caught by verify_dataset, or (c) hits ignorable metadata."""
        _, blobs = artifacts
        data = bytearray(blobs["idx"])
        rng = np.random.default_rng(seed)
        pos = int(rng.integers(0, len(data)))
        data[pos] ^= 0x40
        source = BytesByteSource(bytes(data))
        try:
            report = verify_dataset(source)
        except ACCEPTABLE_IDX:
            return  # header/table parse failed loudly: acceptable
        if report.ok:
            # The flip landed somewhere the manifest doesn't cover (header
            # text, table slack); reading must still behave sanely.
            try:
                reader = IdxBinaryReader(BytesByteSource(bytes(data)))
                for b in reader.present_blocks(0, 0):
                    reader.read_block(0, 0, int(b))
            except ACCEPTABLE_IDX:
                pass

    @pytest.mark.parametrize("seed", range(6))
    def test_tiff_random_flips(self, artifacts, seed):
        tmp, blobs = artifacts
        data = bytearray(blobs["tiff"])
        rng = np.random.default_rng(100 + seed)
        for pos in rng.integers(0, len(data), 4):
            data[int(pos)] ^= 0xFF
        path = _write(tmp, f"flip{seed}.tif", bytes(data))
        try:
            read_tiff(path)  # may survive if flips hit pixel data
        except (TiffError, ValueError, OverflowError, MemoryError):
            pass  # typed failure is acceptable

    @pytest.mark.parametrize("seed", range(6))
    def test_ncdf_random_flips(self, artifacts, seed):
        tmp, blobs = artifacts
        data = bytearray(blobs["ncdf"])
        rng = np.random.default_rng(200 + seed)
        for pos in rng.integers(0, len(data), 4):
            data[int(pos)] ^= 0xFF
        path = _write(tmp, f"flip{seed}.nc", bytes(data))
        try:
            read_ncdf(path)
        except (NcdfError, ValueError, UnicodeDecodeError, MemoryError):
            pass


class TestCodecGarbage:
    @pytest.mark.parametrize("spec", ["zlib", "lz4", "rle", "zfp", "shuffle"])
    @pytest.mark.parametrize("seed", range(4))
    def test_random_bytes_never_crash_decoders(self, spec, seed):
        codec = get_codec(spec)
        rng = np.random.default_rng(seed)
        garbage = rng.integers(0, 256, int(rng.integers(0, 300)), dtype=np.uint8).tobytes()
        try:
            codec.decode_array(garbage, np.float32, (8, 8))
        except (CodecError, ValueError):
            pass  # typed rejection
