"""Tests for terrain-parameter kernels (Horn's method)."""

import numpy as np
import pytest

from repro.terrain.parameters import (
    TERRAIN_PARAMETERS,
    aspect,
    compute_parameter,
    hillshade,
    horn_gradient,
    roughness,
    slope,
    tpi,
)


def plane(ny, nx, dy, dx, cellsize=1.0):
    """A tilted plane with gradient (dy, dx) per cell."""
    y = np.arange(ny)[:, None] * dy
    x = np.arange(nx)[None, :] * dx
    return (y + x).astype(np.float64)


class TestHornGradient:
    def test_flat_surface_zero(self):
        ge, gs = horn_gradient(np.full((10, 10), 7.0), cellsize=30.0)
        assert np.allclose(ge, 0) and np.allclose(gs, 0)

    def test_tilted_plane_exact(self):
        # dz/dx = 2 per cell, cellsize 10 -> gradient 0.2 eastward.
        dem = plane(12, 12, 0.0, 2.0)
        ge, gs = horn_gradient(dem, cellsize=10.0)
        interior = (slice(1, -1), slice(1, -1))
        assert np.allclose(ge[interior], 0.2)
        assert np.allclose(gs[interior], 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            horn_gradient(np.zeros(5))
        with pytest.raises(ValueError):
            horn_gradient(np.zeros((5, 5)), cellsize=0)


class TestSlope:
    def test_flat_is_zero(self):
        assert np.allclose(slope(np.full((8, 8), 100.0)), 0.0)

    def test_45_degree_plane(self):
        # dz/dy = cellsize -> tan(slope) = 1 -> 45 degrees.
        dem = plane(16, 16, 30.0, 0.0)
        s = slope(dem, cellsize=30.0)
        assert np.allclose(s[1:-1, 1:-1], 45.0, atol=1e-4)

    def test_range(self, small_dem):
        s = slope(small_dem)
        assert s.min() >= 0.0
        assert s.max() < 90.0

    def test_steeper_means_higher(self):
        gentle = slope(plane(10, 10, 1.0, 0.0), cellsize=30.0)
        steep = slope(plane(10, 10, 10.0, 0.0), cellsize=30.0)
        assert steep[5, 5] > gentle[5, 5]


class TestAspect:
    @pytest.mark.parametrize(
        "dy,dx,expected",
        [
            (-1.0, 0.0, 180.0),  # rises northward -> faces south
            (1.0, 0.0, 0.0),     # rises southward -> faces north
            (0.0, -1.0, 90.0),   # rises westward -> faces east
            (0.0, 1.0, 270.0),   # rises eastward -> faces west
        ],
    )
    def test_cardinal_directions(self, dy, dx, expected):
        dem = plane(12, 12, dy, dx)
        a = aspect(dem)
        interior = a[2:-2, 2:-2]
        assert np.allclose(interior, expected, atol=1e-4), (dy, dx)

    def test_flat_is_nan(self):
        a = aspect(np.full((8, 8), 5.0))
        assert np.isnan(a).all()

    def test_range(self, small_dem):
        a = aspect(small_dem)
        finite = a[np.isfinite(a)]
        assert finite.min() >= 0.0
        assert finite.max() < 360.0

    def test_diagonal(self):
        # Rises toward the southeast -> faces northwest (315 deg).
        dem = plane(12, 12, 1.0, 1.0)
        a = aspect(dem)
        assert np.allclose(a[2:-2, 2:-2], 315.0, atol=1e-4)


class TestHillshade:
    def test_range(self, small_dem):
        h = hillshade(small_dem)
        assert h.min() >= 0.0
        assert h.max() <= 255.0

    def test_flat_fully_lit_by_vertical_sun(self):
        h = hillshade(np.full((8, 8), 10.0), altitude_deg=90.0)
        assert np.allclose(h, 255.0)

    def test_sun_facing_slope_brighter(self):
        # NW sun (315 deg): a NW-facing slope outshines a SE-facing one.
        nw_facing = plane(16, 16, 1.0, 1.0)   # aspect 315
        se_facing = plane(16, 16, -1.0, -1.0)  # aspect 135
        h_nw = hillshade(nw_facing, cellsize=1.0, azimuth_deg=315.0)
        h_se = hillshade(se_facing, cellsize=1.0, azimuth_deg=315.0)
        assert h_nw[8, 8] > h_se[8, 8]

    def test_altitude_validation(self):
        with pytest.raises(ValueError):
            hillshade(np.zeros((4, 4)), altitude_deg=0.0)

    def test_z_factor_exaggerates(self, small_dem):
        # Stronger relief exaggeration steepens every slope, so more of
        # the scene falls into shadow and mean brightness drops.
        h1 = hillshade(small_dem, z_factor=1.0)
        h5 = hillshade(small_dem, z_factor=5.0)
        assert h5.mean() < h1.mean()
        assert not np.array_equal(h1, h5)


class TestRoughnessTpi:
    def test_flat_zero(self):
        assert np.allclose(roughness(np.full((6, 6), 3.0)), 0.0)
        assert np.allclose(tpi(np.full((6, 6), 3.0)), 0.0)

    def test_single_peak(self):
        dem = np.zeros((9, 9))
        dem[4, 4] = 10.0
        r = roughness(dem)
        assert r[4, 4] == 10.0
        t = tpi(dem)
        assert t[4, 4] > 0  # peak sits above its neighbourhood mean
        assert t[4, 3] < 0  # neighbours sit below theirs


class TestDispatch:
    def test_all_parameters_run(self, small_dem):
        for name in TERRAIN_PARAMETERS:
            out = compute_parameter(name, small_dem, 30.0)
            assert out.shape == small_dem.shape
            assert out.dtype == np.float32

    def test_elevation_is_copy(self, small_dem):
        out = compute_parameter("elevation", small_dem)
        out[0, 0] = -1
        assert small_dem[0, 0] != -1

    def test_unknown_parameter(self, small_dem):
        with pytest.raises(ValueError, match="unknown terrain parameter"):
            compute_parameter("curvature9000", small_dem)
