"""Tests for batched conversion (convert_many) and its wiring through the
workflow step, the CLI, and the dashboard session."""

import os

import numpy as np
import pytest

from repro.cli import main
from repro.dashboard.session import DashboardSession
from repro.formats.ncdf import NcdfFile, write_ncdf
from repro.formats.tiff import write_tiff
from repro.idx import ConversionJob, IdxDataset, convert_many, ncdf_to_idx
from repro.idx.idxfile import IdxError


@pytest.fixture
def tiff_batch(tmp_path, rng):
    """Four valid TIFFs, returned as (source, dest) job pairs."""
    jobs = []
    for i in range(4):
        a = rng.random((48, 64)).astype(np.float32) + i
        src = str(tmp_path / f"t{i}.tif")
        write_tiff(src, a)
        jobs.append((src, str(tmp_path / f"t{i}.idx")))
    return jobs


class TestConvertMany:
    def test_all_jobs_convert(self, tiff_batch):
        batch = convert_many(tiff_batch, workers=3)
        assert batch.ok and len(batch.succeeded) == 4
        for (src, dst), report in zip(tiff_batch, batch.reports):
            assert report.idx_path == dst
            assert os.path.exists(dst)
            assert report.idx_bytes == os.path.getsize(dst)

    def test_results_keep_input_order(self, tiff_batch):
        batch = convert_many(tiff_batch, workers=4)
        assert [r.source_path for r in batch.reports] == [src for src, _ in tiff_batch]

    def test_partial_failure_isolated(self, tmp_path, tiff_batch):
        bad = str(tmp_path / "bad.tif")
        with open(bad, "wb") as fh:
            fh.write(b"garbage")
        jobs = tiff_batch[:2] + [(bad, str(tmp_path / "bad.idx"))] + tiff_batch[2:]
        batch = convert_many(jobs, workers=3)
        assert not batch.ok
        assert len(batch.succeeded) == 4
        assert batch.errors[2] is not None and "TiffError" in batch.errors[2]
        assert [i for i, e in enumerate(batch.errors) if e is not None] == [2]
        assert len(batch.failed) == 1

    def test_serial_and_parallel_agree(self, tiff_batch):
        serial = convert_many(tiff_batch, workers=1)
        parallel = convert_many(tiff_batch, workers=4)
        assert serial.ok and parallel.ok
        assert [r.idx_bytes for r in serial.reports] == [r.idx_bytes for r in parallel.reports]

    def test_aggregate_accounting(self, tiff_batch):
        batch = convert_many(tiff_batch, workers=2)
        assert batch.source_bytes == sum(r.source_bytes for r in batch.reports)
        assert batch.idx_bytes == sum(r.idx_bytes for r in batch.reports)
        assert batch.ratio == pytest.approx(batch.idx_bytes / batch.source_bytes)
        assert batch.wall_seconds > 0
        assert batch.throughput_bytes_per_s > 0

    def test_job_options_flow_to_converter(self, tiff_batch):
        src, dst = tiff_batch[0]
        job = ConversionJob.make(src, dst, field_name="elevation", codec="lz4")
        batch = convert_many([job])
        assert batch.ok
        ds = IdxDataset.open(dst)
        assert ds.fields == ("elevation",)
        assert ds.header.codec == "lz4"

    def test_unknown_extension_rejected(self, tmp_path):
        src = str(tmp_path / "x.bin")
        with open(src, "wb") as fh:
            fh.write(b"\x00")
        batch = convert_many([(src, str(tmp_path / "x.idx"))])
        assert not batch.ok and "IdxError" in batch.errors[0]

    def test_workers_validated(self, tiff_batch):
        with pytest.raises(IdxError):
            convert_many(tiff_batch, workers=0)


class TestNcdfStaticReplication:
    def _write_nc(self, path, n_time=6):
        nc = NcdfFile()
        nc.add_dim("time", n_time)
        nc.add_dim("y", 16)
        nc.add_dim("x", 16)
        temp = np.arange(n_time * 16 * 16, dtype=np.float32).reshape(n_time, 16, 16)
        elev = np.linspace(0, 100, 256, dtype=np.float32).reshape(16, 16)
        nc.add_variable("temperature", ("time", "y", "x"), temp)
        nc.add_variable("elevation", ("y", "x"), elev)
        write_ncdf(path, nc)
        return temp, elev

    def test_static_variable_replicated_not_rescattered(self, tmp_path):
        src = str(tmp_path / "c.nc")
        dst = str(tmp_path / "c.idx")
        temp, elev = self._write_nc(src)
        report = ncdf_to_idx(src, dst, bits_per_block=6)
        ds = IdxDataset.open(dst)
        for t in range(6):
            assert np.array_equal(ds.read(field="elevation", time=t), elev)
            assert np.array_equal(ds.read(field="temperature", time=t), temp[t])
        # The static field's blocks were encoded once and shared 5 times.
        assert report.encode_stats.blocks_shared > 0

    def test_replication_shrinks_file(self, tmp_path, rng):
        # Same data, two write strategies: replicate_timestep stores the
        # payload once; an explicit per-timestep write stores it n times.
        a = rng.random((32, 32)).astype(np.float32)
        n_time = 12
        rep, exp = str(tmp_path / "rep.idx"), str(tmp_path / "exp.idx")
        ds = IdxDataset.create(rep, dims=a.shape, timesteps=n_time, bits_per_block=6)
        ds.write(a, time=0)
        ds.replicate_timestep(from_time=0, to_times=range(1, n_time))
        ds.finalize()
        ds = IdxDataset.create(exp, dims=a.shape, timesteps=n_time, bits_per_block=6)
        for t in range(n_time):
            ds.write(a, time=t)
        ds.finalize()
        assert os.path.getsize(rep) < 0.5 * os.path.getsize(exp)
        assert np.array_equal(IdxDataset.open(rep).read(time=7), IdxDataset.open(exp).read(time=7))


class TestStepAndSessionWiring:
    def test_step2_parallel_matches_serial(self, tmp_path, rng):
        from repro.core.steps import make_step1_generate, make_step2_convert

        ctx = make_step1_generate(str(tmp_path / "tiff"), shape=(64, 64)).func({})
        out_s = make_step2_convert(str(tmp_path / "ser"), workers=1).func(dict(ctx))
        out_p = make_step2_convert(str(tmp_path / "par"), workers=4).func(dict(ctx))
        assert sorted(out_s["idx_paths"]) == sorted(out_p["idx_paths"])
        for name in out_s["idx_paths"]:
            a = IdxDataset.open(out_s["idx_paths"][name]).read(field=name)
            b = IdxDataset.open(out_p["idx_paths"][name]).read(field=name)
            assert np.array_equal(a, b)

    def test_step2_surfaces_all_failures(self, tmp_path):
        from repro.core.steps import make_step2_convert

        bad1 = str(tmp_path / "bad1.tif")
        bad2 = str(tmp_path / "bad2.tif")
        for p in (bad1, bad2):
            with open(p, "wb") as fh:
                fh.write(b"junk")
        step = make_step2_convert(str(tmp_path / "out"), workers=2)
        with pytest.raises(ValueError) as err:
            step.func({"tiff_paths": {"b1": bad1, "b2": bad2}})
        assert "2 file(s)" in str(err.value)

    def test_session_import_files(self, tmp_path, tiff_batch):
        session = DashboardSession(viewport=(64, 64))
        sources = {f"layer{i}": src for i, (src, _) in enumerate(tiff_batch)}
        sources["broken"] = str(tmp_path / "nope.tif")
        batch = session.import_files(sources, str(tmp_path / "imported"), workers=3)
        assert len(batch.succeeded) == 4 and len(batch.failed) == 1
        assert sorted(session.dataset_names) == [f"layer{i}" for i in range(4)]
        frame = session.current_frame()
        assert frame.ndim == 3


class TestCliBatch:
    def test_batch_convert_command(self, tmp_path, tiff_batch, capsys):
        sources = [src for src, _ in tiff_batch]
        out_dir = str(tmp_path / "cli-out")
        assert main(["batch-convert", *sources, "--out-dir", out_dir, "--workers", "2"]) == 0
        assert "batch: 4/4 converted" in capsys.readouterr().out
        assert len(os.listdir(out_dir)) == 4

    def test_batch_convert_failure_exit_code(self, tmp_path, capsys):
        bad = str(tmp_path / "bad.tif")
        with open(bad, "wb") as fh:
            fh.write(b"nope")
        assert main(["batch-convert", bad, "--out-dir", str(tmp_path / "o")]) == 1

    def test_convert_workers_flag(self, tmp_path, tiff_batch, capsys):
        src, _ = tiff_batch[0]
        dst = str(tmp_path / "w.idx")
        assert main(["convert", src, dst, "--workers", "4"]) == 0
        out = capsys.readouterr().out
        assert "encode:" in out

    def test_ingest_command(self, tmp_path, capsys):
        out_dir = str(tmp_path / "ingest")
        rc = main([
            "ingest", "--out-dir", out_dir, "--size", "64", "--grid", "2,2",
            "--workers", "2", "--parameters", "slope,hillshade",
        ])
        assert rc == 0
        assert sorted(os.listdir(out_dir)) == ["hillshade.idx", "slope.idx"]
        assert "blocks encoded" in capsys.readouterr().out
