"""Tests for the Dataverse public repository analogue."""

import pytest

from repro.formats.metadata import DatasetMetadata
from repro.storage.dataverse import Dataverse, DataverseError


@pytest.fixture
def dv():
    return Dataverse("test-dv", seed=0)


@pytest.fixture
def meta():
    return DatasetMetadata(
        name="tn-terrain",
        title="Tennessee terrain 30m",
        keywords=["terrain", "tennessee"],
        region="tennessee",
    )


class TestLifecycle:
    def test_doi_format(self, dv, meta):
        doi = dv.create_dataset(meta, owner="lab")
        assert doi.startswith("doi:10.70122/FK2/")
        assert len(doi.split("/")[-1]) == 6

    def test_dois_unique(self, dv, meta):
        dois = {dv.create_dataset(meta, owner="lab") for _ in range(50)}
        assert len(dois) == 50

    def test_draft_not_public(self, dv, meta):
        doi = dv.create_dataset(meta, owner="lab")
        dv.upload_file(doi, "f.bin", b"x", owner="lab")
        with pytest.raises(DataverseError):
            dv.get_file(doi, "f.bin", requester="public")
        # The owner can read their own draft.
        assert dv.get_file(doi, "f.bin", version=0, requester="lab") == b"x"

    def test_publish_makes_public(self, dv, meta):
        doi = dv.create_dataset(meta, owner="lab")
        dv.upload_file(doi, "f.bin", b"x", owner="lab")
        assert dv.publish(doi, owner="lab") == 1
        assert dv.get_file(doi, "f.bin") == b"x"

    def test_publish_empty_draft_rejected(self, dv, meta):
        doi = dv.create_dataset(meta, owner="lab")
        with pytest.raises(DataverseError):
            dv.publish(doi, owner="lab")

    def test_versioning(self, dv, meta):
        doi = dv.create_dataset(meta, owner="lab")
        dv.upload_file(doi, "f.bin", b"v1", owner="lab")
        dv.publish(doi, owner="lab")
        dv.upload_file(doi, "f.bin", b"v2", owner="lab")
        dv.upload_file(doi, "g.bin", b"new", owner="lab")
        assert dv.publish(doi, owner="lab") == 2
        # Old version remains immutable and retrievable.
        assert dv.get_file(doi, "f.bin", version=1) == b"v1"
        assert dv.get_file(doi, "f.bin", version=2) == b"v2"
        assert dv.get_file(doi, "g.bin") == b"new"
        assert dv.dataset_info(doi).files(1) == ["f.bin"]
        assert dv.dataset_info(doi).files(2) == ["f.bin", "g.bin"]

    def test_ownership_enforced(self, dv, meta):
        doi = dv.create_dataset(meta, owner="lab")
        with pytest.raises(DataverseError):
            dv.upload_file(doi, "f", b"x", owner="intruder")
        dv.upload_file(doi, "f", b"x", owner="lab")
        with pytest.raises(DataverseError):
            dv.publish(doi, owner="intruder")

    def test_unknown_doi(self, dv):
        with pytest.raises(DataverseError):
            dv.get_file("doi:10.70122/FK2/XXXXXX", "f")

    def test_missing_file_and_version(self, dv, meta):
        doi = dv.create_dataset(meta, owner="lab")
        dv.upload_file(doi, "f", b"x", owner="lab")
        dv.publish(doi, owner="lab")
        with pytest.raises(DataverseError):
            dv.get_file(doi, "missing")
        with pytest.raises(DataverseError):
            dv.get_file(doi, "f", version=9)


class TestDiscovery:
    def test_search_requires_all_terms(self, dv, meta):
        doi = dv.create_dataset(meta, owner="lab")
        dv.upload_file(doi, "f", b"x", owner="lab")
        dv.publish(doi, owner="lab")
        assert dv.search("tennessee terrain") == [doi]
        assert dv.search("tennessee mars") == []

    def test_search_excludes_drafts(self, dv, meta):
        dv.create_dataset(meta, owner="lab")  # draft only
        assert dv.search("tennessee") == []

    def test_search_ranked_by_downloads(self, dv):
        m1 = DatasetMetadata(name="a", title="terrain set one", keywords=["terrain"])
        m2 = DatasetMetadata(name="b", title="terrain set two", keywords=["terrain"])
        d1 = dv.create_dataset(m1, owner="lab")
        d2 = dv.create_dataset(m2, owner="lab")
        for doi in (d1, d2):
            dv.upload_file(doi, "f", b"x", owner="lab")
            dv.publish(doi, owner="lab")
        for _ in range(3):
            dv.get_file(d2, "f")
        assert dv.search("terrain") == [d2, d1]

    def test_list_datasets(self, dv, meta):
        doi = dv.create_dataset(meta, owner="lab")
        assert dv.list_datasets() == []
        assert dv.list_datasets(published_only=False) == [doi]
        dv.upload_file(doi, "f", b"x", owner="lab")
        dv.publish(doi, owner="lab")
        assert dv.list_datasets() == [doi]

    def test_download_counter(self, dv, meta):
        doi = dv.create_dataset(meta, owner="lab")
        dv.upload_file(doi, "f", b"x", owner="lab")
        dv.publish(doi, owner="lab")
        dv.get_file(doi, "f")
        dv.get_file(doi, "f")
        assert dv.dataset_info(doi).downloads == 2
