"""Batched multi-box planner: byte-identity, dedup accounting, plan reuse.

The batch planner's contract is exact: for every window of a batch the
result must be byte-identical to a standalone per-window
``BoxQuery.execute``, while the batch as a whole reads each unique block
exactly once.  The hypothesis property sweeps boxes, dtypes, block sizes
and resolutions; the accounting tests pin the dedup guarantee with the
access log and compare against the per-window baseline at ~50 % overlap.
"""

import tempfile

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.idx import IdxDataset
from repro.idx.access import AccessScope, use_scope
from repro.idx.hzorder import PlanCache
from repro.ml import BatchPlanner, Window
from repro.util.arrays import Box

SHAPE = (32, 48)

_DATASETS = {}


def _dataset(dtype: str, bits: int):
    """Finalized dataset + source array, cached per (dtype, block size)."""
    key = (dtype, bits)
    if key not in _DATASETS:
        rng = np.random.default_rng(hash(key) % (2**32))
        if dtype == "float32":
            arr = rng.random(SHAPE, dtype=np.float64).astype(np.float32)
        else:
            arr = rng.integers(1, 200, SHAPE).astype(dtype)
        path = tempfile.mktemp(suffix=".idx")
        ds = IdxDataset.create(
            path, dims=SHAPE, fields={"v": dtype}, bits_per_block=bits
        )
        ds.write(arr)
        ds.finalize()
        _DATASETS[key] = (IdxDataset.open(path), arr)
    return _DATASETS[key]


def _windows_strategy():
    box = st.tuples(
        st.integers(0, SHAPE[0] - 1),
        st.integers(0, SHAPE[1] - 1),
        st.integers(1, 16),
        st.integers(1, 16),
    )
    return st.lists(box, min_size=1, max_size=6)


class TestByteIdentity:
    @given(
        boxes=_windows_strategy(),
        bits=st.sampled_from([4, 6, 9]),
        dtype=st.sampled_from(["float32", "int32", "uint8"]),
        coarsen=st.integers(0, 4),
    )
    @settings(max_examples=40, deadline=None)
    def test_batched_equals_per_window(self, boxes, bits, dtype, coarsen):
        """Every batched result is byte-identical to BoxQuery.execute."""
        ds, _ = _dataset(dtype, bits)
        maxh = ds.header.bitmask_obj().maxh
        h_end = max(0, maxh - coarsen)
        windows = [
            Window(
                Box((ly, lx), (min(ly + h, SHAPE[0]), min(lx + w, SHAPE[1]))),
                h_end,
            )
            for (ly, lx, h, w) in boxes
        ]
        planner = BatchPlanner(ds.access)
        results = planner.execute(windows)
        assert len(results) == len(windows)
        for win, res in zip(windows, results):
            ref = ds.query(box=win.box, resolution=h_end).execute()
            assert res.data.dtype == ref.data.dtype
            assert res.data.shape == ref.data.shape
            np.testing.assert_array_equal(res.data, ref.data)
            assert res.offsets == ref.offsets
            assert res.strides == ref.strides
            assert res.found == ref.found
            assert res.level == ref.level

    def test_mixed_resolution_batch(self):
        """One batch may mix resolutions; each window matches its own cap."""
        ds, _ = _dataset("float32", 6)
        maxh = ds.header.bitmask_obj().maxh
        windows = [
            Window(Box((0, 0), (16, 16)), maxh),
            Window(Box((4, 4), (20, 20)), maxh - 2),
            Window(Box((8, 8), (24, 24)), maxh - 4),
        ]
        results = BatchPlanner(ds.access).execute(windows)
        for win, res in zip(windows, results):
            ref = ds.query(box=win.box, resolution=win.resolution).execute()
            np.testing.assert_array_equal(res.data, ref.data)

    def test_full_resolution_default(self):
        """resolution=None reads the finest level, same as BoxQuery."""
        ds, arr = _dataset("int32", 6)
        win = Window(Box((3, 5), (19, 29)))
        (res,) = BatchPlanner(ds.access).execute([win])
        np.testing.assert_array_equal(res.data, arr[3:19, 5:29])


class TestDedupAccounting:
    def _overlapping_windows(self, n=32, size=16, stride=8):
        """A batch-of-n sweep where each window shares ~50 % with a neighbour."""
        windows = []
        y, x = 0, 0
        for _ in range(n):
            if x + size > SHAPE[1]:
                x = 0
                y += stride
            if y + size > SHAPE[0]:
                y = 0
            windows.append(Window(Box((y, x), (y + size, x + size))))
            x += stride
        return windows

    def test_each_unique_block_read_once(self):
        """Within a batch, the access log shows no block twice."""
        ds, _ = _dataset("float32", 6)
        windows = self._overlapping_windows()
        planner = BatchPlanner(ds.access)
        batch = planner.plan(windows)
        assert batch.window_block_touches > batch.unique_blocks  # real overlap
        snap = ds.access.counters.snapshot()
        planner.execute(batch)
        read = [b for (_, _, b) in ds.access.counters.blocks_since(snap)]
        assert len(read) == len(set(read)), "a block was read twice in one batch"
        assert sorted(set(read)) == batch.worklist.tolist()
        assert len(read) == batch.unique_blocks

    def test_at_least_2x_fewer_reads_than_per_window(self):
        """At ~50 % overlap and batch 32, batching halves block reads."""
        ds, _ = _dataset("float32", 6)
        windows = self._overlapping_windows(n=32)
        planner = BatchPlanner(ds.access)
        snap = ds.access.counters.snapshot()
        planner.execute(windows)
        batched = ds.access.counters.blocks_read - snap[0]

        snap = ds.access.counters.snapshot()
        for win in windows:
            ds.query(box=win.box).execute()
        per_window = ds.access.counters.blocks_read - snap[0]
        assert per_window >= 2 * batched, (per_window, batched)

    def test_scope_attribution(self):
        """Batched I/O lands on the bound AccessScope, not the default."""
        ds, _ = _dataset("float32", 6)
        scope = AccessScope("trainer")
        before_default = ds.access._default_scope.counters.blocks_read
        with use_scope(scope):
            BatchPlanner(ds.access).execute([Window(Box((0, 0), (16, 16)))])
        assert scope.counters.blocks_read > 0
        assert ds.access._default_scope.counters.blocks_read == before_default


class TestPlanReuse:
    def test_window_plan_cached(self):
        """The fused argsort segmentation is memoised per window."""
        cache = PlanCache(1 << 20)
        ds, _ = _dataset("float32", 6)
        planner = BatchPlanner(ds.access, cache=cache)
        win = Window(Box((2, 2), (18, 18)))
        p1 = planner.window_plan(win)
        misses = cache.stats.misses
        p2 = planner.window_plan(win)
        assert cache.stats.misses == misses  # second plan is a pure hit
        assert cache.stats.hits > 0
        assert p1.order is p2.order  # shared cached arrays
        np.testing.assert_array_equal(p1.block_ids, p2.block_ids)

    def test_cached_arrays_are_read_only(self):
        cache = PlanCache(1 << 20)
        ds, _ = _dataset("float32", 6)
        planner = BatchPlanner(ds.access, cache=cache)
        plan = planner.window_plan(Window(Box((0, 0), (8, 8))))
        for arr in (plan.order, plan.block_ids, plan.bounds, plan.sorted_offs):
            with pytest.raises((ValueError, RuntimeError)):
                arr[0] = 0

    def test_block_size_part_of_key(self):
        """Datasets sharing a bitmask but not a block size don't collide."""
        cache = PlanCache(1 << 20)
        ds4, _ = _dataset("float32", 4)
        ds9, _ = _dataset("float32", 9)
        win = Window(Box((1, 1), (17, 25)))
        p4 = BatchPlanner(ds4.access, cache=cache).window_plan(win)
        p9 = BatchPlanner(ds9.access, cache=cache).window_plan(win)
        assert not np.array_equal(p4.block_ids, p9.block_ids)

    def test_uncached_planner(self):
        """cache=None plans correctly without memoisation."""
        ds, arr = _dataset("float32", 6)
        planner = BatchPlanner(ds.access, cache=None)
        (res,) = planner.execute([Window(Box((0, 0), (16, 16)))])
        np.testing.assert_array_equal(res.data, arr[:16, :16])


class TestDegenerateWindows:
    def test_out_of_bounds_window_is_clipped(self):
        ds, arr = _dataset("float32", 6)
        (res,) = BatchPlanner(ds.access).execute(
            [Window(Box((24, 40), (48, 64)))]
        )
        np.testing.assert_array_equal(res.data, arr[24:, 40:])

    def test_fully_outside_window_raises(self):
        ds, _ = _dataset("float32", 6)
        with pytest.raises(ValueError, match="empty after clipping"):
            BatchPlanner(ds.access).plan([Window(Box((64, 64), (80, 80)))])

    def test_bad_resolution_raises(self):
        ds, _ = _dataset("float32", 6)
        maxh = ds.header.bitmask_obj().maxh
        with pytest.raises(ValueError, match="out of range"):
            BatchPlanner(ds.access).plan(
                [Window(Box((0, 0), (8, 8)), maxh + 1)]
            )

    def test_empty_batch(self):
        ds, _ = _dataset("float32", 6)
        planner = BatchPlanner(ds.access)
        batch = planner.plan([])
        assert batch.unique_blocks == 0
        assert planner.execute(batch) == []

    def test_single_sample_window(self):
        ds, arr = _dataset("float32", 6)
        (res,) = BatchPlanner(ds.access).execute([Window(Box((7, 11), (8, 12)))])
        assert res.data.shape == (1, 1)
        assert res.data[0, 0] == arr[7, 11]

    def test_coarse_window_smaller_than_stride(self):
        """A tiny box at a very coarse level may hold no samples at all."""
        ds, _ = _dataset("float32", 6)
        (res,) = BatchPlanner(ds.access).execute([Window(Box((3, 3), (4, 4)), 0)])
        ref = ds.query(box=Box((3, 3), (4, 4)), resolution=0).execute()
        np.testing.assert_array_equal(res.data, ref.data)
        assert res.found == ref.found
