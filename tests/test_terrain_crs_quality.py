"""Tests for geographic regions and tiled-accuracy analysis."""

import numpy as np
import pytest

from repro.terrain.crs import M_PER_DEG_LAT, REGIONS, Region, grid_shape_for_region
from repro.terrain.geotiled import compute_tiled
from repro.terrain.parameters import slope
from repro.terrain.quality import seam_report, tiled_accuracy


class TestRegion:
    def test_tutorial_regions_exist(self):
        assert "conus" in REGIONS
        assert "tennessee" in REGIONS

    def test_conus_30m_grid_is_huge(self):
        """The paper's CONUS at 30 m: order 100k x 150k samples."""
        rows, cols = REGIONS["conus"].grid_shape(30.0)
        assert 50_000 < rows < 150_000
        assert 100_000 < cols < 250_000

    def test_tennessee_smaller_than_conus(self):
        tn = REGIONS["tennessee"].grid_shape(30.0)
        conus = REGIONS["conus"].grid_shape(30.0)
        assert tn[0] < conus[0] and tn[1] < conus[1]

    def test_extent_positive(self):
        ns, ew = REGIONS["tennessee"].extent_m()
        assert ns > 0 and ew > 0
        # Tennessee is much wider than tall.
        assert ew > 3 * ns

    def test_degenerate_bounds_rejected(self):
        with pytest.raises(ValueError):
            Region("bad", west=10, south=5, east=10, north=6)

    def test_resolution_validation(self):
        with pytest.raises(ValueError):
            REGIONS["conus"].grid_shape(0)

    def test_georeference_round_trip(self):
        g = REGIONS["tennessee"].georeference(30.0)
        # Pixel (0,0) center sits at the NW corner.
        x, y = g.pixel_to_model(0, 0)
        assert x == pytest.approx(REGIONS["tennessee"].west)
        assert y == pytest.approx(REGIONS["tennessee"].north)
        # One pixel south decreases latitude.
        _, y1 = g.pixel_to_model(1, 0)
        assert y1 < y

    def test_pixel_size_approximates_30m(self):
        g = REGIONS["tennessee"].georeference(30.0)
        assert abs(g.pixel_size[1]) * M_PER_DEG_LAT == pytest.approx(30.0, rel=1e-6)


class TestGridShapeForRegion:
    def test_scale_divisor(self):
        full = grid_shape_for_region("conus", scale_divisor=1)
        scaled = grid_shape_for_region("conus", scale_divisor=512)
        assert scaled[0] == max(2, full[0] // 512)

    def test_accepts_region_object(self):
        shape = grid_shape_for_region(REGIONS["tennessee"], scale_divisor=64)
        assert shape[0] >= 2 and shape[1] >= 2

    def test_bad_divisor(self):
        with pytest.raises(ValueError):
            grid_shape_for_region("conus", scale_divisor=0)


class TestTiledAccuracy:
    def test_exact_report(self, small_dem):
        ref = slope(small_dem)
        report = tiled_accuracy(ref.copy(), ref)
        assert report.exact
        assert report.max_abs_error == 0.0
        assert report.mismatched_fraction == 0.0

    def test_detects_differences(self, small_dem):
        ref = slope(small_dem)
        bad = ref.copy()
        bad[10, 10] += 1.0
        report = tiled_accuracy(bad, ref)
        assert not report.exact
        assert report.max_abs_error == pytest.approx(1.0)
        assert 0 < report.mismatched_fraction < 0.01

    def test_nan_aware(self):
        a = np.array([[np.nan, 1.0], [2.0, 3.0]])
        assert tiled_accuracy(a, a.copy()).exact
        b = a.copy()
        b[0, 0] = 5.0  # NaN vs value = mismatch
        report = tiled_accuracy(b, a)
        assert not report.exact

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            tiled_accuracy(np.zeros((2, 2)), np.zeros((3, 3)))


class TestSeamReport:
    def test_zero_halo_errors_live_on_seams(self, small_dem):
        kernel = lambda t: slope(t, 30.0)  # noqa: E731
        ref = kernel(small_dem)
        bad = compute_tiled(small_dem, kernel, grid=(3, 4), halo=0)
        report = seam_report(bad, ref, (3, 4))
        assert report["interior_mae"] == pytest.approx(0.0, abs=1e-12)
        assert report["seam_mae"] > 0.0
        assert report["seam_max"] > report["seam_mae"]

    def test_exact_tiling_no_seam_error(self, small_dem):
        kernel = lambda t: slope(t, 30.0)  # noqa: E731
        ref = kernel(small_dem)
        good = compute_tiled(small_dem, kernel, grid=(3, 4), halo=1)
        report = seam_report(good, ref, (3, 4))
        assert report["seam_mae"] == 0.0
        assert report["seam_max"] == 0.0

    def test_seam_fraction_reasonable(self, small_dem):
        ref = slope(small_dem)
        report = seam_report(ref, ref, (4, 4), band=2)
        assert 0.0 < report["seam_fraction"] < 0.5
