"""Dimensionality coverage: the HZ machinery is rank-generic (1-D..4-D)."""

import numpy as np
import pytest

from repro.idx import Bitmask, HzOrder, IdxDataset


class TestOneDimensional:
    def test_round_trip(self, tmp_path, rng):
        a = rng.random(200).astype(np.float32)
        path = str(tmp_path / "d1.idx")
        ds = IdxDataset.create(path, dims=a.shape, bits_per_block=5)
        ds.write(a)
        ds.finalize()
        assert np.array_equal(IdxDataset.open(path).read(), a)

    def test_window(self, tmp_path, rng):
        a = rng.random(128).astype(np.float32)
        path = str(tmp_path / "d1.idx")
        ds = IdxDataset.create(path, dims=a.shape, bits_per_block=4)
        ds.write(a)
        ds.finalize()
        out = IdxDataset.open(path)
        assert np.array_equal(out.read(box=((30,), (90,))), a[30:90])

    def test_coarse_levels(self, tmp_path, rng):
        a = rng.random(64).astype(np.float32)
        path = str(tmp_path / "d1.idx")
        ds = IdxDataset.create(path, dims=a.shape)
        ds.write(a)
        ds.finalize()
        out = IdxDataset.open(path)
        for h in range(out.maxh + 1):
            result = out.read_result(resolution=h)
            assert np.array_equal(result.data, a[result.axis_coords(0)])


class TestFourDimensional:
    def test_hz_bijection_4d(self):
        bm = Bitmask.from_dims((4, 4, 4, 4))
        hz = HzOrder(bm)
        grids = np.meshgrid(*[np.arange(4)] * 4, indexing="ij")
        coords = tuple(g.ravel() for g in grids)
        addr = hz.point_to_hz(coords)
        assert sorted(addr.tolist()) == list(range(256))
        back = hz.hz_to_point(addr)
        for a, b in zip(coords, back):
            assert np.array_equal(a, b)

    def test_round_trip_4d(self, tmp_path, rng):
        v = rng.random((4, 6, 8, 5)).astype(np.float32)
        path = str(tmp_path / "d4.idx")
        ds = IdxDataset.create(path, dims=v.shape, bits_per_block=7)
        ds.write(v)
        ds.finalize()
        assert np.array_equal(IdxDataset.open(path).read(), v)

    def test_box_query_4d(self, tmp_path, rng):
        v = rng.random((4, 8, 8, 4)).astype(np.float32)
        path = str(tmp_path / "d4.idx")
        ds = IdxDataset.create(path, dims=v.shape, bits_per_block=6)
        ds.write(v)
        ds.finalize()
        out = IdxDataset.open(path)
        window = out.read(box=((1, 2, 3, 0), (3, 7, 8, 2)))
        assert np.array_equal(window, v[1:3, 2:7, 3:8, 0:2])

    def test_coarse_level_4d(self, tmp_path, rng):
        v = rng.random((8, 8, 8, 8)).astype(np.float32)
        path = str(tmp_path / "d4.idx")
        ds = IdxDataset.create(path, dims=v.shape, bits_per_block=8)
        ds.write(v)
        ds.finalize()
        out = IdxDataset.open(path)
        result = out.read_result(resolution=out.maxh - 4)
        sub = v[np.ix_(*(result.axis_coords(a) for a in range(4)))]
        assert np.array_equal(result.data, sub)

    def test_write_region_4d(self, tmp_path, rng):
        v = rng.random((4, 4, 8, 8)).astype(np.float32)
        path = str(tmp_path / "d4.idx")
        ds = IdxDataset.create(path, dims=v.shape, bits_per_block=6)
        ds.write_region(v[:2], (0, 0, 0, 0))
        ds.write_region(v[2:], (2, 0, 0, 0))
        ds.finalize()
        assert np.array_equal(IdxDataset.open(path).read(), v)
