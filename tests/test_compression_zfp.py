"""Tests for the zfp-like lossy float codec and its error bound."""

import numpy as np
import pytest

from repro.compression import CodecError, ZfpCodec
from repro.compression.zfp_codec import _forward_lift, _inverse_lift


class TestLiftingTransform:
    def test_exact_inverse_random_ints(self):
        rng = np.random.default_rng(0)
        blocks = rng.integers(-(2**23), 2**23, size=(10, 64)).astype(np.int64)
        original = blocks.copy()
        _forward_lift(blocks)
        assert not np.array_equal(blocks, original)  # it does something
        _inverse_lift(blocks)
        assert np.array_equal(blocks, original)

    def test_exact_inverse_negative_odd_values(self):
        blocks = np.arange(-32, 32, dtype=np.int64).reshape(1, 64)
        original = blocks.copy()
        _forward_lift(blocks)
        _inverse_lift(blocks)
        assert np.array_equal(blocks, original)

    def test_smooth_data_decorrelates(self):
        # A linear ramp concentrates energy in the coarse coefficients:
        # the typical (median) coefficient magnitude ends up far below the
        # signal's peak magnitude, which is what zlib then exploits.
        ramp = np.arange(64, dtype=np.int64).reshape(1, 64) * 1000
        blocks = ramp.copy()
        _forward_lift(blocks)
        mags = np.abs(blocks)
        assert np.median(mags) < ramp.max() / 20
        assert mags.max() < 2 * ramp.max()  # no blow-up either


class TestZfpCodec:
    def test_precision_bounds(self):
        with pytest.raises(CodecError):
            ZfpCodec(precision=1)
        with pytest.raises(CodecError):
            ZfpCodec(precision=25)

    @pytest.mark.parametrize("precision", [4, 8, 12, 16, 20, 24])
    def test_error_within_tolerance(self, precision):
        rng = np.random.default_rng(precision)
        data = (rng.random((33, 47)) * 2000 - 500).astype(np.float32)
        codec = ZfpCodec(precision=precision)
        back = codec.decode_array(codec.encode_array(data), data.dtype, data.shape)
        err = np.max(np.abs(data.astype(np.float64) - back.astype(np.float64)))
        assert err <= codec.tolerance_for(data)

    def test_higher_precision_means_lower_error(self):
        rng = np.random.default_rng(3)
        data = rng.random((64, 64)).astype(np.float64) * 100
        errors = []
        for p in (6, 12, 20):
            codec = ZfpCodec(precision=p)
            back = codec.decode_array(codec.encode_array(data), data.dtype, data.shape)
            errors.append(np.max(np.abs(data - back)))
        assert errors[0] > errors[1] > errors[2]

    def test_higher_precision_means_larger_stream(self):
        rng = np.random.default_rng(4)
        data = rng.random(4096).astype(np.float32)
        sizes = [len(ZfpCodec(precision=p).encode_array(data)) for p in (6, 12, 20)]
        assert sizes[0] < sizes[1] < sizes[2]

    def test_smooth_data_compresses_well(self):
        x = np.linspace(0, 10, 128)
        smooth = np.sin(x[:, None]) * np.cos(x[None, :]).astype(np.float64)
        codec = ZfpCodec(precision=12)
        encoded = codec.encode_array(smooth.astype(np.float32))
        assert len(encoded) < smooth.astype(np.float32).nbytes / 2

    def test_zero_array_exact(self):
        z = np.zeros((16, 16), dtype=np.float32)
        codec = ZfpCodec()
        back = codec.decode_array(codec.encode_array(z), z.dtype, z.shape)
        assert np.array_equal(back, z)
        assert codec.tolerance_for(z) == 0.0

    def test_empty_array(self):
        e = np.empty((0,), dtype=np.float32)
        codec = ZfpCodec()
        back = codec.decode_array(codec.encode_array(e), e.dtype, e.shape)
        assert back.shape == (0,)

    def test_non_multiple_of_block(self):
        data = np.arange(100, dtype=np.float64) / 7.0
        codec = ZfpCodec(precision=20)
        back = codec.decode_array(codec.encode_array(data), data.dtype, data.shape)
        assert np.max(np.abs(back - data)) <= codec.tolerance_for(data)

    def test_3d_shape_preserved(self):
        rng = np.random.default_rng(5)
        data = rng.random((4, 8, 16)).astype(np.float32)
        codec = ZfpCodec(precision=16)
        back = codec.decode_array(codec.encode_array(data), data.dtype, data.shape)
        assert back.shape == data.shape

    def test_rejects_non_float(self):
        with pytest.raises(CodecError):
            ZfpCodec().encode_array(np.arange(10, dtype=np.int32))

    def test_rejects_nan(self):
        data = np.array([1.0, np.nan], dtype=np.float32)
        with pytest.raises(CodecError):
            ZfpCodec().encode_array(data)

    def test_dtype_mismatch_on_decode(self):
        codec = ZfpCodec()
        blob = codec.encode_array(np.ones(8, dtype=np.float32))
        with pytest.raises(CodecError):
            codec.decode_array(blob, np.float64, (8,))

    def test_shape_mismatch_on_decode(self):
        codec = ZfpCodec()
        blob = codec.encode_array(np.ones(8, dtype=np.float32))
        with pytest.raises(CodecError):
            codec.decode_array(blob, np.float32, (9,))

    def test_bad_magic(self):
        with pytest.raises(CodecError):
            ZfpCodec().decode_array(b"XXXX" + bytes(20), np.float32, (4,))

    def test_negative_values_bounded(self):
        data = -np.abs(np.random.default_rng(6).random(256).astype(np.float64)) * 1e6
        codec = ZfpCodec(precision=16)
        back = codec.decode_array(codec.encode_array(data), data.dtype, data.shape)
        assert np.max(np.abs(back - data)) <= codec.tolerance_for(data)

    def test_spec_round_trip(self):
        from repro.compression import get_codec

        codec = get_codec(ZfpCodec(precision=10).spec())
        assert codec.precision == 10
