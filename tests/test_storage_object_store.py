"""Tests for the S3-like object store."""

import pytest

from repro.storage.object_store import ObjectStore, StorageError


@pytest.fixture
def store():
    s = ObjectStore("test")
    s.create_bucket("data")
    return s


class TestBuckets:
    def test_create_and_list(self, store):
        store.create_bucket("other")
        assert store.buckets() == ["data", "other"]

    def test_duplicate_rejected(self, store):
        with pytest.raises(StorageError):
            store.create_bucket("data")

    def test_invalid_names(self, store):
        with pytest.raises(StorageError):
            store.create_bucket("")
        with pytest.raises(StorageError):
            store.create_bucket("a/b")

    def test_ensure_bucket_idempotent(self, store):
        b1 = store.ensure_bucket("data")
        b2 = store.ensure_bucket("data")
        assert b1 is b2

    def test_delete_empty_only(self, store):
        store.put("data", "k", b"x")
        with pytest.raises(StorageError):
            store.delete_bucket("data")
        store.delete("data", "k")
        store.delete_bucket("data")
        assert "data" not in store.buckets()


class TestObjects:
    def test_put_get(self, store):
        info = store.put("data", "a/b.bin", b"hello")
        assert info.size == 5
        assert store.get("data", "a/b.bin") == b"hello"

    def test_etag_content_addressed(self, store):
        i1 = store.put("data", "x", b"same")
        i2 = store.put("data", "y", b"same")
        i3 = store.put("data", "z", b"different")
        assert i1.etag == i2.etag != i3.etag

    def test_overwrite_updates(self, store):
        store.put("data", "k", b"v1")
        store.put("data", "k", b"v2")
        assert store.get("data", "k") == b"v2"

    def test_metadata(self, store):
        store.put("data", "k", b"x", metadata={"region": "conus"})
        assert store.head("data", "k").meta_dict() == {"region": "conus"}

    def test_missing_object(self, store):
        with pytest.raises(StorageError):
            store.get("data", "nope")
        with pytest.raises(StorageError):
            store.head("data", "nope")
        with pytest.raises(StorageError):
            store.delete("data", "nope")

    def test_missing_bucket(self, store):
        with pytest.raises(StorageError):
            store.get("void", "k")

    def test_empty_key_rejected(self, store):
        with pytest.raises(StorageError):
            store.put("data", "", b"x")

    def test_exists(self, store):
        store.put("data", "k", b"x")
        assert store.exists("data", "k")
        assert not store.exists("data", "nope")

    def test_sequence_monotone(self, store):
        i1 = store.put("data", "a", b"1")
        i2 = store.put("data", "b", b"2")
        assert i2.sequence > i1.sequence


class TestRangedGets:
    def test_range(self, store):
        store.put("data", "k", bytes(range(100)))
        assert store.get_range("data", "k", 10, 5) == bytes(range(10, 15))

    def test_zero_length(self, store):
        store.put("data", "k", b"abc")
        assert store.get_range("data", "k", 1, 0) == b""

    def test_out_of_bounds(self, store):
        store.put("data", "k", b"abc")
        with pytest.raises(StorageError):
            store.get_range("data", "k", 2, 5)
        with pytest.raises(StorageError):
            store.get_range("data", "k", -1, 1)


class TestListingAndStats:
    def test_prefix_listing(self, store):
        for k in ("a/1", "a/2", "b/1"):
            store.put("data", k, b"x")
        assert [o.key for o in store.list("data", "a/")] == ["a/1", "a/2"]
        assert len(store.list("data")) == 3

    def test_stats_counters(self, store):
        before = store.stats.snapshot()
        store.put("data", "k", b"12345")
        store.get("data", "k")
        store.get_range("data", "k", 0, 2)
        store.list("data")
        delta = store.stats.delta(before)
        assert delta.puts == 1
        assert delta.gets == 2
        assert delta.lists == 1
        assert delta.bytes_in == 5
        assert delta.bytes_out == 7

    def test_total_bytes(self, store):
        store.put("data", "a", b"xx")
        store.put("data", "b", b"yyy")
        assert store.total_bytes() == 5
