"""Tests for the survey/evaluation data (Table I, Fig. 8)."""

import numpy as np
import pytest

from repro.survey import (
    FIG8_QUESTIONS,
    LIKERT_LEVELS,
    PARTICIPANT_QUOTES,
    TABLE1_ROWS,
    Distribution,
    LikertLevel,
    by_audience,
    by_modality,
    fig8_distributions,
    simulate_responses,
    total_participants,
)
from repro.survey.simulate import aggregate


class TestTable1:
    def test_total_is_108(self):
        """The paper's headline participation number."""
        assert total_participants() == 108

    def test_four_venues(self):
        assert len(TABLE1_ROWS) == 4

    def test_row_values_match_paper(self):
        counts = {r.audience: r.participants for r in TABLE1_ROWS}
        assert counts["Computer science experts"] == 25
        assert counts["Domain science experts"] == 15
        assert counts["General public"] == 36
        assert counts["Undergraduate and graduate students"] == 32

    def test_modality_split(self):
        split = by_modality()
        assert split == {"In-person": 57, "Virtual": 51}
        assert sum(split.values()) == 108

    def test_audience_split_covers_all(self):
        assert sum(by_audience().values()) == 108

    def test_row_validation(self):
        from repro.survey.roster import TutorialVenue

        with pytest.raises(ValueError):
            TutorialVenue("v", "Hybrid", "a", 5)
        with pytest.raises(ValueError):
            TutorialVenue("v", "Virtual", "a", 0)


class TestLikert:
    def test_five_levels_ordered(self):
        assert len(LIKERT_LEVELS) == 5
        assert LikertLevel.STRONGLY_DISAGREE < LikertLevel.STRONGLY_AGREE

    def test_distribution_from_responses(self):
        d = Distribution.from_responses(
            [LikertLevel.AGREE, LikertLevel.AGREE, LikertLevel.NEUTRAL]
        )
        assert d.count(LikertLevel.AGREE) == 2
        assert d.total == 3

    def test_percent_positive(self):
        d = Distribution((0, 0, 2, 3, 5))
        assert d.percent_positive == pytest.approx(80.0)
        assert d.percent_negative == 0.0

    def test_mean_score(self):
        d = Distribution((1, 1, 1, 1, 1))
        assert d.mean_score == pytest.approx(3.0)

    def test_mode(self):
        d = Distribution((0, 0, 1, 5, 3))
        assert d.mode is LikertLevel.AGREE

    def test_combine(self):
        a = Distribution((1, 0, 0, 0, 0))
        b = Distribution((0, 0, 0, 0, 2))
        assert a.combine(b).counts == (1, 0, 0, 0, 2)

    def test_percentages_sum_to_100(self):
        d = Distribution((2, 3, 5, 7, 11))
        assert sum(d.as_percentages()) == pytest.approx(100.0)

    def test_bar_chart_renders(self):
        chart = Distribution((0, 1, 2, 3, 4)).bar_chart()
        assert "Strongly Agree" in chart

    def test_validation(self):
        with pytest.raises(ValueError):
            Distribution((1, 2, 3))
        with pytest.raises(ValueError):
            Distribution((1, 2, 3, 4, -1))
        with pytest.raises(ValueError):
            Distribution((0, 0, 0, 0, 0)).mode


class TestFig8:
    def test_four_questions(self):
        assert [q.qid for q in FIG8_QUESTIONS] == ["a", "b", "c", "d"]

    def test_all_marked_estimated(self):
        """No one can mistake the synthesised counts for published data."""
        assert all(q.estimated for q in FIG8_QUESTIONS)

    def test_totals_match_roster(self):
        for qid, dist in fig8_distributions().items():
            assert dist.total == 108, qid

    def test_overwhelmingly_positive(self):
        """The paper's qualitative claim, quantified."""
        for qid, dist in fig8_distributions().items():
            assert dist.percent_positive > 85.0, qid
            assert dist.percent_negative < 5.0, qid
            assert dist.mode in (LikertLevel.AGREE, LikertLevel.STRONGLY_AGREE)

    def test_quotes_present(self):
        assert len(PARTICIPANT_QUOTES) == 5
        roles = {role for role, _ in PARTICIPANT_QUOTES}
        assert "domain scientist" in roles
        assert "undergraduate student" in roles


class TestSimulate:
    def test_one_record_per_participant(self):
        responses = simulate_responses(seed=0)
        assert len(responses) == 108
        assert len({r.respondent_id for r in responses}) == 108

    def test_reaggregation_exact(self):
        """Synthesised records re-aggregate to the target marginals exactly."""
        responses = simulate_responses(seed=3)
        for qid, dist in fig8_distributions().items():
            assert aggregate(responses, qid).counts == dist.counts, qid

    def test_venue_assignment_matches_roster(self):
        responses = simulate_responses(seed=0)
        by_venue = {}
        for r in responses:
            by_venue[r.venue] = by_venue.get(r.venue, 0) + 1
        for row in TABLE1_ROWS:
            assert by_venue[row.venue] == row.participants

    def test_deterministic_in_seed(self):
        a = simulate_responses(seed=5)
        b = simulate_responses(seed=5)
        assert a == b
        c = simulate_responses(seed=6)
        assert a != c

    def test_filtered_aggregation_partitions(self):
        responses = simulate_responses(seed=1)
        for qid in ("a", "b", "c", "d"):
            full = aggregate(responses, qid)
            in_person = aggregate(responses, qid, modality="In-person")
            virtual = aggregate(responses, qid, modality="Virtual")
            assert in_person.combine(virtual).counts == full.counts

    def test_mismatched_distribution_rejected(self):
        from repro.survey.likert import Distribution

        with pytest.raises(ValueError):
            simulate_responses(distributions={"a": Distribution((1, 0, 0, 0, 0))})

    def test_answer_lookup(self):
        responses = simulate_responses(seed=0)
        r = responses[0]
        assert r.answer("a") in LIKERT_LEVELS
        with pytest.raises(KeyError):
            r.answer("z")
