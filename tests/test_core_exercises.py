"""Tests for tutorial exercises and the gradebook."""

import numpy as np
import pytest

from repro.core import (
    CheckResult,
    Exercise,
    Gradebook,
    build_tutorial_workflow,
    default_exercises,
    grade_run,
)


@pytest.fixture(scope="module")
def good_context(tmp_path_factory):
    """A completed workflow run (local mode, so ex6-cloud fails)."""
    out = str(tmp_path_factory.mktemp("grade"))
    return build_tutorial_workflow(out, shape=(48, 48), grid=(1, 1)).run().context


class TestExerciseSet:
    def test_six_default_exercises(self):
        exercises = default_exercises()
        assert len(exercises) == 6
        assert {ex.step for ex in exercises} == {1, 2, 3, 4}

    def test_points_total(self):
        assert sum(ex.points for ex in default_exercises()) == 50

    def test_good_run_passes_core_exercises(self, good_context):
        results = grade_run(good_context)
        for ex_id in ("ex1-generate", "ex2-convert", "ex3-validate",
                      "ex4-interact", "ex5-snip-script"):
            assert results[ex_id].passed, (ex_id, results[ex_id].feedback)

    def test_cloud_exercise_needs_seal(self, good_context):
        results = grade_run(good_context)
        assert not results["ex6-cloud"].passed  # local-mode run

    def test_empty_workspace_fails_everything(self):
        results = grade_run({})
        assert not any(r.passed for r in results.values())
        assert all(r.points_awarded == 0 for r in results.values())

    def test_feedback_is_actionable(self):
        results = grade_run({})
        assert "Step 1" in results["ex1-generate"].feedback
        assert "Step 2" in results["ex2-convert"].feedback

    def test_checker_crash_is_failure_not_error(self):
        bad = Exercise("boom", 1, "t", "p", 5, lambda ctx: 1 / 0)
        result = bad.check({})
        assert not result.passed
        assert "ZeroDivisionError" in result.feedback

    def test_corrupted_products_detected(self, good_context):
        ctx = dict(good_context)
        products = dict(ctx["products"])
        products["slope"] = products["slope"] + 500.0  # out of [0, 90)
        ctx["products"] = products
        results = grade_run(ctx)
        assert not results["ex1-generate"].passed

    def test_missing_product_detected(self, good_context):
        ctx = dict(good_context)
        products = dict(ctx["products"])
        del products["aspect"]
        ctx["products"] = products
        results = grade_run(ctx)
        assert not results["ex1-generate"].passed
        assert "aspect" in results["ex1-generate"].feedback


class TestGradebook:
    def test_scores_and_pass(self, good_context):
        gb = Gradebook()
        gb.grade("alice", good_context)
        gb.grade("bob", {})
        assert gb.score("alice") == 45  # everything except ex6-cloud
        assert gb.score("bob") == 0
        assert gb.passed("alice")
        assert not gb.passed("bob")

    def test_max_points(self):
        assert Gradebook().max_points == 50

    def test_unknown_participant(self):
        with pytest.raises(KeyError):
            Gradebook().score("ghost")

    def test_summary_sorted_best_first(self, good_context):
        gb = Gradebook()
        gb.grade("zoe", good_context)
        gb.grade("amy", {})
        summary = gb.summary()
        assert summary[0][0] == "zoe"
        assert summary[0][1] > summary[1][1]

    def test_exercise_pass_rates(self, good_context):
        gb = Gradebook()
        gb.grade("a", good_context)
        gb.grade("b", {})
        rates = gb.exercise_pass_rates()
        assert rates["ex1-generate"] == 0.5
        assert rates["ex6-cloud"] == 0.0

    def test_custom_exercise_set(self, good_context):
        always = Exercise("free", 1, "t", "p", 7, lambda ctx: CheckResult(True, "ok", 7))
        gb = Gradebook([always])
        gb.grade("x", {})
        assert gb.score("x") == 7
        assert gb.max_points == 7

    def test_threshold_parameter(self, good_context):
        gb = Gradebook()
        gb.grade("alice", good_context)  # 45/50 = 0.9
        assert gb.passed("alice", threshold=0.9)
        assert not gb.passed("alice", threshold=0.95)
