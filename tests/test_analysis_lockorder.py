"""Static lock-order rule: cycle fixtures across classes and modules."""

from __future__ import annotations

import textwrap

import repro.analysis  # noqa: F401  (registers the built-in rules)
from repro.analysis.core import ModuleInfo, filter_suppressed, get_rule


def lint_modules(sources, rule_name="lock-order"):
    modules = [
        ModuleInfo.parse(path, textwrap.dedent(src)) for path, src in sources.items()
    ]
    rule = get_rule(rule_name)
    findings = list(rule.check_project(modules))
    return filter_suppressed(findings, {m.path: m for m in modules})


INVERTED = """
    import threading

    class A:
        def __init__(self, b: "B"):
            self._lock = threading.Lock()
            self._b = b

        def forward(self):
            with self._lock:
                self._b.poke()

        def poke(self):
            with self._lock:
                pass

    class B:
        def __init__(self, a: "A"):
            self._lock = threading.Lock()
            self._a = a

        def backward(self):
            with self._lock:
                self._a.poke()

        def poke(self):
            with self._lock:
                pass
"""


def test_inverted_order_across_two_classes_is_flagged():
    findings = lint_modules({"inverted.py": INVERTED})
    assert len(findings) == 1
    msg = findings[0].message
    assert "A._lock" in msg and "B._lock" in msg and "cycle" in msg


def test_consistent_order_is_clean():
    src = """
        import threading

        class A:
            def __init__(self, b: "B"):
                self._lock = threading.Lock()
                self._b = b

            def forward(self):
                with self._lock:
                    self._b.poke()

        class B:
            def __init__(self):
                self._lock = threading.Lock()

            def poke(self):
                with self._lock:
                    pass
    """
    assert lint_modules({"ordered.py": src}) == []


def test_nested_with_same_class_two_locks_cycle():
    src = """
        import threading

        class Pair:
            def __init__(self):
                self._front = threading.Lock()
                self._back = threading.Lock()

            def ab(self):
                with self._front:
                    with self._back:
                        pass

            def ba(self):
                with self._back:
                    with self._front:
                        pass
    """
    findings = lint_modules({"pair.py": src})
    assert len(findings) == 1
    assert "Pair._front" in findings[0].message
    assert "Pair._back" in findings[0].message


def test_reentrant_same_lock_is_not_a_cycle():
    src = """
        import threading

        class Reent:
            def __init__(self):
                self._lock = threading.RLock()

            def outer(self):
                with self._lock:
                    self.inner()

            def inner(self):
                with self._lock:
                    pass
    """
    assert lint_modules({"reent.py": src}) == []


def test_cycle_through_attribute_constructed_in_init():
    a = """
        import threading
        from other import Helper

        class Owner:
            def __init__(self):
                self._lock = threading.Lock()
                self._helper = Helper(self)

            def work(self):
                with self._lock:
                    self._helper.run()

            def poke(self):
                with self._lock:
                    pass
    """
    b = """
        import threading

        class Helper:
            def __init__(self, owner: "Owner"):
                self._lock = threading.Lock()
                self._owner = owner

            def run(self):
                with self._lock:
                    pass

            def callback(self):
                with self._lock:
                    self._owner.poke()
    """
    findings = lint_modules({"owner.py": a, "helper.py": b})
    assert len(findings) == 1
    assert "Owner._lock" in findings[0].message
    assert "Helper._lock" in findings[0].message


def test_transitive_acquisition_through_same_class_call():
    # a.forward holds A._lock and calls self.helper() which calls b.poke():
    # the edge must survive one level of same-class indirection.
    src = """
        import threading

        class A:
            def __init__(self, b: "B"):
                self._lock = threading.Lock()
                self._b = b

            def forward(self):
                with self._lock:
                    self.helper()

            def helper(self):
                self._b.poke()

            def poke(self):
                with self._lock:
                    pass

        class B:
            def __init__(self, a: "A"):
                self._lock = threading.Lock()
                self._a = a

            def backward(self):
                with self._lock:
                    self._a.poke()

            def poke(self):
                with self._lock:
                    pass
    """
    findings = lint_modules({"transitive.py": src})
    assert len(findings) == 1


def test_lock_order_suppression_on_anchor_line():
    src = INVERTED.replace(
        """        def forward(self):
            with self._lock:
                self._b.poke()""",
        """        def forward(self):
            with self._lock:
                # repro-lint: disable=lock-order (documented: B is never re-entered)
                self._b.poke()""",
    )
    # The finding anchors at the first recorded edge; whichever line that
    # is, suppressing it must silence the cycle.
    findings = lint_modules({"inverted.py": src})
    anchored = lint_modules({"inverted.py": INVERTED})
    assert len(anchored) == 1
    if findings:
        # Anchor fell on the other edge: suppress there instead.
        line = findings[0].line
        lines = textwrap.dedent(INVERTED).splitlines()
        lines.insert(line - 1, "        # repro-lint: disable=lock-order")
        findings = lint_modules({"inverted.py": "\n".join(lines)})
    assert findings == []


def test_real_tree_has_no_lock_order_cycles():
    import os

    import repro
    from repro.analysis import run_lint

    pkg = os.path.dirname(os.path.abspath(repro.__file__))
    result = run_lint([pkg], rules=["lock-order"])
    assert result.findings == []
