"""Tests for the notebook model, runner, and tutorial notebooks."""

import json
import os

import numpy as np
import pytest

from repro.core.notebook import (
    Cell,
    Notebook,
    NotebookRunner,
    build_tutorial_notebooks,
)


class TestNotebookModel:
    def test_cell_kinds(self):
        with pytest.raises(ValueError):
            Cell("graph", "x")

    def test_builder_api(self):
        nb = Notebook("t").md("# hi").code("x = 1").code("y = x + 1")
        assert len(nb.cells) == 3
        assert len(nb.code_cells) == 2

    def test_nbformat_structure(self):
        doc = Notebook("t").md("# hi").code("print(1)").to_ipynb()
        assert doc["nbformat"] == 4
        assert doc["cells"][0]["cell_type"] == "markdown"
        assert doc["cells"][1]["cell_type"] == "code"
        assert doc["cells"][1]["outputs"] == []

    def test_save_load_round_trip(self, tmp_path):
        nb = Notebook("round trip").md("intro").code("a = 42")
        path = nb.save(str(tmp_path / "nb.ipynb"))
        loaded = Notebook.load(path)
        assert loaded.title == "round trip"
        assert [c.kind for c in loaded.cells] == ["markdown", "code"]
        assert loaded.code_cells[0].source == "a = 42"

    def test_saved_file_is_valid_json(self, tmp_path):
        path = Notebook("x").code("pass").save(str(tmp_path / "nb.ipynb"))
        with open(path) as fh:
            doc = json.load(fh)
        assert "cells" in doc


class TestNotebookRunner:
    def test_shared_namespace(self):
        nb = Notebook("t").code("x = 10").code("y = x * 2")
        run = NotebookRunner().run(nb)
        assert run.ok
        assert run.namespace["y"] == 20

    def test_stdout_captured_per_cell(self):
        nb = Notebook("t").code("print('first')").code("print('second')")
        run = NotebookRunner().run(nb)
        assert run.results[0].stdout == "first\n"
        assert run.results[1].stdout == "second\n"
        assert "first" in run.stdout and "second" in run.stdout

    def test_parameters_injected(self):
        nb = Notebook("t").code("result = base + 1")
        run = NotebookRunner().run(nb, parameters={"base": 41})
        assert run.namespace["result"] == 42

    def test_error_stops_execution(self):
        nb = Notebook("t").code("raise ValueError('boom')").code("after = True")
        run = NotebookRunner().run(nb)
        assert not run.ok
        assert "ValueError: boom" in run.first_error()
        assert "after" not in run.namespace
        assert len(run.results) == 1

    def test_continue_on_error(self):
        nb = Notebook("t").code("1/0").code("after = True")
        run = NotebookRunner().run(nb, stop_on_error=False)
        assert not run.ok
        assert run.namespace.get("after") is True

    def test_markdown_cells_skipped(self):
        nb = Notebook("t").md("# doc only")
        run = NotebookRunner().run(nb)
        assert run.ok
        assert run.results == []


class TestTutorialNotebooks:
    @pytest.fixture(scope="class")
    def executed(self, tmp_path_factory):
        """Generate the four notebooks and run them in sequence."""
        nb_dir = str(tmp_path_factory.mktemp("notebooks"))
        workdir = str(tmp_path_factory.mktemp("nbwork"))
        paths = build_tutorial_notebooks(nb_dir)
        runner = NotebookRunner()
        namespace = {"workdir": workdir}
        runs = {}
        for name in ("step1", "step2", "step3", "step4"):
            nb = Notebook.load(paths[name])
            run = runner.run(nb, parameters=namespace)
            assert run.ok, (name, run.first_error())
            namespace = run.namespace  # hand artifacts to the next step
            runs[name] = run
        return paths, runs, namespace, workdir

    def test_four_notebooks_generated(self, executed):
        paths, _, _, _ = executed
        assert sorted(paths) == ["step1", "step2", "step3", "step4"]
        for path in paths.values():
            assert os.path.exists(path)

    def test_step1_products(self, executed):
        _, runs, ns, _ = executed
        assert set(ns["products"]) == {"elevation", "aspect", "slope", "hillshade"}
        assert "workspace:" in runs["step1"].stdout

    def test_step2_reductions_printed(self, executed):
        _, runs, ns, _ = executed
        assert len(ns["idx_paths"]) == 4
        assert "%" in runs["step2"].stdout

    def test_step3_validation_passed(self, executed):
        _, _, ns, _ = executed
        assert all(r.passed for r in ns["validation"].values())
        assert ns["montage"].ndim == 3

    def test_step4_artifacts_on_disk(self, executed):
        _, _, ns, workdir = executed
        assert os.path.exists(os.path.join(workdir, "region.npy"))
        assert os.path.exists(os.path.join(workdir, "extract_region.py"))
        region = np.load(os.path.join(workdir, "region.npy"))
        assert region.shape == (64, 64)

    def test_notebooks_are_openable_nbformat(self, executed):
        paths, _, _, _ = executed
        for path in paths.values():
            with open(path) as fh:
                doc = json.load(fh)
            assert doc["nbformat"] == 4
            kinds = {c["cell_type"] for c in doc["cells"]}
            assert kinds <= {"markdown", "code"}
