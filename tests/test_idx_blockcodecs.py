"""Per-block codec manifest: write path, read path, and backward compat."""

import hashlib
import os

import numpy as np
import pytest

from repro.faults.retry import RetryPolicy
from repro.idx import BlockCache, CachedAccess, IdxDataset, LocalAccess, RemoteAccess
from repro.idx.idxfile import (
    BLOCK_CODECS_KEY,
    BytesByteSource,
    FileByteSource,
    IdxBinaryReader,
    IdxError,
    block_codec_manifest,
)

DATA_DIR = os.path.join(os.path.dirname(__file__), "data")
LEGACY_IDX = os.path.join(DATA_DIR, "legacy_pre_adaptive.idx")
LEGACY_NPZ = os.path.join(DATA_DIR, "legacy_pre_adaptive_expected.npz")
#: Pinned digest of the fixture written by the pre-manifest writer.  If
#: this ever fails, the fixture was regenerated with a newer writer and
#: the backward-compat test below no longer proves anything.
LEGACY_SHA256 = "1d141ebfb87ebde55cc20512ba66e3f83868da20e051db980ee392aa5d2f3df2"


def _mixed_corpus(seed=7, n=96):
    """Fields with deliberately different compressibility."""
    rng = np.random.default_rng(seed)
    base = rng.normal(0, 10, (n, n)).astype(np.float32)
    base[: n // 3, : n // 2] = 0.0  # constant nodata region
    smooth = np.add.outer(np.linspace(0, 50, n), np.linspace(0, 25, n)).astype(np.float32)
    noisy = rng.random((n, n)).astype(np.float32)
    return {"elevation": base, "smooth": smooth, "noisy": noisy}


def _write_adaptive(path, fields, *, workers=1, timesteps=1):
    ds = IdxDataset.create(
        str(path),
        dims=next(iter(fields.values())).shape,
        fields={name: "float32" for name in fields},
        timesteps=timesteps,
        bits_per_block=8,
        codec="adaptive:level=6",
    )
    for name, arr in fields.items():
        ds.write(arr, field=name, time=0)
        for t in range(1, timesteps):
            ds.replicate_timestep(field=name, from_time=0, to_times=[t])
    ds.finalize(workers=workers)
    return ds


class TestManifestRoundTrip:
    def test_manifest_written_and_parsed(self, tmp_path):
        fields = _mixed_corpus()
        ds = _write_adaptive(tmp_path / "a.idx", fields)
        manifest = ds.header.metadata[BLOCK_CODECS_KEY]
        assert manifest["specs"], "adaptive encode should record codec specs"
        reopened = IdxDataset.open(str(tmp_path / "a.idx"))
        for name, arr in fields.items():
            assert reopened.read(field=name).tobytes() == arr.tobytes()

    def test_codec_for_falls_back_to_header(self, tmp_path):
        a = np.random.default_rng(0).random((32, 32)).astype(np.float32)
        path = str(tmp_path / "fixed.idx")
        ds = IdxDataset.create(path, dims=a.shape, bits_per_block=8, codec="zlib:level=6")
        ds.write(a)
        ds.finalize()
        reader = IdxBinaryReader(FileByteSource(path))
        assert BLOCK_CODECS_KEY not in reader.header.metadata
        spec = reader.codec_spec_for(0, 0, int(reader.present_blocks(0, 0)[0]))
        assert spec == "zlib:level=6"

    def test_selector_uses_multiple_codecs(self, tmp_path):
        ds = _write_adaptive(tmp_path / "a.idx", _mixed_corpus())
        assert len(ds.last_encode_stats.codec_bytes) >= 2

    def test_replicated_timesteps_share_specs_and_bytes(self, tmp_path):
        fields = _mixed_corpus()
        ds = _write_adaptive(tmp_path / "a.idx", fields, timesteps=2)
        reader = IdxBinaryReader(FileByteSource(str(tmp_path / "a.idx")))
        for f in range(len(fields)):
            for b in reader.present_blocks(0, f):
                assert reader.codec_spec_for(0, f, int(b)) == reader.codec_spec_for(1, f, int(b))
        reopened = IdxDataset.open(str(tmp_path / "a.idx"))
        for name, arr in fields.items():
            assert reopened.read(field=name, time=1).tobytes() == arr.tobytes()


class TestParallelDeterminism:
    @pytest.mark.parametrize("workers", [2, 3, 7])
    def test_parallel_encode_byte_identical_to_serial(self, tmp_path, workers):
        fields = _mixed_corpus()
        _write_adaptive(tmp_path / "serial.idx", fields, workers=1)
        _write_adaptive(tmp_path / "par.idx", fields, workers=workers)
        serial = open(tmp_path / "serial.idx", "rb").read()
        parallel = open(tmp_path / "par.idx", "rb").read()
        assert serial == parallel


class TestReadPaths:
    def test_remote_access_decodes_per_block(self, tmp_path):
        fields = _mixed_corpus()
        _write_adaptive(tmp_path / "a.idx", fields)
        blob = open(tmp_path / "a.idx", "rb").read()
        ds = IdxDataset.from_access(RemoteAccess(BytesByteSource(blob)))
        for name, arr in fields.items():
            assert ds.read(field=name).tobytes() == arr.tobytes()

    def test_checksum_verified_parallel_fetch(self, tmp_path):
        fields = _mixed_corpus()
        _write_adaptive(tmp_path / "a.idx", fields)
        blob = open(tmp_path / "a.idx", "rb").read()
        access = RemoteAccess(
            BytesByteSource(blob), workers=3, retry=RetryPolicy(max_attempts=2)
        )
        ds = IdxDataset.from_access(access)
        for name, arr in fields.items():
            assert ds.read(field=name).tobytes() == arr.tobytes()

    def test_cached_access(self, tmp_path):
        fields = _mixed_corpus()
        _write_adaptive(tmp_path / "a.idx", fields)
        access = CachedAccess(LocalAccess(str(tmp_path / "a.idx")), BlockCache("8 MiB"))
        ds = IdxDataset.from_access(access)
        for name, arr in fields.items():
            assert ds.read(field=name).tobytes() == arr.tobytes()
            assert ds.read(field=name).tobytes() == arr.tobytes()  # cache hit path


class TestConservation:
    """Satellite: sum of per-codec encoded bytes == total stored bytes."""

    def test_encode_stats_conservation(self, tmp_path):
        ds = _write_adaptive(tmp_path / "a.idx", _mixed_corpus(), timesteps=2)
        stats = ds.last_encode_stats
        assert sum(stats.codec_bytes.values()) == stats.encoded_bytes
        assert stats.encoded_bytes == ds.stored_bytes()
        assert stats.to_dict()["codec_bytes"] == stats.codec_bytes

    def test_reader_histogram_conservation(self, tmp_path):
        _write_adaptive(tmp_path / "a.idx", _mixed_corpus(), timesteps=2)
        reader = IdxBinaryReader(FileByteSource(str(tmp_path / "a.idx")))
        hist = reader.codec_byte_histogram()
        assert sum(hist.values()) == reader.stored_bytes()

    def test_fixed_codec_histogram_single_entry(self, tmp_path):
        a = np.random.default_rng(0).random((32, 32)).astype(np.float32)
        path = str(tmp_path / "f.idx")
        ds = IdxDataset.create(path, dims=a.shape, bits_per_block=8, codec="shuffle:level=6")
        ds.write(a)
        ds.finalize()
        hist = IdxDataset.open(path).codec_byte_histogram()
        assert set(hist) == {"shuffle:level=6"}
        assert sum(hist.values()) == ds.stored_bytes()


class TestManifestValidation:
    def _write_with_manifest(self, tmp_path, manifest):
        from repro.idx.bitmask import Bitmask
        from repro.idx.idxfile import IdxHeader, write_idx_file

        header = IdxHeader(
            dims=(32, 32),
            bitmask=Bitmask.from_dims((32, 32)).pattern,
            bits_per_block=8,
            fields=[{"name": "value", "dtype": "float32"}],
            timesteps=[0],
            metadata={BLOCK_CODECS_KEY: manifest},
        )
        path = str(tmp_path / "m.idx")
        write_idx_file(path, header, {})
        return path, header.layout().num_blocks

    def test_malformed_manifest_rejected(self, tmp_path):
        path, _ = self._write_with_manifest(tmp_path, {"specs": "zlib", "table": {}})
        with pytest.raises(IdxError, match="specs"):
            IdxBinaryReader(FileByteSource(path))

    def test_bad_row_length_rejected(self, tmp_path):
        path, _ = self._write_with_manifest(
            tmp_path, {"specs": ["zlib:level=6"], "table": {"0/0": [0]}}
        )
        with pytest.raises(IdxError, match="entries"):
            IdxBinaryReader(FileByteSource(path))

    def test_out_of_range_slot_rejected(self, tmp_path):
        _, n = self._write_with_manifest(tmp_path, {"specs": [], "table": {}})
        path, _ = self._write_with_manifest(
            tmp_path, {"specs": ["zlib:level=6"], "table": {"0/0": [5] + [None] * (n - 1)}}
        )
        with pytest.raises(IdxError, match="outside specs"):
            IdxBinaryReader(FileByteSource(path))

    def test_bad_table_key_rejected(self, tmp_path):
        _, n = self._write_with_manifest(tmp_path, {"specs": [], "table": {}})
        path, _ = self._write_with_manifest(
            tmp_path, {"specs": [], "table": {"zero": [None] * n}}
        )
        with pytest.raises(IdxError, match="table key"):
            IdxBinaryReader(FileByteSource(path))

    def test_builder_rejects_out_of_range_block(self):
        with pytest.raises(IdxError, match="out of range"):
            block_codec_manifest({(0, 0, 9): "rle"}, 4, "adaptive:level=6")

    def test_builder_interns_and_drops_default(self):
        manifest = block_codec_manifest(
            {(0, 0, 0): "rle", (0, 0, 1): "zlib:level=6", (0, 0, 2): "rle"},
            4,
            "rle",
        )
        assert manifest["specs"] == ["zlib:level=6"]
        assert manifest["table"]["0/0"] == [None, 0, None, None]


class TestBackwardCompat:
    """Files written before the manifest existed decode byte-identically."""

    def test_fixture_is_genuinely_pre_change(self):
        digest = hashlib.sha256(open(LEGACY_IDX, "rb").read()).hexdigest()
        assert digest == LEGACY_SHA256

    def test_legacy_file_decodes_byte_identically(self):
        expected = np.load(LEGACY_NPZ)
        ds = IdxDataset.open(LEGACY_IDX)
        assert BLOCK_CODECS_KEY not in ds.header.metadata
        for t in (0, 1):
            for name in ("elevation", "quantized"):
                got = ds.read(field=name, time=t)
                assert got.tobytes() == expected[f"{name}_t{t}"].tobytes()

    def test_legacy_file_decodes_over_remote_paths(self):
        blob = open(LEGACY_IDX, "rb").read()
        expected = np.load(LEGACY_NPZ)
        for access in (
            RemoteAccess(BytesByteSource(blob)),
            RemoteAccess(BytesByteSource(blob), workers=2, retry=RetryPolicy(max_attempts=2)),
        ):
            ds = IdxDataset.from_access(access)
            got = ds.read(field="elevation", time=1)
            assert got.tobytes() == expected["elevation_t1"].tobytes()

    def test_legacy_histogram_attributes_header_codec(self):
        reader = IdxBinaryReader(FileByteSource(LEGACY_IDX))
        hist = reader.codec_byte_histogram()
        assert set(hist) == {reader.header.codec}
        assert sum(hist.values()) == reader.stored_bytes()
