"""Tests for the simulated network fabric (clock, links, topology,
transfers, monitoring)."""

import numpy as np
import pytest

from repro.network import (
    LinkModel,
    NSDF_SITES,
    NetworkMonitor,
    SimClock,
    Testbed,
    TransferSimulator,
    default_testbed,
)


class TestSimClock:
    def test_advance(self):
        clock = SimClock()
        assert clock.now == 0.0
        clock.advance(1.5)
        clock.advance(0.5, label="x")
        assert clock.now == pytest.approx(2.0)

    def test_no_backwards(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1)

    def test_events_and_totals(self):
        clock = SimClock()
        clock.advance(1.0, label="transfer:a->b")
        clock.advance(2.0, label="transfer:a->c")
        clock.advance(0.5, label="probe:x")
        assert clock.total_for("transfer:") == pytest.approx(3.0)
        assert clock.total_for("probe:") == pytest.approx(0.5)
        assert len(clock.events) == 3

    def test_reset(self):
        clock = SimClock()
        clock.advance(5, label="x")
        clock.reset()
        assert clock.now == 0.0 and clock.events == []


class TestLinkModel:
    def test_transfer_seconds_formula(self):
        link = LinkModel(latency_s=0.01, bandwidth_bps=1e6, jitter=0.0)
        assert link.transfer_seconds(1_000_000) == pytest.approx(1.01)
        assert link.transfer_seconds(0) == pytest.approx(0.01)

    def test_string_sizes_accepted(self):
        link = LinkModel(latency_s=0.0, bandwidth_bps=1024, jitter=0.0)
        assert link.transfer_seconds("1 KiB") == pytest.approx(1.0)

    def test_effective_bps_below_line_rate(self):
        link = LinkModel(latency_s=0.1, bandwidth_bps=1e9, jitter=0.0)
        assert link.effective_bps(1000) < 1e9

    def test_jitter_deterministic_per_seed(self):
        l1 = LinkModel(latency_s=0.01, bandwidth_bps=1e6, jitter=0.2, seed=5)
        l2 = LinkModel(latency_s=0.01, bandwidth_bps=1e6, jitter=0.2, seed=5)
        assert [l1.transfer_seconds(1000) for _ in range(5)] == [
            l2.transfer_seconds(1000) for _ in range(5)
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkModel(latency_s=-1)
        with pytest.raises(ValueError):
            LinkModel(bandwidth_bps=0)
        with pytest.raises(ValueError):
            LinkModel(jitter=1.5)

    def test_profiles_ordered(self):
        lan = LinkModel.lan()
        wan = LinkModel.wan()
        assert lan.latency_s < wan.latency_s
        assert lan.bandwidth_bps > wan.bandwidth_bps


class TestTopology:
    def test_eight_sites(self):
        assert len(NSDF_SITES) == 8
        tb = default_testbed()
        assert len(tb.sites) == 8

    def test_all_pairs_routable(self):
        tb = default_testbed()
        for a, b in tb.all_pairs():
            path = tb.route(a, b)
            assert path[0] == a and path[-1] == b

    def test_unknown_site(self):
        tb = default_testbed()
        with pytest.raises(KeyError):
            tb.route("slc", "mars")

    def test_path_link_aggregation(self):
        tb = default_testbed()
        # sdsc -> udel transits multiple hops; its latency must exceed
        # any single constituent edge.
        long = tb.path_link("sdsc", "udel")
        short = tb.path_link("jhu", "udel")
        assert long.latency_s > short.latency_s
        # Bottleneck bandwidth: min over edges, so <= backbone rate.
        assert long.bandwidth_bps <= 10 * 1.25e8

    def test_same_site_is_lan(self):
        tb = default_testbed()
        link = tb.path_link("slc", "slc")
        assert link.latency_s < 0.001

    def test_distance_drives_latency(self):
        tb = default_testbed()
        coast_to_coast = tb.path_link("sdsc", "mghpcc").latency_s
        regional = tb.path_link("umich", "chi").latency_s
        assert coast_to_coast > 2 * regional

    def test_connect_validates_sites(self):
        tb = Testbed()
        with pytest.raises(KeyError):
            tb.connect("slc", "nowhere")


class TestTransferSimulator:
    def test_charges_clock(self):
        tb = default_testbed()
        sim = TransferSimulator(tb)
        result = sim.transfer("knox", "slc", "100 MiB")
        assert result.seconds > 0
        assert sim.clock.now == pytest.approx(result.seconds)

    def test_effective_bps(self):
        tb = default_testbed()
        sim = TransferSimulator(tb)
        result = sim.transfer("knox", "slc", "1 GiB", chunk_size="64 MiB")
        assert 0 < result.effective_bps <= 10 * 1.25e8

    def test_parallel_streams_help_latency_bound(self):
        tb = default_testbed()
        s1 = TransferSimulator(tb, SimClock())
        s8 = TransferSimulator(tb, SimClock())
        # Many small chunks over a long path: latency dominated.
        r1 = s1.transfer("sdsc", "udel", "64 MiB", chunk_size="1 MiB", streams=1)
        r8 = s8.transfer("sdsc", "udel", "64 MiB", chunk_size="1 MiB", streams=8)
        assert r8.seconds < r1.seconds

    def test_zero_bytes(self):
        sim = TransferSimulator(default_testbed())
        result = sim.transfer("knox", "slc", 0)
        assert result.seconds > 0  # still one round of latency

    def test_validation(self):
        sim = TransferSimulator(default_testbed())
        with pytest.raises(ValueError):
            sim.transfer("knox", "slc", 10, chunk_size=0)
        with pytest.raises(ValueError):
            sim.transfer("knox", "slc", 10, streams=0)

    def test_round_trip(self):
        sim = TransferSimulator(default_testbed())
        rtt = sim.round_trip("knox", "slc")
        assert rtt > 0
        assert sim.clock.total_for("rtt:") == pytest.approx(rtt)


class TestNetworkMonitor:
    def test_probe_stats_shape(self):
        mon = NetworkMonitor(default_testbed())
        stats = mon.probe("knox", "slc", repeats=5)
        assert stats.rtt_ms_min <= stats.rtt_ms_mean <= stats.rtt_ms_max
        assert stats.throughput_bps > 0
        assert stats.hops >= 1

    def test_measure_all_sorted(self):
        mon = NetworkMonitor(default_testbed())
        results = mon.measure_all(repeats=2, probe_bytes="1 MiB")
        assert len(results) == 28  # C(8, 2)
        rtts = [r.rtt_ms_mean for r in results]
        assert rtts == sorted(rtts)

    def test_constraint_report(self):
        mon = NetworkMonitor(default_testbed())
        results = mon.measure_all(repeats=2, probe_bytes="1 MiB")
        report = mon.constraint_report(results)
        assert set(report) == {
            "lowest_latency",
            "highest_latency",
            "lowest_throughput",
            "highest_throughput",
        }
        # Cross-country pairs should be the worst latency.
        worst = set(report["highest_latency"])
        assert worst & {"sdsc", "slc"}  # west coast endpoint involved

    def test_empty_report_rejected(self):
        mon = NetworkMonitor(default_testbed())
        with pytest.raises(ValueError):
            mon.constraint_report()

    def test_deterministic_with_seed(self):
        m1 = NetworkMonitor(default_testbed(), seed=3)
        m2 = NetworkMonitor(default_testbed(), seed=3)
        s1 = m1.probe("knox", "udel")
        s2 = m2.probe("knox", "udel")
        assert s1.rtt_ms_mean == pytest.approx(s2.rtt_ms_mean)
