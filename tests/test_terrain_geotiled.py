"""Tests for the GEOtiled partition -> compute -> mosaic pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.terrain.geotiled import GeoTiler, TileSpec, compute_tiled, partition
from repro.terrain.parameters import aspect, hillshade, slope
from repro.util.arrays import Box


class TestPartition:
    def test_cores_partition_raster(self):
        tiles = partition((100, 140), (3, 4), halo=2)
        seen = np.zeros((100, 140), dtype=int)
        for t in tiles:
            seen[t.core.to_slices()] += 1
        assert (seen == 1).all()

    def test_padded_boxes_clipped(self):
        tiles = partition((50, 50), (2, 2), halo=3)
        full = Box.from_shape((50, 50))
        for t in tiles:
            assert full.contains_box(t.padded)
            assert t.padded.contains_box(t.core)

    def test_halo_offset(self):
        tiles = partition((64, 64), (2, 2), halo=2)
        interior = [t for t in tiles if t.index == (1, 1)][0]
        assert interior.halo_offset == (2, 2)
        corner = [t for t in tiles if t.index == (0, 0)][0]
        assert corner.halo_offset == (0, 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            partition((10, 10), (0, 2))
        with pytest.raises(ValueError):
            partition((10, 10), (2, 2), halo=-1)
        with pytest.raises(ValueError):
            partition((3, 3), (5, 5))

    @given(
        st.tuples(st.integers(4, 80), st.integers(4, 80)),
        st.tuples(st.integers(1, 4), st.integers(1, 4)),
        st.integers(0, 3),
    )
    @settings(max_examples=40)
    def test_property_partition_is_exact_cover(self, shape, grid, halo):
        grid = (min(grid[0], shape[0]), min(grid[1], shape[1]))
        seen = np.zeros(shape, dtype=int)
        for t in partition(shape, grid, halo=halo):
            seen[t.core.to_slices()] += 1
        assert (seen == 1).all()


class TestComputeTiled:
    @pytest.mark.parametrize("grid", [(1, 1), (2, 2), (3, 5), (4, 1)])
    def test_exact_with_sufficient_halo(self, small_dem, grid):
        kernel = lambda t: slope(t, 30.0)  # noqa: E731
        tiled = compute_tiled(small_dem, kernel, grid=grid, halo=1)
        assert np.array_equal(tiled, kernel(small_dem))

    def test_zero_halo_breaks_seams(self, small_dem):
        kernel = lambda t: slope(t, 30.0)  # noqa: E731
        tiled = compute_tiled(small_dem, kernel, grid=(3, 3), halo=0)
        assert not np.array_equal(tiled, kernel(small_dem))

    def test_threaded_matches_serial(self, small_dem):
        kernel = lambda t: hillshade(t, 30.0)  # noqa: E731
        serial = compute_tiled(small_dem, kernel, grid=(2, 4), halo=1, workers=1)
        threaded = compute_tiled(small_dem, kernel, grid=(2, 4), halo=1, workers=4)
        assert np.array_equal(serial, threaded)

    def test_output_dtype_follows_kernel(self, small_dem):
        out = compute_tiled(small_dem, lambda t: (t > 500).astype(np.uint8), grid=(2, 2))
        assert out.dtype == np.uint8


class TestGeoTiler:
    def test_products_match_global(self, small_dem):
        tiler = GeoTiler(grid=(2, 3), workers=2, cellsize=30.0)
        params = ("elevation", "aspect", "slope", "hillshade", "roughness", "tpi")
        tiled = tiler.compute(small_dem, parameters=params)
        glob = tiler.compute_global(small_dem, parameters=params)
        for name in params:
            t, g = tiled[name], glob[name]
            both_nan = np.isnan(t) & np.isnan(g)
            assert np.array_equal(t[~both_nan], g[~both_nan]), name

    def test_halo_floor_enforced(self, small_dem):
        """Requesting halo=0 must still use the parameter's stencil radius."""
        tiler = GeoTiler(grid=(3, 3))
        tiled = tiler.compute(small_dem, parameters=("slope",), halo=0)
        glob = tiler.compute_global(small_dem, parameters=("slope",))
        assert np.array_equal(tiled["slope"], glob["slope"])

    def test_unknown_parameter_rejected(self, small_dem):
        with pytest.raises(ValueError):
            GeoTiler().compute(small_dem, parameters=("volcano",))

    def test_kernel_kwargs_forwarded(self, small_dem):
        tiler = GeoTiler(grid=(2, 2))
        bright = tiler.compute(small_dem, parameters=("hillshade",), altitude_deg=80.0)
        low = tiler.compute(small_dem, parameters=("hillshade",), altitude_deg=20.0)
        assert bright["hillshade"].mean() > low["hillshade"].mean()
