"""Tests for incremental (watermark-based) harvesting."""

import pytest

from repro.catalog import CatalogService, IncrementalHarvester
from repro.storage import ObjectStore


@pytest.fixture
def setup():
    store = ObjectStore("inc")
    store.create_bucket("data")
    catalog = CatalogService()
    harvester = IncrementalHarvester(catalog, store, "data")
    return store, catalog, harvester


class TestIncrementalHarvest:
    def test_first_pass_takes_everything(self, setup):
        store, catalog, harvester = setup
        for i in range(5):
            store.put("data", f"f{i}.idx", bytes([i]))
        assert harvester.harvest() == 5
        assert len(catalog) == 5

    def test_second_pass_takes_only_new(self, setup):
        store, catalog, harvester = setup
        store.put("data", "a.idx", b"1")
        harvester.harvest()
        assert harvester.harvest() == 0  # nothing new
        store.put("data", "b.idx", b"2")
        store.put("data", "c.idx", b"3")
        assert harvester.harvest() == 2
        assert len(catalog) == 3

    def test_overwrite_reindexed_as_new_version(self, setup):
        store, catalog, harvester = setup
        store.put("data", "a.idx", b"v1")
        harvester.harvest()
        store.put("data", "a.idx", b"v2-different-content")
        assert harvester.harvest() == 1  # new checksum -> new record identity
        assert len(catalog) == 2

    def test_rewrite_same_content_is_new_sequence_but_deduped(self, setup):
        store, catalog, harvester = setup
        store.put("data", "a.idx", b"same")
        harvester.harvest()
        store.put("data", "a.idx", b"same")  # new sequence, same etag
        assert harvester.harvest() == 0  # catalog dedup wins
        assert catalog.duplicates_rejected == 1

    def test_watermark_advances(self, setup):
        store, _, harvester = setup
        assert harvester.watermark == 0
        store.put("data", "a", b"x")
        harvester.harvest()
        w1 = harvester.watermark
        assert w1 > 0
        store.put("data", "b", b"y")
        harvester.harvest()
        assert harvester.watermark > w1

    def test_pending_preview_does_not_ingest(self, setup):
        store, catalog, harvester = setup
        store.put("data", "a", b"x")
        pending = harvester.pending()
        assert len(pending) == 1
        assert len(catalog) == 0
        assert harvester.watermark == 0

    def test_pass_counter(self, setup):
        _, _, harvester = setup
        harvester.harvest()
        harvester.harvest()
        assert harvester.passes == 2

    def test_records_searchable_after_harvest(self, setup):
        store, catalog, harvester = setup
        store.put("data", "terrain-slope.idx", b"x", metadata={"region": "conus"})
        harvester.harvest()
        hits = catalog.search("terrain slope")
        assert len(hits) == 1
        assert hits[0].record.attr_dict()["region"] == "conus"

    def test_two_harvesters_independent_watermarks(self):
        store = ObjectStore("multi")
        store.create_bucket("data")
        cat_a, cat_b = CatalogService(), CatalogService()
        ha = IncrementalHarvester(cat_a, store, "data")
        hb = IncrementalHarvester(cat_b, store, "data")
        store.put("data", "x", b"1")
        ha.harvest()
        store.put("data", "y", b"2")
        assert hb.harvest() == 2  # b never harvested: takes both
        assert ha.harvest() == 1  # a takes only y
