"""Tests for the streaming GEOtiled→IDX ingest path (tiles flow into
write_region as they complete, no mosaic intermediate)."""

import numpy as np
import pytest

from repro.idx import IdxDataset, geotiled_to_idx
from repro.terrain.dem import composite_terrain
from repro.terrain.geotiled import GeoTiler, compute_tiled, iter_tiles
from repro.terrain.parameters import compute_parameter


@pytest.fixture
def dem():
    return composite_terrain((96, 128), seed=3)


def _slope(tile):
    return compute_parameter("slope", tile, 30.0)


class TestIterTiles:
    def test_cores_cover_domain_disjointly(self, dem):
        seen = np.zeros(dem.shape, dtype=int)
        for tile, core in iter_tiles(dem, _slope, grid=(3, 4), halo=1):
            assert core.shape == tile.core.shape
            seen[tile.core.to_slices()] += 1
        assert (seen == 1).all()

    @pytest.mark.parametrize("workers", [1, 4])
    def test_matches_compute_tiled(self, dem, workers):
        mosaic = compute_tiled(dem, _slope, grid=(2, 3), halo=1, workers=1)
        out = np.empty_like(mosaic)
        for tile, core in iter_tiles(dem, _slope, grid=(2, 3), halo=1, workers=workers):
            out[tile.core.to_slices()] = core
        assert np.array_equal(out, mosaic)

    def test_parallel_yields_all_tiles(self, dem):
        tiles = list(iter_tiles(dem, _slope, grid=(4, 4), halo=1, workers=8))
        assert len(tiles) == 16
        assert len({t.index for t, _ in tiles}) == 16


class TestGeoTilerStream:
    def test_stream_covers_all_parameters(self, dem):
        tiler = GeoTiler(grid=(2, 2), workers=2)
        names = set()
        seen = {}
        for name, tile, core in tiler.stream(dem, parameters=("slope", "aspect")):
            names.add(name)
            seen.setdefault(name, np.zeros(dem.shape, dtype=int))
            seen[name][tile.core.to_slices()] += 1
        assert names == {"slope", "aspect"}
        for cover in seen.values():
            assert (cover == 1).all()

    def test_stream_reassembles_to_compute(self, dem):
        tiler = GeoTiler(grid=(3, 2), workers=1)
        products = tiler.compute(dem, parameters=("hillshade",))
        out = np.empty_like(products["hillshade"])
        for _, tile, core in tiler.stream(dem, parameters=("hillshade",)):
            out[tile.core.to_slices()] = core
        assert np.array_equal(out, products["hillshade"])

    def test_global_stencil_parameter_arrives_whole(self, dem):
        tiler = GeoTiler(grid=(2, 2))
        chunks = list(tiler.stream(dem, parameters=("flow_accumulation",)))
        assert len(chunks) == 1
        name, tile, core = chunks[0]
        assert name == "flow_accumulation"
        assert core.shape == dem.shape
        assert tile.core.shape == dem.shape

    def test_unknown_parameter_rejected(self, dem):
        with pytest.raises(ValueError):
            list(GeoTiler().stream(dem, parameters=("bogus",)))


class TestStreamingIngestEquivalence:
    @pytest.mark.parametrize("tile_workers,encode_workers", [(1, 1), (4, 2)])
    def test_streaming_equals_mosaic_first(self, tmp_path, dem, tile_workers, encode_workers):
        reports = geotiled_to_idx(
            dem,
            str(tmp_path / "stream"),
            parameters=("slope", "aspect"),
            grid=(2, 3),
            tile_workers=tile_workers,
            encode_workers=encode_workers,
            bits_per_block=8,
        )
        tiler = GeoTiler(grid=(2, 3), workers=1)
        products = tiler.compute(dem, parameters=("slope", "aspect"))
        for name in ("slope", "aspect"):
            streamed = IdxDataset.open(reports[name].idx_path).read(field=name)
            assert np.array_equal(streamed, products[name])

    def test_reports_and_stats(self, tmp_path, dem):
        reports = geotiled_to_idx(
            dem, str(tmp_path / "r"), parameters=("slope",), grid=(2, 2),
            bits_per_block=8,
        )
        report = reports["slope"]
        assert report.source_bytes == dem.nbytes
        assert report.idx_bytes > 0
        assert report.encode_stats is not None
        assert report.encode_stats.blocks_encoded > 0
        # The running-mean fix: tile-at-a-time ingest records the true mean.
        ds = IdxDataset.open(report.idx_path)
        expected = compute_tiled(dem, _slope, grid=(2, 2), halo=1)
        assert ds.field_stats("slope")["mean"] == pytest.approx(float(expected.mean()), rel=1e-5)

    def test_streaming_ingest_field_dtype(self, tmp_path, dem):
        reports = geotiled_to_idx(dem, str(tmp_path / "d"), parameters=("elevation",), grid=(2, 2))
        ds = IdxDataset.open(reports["elevation"].idx_path)
        assert ds.header.field_dtype(0) == np.float32
