"""Tests for the DashboardSession facade."""

import numpy as np
import pytest

from repro.dashboard import DashboardSession
from repro.idx import IdxDataset
from repro.util.arrays import Box


@pytest.fixture
def session(tmp_path, rng):
    a = rng.random((64, 128)).astype(np.float32)
    path = str(tmp_path / "d.idx")
    ds = IdxDataset.create(
        path, dims=a.shape, fields={"elev": "float32", "slope": "float32"}, timesteps=3
    )
    for t in range(3):
        ds.write(a + t, field="elev", time=t)
        ds.write(a * 2, field="slope", time=t)
    ds.finalize()
    sess = DashboardSession(viewport=(32, 32))
    sess.open_file("terrain", path)
    return sess


class TestDatasetSelection:
    def test_first_registration_autoselects(self, session):
        assert session.state.dataset_name == "terrain"
        assert session.state.field_name == "elev"
        assert session.state.time == 0
        assert session.state.view_box == Box((0, 0), (64, 128))

    def test_select_unknown(self, session):
        with pytest.raises(KeyError):
            session.select_dataset("nope")

    def test_field_switch(self, session):
        session.select_field("slope")
        assert session.state.field_name == "slope"
        with pytest.raises(KeyError):
            session.select_field("temperature")

    def test_empty_name_rejected(self):
        sess = DashboardSession()
        with pytest.raises(ValueError):
            sess.register_dataset("", None)

    def test_no_dataset_errors(self):
        sess = DashboardSession()
        with pytest.raises(RuntimeError):
            sess.fetch_data()


class TestTimeControls:
    def test_set_time(self, session):
        session.set_time(2)
        assert session.state.time == 2

    def test_unknown_time(self, session):
        with pytest.raises(KeyError):
            session.set_time(7)

    def test_time_slider(self, session):
        assert session.time_slider(1) == 1
        with pytest.raises(IndexError):
            session.time_slider(3)

    def test_time_changes_data(self, session):
        d0 = session.fetch_data().data
        session.set_time(2)
        d2 = session.fetch_data().data
        assert np.allclose(d2 - d0, 2.0)


class TestViewport:
    def test_zoom_halves_box(self, session):
        session.zoom(2.0)
        assert session.state.view_box.shape == (32, 64)

    def test_zoom_about_center(self, session):
        session.zoom(4.0, center=(10, 10))
        box = session.state.view_box
        assert box.lo[0] >= 0 and box.lo[1] >= 0
        assert box.contains_point((10, 10))

    def test_zoom_out_clamps_to_domain(self, session):
        session.zoom(0.25)
        assert session.state.view_box == Box((0, 0), (64, 128))

    def test_zoom_validation(self, session):
        with pytest.raises(ValueError):
            session.zoom(0)

    def test_pan_shifts(self, session):
        session.zoom(2.0)
        before = session.state.view_box
        session.pan((8, -4))
        after = session.state.view_box
        assert after.lo[0] == before.lo[0] + 8
        assert after.lo[1] == before.lo[1] - 4

    def test_pan_clamps_at_edges(self, session):
        session.zoom(2.0)
        session.pan((-1000, -1000))
        assert session.state.view_box.lo == (0, 0)
        session.pan((1000, 1000))
        assert session.state.view_box.hi == (64, 128)

    def test_crop(self, session):
        session.crop(((10, 20), (30, 60)))
        assert session.state.view_box == Box((10, 20), (30, 60))

    def test_crop_clipped(self, session):
        session.crop(((50, 100), (100, 300)))
        assert session.state.view_box == Box((50, 100), (64, 128))

    def test_crop_empty_rejected(self, session):
        with pytest.raises(ValueError):
            session.crop(((70, 0), (80, 10)))

    def test_reset_view(self, session):
        session.zoom(4.0)
        session.reset_view()
        assert session.state.view_box == Box((0, 0), (64, 128))


class TestResolution:
    def test_auto_resolution_tracks_viewport(self, session):
        # 32x32 viewport on a 64x128 box: needs >= 2^10 samples of 2^13.
        level = session.effective_resolution()
        assert 0 < level < session.dataset.maxh

    def test_zooming_in_raises_needed_level(self, session):
        # A smaller box holds fewer samples per level, so filling the same
        # viewport needs a finer level — the dashboard's auto behaviour.
        auto_full = session.effective_resolution()
        session.zoom(4.0)
        auto_zoomed = session.effective_resolution()
        assert auto_zoomed >= auto_full

    def test_pinned_resolution(self, session):
        session.set_resolution(3)
        assert session.effective_resolution() == 3
        session.set_resolution(None)
        assert session.effective_resolution() != 3 or True

    def test_slider(self, session):
        level = session.resolution_slider(1.0)
        assert level == session.dataset.maxh
        assert session.resolution_slider(0.0) == 0
        with pytest.raises(ValueError):
            session.resolution_slider(1.5)

    def test_out_of_range(self, session):
        with pytest.raises(ValueError):
            session.set_resolution(99)


class TestRendering:
    def test_frame_shape_and_dtype(self, session):
        frame = session.current_frame()
        assert frame.ndim == 3 and frame.shape[2] == 3
        assert frame.dtype == np.uint8

    def test_fit_viewport(self, session):
        frame = session.current_frame(fit_viewport=True)
        assert frame.shape == (32, 32, 3)

    def test_manual_range_affects_colors(self, session):
        session.set_palette("gray")
        f_dynamic = session.current_frame()
        session.set_range(-100.0, 100.0)
        f_manual = session.current_frame()
        assert not np.array_equal(f_dynamic, f_manual)

    def test_palette_switch_changes_frame(self, session):
        f1 = session.current_frame()
        session.set_palette("magma")
        f2 = session.current_frame()
        assert not np.array_equal(f1, f2)

    def test_unknown_palette(self, session):
        with pytest.raises(KeyError):
            session.set_palette("sunburst")


class TestAnalysisTools:
    def test_slices(self, session):
        data = session.fetch_data().data
        h = session.slice_horizontal(3)
        v = session.slice_vertical(5)
        assert np.array_equal(h, data[3, :])
        assert np.array_equal(v, data[:, 5])

    def test_snip_records_event(self, session):
        result = session.snip(((0, 0), (16, 16)))
        assert result.data.shape == (16, 16)
        assert any(op == "snip" for op, _ in session.state.events)

    def test_playback_over_dataset_timesteps(self, session):
        pb = session.playback()
        assert pb.timesteps == (0, 1, 2)

    def test_timing_summary(self, session):
        session.current_frame()
        session.current_frame()
        summary = session.timing_summary()
        assert summary["fetch"][0] >= 2
        assert summary["render"][0] >= 2
        assert all(mean >= 0 for _, mean in summary.values())


class TestMetadataRangeSeeding:
    def test_seed_range_from_block_stats(self, session):
        lo, hi = session.seed_range_from_metadata()
        assert lo < hi
        assert session.state.range_mode.value == "manual"
        # The seeded range brackets the data actually fetched.
        data = session.fetch_data().data
        assert lo <= float(data.min()) + 1e-5
        assert hi >= float(data.max()) - 1e-5

    def test_seed_range_respects_view_box(self, session):
        full_lo, full_hi = session.seed_range_from_metadata()
        session.zoom(8.0, center=(2, 2))  # tiny corner window
        zoom_lo, zoom_hi = session.seed_range_from_metadata()
        assert zoom_hi - zoom_lo <= full_hi - full_lo + 1e-9


class TestTimingCap:
    def test_op_timings_capped_with_exact_summary(self, session):
        # Regression: op_timings grew without bound in a long-lived
        # session.  The raw log is now capped (mirroring the PR 1
        # access_log fix) while timing_summary stays exact.
        session.timing_limit = 8
        for _ in range(10):
            session.fetch_data()
        assert len(session.op_timings) == 8
        assert session.timings_truncated is True
        assert session.timings_dropped == 2
        count, mean = session.timing_summary()["fetch"]
        assert count == 10  # exact despite the drops
        assert mean >= 0.0

    def test_no_truncation_below_cap(self, session):
        session.fetch_data()
        assert session.timings_truncated is False
        assert session.timings_dropped == 0

    def test_refine_timings_also_capped(self, session):
        session.timing_limit = 2
        list(session.refine_frames())
        assert len(session.op_timings) == 2
        count, _ = session.timing_summary()["refine"]
        assert count > 2

    def test_timing_limit_validated(self):
        with pytest.raises(ValueError):
            DashboardSession(timing_limit=0)
