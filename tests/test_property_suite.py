"""Cross-module property-based tests (metamorphic and algebraic laws).

These complement the per-module suites with properties that span
subsystem boundaries: the IDX query oracle in 3-D, container-format
round trips over generated arrays, codec determinism, metric axioms,
and box algebra laws.
"""

import tempfile

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.compression import get_codec
from repro.core.validation import max_abs_error, psnr, rmse
from repro.formats.tiff import read_tiff, write_tiff
from repro.idx import IdxDataset
from repro.util.arrays import Box

# ---------------------------------------------------------------------------
# Box algebra laws
# ---------------------------------------------------------------------------

_boxes = st.builds(
    lambda lo0, lo1, s0, s1: Box((lo0, lo1), (lo0 + s0, lo1 + s1)),
    st.integers(-20, 20),
    st.integers(-20, 20),
    st.integers(0, 25),
    st.integers(0, 25),
)


@given(_boxes, _boxes)
def test_intersect_commutative(a, b):
    x = a.intersect(b)
    y = b.intersect(a)
    assert x.is_empty == y.is_empty
    if not x.is_empty:
        assert x == y


@given(_boxes, _boxes, _boxes)
def test_intersect_associative_on_nonempty(a, b, c):
    left = a.intersect(b).intersect(c)
    right = a.intersect(b.intersect(c))
    assert left.is_empty == right.is_empty
    if not left.is_empty:
        assert left == right


@given(_boxes, _boxes)
def test_union_contains_both(a, b):
    u = a.union(b)
    assert u.contains_box(a)
    assert u.contains_box(b)


@given(_boxes)
def test_intersect_idempotent(a):
    assert a.intersect(a) == a


@given(_boxes, st.integers(0, 5))
def test_dilate_then_clip_contains_original(a, margin):
    assume(not a.is_empty)
    grown = a.dilate(margin)
    assert grown.contains_box(a)
    assert grown.clip(a) == a


# ---------------------------------------------------------------------------
# Metric axioms
# ---------------------------------------------------------------------------

_rasters = st.integers(0, 10_000).map(
    lambda seed: np.random.default_rng(seed).random((12, 15)) * 100
)


@given(_rasters, st.integers(0, 100))
def test_rmse_triangle_inequality(a, seed):
    rng = np.random.default_rng(seed)
    b = a + rng.normal(0, 1, a.shape)
    c = b + rng.normal(0, 1, a.shape)
    assert rmse(a, c) <= rmse(a, b) + rmse(b, c) + 1e-9


@given(_rasters)
def test_metrics_identity(a):
    assert rmse(a, a) == 0.0
    assert max_abs_error(a, a) == 0.0
    assert psnr(a, a) == float("inf")


@given(_rasters, st.floats(0.01, 5.0))
def test_psnr_monotone_in_noise(a, sigma):
    rng = np.random.default_rng(0)
    noise = rng.normal(0, 1, a.shape)
    small = a + sigma * noise
    large = a + 3 * sigma * noise
    assert psnr(a, small) >= psnr(a, large)


@given(_rasters, st.integers(0, 50))
def test_rmse_symmetry(a, seed):
    b = a + np.random.default_rng(seed).normal(0, 2, a.shape)
    assert rmse(a, b) == pytest.approx(rmse(b, a))


# ---------------------------------------------------------------------------
# Codec determinism (encode is a pure function of the input)
# ---------------------------------------------------------------------------


@given(st.binary(min_size=0, max_size=1500), st.sampled_from(["zlib", "lz4", "rle"]))
@settings(max_examples=50)
def test_codec_encoding_deterministic(data, spec):
    codec = get_codec(spec)
    assert codec.encode_bytes(data) == codec.encode_bytes(data)


@given(st.binary(min_size=1, max_size=1500), st.sampled_from(["zlib", "lz4", "rle"]))
@settings(max_examples=50)
def test_codec_decode_encode_fixed_point(data, spec):
    """Re-encoding a decode of an encode reproduces the same stream."""
    codec = get_codec(spec)
    once = codec.encode_bytes(data)
    again = codec.encode_bytes(codec.decode_bytes(once))
    assert once == again


# ---------------------------------------------------------------------------
# TIFF round trip over generated arrays
# ---------------------------------------------------------------------------


@given(
    st.integers(1, 40),
    st.integers(1, 40),
    st.sampled_from([np.uint8, np.int16, np.uint16, np.float32]),
    st.integers(0, 1000),
)
@settings(max_examples=30, deadline=4000)
def test_tiff_round_trip_any_shape(ny, nx, dtype, seed):
    rng = np.random.default_rng(seed)
    a = (rng.random((ny, nx)) * 200).astype(dtype)
    path = tempfile.mktemp(suffix=".tif")
    write_tiff(path, a, compression="deflate", rows_per_strip=max(1, ny // 3))
    assert np.array_equal(read_tiff(path), a)


# ---------------------------------------------------------------------------
# IDX 3-D query oracle
# ---------------------------------------------------------------------------

_VOLUME = None


def _volume():
    global _VOLUME
    if _VOLUME is None:
        rng = np.random.default_rng(7)
        v = rng.random((16, 24, 20)).astype(np.float32)
        path = tempfile.mktemp(suffix=".idx")
        ds = IdxDataset.create(path, dims=v.shape, bits_per_block=8)
        ds.write(v)
        ds.finalize()
        _VOLUME = (IdxDataset.open(path), v)
    return _VOLUME


@given(
    st.integers(0, 15), st.integers(0, 23), st.integers(0, 19),
    st.integers(1, 16), st.integers(1, 24), st.integers(1, 20),
)
@settings(max_examples=40, deadline=5000)
def test_property_3d_box_matches_slice(z0, y0, x0, dz, dy, dx):
    ds, v = _volume()
    z1, y1, x1 = min(16, z0 + dz), min(24, y0 + dy), min(20, x0 + dx)
    window = ds.read(box=((z0, y0, x0), (z1, y1, x1)))
    assert np.array_equal(window, v[z0:z1, y0:y1, x0:x1])


@given(st.integers(0, 12))
@settings(max_examples=13, deadline=5000)
def test_property_3d_levels_are_strided_subsamples(h):
    ds, v = _volume()
    assume(h <= ds.maxh)
    result = ds.read_result(resolution=h)
    sub = v[np.ix_(result.axis_coords(0), result.axis_coords(1), result.axis_coords(2))]
    assert np.array_equal(result.data, sub)


# ---------------------------------------------------------------------------
# Survey partition property over arbitrary filters
# ---------------------------------------------------------------------------


@given(st.integers(0, 500), st.sampled_from(["a", "b", "c", "d"]))
@settings(max_examples=20, deadline=4000)
def test_property_survey_partition_by_venue(seed, qid):
    from repro.survey import TABLE1_ROWS, simulate_responses
    from repro.survey.simulate import aggregate

    responses = simulate_responses(seed=seed)
    total = aggregate(responses, qid)
    combined = None
    for row in TABLE1_ROWS:
        part = aggregate(responses, qid, venue=row.venue)
        combined = part if combined is None else combined.combine(part)
    assert combined.counts == total.counts
