"""Tests for the LRU block cache."""

import numpy as np
import pytest

from repro.idx.cache import BlockCache


def block(value: float, n: int = 256) -> np.ndarray:
    return np.full(n, value, dtype=np.float32)  # 1 KiB each


class TestBasics:
    def test_miss_then_hit(self):
        cache = BlockCache("4 KiB")
        assert cache.get(("a", 0)) is None
        cache.put(("a", 0), block(1))
        got = cache.get(("a", 0))
        assert got is not None and got[0] == 1

    def test_stats_counting(self):
        cache = BlockCache("4 KiB")
        cache.get(("x",))
        cache.put(("x",), block(2))
        cache.get(("x",))
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_contains_does_not_touch_stats(self):
        cache = BlockCache("4 KiB")
        cache.put(("k",), block(1))
        assert cache.contains(("k",))
        assert not cache.contains(("nope",))
        assert cache.stats.requests == 0

    def test_invalidate(self):
        cache = BlockCache("4 KiB")
        cache.put(("k",), block(1))
        assert cache.invalidate(("k",))
        assert not cache.invalidate(("k",))
        assert cache.get(("k",)) is None

    def test_clear(self):
        cache = BlockCache("8 KiB")
        cache.put(("a",), block(1))
        cache.put(("b",), block(2))
        cache.clear()
        assert len(cache) == 0
        assert cache.used_bytes == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            BlockCache(0)


class TestEviction:
    def test_lru_eviction_order(self):
        cache = BlockCache(3 * 1024)  # fits 3 blocks
        for i in range(3):
            cache.put((i,), block(i))
        cache.get((0,))  # 0 is now most recent
        cache.put((3,), block(3))  # evicts 1 (least recent)
        assert cache.contains((0,))
        assert not cache.contains((1,))
        assert cache.contains((2,))
        assert cache.contains((3,))
        assert cache.stats.evictions == 1

    def test_byte_budget_respected(self):
        cache = BlockCache(10 * 1024)
        for i in range(100):
            cache.put((i,), block(i))
        assert cache.used_bytes <= 10 * 1024

    def test_oversized_entry_skipped(self):
        cache = BlockCache(512)  # smaller than one block
        cache.put(("big",), block(1))
        assert len(cache) == 0

    def test_replacement_updates_bytes(self):
        cache = BlockCache("8 KiB")
        cache.put(("k",), block(1, n=256))
        cache.put(("k",), block(2, n=512))  # replace with bigger
        assert len(cache) == 1
        assert cache.used_bytes == 512 * 4
        assert cache.get(("k",))[0] == 2

    def test_inserted_bytes_accumulates(self):
        cache = BlockCache("8 KiB")
        cache.put(("a",), block(1))
        cache.put(("b",), block(2))
        assert cache.stats.inserted_bytes == 2 * 1024

    def test_replacement_does_not_double_count_inserted_bytes(self):
        """Regression: re-putting a key must not inflate inserted_bytes."""
        cache = BlockCache("8 KiB")
        cache.put(("k",), block(1))
        cache.put(("k",), block(2))  # same size: free
        assert cache.stats.inserted_bytes == 1024
        assert cache.stats.replacements == 1
        cache.put(("k",), block(3, n=512))  # grows by 1 KiB
        assert cache.stats.inserted_bytes == 2048
        assert cache.used_bytes == 2048

    def test_replacement_with_smaller_block_reduces_inserted(self):
        cache = BlockCache("8 KiB")
        cache.put(("k",), block(1, n=512))  # 2 KiB
        cache.put(("k",), block(2, n=256))  # shrink to 1 KiB
        assert cache.stats.inserted_bytes == 1024  # net volume admitted
        assert cache.used_bytes == 1024

    def test_eviction_byte_accounting(self):
        """Filling past capacity grows evictions and evicted_bytes together."""
        cache = BlockCache(4 * 1024)  # fits 4 blocks
        for i in range(10):
            cache.put((i,), block(i))
        assert cache.stats.evictions == 6
        assert cache.stats.evicted_bytes == 6 * 1024
        # conservation: everything admitted is either resident or evicted
        assert cache.stats.inserted_bytes == cache.used_bytes + cache.stats.evicted_bytes

    def test_no_eviction_no_evicted_bytes(self):
        cache = BlockCache("8 KiB")
        cache.put(("a",), block(1))
        cache.put(("b",), block(2))
        assert cache.stats.evictions == 0
        assert cache.stats.evicted_bytes == 0

    def test_clear_preserves_cumulative_stats(self):
        cache = BlockCache("8 KiB")
        cache.put(("a",), block(1))
        cache.get(("a",))
        cache.get(("missing",))
        cache.clear()
        assert len(cache) == 0 and cache.used_bytes == 0
        # Lifetime counters survive; clears are not evictions.
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.inserted_bytes == 1024
        assert cache.stats.evictions == 0
