"""Tests for raw binary dumps with sidecars."""

import json

import numpy as np
import pytest

from repro.formats.rawbin import read_raw, read_raw_window, sidecar_path, write_raw


class TestRoundTrip:
    @pytest.mark.parametrize("dtype", [np.uint8, np.int16, np.float32, np.float64])
    def test_dtypes(self, tmp_path, rng, dtype):
        path = str(tmp_path / "a.raw")
        a = (rng.random((13, 21)) * 100).astype(dtype)
        write_raw(path, a)
        assert np.array_equal(read_raw(path), a)

    def test_3d(self, tmp_path, rng):
        path = str(tmp_path / "v.raw")
        v = rng.random((4, 6, 8)).astype(np.float32)
        write_raw(path, v)
        assert np.array_equal(read_raw(path), v)

    def test_attrs_round_trip(self, tmp_path):
        path = str(tmp_path / "a.raw")
        write_raw(path, np.zeros((2, 2)), attrs={"units": "m", "region": "conus"})
        _, attrs = read_raw(path, with_attrs=True)
        assert attrs == {"units": "m", "region": "conus"}

    def test_sidecar_is_json(self, tmp_path):
        path = str(tmp_path / "a.raw")
        write_raw(path, np.zeros((3, 5), dtype=np.float32))
        with open(sidecar_path(path)) as fh:
            meta = json.load(fh)
        assert meta["shape"] == [3, 5]
        assert meta["dtype"] == "f4"

    def test_size_returned(self, tmp_path):
        a = np.zeros((10, 10), dtype=np.float64)
        assert write_raw(str(tmp_path / "a.raw"), a) == a.nbytes


class TestWindowedRead:
    def test_window_matches_slice(self, tmp_path, rng):
        path = str(tmp_path / "a.raw")
        a = rng.random((50, 60)).astype(np.float32)
        write_raw(path, a)
        w = read_raw_window(path, ((10, 20), (30, 45)))
        assert np.array_equal(w, a[10:30, 20:45])

    def test_full_window(self, tmp_path, rng):
        path = str(tmp_path / "a.raw")
        a = rng.random((8, 8)).astype(np.float64)
        write_raw(path, a)
        assert np.array_equal(read_raw_window(path, ((0, 0), (8, 8))), a)

    def test_out_of_bounds_rejected(self, tmp_path):
        path = str(tmp_path / "a.raw")
        write_raw(path, np.zeros((4, 4)))
        with pytest.raises(ValueError):
            read_raw_window(path, ((0, 0), (5, 4)))

    def test_3d_window(self, tmp_path, rng):
        path = str(tmp_path / "v.raw")
        v = rng.random((6, 7, 8)).astype(np.float32)
        write_raw(path, v)
        w = read_raw_window(path, ((1, 2, 3), (4, 5, 6)))
        assert np.array_equal(w, v[1:4, 2:5, 3:6])
