"""Tests for link congestion modelling."""

import pytest

from repro.network import NetworkMonitor, default_testbed


class TestCongestion:
    def test_latency_scales(self):
        # jhu-udel is udel's only link: no detour can mask the congestion.
        tb = default_testbed()
        before = tb.path_link("jhu", "udel").latency_s
        tb.set_congestion("jhu", "udel", 3.0)
        after = tb.path_link("jhu", "udel").latency_s
        assert after == pytest.approx(3.0 * before)

    def test_moderate_congestion_can_shift_routing(self):
        """Congesting knox-chi makes the knox->chi route prefer the
        umich detour once the scaled latency exceeds the alternative."""
        tb = default_testbed()
        assert tb.route("knox", "chi") == ["knox", "chi"]
        tb.set_congestion("knox", "chi", 3.0)
        assert tb.route("knox", "chi") == ["knox", "umich", "chi"]

    def test_bandwidth_divides(self):
        tb = default_testbed()
        before = tb.path_link("jhu", "udel").bandwidth_bps
        tb.set_congestion("jhu", "udel", 4.0)
        assert tb.path_link("jhu", "udel").bandwidth_bps == pytest.approx(before / 4)

    def test_clear_restores_nominal(self):
        tb = default_testbed()
        nominal = tb.path_link("knox", "chi").latency_s
        tb.set_congestion("knox", "chi", 5.0)
        tb.clear_congestion("knox", "chi")
        assert tb.path_link("knox", "chi").latency_s == pytest.approx(nominal)

    def test_clear_without_congestion_noop(self):
        tb = default_testbed()
        tb.clear_congestion("knox", "chi")  # never congested

    def test_repeated_congestion_from_base(self):
        """Setting congestion twice scales from nominal, not cumulatively."""
        tb = default_testbed()
        nominal = tb.path_link("jhu", "udel").latency_s
        tb.set_congestion("jhu", "udel", 2.0)
        tb.set_congestion("jhu", "udel", 2.0)
        assert tb.path_link("jhu", "udel").latency_s == pytest.approx(2.0 * nominal)

    def test_validation(self):
        tb = default_testbed()
        with pytest.raises(KeyError):
            tb.set_congestion("knox", "sdsc", 2.0)  # no direct edge
        with pytest.raises(ValueError):
            tb.set_congestion("knox", "chi", 0.5)

    def test_heavy_congestion_triggers_detour(self):
        tb = default_testbed()
        assert tb.route("knox", "chi") == ["knox", "chi"]
        tb.set_congestion("knox", "chi", 50.0)
        detour = tb.route("knox", "chi")
        assert len(detour) > 2  # via umich

    def test_monitor_observes_congestion(self):
        tb = default_testbed()
        monitor = NetworkMonitor(tb, seed=2)
        before = monitor.probe("jhu", "udel", repeats=3)
        tb.set_congestion("jhu", "udel", 8.0)
        after = monitor.probe("jhu", "udel", repeats=3)
        assert after.rtt_ms_mean > 4 * before.rtt_ms_mean
        assert after.throughput_bps < before.throughput_bps

    def test_congestion_and_failure_compose(self):
        tb = default_testbed()
        tb.set_congestion("knox", "chi", 2.0)
        tb.fail_link("knox", "umich")
        # Still routable via the (congested) direct link.
        path = tb.route("knox", "chi")
        assert path == ["knox", "chi"]
        tb.restore_link("knox", "umich")
        tb.clear_congestion("knox", "chi")
