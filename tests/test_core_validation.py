"""Tests for the Step 3 validation metrics."""

import math

import numpy as np
import pytest

from repro.core.validation import (
    compare_rasters,
    max_abs_error,
    psnr,
    rmse,
    ssim,
    validate_conversion,
)


@pytest.fixture
def pair(rng):
    a = rng.random((32, 32)) * 100
    return a, a + rng.normal(0, 0.5, a.shape)


class TestBasicMetrics:
    def test_identical_rasters(self, rng):
        a = rng.random((16, 16))
        assert rmse(a, a) == 0.0
        assert max_abs_error(a, a) == 0.0
        assert math.isinf(psnr(a, a))
        assert ssim(a, a) == pytest.approx(1.0)

    def test_rmse_known_value(self):
        a = np.zeros((2, 2))
        b = np.full((2, 2), 3.0)
        assert rmse(a, b) == pytest.approx(3.0)

    def test_max_abs_error_localised(self):
        a = np.zeros((4, 4))
        b = a.copy()
        b[2, 3] = -7.0
        assert max_abs_error(a, b) == 7.0

    def test_psnr_decreases_with_noise(self, rng):
        a = rng.random((32, 32))
        little = a + rng.normal(0, 0.001, a.shape)
        lots = a + rng.normal(0, 0.1, a.shape)
        assert psnr(a, little) > psnr(a, lots)

    def test_psnr_data_range_override(self, rng):
        a = rng.random((8, 8))
        b = a + 0.01
        assert psnr(a, b, data_range=10.0) > psnr(a, b, data_range=1.0)

    def test_ssim_sensitive_to_structure(self, rng):
        a = rng.random((64, 64))
        shuffled = rng.permutation(a.ravel()).reshape(a.shape)
        assert ssim(a, shuffled) < 0.5

    def test_ssim_parameters(self, rng):
        a = rng.random((16, 16))
        with pytest.raises(ValueError):
            ssim(a, a, window=4)
        with pytest.raises(ValueError):
            ssim(a, a, window=1)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            rmse(np.zeros((2, 2)), np.zeros((3, 3)))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            rmse(np.zeros((0,)), np.zeros((0,)))


class TestCompareRasters:
    def test_report_fields(self, pair):
        a, b = pair
        report = compare_rasters(a, b, tolerance=2.0)
        assert report.rmse > 0
        assert report.max_abs_error > 0
        assert report.ssim < 1.0
        assert not report.identical

    def test_tolerance_gate(self, pair):
        a, b = pair
        err = max_abs_error(a, b)
        assert compare_rasters(a, b, tolerance=err).passed
        assert not compare_rasters(a, b, tolerance=err / 2).passed

    def test_identical_always_passes(self, rng):
        a = rng.random((8, 8))
        report = compare_rasters(a, a.copy())
        assert report.identical
        assert report.passed


class TestValidateConversion:
    def test_lossless_passes(self, tmp_path, small_dem):
        from repro.formats.tiff import write_tiff
        from repro.idx.convert import tiff_to_idx

        tiff = str(tmp_path / "a.tif")
        idx = str(tmp_path / "a.idx")
        write_tiff(tiff, small_dem)
        tiff_to_idx(tiff, idx)
        report = validate_conversion(tiff, idx)
        assert report.identical
        assert report.passed

    def test_zfp_passes_with_codec_tolerance(self, tmp_path, small_dem):
        from repro.compression import ZfpCodec
        from repro.formats.tiff import write_tiff
        from repro.idx.convert import tiff_to_idx

        tiff = str(tmp_path / "a.tif")
        idx = str(tmp_path / "a.idx")
        write_tiff(tiff, small_dem)
        tiff_to_idx(tiff, idx, codec="zfp:precision=16")
        tol = ZfpCodec(precision=16).tolerance_for(small_dem)
        report = validate_conversion(tiff, idx, tolerance=tol)
        assert not report.identical
        assert report.passed
        assert report.ssim > 0.99  # visually indistinguishable
