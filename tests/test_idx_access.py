"""Tests for access layers: local, cached, remote, and batched prefetch."""

import numpy as np
import pytest

from repro.idx import BlockCache, CachedAccess, IdxDataset, LocalAccess, RemoteAccess
from repro.idx.idxfile import BytesByteSource


@pytest.fixture
def idx_path(tmp_path, rng):
    a = rng.random((64, 64)).astype(np.float32)
    path = str(tmp_path / "d.idx")
    ds = IdxDataset.create(path, dims=a.shape, bits_per_block=6)
    ds.write(a)
    ds.finalize()
    return path, a


class TestLocalAccess:
    def test_counters(self, idx_path):
        path, a = idx_path
        access = LocalAccess(path)
        ds = IdxDataset.from_access(access)
        ds.read()
        assert access.counters.blocks_read > 0
        assert access.counters.bytes_read > 0
        assert len(access.counters.access_log) == access.counters.blocks_read

    def test_uri_stable(self, idx_path):
        path, _ = idx_path
        assert LocalAccess(path).uri == f"file://{path}"


class TestCachedAccess:
    def test_second_read_hits_cache(self, idx_path):
        path, a = idx_path
        inner = LocalAccess(path)
        access = CachedAccess(inner, BlockCache("8 MiB"))
        ds = IdxDataset.from_access(access)
        ds.read()
        n1 = inner.counters.blocks_read
        out = ds.read()
        assert inner.counters.blocks_read == n1  # no new inner reads
        assert np.array_equal(out, a)
        assert access.cache.stats.hits > 0

    def test_shared_cache_across_accesses(self, idx_path):
        path, _ = idx_path
        cache = BlockCache("8 MiB")
        a1 = CachedAccess(LocalAccess(path), cache)
        IdxDataset.from_access(a1).read()
        inner2 = LocalAccess(path)
        a2 = CachedAccess(inner2, cache)
        IdxDataset.from_access(a2).read()
        assert inner2.counters.blocks_read == 0  # same uri -> shared entries

    def test_default_cache_constructed(self, idx_path):
        path, _ = idx_path
        access = CachedAccess(LocalAccess(path))
        assert access.cache is not None

    def test_tiny_cache_still_correct(self, idx_path):
        path, a = idx_path
        access = CachedAccess(LocalAccess(path), BlockCache(1024))  # ~1 block
        out = IdxDataset.from_access(access).read()
        assert np.array_equal(out, a)


class _CountingSource(BytesByteSource):
    """Byte source that counts read_at/read_many invocations."""

    def __init__(self, blob: bytes) -> None:
        super().__init__(blob)
        self.single_reads = 0
        self.batch_reads = 0

    def read_at(self, offset, length):
        self.single_reads += 1
        return super().read_at(offset, length)

    def read_many(self, ranges):
        self.batch_reads += 1
        return [super(_CountingSource, self).read_at(o, n) for o, n in ranges]


class TestRemoteAccess:
    def test_remote_read_correct(self, idx_path):
        path, a = idx_path
        with open(path, "rb") as fh:
            blob = fh.read()
        access = RemoteAccess(BytesByteSource(blob), uri="mem://d.idx")
        out = IdxDataset.from_access(access).read()
        assert np.array_equal(out, a)

    def test_prefetch_batches_round_trips(self, idx_path):
        path, a = idx_path
        with open(path, "rb") as fh:
            blob = fh.read()
        src = _CountingSource(blob)
        access = RemoteAccess(src)
        out = IdxDataset.from_access(access).read()
        assert np.array_equal(out, a)
        # Header/table parsing costs a few single reads, but block fetches
        # must all flow through one batched call.
        assert src.batch_reads == 1
        assert src.single_reads <= 4

    def test_prefetch_skips_absent_blocks(self, tmp_path):
        path = str(tmp_path / "z.idx")
        ds = IdxDataset.create(path, dims=(32, 32), codec="identity", bits_per_block=5)
        ds.write(np.zeros((32, 32), dtype=np.float32))
        ds.finalize()
        with open(path, "rb") as fh:
            blob = fh.read()
        src = _CountingSource(blob)
        access = RemoteAccess(src)
        out = IdxDataset.from_access(access).read()
        assert (out == 0).all()
        assert src.batch_reads == 0  # nothing stored, nothing fetched

    def test_cached_remote_prefetch_only_missing(self, idx_path):
        path, a = idx_path
        with open(path, "rb") as fh:
            blob = fh.read()
        src = _CountingSource(blob)
        access = CachedAccess(RemoteAccess(src), BlockCache("8 MiB"))
        ds = IdxDataset.from_access(access)
        ds.read(resolution=6)
        batches_after_first = src.batch_reads
        ds.read(resolution=6)  # fully cached: no new batch
        assert src.batch_reads == batches_after_first

    def test_prefetched_and_direct_bytes_read_agree(self, idx_path):
        """Regression: the staged (prefetched) path must record stored
        (compressed) bytes like the direct path, not decoded bytes."""
        path, a = idx_path
        with open(path, "rb") as fh:
            blob = fh.read()
        # Prefetched session: read_many available, so the query pipeline
        # stages every block and read_block serves from the stage.
        staged = RemoteAccess(_CountingSource(blob))
        out_staged = IdxDataset.from_access(staged).read()
        # Direct session: a plain source has no read_many, so prefetch is
        # a no-op and every block takes the direct read path.
        direct = RemoteAccess(BytesByteSource(blob))
        out_direct = IdxDataset.from_access(direct).read()
        assert np.array_equal(out_staged, out_direct)
        # zlib-compressed float noise: decoded size != stored size, so
        # this catches decoded-bytes bookkeeping on either path.
        assert staged.counters.bytes_read > 0
        assert staged.counters.bytes_read == direct.counters.bytes_read
        assert staged.counters.blocks_read == direct.counters.blocks_read

    def test_parallel_and_direct_bytes_read_agree(self, idx_path):
        """The thread-pool pipeline records the same stored bytes too."""
        path, _ = idx_path
        with open(path, "rb") as fh:
            blob = fh.read()
        parallel = RemoteAccess(BytesByteSource(blob), workers=3)
        IdxDataset.from_access(parallel).read()
        direct = RemoteAccess(BytesByteSource(blob))
        IdxDataset.from_access(direct).read()
        assert parallel.counters.bytes_read == direct.counters.bytes_read
        parallel.close()

    def test_stage_dropped_when_query_finishes(self, idx_path):
        path, a = idx_path
        with open(path, "rb") as fh:
            blob = fh.read()
        access = RemoteAccess(_CountingSource(blob))
        ds = IdxDataset.from_access(access)
        ds.read()
        assert access._staged == {}  # nothing retained after the query

    def test_repeated_prefetch_within_query_scope_not_refetched(self, idx_path):
        path, _ = idx_path
        with open(path, "rb") as fh:
            blob = fh.read()
        src = _CountingSource(blob)
        access = RemoteAccess(src)
        bids = [0, 1]
        access.prefetch(0, 0, bids)
        batches = src.batch_reads
        access.prefetch(0, 0, bids)  # same query scope: already staged
        assert src.batch_reads == batches
        access.release_prefetched()
        access.prefetch(0, 0, bids)  # new scope: fetched again
        assert src.batch_reads == batches + 1


class TestAccessLogCap:
    def test_log_capped_with_truncated_flag(self, idx_path):
        path, _ = idx_path
        access = LocalAccess(path)
        access.counters.log_limit = 5
        ds = IdxDataset.from_access(access)
        ds.read()  # touches more than 5 blocks
        assert access.counters.blocks_read > 5
        assert len(access.counters.access_log) == 5
        assert access.counters.truncated
        # Scalar counters keep exact totals past the cap.
        assert access.counters.bytes_read > 0

    def test_default_cap_not_hit_by_small_reads(self, idx_path):
        path, _ = idx_path
        access = LocalAccess(path)
        IdxDataset.from_access(access).read()
        assert not access.counters.truncated
        assert len(access.counters.access_log) == access.counters.blocks_read


class TestBlocksSince:
    """Regression: per-step accounting vs snapshots and the log cap."""

    def test_overlapping_snapshots(self):
        from repro.idx.access import AccessCounters

        c = AccessCounters()
        s0 = c.snapshot()
        c.record(0, 0, 1, 10)
        s1 = c.snapshot()
        c.record(0, 0, 2, 10)
        c.record(0, 0, 3, 0)
        # An older snapshot sees a superset of a newer one.
        assert c.blocks_since(s0) == [(0, 0, 1), (0, 0, 2), (0, 0, 3)]
        assert c.blocks_since(s1) == [(0, 0, 2), (0, 0, 3)]
        s2 = c.snapshot()
        assert c.blocks_since(s2) == []
        # Old snapshots stay valid after further reads.
        c.record(0, 0, 4, 7)
        assert c.blocks_since(s1) == [(0, 0, 2), (0, 0, 3), (0, 0, 4)]

    def test_raises_after_truncation(self):
        from repro.idx.access import AccessCounters

        c = AccessCounters(log_limit=2)
        snap = c.snapshot()
        for b in range(3):
            c.record(0, 0, b, 1)
        assert c.truncated
        assert c.blocks_read == 3  # scalars stay exact
        with pytest.raises(RuntimeError, match="truncated"):
            c.blocks_since(snap)
        # Even a fresh snapshot cannot resurrect per-step keys.
        with pytest.raises(RuntimeError):
            c.blocks_since(c.snapshot())

    def test_snapshot_taken_before_cap_then_truncated(self):
        from repro.idx.access import AccessCounters

        c = AccessCounters(log_limit=4)
        c.record(0, 0, 0, 1)
        snap = c.snapshot()
        for b in range(1, 4):
            c.record(0, 0, b, 1)
        assert not c.truncated
        assert c.blocks_since(snap) == [(0, 0, 1), (0, 0, 2), (0, 0, 3)]
        c.record(0, 0, 4, 1)  # drops past the cap
        with pytest.raises(RuntimeError):
            c.blocks_since(snap)
