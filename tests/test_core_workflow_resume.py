"""Tests for workflow checkpoint/resume."""

import pytest

from repro.core.workflow import Workflow, WorkflowStep


def counting_step(name, counter, inputs=(), outputs=(), fail=False):
    def fn(ctx):
        counter[name] = counter.get(name, 0) + 1
        if fail:
            raise RuntimeError("boom")
        return {out: f"{name}-value" for out in outputs}

    return WorkflowStep(name=name, func=fn, inputs=inputs, outputs=outputs)


class TestResume:
    def test_resume_skips_completed_steps(self):
        counter = {}
        wf = Workflow()
        wf.add_step(counting_step("a", counter, outputs=("x",)))
        wf.add_step(counting_step("b", counter, inputs=("x",), outputs=("y",)))
        first = wf.run()
        assert first.ok
        second = wf.run(first.context, resume=True)
        assert second.ok
        assert counter == {"a": 1, "b": 1}  # nothing re-ran
        statuses = {r.name: r.status for r in second.results}
        assert statuses == {"a": "resumed", "b": "resumed"}

    def test_resume_after_failure_continues(self):
        counter = {}
        flaky = {"fail": True}

        def sometimes(ctx):
            counter["b"] = counter.get("b", 0) + 1
            if flaky["fail"]:
                raise RuntimeError("transient")
            return {"y": 1}

        wf = Workflow()
        wf.add_step(counting_step("a", counter, outputs=("x",)))
        wf.add_step(WorkflowStep("b", sometimes, ("x",), ("y",)))
        wf.add_step(counting_step("c", counter, inputs=("y",), outputs=("z",)))

        first = wf.run()
        assert not first.ok
        assert {r.name: r.status for r in first.results} == {
            "a": "ok", "b": "failed", "c": "skipped",
        }

        flaky["fail"] = False
        second = wf.run(first.context, resume=True)
        assert second.ok
        assert counter["a"] == 1  # step a never re-ran
        assert counter["b"] == 2  # retried
        assert counter["c"] == 1

    def test_resume_false_reruns_everything(self):
        counter = {}
        wf = Workflow()
        wf.add_step(counting_step("a", counter, outputs=("x",)))
        first = wf.run()
        wf.run(first.context, resume=False)
        assert counter["a"] == 2

    def test_partial_outputs_force_rerun(self):
        counter = {}
        wf = Workflow()
        wf.add_step(counting_step("a", counter, outputs=("x", "w")))
        first = wf.run()
        ctx = dict(first.context)
        del ctx["w"]  # one declared output missing -> must re-run
        second = wf.run(ctx, resume=True)
        assert counter["a"] == 2
        assert second.ok

    def test_steps_without_outputs_always_run(self):
        counter = {}
        wf = Workflow()
        wf.add_step(counting_step("side-effect", counter))
        wf.run({}, resume=True)
        wf.run({}, resume=True)
        assert counter["side-effect"] == 2

    def test_resumed_counts_as_ok(self):
        wf = Workflow()
        wf.add_step(counting_step("a", {}, outputs=("x",)))
        run = wf.run({"x": "precomputed"}, resume=True)
        assert run.ok
        assert run.results[0].status == "resumed"
        assert run.total_seconds == 0.0


class TestTutorialResume:
    def test_four_step_resume_after_step3(self, tmp_path):
        from repro.core import build_tutorial_workflow

        wf = build_tutorial_workflow(str(tmp_path), shape=(32, 32), grid=(1, 1))
        first = wf.run()
        assert first.ok
        # Re-running with resume redoes nothing but step 4 I/O-free checks.
        second = wf.run(first.context, resume=True)
        statuses = [r.status for r in second.results]
        assert statuses == ["resumed"] * 4
