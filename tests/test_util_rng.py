"""Keyed seed derivation: pure, collision-resistant, restart-stable.

``derive_seed``/``spawn`` underpin sampler epoch orderings, so their
determinism must hold across *process restarts* — the subprocess test
replays a draw in a fresh interpreter (fresh ``PYTHONHASHSEED``) and
compares bytes.
"""

import os
import subprocess
import sys

import numpy as np

from repro.util.rng import derive_seed, spawn

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


class TestDeriveSeed:
    def test_pure(self):
        assert derive_seed(7, "windows", 0) == derive_seed(7, "windows", 0)

    def test_distinct_keys_distinct_seeds(self):
        seeds = {
            derive_seed(7),
            derive_seed(8),
            derive_seed(7, "windows"),
            derive_seed(7, "windows", 0),
            derive_seed(7, "windows", 1),
            derive_seed(7, "grid", 0),
        }
        assert len(seeds) == 6

    def test_key_parts_not_ambiguous(self):
        """("ab",) and ("a", "b") must not collide via naive concatenation."""
        assert derive_seed(1, "ab") != derive_seed(1, "a", "b")

    def test_64_bit_range(self):
        s = derive_seed(123, "x")
        assert 0 <= s < 2**64


class TestSpawn:
    def test_same_key_same_stream(self):
        a = spawn(5, "epoch", 2).random(16)
        b = spawn(5, "epoch", 2).random(16)
        np.testing.assert_array_equal(a, b)

    def test_different_key_different_stream(self):
        a = spawn(5, "epoch", 2).random(16)
        b = spawn(5, "epoch", 3).random(16)
        assert not np.array_equal(a, b)

    def test_order_independent(self):
        """Keyed derivation has no hidden sequence position to corrupt."""
        first = spawn(9, "a").random(4)
        _ = spawn(9, "b").random(4)  # interleaved spawn must not perturb "a"
        again = spawn(9, "a").random(4)
        np.testing.assert_array_equal(first, again)


class TestRestartStability:
    def _draw_in_subprocess(self, hashseed: str) -> str:
        code = (
            "from repro.util.rng import derive_seed, spawn\n"
            "print(derive_seed(42, 'windows', 3))\n"
            "print(spawn(42, 'windows', 3).integers(0, 1000, 8).tolist())\n"
        )
        env = dict(os.environ, PYTHONPATH=SRC, PYTHONHASHSEED=hashseed)
        out = subprocess.run(
            [sys.executable, "-c", code],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        return out.stdout

    def test_identical_across_process_restarts(self):
        """Two fresh interpreters with different hash seeds agree exactly."""
        assert self._draw_in_subprocess("0") == self._draw_in_subprocess("12345")

    def test_subprocess_matches_this_process(self):
        out = self._draw_in_subprocess("777").splitlines()
        assert int(out[0]) == derive_seed(42, "windows", 3)
        assert out[1] == str(spawn(42, "windows", 3).integers(0, 1000, 8).tolist())
