"""Tests for link-failure injection and rerouting."""

import pytest

from repro.network import NetworkMonitor, SimClock, TransferSimulator, default_testbed
from repro.storage import SealStorage


class TestFailureInjection:
    def test_reroute_around_failed_link(self):
        tb = default_testbed()
        direct = tb.route("knox", "chi")
        assert direct == ["knox", "chi"]
        tb.fail_link("knox", "chi")
        detour = tb.route("knox", "chi")
        assert len(detour) > 2
        assert all(tb.link_is_up(a, b) for a, b in zip(detour, detour[1:]))

    def test_failed_links_listing(self):
        tb = default_testbed()
        tb.fail_link("knox", "chi")
        tb.fail_link("jhu", "udel")
        assert tb.failed_links == [("chi", "knox"), ("jhu", "udel")]

    def test_restore(self):
        tb = default_testbed()
        before = tb.route("knox", "slc")
        tb.fail_link("knox", "chi")
        assert tb.route("knox", "slc") != before
        tb.restore_link("knox", "chi")
        assert tb.route("knox", "slc") == before

    def test_restore_is_idempotent(self):
        tb = default_testbed()
        tb.restore_link("knox", "chi")  # never failed: no-op
        assert tb.failed_links == []

    def test_unknown_link_rejected(self):
        tb = default_testbed()
        with pytest.raises(KeyError):
            tb.fail_link("knox", "sdsc")  # no direct edge
        with pytest.raises(KeyError):
            tb.restore_link("knox", "mars")

    def test_partition_raises_no_route(self):
        tb = default_testbed()
        # udel hangs off jhu alone; cutting jhu-udel isolates it.
        tb.fail_link("udel", "jhu")
        with pytest.raises(KeyError):
            tb.route("udel", "slc")

    def test_symmetric_failure(self):
        tb = default_testbed()
        tb.fail_link("chi", "knox")  # declared in either order
        assert not tb.link_is_up("knox", "chi")


class TestFailureImpact:
    def test_detour_costs_more_latency(self):
        tb = default_testbed()
        healthy = tb.path_link("knox", "chi").latency_s
        tb.fail_link("knox", "chi")
        degraded = tb.path_link("knox", "chi").latency_s
        assert degraded > healthy

    def test_transfer_simulator_follows_reroute(self):
        tb = default_testbed()
        sim = TransferSimulator(tb, SimClock())
        t_ok = sim.transfer("knox", "slc", "64 MiB").seconds
        tb.fail_link("knox", "chi")
        t_fail = sim.transfer("knox", "slc", "64 MiB").seconds
        assert t_fail > t_ok

    def test_monitor_observes_degradation(self):
        tb = default_testbed()
        monitor = NetworkMonitor(tb, seed=1)
        before = monitor.probe("knox", "slc", repeats=3)
        tb.fail_link("knox", "chi")
        after = monitor.probe("knox", "slc", repeats=3)
        assert after.rtt_ms_mean > before.rtt_ms_mean
        assert after.hops > before.hops

    def test_seal_access_survives_failover(self):
        tb = default_testbed()
        clock = SimClock()
        seal = SealStorage(site="slc", testbed=tb, clock=clock)
        token = seal.issue_token("u", ("read", "write"))
        seal.put("k", b"data", token=token, from_site="knox")
        t0 = clock.now
        tb.fail_link("knox", "chi")
        assert seal.get("k", token=token, from_site="knox") == b"data"
        assert clock.now > t0  # served, just slower via the detour
