"""Tests for IDX integrity verification."""

import json
import struct

import numpy as np
import pytest

from repro.idx import IdxDataset, verify_dataset
from repro.idx.idxfile import BytesByteSource, FileByteSource, IdxBinaryReader
from repro.idx.verify import MANIFEST_KEY


@pytest.fixture
def dataset_path(tmp_path, rng):
    a = rng.random((48, 48)).astype(np.float32)
    path = str(tmp_path / "d.idx")
    ds = IdxDataset.create(path, dims=a.shape, bits_per_block=7)
    ds.write(a)
    ds.finalize()
    return path


class TestHappyPath:
    def test_fresh_dataset_verifies(self, dataset_path):
        report = verify_dataset(dataset_path)
        assert report.ok
        assert report.blocks_checked > 0
        assert "OK" in str(report)

    def test_manifest_embedded(self, dataset_path):
        ds = IdxDataset.open(dataset_path)
        manifest = ds.header.metadata.get(MANIFEST_KEY)
        assert manifest
        assert all("/" in k for k in manifest)

    def test_remote_source_verifiable(self, dataset_path):
        with open(dataset_path, "rb") as fh:
            blob = fh.read()
        report = verify_dataset(BytesByteSource(blob))
        assert report.ok

    def test_multi_field_time(self, tmp_path, rng):
        a = rng.random((16, 16)).astype(np.float32)
        path = str(tmp_path / "m.idx")
        ds = IdxDataset.create(path, dims=a.shape, fields=["u", "w"], timesteps=2,
                               bits_per_block=5)
        for f in ("u", "w"):
            for t in (0, 1):
                ds.write(a, field=f, time=t)
        ds.finalize()
        report = verify_dataset(path)
        assert report.ok
        assert report.blocks_checked >= 4


class TestCorruptionDetection:
    def _flip_byte_in_block(self, path, tmp_path):
        """Flip one byte inside the first stored block payload."""
        reader = IdxBinaryReader(FileByteSource(path))
        bid = int(reader.present_blocks(0, 0)[0])
        offset, length = reader.block_entry(0, 0, bid)
        with open(path, "rb") as fh:
            data = bytearray(fh.read())
        data[offset + length // 2] ^= 0xFF
        bad = str(tmp_path / "bad.idx")
        with open(bad, "wb") as fh:
            fh.write(bytes(data))
        return bad

    def test_bit_flip_detected(self, dataset_path, tmp_path):
        bad = self._flip_byte_in_block(dataset_path, tmp_path)
        report = verify_dataset(bad)
        assert not report.ok
        assert len(report.corrupted) == 1
        assert "FAILED" in str(report)

    def test_truncation_detected(self, dataset_path, tmp_path):
        with open(dataset_path, "rb") as fh:
            data = fh.read()
        bad = str(tmp_path / "trunc.idx")
        with open(bad, "wb") as fh:
            fh.write(data[: len(data) - 100])
        report = verify_dataset(bad)
        assert not report.ok
        assert report.corrupted  # short read on the tail block

    def test_missing_manifest_flagged(self, dataset_path, tmp_path):
        # Rewrite the header without the manifest key.
        with open(dataset_path, "rb") as fh:
            data = fh.read()
        magic, hlen = struct.unpack_from("<4sI", data)
        header = json.loads(data[8 : 8 + hlen])
        header["metadata"].pop(MANIFEST_KEY)
        new_json = json.dumps(header, sort_keys=True).encode()
        # Header length changes; rebuild with padding via metadata filler
        # so offsets stay valid.
        pad = hlen - len(new_json)
        assert pad >= 0
        header["metadata"]["_pad"] = "x" * max(0, pad - len('"_pad": "", ') - 2)
        new_json = json.dumps(header, sort_keys=True).encode()
        while len(new_json) < hlen:
            header["metadata"]["_pad"] += "x"
            new_json = json.dumps(header, sort_keys=True).encode()
        new_json = new_json[:hlen] if len(new_json) > hlen else new_json
        if len(new_json) != hlen:
            pytest.skip("could not repad header deterministically")
        bad = str(tmp_path / "nomanifest.idx")
        with open(bad, "wb") as fh:
            fh.write(struct.pack("<4sI", magic, hlen) + new_json + data[8 + hlen :])
        report = verify_dataset(bad)
        assert not report.has_manifest
        assert not report.ok

    def test_unmanifested_block_flagged(self, dataset_path, tmp_path):
        """A block present in the table but absent from the manifest."""
        # Simulate by deleting one manifest entry (same-length header trick
        # is brittle, so go through the reader and rebuild the file).
        reader = IdxBinaryReader(FileByteSource(dataset_path))
        header = reader.header
        manifest = dict(header.metadata[MANIFEST_KEY])
        victim = sorted(manifest)[0]
        removed = manifest.pop(victim)
        header.metadata[MANIFEST_KEY] = manifest

        from repro.idx.idxfile import write_idx_file

        blocks = {}
        for t in range(len(header.timesteps)):
            for f in range(len(header.fields)):
                for b in reader.present_blocks(t, f):
                    offset, length = reader.block_entry(t, f, int(b))
                    blocks[(t, f, int(b))] = FileByteSource(dataset_path).read_at(
                        offset, length
                    )
        bad = str(tmp_path / "partial.idx")
        write_idx_file(bad, header, blocks)
        report = verify_dataset(bad)
        assert report.missing_from_manifest == [victim]
        assert not report.ok

    def test_missing_block_flagged(self, dataset_path, tmp_path):
        """A manifest entry whose block vanished from the table."""
        reader = IdxBinaryReader(FileByteSource(dataset_path))
        header = reader.header
        from repro.idx.idxfile import write_idx_file

        blocks = {}
        for b in reader.present_blocks(0, 0):
            offset, length = reader.block_entry(0, 0, int(b))
            blocks[(0, 0, int(b))] = FileByteSource(dataset_path).read_at(offset, length)
        dropped = sorted(blocks)[0]
        del blocks[dropped]
        bad = str(tmp_path / "dropped.idx")
        write_idx_file(bad, header, blocks)
        report = verify_dataset(bad)
        assert report.missing_from_file
        assert not report.ok
