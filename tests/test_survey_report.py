"""Tests for the evaluation report generator."""

import pytest

from repro.survey.likert import Distribution
from repro.survey.report import evaluation_report, key_findings


class TestKeyFindings:
    def test_participation_headline(self):
        findings = key_findings()
        assert any("108 participants" in f for f in findings)
        assert any("4 venues" in f for f in findings)

    def test_positivity_range(self):
        findings = key_findings()
        positive = [f for f in findings if "rated positively" in f]
        assert len(positive) == 1

    def test_custom_distributions(self):
        flat = {q: Distribution((20, 20, 20, 24, 24)) for q in "abcd"}
        findings = key_findings(flat)
        assert any("44" in f for f in findings)  # 44.4% positive rounds into text


class TestEvaluationReport:
    @pytest.fixture(scope="class")
    def report(self):
        return evaluation_report()

    def test_sections_present(self, report):
        for section in (
            "1. PARTICIPATION",
            "2. SURVEY RESULTS",
            "3. PARTICIPANT FEEDBACK",
            "4. KEY FINDINGS",
        ):
            assert section in report

    def test_all_venues_listed(self, report):
        assert "San Diego Supercomputer Center" in report
        assert "University of Delaware" in report
        assert "Webinar" in report
        assert "University of Tennessee Knoxville" in report

    def test_all_questions_charted(self, report):
        for qid in ("(a)", "(b)", "(c)", "(d)"):
            assert qid in report
        assert report.count("Strongly Agree") >= 4

    def test_quotes_included(self, report):
        assert "very easy to follow" in report
        assert "domain scientist" in report

    def test_totals(self, report):
        assert "108  TOTAL" in report

    def test_renders_without_trailing_whitespace_explosion(self, report):
        assert len(report.splitlines()) < 120
