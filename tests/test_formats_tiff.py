"""Tests for the minimal TIFF 6.0 reader/writer."""

import struct

import numpy as np
import pytest

from repro.formats.tiff import TiffError, read_tiff, tiff_info, write_tiff

DTYPES = [np.uint8, np.uint16, np.uint32, np.int8, np.int16, np.int32, np.float32, np.float64]


@pytest.fixture
def raster(rng):
    return (rng.random((61, 83)) * 250).astype(np.float32)


class TestRoundTrip:
    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("compression", ["none", "deflate"])
    def test_all_dtypes(self, tmp_path, rng, dtype, compression):
        path = str(tmp_path / "t.tif")
        a = (rng.random((40, 33)) * 200).astype(dtype)
        write_tiff(path, a, compression=compression)
        assert np.array_equal(read_tiff(path), a)

    @pytest.mark.parametrize("rows_per_strip", [1, 7, 40, 64, 1000])
    def test_strip_sizes(self, tmp_path, raster, rows_per_strip):
        path = str(tmp_path / "t.tif")
        write_tiff(path, raster, rows_per_strip=rows_per_strip)
        assert np.array_equal(read_tiff(path), raster)

    def test_rgb(self, tmp_path, rng):
        path = str(tmp_path / "rgb.tif")
        rgb = (rng.random((20, 30, 3)) * 255).astype(np.uint8)
        write_tiff(path, rgb, compression="deflate")
        assert np.array_equal(read_tiff(path), rgb)

    def test_single_pixel(self, tmp_path):
        path = str(tmp_path / "one.tif")
        write_tiff(path, np.array([[42.5]], dtype=np.float64))
        assert read_tiff(path)[0, 0] == 42.5

    def test_returned_size_matches_file(self, tmp_path, raster):
        import os

        path = str(tmp_path / "t.tif")
        size = write_tiff(path, raster)
        assert size == os.path.getsize(path)


class TestMetadataTags:
    def test_description(self, tmp_path, raster):
        path = str(tmp_path / "t.tif")
        write_tiff(path, raster, description="slope raster (Tennessee)")
        assert tiff_info(path).description == "slope raster (Tennessee)"

    def test_geotiff_tags(self, tmp_path, raster):
        path = str(tmp_path / "t.tif")
        write_tiff(
            path,
            raster,
            pixel_scale=(30.0, 30.0, 0.0),
            tiepoint=(0, 0, 0, -90.31, 36.68, 0),
        )
        info = tiff_info(path)
        assert info.pixel_scale == (30.0, 30.0, 0.0)
        assert info.tiepoint == (0.0, 0.0, 0.0, -90.31, 36.68, 0.0)

    def test_info_structure(self, tmp_path, raster):
        path = str(tmp_path / "t.tif")
        write_tiff(path, raster, compression="deflate", rows_per_strip=16)
        info = tiff_info(path)
        assert (info.height, info.width) == raster.shape
        assert info.shape == raster.shape
        assert info.samples_per_pixel == 1
        assert info.rows_per_strip == 16
        assert len(info.strip_offsets) == len(info.strip_byte_counts) == -(-61 // 16)

    def test_compression_reduces_smooth_raster(self, tmp_path):
        from scipy.ndimage import gaussian_filter

        smooth = gaussian_filter(
            np.random.default_rng(0).random((128, 128)), 6
        ).astype(np.float32)
        p1 = str(tmp_path / "raw.tif")
        p2 = str(tmp_path / "def.tif")
        s1 = write_tiff(p1, smooth, compression="none")
        s2 = write_tiff(p2, smooth, compression="deflate")
        assert s2 < s1


class TestValidation:
    def test_bad_shape(self, tmp_path):
        with pytest.raises(TiffError):
            write_tiff(str(tmp_path / "x.tif"), np.zeros((2, 2, 2)))

    def test_rgb_must_be_uint8(self, tmp_path):
        with pytest.raises(TiffError):
            write_tiff(str(tmp_path / "x.tif"), np.zeros((4, 4, 3), dtype=np.float32))

    def test_unknown_compression(self, tmp_path):
        with pytest.raises(TiffError):
            write_tiff(str(tmp_path / "x.tif"), np.zeros((4, 4)), compression="jpeg")

    def test_bad_rows_per_strip(self, tmp_path):
        with pytest.raises(TiffError):
            write_tiff(str(tmp_path / "x.tif"), np.zeros((4, 4)), rows_per_strip=0)

    def test_unsupported_dtype(self, tmp_path):
        with pytest.raises(TiffError):
            write_tiff(str(tmp_path / "x.tif"), np.zeros((4, 4), dtype=np.complex64))

    def test_truncated_file(self, tmp_path, raster):
        path = str(tmp_path / "t.tif")
        write_tiff(path, raster)
        with open(path, "rb") as fh:
            data = fh.read()
        bad = str(tmp_path / "bad.tif")
        with open(bad, "wb") as fh:
            fh.write(data[: len(data) // 2])
        with pytest.raises(TiffError):
            read_tiff(bad)

    def test_not_a_tiff(self, tmp_path):
        path = str(tmp_path / "no.tif")
        with open(path, "wb") as fh:
            fh.write(b"PNG not really a tiff file content here")
        with pytest.raises(TiffError):
            tiff_info(path)

    def test_bad_magic_number(self, tmp_path):
        path = str(tmp_path / "no.tif")
        with open(path, "wb") as fh:
            fh.write(struct.pack("<2sHI", b"II", 43, 8) + bytes(100))
        with pytest.raises(TiffError, match="magic"):
            tiff_info(path)


class TestByteLevelFormat:
    """The files must be genuine little-endian classic TIFF."""

    def test_header_bytes(self, tmp_path, raster):
        path = str(tmp_path / "t.tif")
        write_tiff(path, raster)
        with open(path, "rb") as fh:
            header = fh.read(8)
        order, magic, ifd = struct.unpack("<2sHI", header)
        assert order == b"II"
        assert magic == 42
        assert ifd == 8

    def test_ifd_entries_sorted_by_tag(self, tmp_path, raster):
        path = str(tmp_path / "t.tif")
        write_tiff(path, raster, description="x", pixel_scale=(1, 1, 0))
        with open(path, "rb") as fh:
            fh.seek(8)
            (n,) = struct.unpack("<H", fh.read(2))
            tags = []
            for _ in range(n):
                entry = fh.read(12)
                tags.append(struct.unpack("<H", entry[:2])[0])
        assert tags == sorted(tags)

    def test_strip_offsets_point_at_data(self, tmp_path, raster):
        path = str(tmp_path / "t.tif")
        write_tiff(path, raster, rows_per_strip=61)  # single strip
        info = tiff_info(path)
        with open(path, "rb") as fh:
            fh.seek(info.strip_offsets[0])
            strip = fh.read(info.strip_byte_counts[0])
        expected = raster.astype("<f4").tobytes()
        assert strip == expected
