"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.idx.dataset import IdxDataset
from repro.terrain.dem import composite_terrain

if os.environ.get("REPRO_SANITIZE") == "1":
    # Runtime lock-order sanitizer (see repro.analysis.sanitizer): every
    # threading.Lock/RLock created during the session is instrumented, and
    # the session fails if any lock-order inversion was observed.  Long
    # holds are reported but not fatal (CI boxes stall unpredictably).
    from repro.analysis.invariants import CacheConservationChecker, ScopeSanitizer
    from repro.analysis.sanitizer import LockOrderSanitizer

    _session_sanitizer = LockOrderSanitizer(
        hold_threshold=float(os.environ.get("REPRO_SANITIZE_HOLD_S", "0.5"))
    )

    @pytest.fixture(autouse=True, scope="session")
    def _lock_order_sanitizer():
        _session_sanitizer.install()
        yield
        _session_sanitizer.uninstall()
        report = _session_sanitizer.report()
        for hold in report.long_holds:
            print(f"[repro-sanitize] {hold}")
        assert report.ok, "lock-order inversions detected:\n" + report.summary()

    # Runtime scope sanitizer (repro.analysis.invariants): observes every
    # AccessScope bind/charge across the whole session and fails on
    # cross-thread scope leaks.  Default-scope fallbacks are allowed here
    # (require_scoped=False) — many unit tests legitimately read without a
    # bound scope; strict mode is exercised by targeted tests.
    _session_scope_sanitizer = ScopeSanitizer()

    @pytest.fixture(autouse=True, scope="session")
    def _scope_sanitizer():
        _session_scope_sanitizer.install()
        yield
        _session_scope_sanitizer.uninstall()
        report = _session_scope_sanitizer.report()
        assert report.ok, "scope-discipline violations detected:\n" + report.summary()

    # Cache byte-conservation checker: after every BlockCache/PlanCache
    # mutation, inserted_bytes == used + evicted + dropped must hold.
    _session_conservation = CacheConservationChecker()

    @pytest.fixture(autouse=True, scope="session")
    def _cache_conservation():
        _session_conservation.install()
        yield
        _session_conservation.uninstall()
        assert _session_conservation.ok, _session_conservation.summary()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_dem() -> np.ndarray:
    """A 96x128 deterministic terrain raster in metres."""
    return composite_terrain((96, 128), seed=7)


@pytest.fixture
def random_raster(rng) -> np.ndarray:
    """Incompressible float32 noise, 64x64."""
    return rng.random((64, 64), dtype=np.float64).astype(np.float32)


@pytest.fixture
def idx_factory(tmp_path):
    """Factory building finalized single-field IDX datasets in tmp_path."""

    counter = {"n": 0}

    def build(
        array: np.ndarray,
        *,
        field: str = "value",
        codec: str = "zlib:level=6",
        bits_per_block: int = 8,
        timesteps: int = 1,
        fill_value: float = 0.0,
    ) -> IdxDataset:
        counter["n"] += 1
        path = str(tmp_path / f"ds{counter['n']}.idx")
        ds = IdxDataset.create(
            path,
            dims=array.shape,
            fields={field: str(array.dtype)},
            codec=codec,
            bits_per_block=bits_per_block,
            timesteps=timesteps,
            fill_value=fill_value,
        )
        for t in range(timesteps):
            ds.write(array, field=field, time=t)
        ds.finalize()
        return IdxDataset.open(path)

    return build
