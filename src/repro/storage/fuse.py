"""NSDF-FUSE analogue: file views over S3-compatible object storage.

§III-B: "NSDF-FUSE combines the flexibility of FUSE technology with the
robustness of S3-compatible object storage.  Through customizable
*mapping packages*, users can seamlessly integrate and manage data
across various environments."  The kernel/FUSE plumbing is irrelevant to
what the service studies — the interesting variable is the mapping of
files onto objects — so this module implements the mapping packages as
in-process strategies over :class:`~repro.storage.object_store.ObjectStore`:

- :class:`OneToOneMapping` — one file = one object (simple; whole-object
  rewrites, no ranged writes);
- :class:`ChunkedMapping` — one file = N fixed-size chunk objects plus a
  manifest (cheap ranged reads and partial updates; more objects);
- :class:`ArchiveMapping` — many files packed into segment objects plus
  an index (few objects, great for many small files; write
  amplification on updates).

:class:`FuseMount` is the filesystem facade; per-workload object-store
operation counts (via ``store.stats``) are what benchmark C5 compares.
"""

from __future__ import annotations

import json
from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Tuple

from repro.storage.object_store import ObjectStore, StorageError
from repro.util.arrays import ceil_div
from repro.util.units import parse_bytes

__all__ = ["ArchiveMapping", "ChunkedMapping", "FuseMount", "MappingPackage", "OneToOneMapping"]


class MappingPackage(ABC):
    """Strategy mapping file paths/contents onto store objects."""

    name: str = "abstract"

    @abstractmethod
    def write_file(self, store: ObjectStore, bucket: str, path: str, data: bytes) -> None:
        """Create or replace one file's contents."""

    @abstractmethod
    def read_file(self, store: ObjectStore, bucket: str, path: str) -> bytes:
        """Return one file's full contents."""

    @abstractmethod
    def read_range(
        self, store: ObjectStore, bucket: str, path: str, offset: int, length: int
    ) -> bytes:
        """Return ``length`` bytes of one file starting at ``offset``."""

    @abstractmethod
    def delete_file(self, store: ObjectStore, bucket: str, path: str) -> None:
        """Remove one file."""

    @abstractmethod
    def list_files(self, store: ObjectStore, bucket: str, prefix: str = "") -> List[str]:
        """File paths under ``prefix``."""

    @abstractmethod
    def file_size(self, store: ObjectStore, bucket: str, path: str) -> int:
        """Logical size of one file in bytes."""


def _check_path(path: str) -> str:
    if not path or path.startswith("/") or ".." in path.split("/"):
        raise StorageError(f"invalid file path {path!r}")
    return path


class OneToOneMapping(MappingPackage):
    """file <-> object, the naive (and often fastest-to-implement) mapping."""

    name = "one-to-one"
    _PREFIX = "f/"

    def write_file(self, store: ObjectStore, bucket: str, path: str, data: bytes) -> None:
        store.put(bucket, self._PREFIX + _check_path(path), data)

    def read_file(self, store: ObjectStore, bucket: str, path: str) -> bytes:
        return store.get(bucket, self._PREFIX + _check_path(path))

    def read_range(
        self, store: ObjectStore, bucket: str, path: str, offset: int, length: int
    ) -> bytes:
        return store.get_range(bucket, self._PREFIX + _check_path(path), offset, length)

    def delete_file(self, store: ObjectStore, bucket: str, path: str) -> None:
        store.delete(bucket, self._PREFIX + _check_path(path))

    def list_files(self, store: ObjectStore, bucket: str, prefix: str = "") -> List[str]:
        plen = len(self._PREFIX)
        return [o.key[plen:] for o in store.list(bucket, self._PREFIX + prefix)]

    def file_size(self, store: ObjectStore, bucket: str, path: str) -> int:
        return store.head(bucket, self._PREFIX + _check_path(path)).size


class ChunkedMapping(MappingPackage):
    """file -> manifest + fixed-size chunk objects.

    Ranged reads touch only the covering chunks, so streaming a window of
    a large file moves ~window bytes instead of the whole object.
    """

    name = "chunked"
    _PREFIX = "c/"

    def __init__(self, chunk_size: "int | str" = "4 MiB") -> None:
        self.chunk_size = parse_bytes(chunk_size)
        if self.chunk_size <= 0:
            raise ValueError("chunk_size must be positive")

    def _manifest_key(self, path: str) -> str:
        return f"{self._PREFIX}{path}/.manifest"

    def _chunk_key(self, path: str, index: int) -> str:
        return f"{self._PREFIX}{path}/{index:08d}"

    def _manifest(self, store: ObjectStore, bucket: str, path: str) -> Dict:
        return json.loads(store.get(bucket, self._manifest_key(path)).decode())

    def write_file(self, store: ObjectStore, bucket: str, path: str, data: bytes) -> None:
        path = _check_path(path)
        n_chunks = ceil_div(len(data), self.chunk_size) if data else 0
        # Remove stale chunks from a previous, longer version.
        if store.exists(bucket, self._manifest_key(path)):
            old = self._manifest(store, bucket, path)
            for i in range(n_chunks, old["chunks"]):
                store.delete(bucket, self._chunk_key(path, i))
        for i in range(n_chunks):
            store.put(
                bucket,
                self._chunk_key(path, i),
                data[i * self.chunk_size : (i + 1) * self.chunk_size],
            )
        manifest = {"size": len(data), "chunks": n_chunks, "chunk_size": self.chunk_size}
        store.put(bucket, self._manifest_key(path), json.dumps(manifest).encode())

    def read_file(self, store: ObjectStore, bucket: str, path: str) -> bytes:
        path = _check_path(path)
        manifest = self._manifest(store, bucket, path)
        parts = [
            store.get(bucket, self._chunk_key(path, i)) for i in range(manifest["chunks"])
        ]
        return b"".join(parts)

    def read_range(
        self, store: ObjectStore, bucket: str, path: str, offset: int, length: int
    ) -> bytes:
        path = _check_path(path)
        manifest = self._manifest(store, bucket, path)
        if offset < 0 or length < 0 or offset + length > manifest["size"]:
            raise StorageError(f"range {offset}+{length} out of bounds for {path}")
        if length == 0:
            return b""
        cs = manifest["chunk_size"]
        first = offset // cs
        last = (offset + length - 1) // cs
        parts = [store.get(bucket, self._chunk_key(path, i)) for i in range(first, last + 1)]
        joined = b"".join(parts)
        start = offset - first * cs
        return joined[start : start + length]

    def delete_file(self, store: ObjectStore, bucket: str, path: str) -> None:
        path = _check_path(path)
        manifest = self._manifest(store, bucket, path)
        for i in range(manifest["chunks"]):
            store.delete(bucket, self._chunk_key(path, i))
        store.delete(bucket, self._manifest_key(path))

    def list_files(self, store: ObjectStore, bucket: str, prefix: str = "") -> List[str]:
        suffix = "/.manifest"
        out = []
        for obj in store.list(bucket, self._PREFIX + prefix):
            if obj.key.endswith(suffix):
                out.append(obj.key[len(self._PREFIX) : -len(suffix)])
        return out

    def file_size(self, store: ObjectStore, bucket: str, path: str) -> int:
        return int(self._manifest(store, bucket, _check_path(path))["size"])


class ArchiveMapping(MappingPackage):
    """Many files packed into append-mostly segment objects plus an index.

    Minimises object count (kind to object stores that charge per
    request / per object) at the cost of read-modify-write amplification
    when a segment is updated.
    """

    name = "archive"
    _PREFIX = "a/"
    _INDEX = "a/.index"

    def __init__(self, segment_limit: "int | str" = "32 MiB") -> None:
        self.segment_limit = parse_bytes(segment_limit)
        if self.segment_limit <= 0:
            raise ValueError("segment_limit must be positive")

    def _load_index(self, store: ObjectStore, bucket: str) -> Dict:
        if store.exists(bucket, self._INDEX):
            return json.loads(store.get(bucket, self._INDEX).decode())
        return {"files": {}, "segments": 0}

    def _save_index(self, store: ObjectStore, bucket: str, index: Dict) -> None:
        store.put(bucket, self._INDEX, json.dumps(index).encode())

    def _segment_key(self, seg: int) -> str:
        return f"{self._PREFIX}seg-{seg:06d}"

    def write_file(self, store: ObjectStore, bucket: str, path: str, data: bytes) -> None:
        path = _check_path(path)
        index = self._load_index(store, bucket)
        seg = max(0, index["segments"] - 1)
        key = self._segment_key(seg)
        current = store.get(bucket, key) if index["segments"] and store.exists(bucket, key) else b""
        if index["segments"] == 0 or len(current) + len(data) > self.segment_limit:
            seg = index["segments"]
            index["segments"] = seg + 1
            current = b""
            key = self._segment_key(seg)
        offset = len(current)
        store.put(bucket, key, current + data)  # read-modify-write append
        index["files"][path] = [seg, offset, len(data)]
        self._save_index(store, bucket, index)

    def _entry(self, store: ObjectStore, bucket: str, path: str) -> Tuple[int, int, int]:
        index = self._load_index(store, bucket)
        entry = index["files"].get(path)
        if entry is None:
            raise StorageError(f"no such file {path!r} in archive")
        return int(entry[0]), int(entry[1]), int(entry[2])

    def read_file(self, store: ObjectStore, bucket: str, path: str) -> bytes:
        seg, offset, length = self._entry(store, bucket, _check_path(path))
        return store.get_range(bucket, self._segment_key(seg), offset, length)

    def read_range(
        self, store: ObjectStore, bucket: str, path: str, offset: int, length: int
    ) -> bytes:
        seg, base, size = self._entry(store, bucket, _check_path(path))
        if offset < 0 or length < 0 or offset + length > size:
            raise StorageError(f"range {offset}+{length} out of bounds for {path}")
        return store.get_range(bucket, self._segment_key(seg), base + offset, length)

    def delete_file(self, store: ObjectStore, bucket: str, path: str) -> None:
        path = _check_path(path)
        index = self._load_index(store, bucket)
        if path not in index["files"]:
            raise StorageError(f"no such file {path!r} in archive")
        del index["files"][path]  # space reclaimed only on repack
        self._save_index(store, bucket, index)

    def list_files(self, store: ObjectStore, bucket: str, prefix: str = "") -> List[str]:
        index = self._load_index(store, bucket)
        return sorted(p for p in index["files"] if p.startswith(prefix))

    def file_size(self, store: ObjectStore, bucket: str, path: str) -> int:
        return self._entry(store, bucket, _check_path(path))[2]


class FuseMount:
    """Filesystem facade over one bucket with a chosen mapping package."""

    def __init__(
        self,
        store: ObjectStore,
        bucket: str,
        mapping: Optional[MappingPackage] = None,
    ) -> None:
        self.store = store
        self.bucket = bucket
        store.ensure_bucket(bucket)
        self.mapping = mapping if mapping is not None else OneToOneMapping()

    def write_file(self, path: str, data: bytes) -> None:
        self.mapping.write_file(self.store, self.bucket, path, data)

    def read_file(self, path: str) -> bytes:
        return self.mapping.read_file(self.store, self.bucket, path)

    def read_range(self, path: str, offset: int, length: int) -> bytes:
        return self.mapping.read_range(self.store, self.bucket, path, offset, length)

    def delete(self, path: str) -> None:
        self.mapping.delete_file(self.store, self.bucket, path)

    def listdir(self, prefix: str = "") -> List[str]:
        return self.mapping.list_files(self.store, self.bucket, prefix)

    def stat_size(self, path: str) -> int:
        return self.mapping.file_size(self.store, self.bucket, path)

    def with_op_accounting(self):
        """Snapshot store stats; use ``delta = snap.delta(before)`` after."""
        return self.store.stats.snapshot()
