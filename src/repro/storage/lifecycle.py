"""Hot/cold storage tiering with access-driven migration.

Archival object stores (the role Seal plays for >100 TB scientific
holdings) are cheap but slow; interactive analysis wants data on a fast
tier.  :class:`TieredStore` models the standard lifecycle: objects land
on the tier the writer chooses, every access is counted, and a policy
pass promotes hot objects to the fast tier and demotes idle ones —
the storage-side complement of the block cache (which handles
*intra*-dataset heat; tiering handles *whole-object* heat).

All costs are virtual-clock charges, so tests can assert on exactly how
much time a policy saves a workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.network.clock import SimClock
from repro.network.links import LinkModel
from repro.storage.object_store import ObjectInfo, ObjectStore, StorageError

__all__ = ["TierPolicy", "TieredStore"]


@dataclass(frozen=True)
class TierPolicy:
    """When to move objects between tiers.

    ``promote_after`` accesses since the last policy pass move an object
    to the hot tier; objects with fewer than ``demote_below`` accesses
    fall back to cold.  ``hot_capacity_bytes`` bounds the hot tier; when
    full, the least-accessed hot objects are demoted first.
    """

    promote_after: int = 3
    demote_below: int = 1
    hot_capacity_bytes: int = 64 * 1024 * 1024

    def __post_init__(self) -> None:
        if self.promote_after < 1:
            raise ValueError("promote_after must be >= 1")
        if self.demote_below < 0:
            raise ValueError("demote_below must be non-negative")
        if self.hot_capacity_bytes <= 0:
            raise ValueError("hot_capacity_bytes must be positive")


class TieredStore:
    """Two-tier object storage with access accounting and migration."""

    HOT = "hot"
    COLD = "cold"

    def __init__(
        self,
        *,
        policy: Optional[TierPolicy] = None,
        clock: Optional[SimClock] = None,
        hot_link: Optional[LinkModel] = None,
        cold_link: Optional[LinkModel] = None,
    ) -> None:
        self.policy = policy if policy is not None else TierPolicy()
        self.clock = clock if clock is not None else SimClock()
        # Hot: NVMe-cache-like (sub-ms); cold: archival object store.
        self.hot_link = hot_link if hot_link is not None else LinkModel(
            latency_s=0.0005, bandwidth_bps=2.5e9
        )
        self.cold_link = cold_link if cold_link is not None else LinkModel(
            latency_s=0.050, bandwidth_bps=2.5e7
        )
        self._store = ObjectStore("tiered")
        self._store.create_bucket(self.HOT)
        self._store.create_bucket(self.COLD)
        self._tier: Dict[str, str] = {}
        self._accesses: Dict[str, int] = {}
        self.promotions = 0
        self.demotions = 0

    # -- basics ---------------------------------------------------------------

    def put(self, key: str, data: bytes, *, tier: str = COLD) -> ObjectInfo:
        """Store an object on a tier (new data lands cold by default)."""
        if tier not in (self.HOT, self.COLD):
            raise StorageError(f"unknown tier {tier!r}")
        link = self.hot_link if tier == self.HOT else self.cold_link
        self.clock.advance(link.transfer_seconds(len(data)), label=f"tier:put:{tier}")
        old_tier = self._tier.get(key)
        if old_tier is not None and old_tier != tier:
            self._store.delete(old_tier, key)
        info = self._store.put(tier, key, data)
        self._tier[key] = tier
        self._accesses.setdefault(key, 0)
        return info

    def get(self, key: str) -> bytes:
        """Fetch an object, paying its tier's link cost."""
        tier = self._tier.get(key)
        if tier is None:
            raise StorageError(f"no such object {key!r}")
        data = self._store.get(tier, key)
        link = self.hot_link if tier == self.HOT else self.cold_link
        self.clock.advance(link.transfer_seconds(len(data)), label=f"tier:get:{tier}")
        self._accesses[key] = self._accesses.get(key, 0) + 1
        return data

    def delete(self, key: str) -> None:
        tier = self._tier.pop(key, None)
        if tier is None:
            raise StorageError(f"no such object {key!r}")
        self._store.delete(tier, key)
        self._accesses.pop(key, None)

    def tier_of(self, key: str) -> str:
        tier = self._tier.get(key)
        if tier is None:
            raise StorageError(f"no such object {key!r}")
        return tier

    def access_count(self, key: str) -> int:
        return self._accesses.get(key, 0)

    def tier_bytes(self, tier: str) -> int:
        return sum(
            self._store.head(t, k).size for k, t in self._tier.items() if t == tier
        )

    # -- migration ---------------------------------------------------------------

    def _migrate(self, key: str, target: str) -> None:
        source = self._tier[key]
        if source == target:
            return
        data = self._store.get(source, key)
        # Migration pays the slower tier's transfer once (read+write
        # overlap on the faster side).
        slow = self.cold_link
        self.clock.advance(slow.transfer_seconds(len(data)), label=f"tier:migrate:{target}")
        self._store.put(target, key, data)
        self._store.delete(source, key)
        self._tier[key] = target
        if target == self.HOT:
            self.promotions += 1
        else:
            self.demotions += 1

    def run_policy(self) -> Dict[str, List[str]]:
        """One lifecycle pass; returns {'promoted': [...], 'demoted': [...]}.

        Access counters reset afterwards, so each pass judges the traffic
        of one policy window.
        """
        promoted: List[str] = []
        demoted: List[str] = []

        # Demotions first: free hot capacity before promoting into it.
        for key, tier in list(self._tier.items()):
            if tier == self.HOT and self._accesses.get(key, 0) < self.policy.demote_below:
                self._migrate(key, self.COLD)
                demoted.append(key)

        # Promotion candidates, hottest first.
        candidates = sorted(
            (k for k, t in self._tier.items() if t == self.COLD),
            key=lambda k: -self._accesses.get(k, 0),
        )
        for key in candidates:
            if self._accesses.get(key, 0) < self.policy.promote_after:
                break  # sorted: the rest are colder
            size = self._store.head(self.COLD, key).size
            if self.tier_bytes(self.HOT) + size > self.policy.hot_capacity_bytes:
                # Evict the least-accessed hot objects until it fits.
                hot_keys = sorted(
                    (k for k, t in self._tier.items() if t == self.HOT),
                    key=lambda k: self._accesses.get(k, 0),
                )
                for victim in hot_keys:
                    if self.tier_bytes(self.HOT) + size <= self.policy.hot_capacity_bytes:
                        break
                    if self._accesses.get(victim, 0) >= self._accesses.get(key, 0):
                        break  # nothing colder than the candidate remains
                    self._migrate(victim, self.COLD)
                    demoted.append(victim)
            if self.tier_bytes(self.HOT) + size <= self.policy.hot_capacity_bytes:
                self._migrate(key, self.HOT)
                promoted.append(key)

        self._accesses = {k: 0 for k in self._tier}
        return {"promoted": promoted, "demoted": demoted}
