"""Storage services: object store, Seal (private), Dataverse (public), FUSE.

The tutorial's goal 2 is to "upload, download, and stream data to and
from both public and private storage solutions" (§II): Dataverse is the
public commons used in Step 1, Seal Storage the private cloud used in
Steps 3-4, and NSDF-FUSE the file-system bridge over S3-compatible
object storage (§III-B).  All three are reproduced over one in-memory,
S3-like object store with simulated network costs:

- :mod:`repro.storage.object_store` — buckets, keys, etags, ranged GETs,
  operation counters;
- :mod:`repro.storage.seal` — token-authenticated private storage whose
  reads/writes charge a simulated WAN link (ranged streaming included);
- :mod:`repro.storage.dataverse` — DOI-issuing public repository with
  draft/publish versioning and metadata search;
- :mod:`repro.storage.fuse` — file views over object storage with
  pluggable mapping packages (one-to-one, chunked, archive);
- :mod:`repro.storage.transfer` — upload/download/stream helpers that
  tie storage to the network fabric and IDX remote access.
"""

from repro.storage.object_store import Bucket, ObjectInfo, ObjectStore, StorageError
from repro.storage.seal import SealByteSource, SealStorage
from repro.storage.replication import ReplicatedSeal
from repro.storage.dataverse import Dataverse, DataverseDataset
from repro.storage.fuse import (
    ArchiveMapping,
    ChunkedMapping,
    FuseMount,
    MappingPackage,
    OneToOneMapping,
)
from repro.storage.transfer import (
    download_object,
    open_remote_idx,
    upload_file,
    upload_idx_to_seal,
)

__all__ = [
    "ArchiveMapping",
    "Bucket",
    "ChunkedMapping",
    "Dataverse",
    "DataverseDataset",
    "FuseMount",
    "MappingPackage",
    "ObjectInfo",
    "ObjectStore",
    "OneToOneMapping",
    "ReplicatedSeal",
    "SealByteSource",
    "SealStorage",
    "StorageError",
    "download_object",
    "open_remote_idx",
    "upload_file",
    "upload_idx_to_seal",
]
