"""Upload / download / stream helpers tying storage to the data fabric.

These are the verbs of tutorial goal 2 ("upload, download, and stream
data to and from both public and private storage solutions", §II) plus
the streaming entry point Step 4 uses: open an IDX dataset that physically
lives in Seal Storage and read it block-by-block over the simulated WAN,
optionally through a shared block cache.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.idx.access import CachedAccess, RemoteAccess
from repro.idx.cache import BlockCache
from repro.idx.dataset import IdxDataset
from repro.storage.object_store import ObjectStore
from repro.storage.seal import SealStorage

__all__ = ["download_object", "open_remote_idx", "upload_file", "upload_idx_to_seal"]


def upload_file(
    local_path: str,
    store: ObjectStore,
    bucket: str,
    key: Optional[str] = None,
    *,
    metadata: Optional[dict] = None,
) -> str:
    """Upload a local file to a (public) object store; returns the key."""
    key = key or os.path.basename(local_path)
    with open(local_path, "rb") as fh:
        data = fh.read()
    store.ensure_bucket(bucket)
    store.put(bucket, key, data, metadata={k: str(v) for k, v in (metadata or {}).items()})
    return key


def upload_idx_to_seal(
    idx_path: str,
    seal: SealStorage,
    key: Optional[str] = None,
    *,
    token: str,
    from_site: str = "knox",
) -> str:
    """Upload an IDX file into private Seal Storage (charges the WAN link)."""
    key = key or os.path.basename(idx_path)
    with open(idx_path, "rb") as fh:
        data = fh.read()
    seal.put(key, data, token=token, from_site=from_site)
    return key


def download_object(store: ObjectStore, bucket: str, key: str, dest_path: str) -> int:
    """Download an object to a local file; returns bytes written."""
    data = store.get(bucket, key)
    with open(dest_path, "wb") as fh:
        fh.write(data)
    return len(data)


def open_remote_idx(
    seal: SealStorage,
    key: str,
    *,
    token: str,
    from_site: str = "knox",
    cache: Optional[BlockCache] = None,
    workers: int = 0,
    retry=None,
    breaker=None,
) -> IdxDataset:
    """Open an IDX dataset streamed from Seal Storage (Step 4, Option B).

    Every block read pays the simulated ranged-GET cost; pass a
    :class:`BlockCache` to amortise repeated interaction (the dashboard's
    normal operating mode).  ``workers >= 1`` services prefetch through
    the concurrent block pipeline: per-block ranged GETs and decodes
    overlap across a bounded thread pool, and their simulated latencies
    are charged as the slowest worker's total rather than summed
    (``workers=1`` is the serial baseline of the same path).

    ``retry`` (a :class:`~repro.faults.retry.RetryPolicy`) makes every
    block fetch integrity-checked and retried with backoff on transient
    failures; ``breaker`` (a :class:`~repro.faults.breaker.CircuitBreaker`)
    fast-fails keys that keep dying.  Both are the fault-tolerance layer
    of DESIGN.md §11 — production streaming over real WANs wants them on.
    """
    source = seal.byte_source(key, token=token, from_site=from_site)
    access = RemoteAccess(
        source,
        uri=f"seal://{seal.site}/{seal.bucket}/{key}",
        workers=workers,
        clock=seal.clock,
        retry=retry,
        breaker=breaker,
    )
    if cache is not None:
        access = CachedAccess(access, cache)
    return IdxDataset.from_access(access)
