"""In-memory S3-like object store.

The common substrate under Seal, Dataverse, and NSDF-FUSE: named buckets
of immutable byte objects with etags, user metadata, ranged GETs, and
prefix listing.  Operation counters expose the access patterns the FUSE
mapping benchmark (C5) compares.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.util.hashing import etag_for

__all__ = ["Bucket", "ObjectInfo", "ObjectStore", "StorageError", "StoreStats"]


class StorageError(KeyError):
    """Missing bucket/object, or an invalid operation."""


@dataclass(frozen=True)
class ObjectInfo:
    """Metadata of one stored object."""

    bucket: str
    key: str
    size: int
    etag: str
    content_type: str = "application/octet-stream"
    metadata: Tuple[Tuple[str, str], ...] = ()
    sequence: int = 0

    def meta_dict(self) -> Dict[str, str]:
        return dict(self.metadata)


@dataclass
class StoreStats:
    """Cumulative operation counters."""

    puts: int = 0
    gets: int = 0
    deletes: int = 0
    lists: int = 0
    heads: int = 0
    bytes_in: int = 0
    bytes_out: int = 0

    def snapshot(self) -> "StoreStats":
        return StoreStats(**vars(self))

    def delta(self, earlier: "StoreStats") -> "StoreStats":
        return StoreStats(**{k: getattr(self, k) - getattr(earlier, k) for k in vars(self)})


class Bucket:
    """One namespace of objects."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._blobs: Dict[str, bytes] = {}
        self._infos: Dict[str, ObjectInfo] = {}

    def __len__(self) -> int:
        return len(self._blobs)

    def keys(self) -> List[str]:
        return sorted(self._blobs)

    def total_bytes(self) -> int:
        return sum(len(b) for b in self._blobs.values())


class ObjectStore:
    """Multi-bucket object store with S3-flavoured semantics."""

    def __init__(self, name: str = "object-store") -> None:
        self.name = name
        self._buckets: Dict[str, Bucket] = {}
        self._sequence = 0
        # Ranged GETs arrive concurrently from the parallel block
        # fetcher; counter read-modify-writes need the lock.
        self._stats_lock = threading.Lock()
        self.stats = StoreStats()

    # -- buckets ---------------------------------------------------------------

    def create_bucket(self, name: str) -> Bucket:
        if not name or "/" in name:
            raise StorageError(f"invalid bucket name {name!r}")
        if name in self._buckets:
            raise StorageError(f"bucket {name!r} already exists")
        bucket = Bucket(name)
        self._buckets[name] = bucket
        return bucket

    def ensure_bucket(self, name: str) -> Bucket:
        if name not in self._buckets:
            return self.create_bucket(name)
        return self._buckets[name]

    def delete_bucket(self, name: str) -> None:
        bucket = self._bucket(name)
        if len(bucket):
            raise StorageError(f"bucket {name!r} is not empty")
        del self._buckets[name]

    def buckets(self) -> List[str]:
        return sorted(self._buckets)

    def _bucket(self, name: str) -> Bucket:
        bucket = self._buckets.get(name)
        if bucket is None:
            raise StorageError(f"no such bucket {name!r}")
        return bucket

    # -- objects ------------------------------------------------------------------

    def put(
        self,
        bucket: str,
        key: str,
        data: bytes,
        *,
        content_type: str = "application/octet-stream",
        metadata: Optional[Dict[str, str]] = None,
    ) -> ObjectInfo:
        if not key:
            raise StorageError("object key must be non-empty")
        b = self._bucket(bucket)
        blob = bytes(data)
        with self._stats_lock:
            self._sequence += 1
            sequence = self._sequence
        info = ObjectInfo(
            bucket=bucket,
            key=key,
            size=len(blob),
            etag=etag_for(blob),
            content_type=content_type,
            metadata=tuple(sorted((metadata or {}).items())),
            sequence=sequence,
        )
        b._blobs[key] = blob
        b._infos[key] = info
        with self._stats_lock:
            self.stats.puts += 1
            self.stats.bytes_in += len(blob)
        return info

    def get(self, bucket: str, key: str) -> bytes:
        blob = self._blob(bucket, key)
        with self._stats_lock:
            self.stats.gets += 1
            self.stats.bytes_out += len(blob)
        return blob

    def get_range(self, bucket: str, key: str, offset: int, length: int) -> bytes:
        """Ranged GET; out-of-bounds ranges raise (matching S3 416).

        Bounds are validated explicitly — a negative ``offset`` would
        otherwise silently slice from the blob's tail and a past-EOF
        range would silently return short data, both of which corrupt
        block reads downstream instead of failing loudly here.
        """
        blob = self._blob(bucket, key)
        if offset < 0 or length < 0:
            raise StorageError(
                f"negative range {offset}+{length} for {bucket}/{key}; "
                "offset and length must be >= 0"
            )
        if offset + length > len(blob):
            raise StorageError(
                f"range {offset}+{length} past EOF of {bucket}/{key} ({len(blob)} B)"
            )
        with self._stats_lock:
            self.stats.gets += 1
            self.stats.bytes_out += length
        return blob[offset : offset + length]

    def head(self, bucket: str, key: str) -> ObjectInfo:
        b = self._bucket(bucket)
        info = b._infos.get(key)
        if info is None:
            raise StorageError(f"no such object {bucket}/{key}")
        with self._stats_lock:
            self.stats.heads += 1
        return info

    def exists(self, bucket: str, key: str) -> bool:
        return key in self._bucket(bucket)._blobs

    def delete(self, bucket: str, key: str) -> None:
        b = self._bucket(bucket)
        if key not in b._blobs:
            raise StorageError(f"no such object {bucket}/{key}")
        del b._blobs[key]
        del b._infos[key]
        with self._stats_lock:
            self.stats.deletes += 1

    def list(self, bucket: str, prefix: str = "") -> List[ObjectInfo]:
        b = self._bucket(bucket)
        with self._stats_lock:
            self.stats.lists += 1
        return [b._infos[k] for k in sorted(b._blobs) if k.startswith(prefix)]

    def _blob(self, bucket: str, key: str) -> bytes:
        b = self._bucket(bucket)
        blob = b._blobs.get(key)
        if blob is None:
            raise StorageError(f"no such object {bucket}/{key}")
        return blob

    # -- introspection ----------------------------------------------------------------

    def total_bytes(self) -> int:
        return sum(b.total_bytes() for b in self._buckets.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ObjectStore({self.name!r}, {len(self._buckets)} buckets, {self.total_bytes()} B)"
