"""Geo-replication across Seal regions with nearest-replica reads.

NSDF's mission is "democratizing data delivery" (§III): the same data
should be fast from every entry point.  With a single Seal region,
cross-country clients eat the full WAN; replicating hot datasets to a
few regions and routing each read to the lowest-latency replica flattens
the access-time map.  :class:`ReplicatedSeal` implements exactly that
over per-site :class:`~repro.storage.seal.SealStorage` regions sharing
one token registry and one virtual clock; the replication ablation
benchmark sweeps replica count and measures worst-site access latency.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.network.clock import SimClock
from repro.network.topology import Testbed, default_testbed
from repro.storage.object_store import ObjectInfo, StorageError
from repro.storage.seal import SealByteSource, SealStorage

__all__ = ["ReplicatedSeal"]


class ReplicatedSeal:
    """A set of Seal regions with replicated writes and nearest reads."""

    def __init__(
        self,
        *,
        sites: Sequence[str] = ("slc", "chi", "mghpcc"),
        testbed: Optional[Testbed] = None,
        clock: Optional[SimClock] = None,
    ) -> None:
        if not sites:
            raise ValueError("at least one replica site is required")
        self.testbed = testbed if testbed is not None else default_testbed()
        self.clock = clock if clock is not None else SimClock()
        self._tokens: Dict = {}
        self.regions: Dict[str, SealStorage] = {}
        for site in sites:
            self.regions[site] = SealStorage(
                site=site,
                testbed=self.testbed,
                clock=self.clock,
                token_registry=self._tokens,
            )
        #: key -> sites currently holding a replica
        self._placement: Dict[str, List[str]] = {}

    # -- auth (umbrella credentials valid at every region) -----------------

    def issue_token(self, principal: str, scopes: Tuple[str, ...] = ("read",)) -> str:
        return next(iter(self.regions.values())).issue_token(principal, scopes)

    def revoke_token(self, token: str) -> bool:
        return next(iter(self.regions.values())).revoke_token(token)

    # -- placement ------------------------------------------------------------

    @property
    def sites(self) -> List[str]:
        return sorted(self.regions)

    def replica_sites(self, key: str) -> List[str]:
        sites = self._placement.get(key)
        if not sites:
            raise StorageError(f"no replicas of {key!r}")
        return list(sites)

    def nearest_replica(self, key: str, from_site: str) -> str:
        """The replica site with the lowest routed latency from the client."""
        candidates = self.replica_sites(key)
        return min(
            candidates,
            key=lambda s: self.testbed.path_link(from_site, s).latency_s,
        )

    # -- data operations ----------------------------------------------------------

    def put(
        self,
        key: str,
        data: bytes,
        *,
        token: str,
        from_site: str = "knox",
        replicas: Optional[int] = None,
        metadata: Optional[Dict[str, str]] = None,
    ) -> List[str]:
        """Write to the ``replicas`` nearest regions; returns the sites.

        Each replica upload pays its own WAN cost (writes fan out from
        the client, the simple NSDF push model).  ``replicas`` defaults
        to all regions.
        """
        count = len(self.regions) if replicas is None else int(replicas)
        if not 1 <= count <= len(self.regions):
            raise ValueError(f"replicas must be in [1, {len(self.regions)}]")
        targets = sorted(
            self.regions,
            key=lambda s: self.testbed.path_link(from_site, s).latency_s,
        )[:count]
        for site in targets:
            self.regions[site].put(
                key, data, token=token, from_site=from_site, metadata=metadata
            )
        self._placement[key] = targets
        return list(targets)

    def get(self, key: str, *, token: str, from_site: str = "knox") -> bytes:
        site = self.nearest_replica(key, from_site)
        return self.regions[site].get(key, token=token, from_site=from_site)

    def head(self, key: str, *, token: str) -> ObjectInfo:
        site = self.replica_sites(key)[0]
        return self.regions[site].head(key, token=token)

    def delete(self, key: str, *, token: str) -> None:
        for site in self.replica_sites(key):
            self.regions[site].delete(key, token=token)
        del self._placement[key]

    def byte_source(self, key: str, *, token: str, from_site: str = "knox") -> SealByteSource:
        """Ranged-read source against the nearest replica (for IDX streaming)."""
        site = self.nearest_replica(key, from_site)
        return self.regions[site].byte_source(key, token=token, from_site=from_site)

    def access_latency_map(self, key: str) -> Dict[str, float]:
        """Per-client-site one-way latency to the nearest replica of ``key``.

        The "tide that lifts all boats" picture: more replicas flatten
        this map.
        """
        out = {}
        for client in self.testbed.sites:
            site = self.nearest_replica(key, client)
            out[client] = self.testbed.path_link(client, site).latency_s
        return out
