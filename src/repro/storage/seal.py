"""Seal Storage analogue: private, token-authenticated cloud object storage.

In the tutorial, Seal Storage is the *private* option for Steps 3-4:
validated IDX data lives in the cloud and the dashboard streams
subregions from it without local copies (§IV-C/D).  The analogue wraps
an :class:`~repro.storage.object_store.ObjectStore` with

- bearer-token authentication (read/write scopes, revocation),
- a home *site* on the simulated testbed, so every operation from a
  client site charges the routed link's latency + serialisation time to
  a shared :class:`~repro.network.clock.SimClock`, and
- :meth:`SealStorage.byte_source` — a ranged-read view over one object
  that plugs directly into :class:`repro.idx.access.RemoteAccess` for
  block-granular IDX streaming (each block fetch pays one simulated
  round trip, which is what makes the cache benchmark meaningful).
"""

from __future__ import annotations

import secrets
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.network.clock import SimClock
from repro.network.links import LinkModel
from repro.network.topology import Testbed, default_testbed
from repro.storage.object_store import ObjectInfo, ObjectStore, StorageError

__all__ = ["AuthError", "SealByteSource", "SealStorage"]


class AuthError(PermissionError):
    """Missing, revoked, or under-scoped token."""


@dataclass(frozen=True)
class _TokenRecord:
    principal: str
    scopes: Tuple[str, ...]


class SealStorage:
    """Private object storage with auth and simulated WAN access costs."""

    VALID_SCOPES = ("read", "write", "admin")

    def __init__(
        self,
        *,
        store: Optional[ObjectStore] = None,
        site: str = "slc",
        testbed: Optional[Testbed] = None,
        clock: Optional[SimClock] = None,
        bucket: str = "sealed",
        token_registry: Optional[Dict[str, "_TokenRecord"]] = None,
    ) -> None:
        self.store = store if store is not None else ObjectStore("seal")
        self.testbed = testbed if testbed is not None else default_testbed()
        if site not in self.testbed.sites:
            raise KeyError(f"unknown site {site!r}")
        self.site = site
        self.clock = clock if clock is not None else SimClock()
        self.bucket = bucket
        self.store.ensure_bucket(bucket)
        # A shared registry lets a replication layer span regions with one
        # credential set; by default each region stands alone.
        self._tokens: Dict[str, _TokenRecord] = (
            token_registry if token_registry is not None else {}
        )

    # -- auth ---------------------------------------------------------------

    def issue_token(self, principal: str, scopes: Tuple[str, ...] = ("read",)) -> str:
        """Mint a bearer token for ``principal`` with the given scopes."""
        bad = set(scopes) - set(self.VALID_SCOPES)
        if bad:
            raise ValueError(f"unknown scopes {sorted(bad)}")
        token = secrets.token_hex(16)
        self._tokens[token] = _TokenRecord(principal, tuple(scopes))
        return token

    def revoke_token(self, token: str) -> bool:
        return self._tokens.pop(token, None) is not None

    def _auth(self, token: Optional[str], scope: str) -> _TokenRecord:
        if token is None:
            raise AuthError("Seal Storage requires a token")
        record = self._tokens.get(token)
        if record is None:
            raise AuthError("invalid or revoked token")
        if scope not in record.scopes and "admin" not in record.scopes:
            raise AuthError(f"token lacks {scope!r} scope")
        return record

    # -- link accounting -------------------------------------------------------

    def _link(self, from_site: str) -> LinkModel:
        return self.testbed.path_link(from_site, self.site)

    def _charge(self, from_site: str, nbytes: int, op: str) -> None:
        seconds = self._link(from_site).transfer_seconds(nbytes)
        self.clock.advance(seconds, label=f"seal:{op}:{from_site}->{self.site}")

    # -- object operations ---------------------------------------------------------

    def put(
        self,
        key: str,
        data: bytes,
        *,
        token: str,
        from_site: str = "knox",
        metadata: Optional[Dict[str, str]] = None,
    ) -> ObjectInfo:
        self._auth(token, "write")
        self._charge(from_site, len(data), "put")
        return self.store.put(self.bucket, key, data, metadata=metadata)

    def get(self, key: str, *, token: str, from_site: str = "knox") -> bytes:
        self._auth(token, "read")
        blob = self.store.get(self.bucket, key)
        self._charge(from_site, len(blob), "get")
        return blob

    def get_range(
        self, key: str, offset: int, length: int, *, token: str, from_site: str = "knox"
    ) -> bytes:
        self._auth(token, "read")
        chunk = self.store.get_range(self.bucket, key, offset, length)
        self._charge(from_site, len(chunk), "get_range")
        return chunk

    def get_ranges(
        self,
        key: str,
        ranges: List[Tuple[int, int]],
        *,
        token: str,
        from_site: str = "knox",
    ) -> List[bytes]:
        """Pipelined multi-range GET: one round-trip latency for the batch.

        Models an HTTP multi-range request (or HTTP/2 pipelining): the
        link latency is paid once and the payloads share the
        serialisation time — what makes batched block prefetch fast.
        """
        self._auth(token, "read")
        chunks = [self.store.get_range(self.bucket, key, off, ln) for off, ln in ranges]
        total = sum(len(c) for c in chunks)
        self._charge(from_site, total, "get_ranges")
        return chunks

    def head(self, key: str, *, token: str) -> ObjectInfo:
        self._auth(token, "read")
        return self.store.head(self.bucket, key)

    def delete(self, key: str, *, token: str) -> None:
        self._auth(token, "write")
        self.store.delete(self.bucket, key)

    def list(self, prefix: str = "", *, token: str) -> List[ObjectInfo]:
        self._auth(token, "read")
        return self.store.list(self.bucket, prefix)

    # -- streaming ---------------------------------------------------------------------

    def byte_source(self, key: str, *, token: str, from_site: str = "knox") -> "SealByteSource":
        """Ranged-read view over one object for IDX remote streaming."""
        self._auth(token, "read")
        size = self.store.head(self.bucket, key).size
        return SealByteSource(self, key, token, from_site, size)


class SealByteSource:
    """:class:`repro.idx.idxfile.ByteSource` over one sealed object.

    Every ``read_at`` is a ranged GET with full simulated network cost —
    the access pattern a :class:`~repro.idx.access.CachedAccess` is meant
    to amortise.  The source may be shared by the parallel block
    fetcher's worker threads, so transfer counters are updated under a
    lock (``+=`` on an attribute is not atomic in CPython).
    """

    def __init__(
        self, seal: SealStorage, key: str, token: str, from_site: str, size: int
    ) -> None:
        self._seal = seal
        self._key = key
        self._token = token
        self._from_site = from_site
        self._size = size
        self._counter_lock = threading.Lock()
        self.requests = 0
        self.bytes_transferred = 0

    @property
    def clock(self) -> SimClock:
        """The storage's clock (lets access layers charge overlapped time)."""
        return self._seal.clock

    def read_at(self, offset: int, length: int) -> bytes:
        chunk = self._seal.get_range(
            self._key, offset, length, token=self._token, from_site=self._from_site
        )
        with self._counter_lock:
            self.requests += 1
            self.bytes_transferred += len(chunk)
        return chunk

    def read_many(self, ranges: List[Tuple[int, int]]) -> List[bytes]:
        """Batched ranged reads: one round trip for the whole list."""
        chunks = self._seal.get_ranges(
            self._key, ranges, token=self._token, from_site=self._from_site
        )
        with self._counter_lock:
            self.requests += 1
            self.bytes_transferred += sum(len(c) for c in chunks)
        return chunks

    def size(self) -> int:
        return self._size
