"""Dataverse analogue: public research data repository with DOIs.

Step 1 Option B of the tutorial accesses data "from Dataverse public
commons, which provides a secure and accessible environment for sharing
scientific information publicly" (§IV-A).  The analogue implements the
Dataverse workflow shape: datasets are *drafts* until published, every
publish mints a new version, files are immutable per version, DOIs look
like real Dataverse handles (``doi:10.70122/FK2/XXXXXX``), and metadata
is searchable.
"""

from __future__ import annotations

import string
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.formats.metadata import DatasetMetadata
from repro.storage.object_store import ObjectStore

__all__ = ["Dataverse", "DataverseDataset", "DataverseError"]


class DataverseError(ValueError):
    """Workflow violations: publishing empty drafts, editing published files, ..."""


@dataclass
class DataverseDataset:
    """One dataset: metadata plus per-version file manifests."""

    doi: str
    metadata: DatasetMetadata
    owner: str
    state: str = "draft"  # draft | published
    version: int = 0  # last published version; 0 = never published
    #: version -> sorted file names (version 0 is the working draft)
    manifests: Dict[int, List[str]] = field(default_factory=lambda: {0: []})
    downloads: int = 0

    @property
    def is_published(self) -> bool:
        return self.version > 0

    def files(self, version: Optional[int] = None) -> List[str]:
        v = self.version if version is None else int(version)
        if v not in self.manifests:
            raise DataverseError(f"{self.doi} has no version {v}")
        return list(self.manifests[v])


class Dataverse:
    """Public repository: draft/publish lifecycle, DOIs, search, downloads."""

    def __init__(
        self,
        name: str = "nsdf-demo-dataverse",
        *,
        store: Optional[ObjectStore] = None,
        authority: str = "10.70122",
        seed: int = 0,
    ) -> None:
        self.name = name
        self.store = store if store is not None else ObjectStore(f"dataverse:{name}")
        self.bucket = "dataverse"
        self.store.ensure_bucket(self.bucket)
        self.authority = authority
        self._rng = np.random.default_rng(seed)
        self._datasets: Dict[str, DataverseDataset] = {}

    # -- dataset lifecycle --------------------------------------------------

    def _mint_doi(self) -> str:
        alphabet = string.ascii_uppercase + string.digits
        while True:
            tag = "".join(alphabet[int(i)] for i in self._rng.integers(0, len(alphabet), 6))
            doi = f"doi:{self.authority}/FK2/{tag}"
            if doi not in self._datasets:
                return doi

    def create_dataset(self, metadata: DatasetMetadata, *, owner: str) -> str:
        """Register a new draft dataset; returns its DOI."""
        doi = self._mint_doi()
        self._datasets[doi] = DataverseDataset(doi=doi, metadata=metadata, owner=owner)
        return doi

    def _dataset(self, doi: str) -> DataverseDataset:
        ds = self._datasets.get(doi)
        if ds is None:
            raise DataverseError(f"unknown DOI {doi}")
        return ds

    def upload_file(self, doi: str, name: str, data: bytes, *, owner: str) -> None:
        """Add/replace a file in the working draft (owner only)."""
        ds = self._dataset(doi)
        if owner != ds.owner:
            raise DataverseError(f"{owner!r} does not own {doi}")
        if not name:
            raise DataverseError("file name must be non-empty")
        self.store.put(self.bucket, self._key(doi, 0, name), data)
        draft = ds.manifests[0]
        if name not in draft:
            draft.append(name)
            draft.sort()

    def publish(self, doi: str, *, owner: str) -> int:
        """Freeze the draft as the next version; returns the version number."""
        ds = self._dataset(doi)
        if owner != ds.owner:
            raise DataverseError(f"{owner!r} does not own {doi}")
        draft = ds.manifests[0]
        if not draft:
            raise DataverseError(f"cannot publish {doi}: draft has no files")
        version = ds.version + 1
        for name in draft:
            blob = self.store.get(self.bucket, self._key(doi, 0, name))
            self.store.put(self.bucket, self._key(doi, version, name), blob)
        ds.manifests[version] = list(draft)
        ds.version = version
        ds.state = "published"
        return version

    # -- public access -----------------------------------------------------------

    def get_file(
        self, doi: str, name: str, *, version: Optional[int] = None, requester: str = "public"
    ) -> bytes:
        """Download a file; drafts are visible to their owner only."""
        ds = self._dataset(doi)
        v = ds.version if version is None else int(version)
        if v == 0 and requester != ds.owner:
            raise DataverseError(f"{doi} draft is not public")
        if v == 0 and not ds.manifests[0]:
            raise DataverseError(f"{doi} draft is empty")
        if v > 0 and v not in ds.manifests:
            raise DataverseError(f"{doi} has no version {v}")
        if name not in ds.manifests[v]:
            raise DataverseError(f"{doi} v{v} has no file {name!r}")
        ds.downloads += 1
        return self.store.get(self.bucket, self._key(doi, v, name))

    def dataset_info(self, doi: str) -> DataverseDataset:
        return self._dataset(doi)

    def list_datasets(self, *, published_only: bool = True) -> List[str]:
        return sorted(
            doi
            for doi, ds in self._datasets.items()
            if ds.is_published or not published_only
        )

    def search(self, query: str, *, published_only: bool = True) -> List[str]:
        """Token-AND search over dataset metadata text; returns DOIs."""
        terms = [t for t in query.lower().split() if t]
        if not terms:
            return []
        hits: List[Tuple[int, str]] = []
        for doi, ds in self._datasets.items():
            if published_only and not ds.is_published:
                continue
            text = ds.metadata.search_text().lower()
            if all(t in text for t in terms):
                hits.append((ds.downloads, doi))
        # Most-downloaded first, then DOI for stability.
        return [doi for _, doi in sorted(hits, key=lambda p: (-p[0], p[1]))]

    def _key(self, doi: str, version: int, name: str) -> str:
        return f"{doi.replace(':', '_')}/v{version}/{name}"
