"""User-facing IDX dataset facade: create, write, read, progressive.

Typical round trip (the tutorial's Step 2 in miniature)::

    ds = IdxDataset.create("terrain.idx", dims=elev.shape,
                           fields={"elevation": "float32"})
    ds.write(elev, field="elevation")
    ds.finalize()

    ds = IdxDataset.open("terrain.idx")
    coarse = ds.read(resolution=ds.maxh - 4)          # fast overview
    window = ds.read(box=((512, 512), (1024, 1024)))  # full-res crop

Writing scatters the array into HZ order level by level (vectorized),
splits the HZ buffer into blocks, skips all-fill blocks, and encodes the
rest with the dataset codec.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.idx.access import Access, LocalAccess
from repro.idx.bitmask import Bitmask
from repro.idx.hzorder import HzOrder
from repro.idx.idxfile import IdxError, IdxHeader, write_idx_file
from repro.idx.query import BoxQuery, QueryResult
from repro.util.arrays import Box

__all__ = ["IdxDataset"]

FieldSpec = Union[str, Sequence[str], Dict[str, str], Sequence[Dict[str, str]]]


def _normalize_fields(fields: FieldSpec) -> List[Dict[str, str]]:
    if isinstance(fields, str):
        return [{"name": fields, "dtype": "float32"}]
    if isinstance(fields, dict):
        return [{"name": n, "dtype": str(np.dtype(d))} for n, d in fields.items()]
    out: List[Dict[str, str]] = []
    for f in fields:
        if isinstance(f, str):
            out.append({"name": f, "dtype": "float32"})
        else:
            out.append({"name": f["name"], "dtype": str(np.dtype(f.get("dtype", "float32")))})
    return out


class IdxDataset:
    """One IDX dataset, in either *write* or *read* mode."""

    def __init__(
        self,
        header: IdxHeader,
        *,
        path: Optional[str] = None,
        access: Optional[Access] = None,
        writable: bool = False,
    ) -> None:
        self.header = header
        self.path = path
        self.bitmask = header.bitmask_obj()
        self.hzorder = HzOrder(self.bitmask)
        self.layout = header.layout()
        self._access = access
        self._writable = writable
        self._buffers: Dict[Tuple[int, int], np.ndarray] = {}
        self._finalized = not writable

    # -- construction --------------------------------------------------------

    @classmethod
    def create(
        cls,
        path: str,
        dims: Sequence[int],
        *,
        fields: FieldSpec = "value",
        timesteps: "int | Iterable[int]" = 1,
        bits_per_block: int = 14,
        codec: str = "zlib:level=6",
        fill_value: float = 0.0,
        bitmask: Optional[str] = None,
        metadata: Optional[dict] = None,
    ) -> "IdxDataset":
        """Start a new dataset in write mode (call :meth:`finalize` to persist)."""
        if isinstance(timesteps, int):
            times = list(range(timesteps))
        else:
            times = [int(t) for t in timesteps]
        bm = Bitmask(bitmask) if bitmask else Bitmask.from_dims(dims)
        header = IdxHeader(
            dims=tuple(int(d) for d in dims),
            bitmask=bm.pattern,
            bits_per_block=bits_per_block,
            fields=_normalize_fields(fields),
            timesteps=times,
            codec=codec,
            fill_value=fill_value,
            metadata=metadata or {},
        )
        return cls(header, path=path, writable=True)

    @classmethod
    def open(cls, path: str) -> "IdxDataset":
        """Open an existing IDX file for reading via local access."""
        access = LocalAccess(path)
        return cls(access.header, path=path, access=access)

    @classmethod
    def from_access(cls, access: Access) -> "IdxDataset":
        """Wrap an arbitrary access layer (remote, cached, ...)."""
        return cls(access.header, access=access)

    # -- properties -----------------------------------------------------------

    @property
    def dims(self) -> Tuple[int, ...]:
        return self.header.dims

    @property
    def maxh(self) -> int:
        return self.bitmask.maxh

    @property
    def fields(self) -> Tuple[str, ...]:
        return tuple(f["name"] for f in self.header.fields)

    @property
    def timesteps(self) -> Tuple[int, ...]:
        return tuple(self.header.timesteps)

    @property
    def access(self) -> Access:
        if self._access is None:
            raise IdxError("dataset has no access layer (write mode? call finalize+open)")
        return self._access

    # -- writing ---------------------------------------------------------------

    def write(
        self,
        array: np.ndarray,
        *,
        field: Optional[str] = None,
        time: Optional[int] = None,
    ) -> None:
        """Scatter a full-domain array into the HZ buffer of (time, field)."""
        if not self._writable or self._finalized:
            raise IdxError("dataset is not writable")
        arr = np.ascontiguousarray(array)
        if tuple(arr.shape) != self.dims:
            raise IdxError(f"array shape {arr.shape} != dataset dims {self.dims}")
        f_idx = self.header.field_index(field)
        t_idx = self.header.time_index(time)
        dtype = self.header.field_dtype(f_idx)
        arr = arr.astype(dtype, copy=False)

        buf = self._buffers.get((t_idx, f_idx))
        if buf is None:
            buf = np.full(self.hzorder.total_samples, self.header.fill_value, dtype=dtype)
            self._buffers[(t_idx, f_idx)] = buf

        for h in range(self.maxh + 1):
            phase, step = self.bitmask.delta_lattice(h)
            coords = [
                np.arange(phase[a], self.dims[a], step[a], dtype=np.int64)
                for a in range(self.bitmask.ndim)
            ]
            if any(c.size == 0 for c in coords):
                continue
            z = self.hzorder.axis_z_component(0, coords[0])
            z = z.reshape(z.shape + (1,) * (self.bitmask.ndim - 1))
            for a in range(1, self.bitmask.ndim):
                comp = self.hzorder.axis_z_component(a, coords[a])
                comp = comp.reshape((1,) * a + comp.shape + (1,) * (self.bitmask.ndim - 1 - a))
                z = z | comp
            hz_addr = self.hzorder.hz_for_level(h, z.ravel())
            buf[hz_addr] = arr[np.ix_(*coords)].ravel()

        self._update_stats(f_idx, arr)

    def write_region(
        self,
        array: np.ndarray,
        offset: Sequence[int],
        *,
        field: Optional[str] = None,
        time: Optional[int] = None,
    ) -> None:
        """Scatter a sub-array at ``offset`` into the HZ buffer.

        This is how tile-at-a-time producers (GEOtiled writing one tile
        per worker) populate a dataset without assembling the full mosaic
        in memory first.  Regions may be written in any order; later
        writes overwrite overlapping samples.
        """
        if not self._writable or self._finalized:
            raise IdxError("dataset is not writable")
        arr = np.ascontiguousarray(array)
        if arr.ndim != len(self.dims):
            raise IdxError(f"region rank {arr.ndim} != dataset rank {len(self.dims)}")
        offset = tuple(int(o) for o in offset)
        region = Box(offset, tuple(o + s for o, s in zip(offset, arr.shape)))
        if not Box.from_shape(self.dims).contains_box(region):
            raise IdxError(f"region {region} exceeds dataset dims {self.dims}")
        if region.is_empty:
            return
        f_idx = self.header.field_index(field)
        t_idx = self.header.time_index(time)
        dtype = self.header.field_dtype(f_idx)
        arr = arr.astype(dtype, copy=False)

        buf = self._buffers.get((t_idx, f_idx))
        if buf is None:
            buf = np.full(self.hzorder.total_samples, self.header.fill_value, dtype=dtype)
            self._buffers[(t_idx, f_idx)] = buf

        for h in range(self.maxh + 1):
            phase, step = self.bitmask.delta_lattice(h)
            coords = []
            for a in range(self.bitmask.ndim):
                lo, hi = region.lo[a], region.hi[a]
                first = phase[a] if lo <= phase[a] else phase[a] + (
                    -(-(lo - phase[a]) // step[a]) * step[a]
                )
                coords.append(np.arange(first, hi, step[a], dtype=np.int64))
            if any(c.size == 0 for c in coords):
                continue
            z = self.hzorder.axis_z_component(0, coords[0])
            z = z.reshape(z.shape + (1,) * (self.bitmask.ndim - 1))
            for a in range(1, self.bitmask.ndim):
                comp = self.hzorder.axis_z_component(a, coords[a])
                comp = comp.reshape((1,) * a + comp.shape + (1,) * (self.bitmask.ndim - 1 - a))
                z = z | comp
            hz_addr = self.hzorder.hz_for_level(h, z.ravel())
            local = tuple(c - region.lo[a] for a, c in enumerate(coords))
            buf[hz_addr] = arr[np.ix_(*local)].ravel()

        self._update_stats(f_idx, arr)

    def _update_stats(self, f_idx: int, arr: np.ndarray) -> None:
        stats = self.header.stats.setdefault(self.fields[f_idx], {})
        finite = arr[np.isfinite(arr)] if arr.dtype.kind == "f" else arr
        if finite.size:
            lo, hi = float(finite.min()), float(finite.max())
            stats["min"] = min(stats.get("min", lo), lo)
            stats["max"] = max(stats.get("max", hi), hi)
            stats["mean"] = float(finite.mean())

    def finalize(self) -> str:
        """Encode blocks and write the IDX file; returns the path."""
        if not self._writable:
            raise IdxError("dataset is read-only")
        if self._finalized:
            raise IdxError("dataset already finalized")
        if self.path is None:
            raise IdxError("no output path")
        codec = self.header.codec_obj()
        fill = self.header.fill_value
        blocks: Dict[Tuple[int, int, int], bytes] = {}
        bsize = self.layout.block_size
        for (t_idx, f_idx), buf in self._buffers.items():
            for bid in range(self.layout.num_blocks):
                chunk = buf[bid * bsize : (bid + 1) * bsize]
                if _all_fill(chunk, fill):
                    continue
                blocks[(t_idx, f_idx, bid)] = codec.encode_array(chunk)
        # Embed the integrity manifest so readers can verify the payloads
        # (see repro.idx.verify)...
        from repro.idx.verify import MANIFEST_KEY, checksum_manifest

        self.header.metadata[MANIFEST_KEY] = checksum_manifest(blocks)
        # ...and the per-block stats that power instant range queries
        # (see repro.idx.blockstats).
        from repro.idx.blockstats import BLOCKSTATS_KEY, block_manifest

        self.header.metadata[BLOCKSTATS_KEY] = block_manifest(
            self.bitmask, self.layout, self._buffers, fill
        )
        write_idx_file(self.path, self.header, blocks)
        self._buffers.clear()
        self._finalized = True
        self._access = LocalAccess(self.path)
        return self.path

    # -- reading -----------------------------------------------------------------

    def query(
        self,
        *,
        box: "Box | Sequence[Sequence[int]] | None" = None,
        resolution: Optional[int] = None,
        field: Optional[str] = None,
        time: Optional[int] = None,
        access: Optional[Access] = None,
    ) -> BoxQuery:
        """Build (but do not run) a box query against this dataset."""
        return BoxQuery(
            access if access is not None else self.access,
            box=box,
            resolution=resolution,
            field=field,
            time=time,
        )

    def read_result(self, **kwargs) -> QueryResult:
        """Run a box query and return the full :class:`QueryResult`."""
        return self.query(**kwargs).execute()

    def read(self, **kwargs) -> np.ndarray:
        """Run a box query and return just the sample array."""
        return self.read_result(**kwargs).data

    def progressive(
        self,
        *,
        start_resolution: int = 0,
        **kwargs,
    ) -> Iterator[QueryResult]:
        """Coarse-to-fine refinement of one box query."""
        return self.query(**kwargs).progressive(start_resolution)

    # -- introspection --------------------------------------------------------------

    def stored_bytes(self) -> int:
        """Encoded payload bytes on disk (excludes header/table)."""
        access = self.access
        if isinstance(access, LocalAccess):
            return access.stored_bytes()
        raise IdxError("stored_bytes requires local access")

    def field_stats(self, field: Optional[str] = None) -> Dict[str, float]:
        name = self.fields[self.header.field_index(field)]
        return dict(self.header.stats.get(name, {}))

    def close(self) -> None:
        if self._access is not None:
            self._access.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IdxDataset(dims={self.dims}, fields={self.fields}, "
            f"timesteps={len(self.timesteps)}, maxh={self.maxh})"
        )


def _all_fill(chunk: np.ndarray, fill: float) -> bool:
    """True if every sample equals the fill value (NaN-aware)."""
    if chunk.dtype.kind == "f" and math.isnan(fill):
        return bool(np.isnan(chunk).all())
    return bool((chunk == fill).all())
