"""User-facing IDX dataset facade: create, write, read, progressive.

Typical round trip (the tutorial's Step 2 in miniature)::

    ds = IdxDataset.create("terrain.idx", dims=elev.shape,
                           fields={"elevation": "float32"})
    ds.write(elev, field="elevation")
    ds.finalize()

    ds = IdxDataset.open("terrain.idx")
    coarse = ds.read(resolution=ds.maxh - 4)          # fast overview
    window = ds.read(box=((512, 512), (1024, 1024)))  # full-res crop

Writing scatters the array into HZ order level by level (vectorized),
splits the HZ buffer into blocks, skips all-fill blocks, and encodes the
rest with the dataset codec.
"""

from __future__ import annotations

import math
import time as _time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.compression.adaptive import AdaptiveCodec
from repro.idx.access import Access, LocalAccess
from repro.idx.bitmask import Bitmask
from repro.idx.hzorder import HzOrder
from repro.idx.idxfile import (
    BLOCK_CODECS_KEY,
    IdxError,
    IdxHeader,
    block_codec_manifest,
    write_idx_file,
)
from repro.idx.query import BoxQuery, QueryResult
from repro.util.arrays import Box

__all__ = ["EncodeStats", "IdxDataset"]


@dataclass
class EncodeStats:
    """Accounting for one :meth:`IdxDataset.finalize` encode pass.

    ``wall_seconds`` is elapsed time over the whole encode; ``cpu_seconds``
    is process CPU time over the same span (summed across threads), so a
    parallel encode shows ``cpu_seconds > wall_seconds`` while ``workers=1``
    keeps them roughly equal.
    """

    workers: int = 1
    blocks_total: int = 0
    blocks_encoded: int = 0
    blocks_skipped_fill: int = 0
    blocks_shared: int = 0  # reused encodes from replicated timesteps
    encoded_bytes: int = 0
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    #: Stored payload bytes per codec spec, over every written block
    #: (aliases from replicated timesteps included, so the values sum to
    #: ``encoded_bytes`` and to the reader's ``stored_bytes()``).
    codec_bytes: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, float]:
        """JSON-safe view (used by benchmark emitters and reports)."""
        return {
            "workers": self.workers,
            "blocks_total": self.blocks_total,
            "blocks_encoded": self.blocks_encoded,
            "blocks_skipped_fill": self.blocks_skipped_fill,
            "blocks_shared": self.blocks_shared,
            "encoded_bytes": self.encoded_bytes,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "codec_bytes": dict(self.codec_bytes),
        }

FieldSpec = Union[str, Sequence[str], Dict[str, str], Sequence[Dict[str, str]]]


def _normalize_fields(fields: FieldSpec) -> List[Dict[str, str]]:
    if isinstance(fields, str):
        return [{"name": fields, "dtype": "float32"}]
    if isinstance(fields, dict):
        return [{"name": n, "dtype": str(np.dtype(d))} for n, d in fields.items()]
    out: List[Dict[str, str]] = []
    for f in fields:
        if isinstance(f, str):
            out.append({"name": f, "dtype": "float32"})
        else:
            out.append({"name": f["name"], "dtype": str(np.dtype(f.get("dtype", "float32")))})
    return out


class IdxDataset:
    """One IDX dataset, in either *write* or *read* mode."""

    def __init__(
        self,
        header: IdxHeader,
        *,
        path: Optional[str] = None,
        access: Optional[Access] = None,
        writable: bool = False,
    ) -> None:
        self.header = header
        self.path = path
        self.bitmask = header.bitmask_obj()
        self.hzorder = HzOrder(self.bitmask)
        self.layout = header.layout()
        self._access = access
        self._writable = writable
        self._buffers: Dict[Tuple[int, int], np.ndarray] = {}
        self._stat_accum: Dict[int, Tuple[int, float]] = {}  # f_idx -> (count, sum)
        self._finalized = not writable
        self.last_encode_stats: Optional[EncodeStats] = None

    # -- construction --------------------------------------------------------

    @classmethod
    def create(
        cls,
        path: str,
        dims: Sequence[int],
        *,
        fields: FieldSpec = "value",
        timesteps: "int | Iterable[int]" = 1,
        bits_per_block: int = 14,
        codec: str = "zlib:level=6",
        fill_value: float = 0.0,
        bitmask: Optional[str] = None,
        metadata: Optional[dict] = None,
    ) -> "IdxDataset":
        """Start a new dataset in write mode (call :meth:`finalize` to persist)."""
        if isinstance(timesteps, int):
            times = list(range(timesteps))
        else:
            times = [int(t) for t in timesteps]
        bm = Bitmask(bitmask) if bitmask else Bitmask.from_dims(dims)
        header = IdxHeader(
            dims=tuple(int(d) for d in dims),
            bitmask=bm.pattern,
            bits_per_block=bits_per_block,
            fields=_normalize_fields(fields),
            timesteps=times,
            codec=codec,
            fill_value=fill_value,
            metadata=metadata or {},
        )
        return cls(header, path=path, writable=True)

    @classmethod
    def open(cls, path: str) -> "IdxDataset":
        """Open an existing IDX file for reading via local access."""
        access = LocalAccess(path)
        return cls(access.header, path=path, access=access)

    @classmethod
    def from_access(cls, access: Access) -> "IdxDataset":
        """Wrap an arbitrary access layer (remote, cached, ...)."""
        return cls(access.header, access=access)

    # -- properties -----------------------------------------------------------

    @property
    def dims(self) -> Tuple[int, ...]:
        return self.header.dims

    @property
    def maxh(self) -> int:
        return self.bitmask.maxh

    @property
    def fields(self) -> Tuple[str, ...]:
        return tuple(f["name"] for f in self.header.fields)

    @property
    def timesteps(self) -> Tuple[int, ...]:
        return tuple(self.header.timesteps)

    @property
    def access(self) -> Access:
        if self._access is None:
            raise IdxError("dataset has no access layer (write mode? call finalize+open)")
        return self._access

    # -- writing ---------------------------------------------------------------

    def write(
        self,
        array: np.ndarray,
        *,
        field: Optional[str] = None,
        time: Optional[int] = None,
    ) -> None:
        """Scatter a full-domain array into the HZ buffer of (time, field)."""
        if not self._writable or self._finalized:
            raise IdxError("dataset is not writable")
        arr = np.ascontiguousarray(array)
        if tuple(arr.shape) != self.dims:
            raise IdxError(f"array shape {arr.shape} != dataset dims {self.dims}")
        f_idx = self.header.field_index(field)
        t_idx = self.header.time_index(time)
        dtype = self.header.field_dtype(f_idx)
        arr = arr.astype(dtype, copy=False)

        buf = self._buffer_for(t_idx, f_idx, dtype)
        full = Box.from_shape(self.dims)
        for h in range(self.maxh + 1):
            plan = self.hzorder.level_plan(h, full)
            if plan is None:
                continue
            coords, hz_addr = plan
            buf[hz_addr] = arr[np.ix_(*coords)].ravel()

        self._update_stats(f_idx, arr)

    def write_region(
        self,
        array: np.ndarray,
        offset: Sequence[int],
        *,
        field: Optional[str] = None,
        time: Optional[int] = None,
    ) -> None:
        """Scatter a sub-array at ``offset`` into the HZ buffer.

        This is how tile-at-a-time producers (GEOtiled writing one tile
        per worker) populate a dataset without assembling the full mosaic
        in memory first.  Regions may be written in any order; later
        writes overwrite overlapping samples.
        """
        if not self._writable or self._finalized:
            raise IdxError("dataset is not writable")
        arr = np.ascontiguousarray(array)
        if arr.ndim != len(self.dims):
            raise IdxError(f"region rank {arr.ndim} != dataset rank {len(self.dims)}")
        offset = tuple(int(o) for o in offset)
        region = Box(offset, tuple(o + s for o, s in zip(offset, arr.shape)))
        if not Box.from_shape(self.dims).contains_box(region):
            raise IdxError(f"region {region} exceeds dataset dims {self.dims}")
        if region.is_empty:
            return
        f_idx = self.header.field_index(field)
        t_idx = self.header.time_index(time)
        dtype = self.header.field_dtype(f_idx)
        arr = arr.astype(dtype, copy=False)

        buf = self._buffer_for(t_idx, f_idx, dtype)
        for h in range(self.maxh + 1):
            plan = self.hzorder.level_plan(h, region)
            if plan is None:
                continue
            coords, hz_addr = plan
            local = tuple(c - region.lo[a] for a, c in enumerate(coords))
            buf[hz_addr] = arr[np.ix_(*local)].ravel()

        self._update_stats(f_idx, arr)

    def _buffer_for(self, t_idx: int, f_idx: int, dtype: np.dtype) -> np.ndarray:
        """HZ buffer of (time, field), materialising a private copy when the
        buffer is shared with a replicated timestep (copy-on-write)."""
        key = (t_idx, f_idx)
        buf = self._buffers.get(key)
        if buf is None:
            buf = np.full(self.hzorder.total_samples, self.header.fill_value, dtype=dtype)
            self._buffers[key] = buf
        elif any(other is buf for k, other in self._buffers.items() if k != key):
            buf = buf.copy()
            self._buffers[key] = buf
        return buf

    def replicate_timestep(
        self,
        *,
        field: Optional[str] = None,
        from_time: Optional[int] = None,
        to_times: Iterable[int] = (),
    ) -> None:
        """Share one timestep's written HZ buffer with other timesteps.

        The scatter work (and, at finalize, the per-block encode and the
        on-disk payload bytes) happens once; the target timesteps alias the
        source buffer until one of them is written again, at which point it
        gets a private copy (copy-on-write).  This is how converters ingest
        *static* variables on a shared time axis without repeating the HZ
        scatter once per timestep.
        """
        if not self._writable or self._finalized:
            raise IdxError("dataset is not writable")
        f_idx = self.header.field_index(field)
        src = self._buffers.get((self.header.time_index(from_time), f_idx))
        if src is None:
            raise IdxError(f"timestep {from_time} of field {field!r} has not been written")
        for t in to_times:
            self._buffers[(self.header.time_index(t), f_idx)] = src

    def _update_stats(self, f_idx: int, arr: np.ndarray) -> None:
        stats = self.header.stats.setdefault(self.fields[f_idx], {})
        finite = arr[np.isfinite(arr)] if arr.dtype.kind == "f" else arr
        if finite.size:
            lo, hi = float(finite.min()), float(finite.max())
            stats["min"] = min(stats.get("min", lo), lo)
            stats["max"] = max(stats.get("max", hi), hi)
            # Running (count, sum) so tile-at-a-time ingest reports the true
            # mean over everything written, not the last tile's mean.
            count, total = self._stat_accum.get(f_idx, (0, 0.0))
            count += int(finite.size)
            total += float(finite.sum(dtype=np.float64))
            self._stat_accum[f_idx] = (count, total)
            stats["mean"] = total / count

    # -- finalize --------------------------------------------------------------

    def _encode_jobs(self) -> Tuple[List[Tuple[Tuple[int, int], np.ndarray]], Dict[Tuple[int, int], Tuple[int, int]]]:
        """Distinct buffers to encode, plus the alias map for shared ones.

        Replicated timesteps alias the same ndarray; encoding it once and
        sharing the payload objects keeps both the encode work and (via
        payload dedup in :func:`write_idx_file`) the file bytes shared.
        """
        originals: List[Tuple[Tuple[int, int], np.ndarray]] = []
        aliases: Dict[Tuple[int, int], Tuple[int, int]] = {}
        by_id: Dict[int, Tuple[int, int]] = {}
        for key in sorted(self._buffers):
            buf = self._buffers[key]
            canonical = by_id.get(id(buf))
            if canonical is None:
                by_id[id(buf)] = key
                originals.append((key, buf))
            else:
                aliases[key] = canonical
        return originals, aliases

    def finalize(self, *, workers: int = 1) -> str:
        """Encode blocks and write the IDX file; returns the path.

        ``workers > 1`` fans the per-block codec encodes over a bounded
        thread pool (zlib/DEFLATE release the GIL); submission is chunked so
        at most ``8 * workers`` encodes are in flight.  The output file is
        byte-identical to ``workers=1`` at any worker count: each block is
        encoded independently and written in the same sorted order.  The
        encode accounting lands in :attr:`last_encode_stats`.
        """
        if not self._writable:
            raise IdxError("dataset is read-only")
        if self._finalized:
            raise IdxError("dataset already finalized")
        if self.path is None:
            raise IdxError("no output path")
        if workers < 1:
            raise IdxError("workers must be >= 1")
        codec = self.header.codec_obj()
        if workers > 1 and not getattr(codec, "thread_safe", False):
            workers = 1  # non-reentrant codec: keep the exact serial path
        fill = self.header.fill_value
        bsize = self.layout.block_size
        stats = EncodeStats(workers=workers)
        wall0 = _time.perf_counter()
        cpu0 = _time.process_time()

        originals, aliases = self._encode_jobs()
        jobs: List[Tuple[Tuple[int, int, int], np.ndarray]] = [
            ((t, f, bid), buf[bid * bsize : (bid + 1) * bsize])
            for (t, f), buf in originals
            for bid in range(self.layout.num_blocks)
        ]
        stats.blocks_total = len(jobs) + len(aliases) * self.layout.num_blocks

        # Adaptive encoders pick a codec per block; the chosen spec rides
        # along with the payload so it can be recorded in the block-codec
        # manifest.  Fixed codecs report ``None`` and fall back to the
        # header codec everywhere.  Selection is a pure function of the
        # block bytes, so the parallel pool stays byte-identical to the
        # serial path.
        adaptive = isinstance(codec, AdaptiveCodec)

        def encode(
            job: Tuple[Tuple[int, int, int], np.ndarray]
        ) -> Optional[Tuple[Optional[str], bytes]]:
            _, chunk = job
            if _all_fill(chunk, fill):
                return None
            if adaptive:
                return codec.encode_with_spec(chunk)
            return None, codec.encode_array(chunk)

        blocks: Dict[Tuple[int, int, int], bytes] = {}
        specs: Dict[Tuple[int, int, int], str] = {}

        def collect(key: Tuple[int, int, int], result: Optional[Tuple[Optional[str], bytes]]) -> None:
            if result is None:
                return
            spec, payload = result
            blocks[key] = payload
            if spec is not None:
                specs[key] = spec

        if workers == 1:
            for (key, _), result in zip(jobs, map(encode, jobs)):
                collect(key, result)
        else:
            chunk_size = 8 * workers  # bounds in-flight payloads/futures
            with ThreadPoolExecutor(max_workers=workers, thread_name_prefix="idx-encode") as pool:
                for start in range(0, len(jobs), chunk_size):
                    window = jobs[start : start + chunk_size]
                    for (key, _), result in zip(window, pool.map(encode, window)):
                        collect(key, result)
        stats.blocks_encoded = len(blocks)
        # Replicated timesteps reuse the canonical payload *objects*:
        # write_idx_file dedups identical objects, so shared blocks cost
        # neither encode time nor file bytes.
        for key, canonical in aliases.items():
            t, f = key
            ct, cf = canonical
            for bid in range(self.layout.num_blocks):
                payload = blocks.get((ct, cf, bid))
                if payload is not None:
                    blocks[(t, f, bid)] = payload
                    spec = specs.get((ct, cf, bid))
                    if spec is not None:
                        specs[(t, f, bid)] = spec
                    stats.blocks_shared += 1
        stats.blocks_skipped_fill = stats.blocks_total - stats.blocks_encoded - stats.blocks_shared
        stats.encoded_bytes = sum(len(p) for p in blocks.values())
        for key, payload in blocks.items():
            spec = specs.get(key, self.header.codec)
            stats.codec_bytes[spec] = stats.codec_bytes.get(spec, 0) + len(payload)
        stats.cpu_seconds = _time.process_time() - cpu0
        stats.wall_seconds = _time.perf_counter() - wall0
        self.last_encode_stats = stats
        # Embed the integrity manifest so readers can verify the payloads
        # (see repro.idx.verify)...
        from repro.idx.verify import MANIFEST_KEY, checksum_manifest

        self.header.metadata[MANIFEST_KEY] = checksum_manifest(blocks)
        # ...and the per-block stats that power instant range queries
        # (see repro.idx.blockstats).
        from repro.idx.blockstats import BLOCKSTATS_KEY, block_manifest

        self.header.metadata[BLOCKSTATS_KEY] = block_manifest(
            self.bitmask, self.layout, self._buffers, fill
        )
        # Adaptive datasets additionally record which codec encoded each
        # block, so readers can decode per-block without trial parsing.
        if adaptive:
            self.header.metadata[BLOCK_CODECS_KEY] = block_codec_manifest(
                specs, self.layout.num_blocks, self.header.codec
            )
        write_idx_file(self.path, self.header, blocks)
        self._buffers.clear()
        self._finalized = True
        self._access = LocalAccess(self.path)
        return self.path

    # -- reading -----------------------------------------------------------------

    def query(
        self,
        *,
        box: "Box | Sequence[Sequence[int]] | None" = None,
        resolution: Optional[int] = None,
        field: Optional[str] = None,
        time: Optional[int] = None,
        access: Optional[Access] = None,
    ) -> BoxQuery:
        """Build (but do not run) a box query against this dataset."""
        return BoxQuery(
            access if access is not None else self.access,
            box=box,
            resolution=resolution,
            field=field,
            time=time,
        )

    def read_result(self, **kwargs) -> QueryResult:
        """Run a box query and return the full :class:`QueryResult`."""
        return self.query(**kwargs).execute()

    def read(self, **kwargs) -> np.ndarray:
        """Run a box query and return just the sample array."""
        return self.read_result(**kwargs).data

    def progressive(
        self,
        *,
        start_resolution: int = 0,
        **kwargs,
    ) -> Iterator[QueryResult]:
        """Coarse-to-fine refinement of one box query."""
        return self.query(**kwargs).progressive(start_resolution)

    # -- introspection --------------------------------------------------------------

    def stored_bytes(self) -> int:
        """Encoded payload bytes on disk (excludes header/table)."""
        access = self.access
        if isinstance(access, LocalAccess):
            return access.stored_bytes()
        raise IdxError("stored_bytes requires local access")

    def codec_byte_histogram(self) -> Dict[str, int]:
        """Stored payload bytes per codec spec (empty if the access layer
        cannot see the block table, e.g. a bare remote stub)."""
        hist = getattr(self.access, "codec_byte_histogram", None)
        return hist() if hist is not None else {}

    def field_stats(self, field: Optional[str] = None) -> Dict[str, float]:
        name = self.fields[self.header.field_index(field)]
        return dict(self.header.stats.get(name, {}))

    def close(self) -> None:
        if self._access is not None:
            self._access.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IdxDataset(dims={self.dims}, fields={self.fields}, "
            f"timesteps={len(self.timesteps)}, maxh={self.maxh})"
        )


def _all_fill(chunk: np.ndarray, fill: float) -> bool:
    """True if every sample equals the fill value (NaN-aware)."""
    if chunk.dtype.kind == "f" and math.isnan(fill):
        return bool(np.isnan(chunk).all())
    return bool((chunk == fill).all())
