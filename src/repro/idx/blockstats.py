"""Per-block summary statistics: instant range queries without data reads.

OpenVisus-style deployments keep per-block min/max so a dashboard can
scale its colormap (and skip irrelevant blocks) before a single sample
crosses the wire.  At finalize time the dataset embeds, for every stored
block: its value range and its spatial bounding box (the block's HZ
address range decoded back to coordinates).  :func:`estimate_range`
then answers "what values live in this box?" from metadata alone —
O(blocks) instead of O(samples), and exact whenever the box covers the
blocks it touches.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.idx.bitmask import Bitmask
from repro.idx.blocks import BlockLayout
from repro.idx.hzorder import HzOrder
from repro.util.arrays import Box, normalize_box

__all__ = ["block_manifest", "block_spatial_bounds", "estimate_range"]

#: Header-metadata key holding the per-block stats.
BLOCKSTATS_KEY = "block_stats"


def block_spatial_bounds(bitmask: Bitmask, layout: BlockLayout) -> List[Tuple[List[int], List[int]]]:
    """Spatial bounding box (lo, hi exclusive) of every block's samples.

    Decodes each block's HZ address range back to coordinates once
    (vectorized over the whole domain) and reduces per block.
    """
    hz = HzOrder(bitmask)
    addresses = np.arange(hz.total_samples, dtype=np.uint64)
    coords = hz.hz_to_point(addresses)
    bounds: List[Tuple[List[int], List[int]]] = []
    size = layout.block_size
    for bid in range(layout.num_blocks):
        sl = slice(bid * size, (bid + 1) * size)
        lo = [int(c[sl].min()) for c in coords]
        hi = [int(c[sl].max()) + 1 for c in coords]
        bounds.append((lo, hi))
    return bounds


def block_manifest(
    bitmask: Bitmask,
    layout: BlockLayout,
    buffers: Dict[Tuple[int, int], np.ndarray],
    fill_value: float,
) -> Dict[str, Dict]:
    """Per-block stats for all written (time, field) buffers.

    Returns a JSON-safe structure::

        {"bounds": [[lo, hi], ...],            # per block, spatial
         "ranges": {"t/f": [[min, max], ...]}} # per block, values (or null)
    """
    bounds = block_spatial_bounds(bitmask, layout)
    ranges: Dict[str, List] = {}
    size = layout.block_size
    memo: Dict[int, List] = {}  # replicated timesteps share one buffer scan
    for (t_idx, f_idx), buf in buffers.items():
        per_block = memo.get(id(buf))
        if per_block is None:
            per_block = []
            for bid in range(layout.num_blocks):
                chunk = buf[bid * size : (bid + 1) * size]
                if chunk.dtype.kind == "f":
                    finite = chunk[np.isfinite(chunk)]
                else:
                    finite = chunk
                if finite.size == 0 or bool((finite == fill_value).all()):
                    per_block.append(None)  # absent / all-fill block
                else:
                    per_block.append([float(finite.min()), float(finite.max())])
            memo[id(buf)] = per_block
        ranges[f"{t_idx}/{f_idx}"] = per_block
    return {"bounds": [[list(lo), list(hi)] for lo, hi in bounds], "ranges": ranges}


def estimate_range(
    dataset,
    *,
    box: "Box | Sequence[Sequence[int]] | None" = None,
    field: Optional[str] = None,
    time: Optional[int] = None,
) -> Tuple[float, float]:
    """(min, max) over a region from block metadata only (no data reads).

    The estimate covers every block intersecting the box, so it brackets
    the true range (possibly loosely at box edges) and equals it when
    the box aligns with block geometry or spans the domain.
    """
    stats = dataset.header.metadata.get(BLOCKSTATS_KEY)
    if not stats:
        raise ValueError("dataset has no block statistics (finalized by an older writer?)")
    f_idx = dataset.header.field_index(field)
    t_idx = dataset.header.time_index(time)
    per_block = stats["ranges"].get(f"{t_idx}/{f_idx}")
    if per_block is None:
        raise ValueError(f"no block stats for time={time}, field={field}")
    bounds = stats["bounds"]

    if box is None:
        query = Box.from_shape(dataset.dims)
    else:
        query = normalize_box(box, len(dataset.dims)).clip(Box.from_shape(dataset.dims))
    if query.is_empty:
        raise ValueError("query box is empty")

    lo_val = np.inf
    hi_val = -np.inf
    for (blo, bhi), rng in zip(bounds, per_block):
        if rng is None:
            continue
        block_box = Box(tuple(blo), tuple(bhi))
        if block_box.intersect(query).is_empty:
            continue
        lo_val = min(lo_val, rng[0])
        hi_val = max(hi_val, rng[1])
    if lo_val > hi_val:
        raise ValueError("no stored samples intersect the query box")
    return (float(lo_val), float(hi_val))
