"""The IDX V-bitmask: the axis-split schedule of the multiresolution hierarchy.

An IDX dataset over a power-of-two domain ``pow2dims`` is described by a
string like ``"V010101"``: after the leading ``V``, character ``i``
(1-based position) names the axis that is *split* when refining from
level ``i-1`` to level ``i``, ordered coarse → fine.  The bitmask fully
determines

- the number of levels ``maxh`` (= number of split characters),
- the sampling lattice at every level ``h`` (per-axis strides), and
- the bit-interleave pattern of the Z-order address
  (:mod:`repro.idx.hzorder`).

For anisotropic domains (e.g. 512 x 2048) the generator splits the axis
with the largest remaining extent first, matching OpenVisus' default
behaviour so that early levels reduce the domain toward a square.

Axis convention: axis 0 is the slowest-varying array axis (rows), matching
NumPy index order throughout the stack.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.util.arrays import next_power_of_two

__all__ = ["Bitmask"]


class Bitmask:
    """Parsed V-bitmask with precomputed per-level lattice geometry."""

    def __init__(self, pattern: str) -> None:
        if not pattern or pattern[0] != "V":
            raise ValueError(f"bitmask must start with 'V': {pattern!r}")
        body = pattern[1:]
        if not body:
            raise ValueError("bitmask must have at least one split")
        axes = []
        for ch in body:
            if not ch.isdigit():
                raise ValueError(f"bad bitmask character {ch!r} in {pattern!r}")
            axes.append(int(ch))
        self.pattern = pattern
        #: axis split at each position, coarse -> fine (index 0 = position 1)
        self.splits: Tuple[int, ...] = tuple(axes)
        self.maxh: int = len(axes)
        self.ndim: int = max(axes) + 1
        #: bits (== log2 extent) per axis
        self.bits_per_axis: Tuple[int, ...] = tuple(
            self.splits.count(a) for a in range(self.ndim)
        )
        if any(b == 0 for b in self.bits_per_axis):
            raise ValueError(f"axis never split in bitmask {pattern!r}")
        self.pow2dims: Tuple[int, ...] = tuple(1 << b for b in self.bits_per_axis)
        self._level_counts = self._cumulative_counts()

    # -- construction -----------------------------------------------------

    @classmethod
    def from_dims(cls, dims: Sequence[int]) -> "Bitmask":
        """Build the default bitmask for (padded) ``dims``.

        Non-power-of-two extents are padded up; the split schedule always
        halves the currently largest extent (ties broken by lowest axis),
        recorded coarse → fine.
        """
        if not dims:
            raise ValueError("dims must be non-empty")
        extents = [next_power_of_two(max(2, int(d))) for d in dims]
        order: List[int] = []
        work = list(extents)
        while any(e > 1 for e in work):
            axis = int(np.argmax(work))
            order.append(axis)
            work[axis] //= 2
        return cls("V" + "".join(str(a) for a in order))

    # -- lattice geometry ---------------------------------------------------

    def _cumulative_counts(self) -> np.ndarray:
        """``counts[h, a]`` = splits of axis ``a`` among positions 1..h."""
        counts = np.zeros((self.maxh + 1, self.ndim), dtype=np.int64)
        for h, axis in enumerate(self.splits, start=1):
            counts[h] = counts[h - 1]
            counts[h, axis] += 1
        return counts

    def level_strides(self, h: int) -> Tuple[int, ...]:
        """Per-axis sample stride of the lattice containing levels <= ``h``.

        At ``h == maxh`` every stride is 1 (full resolution); each coarser
        level doubles the stride along the axis it un-splits.
        """
        self._check_level(h)
        counts = self._level_counts[h]
        return tuple(
            1 << (self.bits_per_axis[a] - int(counts[a])) for a in range(self.ndim)
        )

    def level_dims(self, h: int) -> Tuple[int, ...]:
        """Number of lattice samples per axis at level ``h`` (pow2 domain)."""
        self._check_level(h)
        counts = self._level_counts[h]
        return tuple(1 << int(counts[a]) for a in range(self.ndim))

    def delta_lattice(self, h: int) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """(phase, stride) per axis of the samples *new* at level ``h``.

        Level 0 contributes the single sample at the origin.  For
        ``h >= 1``, the split axis takes odd multiples of its level-``h``
        stride (phase = stride, step = 2*stride); other axes keep their
        level-``h`` lattice (phase 0).
        """
        self._check_level(h)
        if h == 0:
            return tuple(0 for _ in range(self.ndim)), self.pow2dims
        strides = self.level_strides(h)
        split_axis = self.splits[h - 1]
        phase = tuple(strides[a] if a == split_axis else 0 for a in range(self.ndim))
        step = tuple(2 * strides[a] if a == split_axis else strides[a] for a in range(self.ndim))
        return phase, step

    def axis_bit_positions(self, axis: int) -> Tuple[Tuple[int, int], ...]:
        """Interleave table for one axis: tuples ``(coord_bit, z_shift)``.

        The *finest* occurrence of the axis in the bitmask carries the
        coordinate's least-significant bit; bitmask position ``i`` maps to
        Z-address bit ``maxh - i`` (position 1 is the most significant).
        """
        if not 0 <= axis < self.ndim:
            raise ValueError(f"axis {axis} out of range for ndim={self.ndim}")
        table: List[Tuple[int, int]] = []
        coord_bit = 0
        for i in range(self.maxh, 0, -1):  # fine -> coarse
            if self.splits[i - 1] == axis:
                table.append((coord_bit, self.maxh - i))
                coord_bit += 1
        return tuple(table)

    def level_of_position(self, i: int) -> int:
        """Identity helper kept for clarity: bitmask position == level."""
        self._check_level(i)
        return i

    def _check_level(self, h: int) -> None:
        if not 0 <= h <= self.maxh:
            raise ValueError(f"level {h} out of range [0, {self.maxh}]")

    # -- misc ---------------------------------------------------------------

    def covers(self, dims: Sequence[int]) -> bool:
        """True if the pow2 domain can hold logical ``dims``."""
        return len(dims) == self.ndim and all(
            int(d) <= p for d, p in zip(dims, self.pow2dims)
        )

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Bitmask) and other.pattern == self.pattern

    def __hash__(self) -> int:
        return hash(self.pattern)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Bitmask({self.pattern!r}, pow2dims={self.pow2dims})"


def _self_check() -> None:
    """Module self-test of the lattice identities (run by the test suite)."""
    bm = Bitmask.from_dims((4, 8))
    assert bm.pow2dims == (4, 8)
    total = 0
    for h in range(bm.maxh + 1):
        phase, step = bm.delta_lattice(h)
        n = 1
        for p, s, d in zip(phase, step, bm.pow2dims):
            n *= len(range(p, d, s))
        total += n
    assert total == 4 * 8, total
