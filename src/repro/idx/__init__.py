"""Multiresolution HZ-order data fabric (the OpenVisus/IDX analogue).

This package is the technical heart of the reproduction.  The paper's
dashboard and conversion steps are built on the ViSUS/OpenVisus framework
(§III-A): data is reorganised along a Hierarchical Z-order (HZ-order)
space-filling curve so that

- coarse-to-fine *progressive* access is a contiguous-prefix read,
- spatially close samples land close together on disk,
- any rectangular subset at any resolution can be extracted by touching
  only the blocks that contain its samples, and
- per-block compression (zlib/lz4/zfp) and caching slot in transparently.

Layout of the package:

- :mod:`repro.idx.bitmask` — the V-bitmask describing the axis-split
  schedule for (possibly anisotropic) power-of-two domains;
- :mod:`repro.idx.hzorder` — vectorized Z interleave and HZ addressing;
- :mod:`repro.idx.blocks` — HZ-space block partitioning;
- :mod:`repro.idx.idxfile` — the on-disk container (header + block table
  + compressed blocks);
- :mod:`repro.idx.dataset` — user-facing create/write/read facade;
- :mod:`repro.idx.query` — box queries at a resolution + progressive
  refinement iterator;
- :mod:`repro.idx.cache` — thread-safe LRU block cache with hit/miss
  accounting and coalescing ``get_or_load``;
- :mod:`repro.idx.access` — local, cached, and remote (fetcher-backed)
  block access layers;
- :mod:`repro.idx.parallel` — bounded thread-pool block fetch/decode
  pipeline with an in-flight futures table;
- :mod:`repro.idx.convert` — TIFF/NetCDF/raw <-> IDX conversion (Step 2);
- :mod:`repro.idx.layout` — access-pattern-driven block reordering;
- :mod:`repro.idx.stats` — per-field summary statistics.
"""

from repro.idx.bitmask import Bitmask
from repro.idx.hzorder import HzOrder, PLAN_CACHE, PlanCache
from repro.idx.blocks import BlockLayout
from repro.idx.cache import BlockCache
from repro.idx.dataset import IdxDataset
from repro.idx.idxfile import IdxError, IdxHeader
from repro.idx.query import BoxQuery, QueryResult
from repro.idx.access import (
    AccessScope,
    CachedAccess,
    LocalAccess,
    RemoteAccess,
    TokenBucket,
    current_scope,
    use_scope,
)
from repro.idx.parallel import ParallelFetcher
from repro.idx.convert import (
    BatchConversionReport,
    ConversionJob,
    ConversionReport,
    convert_many,
    geotiled_to_idx,
    idx_to_tiff,
    ncdf_to_idx,
    raw_to_idx,
    tiff_to_idx,
)
from repro.idx.dataset import EncodeStats
from repro.idx.stats import FieldStats
from repro.idx.timeseries import (
    animate,
    global_range,
    prefetch_timestep,
    temporal_difference,
    temporal_stats,
)
from repro.idx.verify import VerificationReport, verify_dataset
from repro.idx.blockstats import estimate_range

__all__ = [
    "animate",
    "global_range",
    "prefetch_timestep",
    "temporal_difference",
    "temporal_stats",
    "BatchConversionReport",
    "Bitmask",
    "BlockCache",
    "BlockLayout",
    "BoxQuery",
    "AccessScope",
    "CachedAccess",
    "TokenBucket",
    "current_scope",
    "use_scope",
    "ConversionJob",
    "ConversionReport",
    "EncodeStats",
    "FieldStats",
    "HzOrder",
    "IdxDataset",
    "IdxError",
    "IdxHeader",
    "LocalAccess",
    "PLAN_CACHE",
    "ParallelFetcher",
    "PlanCache",
    "QueryResult",
    "RemoteAccess",
    "VerificationReport",
    "convert_many",
    "estimate_range",
    "geotiled_to_idx",
    "idx_to_tiff",
    "verify_dataset",
    "ncdf_to_idx",
    "raw_to_idx",
    "tiff_to_idx",
]
