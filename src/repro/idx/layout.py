"""Access-pattern-driven data layout reorganisation.

§III-A: "By continuously analysing how data is accessed, OpenVisus can
dynamically update the data layout to prioritize frequently accessed
data."  This module reproduces that mechanism at block granularity:

1. an :class:`~repro.idx.access.Access` layer records every block read in
   ``counters.access_log``;
2. :func:`access_histogram` turns logs into per-block heat;
3. :func:`reorganize` rewrites the IDX file with the hottest blocks
   packed first (ties broken by block id, preserving HZ prefix order);
4. :class:`PagedByteSource` models page-granular remote reads (a ranged
   GET fetches a whole aligned page), so packing hot blocks together
   measurably reduces round trips — the effect benchmark C8 reports.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.idx.idxfile import ByteSource, FileByteSource, IdxBinaryReader, write_idx_file

__all__ = ["PagedByteSource", "access_histogram", "reorganize"]

BlockKey = Tuple[int, int, int]  # (time_idx, field_idx, block_id)


def access_histogram(access_log: Iterable[BlockKey]) -> Dict[BlockKey, int]:
    """Per-block access counts from an access log.

    Accepts the raw log (an iterable of ``(time, field, block)`` keys) or
    anything exposing an ``access_log`` attribute — in particular an
    :class:`~repro.idx.access.AccessCounters`, so callers can pass
    ``access.counters`` straight through.
    """
    log = getattr(access_log, "access_log", access_log)
    return dict(Counter(tuple(k) for k in log))


def reorganize(
    src_path: str,
    dst_path: str,
    access_log: Iterable[BlockKey],
) -> Dict[str, int]:
    """Rewrite ``src_path`` with hot blocks first; returns placement info.

    The logical content is untouched (block table still addresses every
    payload) — only the physical order of payloads changes, exactly like
    an OpenVisus layout refresh.  Returns a small report dict with the
    number of blocks moved into the hot prefix.
    """
    heat = access_histogram(access_log)
    source = FileByteSource(src_path)
    try:
        reader = IdxBinaryReader(source)
        header = reader.header
        n_time = len(header.timesteps)
        n_field = len(header.fields)
        n_block = reader.layout.num_blocks

        present: List[BlockKey] = []
        for t in range(n_time):
            for f in range(n_field):
                for b in reader.present_blocks(t, f):
                    present.append((t, f, int(b)))

        # Hot blocks first (by descending heat), cold blocks keep HZ order.
        ranked = sorted(present, key=lambda k: (-heat.get(k, 0), k))
        blocks: Dict[BlockKey, bytes] = {}
        payload_order: List[Tuple[BlockKey, bytes]] = []
        for key in ranked:
            offset, length = reader.block_entry(*key)
            payload_order.append((key, source.read_at(offset, length)))
        # write_idx_file sorts by key; to control physical order we write
        # via the low-level path below instead.
        hot = sum(1 for k in ranked if heat.get(k, 0) > 0)
    finally:
        source.close()

    _write_ordered(dst_path, header, payload_order, n_time, n_field, n_block)
    return {"blocks_total": len(payload_order), "blocks_hot": hot}


def _write_ordered(
    path: str,
    header,
    payload_order: List[Tuple[BlockKey, bytes]],
    n_time: int,
    n_field: int,
    n_block: int,
) -> None:
    """Write an IDX file with payloads in the given physical order."""
    import struct

    header_json = header.to_json().encode()
    prefix = struct.pack("<4sI", b"IDX1", len(header_json))
    table = np.zeros((n_time, n_field, n_block, 2), dtype="<u8")
    data_offset = len(prefix) + len(header_json) + table.nbytes
    cursor = data_offset
    for (t, f, b), payload in payload_order:
        table[t, f, b, 0] = cursor
        table[t, f, b, 1] = len(payload)
        cursor += len(payload)
    with open(path, "wb") as fh:
        fh.write(prefix)
        fh.write(header_json)
        fh.write(table.tobytes())
        for _, payload in payload_order:
            fh.write(payload)


class PagedByteSource:
    """ByteSource decorator with page-granular fetches and a page cache.

    Models object-store range reads: any byte touch fetches the whole
    aligned ``page_size`` page (rounded out), and previously fetched pages
    are free.  ``pages_fetched``/``bytes_fetched`` expose the transfer
    cost a layout optimisation is trying to minimise.
    """

    def __init__(self, inner: ByteSource, page_size: int = 64 * 1024) -> None:
        if page_size <= 0:
            raise ValueError("page_size must be positive")
        self.inner = inner
        self.page_size = int(page_size)
        self._pages: Dict[int, bytes] = {}
        self.pages_fetched = 0
        self.bytes_fetched = 0

    def size(self) -> int:
        return self.inner.size()

    def read_at(self, offset: int, length: int) -> bytes:
        end = offset + length
        first = offset // self.page_size
        last = (end - 1) // self.page_size if length else first
        chunks: List[bytes] = []
        for page in range(first, last + 1):
            blob = self._pages.get(page)
            if blob is None:
                lo = page * self.page_size
                hi = min(self.size(), lo + self.page_size)
                blob = self.inner.read_at(lo, hi - lo)
                self._pages[page] = blob
                self.pages_fetched += 1
                self.bytes_fetched += len(blob)
            chunks.append(blob)
        joined = b"".join(chunks)
        start = offset - first * self.page_size
        return joined[start : start + length]

    def reset_counters(self) -> None:
        self._pages.clear()
        self.pages_fetched = 0
        self.bytes_fetched = 0
