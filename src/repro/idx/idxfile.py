"""On-disk IDX container: header + block table + compressed blocks.

File layout (all little-endian):

```
bytes 0..3    magic  b"IDX1"
bytes 4..7    uint32 header length N
bytes 8..8+N  UTF-8 JSON header (structure, codec, fields, stats, metadata)
  ...         block table: uint64[n_time, n_field, n_block, 2] = (offset, length)
  ...         compressed block payloads (absolute offsets)
```

A table entry with ``length == 0`` marks an *absent* block: every sample
in it equals the dataset fill value (common in the padded region of
non-power-of-two domains), so it costs no bytes — the same trick
OpenVisus uses for sparse/padded data.

Readers are written against an abstract byte source (``read_at``), so the
identical parsing code serves local files, the in-memory object store,
and the simulated remote link.
"""

from __future__ import annotations

import json
import os
import struct
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Protocol, Tuple

import numpy as np

from repro.compression import Codec, get_codec
from repro.idx.bitmask import Bitmask
from repro.idx.blocks import BlockLayout

__all__ = [
    "BLOCK_CODECS_KEY",
    "ByteSource",
    "FileByteSource",
    "IdxBinaryReader",
    "IdxError",
    "IdxHeader",
    "block_codec_manifest",
    "write_idx_file",
]

_MAGIC = b"IDX1"
_PREFIX = struct.Struct("<4sI")

#: Header-metadata key of the per-block codec manifest.  Datasets written
#: with an adaptive encoder record, for every present block, which codec
#: produced its payload:
#:
#: ``{"specs": ["zlib:level=6", ...],            # interned spec strings
#:    "table": {"t/f": [0, null, 1, ...], ...}}  # spec index per block``
#:
#: ``null`` (or an absent ``"t/f"`` row) means "use the header codec" —
#: files written before this manifest existed simply lack the key and
#: decode exactly as before.
BLOCK_CODECS_KEY = "block_codecs"


def block_codec_manifest(
    specs: Dict[Tuple[int, int, int], str],
    n_block: int,
    default_spec: str,
) -> Dict[str, Any]:
    """Build the :data:`BLOCK_CODECS_KEY` metadata value.

    ``specs`` maps ``(time_idx, field_idx, block_id)`` to the codec spec
    that encoded the block's payload.  Blocks matching ``default_spec``
    (the header codec) are stored as ``null`` so homogeneous regions cost
    almost nothing in the JSON header.
    """
    interned: List[str] = []
    index: Dict[str, int] = {}
    table: Dict[str, List[Optional[int]]] = {}
    for (t, f, b) in sorted(specs):
        spec = specs[(t, f, b)]
        if spec == default_spec:
            continue
        row = table.setdefault(f"{t}/{f}", [None] * n_block)
        if not 0 <= b < n_block:
            raise IdxError(f"block id {b} out of range for manifest of {n_block} blocks")
        slot = index.get(spec)
        if slot is None:
            slot = index[spec] = len(interned)
            interned.append(spec)
        row[b] = slot
    return {"specs": interned, "table": table}


class IdxError(ValueError):
    """Raised for malformed IDX containers or inconsistent usage."""


class ByteSource(Protocol):
    """Random-access byte provider (local file, object blob, remote link)."""

    def read_at(self, offset: int, length: int) -> bytes: ...

    def size(self) -> int: ...


class FileByteSource:
    """ByteSource over a local file."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh = open(path, "rb")
        self._size = os.path.getsize(path)

    def read_at(self, offset: int, length: int) -> bytes:
        self._fh.seek(offset)
        data = self._fh.read(length)
        if len(data) != length:
            raise IdxError(f"short read at {offset}+{length} in {self.path}")
        return data

    def size(self) -> int:
        return self._size

    def close(self) -> None:
        self._fh.close()


class BytesByteSource:
    """ByteSource over an in-memory blob (used by the object store)."""

    def __init__(self, blob: bytes) -> None:
        self._blob = blob

    def read_at(self, offset: int, length: int) -> bytes:
        # A negative offset would silently slice from the blob's tail;
        # reject it like any other out-of-bounds range.
        if offset < 0 or length < 0 or offset + length > len(self._blob):
            raise IdxError(
                f"range {offset}+{length} out of bounds for {len(self._blob)} B blob"
            )
        return self._blob[offset : offset + length]

    def size(self) -> int:
        return len(self._blob)


@dataclass
class IdxHeader:
    """Parsed IDX header."""

    dims: Tuple[int, ...]
    bitmask: str
    bits_per_block: int
    fields: List[Dict[str, str]]  # [{"name": ..., "dtype": ...}]
    timesteps: List[int]
    codec: str = "zlib:level=6"
    fill_value: float = 0.0
    version: int = 1
    stats: Dict[str, Dict[str, float]] = field(default_factory=dict)
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.dims = tuple(int(d) for d in self.dims)
        bm = Bitmask(self.bitmask)
        if not bm.covers(self.dims):
            raise IdxError(f"bitmask {self.bitmask} cannot hold dims {self.dims}")
        if not self.fields:
            raise IdxError("at least one field is required")
        names = [f["name"] for f in self.fields]
        if len(set(names)) != len(names):
            raise IdxError(f"duplicate field names: {names}")
        if not self.timesteps:
            raise IdxError("at least one timestep is required")

    # -- derived geometry ---------------------------------------------------

    def bitmask_obj(self) -> Bitmask:
        return Bitmask(self.bitmask)

    def layout(self) -> BlockLayout:
        bm = self.bitmask_obj()
        return BlockLayout(bm.maxh, self.bits_per_block)

    def codec_obj(self) -> Codec:
        return get_codec(self.codec)

    def field_index(self, name: Optional[str]) -> int:
        if name is None:
            return 0
        for i, f in enumerate(self.fields):
            if f["name"] == name:
                return i
        raise IdxError(f"unknown field {name!r}; have {[f['name'] for f in self.fields]}")

    def time_index(self, time: Optional[int]) -> int:
        if time is None:
            return 0
        try:
            return self.timesteps.index(int(time))
        except ValueError:
            raise IdxError(f"unknown timestep {time}; have {self.timesteps}") from None

    def field_dtype(self, field_idx: int) -> np.dtype:
        return np.dtype(self.fields[field_idx]["dtype"])

    # -- serialisation --------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {
                "version": self.version,
                "dims": list(self.dims),
                "bitmask": self.bitmask,
                "bits_per_block": self.bits_per_block,
                "fields": self.fields,
                "timesteps": self.timesteps,
                "codec": self.codec,
                "fill_value": self.fill_value,
                "stats": self.stats,
                "metadata": self.metadata,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "IdxHeader":
        d = json.loads(text)
        return cls(
            dims=tuple(d["dims"]),
            bitmask=d["bitmask"],
            bits_per_block=int(d["bits_per_block"]),
            fields=list(d["fields"]),
            timesteps=list(d["timesteps"]),
            codec=d.get("codec", "zlib:level=6"),
            fill_value=float(d.get("fill_value", 0.0)),
            version=int(d.get("version", 1)),
            stats=dict(d.get("stats", {})),
            metadata=dict(d.get("metadata", {})),
        )


def write_idx_file(
    path: str,
    header: IdxHeader,
    blocks: Dict[Tuple[int, int, int], bytes],
) -> int:
    """Serialise a complete IDX file; returns bytes written.

    ``blocks`` maps ``(time_idx, field_idx, block_id)`` to the *encoded*
    payload; missing keys become absent (all-fill) blocks.
    """
    layout = header.layout()
    n_time = len(header.timesteps)
    n_field = len(header.fields)
    n_block = layout.num_blocks

    header_json = header.to_json().encode()
    table = np.zeros((n_time, n_field, n_block, 2), dtype="<u8")
    table_offset = _PREFIX.size + len(header_json)
    data_offset = table_offset + table.nbytes

    cursor = data_offset
    ordered: List[bytes] = []
    # Identical payload *objects* (replicated timesteps sharing encoded
    # blocks) are stored once; their table entries point at the same span.
    placed: Dict[int, Tuple[int, int]] = {}
    for key in sorted(blocks):
        t, f, b = key
        if not (0 <= t < n_time and 0 <= f < n_field and 0 <= b < n_block):
            raise IdxError(f"block key {key} out of range")
        payload = blocks[key]
        if len(payload) == 0:
            continue
        span = placed.get(id(payload))
        if span is None:
            span = (cursor, len(payload))
            placed[id(payload)] = span
            ordered.append(payload)
            cursor += len(payload)
        table[t, f, b, 0] = span[0]
        table[t, f, b, 1] = span[1]

    with open(path, "wb") as fh:
        fh.write(_PREFIX.pack(_MAGIC, len(header_json)))
        fh.write(header_json)
        fh.write(table.tobytes())
        for payload in ordered:
            fh.write(payload)
        total = fh.tell()
    return total


class IdxBinaryReader:
    """Parses an IDX container from any :class:`ByteSource`.

    Decoded blocks are returned as 1-D arrays of ``block_size`` samples in
    HZ order; absent blocks come back filled with the header fill value.
    """

    def __init__(self, source: ByteSource) -> None:
        self.source = source
        prefix = source.read_at(0, _PREFIX.size)
        magic, header_len = _PREFIX.unpack(prefix)
        if magic != _MAGIC:
            raise IdxError(f"bad IDX magic {magic!r}")
        self.header = IdxHeader.from_json(
            source.read_at(_PREFIX.size, header_len).decode()
        )
        self.layout = self.header.layout()
        n_time = len(self.header.timesteps)
        n_field = len(self.header.fields)
        table_offset = _PREFIX.size + header_len
        table_shape = (n_time, n_field, self.layout.num_blocks, 2)
        table_bytes = int(np.prod(table_shape)) * 8
        raw = source.read_at(table_offset, table_bytes)
        self.table = np.frombuffer(raw, dtype="<u8").reshape(table_shape)
        self._codec = self.header.codec_obj()
        # Per-block codec manifest (adaptive datasets).  Codecs are built
        # once here — read_block and the parallel fetch pipeline only read
        # these structures afterwards, so concurrent decodes stay safe.
        self._block_codec_table: Dict[Tuple[int, int], List[Optional[int]]] = {}
        self._block_codec_specs: List[str] = []
        self._block_codec_objs: List[Codec] = []
        manifest = self.header.metadata.get(BLOCK_CODECS_KEY)
        if manifest is not None:
            self._load_block_codecs(manifest)

    def _load_block_codecs(self, manifest: Any) -> None:
        if not isinstance(manifest, dict):
            raise IdxError(f"{BLOCK_CODECS_KEY} manifest must be an object")
        specs = manifest.get("specs", [])
        table = manifest.get("table", {})
        if not isinstance(specs, list) or not all(isinstance(s, str) for s in specs):
            raise IdxError(f"{BLOCK_CODECS_KEY}.specs must be a list of codec specs")
        if not isinstance(table, dict):
            raise IdxError(f"{BLOCK_CODECS_KEY}.table must be an object")
        self._block_codec_specs = list(specs)
        self._block_codec_objs = [get_codec(s) for s in specs]
        n_block = self.layout.num_blocks
        for key, row in table.items():
            try:
                t_s, f_s = key.split("/")
                t, f = int(t_s), int(f_s)
            except (AttributeError, ValueError):
                raise IdxError(f"bad {BLOCK_CODECS_KEY} table key {key!r}") from None
            if not isinstance(row, list) or len(row) != n_block:
                raise IdxError(
                    f"{BLOCK_CODECS_KEY} row {key!r} must list {n_block} entries"
                )
            for slot in row:
                if slot is not None and not (
                    isinstance(slot, int) and 0 <= slot < len(specs)
                ):
                    raise IdxError(
                        f"{BLOCK_CODECS_KEY} row {key!r} references codec {slot!r} "
                        f"outside specs[0..{len(specs) - 1}]"
                    )
            self._block_codec_table[(t, f)] = row

    def block_entry(self, time_idx: int, field_idx: int, block_id: int) -> Tuple[int, int]:
        """(offset, length) of the encoded payload; length 0 = absent."""
        entry = self.table[time_idx, field_idx, block_id]
        return int(entry[0]), int(entry[1])

    def codec_for(self, time_idx: int, field_idx: int, block_id: int) -> Codec:
        """The codec that encoded one block (header codec when unlisted)."""
        row = self._block_codec_table.get((time_idx, field_idx))
        if row is not None:
            slot = row[block_id]
            if slot is not None:
                return self._block_codec_objs[slot]
        return self._codec

    def codec_spec_for(self, time_idx: int, field_idx: int, block_id: int) -> str:
        """Spec string of the codec that encoded one block."""
        row = self._block_codec_table.get((time_idx, field_idx))
        if row is not None:
            slot = row[block_id]
            if slot is not None:
                return self._block_codec_specs[slot]
        return self.header.codec

    def read_block(self, time_idx: int, field_idx: int, block_id: int) -> np.ndarray:
        offset, length = self.block_entry(time_idx, field_idx, block_id)
        dtype = self.header.field_dtype(field_idx)
        if length == 0:
            return np.full(self.layout.block_size, self.header.fill_value, dtype=dtype)
        payload = self.source.read_at(offset, length)
        codec = self.codec_for(time_idx, field_idx, block_id)
        return codec.decode_array(payload, dtype, (self.layout.block_size,))

    def stored_bytes(self) -> int:
        """Total encoded payload bytes across all present blocks."""
        return int(self.table[..., 1].sum())

    def codec_byte_histogram(self) -> Dict[str, int]:
        """Stored payload bytes per codec spec, over all present blocks.

        Conservation invariant: the values sum to :meth:`stored_bytes`
        (aliased payloads count once per referencing table entry, exactly
        as ``stored_bytes`` counts them).
        """
        hist: Dict[str, int] = {}
        lengths = self.table[..., 1]
        for t, f, b in zip(*np.nonzero(lengths)):
            spec = self.codec_spec_for(int(t), int(f), int(b))
            hist[spec] = hist.get(spec, 0) + int(lengths[t, f, b])
        return hist

    def present_blocks(self, time_idx: int, field_idx: int) -> np.ndarray:
        """Ids of blocks with stored payloads for one (time, field)."""
        return np.flatnonzero(self.table[time_idx, field_idx, :, 1] > 0)
