"""Partitioning of HZ address space into fixed-size blocks.

A block holds ``2**bits_per_block`` consecutive HZ addresses and is the
unit of compression, disk I/O, network transfer, and caching — exactly
the role OpenVisus blocks play.  Because HZ space is level-contiguous,
block 0 contains the entire coarse prefix (levels 0..bits_per_block), and
a query at resolution ``h`` never touches a block beyond
``2**h / block_size``: progressive refinement is a growing prefix of the
block sequence plus spatially-selected fine blocks.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = ["BlockLayout"]


class BlockLayout:
    """Geometry of block partitioning for one dataset."""

    def __init__(self, maxh: int, bits_per_block: int) -> None:
        if bits_per_block < 1:
            raise ValueError("bits_per_block must be >= 1")
        # A dataset smaller than one block still gets exactly one block.
        self.bits_per_block = min(int(bits_per_block), int(maxh))
        self.maxh = int(maxh)
        self.block_size: int = 1 << self.bits_per_block
        self.total_samples: int = 1 << self.maxh
        self.num_blocks: int = max(1, self.total_samples // self.block_size)

    def block_of(self, hz: np.ndarray) -> np.ndarray:
        """Block id containing each HZ address."""
        return (np.asarray(hz, dtype=np.uint64) >> np.uint64(self.bits_per_block)).astype(
            np.int64
        )

    def offset_in_block(self, hz: np.ndarray) -> np.ndarray:
        """Sample offset of each HZ address within its block."""
        mask = np.uint64(self.block_size - 1)
        return (np.asarray(hz, dtype=np.uint64) & mask).astype(np.int64)

    def group_by_block(
        self, hz: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Group flat HZ addresses by owning block in one sort.

        Returns ``(order, block_ids, bounds)`` where ``order`` is a stable
        argsort of the addresses' block ids, ``block_ids`` lists each
        distinct block once in ascending order, and
        ``order[bounds[i]:bounds[i+1]]`` indexes exactly the samples of
        ``block_ids[i]``.  Segment boundaries are the positions where the
        sorted id array changes value, so the whole grouping is one
        stable sort plus two linear passes with no per-block rescans —
        this is the core of the grouped gather kernel in
        :meth:`repro.idx.query.BoxQuery._gather`.
        """
        bids = self.block_of(hz)
        order = np.argsort(bids, kind="stable")
        sorted_bids = bids[order]
        if sorted_bids.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return order, empty, np.zeros(1, dtype=np.int64)
        cuts = np.flatnonzero(sorted_bids[1:] != sorted_bids[:-1]) + 1
        starts = np.concatenate((np.zeros(1, dtype=np.int64), cuts))
        block_ids = sorted_bids[starts]
        bounds = np.append(starts, sorted_bids.size)
        return order, block_ids, bounds

    @staticmethod
    def merge_block_ids(per_window: Sequence[np.ndarray]) -> np.ndarray:
        """Deduplicated ascending union of several block-id arrays.

        This is the batch planner's worklist merge: each window's
        :meth:`group_by_block` segmentation names its blocks once, and
        the union across a batch is the set of blocks the whole batch
        must read — each exactly once, however many windows share it
        (:class:`repro.ml.planner.BatchPlanner`).  Inputs need not be
        sorted or distinct; the result always is.
        """
        stacked = [np.asarray(ids, dtype=np.int64) for ids in per_window if len(ids)]
        if not stacked:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(stacked))

    def hz_range_of_block(self, block_id: int) -> Tuple[int, int]:
        """Half-open HZ range ``[lo, hi)`` covered by ``block_id``."""
        if not 0 <= block_id < self.num_blocks:
            raise ValueError(f"block {block_id} out of range [0, {self.num_blocks})")
        lo = block_id * self.block_size
        return lo, lo + self.block_size

    def blocks_for_level(self, h: int) -> Tuple[int, int]:
        """Half-open block-id range whose samples include level ``h``."""
        if not 0 <= h <= self.maxh:
            raise ValueError(f"level {h} out of range")
        if h == 0:
            return 0, 1
        lo_hz = 1 << (h - 1)
        hi_hz = 1 << h
        return lo_hz // self.block_size, max(1, -(-hi_hz // self.block_size))

    def max_block_for_resolution(self, h: int) -> int:
        """Last block id (inclusive) any query at resolution ``h`` can touch."""
        return self.blocks_for_level(h)[1] - 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BlockLayout(maxh={self.maxh}, bits_per_block={self.bits_per_block}, "
            f"num_blocks={self.num_blocks})"
        )
