"""Per-field summary statistics over an IDX dataset.

The dashboard needs value ranges to scale colormaps ("colormap ranges can
be manually adjusted or set dynamically", §III-A) and the validation step
compares per-region statistics.  Statistics can be computed *at reduced
resolution* — an honest estimate from the coarse prefix, which is how a
dashboard gets a usable range without a full-resolution scan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.idx.dataset import IdxDataset
from repro.util.arrays import Box

__all__ = ["FieldStats", "compute_stats", "histogram"]


@dataclass(frozen=True)
class FieldStats:
    """Summary of one field over one region at one resolution."""

    field: str
    level: int
    count: int
    minimum: float
    maximum: float
    mean: float
    std: float

    @property
    def range(self) -> Tuple[float, float]:
        return (self.minimum, self.maximum)


def compute_stats(
    dataset: IdxDataset,
    *,
    field: Optional[str] = None,
    time: Optional[int] = None,
    box: "Box | Sequence[Sequence[int]] | None" = None,
    resolution: Optional[int] = None,
) -> FieldStats:
    """Streaming-friendly stats: reads only the requested resolution level."""
    result = dataset.read_result(field=field, time=time, box=box, resolution=resolution)
    data = result.data
    if data.dtype.kind == "f":
        finite = data[np.isfinite(data)]
    else:
        finite = data.reshape(-1)
    if finite.size == 0:
        raise ValueError("no finite samples in the requested region")
    return FieldStats(
        field=result.field,
        level=result.level,
        count=int(finite.size),
        minimum=float(finite.min()),
        maximum=float(finite.max()),
        mean=float(finite.mean()),
        std=float(finite.std()),
    )


def histogram(
    dataset: IdxDataset,
    *,
    bins: int = 64,
    field: Optional[str] = None,
    time: Optional[int] = None,
    box: "Box | Sequence[Sequence[int]] | None" = None,
    resolution: Optional[int] = None,
    value_range: Optional[Tuple[float, float]] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """(counts, bin_edges) of sample values at the chosen resolution."""
    result = dataset.read_result(field=field, time=time, box=box, resolution=resolution)
    data = result.data
    values = data[np.isfinite(data)] if data.dtype.kind == "f" else data.reshape(-1)
    if values.size == 0:
        raise ValueError("no finite samples to histogram")
    return np.histogram(values, bins=bins, range=value_range)
