"""Block access layers: local, cached, and remote.

The storage-oblivious query API of the paper (§III-A) "abstracts data
storage and access complexities": a :class:`repro.idx.query.BoxQuery`
only ever calls :meth:`Access.read_block`, so the same query code runs
against

- :class:`LocalAccess` — an IDX file on local disk,
- :class:`RemoteAccess` — any :class:`~repro.idx.idxfile.ByteSource`,
  e.g. an object in the simulated Seal/Dataverse store streamed over a
  modelled network link, and
- :class:`CachedAccess` — any of the above behind a shared
  :class:`~repro.idx.cache.BlockCache`.

Every layer counts blocks and bytes it actually touched, which the
progressive-access and caching benchmarks (C2, C3) report.
``bytes_read`` always counts *stored* (encoded) bytes for remote/local
layers, whether a block arrived via :meth:`Access.prefetch` or a direct
read, so pipelined and serial sessions report identical traffic.

``RemoteAccess(workers=N)`` with ``N >= 1`` routes prefetch through a
:class:`~repro.idx.parallel.ParallelFetcher`: block fetch+decode overlap
across a bounded thread pool, ``read_block`` joins in-flight fetches
instead of re-issuing them, and simulated latency is charged as the
slowest worker's total (see :mod:`repro.network.clock`).  ``workers=1``
is the exact serial baseline with identical results.

**Multi-tenant sharing** (DESIGN.md §12): every piece of *per-request*
mutable state an access layer owns — I/O counters, retry statistics, the
staged-prefetch table, the prefetch window — lives in an
:class:`AccessScope`, not on the access instance.  Each instance carries
a private default scope, so single-session code behaves exactly as it
always has; a service layer multiplexing many sessions over one shared
``RemoteAccess``/``CachedAccess`` instead binds one scope per session and
activates it with :func:`use_scope` around each request.  The scope also
carries the tenant's fairness policy: an optional :class:`TokenBucket`
admitting block fetches at a bounded rate, and a ``max_inflight`` cap
bounding how many blocks one session may have staged or in flight in the
shared fetch pipeline at once.
"""

from __future__ import annotations

import threading
import time as _time
from abc import ABC, abstractmethod
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

import numpy as np

from repro.faults.breaker import CircuitBreaker
from repro.faults.errors import CorruptPayloadError
from repro.faults.retry import RetryPolicy, RetryStats
from repro.idx.cache import BlockCache
from repro.idx.idxfile import ByteSource, FileByteSource, IdxBinaryReader, IdxHeader
from repro.idx.parallel import ParallelFetcher
from repro.util.hashing import content_digest

__all__ = [
    "Access",
    "AccessCounters",
    "AccessScope",
    "CachedAccess",
    "LocalAccess",
    "RemoteAccess",
    "TokenBucket",
    "current_scope",
    "set_scope_observer",
    "use_scope",
]

#: Default bound on ``AccessCounters.access_log`` length.
DEFAULT_LOG_LIMIT = 4096


@dataclass
class AccessCounters:
    """I/O accounting for one access layer.

    ``access_log`` is capped at ``log_limit`` entries so long-running
    dashboard sessions don't grow memory without bound; once the cap is
    hit, new entries are dropped and ``truncated`` flips to True while
    the scalar counters keep counting exactly.
    """

    blocks_read: int = 0
    bytes_read: int = 0
    absent_blocks: int = 0
    access_log: List[Tuple[int, int, int]] = field(default_factory=list)
    log_limit: int = DEFAULT_LOG_LIMIT
    truncated: bool = False

    def record(self, time_idx: int, field_idx: int, block_id: int, nbytes: int) -> None:
        self.blocks_read += 1
        self.bytes_read += nbytes
        if len(self.access_log) < self.log_limit:
            self.access_log.append((time_idx, field_idx, block_id))
        else:
            self.truncated = True

    def snapshot(self) -> Tuple[int, int, int]:
        """Checkpoint ``(blocks_read, bytes_read, log length)``.

        Subtract two snapshots to account for one step of a larger
        interaction — the progressive-refinement tests and benchmarks use
        this to assert each refinement reads only the blocks new at its
        level.
        """
        return (self.blocks_read, self.bytes_read, len(self.access_log))

    def blocks_since(self, snap: Tuple[int, int, int]) -> List[Tuple[int, int, int]]:
        """Block keys recorded after ``snap`` (exact while the log is uncapped).

        Raises ``RuntimeError`` once the capped log has dropped entries,
        rather than silently under-reporting.
        """
        if self.truncated:
            raise RuntimeError("access_log was truncated; per-step keys unavailable")
        return list(self.access_log[snap[2] :])


class TokenBucket:
    """Token-bucket admission control for block fetches.

    ``rate`` is the sustained budget in blocks per second, ``burst`` the
    instantaneous allowance.  :meth:`acquire` never rejects — it *delays*:
    when the bucket is empty the caller waits out the deficit, charged to
    the simulated clock when one is bound (nothing really sleeps in
    tests/benchmarks) or slept for real otherwise.  One bucket belongs to
    one tenant; the per-tenant delay is what keeps a greedy session from
    starving its neighbours on shared infrastructure.

    The bucket is thread-safe so a tenant may migrate between worker
    threads across requests.
    """

    def __init__(self, rate: float, burst: Optional[float] = None, *, clock=None) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive (blocks per second)")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(1.0, self.rate)
        if self.burst <= 0:
            raise ValueError("burst must be positive")
        self.clock = clock
        self._lock = threading.Lock()
        self._tokens = self.burst
        self._last = self._read_time()
        self.waits = 0
        self.waited_s = 0.0

    def _read_time(self) -> float:
        return self.clock.now if self.clock is not None else _time.monotonic()

    def acquire(self, n: int = 1) -> float:
        """Take ``n`` tokens, waiting out any deficit; returns seconds waited."""
        if n <= 0:
            return 0.0
        with self._lock:
            now = self._read_time()
            self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
            self._last = now
            self._tokens -= float(n)
            wait = -self._tokens / self.rate if self._tokens < 0 else 0.0
            if wait > 0:
                self.waits += 1
                self.waited_s += wait
        if wait > 0:
            if self.clock is not None:
                self.clock.advance(wait, label="admission:wait")
            else:
                # Intentional wallclock sleep: with no SimClock bound the
                # bucket throttles for real, so bench_serve's real-slept
                # WAN mode measures true admission delay.  Exempted from
                # clock-discipline via CLOCK_ALLOWLIST in
                # repro.analysis.config (TokenBucket.acquire).
                _time.sleep(wait)
        return wait


class AccessScope:
    """Per-session view of a shared access layer (DESIGN.md §12).

    A scope owns everything about a request stream that must *not* be
    shared between tenants multiplexed over one access instance:

    - ``counters`` — the session's own I/O accounting;
    - ``retry_stats`` — retries/backoff attributed to this session;
    - the staged-prefetch table and the in-flight key set (a query's
      prefetch window), keyed per access URI so one scope can span
      several datasets;
    - the fairness policy: an optional admission ``bucket`` and a
      ``max_inflight`` bound on the prefetch window.

    A scope belongs to one session and is driven by at most one request
    at a time — it is not itself synchronised (exactly like the
    per-instance state it replaces).  Activate it around a request with
    :func:`use_scope`; code that never binds a scope runs against the
    access instance's private default scope and behaves exactly as
    before the scopes existed.
    """

    def __init__(
        self,
        tenant: str = "default",
        *,
        bucket: Optional[TokenBucket] = None,
        max_inflight: Optional[int] = None,
        log_limit: int = DEFAULT_LOG_LIMIT,
    ) -> None:
        self.tenant = str(tenant)
        self.counters = AccessCounters(log_limit=log_limit)
        self.retry_stats = RetryStats()
        self.bucket = bucket
        if max_inflight is not None and int(max_inflight) < 1:
            raise ValueError("max_inflight must be >= 1 (or None for unbounded)")
        self.max_inflight = None if max_inflight is None else int(max_inflight)
        #: Blocks admitted through :meth:`admit` (fetches this scope paid for).
        self.admitted_blocks = 0
        #: Total admission delay this scope has absorbed.
        self.throttled_s = 0.0
        # uri -> key -> (decoded block, stored payload bytes): one query's stage.
        self._staged: Dict[str, Dict[Tuple[int, int, int], Tuple[np.ndarray, int]]] = {}
        # uri -> keys this scope submitted to a shared parallel fetcher.
        self._inflight: Dict[str, Set[Tuple[int, int, int]]] = {}

    def staged(self, uri: str) -> Dict[Tuple[int, int, int], Tuple[np.ndarray, int]]:
        return self._staged.setdefault(uri, {})

    def inflight(self, uri: str) -> Set[Tuple[int, int, int]]:
        return self._inflight.setdefault(uri, set())

    def take_inflight(self, uri: str) -> Set[Tuple[int, int, int]]:
        """Drop and return the in-flight key set for ``uri``."""
        keys = self._inflight.get(uri)
        if not keys:
            return set()
        self._inflight[uri] = set()
        return keys

    def window(self, items: List) -> List:
        """Clip a prefetch batch to this scope's in-flight bound."""
        if self.max_inflight is None:
            return items
        return items[: self.max_inflight]

    def admit(self, n: int = 1) -> float:
        """Charge ``n`` block fetches against the admission budget."""
        if _SCOPE_OBSERVER is not None:
            _SCOPE_OBSERVER.on_charge(self, n)
        self.admitted_blocks += int(n)
        if self.bucket is None:
            return 0.0
        waited = self.bucket.acquire(n)
        self.throttled_s += waited
        return waited


_SCOPE_STACK = threading.local()

#: Optional runtime hook (the ScopeSanitizer) observing scope bindings,
#: charges, and default-scope fallbacks.  ``None`` in production: every
#: notification site is a single global read on the fast path.
_SCOPE_OBSERVER = None


def set_scope_observer(observer):
    """Install a scope observer; returns the previous one.

    The observer (see :class:`repro.analysis.invariants.ScopeSanitizer`)
    receives ``on_bind(scope)`` / ``on_unbind(scope)`` around
    :func:`use_scope`, ``on_charge(scope, n)`` from
    :meth:`AccessScope.admit`, and ``on_default(access)`` whenever an
    access layer falls back to its private default scope.  Pass ``None``
    to uninstall.
    """
    global _SCOPE_OBSERVER
    previous = _SCOPE_OBSERVER
    _SCOPE_OBSERVER = observer
    return previous


def current_scope() -> Optional[AccessScope]:
    """The scope bound to this thread by :func:`use_scope`, if any."""
    stack = getattr(_SCOPE_STACK, "stack", None)
    return stack[-1] if stack else None


@contextmanager
def use_scope(scope: AccessScope) -> Iterator[AccessScope]:
    """Bind ``scope`` as this thread's active scope for the block.

    Every :class:`Access` consulted inside the block accounts its I/O,
    staging, retries, and admission against ``scope`` instead of its
    private default.  Nests (innermost wins) and is strictly
    thread-local, so concurrent sessions on different threads never see
    each other's scopes.
    """
    stack = getattr(_SCOPE_STACK, "stack", None)
    if stack is None:
        stack = []
        _SCOPE_STACK.stack = stack
    if _SCOPE_OBSERVER is not None:
        _SCOPE_OBSERVER.on_bind(scope)
    stack.append(scope)
    try:
        yield scope
    finally:
        stack.pop()
        if _SCOPE_OBSERVER is not None:
            _SCOPE_OBSERVER.on_unbind(scope)


class Access(ABC):
    """Abstract block provider for one IDX dataset."""

    header: IdxHeader

    def __init__(self) -> None:
        self._default_scope = AccessScope()

    def _scope(self) -> AccessScope:
        """The active per-session scope, or this instance's default."""
        scope = current_scope()
        if scope is not None:
            return scope
        if _SCOPE_OBSERVER is not None:
            _SCOPE_OBSERVER.on_default(self)
        return self._default_scope

    @property
    def counters(self) -> AccessCounters:
        """I/O counters of the *current* scope (default scope when unscoped)."""
        return self._scope().counters

    @abstractmethod
    def read_block(self, time_idx: int, field_idx: int, block_id: int) -> np.ndarray:
        """Decoded block (1-D, ``block_size`` samples, HZ order)."""

    def prefetch(self, time_idx: int, field_idx: int, block_ids) -> None:
        """Hint that the given blocks are about to be read.

        Default is a no-op; remote layers override it to pipeline the
        fetches — into one round trip (what OpenVisus' async block queue
        does) or across a worker pool — and the cache layer forwards only
        the missing ids.
        """

    def release_prefetched(self) -> None:
        """Drop per-query prefetch state (staged blocks, futures table).

        Called by :meth:`repro.idx.query.BoxQuery.execute` when a query
        finishes so prefetched blocks don't outlive the query that asked
        for them.  Re-serving old fetches for free is the cache layer's
        job, not the remote layer's.  Default is a no-op.
        """

    def read_blocks(
        self, time_idx: int, field_idx: int, block_ids
    ) -> Dict[int, np.ndarray]:
        """Read a whole worklist of blocks as one prefetched batch.

        This is the batched read primitive behind the ML batch planner
        (:class:`repro.ml.planner.BatchPlanner`): the ids are announced
        in one :meth:`prefetch` hint — a single multi-range round trip
        on serial remote sources, one submission wave on a
        :class:`~repro.idx.parallel.ParallelFetcher` pool — then drained
        through :meth:`read_block`, so each *unique* block crosses the
        network (and the counters of the caller's
        :class:`AccessScope`) exactly once however many consumers share
        it.  Duplicate ids in ``block_ids`` are collapsed.  The prefetch
        stage is always released before returning: the decoded blocks in
        the result dict are the only thing that outlives the call.
        """
        wanted = sorted({int(bid) for bid in block_ids})
        out: Dict[int, np.ndarray] = {}
        if not wanted:
            return out
        self.prefetch(time_idx, field_idx, wanted)
        try:
            for bid in wanted:
                out[bid] = self.read_block(time_idx, field_idx, bid)
        finally:
            self.release_prefetched()
        return out

    @property
    def uri(self) -> str:
        """Stable identity used as the cache key prefix."""
        return f"access:{id(self)}"

    def close(self) -> None:  # pragma: no cover - default no-op
        pass


class _ReaderAccess(Access):
    """Shared implementation over an :class:`IdxBinaryReader`."""

    def __init__(self, reader: IdxBinaryReader, uri: str) -> None:
        super().__init__()
        self._reader = reader
        self._uri = uri
        self.header = reader.header
        self.layout = reader.layout

    def read_block(self, time_idx: int, field_idx: int, block_id: int) -> np.ndarray:
        offset, length = self._reader.block_entry(time_idx, field_idx, block_id)
        block = self._reader.read_block(time_idx, field_idx, block_id)
        if length == 0:
            self.counters.absent_blocks += 1
        self.counters.record(time_idx, field_idx, block_id, length)
        return block

    def stored_bytes(self) -> int:
        return self._reader.stored_bytes()

    def codec_byte_histogram(self) -> Dict[str, int]:
        """Stored payload bytes per codec spec (see ``IdxBinaryReader``)."""
        return self._reader.codec_byte_histogram()

    @property
    def uri(self) -> str:
        return self._uri


class LocalAccess(_ReaderAccess):
    """Blocks from an IDX file on local disk."""

    def __init__(self, path: str) -> None:
        self._source = FileByteSource(path)
        super().__init__(IdxBinaryReader(self._source), uri=f"file://{path}")
        self.path = path

    def close(self) -> None:
        self._source.close()


class RemoteAccess(_ReaderAccess):
    """Blocks streamed from an arbitrary byte source (e.g. cloud object).

    The source decides what "remote" costs: the storage package wraps
    object blobs in a latency/bandwidth-modelled source, so every block
    fetch pays the simulated round trip exactly like a ranged HTTP GET
    against Seal Storage in the tutorial.

    :meth:`prefetch` pipelines multiple block fetches.  With the default
    ``workers=0`` and a source that supports ``read_many`` (Seal does),
    the whole batch becomes a single multi-range round trip.  With
    ``workers >= 1`` each block is fetched and decoded as its own task on
    a bounded thread pool (OpenVisus' asynchronous block queue):
    per-block round trips overlap each other *and* the codec decode, and
    :meth:`read_block` waits on the in-flight future instead of
    re-issuing the fetch.  ``workers=1`` is the serial baseline of that
    pipeline — identical code path and results, latencies summed.
    """

    def __init__(
        self,
        source: ByteSource,
        uri: str = "remote://object",
        *,
        workers: int = 0,
        clock=None,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
    ) -> None:
        super().__init__(IdxBinaryReader(source), uri=uri)
        self._source = source
        if clock is None:
            clock = getattr(source, "clock", None)
        self._clock = clock
        self._retry = retry
        self._breaker = breaker
        # Lazily imported key avoids a hard dependency on verify at call
        # time; the manifest is optional header metadata.
        from repro.idx.verify import MANIFEST_KEY

        manifest = self.header.metadata.get(MANIFEST_KEY)
        self._manifest = manifest if isinstance(manifest, dict) else None
        self._fetcher: Optional[ParallelFetcher] = None
        if workers:
            self._fetcher = ParallelFetcher(
                self._fetch_decode, workers=int(workers), clock=clock
            )

    @property
    def fetcher(self) -> Optional[ParallelFetcher]:
        """The parallel pipeline, if ``workers >= 1`` was requested."""
        return self._fetcher

    @property
    def retry_policy(self) -> Optional[RetryPolicy]:
        return self._retry

    @property
    def retry_stats(self) -> RetryStats:
        """Retry accounting of the current scope (per-session when scoped)."""
        return self._scope().retry_stats

    @property
    def _staged(self) -> Dict[Tuple[int, int, int], Tuple[np.ndarray, int]]:
        """The current scope's staged-prefetch table for this dataset."""
        return self._scope().staged(self.uri)

    @property
    def breaker(self) -> Optional[CircuitBreaker]:
        return self._breaker

    def _verified_fetch(self, key: Tuple[int, int, int]) -> np.ndarray:
        """One attempt: ranged fetch + integrity check + codec decode.

        Partial reads (payload shorter than the table entry) and payloads
        whose checksum disagrees with the dataset's embedded block
        manifest raise :class:`CorruptPayloadError` *before* decode, so
        the retry policy re-fetches them instead of caching garbage.
        """
        time_idx, field_idx, block_id = key
        offset, length = self._reader.block_entry(time_idx, field_idx, block_id)
        dtype = self.header.field_dtype(field_idx)
        if length == 0:
            return np.full(self.layout.block_size, self.header.fill_value, dtype=dtype)
        payload = self._source.read_at(offset, length)
        if len(payload) != length:
            raise CorruptPayloadError(
                f"partial payload for block {key}: got {len(payload)} of {length} B"
            )
        if self._manifest is not None:
            expected = self._manifest.get(f"{time_idx}/{field_idx}/{block_id}")
            if expected is not None and content_digest(payload, length=8) != expected:
                raise CorruptPayloadError(f"checksum mismatch for block {key}")
        # Adaptive datasets record the codec per block; the reader resolves
        # it (falling back to the header codec for fixed-codec files).
        codec = self._reader.codec_for(time_idx, field_idx, block_id)
        return codec.decode_array(payload, dtype, (self.layout.block_size,))

    def _fetch_decode(
        self, key: Tuple[int, int, int], scope: Optional[AccessScope] = None
    ) -> np.ndarray:
        """Worker task: ranged fetch + codec decode of one block.

        With a retry policy installed the fetch is verified and retried
        with backoff (sleeps charged to the simulated clock); the per-key
        circuit breaker gates the whole cycle and is told the outcome.

        ``scope`` pins the retry accounting to the session that asked for
        the block — it is captured at submission time because this runs
        on fetcher pool threads, where the submitting thread's scope
        binding is invisible.
        """
        if scope is None:
            scope = self._scope()
        if self._retry is None:
            return self._reader.read_block(*key)
        if self._breaker is not None:
            self._breaker.check(key)
        try:
            block = self._retry.run(
                lambda: self._verified_fetch(key),
                token=key,
                clock=self._clock,
                stats=scope.retry_stats,
            )
        except Exception:
            if self._breaker is not None:
                self._breaker.record_failure(key)
            raise
        if self._breaker is not None:
            self._breaker.record_success(key)
        return block

    def prefetch(self, time_idx: int, field_idx: int, block_ids) -> None:
        scope = self._scope()
        staged = scope.staged(self.uri)
        requested = {(time_idx, field_idx, int(bid)) for bid in block_ids}
        wanted: List[Tuple[int, int, int]] = []
        ranges: List[Tuple[int, int]] = []
        for key in sorted(requested):
            if key in staged:
                continue  # already fetched earlier in this query
            offset, length = self._reader.block_entry(*key)
            if length == 0:
                continue  # absent blocks decode locally for free
            wanted.append(key)
            ranges.append((offset, length))
        if not wanted:
            return
        # The scope's prefetch window bounds how many blocks one session
        # may stage or hold in flight at once; anything clipped is read
        # on demand (joining or issuing serially), so fairness never
        # costs correctness.
        clipped = scope.window(wanted)
        ranges = ranges[: len(clipped)]
        wanted = clipped
        if self._fetcher is not None:
            # Bind this session's scope into the loader: the task runs on
            # pool threads, where the submitting thread's binding is gone.
            fresh = self._fetcher.prefetch(
                wanted, loader=lambda key, _s=scope: self._fetch_decode(key, _s)
            )
            if fresh:
                scope.admit(len(fresh))
                scope.inflight(self.uri).update(fresh)
            return
        if self._retry is not None:
            # Each block must be its own retry scope (per-key attempt
            # accounting, per-key breaker): a multi-range round trip would
            # fail wholesale on one bad range and re-bill every good one.
            # read_block fetches each block through the retrying path.
            return
        read_many = getattr(self._source, "read_many", None)
        if read_many is None:
            return  # plain sources fetch per block; nothing to pipeline
        scope.admit(len(wanted))
        blobs = read_many(ranges)
        for key, (offset, length), blob in zip(wanted, ranges, blobs):
            dtype = self.header.field_dtype(key[1])
            codec = self._reader.codec_for(*key)
            decoded = codec.decode_array(blob, dtype, (self.layout.block_size,))
            staged[key] = (decoded, length)

    def read_block(self, time_idx: int, field_idx: int, block_id: int) -> np.ndarray:
        # Normalise to builtin ints: the key doubles as the retry jitter
        # token and the breaker key, both hashed via str(), where numpy
        # integer scalars render differently from Python ints.
        key = (int(time_idx), int(field_idx), int(block_id))
        time_idx, field_idx, block_id = key
        scope = self._scope()
        staged = scope.staged(self.uri).get(key)
        if staged is not None:
            block, stored_length = staged
            # Stored (encoded) bytes, the same quantity the direct path
            # records — not the decoded array size.
            scope.counters.record(time_idx, field_idx, block_id, stored_length)
            return block
        if self._fetcher is not None:
            block = self._fetcher.get(key)
            if block is not None:
                _, length = self._reader.block_entry(*key)
                scope.counters.record(time_idx, field_idx, block_id, length)
                return block
        # This read crosses the network itself (nothing staged, nothing
        # in flight), so it pays the admission budget here.
        scope.admit(1)
        if self._retry is None:
            return super().read_block(time_idx, field_idx, block_id)
        block = self._fetch_decode(key, scope)
        _, length = self._reader.block_entry(*key)
        if length == 0:
            scope.counters.absent_blocks += 1
        scope.counters.record(time_idx, field_idx, block_id, length)
        return block

    def release_prefetched(self) -> None:
        scope = self._scope()
        scope.staged(self.uri).clear()
        if self._fetcher is not None:
            # Drop only the keys *this scope* submitted: another tenant's
            # in-flight fetches on the shared pool must survive our
            # query's end.
            self._fetcher.release(scope.take_inflight(self.uri))

    def close(self) -> None:
        if self._fetcher is not None:
            self._fetcher.close()
        super().close()


class CachedAccess(Access):
    """Cache-in-front-of-anything access layer.

    Hits are served from the shared :class:`BlockCache` without touching
    the inner access (and therefore without paying simulated network
    time); misses are forwarded through the cache's atomic
    :meth:`~repro.idx.cache.BlockCache.get_or_load`, so concurrent
    sessions sharing one cache coalesce simultaneous misses for the same
    block into a single inner fetch.
    """

    def __init__(self, inner: Access, cache: Optional[BlockCache] = None) -> None:
        super().__init__()
        self.inner = inner
        self.header = inner.header
        self.cache = cache if cache is not None else BlockCache()

    def read_block(self, time_idx: int, field_idx: int, block_id: int) -> np.ndarray:
        key = (self.inner.uri, time_idx, field_idx, block_id)
        loaded: List[np.ndarray] = []

        def load() -> np.ndarray:
            block = self.inner.read_block(time_idx, field_idx, block_id)
            loaded.append(block)
            return block

        block = self.cache.get_or_load(key, load)
        # Bytes are charged only when this call caused the inner read;
        # hits and coalesced waits cost nothing.
        self.counters.record(
            time_idx, field_idx, block_id, int(block.nbytes) if loaded else 0
        )
        return block

    def prefetch(self, time_idx: int, field_idx: int, block_ids) -> None:
        # Announce-then-prefetch: claim the cache-missing blocks so that
        # tenants cold-starting together split the fetch instead of each
        # pulling the whole batch into a private stage.  Blocks another
        # tenant already claimed are picked up at read time through
        # get_or_load's miss coalescing.
        wanted = {
            int(bid): (self.inner.uri, time_idx, field_idx, int(bid))
            for bid in block_ids
        }
        claimed = set(self.cache.announce(wanted.values()))
        if claimed:
            self._scope().inflight(self.uri).update(claimed)
            self.inner.prefetch(
                time_idx, field_idx, [bid for bid, key in wanted.items() if key in claimed]
            )

    def release_prefetched(self) -> None:
        self.cache.retract(self._scope().take_inflight(self.uri))
        self.inner.release_prefetched()

    @property
    def fetcher(self):
        """The inner access's parallel fetcher, or ``None``."""
        return getattr(self.inner, "fetcher", None)

    def codec_byte_histogram(self) -> Dict[str, int]:
        """Per-codec stored bytes of the inner dataset (empty if unknown)."""
        inner = getattr(self.inner, "codec_byte_histogram", None)
        return inner() if inner is not None else {}

    @property
    def uri(self) -> str:
        return f"cached+{self.inner.uri}"

    def close(self) -> None:
        self.inner.close()
