"""Block access layers: local, cached, and remote.

The storage-oblivious query API of the paper (§III-A) "abstracts data
storage and access complexities": a :class:`repro.idx.query.BoxQuery`
only ever calls :meth:`Access.read_block`, so the same query code runs
against

- :class:`LocalAccess` — an IDX file on local disk,
- :class:`RemoteAccess` — any :class:`~repro.idx.idxfile.ByteSource`,
  e.g. an object in the simulated Seal/Dataverse store streamed over a
  modelled network link, and
- :class:`CachedAccess` — any of the above behind a shared
  :class:`~repro.idx.cache.BlockCache`.

Every layer counts blocks and bytes it actually touched, which the
progressive-access and caching benchmarks (C2, C3) report.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.idx.cache import BlockCache
from repro.idx.idxfile import ByteSource, FileByteSource, IdxBinaryReader, IdxHeader

__all__ = ["Access", "AccessCounters", "CachedAccess", "LocalAccess", "RemoteAccess"]


@dataclass
class AccessCounters:
    """I/O accounting for one access layer."""

    blocks_read: int = 0
    bytes_read: int = 0
    absent_blocks: int = 0
    access_log: List[Tuple[int, int, int]] = field(default_factory=list)

    def record(self, time_idx: int, field_idx: int, block_id: int, nbytes: int) -> None:
        self.blocks_read += 1
        self.bytes_read += nbytes
        self.access_log.append((time_idx, field_idx, block_id))


class Access(ABC):
    """Abstract block provider for one IDX dataset."""

    header: IdxHeader

    def __init__(self) -> None:
        self.counters = AccessCounters()

    @abstractmethod
    def read_block(self, time_idx: int, field_idx: int, block_id: int) -> np.ndarray:
        """Decoded block (1-D, ``block_size`` samples, HZ order)."""

    def prefetch(self, time_idx: int, field_idx: int, block_ids) -> None:
        """Hint that the given blocks are about to be read.

        Default is a no-op; remote layers override it to pipeline the
        fetches into one round trip (what OpenVisus' async block queue
        does), and the cache layer forwards only the missing ids.
        """

    @property
    def uri(self) -> str:
        """Stable identity used as the cache key prefix."""
        return f"access:{id(self)}"

    def close(self) -> None:  # pragma: no cover - default no-op
        pass


class _ReaderAccess(Access):
    """Shared implementation over an :class:`IdxBinaryReader`."""

    def __init__(self, reader: IdxBinaryReader, uri: str) -> None:
        super().__init__()
        self._reader = reader
        self._uri = uri
        self.header = reader.header
        self.layout = reader.layout

    def read_block(self, time_idx: int, field_idx: int, block_id: int) -> np.ndarray:
        offset, length = self._reader.block_entry(time_idx, field_idx, block_id)
        block = self._reader.read_block(time_idx, field_idx, block_id)
        if length == 0:
            self.counters.absent_blocks += 1
        self.counters.record(time_idx, field_idx, block_id, length)
        return block

    def stored_bytes(self) -> int:
        return self._reader.stored_bytes()

    @property
    def uri(self) -> str:
        return self._uri


class LocalAccess(_ReaderAccess):
    """Blocks from an IDX file on local disk."""

    def __init__(self, path: str) -> None:
        self._source = FileByteSource(path)
        super().__init__(IdxBinaryReader(self._source), uri=f"file://{path}")
        self.path = path

    def close(self) -> None:
        self._source.close()


class RemoteAccess(_ReaderAccess):
    """Blocks streamed from an arbitrary byte source (e.g. cloud object).

    The source decides what "remote" costs: the storage package wraps
    object blobs in a latency/bandwidth-modelled source, so every block
    fetch pays the simulated round trip exactly like a ranged HTTP GET
    against Seal Storage in the tutorial.

    :meth:`prefetch` pipelines multiple block fetches into a single
    round trip when the source supports ``read_many`` (Seal does),
    mirroring OpenVisus' asynchronous block queue.
    """

    def __init__(self, source: ByteSource, uri: str = "remote://object") -> None:
        super().__init__(IdxBinaryReader(source), uri=uri)
        self._source = source
        self._staged: Dict[Tuple[int, int, int], np.ndarray] = {}

    def prefetch(self, time_idx: int, field_idx: int, block_ids) -> None:
        read_many = getattr(self._source, "read_many", None)
        if read_many is None:
            return  # plain sources fetch per block; nothing to pipeline
        requested = {(time_idx, field_idx, int(bid)) for bid in block_ids}
        # Staged blocks live for the duration of one query: every prefetch
        # opens a new query scope, so earlier fetches are dropped.
        # Re-serving old fetches for free is the cache layer's job, not
        # the remote layer's.
        self._staged.clear()
        wanted: List[Tuple[int, int, int]] = []
        ranges: List[Tuple[int, int]] = []
        for key in sorted(requested):
            if key in self._staged:
                continue
            offset, length = self._reader.block_entry(*key)
            if length == 0:
                continue  # absent blocks decode locally for free
            wanted.append(key)
            ranges.append((offset, length))
        if not ranges:
            return
        blobs = read_many(ranges)
        codec = self.header.codec_obj()
        for key, blob in zip(wanted, blobs):
            dtype = self.header.field_dtype(key[1])
            self._staged[key] = codec.decode_array(blob, dtype, (self.layout.block_size,))

    def read_block(self, time_idx: int, field_idx: int, block_id: int) -> np.ndarray:
        staged = self._staged.get((time_idx, field_idx, block_id))
        if staged is not None:
            self.counters.record(time_idx, field_idx, block_id, int(staged.nbytes))
            return staged
        return super().read_block(time_idx, field_idx, block_id)


class CachedAccess(Access):
    """Cache-in-front-of-anything access layer.

    Hits are served from the shared :class:`BlockCache` without touching
    the inner access (and therefore without paying simulated network
    time); misses are forwarded and the decoded block is retained.
    """

    def __init__(self, inner: Access, cache: Optional[BlockCache] = None) -> None:
        super().__init__()
        self.inner = inner
        self.header = inner.header
        self.cache = cache if cache is not None else BlockCache()

    def read_block(self, time_idx: int, field_idx: int, block_id: int) -> np.ndarray:
        key = (self.inner.uri, time_idx, field_idx, block_id)
        cached = self.cache.get(key)
        if cached is not None:
            self.counters.record(time_idx, field_idx, block_id, 0)
            return cached
        block = self.inner.read_block(time_idx, field_idx, block_id)
        self.cache.put(key, block)
        self.counters.record(time_idx, field_idx, block_id, int(block.nbytes))
        return block

    def prefetch(self, time_idx: int, field_idx: int, block_ids) -> None:
        missing = [
            bid
            for bid in block_ids
            if not self.cache.contains((self.inner.uri, time_idx, field_idx, int(bid)))
        ]
        if missing:
            self.inner.prefetch(time_idx, field_idx, missing)

    @property
    def uri(self) -> str:
        return f"cached+{self.inner.uri}"

    def close(self) -> None:
        self.inner.close()
