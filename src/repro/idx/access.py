"""Block access layers: local, cached, and remote.

The storage-oblivious query API of the paper (§III-A) "abstracts data
storage and access complexities": a :class:`repro.idx.query.BoxQuery`
only ever calls :meth:`Access.read_block`, so the same query code runs
against

- :class:`LocalAccess` — an IDX file on local disk,
- :class:`RemoteAccess` — any :class:`~repro.idx.idxfile.ByteSource`,
  e.g. an object in the simulated Seal/Dataverse store streamed over a
  modelled network link, and
- :class:`CachedAccess` — any of the above behind a shared
  :class:`~repro.idx.cache.BlockCache`.

Every layer counts blocks and bytes it actually touched, which the
progressive-access and caching benchmarks (C2, C3) report.
``bytes_read`` always counts *stored* (encoded) bytes for remote/local
layers, whether a block arrived via :meth:`Access.prefetch` or a direct
read, so pipelined and serial sessions report identical traffic.

``RemoteAccess(workers=N)`` with ``N >= 1`` routes prefetch through a
:class:`~repro.idx.parallel.ParallelFetcher`: block fetch+decode overlap
across a bounded thread pool, ``read_block`` joins in-flight fetches
instead of re-issuing them, and simulated latency is charged as the
slowest worker's total (see :mod:`repro.network.clock`).  ``workers=1``
is the exact serial baseline with identical results.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.faults.breaker import CircuitBreaker
from repro.faults.errors import CorruptPayloadError
from repro.faults.retry import RetryPolicy, RetryStats
from repro.idx.cache import BlockCache
from repro.idx.idxfile import ByteSource, FileByteSource, IdxBinaryReader, IdxHeader
from repro.idx.parallel import ParallelFetcher
from repro.util.hashing import content_digest

__all__ = ["Access", "AccessCounters", "CachedAccess", "LocalAccess", "RemoteAccess"]

#: Default bound on ``AccessCounters.access_log`` length.
DEFAULT_LOG_LIMIT = 4096


@dataclass
class AccessCounters:
    """I/O accounting for one access layer.

    ``access_log`` is capped at ``log_limit`` entries so long-running
    dashboard sessions don't grow memory without bound; once the cap is
    hit, new entries are dropped and ``truncated`` flips to True while
    the scalar counters keep counting exactly.
    """

    blocks_read: int = 0
    bytes_read: int = 0
    absent_blocks: int = 0
    access_log: List[Tuple[int, int, int]] = field(default_factory=list)
    log_limit: int = DEFAULT_LOG_LIMIT
    truncated: bool = False

    def record(self, time_idx: int, field_idx: int, block_id: int, nbytes: int) -> None:
        self.blocks_read += 1
        self.bytes_read += nbytes
        if len(self.access_log) < self.log_limit:
            self.access_log.append((time_idx, field_idx, block_id))
        else:
            self.truncated = True

    def snapshot(self) -> Tuple[int, int, int]:
        """Checkpoint ``(blocks_read, bytes_read, log length)``.

        Subtract two snapshots to account for one step of a larger
        interaction — the progressive-refinement tests and benchmarks use
        this to assert each refinement reads only the blocks new at its
        level.
        """
        return (self.blocks_read, self.bytes_read, len(self.access_log))

    def blocks_since(self, snap: Tuple[int, int, int]) -> List[Tuple[int, int, int]]:
        """Block keys recorded after ``snap`` (exact while the log is uncapped).

        Raises ``RuntimeError`` once the capped log has dropped entries,
        rather than silently under-reporting.
        """
        if self.truncated:
            raise RuntimeError("access_log was truncated; per-step keys unavailable")
        return list(self.access_log[snap[2] :])


class Access(ABC):
    """Abstract block provider for one IDX dataset."""

    header: IdxHeader

    def __init__(self) -> None:
        self.counters = AccessCounters()

    @abstractmethod
    def read_block(self, time_idx: int, field_idx: int, block_id: int) -> np.ndarray:
        """Decoded block (1-D, ``block_size`` samples, HZ order)."""

    def prefetch(self, time_idx: int, field_idx: int, block_ids) -> None:
        """Hint that the given blocks are about to be read.

        Default is a no-op; remote layers override it to pipeline the
        fetches — into one round trip (what OpenVisus' async block queue
        does) or across a worker pool — and the cache layer forwards only
        the missing ids.
        """

    def release_prefetched(self) -> None:
        """Drop per-query prefetch state (staged blocks, futures table).

        Called by :meth:`repro.idx.query.BoxQuery.execute` when a query
        finishes so prefetched blocks don't outlive the query that asked
        for them.  Re-serving old fetches for free is the cache layer's
        job, not the remote layer's.  Default is a no-op.
        """

    @property
    def uri(self) -> str:
        """Stable identity used as the cache key prefix."""
        return f"access:{id(self)}"

    def close(self) -> None:  # pragma: no cover - default no-op
        pass


class _ReaderAccess(Access):
    """Shared implementation over an :class:`IdxBinaryReader`."""

    def __init__(self, reader: IdxBinaryReader, uri: str) -> None:
        super().__init__()
        self._reader = reader
        self._uri = uri
        self.header = reader.header
        self.layout = reader.layout

    def read_block(self, time_idx: int, field_idx: int, block_id: int) -> np.ndarray:
        offset, length = self._reader.block_entry(time_idx, field_idx, block_id)
        block = self._reader.read_block(time_idx, field_idx, block_id)
        if length == 0:
            self.counters.absent_blocks += 1
        self.counters.record(time_idx, field_idx, block_id, length)
        return block

    def stored_bytes(self) -> int:
        return self._reader.stored_bytes()

    @property
    def uri(self) -> str:
        return self._uri


class LocalAccess(_ReaderAccess):
    """Blocks from an IDX file on local disk."""

    def __init__(self, path: str) -> None:
        self._source = FileByteSource(path)
        super().__init__(IdxBinaryReader(self._source), uri=f"file://{path}")
        self.path = path

    def close(self) -> None:
        self._source.close()


class RemoteAccess(_ReaderAccess):
    """Blocks streamed from an arbitrary byte source (e.g. cloud object).

    The source decides what "remote" costs: the storage package wraps
    object blobs in a latency/bandwidth-modelled source, so every block
    fetch pays the simulated round trip exactly like a ranged HTTP GET
    against Seal Storage in the tutorial.

    :meth:`prefetch` pipelines multiple block fetches.  With the default
    ``workers=0`` and a source that supports ``read_many`` (Seal does),
    the whole batch becomes a single multi-range round trip.  With
    ``workers >= 1`` each block is fetched and decoded as its own task on
    a bounded thread pool (OpenVisus' asynchronous block queue):
    per-block round trips overlap each other *and* the codec decode, and
    :meth:`read_block` waits on the in-flight future instead of
    re-issuing the fetch.  ``workers=1`` is the serial baseline of that
    pipeline — identical code path and results, latencies summed.
    """

    def __init__(
        self,
        source: ByteSource,
        uri: str = "remote://object",
        *,
        workers: int = 0,
        clock=None,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
    ) -> None:
        super().__init__(IdxBinaryReader(source), uri=uri)
        self._source = source
        # key -> (decoded block, stored payload bytes): one query's stage.
        self._staged: Dict[Tuple[int, int, int], Tuple[np.ndarray, int]] = {}
        if clock is None:
            clock = getattr(source, "clock", None)
        self._clock = clock
        self._retry = retry
        self._breaker = breaker
        self.retry_stats = RetryStats()
        # Lazily imported key avoids a hard dependency on verify at call
        # time; the manifest is optional header metadata.
        from repro.idx.verify import MANIFEST_KEY

        manifest = self.header.metadata.get(MANIFEST_KEY)
        self._manifest = manifest if isinstance(manifest, dict) else None
        self._codec = self.header.codec_obj()
        self._fetcher: Optional[ParallelFetcher] = None
        if workers:
            self._fetcher = ParallelFetcher(
                self._fetch_decode, workers=int(workers), clock=clock
            )

    @property
    def fetcher(self) -> Optional[ParallelFetcher]:
        """The parallel pipeline, if ``workers >= 1`` was requested."""
        return self._fetcher

    @property
    def retry_policy(self) -> Optional[RetryPolicy]:
        return self._retry

    @property
    def breaker(self) -> Optional[CircuitBreaker]:
        return self._breaker

    def _verified_fetch(self, key: Tuple[int, int, int]) -> np.ndarray:
        """One attempt: ranged fetch + integrity check + codec decode.

        Partial reads (payload shorter than the table entry) and payloads
        whose checksum disagrees with the dataset's embedded block
        manifest raise :class:`CorruptPayloadError` *before* decode, so
        the retry policy re-fetches them instead of caching garbage.
        """
        time_idx, field_idx, block_id = key
        offset, length = self._reader.block_entry(time_idx, field_idx, block_id)
        dtype = self.header.field_dtype(field_idx)
        if length == 0:
            return np.full(self.layout.block_size, self.header.fill_value, dtype=dtype)
        payload = self._source.read_at(offset, length)
        if len(payload) != length:
            raise CorruptPayloadError(
                f"partial payload for block {key}: got {len(payload)} of {length} B"
            )
        if self._manifest is not None:
            expected = self._manifest.get(f"{time_idx}/{field_idx}/{block_id}")
            if expected is not None and content_digest(payload, length=8) != expected:
                raise CorruptPayloadError(f"checksum mismatch for block {key}")
        return self._codec.decode_array(payload, dtype, (self.layout.block_size,))

    def _fetch_decode(self, key: Tuple[int, int, int]) -> np.ndarray:
        """Worker task: ranged fetch + codec decode of one block.

        With a retry policy installed the fetch is verified and retried
        with backoff (sleeps charged to the simulated clock); the per-key
        circuit breaker gates the whole cycle and is told the outcome.
        """
        if self._retry is None:
            return self._reader.read_block(*key)
        if self._breaker is not None:
            self._breaker.check(key)
        try:
            block = self._retry.run(
                lambda: self._verified_fetch(key),
                token=key,
                clock=self._clock,
                stats=self.retry_stats,
            )
        except Exception:
            if self._breaker is not None:
                self._breaker.record_failure(key)
            raise
        if self._breaker is not None:
            self._breaker.record_success(key)
        return block

    def prefetch(self, time_idx: int, field_idx: int, block_ids) -> None:
        requested = {(time_idx, field_idx, int(bid)) for bid in block_ids}
        wanted: List[Tuple[int, int, int]] = []
        ranges: List[Tuple[int, int]] = []
        for key in sorted(requested):
            if key in self._staged:
                continue  # already fetched earlier in this query
            offset, length = self._reader.block_entry(*key)
            if length == 0:
                continue  # absent blocks decode locally for free
            wanted.append(key)
            ranges.append((offset, length))
        if not wanted:
            return
        if self._fetcher is not None:
            self._fetcher.prefetch(wanted)
            return
        if self._retry is not None:
            # Each block must be its own retry scope (per-key attempt
            # accounting, per-key breaker): a multi-range round trip would
            # fail wholesale on one bad range and re-bill every good one.
            # read_block fetches each block through the retrying path.
            return
        read_many = getattr(self._source, "read_many", None)
        if read_many is None:
            return  # plain sources fetch per block; nothing to pipeline
        blobs = read_many(ranges)
        codec = self.header.codec_obj()
        for key, (offset, length), blob in zip(wanted, ranges, blobs):
            dtype = self.header.field_dtype(key[1])
            decoded = codec.decode_array(blob, dtype, (self.layout.block_size,))
            self._staged[key] = (decoded, length)

    def read_block(self, time_idx: int, field_idx: int, block_id: int) -> np.ndarray:
        # Normalise to builtin ints: the key doubles as the retry jitter
        # token and the breaker key, both hashed via str(), where numpy
        # integer scalars render differently from Python ints.
        key = (int(time_idx), int(field_idx), int(block_id))
        time_idx, field_idx, block_id = key
        staged = self._staged.get(key)
        if staged is not None:
            block, stored_length = staged
            # Stored (encoded) bytes, the same quantity the direct path
            # records — not the decoded array size.
            self.counters.record(time_idx, field_idx, block_id, stored_length)
            return block
        if self._fetcher is not None:
            block = self._fetcher.get(key)
            if block is not None:
                _, length = self._reader.block_entry(*key)
                self.counters.record(time_idx, field_idx, block_id, length)
                return block
        if self._retry is None:
            return super().read_block(time_idx, field_idx, block_id)
        block = self._fetch_decode(key)
        _, length = self._reader.block_entry(*key)
        if length == 0:
            self.counters.absent_blocks += 1
        self.counters.record(time_idx, field_idx, block_id, length)
        return block

    def release_prefetched(self) -> None:
        self._staged.clear()
        if self._fetcher is not None:
            self._fetcher.release()

    def close(self) -> None:
        if self._fetcher is not None:
            self._fetcher.close()
        super().close()


class CachedAccess(Access):
    """Cache-in-front-of-anything access layer.

    Hits are served from the shared :class:`BlockCache` without touching
    the inner access (and therefore without paying simulated network
    time); misses are forwarded through the cache's atomic
    :meth:`~repro.idx.cache.BlockCache.get_or_load`, so concurrent
    sessions sharing one cache coalesce simultaneous misses for the same
    block into a single inner fetch.
    """

    def __init__(self, inner: Access, cache: Optional[BlockCache] = None) -> None:
        super().__init__()
        self.inner = inner
        self.header = inner.header
        self.cache = cache if cache is not None else BlockCache()

    def read_block(self, time_idx: int, field_idx: int, block_id: int) -> np.ndarray:
        key = (self.inner.uri, time_idx, field_idx, block_id)
        loaded: List[np.ndarray] = []

        def load() -> np.ndarray:
            block = self.inner.read_block(time_idx, field_idx, block_id)
            loaded.append(block)
            return block

        block = self.cache.get_or_load(key, load)
        # Bytes are charged only when this call caused the inner read;
        # hits and coalesced waits cost nothing.
        self.counters.record(
            time_idx, field_idx, block_id, int(block.nbytes) if loaded else 0
        )
        return block

    def prefetch(self, time_idx: int, field_idx: int, block_ids) -> None:
        missing = [
            bid
            for bid in block_ids
            if not self.cache.contains((self.inner.uri, time_idx, field_idx, int(bid)))
        ]
        if missing:
            self.inner.prefetch(time_idx, field_idx, missing)

    def release_prefetched(self) -> None:
        self.inner.release_prefetched()

    @property
    def fetcher(self):
        """The inner access's parallel fetcher, or ``None``."""
        return getattr(self.inner, "fetcher", None)

    @property
    def uri(self) -> str:
        return f"cached+{self.inner.uri}"

    def close(self) -> None:
        self.inner.close()
