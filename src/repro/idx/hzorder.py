"""Vectorized Z-order and HZ-order address arithmetic.

The HZ ("hierarchical Z") order is the key data reorganisation of the
ViSUS framework (§III-A): samples are assigned addresses so that

- all samples of resolution level ``h`` occupy the contiguous address
  range ``[2**(h-1), 2**h)`` (level 0 is address 0), and
- within a level, addresses follow Z-order, keeping spatial neighbours
  adjacent.

Definitions (with ``maxh`` bits in the bitmask):

- ``z``: bits of the sample coordinates interleaved per the bitmask;
  bitmask position 1 (coarsest split) is the *most* significant z bit.
- ``hz = (z | 2**maxh) >> (ntz(z) + 1)`` where ``ntz`` is the number of
  trailing zero bits (``ntz(0) := maxh``).  The level of a sample is
  ``maxh - ntz(z)``.

Everything operates on ``uint64`` NumPy arrays with no per-sample Python
loops; per-bit loops are bounded by ``maxh <= 62``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.idx.bitmask import Bitmask
from repro.util.arrays import Box, ceil_div

__all__ = ["HzOrder"]

_U64 = np.uint64
_POW2 = (np.uint64(1) << np.arange(64, dtype=np.uint64)).astype(np.uint64)


def _bit_length_u64(values: np.ndarray) -> np.ndarray:
    """Exact per-element bit length of a uint64 array (0 -> 0)."""
    return np.searchsorted(_POW2, values, side="right").astype(np.int64)


class HzOrder:
    """Address transforms for one bitmask."""

    def __init__(self, bitmask: Bitmask) -> None:
        self.bitmask = bitmask
        self.maxh = bitmask.maxh
        if self.maxh > 62:
            raise ValueError(f"maxh={self.maxh} exceeds uint64 addressing budget")
        # Per-axis interleave tables: arrays of (coord_bit, z_shift).
        self._tables: Tuple[Tuple[np.ndarray, np.ndarray], ...] = tuple(
            (
                np.array([cb for cb, _ in bitmask.axis_bit_positions(a)], dtype=np.uint64),
                np.array([zs for _, zs in bitmask.axis_bit_positions(a)], dtype=np.uint64),
            )
            for a in range(bitmask.ndim)
        )

    # -- Z interleave ------------------------------------------------------

    def axis_z_component(self, axis: int, coords: np.ndarray) -> np.ndarray:
        """Partial z address contributed by one axis' coordinate bits.

        The full z of a point is the bitwise OR of its per-axis
        components, so box queries compute 1-D components per axis and
        combine them with a broadcasted OR (never materialising the
        coordinate meshgrid).
        """
        coord_bits, z_shifts = self._tables[axis]
        c = np.asarray(coords, dtype=np.uint64)
        out = np.zeros_like(c)
        one = _U64(1)
        for cb, zs in zip(coord_bits, z_shifts):
            out |= ((c >> cb) & one) << zs
        return out

    def interleave(self, coords: Sequence[np.ndarray]) -> np.ndarray:
        """Z address of points given per-axis coordinate arrays (same shape)."""
        if len(coords) != self.bitmask.ndim:
            raise ValueError(f"expected {self.bitmask.ndim} coordinate arrays")
        z = self.axis_z_component(0, coords[0]).copy()
        for axis in range(1, self.bitmask.ndim):
            z |= self.axis_z_component(axis, coords[axis])
        return z

    def deinterleave(self, z: np.ndarray) -> Tuple[np.ndarray, ...]:
        """Recover per-axis coordinates from Z addresses."""
        z = np.asarray(z, dtype=np.uint64)
        one = _U64(1)
        coords = []
        for coord_bits, z_shifts in self._tables:
            c = np.zeros_like(z)
            for cb, zs in zip(coord_bits, z_shifts):
                c |= ((z >> zs) & one) << cb
            coords.append(c.astype(np.int64))
        return tuple(coords)

    # -- HZ transform --------------------------------------------------------

    def hz_from_z(self, z: np.ndarray) -> np.ndarray:
        """General (per-element trailing-zero-count) Z -> HZ transform."""
        z = np.asarray(z, dtype=np.uint64)
        sentinel = _U64(1) << _U64(self.maxh)
        zs = z | sentinel  # makes ntz well-defined for z == 0 as well
        lowest = zs & (~zs + _U64(1))
        ntz = _bit_length_u64(lowest) - 1  # exact: lowest is a power of two
        return zs >> (ntz + 1).astype(np.uint64)

    def z_from_hz(self, hz: np.ndarray) -> np.ndarray:
        """Inverse HZ transform."""
        hz = np.asarray(hz, dtype=np.uint64)
        if hz.size and int(hz.max()) >= (1 << self.maxh):
            raise ValueError("hz address out of range")
        levels = _bit_length_u64(hz)  # 0 for hz==0, else floor(log2)+1
        z = np.zeros_like(hz)
        nz = levels > 0
        if np.any(nz):
            h = levels[nz]
            k = (self.maxh - h).astype(np.uint64)  # trailing zeros of z
            m = hz[nz] - (_U64(1) << (h - 1).astype(np.uint64))
            z[nz] = (m << (k + _U64(1))) | (_U64(1) << k)
        return z

    def level_of_hz(self, hz: np.ndarray) -> np.ndarray:
        """Resolution level of each HZ address (0 for address 0)."""
        return _bit_length_u64(np.asarray(hz, dtype=np.uint64))

    # -- level-wise fast paths ------------------------------------------------

    def level_range(self, h: int) -> Tuple[int, int]:
        """Half-open contiguous HZ range ``[lo, hi)`` occupied by level ``h``."""
        if not 0 <= h <= self.maxh:
            raise ValueError(f"level {h} out of range")
        if h == 0:
            return (0, 1)
        return (1 << (h - 1), 1 << h)

    def hz_for_level(self, h: int, z: np.ndarray) -> np.ndarray:
        """HZ of addresses known to sit exactly at level ``h``.

        For level-``h`` samples ``ntz(z) = maxh - h`` is constant, so the
        transform reduces to one shift and one OR — this is the hot path
        used by every box query.
        """
        z = np.asarray(z, dtype=np.uint64)
        if h == 0:
            return np.zeros_like(z)
        shift = _U64(self.maxh - h + 1)
        return (z >> shift) | (_U64(1) << _U64(h - 1))

    def z_for_level(self, h: int, hz: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`hz_for_level`."""
        hz = np.asarray(hz, dtype=np.uint64)
        if h == 0:
            return np.zeros_like(hz)
        k = _U64(self.maxh - h)
        m = hz - (_U64(1) << _U64(h - 1))
        return (m << (k + _U64(1))) | (_U64(1) << k)

    # -- level-wise scatter/gather planning ------------------------------------

    def level_plan(
        self, h: int, box: Box
    ) -> Optional[Tuple[List[np.ndarray], np.ndarray]]:
        """Per-axis lattice coords of level-``h`` delta samples inside ``box``
        and their flat HZ addresses.

        This is the one shared planner behind every HZ scatter and gather:
        ``IdxDataset.write`` / ``write_region`` use it to place samples into
        the HZ buffer, and ``BoxQuery.execute`` uses it to locate the samples
        to fetch.  The per-axis coordinates are combined into Z addresses by
        a broadcasted OR of 1-D partial components, so the coordinate
        meshgrid is never materialised; ``hz`` is returned raveled in the
        same C order as ``arr[np.ix_(*coords)].ravel()``.

        Returns ``None`` when the box contains no level-``h`` delta samples.
        """
        phase, step = self.bitmask.delta_lattice(h)
        coords: List[np.ndarray] = []
        for a in range(self.bitmask.ndim):
            lo, hi = box.lo[a], box.hi[a]
            first = phase[a] if lo <= phase[a] else phase[a] + ceil_div(lo - phase[a], step[a]) * step[a]
            c = np.arange(first, hi, step[a], dtype=np.int64)
            if c.size == 0:
                return None
            coords.append(c)
        z = self.axis_z_component(0, coords[0])
        z = z.reshape(z.shape + (1,) * (self.bitmask.ndim - 1))
        for a in range(1, self.bitmask.ndim):
            comp = self.axis_z_component(a, coords[a])
            comp = comp.reshape((1,) * a + comp.shape + (1,) * (self.bitmask.ndim - 1 - a))
            z = z | comp
        return coords, self.hz_for_level(h, z.ravel())

    # -- point-level conveniences ---------------------------------------------

    def point_to_hz(self, coords: Sequence[np.ndarray]) -> np.ndarray:
        """HZ addresses for arbitrary points (any mix of levels)."""
        return self.hz_from_z(self.interleave(coords))

    def hz_to_point(self, hz: np.ndarray) -> Tuple[np.ndarray, ...]:
        """Coordinates of arbitrary HZ addresses."""
        return self.deinterleave(self.z_from_hz(hz))

    @property
    def total_samples(self) -> int:
        """Number of addresses in the pow2 domain (``2**maxh``)."""
        return 1 << self.maxh
