"""Vectorized Z-order and HZ-order address arithmetic.

The HZ ("hierarchical Z") order is the key data reorganisation of the
ViSUS framework (§III-A): samples are assigned addresses so that

- all samples of resolution level ``h`` occupy the contiguous address
  range ``[2**(h-1), 2**h)`` (level 0 is address 0), and
- within a level, addresses follow Z-order, keeping spatial neighbours
  adjacent.

Definitions (with ``maxh`` bits in the bitmask):

- ``z``: bits of the sample coordinates interleaved per the bitmask;
  bitmask position 1 (coarsest split) is the *most* significant z bit.
- ``hz = (z | 2**maxh) >> (ntz(z) + 1)`` where ``ntz`` is the number of
  trailing zero bits (``ntz(0) := maxh``).  The level of a sample is
  ``maxh - ntz(z)``.

Everything operates on ``uint64`` NumPy arrays with no per-sample Python
loops; per-bit loops are bounded by ``maxh <= 62``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.idx.bitmask import Bitmask
from repro.idx.cache import CacheStats
from repro.util.arrays import Box, ceil_div
from repro.util.units import parse_bytes

__all__ = ["HzOrder", "PLAN_CACHE", "PlanCache"]

_U64 = np.uint64
_POW2 = (np.uint64(1) << np.arange(64, dtype=np.uint64)).astype(np.uint64)


def _bit_length_u64(values: np.ndarray) -> np.ndarray:
    """Exact per-element bit length of a uint64 array (0 -> 0)."""
    return np.searchsorted(_POW2, values, side="right").astype(np.int64)


#: Cached value of one ``level_plan`` call (``None`` when the box holds no
#: delta samples at that level).  The cache itself accepts any nested
#: tuple/list structure of NumPy arrays (and scalars) as a plan value —
#: the ML batch planner stores fused per-window plans beside the level
#: lattices (see :mod:`repro.ml.planner`).
Plan = Optional[Tuple[List[np.ndarray], np.ndarray]]

#: Cache key.  ``level_plan`` uses (bitmask pattern, level, box.lo,
#: box.hi); other planners namespace their keys with a distinct leading
#: tag so one process-wide cache serves every plan family.
PlanKey = Tuple


def _walk_arrays(value) -> "Iterator[np.ndarray]":
    """Yield every ndarray inside an arbitrarily nested plan value."""
    if isinstance(value, np.ndarray):
        yield value
    elif isinstance(value, (tuple, list)):
        for item in value:
            yield from _walk_arrays(item)


class PlanCache:
    """Byte-bounded LRU of gather/scatter plans keyed by (bitmask, box, …).

    Dashboard interactions re-issue the same (box, level) queries on
    every slider tick or pan step, and each :class:`BoxQuery` builds a
    fresh :class:`HzOrder`; without a shared cache every tick re-derives
    the same delta-lattice coordinates and HZ addresses.  The cache is
    keyed by bitmask pattern so any number of datasets and sessions can
    share the process-wide instance (:data:`PLAN_CACHE`).

    Values are arbitrary nested tuples/lists of NumPy arrays: besides
    the per-level lattices of :meth:`HzOrder.level_plan`, the ML batch
    planner (:mod:`repro.ml.planner`) memoises whole fused window plans —
    level lattices plus block-grouped sort order — under its own key
    namespace, so an epoch that revisits a window never re-sorts it.

    Cached plans are shared, so their arrays are marked read-only before
    insertion; consumers only ever index with them.  Hit/miss/eviction
    accounting reuses :class:`~repro.idx.cache.CacheStats` — the same
    stats object the block cache exposes — so benchmarks report both
    caches through one plumbing.
    """

    def __init__(self, capacity: "int | str" = "32 MiB") -> None:
        self.capacity = parse_bytes(capacity)
        if self.capacity <= 0:
            raise ValueError("plan cache capacity must be positive")
        self._entries: "OrderedDict[PlanKey, Plan]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self.stats = CacheStats()

    @staticmethod
    def _plan_nbytes(plan) -> int:
        if plan is None:
            return 64  # nominal charge for a cached negative result
        nbytes = sum(int(a.nbytes) for a in _walk_arrays(plan))
        return max(64, nbytes)  # array-free plans still pay a nominal charge

    def get(self, key: PlanKey) -> "Plan | ellipsis":
        """Cached plan for ``key``, or ``Ellipsis`` on a miss.

        ``Ellipsis`` is the miss sentinel because ``None`` is a valid
        cached value (an empty level).
        """
        with self._lock:
            if key not in self._entries:
                self.stats.misses += 1
                return ...
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return self._entries[key]

    def put(self, key: PlanKey, plan: Plan) -> Plan:
        """Insert ``plan`` (arrays become read-only); returns it for chaining."""
        for arr in _walk_arrays(plan):
            arr.setflags(write=False)
        nbytes = self._plan_nbytes(plan)
        if nbytes > self.capacity:
            return plan  # one oversized plan would evict everything
        with self._lock:
            if key in self._entries:
                # A cached None is a legitimate entry, so membership (not
                # pop's default) decides whether this is a replacement.
                old_nbytes = self._plan_nbytes(self._entries.pop(key))
                self._bytes -= old_nbytes
                self.stats.replacements += 1
                self.stats.inserted_bytes += nbytes - old_nbytes
            else:
                self.stats.inserted_bytes += nbytes
            self._entries[key] = plan
            self._bytes += nbytes
            while self._bytes > self.capacity:
                _, evicted = self._entries.popitem(last=False)
                evicted_nbytes = self._plan_nbytes(evicted)
                self._bytes -= evicted_nbytes
                self.stats.evictions += 1
                self.stats.evicted_bytes += evicted_nbytes
        return plan

    def clear(self) -> None:
        """Drop every entry (cumulative stats survive, as for BlockCache).

        The dropped volume lands in ``stats.dropped_bytes`` so the
        conservation invariant ``inserted == used + evicted + dropped``
        holds across clears.
        """
        with self._lock:
            self.stats.dropped_bytes += self._bytes
            self._entries.clear()
            self._bytes = 0

    @property
    def used_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        # Racy-but-benign display read, same rationale as BlockCache.__repr__.
        hit_rate = self.stats.hit_rate  # repro-lint: disable=lock-discipline
        return f"PlanCache({len(self)} plans, {self.used_bytes}/{self.capacity} B, hit_rate={hit_rate:.2f})"


#: Process-wide plan cache shared by every :class:`HzOrder` instance.
PLAN_CACHE = PlanCache()


class HzOrder:
    """Address transforms for one bitmask."""

    def __init__(self, bitmask: Bitmask) -> None:
        self.bitmask = bitmask
        self.maxh = bitmask.maxh
        if self.maxh > 62:
            raise ValueError(f"maxh={self.maxh} exceeds uint64 addressing budget")
        # Per-axis interleave tables: arrays of (coord_bit, z_shift).
        self._tables: Tuple[Tuple[np.ndarray, np.ndarray], ...] = tuple(
            (
                np.array([cb for cb, _ in bitmask.axis_bit_positions(a)], dtype=np.uint64),
                np.array([zs for _, zs in bitmask.axis_bit_positions(a)], dtype=np.uint64),
            )
            for a in range(bitmask.ndim)
        )

    # -- Z interleave ------------------------------------------------------

    def axis_z_component(self, axis: int, coords: np.ndarray) -> np.ndarray:
        """Partial z address contributed by one axis' coordinate bits.

        The full z of a point is the bitwise OR of its per-axis
        components, so box queries compute 1-D components per axis and
        combine them with a broadcasted OR (never materialising the
        coordinate meshgrid).
        """
        coord_bits, z_shifts = self._tables[axis]
        c = np.asarray(coords, dtype=np.uint64)
        out = np.zeros_like(c)
        one = _U64(1)
        for cb, zs in zip(coord_bits, z_shifts):
            out |= ((c >> cb) & one) << zs
        return out

    def interleave(self, coords: Sequence[np.ndarray]) -> np.ndarray:
        """Z address of points given per-axis coordinate arrays (same shape)."""
        if len(coords) != self.bitmask.ndim:
            raise ValueError(f"expected {self.bitmask.ndim} coordinate arrays")
        z = self.axis_z_component(0, coords[0]).copy()
        for axis in range(1, self.bitmask.ndim):
            z |= self.axis_z_component(axis, coords[axis])
        return z

    def deinterleave(self, z: np.ndarray) -> Tuple[np.ndarray, ...]:
        """Recover per-axis coordinates from Z addresses."""
        z = np.asarray(z, dtype=np.uint64)
        one = _U64(1)
        coords = []
        for coord_bits, z_shifts in self._tables:
            c = np.zeros_like(z)
            for cb, zs in zip(coord_bits, z_shifts):
                c |= ((z >> zs) & one) << cb
            coords.append(c.astype(np.int64))
        return tuple(coords)

    # -- HZ transform --------------------------------------------------------

    def hz_from_z(self, z: np.ndarray) -> np.ndarray:
        """General (per-element trailing-zero-count) Z -> HZ transform."""
        z = np.asarray(z, dtype=np.uint64)
        sentinel = _U64(1) << _U64(self.maxh)
        zs = z | sentinel  # makes ntz well-defined for z == 0 as well
        lowest = zs & (~zs + _U64(1))
        ntz = _bit_length_u64(lowest) - 1  # exact: lowest is a power of two
        return zs >> (ntz + 1).astype(np.uint64)

    def z_from_hz(self, hz: np.ndarray) -> np.ndarray:
        """Inverse HZ transform."""
        hz = np.asarray(hz, dtype=np.uint64)
        if hz.size and int(hz.max()) >= (1 << self.maxh):
            raise ValueError("hz address out of range")
        levels = _bit_length_u64(hz)  # 0 for hz==0, else floor(log2)+1
        z = np.zeros_like(hz)
        nz = levels > 0
        if np.any(nz):
            h = levels[nz]
            k = (self.maxh - h).astype(np.uint64)  # trailing zeros of z
            m = hz[nz] - (_U64(1) << (h - 1).astype(np.uint64))
            z[nz] = (m << (k + _U64(1))) | (_U64(1) << k)
        return z

    def level_of_hz(self, hz: np.ndarray) -> np.ndarray:
        """Resolution level of each HZ address (0 for address 0)."""
        return _bit_length_u64(np.asarray(hz, dtype=np.uint64))

    # -- level-wise fast paths ------------------------------------------------

    def level_range(self, h: int) -> Tuple[int, int]:
        """Half-open contiguous HZ range ``[lo, hi)`` occupied by level ``h``."""
        if not 0 <= h <= self.maxh:
            raise ValueError(f"level {h} out of range")
        if h == 0:
            return (0, 1)
        return (1 << (h - 1), 1 << h)

    def hz_for_level(self, h: int, z: np.ndarray) -> np.ndarray:
        """HZ of addresses known to sit exactly at level ``h``.

        For level-``h`` samples ``ntz(z) = maxh - h`` is constant, so the
        transform reduces to one shift and one OR — this is the hot path
        used by every box query.
        """
        z = np.asarray(z, dtype=np.uint64)
        if h == 0:
            return np.zeros_like(z)
        shift = _U64(self.maxh - h + 1)
        return (z >> shift) | (_U64(1) << _U64(h - 1))

    def z_for_level(self, h: int, hz: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`hz_for_level`."""
        hz = np.asarray(hz, dtype=np.uint64)
        if h == 0:
            return np.zeros_like(hz)
        k = _U64(self.maxh - h)
        m = hz - (_U64(1) << _U64(h - 1))
        return (m << (k + _U64(1))) | (_U64(1) << k)

    # -- level-wise scatter/gather planning ------------------------------------

    def level_plan(
        self, h: int, box: Box, *, cache: Optional[PlanCache] = PLAN_CACHE
    ) -> Optional[Tuple[List[np.ndarray], np.ndarray]]:
        """Per-axis lattice coords of level-``h`` delta samples inside ``box``
        and their flat HZ addresses.

        This is the one shared planner behind every HZ scatter and gather:
        ``IdxDataset.write`` / ``write_region`` use it to place samples into
        the HZ buffer, and ``BoxQuery.execute`` uses it to locate the samples
        to fetch.  The per-axis coordinates are combined into Z addresses by
        a broadcasted OR of 1-D partial components, so the coordinate
        meshgrid is never materialised; ``hz`` is returned raveled in the
        same C order as ``arr[np.ix_(*coords)].ravel()``.

        Results are memoised in ``cache`` (default: the process-wide
        :data:`PLAN_CACHE`) keyed on (bitmask, level, box), so repeated
        dashboard interactions pay the lattice arithmetic once; cached
        arrays are read-only.  Pass ``cache=None`` to force a fresh
        computation.

        Returns ``None`` when the box contains no level-``h`` delta samples.
        """
        if cache is not None:
            key: PlanKey = (self.bitmask.pattern, h, box.lo, box.hi)
            plan = cache.get(key)
            if plan is not ...:
                return plan
            return cache.put(key, self._compute_level_plan(h, box))
        return self._compute_level_plan(h, box)

    def _compute_level_plan(
        self, h: int, box: Box
    ) -> Optional[Tuple[List[np.ndarray], np.ndarray]]:
        phase, step = self.bitmask.delta_lattice(h)
        coords: List[np.ndarray] = []
        for a in range(self.bitmask.ndim):
            lo, hi = box.lo[a], box.hi[a]
            first = phase[a] if lo <= phase[a] else phase[a] + ceil_div(lo - phase[a], step[a]) * step[a]
            c = np.arange(first, hi, step[a], dtype=np.int64)
            if c.size == 0:
                return None
            coords.append(c)
        z = self.axis_z_component(0, coords[0])
        z = z.reshape(z.shape + (1,) * (self.bitmask.ndim - 1))
        for a in range(1, self.bitmask.ndim):
            comp = self.axis_z_component(a, coords[a])
            comp = comp.reshape((1,) * a + comp.shape + (1,) * (self.bitmask.ndim - 1 - a))
            z = z | comp
        return coords, self.hz_for_level(h, z.ravel())

    # -- point-level conveniences ---------------------------------------------

    def point_to_hz(self, coords: Sequence[np.ndarray]) -> np.ndarray:
        """HZ addresses for arbitrary points (any mix of levels)."""
        return self.hz_from_z(self.interleave(coords))

    def hz_to_point(self, hz: np.ndarray) -> Tuple[np.ndarray, ...]:
        """Coordinates of arbitrary HZ addresses."""
        return self.deinterleave(self.z_from_hz(hz))

    @property
    def total_samples(self) -> int:
        """Number of addresses in the pow2 domain (``2**maxh``)."""
        return 1 << self.maxh
