"""Integrity verification of IDX containers.

"Building Trust in Earth Science Findings through Data Traceability"
(ref. [16]) is part of this group's program: after data crosses clouds
and caches, readers need to prove bytes are intact.  At finalize time
the dataset embeds a per-block checksum manifest in its header
metadata; :func:`verify_dataset` re-reads every stored block and
reports tampering, corruption, or truncation — without decoding, so
verification is cheap ranged I/O.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.idx.idxfile import ByteSource, FileByteSource, IdxBinaryReader, IdxError
from repro.util.hashing import content_digest

__all__ = ["VerificationReport", "checksum_manifest", "verify_dataset"]

#: Header-metadata key holding the manifest.
MANIFEST_KEY = "block_checksums"


def _block_key(time_idx: int, field_idx: int, block_id: int) -> str:
    return f"{time_idx}/{field_idx}/{block_id}"


def checksum_manifest(blocks: Dict[Tuple[int, int, int], bytes]) -> Dict[str, str]:
    """Checksums of encoded block payloads, keyed ``"t/f/b"``."""
    return {
        _block_key(*key): content_digest(payload, length=8)
        for key, payload in blocks.items()
    }


@dataclass
class VerificationReport:
    """Outcome of one integrity pass."""

    blocks_checked: int = 0
    corrupted: List[str] = field(default_factory=list)
    missing_from_manifest: List[str] = field(default_factory=list)
    missing_from_file: List[str] = field(default_factory=list)
    has_manifest: bool = True

    @property
    def ok(self) -> bool:
        return (
            self.has_manifest
            and not self.corrupted
            and not self.missing_from_manifest
            and not self.missing_from_file
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.ok:
            return f"OK ({self.blocks_checked} blocks verified)"
        problems = []
        if not self.has_manifest:
            problems.append("no checksum manifest")
        if self.corrupted:
            problems.append(f"{len(self.corrupted)} corrupted")
        if self.missing_from_manifest:
            problems.append(f"{len(self.missing_from_manifest)} unmanifested")
        if self.missing_from_file:
            problems.append(f"{len(self.missing_from_file)} missing")
        return "FAILED: " + ", ".join(problems)


def verify_dataset(path_or_source: "str | ByteSource") -> VerificationReport:
    """Re-checksum every stored block against the embedded manifest.

    Works over any byte source, so remote (Seal-hosted) datasets can be
    verified in place with ranged reads.
    """
    source = (
        FileByteSource(path_or_source)
        if isinstance(path_or_source, str)
        else path_or_source
    )
    reader = IdxBinaryReader(source)
    manifest = reader.header.metadata.get(MANIFEST_KEY)
    report = VerificationReport(has_manifest=manifest is not None)
    if manifest is None:
        return report

    seen = set()
    n_time = len(reader.header.timesteps)
    n_field = len(reader.header.fields)
    for t in range(n_time):
        for f in range(n_field):
            for b in reader.present_blocks(t, f):
                key = _block_key(t, f, int(b))
                seen.add(key)
                expected = manifest.get(key)
                if expected is None:
                    report.missing_from_manifest.append(key)
                    continue
                offset, length = reader.block_entry(t, f, int(b))
                try:
                    payload = source.read_at(offset, length)
                except IdxError:
                    report.corrupted.append(key)
                    continue
                report.blocks_checked += 1
                if content_digest(payload, length=8) != expected:
                    report.corrupted.append(key)

    report.missing_from_file = sorted(set(manifest) - seen)
    return report
