"""Concurrent block fetch/decode pipeline for remote access layers.

The paper's interactivity story (§III-A) rests on OpenVisus streaming
blocks *asynchronously* while the dashboard renders.  This module is the
reproduction's analogue of that async block queue: a
:class:`ParallelFetcher` services :meth:`~repro.idx.access.Access.prefetch`
hints through a bounded :class:`~concurrent.futures.ThreadPoolExecutor`,
overlapping network fetch and codec decode across blocks, while an
in-flight futures table lets ``read_block`` wait on a pending fetch
instead of re-issuing it.

Simulated time composes correctly with real threads: each prefetch batch
opens a :meth:`~repro.network.clock.SimClock.concurrent` region, worker
charges pool per thread, and the region closes — advancing the clock by
the slowest worker's total — when the last block of the batch lands.  A
pool of one worker is the exact serial baseline: same code path, same
decoded bytes, latencies summed instead of overlapped.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Iterable, Optional, Tuple

import numpy as np

from repro.network.clock import SimClock

__all__ = ["FetcherStats", "ParallelFetcher"]

Key = Tuple[Hashable, ...]


@dataclass
class FetcherStats:
    """Cumulative pipeline counters."""

    submitted: int = 0
    completed: int = 0
    coalesced: int = 0  # prefetch requests already in flight
    waited: int = 0  # read-side waits on a pending fetch
    batches: int = 0
    resubmitted: int = 0  # failed futures replaced by a fresh fetch

    @property
    def in_flight(self) -> int:
        return self.submitted - self.completed


class ParallelFetcher:
    """Bounded-worker fetch/decode pool with request coalescing.

    ``loader`` is the per-block work — fetch the encoded payload and
    decode it — and runs on pool threads.  The futures table guarantees
    each key is loaded at most once per query: a second ``prefetch`` of
    an in-flight key is a no-op, and :meth:`get` joins the pending fetch.
    """

    def __init__(
        self,
        loader: Callable[[Key], np.ndarray],
        *,
        workers: int = 4,
        clock: Optional[SimClock] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self._loader = loader
        self.workers = workers
        self._clock = clock
        self._pool = ThreadPoolExecutor(max_workers=workers, thread_name_prefix="idx-fetch")
        self._lock = threading.Lock()
        self._inflight: "Dict[Key, Future]" = {}
        self._next_lane = 0
        self.stats = FetcherStats()
        self._closed = False

    # -- submission ---------------------------------------------------------

    def prefetch(
        self,
        keys: Iterable[Key],
        *,
        loader: Optional[Callable[[Key], np.ndarray]] = None,
    ) -> "list[Key]":
        """Queue fetch+decode tasks for ``keys``; returns the keys submitted.

        Keys already in flight (or already fetched and not yet released)
        are coalesced instead of re-issued.  A key whose previous fetch
        *failed* is resubmitted instead of coalesced — a dead future must
        not poison the table for the rest of the query.  The call never
        blocks on the fetches themselves.

        ``loader`` overrides the constructor loader for *this batch's*
        fresh submissions — a multi-tenant access layer binds the
        requesting session's scope into it, since the task later runs on
        a pool thread that knows nothing about the submitter.
        """
        load = loader if loader is not None else self._loader
        with self._lock:
            if self._closed:
                raise RuntimeError("fetcher is closed")
            fresh = []
            for key in keys:
                fut = self._inflight.get(key)
                if fut is not None:
                    if fut.done() and fut.exception() is not None:
                        self.stats.resubmitted += 1
                        fresh.append(key)
                        continue
                    self.stats.coalesced += 1
                    continue
                fresh.append(key)
            if not fresh:
                return []
            self.stats.batches += 1
            self.stats.submitted += len(fresh)
            # One begin per task, each matched by one end in _run's
            # finally: the region opens before any task can run and
            # closes (advancing the clock by the slowest worker) when the
            # last one drains.  All begins precede the first submit so a
            # fast early completion cannot split the batch into two
            # regions.
            if self._clock is not None:
                for _ in fresh:
                    self._clock.begin_concurrent()
            for key in fresh:
                # Round-robin lane assignment pins each task's simulated
                # charges to one of `workers` ideal slots, so the region's
                # max-per-lane overlap is deterministic regardless of how
                # the OS schedules the (instant) simulated work.
                lane = self._next_lane % self.workers
                self._next_lane += 1
                self._inflight[key] = self._pool.submit(self._run, key, lane, load)
        return fresh

    def _run(self, key: Key, lane: int, loader: Callable[[Key], np.ndarray]) -> np.ndarray:
        # The concurrent-region close must happen *before* the future
        # resolves (a waiter may observe the result and then read the
        # clock), so it lives in the task body, not a done-callback.
        try:
            if self._clock is not None:
                with self._clock.lane(lane):
                    return loader(key)
            return loader(key)
        finally:
            with self._lock:
                self.stats.completed += 1
            if self._clock is not None:
                self._clock.end_concurrent(label="parallel:batch")

    # -- consumption --------------------------------------------------------

    def get(self, key: Key) -> Optional[np.ndarray]:
        """Block result if ``key`` was prefetched, else ``None``.

        Waits for a pending fetch to land rather than re-issuing it; a
        loader error propagates to the caller and the key is dropped so a
        direct read can retry.
        """
        with self._lock:
            fut = self._inflight.get(key)
            if fut is not None and not fut.done():
                self.stats.waited += 1
        if fut is None:
            return None
        try:
            return fut.result()
        except BaseException:
            with self._lock:
                self._inflight.pop(key, None)
            raise

    def drain(self) -> int:
        """Block until every fetch in flight at call time has completed.

        Returns the number of tasks waited on.  Task errors are *not*
        raised here — a failed future stays in the table and surfaces
        (or is resubmitted) at read time exactly as if ``drain`` had not
        been called.  Pipelined consumers use this to quiesce the pool
        at a scope boundary: the ML window loader drains before closing
        so no worker outlives its loader, and benchmarks drain before a
        measurement fence so in-flight clock charges have landed.
        """
        with self._lock:
            pending = [fut for fut in self._inflight.values() if not fut.done()]
        for fut in pending:
            fut.exception()  # waits for completion; errors surface at read time
        return len(pending)

    def release(self, keys: Optional[Iterable[Key]] = None) -> None:
        """Drop futures-table references at the end of a query scope.

        In-flight tasks are left to drain (their clock charges must
        land); only the *references* are dropped, so the next query
        starts with a clean stage exactly like the serial staged path.
        With ``keys`` given, only those entries are dropped — a tenant on
        a shared fetcher releases its own submissions without clobbering
        its neighbours' in-flight fetches.  ``None`` keeps the historic
        drop-everything behaviour.
        """
        with self._lock:
            if keys is None:
                self._inflight.clear()
            else:
                for key in keys:
                    self._inflight.pop(key, None)

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._inflight.clear()
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "ParallelFetcher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
