"""Temporal utilities over multi-timestep IDX datasets.

The dashboard's time slider and playback (§III-A) need efficient access
across timesteps: per-step statistics for stable colormap ranges, frame
sequences at bounded resolution, temporal differences for
change detection, and look-ahead prefetch so playback never stalls on
the (simulated) network.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.idx.dataset import IdxDataset
from repro.idx.query import QueryResult
from repro.idx.stats import FieldStats, compute_stats
from repro.util.arrays import Box

__all__ = [
    "animate",
    "global_range",
    "prefetch_timestep",
    "temporal_difference",
    "temporal_stats",
]


def temporal_stats(
    dataset: IdxDataset,
    *,
    field: Optional[str] = None,
    box: "Box | Sequence[Sequence[int]] | None" = None,
    resolution: Optional[int] = None,
) -> List[FieldStats]:
    """Per-timestep statistics (one :class:`FieldStats` per step)."""
    return [
        compute_stats(dataset, field=field, time=t, box=box, resolution=resolution)
        for t in dataset.timesteps
    ]


def global_range(
    dataset: IdxDataset,
    *,
    field: Optional[str] = None,
    resolution: Optional[int] = None,
) -> Tuple[float, float]:
    """(min, max) across ALL timesteps — the playback-stable colormap range.

    Computing it at reduced resolution makes it cheap; the range of a
    coarse sample set brackets most of the data, which is exactly how
    the dashboard seeds its dynamic colormap before playback.
    """
    stats = temporal_stats(dataset, field=field, resolution=resolution)
    return (min(s.minimum for s in stats), max(s.maximum for s in stats))


def temporal_difference(
    dataset: IdxDataset,
    t_from: int,
    t_to: int,
    *,
    field: Optional[str] = None,
    box: "Box | Sequence[Sequence[int]] | None" = None,
    resolution: Optional[int] = None,
) -> np.ndarray:
    """Change raster ``data(t_to) - data(t_from)`` over one region."""
    a = dataset.read(field=field, time=t_from, box=box, resolution=resolution)
    b = dataset.read(field=field, time=t_to, box=box, resolution=resolution)
    return (b.astype(np.float64) - a.astype(np.float64)).astype(np.float32)


def prefetch_timestep(
    dataset: IdxDataset,
    time: int,
    *,
    field: Optional[str] = None,
    box: "Box | Sequence[Sequence[int]] | None" = None,
    resolution: Optional[int] = None,
) -> int:
    """Warm the access layer's cache with one timestep's blocks.

    Running the exact query the next frame will issue pulls its blocks
    through any :class:`~repro.idx.access.CachedAccess` in the stack, so
    the visible frame switch is a pure cache hit.  Returns the number of
    blocks touched.
    """
    query = dataset.query(field=field, time=time, box=box, resolution=resolution)
    before = dataset.access.counters.blocks_read
    query.execute()
    return dataset.access.counters.blocks_read - before


def animate(
    dataset: IdxDataset,
    *,
    field: Optional[str] = None,
    box: "Box | Sequence[Sequence[int]] | None" = None,
    resolution: Optional[int] = None,
    times: Optional[Sequence[int]] = None,
    look_ahead: int = 1,
) -> Iterator[QueryResult]:
    """Yield one QueryResult per timestep, prefetching ``look_ahead`` steps.

    This is the data path under the dashboard's playback: with a cached
    access layer, the prefetch hides the per-frame fetch behind the
    previous frame's display time.
    """
    order = list(times) if times is not None else list(dataset.timesteps)
    if look_ahead < 0:
        raise ValueError("look_ahead must be non-negative")
    for i, t in enumerate(order):
        for ahead in order[i + 1 : i + 1 + look_ahead]:
            prefetch_timestep(dataset, ahead, field=field, box=box, resolution=resolution)
        yield dataset.read_result(field=field, time=t, box=box, resolution=resolution)
